// Benchmarks regenerating every table and figure of the paper's
// evaluation surface — one testing.B target per experiment in the
// DESIGN.md index. Each benchmark runs the full experiment (workload
// generation + all competitors + scoring); ns/op therefore measures the
// cost of reproducing that artifact end to end, and the experiment's
// accuracy tables themselves are printed by cmd/streambench.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkT1_04 -benchmem
package repro_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dstore"
	"repro/internal/experiments"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchTable runs an experiment table builder under the benchmark loop
// and sanity-checks that it produced rows.
func benchTable(b *testing.B, build func() experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := build()
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", t.ID)
		}
	}
}

func BenchmarkT1_01_Sampling(b *testing.B)    { benchTable(b, experiments.T1_01_Sampling) }
func BenchmarkT1_02_Filtering(b *testing.B)   { benchTable(b, experiments.T1_02_Filtering) }
func BenchmarkT1_03_Correlation(b *testing.B) { benchTable(b, experiments.T1_03_Correlation) }
func BenchmarkT1_04_Cardinality(b *testing.B) { benchTable(b, experiments.T1_04_Cardinality) }
func BenchmarkT1_05_Quantiles(b *testing.B)   { benchTable(b, experiments.T1_05_Quantiles) }
func BenchmarkT1_06_Moments(b *testing.B)     { benchTable(b, experiments.T1_06_Moments) }
func BenchmarkT1_07_FrequentElements(b *testing.B) {
	benchTable(b, experiments.T1_07_FrequentElements)
}
func BenchmarkT1_08_Inversions(b *testing.B)   { benchTable(b, experiments.T1_08_Inversions) }
func BenchmarkT1_09_Subsequences(b *testing.B) { benchTable(b, experiments.T1_09_Subsequences) }
func BenchmarkT1_10_PathAnalysis(b *testing.B) { benchTable(b, experiments.T1_10_PathAnalysis) }
func BenchmarkT1_11_Anomaly(b *testing.B)      { benchTable(b, experiments.T1_11_Anomaly) }
func BenchmarkT1_12_TemporalPatterns(b *testing.B) {
	benchTable(b, experiments.T1_12_TemporalPatterns)
}
func BenchmarkT1_13_Prediction(b *testing.B)    { benchTable(b, experiments.T1_13_Prediction) }
func BenchmarkT1_14_Clustering(b *testing.B)    { benchTable(b, experiments.T1_14_Clustering) }
func BenchmarkT1_15_GraphAnalysis(b *testing.B) { benchTable(b, experiments.T1_15_GraphAnalysis) }
func BenchmarkT1_16_BasicCounting(b *testing.B) { benchTable(b, experiments.T1_16_BasicCounting) }
func BenchmarkT1_17_SignificantOnes(b *testing.B) {
	benchTable(b, experiments.T1_17_SignificantOnes)
}
func BenchmarkS2_1_Histograms(b *testing.B) { benchTable(b, experiments.S2_1_Histograms) }
func BenchmarkS2_2_Wavelets(b *testing.B)   { benchTable(b, experiments.S2_2_Wavelets) }
func BenchmarkT2_1_Semantics(b *testing.B)  { benchTable(b, experiments.T2_1_Semantics) }
func BenchmarkT2_2_Grouping(b *testing.B)   { benchTable(b, experiments.T2_2_Grouping) }
func BenchmarkT2_3_Broker(b *testing.B)     { benchTable(b, experiments.T2_3_Broker) }
func BenchmarkT2_4_SketchStore(b *testing.B) {
	benchTable(b, experiments.T2_4_SketchStore)
}
func BenchmarkT2_5_HotKeySplay(b *testing.B) {
	benchTable(b, experiments.T2_5_HotKeySplay)
}
func BenchmarkT3_1_ClusterStore(b *testing.B) {
	benchTable(b, experiments.T3_1_ClusterStore)
}
func BenchmarkF1_Lambda(b *testing.B) { benchTable(b, experiments.F1_Lambda) }
func BenchmarkF1_2_StoreLambda(b *testing.B) {
	benchTable(b, experiments.F1_2_StoreLambda)
}
func BenchmarkA1_ConservativeUpdate(b *testing.B) {
	benchTable(b, experiments.A1_ConservativeUpdate)
}
func BenchmarkA2_SparseDenseCrossover(b *testing.B) {
	benchTable(b, experiments.A2_SparseDenseCrossover)
}
func BenchmarkA3_DoubleHashing(b *testing.B)  { benchTable(b, experiments.A3_DoubleHashing) }
func BenchmarkA4_AckingOverhead(b *testing.B) { benchTable(b, experiments.A4_AckingOverhead) }
func BenchmarkA5_GKCompression(b *testing.B)  { benchTable(b, experiments.A5_GKCompression) }

// ---- Sketch store micro-benchmarks ----
//
// Unlike the T2.4 experiment table (fixed writer pool, wall-clock rates),
// these measure per-operation cost under the standard testing.B parallel
// harness, parameterized by shard count:
//
//	go test -bench=BenchmarkStore -benchmem
//
// SetParallelism(8) runs 8 goroutines per GOMAXPROCS processor, so shard
// scaling is visible even on small containers; on a multi-core box add
// -cpu 1,4,8 for the hardware-parallelism curve.

var storeShardCounts = []int{1, 4, 16, 64}

func newBenchStore(b *testing.B, shards int) *store.Store {
	b.Helper()
	st, err := store.New(store.Config{Shards: shards, BucketWidth: 50, RingBuckets: 64})
	if err != nil {
		b.Fatal(err)
	}
	proto, err := store.NewDistinctProto(12, 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.RegisterMetric("uniq", proto); err != nil {
		b.Fatal(err)
	}
	return st
}

func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	return keys
}

func BenchmarkStoreIngest(b *testing.B) {
	keys := benchKeys(256)
	items := benchKeys(64)
	for _, shards := range storeShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newBenchStore(b, shards)
			var seq atomic.Int64
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					st.Observe(store.Observation{
						Metric: "uniq",
						Key:    keys[int(i)%len(keys)],
						Item:   items[int(i)%len(items)],
						// One stream-time tick per full key sweep, so each
						// (key, bucket) absorbs ~BucketWidth writes instead
						// of opening a fresh synopsis per write.
						Time: i / int64(len(keys)),
					})
				}
			})
		})
	}
}

// BenchmarkStoreIngestZipf is the hot-key acceptance benchmark: the same
// parallel ingest as BenchmarkStoreIngest but under Zipf-skewed keys (the
// distribution real streams have), with hot-key write combining off
// (baseline — the pre-splay write path) and on. The hottest keys dominate
// their home shards in baseline mode; with splaying on they are detected,
// batched lock-free, spread across recycling replica rings, and show up
// here as ~1.3x lower ns/op and ~3.5x fewer allocated bytes per write on
// the 1-core reference container (GOMAXPROCS=1 hides the lock-holder
// preemption a real multi-writer tier suffers; experiment T2.5 measures
// the same store under 16 OS threads, where the wall-clock win at 16
// shards is >= 1.5x):
//
//	go test -bench=BenchmarkStoreIngestZipf -benchmem
func BenchmarkStoreIngestZipf(b *testing.B) {
	items := benchKeys(64)
	for _, skew := range []float64{1.1, 1.5} {
		keys := make([]string, 1<<16)
		rng := workload.NewRNG(505)
		z := workload.NewZipf(rng, 128, skew)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", z.Draw())
		}
		for _, mode := range []struct {
			name string
			hot  store.HotKeyConfig
		}{
			{"baseline", store.HotKeyConfig{}},
			{"splayed", store.HotKeyConfig{Replicas: 16, MaxHot: 256, PromotePct: 2, EpochWrites: 512}},
		} {
			b.Run(fmt.Sprintf("s=%.1f/%s/shards=16", skew, mode.name), func(b *testing.B) {
				st, err := store.New(store.Config{Shards: 16, BucketWidth: 50, RingBuckets: 64, HotKey: mode.hot})
				if err != nil {
					b.Fatal(err)
				}
				proto, err := store.NewDistinctProto(12, 7)
				if err != nil {
					b.Fatal(err)
				}
				if err := st.RegisterMetric("uniq", proto); err != nil {
					b.Fatal(err)
				}
				var seq atomic.Int64
				// 16 writer goroutines per processor, matching the T2.4/T2.5
				// ingest tier the hot-key work is sized against.
				b.SetParallelism(16)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := seq.Add(1)
						st.Observe(store.Observation{
							Metric: "uniq",
							Key:    keys[int(i)&(len(keys)-1)],
							Item:   items[int(i)%len(items)],
							Time:   i,
						})
					}
				})
			})
		}
	}
}

func BenchmarkStoreQuery(b *testing.B) {
	keys := benchKeys(256)
	items := benchKeys(64)
	for _, shards := range storeShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newBenchStore(b, shards)
			// Populate ~16 buckets of history for every key.
			const populate = 200000
			for i := 0; i < populate; i++ {
				st.Observe(store.Observation{
					Metric: "uniq",
					Key:    keys[i%len(keys)],
					Item:   items[i%len(items)],
					Time:   int64(i / len(keys)),
				})
			}
			horizon := int64(populate / len(keys))
			var seq atomic.Int64
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					from := horizon - 1000 // ~20 buckets
					if from < 0 {
						from = 0
					}
					if _, err := st.QueryPoint("uniq", keys[int(i*31)%len(keys)], from, horizon); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// ---- Partitioned store cluster micro-benchmarks ----
//
// End-to-end per-observation and per-query cost of the multi-node
// serving layer (internal/dstore), parameterized by node count:
//
//	go test -bench=BenchmarkCluster -benchmem
//
// Ingest cost covers the whole pipeline — router encode + batched log
// append + node consume + store apply — amortized per observation by
// draining the cluster inside the timed section. Query cost is the
// owner-routed point query; the merged variant scatter-gathers a key set
// across every node and combines the partials.

var clusterNodeCounts = []int{1, 4, 8}

func newBenchCluster(b *testing.B, nodes int) *dstore.Cluster {
	b.Helper()
	c, err := dstore.New(dstore.Config{
		Partitions: 8,
		Store:      store.Config{Shards: 4, BucketWidth: 50, RingBuckets: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	proto, err := store.NewDistinctProto(12, 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterMetric("uniq", proto); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, err := c.StartNode(); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkClusterIngest(b *testing.B) {
	keys := benchKeys(256)
	items := benchKeys(64)
	for _, nodes := range clusterNodeCounts {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c := newBenchCluster(b, nodes)
			r := c.Router()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Observe(store.Observation{
					Metric: "uniq",
					Key:    keys[i%len(keys)],
					Item:   items[i%len(items)],
					Time:   int64(i / len(keys)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			// Drain inside the timer so ns/op is end-to-end (applied by
			// the owning nodes), not just the producer-side append.
			if err := c.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkClusterQuery(b *testing.B) {
	keys := benchKeys(256)
	items := benchKeys(64)
	for _, nodes := range clusterNodeCounts {
		c := newBenchCluster(b, nodes)
		r := c.Router()
		const populate = 100000
		for i := 0; i < populate; i++ {
			if err := r.Observe(store.Observation{
				Metric: "uniq",
				Key:    keys[i%len(keys)],
				Item:   items[i%len(items)],
				Time:   int64(i / len(keys)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Drain(); err != nil {
			b.Fatal(err)
		}
		horizon := int64(populate / len(keys))
		from := horizon - 1000 // ~20 buckets
		if from < 0 {
			from = 0
		}
		b.Run(fmt.Sprintf("point/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.QueryPoint("uniq", keys[(i*31)%len(keys)], from, horizon); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The typed single-key request must not regress the point path:
		// both route to one owner and run the same single-shard gather.
		b.Run(fmt.Sprintf("typed-point/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := store.QueryRequest{Metric: "uniq", Key: keys[(i*31)%len(keys)], From: from, To: horizon + 1}
				if _, err := r.Query(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("merged16/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.QueryMerged("uniq", keys[:16], from, horizon); err != nil {
					b.Fatal(err)
				}
			}
		})
		// One batched 16-key request vs 16 owner-routed round-trips.
		b.Run(fmt.Sprintf("batched16/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			req := store.QueryRequest{Metric: "uniq", Keys: keys[:16], From: from, To: horizon + 1}
			for i := 0; i < b.N; i++ {
				if _, err := r.Query(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Close before the next node count's sub-benchmarks run, so an
		// earlier cluster's idle node loops don't add scheduler noise to
		// later measurements (Close is idempotent; the b.Cleanup from
		// newBenchCluster becomes a no-op).
		c.Close()
	}
}
