// Benchmarks regenerating every table and figure of the paper's
// evaluation surface — one testing.B target per experiment in the
// DESIGN.md index. Each benchmark runs the full experiment (workload
// generation + all competitors + scoring); ns/op therefore measures the
// cost of reproducing that artifact end to end, and the experiment's
// accuracy tables themselves are printed by cmd/streambench.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkT1_04 -benchmem
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchTable runs an experiment table builder under the benchmark loop
// and sanity-checks that it produced rows.
func benchTable(b *testing.B, build func() experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := build()
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", t.ID)
		}
	}
}

func BenchmarkT1_01_Sampling(b *testing.B)    { benchTable(b, experiments.T1_01_Sampling) }
func BenchmarkT1_02_Filtering(b *testing.B)   { benchTable(b, experiments.T1_02_Filtering) }
func BenchmarkT1_03_Correlation(b *testing.B) { benchTable(b, experiments.T1_03_Correlation) }
func BenchmarkT1_04_Cardinality(b *testing.B) { benchTable(b, experiments.T1_04_Cardinality) }
func BenchmarkT1_05_Quantiles(b *testing.B)   { benchTable(b, experiments.T1_05_Quantiles) }
func BenchmarkT1_06_Moments(b *testing.B)     { benchTable(b, experiments.T1_06_Moments) }
func BenchmarkT1_07_FrequentElements(b *testing.B) {
	benchTable(b, experiments.T1_07_FrequentElements)
}
func BenchmarkT1_08_Inversions(b *testing.B)   { benchTable(b, experiments.T1_08_Inversions) }
func BenchmarkT1_09_Subsequences(b *testing.B) { benchTable(b, experiments.T1_09_Subsequences) }
func BenchmarkT1_10_PathAnalysis(b *testing.B) { benchTable(b, experiments.T1_10_PathAnalysis) }
func BenchmarkT1_11_Anomaly(b *testing.B)      { benchTable(b, experiments.T1_11_Anomaly) }
func BenchmarkT1_12_TemporalPatterns(b *testing.B) {
	benchTable(b, experiments.T1_12_TemporalPatterns)
}
func BenchmarkT1_13_Prediction(b *testing.B)    { benchTable(b, experiments.T1_13_Prediction) }
func BenchmarkT1_14_Clustering(b *testing.B)    { benchTable(b, experiments.T1_14_Clustering) }
func BenchmarkT1_15_GraphAnalysis(b *testing.B) { benchTable(b, experiments.T1_15_GraphAnalysis) }
func BenchmarkT1_16_BasicCounting(b *testing.B) { benchTable(b, experiments.T1_16_BasicCounting) }
func BenchmarkT1_17_SignificantOnes(b *testing.B) {
	benchTable(b, experiments.T1_17_SignificantOnes)
}
func BenchmarkS2_1_Histograms(b *testing.B) { benchTable(b, experiments.S2_1_Histograms) }
func BenchmarkS2_2_Wavelets(b *testing.B)   { benchTable(b, experiments.S2_2_Wavelets) }
func BenchmarkT2_1_Semantics(b *testing.B)  { benchTable(b, experiments.T2_1_Semantics) }
func BenchmarkT2_2_Grouping(b *testing.B)   { benchTable(b, experiments.T2_2_Grouping) }
func BenchmarkT2_3_Broker(b *testing.B)     { benchTable(b, experiments.T2_3_Broker) }
func BenchmarkF1_Lambda(b *testing.B)       { benchTable(b, experiments.F1_Lambda) }
func BenchmarkA1_ConservativeUpdate(b *testing.B) {
	benchTable(b, experiments.A1_ConservativeUpdate)
}
func BenchmarkA2_SparseDenseCrossover(b *testing.B) {
	benchTable(b, experiments.A2_SparseDenseCrossover)
}
func BenchmarkA3_DoubleHashing(b *testing.B)  { benchTable(b, experiments.A3_DoubleHashing) }
func BenchmarkA4_AckingOverhead(b *testing.B) { benchTable(b, experiments.A4_AckingOverhead) }
func BenchmarkA5_GKCompression(b *testing.B)  { benchTable(b, experiments.A5_GKCompression) }
