package repro_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// The root package is the public API; removing an export is a breaking
// change for every downstream import. This golden test pins the exported
// surface: an unintended removal (e.g. facade churn during a refactor)
// fails with the missing names listed, and an intended addition or
// removal is recorded explicitly by regenerating the golden file:
//
//	go test -run TestRootExportsGolden . -update-exports
var updateExports = flag.Bool("update-exports", false, "rewrite testdata/exports.golden from the current API surface")

const exportsGolden = "testdata/exports.golden"

// rootExports parses the root package (non-test files) and returns its
// exported top-level identifiers, one per kind-tagged line, sorted.
func rootExports(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["repro"]
	if !ok {
		t.Fatalf("package repro not found in %v", pkgs)
	}
	var names []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			names = append(names, kind+" "+name)
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					add("func", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add("type", s.Name.Name)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							add(kind, n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

func TestRootExportsGolden(t *testing.T) {
	got := rootExports(t)
	if *updateExports {
		if err := os.WriteFile(exportsGolden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d exports to %s", len(got), exportsGolden)
		return
	}
	raw, err := os.ReadFile(exportsGolden)
	if err != nil {
		t.Fatalf("read golden (run with -update-exports to create it): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")

	gotSet := make(map[string]bool, len(got))
	for _, n := range got {
		gotSet[n] = true
	}
	wantSet := make(map[string]bool, len(want))
	for _, n := range want {
		wantSet[n] = true
	}
	var removed, added []string
	for _, n := range want {
		if !gotSet[n] {
			removed = append(removed, n)
		}
	}
	for _, n := range got {
		if !wantSet[n] {
			added = append(added, n)
		}
	}
	if len(removed) > 0 {
		t.Errorf("root API exports REMOVED (breaking change — if intended, regenerate with -update-exports):\n  %s",
			strings.Join(removed, "\n  "))
	}
	if len(added) > 0 {
		t.Errorf("root API exports added but not recorded (regenerate with -update-exports):\n  %s",
			strings.Join(added, "\n  "))
	}
	if t.Failed() {
		fmt.Println("golden file:", exportsGolden)
	}
}
