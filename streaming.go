// Package repro is a production-quality Go toolkit for real-time
// streaming analytics, reproducing the full landscape of the VLDB'15
// tutorial "Real Time Analytics: Algorithms and Systems" (Kejariwal,
// Kulkarni, Ramasamy — Twitter Inc.): every algorithm family of the
// tutorial's Table 1, the synopsis structures of its Section 2, a
// Storm/Heron-style topology engine and Kafka-like partitioned log
// covering the platform design space of its Table 2/Section 3, and the
// Lambda Architecture of its Figure 1.
//
// This root package is the public API: it re-exports the constructors and
// types of the internal implementation packages under one import path, the
// way a production sketch library (e.g. the DataSketches project the
// tutorial cites) presents itself. Each alias points at a fully documented
// implementation; see the internal package docs for algorithmic detail and
// paper citations, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for the reproduced experiments.
//
// # Quick start
//
//	hll, _ := repro.NewHyperLogLog(14, 42)
//	topk, _ := repro.NewSpaceSaving(100)
//	for _, tag := range tags {
//	    hll.UpdateString(tag)
//	    topk.Update(tag)
//	}
//	fmt.Println(hll.Estimate(), topk.TopK(10))
package repro

import (
	"context"
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/analytics"
	"repro/internal/anomaly"
	"repro/internal/cardinality"
	"repro/internal/cluster"
	"repro/internal/correlation"
	"repro/internal/dstore"
	"repro/internal/engine"
	"repro/internal/filter"
	"repro/internal/frequency"
	"repro/internal/graphstream"
	"repro/internal/histogram"
	"repro/internal/inversions"
	"repro/internal/lambda"
	"repro/internal/moments"
	"repro/internal/mqlog"
	"repro/internal/pattern"
	"repro/internal/predict"
	"repro/internal/quantile"
	"repro/internal/rcache"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/subsequence"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wavelet"
	"repro/internal/window"
	"repro/internal/workload"
)

// ---- Cardinality estimation (Table 1: "Estimating Cardinality") ----

// HyperLogLog estimates distinct counts in ~1.04/sqrt(2^p) relative error.
type HyperLogLog = cardinality.HyperLogLog

// SparseHLL is HLL++ with an automatic sparse-to-dense crossover.
type SparseHLL = cardinality.SparseHLL

// LinearCounter is occupancy-based distinct counting.
type LinearCounter = cardinality.LinearCounter

// PCSA is Flajolet–Martin probabilistic counting.
type PCSA = cardinality.PCSA

// LogLog is the Durand–Flajolet estimator.
type LogLog = cardinality.LogLog

// KMV is bottom-k distinct counting with Jaccard support.
type KMV = cardinality.KMV

// SlidingHLL answers distinct counts over sliding windows.
type SlidingHLL = cardinality.SlidingHLL

// NewHyperLogLog returns an HLL with 2^precision registers.
func NewHyperLogLog(precision uint8, seed uint64) (*HyperLogLog, error) {
	return cardinality.NewHyperLogLog(precision, seed)
}

// NewSparseHLL returns an HLL++-style sketch.
func NewSparseHLL(precision uint8, seed uint64) (*SparseHLL, error) {
	return cardinality.NewSparseHLL(precision, seed)
}

// NewLinearCounter returns a linear counter with nbits bits.
func NewLinearCounter(nbits int, seed uint64) (*LinearCounter, error) {
	return cardinality.NewLinearCounter(nbits, seed)
}

// NewPCSA returns a Flajolet–Martin sketch with nmaps bitmaps.
func NewPCSA(nmaps int, seed uint64) (*PCSA, error) { return cardinality.NewPCSA(nmaps, seed) }

// NewLogLog returns a LogLog sketch with 2^precision registers.
func NewLogLog(precision uint8, seed uint64) (*LogLog, error) {
	return cardinality.NewLogLog(precision, seed)
}

// NewKMV returns a bottom-k sketch of size k.
func NewKMV(k int, seed uint64) (*KMV, error) { return cardinality.NewKMV(k, seed) }

// NewSlidingHLL returns a sliding-window HLL for windows up to maxWindow.
func NewSlidingHLL(precision uint8, maxWindow uint64, seed uint64) (*SlidingHLL, error) {
	return cardinality.NewSlidingHLL(precision, maxWindow, seed)
}

// ---- Membership filters (Table 1: "Filtering") ----

// Bloom is the classic Bloom filter.
type Bloom = filter.Bloom

// CountingBloom supports deletions via small counters.
type CountingBloom = filter.CountingBloom

// PartitionedBloom gives each hash its own bit slice.
type PartitionedBloom = filter.PartitionedBloom

// StableBloom decays over time for unbounded duplicate suppression.
type StableBloom = filter.StableBloom

// Cuckoo is the cuckoo filter (deletion + better space at low FPR).
type Cuckoo = filter.Cuckoo

// NewBloom sizes a Bloom filter for expectedItems at fpRate.
func NewBloom(expectedItems int, fpRate float64, seed uint64) (*Bloom, error) {
	return filter.NewBloom(expectedItems, fpRate, seed)
}

// NewBloomMK returns a Bloom filter with explicit geometry.
func NewBloomMK(mBits int, k uint, seed uint64) (*Bloom, error) {
	return filter.NewBloomMK(mBits, k, seed)
}

// NewCountingBloom returns a counting Bloom filter.
func NewCountingBloom(m int, k uint, seed uint64) (*CountingBloom, error) {
	return filter.NewCountingBloom(m, k, seed)
}

// NewPartitionedBloom returns a partitioned Bloom filter.
func NewPartitionedBloom(sliceBits int, k uint, seed uint64) (*PartitionedBloom, error) {
	return filter.NewPartitionedBloom(sliceBits, k, seed)
}

// NewStableBloom returns a time-decaying Bloom filter.
func NewStableBloom(m int, k uint, max uint8, p int, seed uint64) (*StableBloom, error) {
	return filter.NewStableBloom(m, k, max, p, seed)
}

// NewCuckoo returns a cuckoo filter sized for expectedItems.
func NewCuckoo(expectedItems int, seed uint64) (*Cuckoo, error) {
	return filter.NewCuckoo(expectedItems, seed)
}

// ---- Frequent elements (Table 1: "Finding Frequent Elements") ----

// CountMin is the Count-Min sketch.
type CountMin = frequency.CountMin

// CountSketch is the signed median sketch (turnstile model).
type CountSketch = frequency.CountSketch

// MisraGries is the Frequent algorithm.
type MisraGries = frequency.MisraGries

// SpaceSaving is the Metwally et al. top-k summary.
type SpaceSaving = frequency.SpaceSaving

// LossyCounting is the Manku–Motwani deterministic summary.
type LossyCounting = frequency.LossyCounting

// StickySampling is the Manku–Motwani probabilistic summary.
type StickySampling = frequency.StickySampling

// HierarchicalHH finds hierarchical heavy hitters.
type HierarchicalHH = frequency.HierarchicalHH

// WindowTopK tracks top-k over a sliding window.
type WindowTopK = frequency.WindowTopK

// Counted is an item with its estimated count.
type Counted = frequency.Counted

// NewCountMin returns a width x depth Count-Min sketch.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	return frequency.NewCountMin(width, depth, seed)
}

// NewCountMinWithError sizes a Count-Min sketch for (eps, delta).
func NewCountMinWithError(eps, delta float64, seed uint64) (*CountMin, error) {
	return frequency.NewCountMinWithError(eps, delta, seed)
}

// NewCountSketch returns a width x depth Count Sketch.
func NewCountSketch(width, depth int, seed uint64) (*CountSketch, error) {
	return frequency.NewCountSketch(width, depth, seed)
}

// NewMisraGries returns a Frequent summary with k counters.
func NewMisraGries(k int) (*MisraGries, error) { return frequency.NewMisraGries(k) }

// NewSpaceSaving returns a Space-Saving summary with k counters.
func NewSpaceSaving(k int) (*SpaceSaving, error) { return frequency.NewSpaceSaving(k) }

// NewLossyCounting returns a Lossy Counting summary with error eps.
func NewLossyCounting(eps float64) (*LossyCounting, error) { return frequency.NewLossyCounting(eps) }

// NewStickySampling returns a Sticky Sampling summary.
func NewStickySampling(theta, eps, delta float64, seed uint64) (*StickySampling, error) {
	return frequency.NewStickySampling(theta, eps, delta, seed)
}

// NewHierarchicalHH returns a hierarchical heavy-hitter summary.
func NewHierarchicalHH(maxDepth, k int, sep string) (*HierarchicalHH, error) {
	return frequency.NewHierarchicalHH(maxDepth, k, sep)
}

// NewWindowTopK returns a sliding-window top-k tracker.
func NewWindowTopK(windowSize int) (*WindowTopK, error) { return frequency.NewWindowTopK(windowSize) }

// ---- Quantiles (Table 1: "Estimating Quantiles") ----

// GK is the Greenwald–Khanna summary.
type GK = quantile.GK

// QDigest is the mergeable q-digest over integer domains.
type QDigest = quantile.QDigest

// CKMS is the targeted/biased-quantile summary.
type CKMS = quantile.CKMS

// QuantileTarget declares a (phi, eps) objective for CKMS.
type QuantileTarget = quantile.Target

// Frugal1U estimates one quantile in one word of memory.
type Frugal1U = quantile.Frugal1U

// Frugal2U is the adaptive-step two-word variant.
type Frugal2U = quantile.Frugal2U

// ExactQuantile is the exact baseline.
type ExactQuantile = quantile.Exact

// NewGK returns a Greenwald–Khanna summary with rank error eps.
func NewGK(eps float64) (*GK, error) { return quantile.NewGK(eps) }

// NewQDigest returns a q-digest over [0, 2^logU) with compression k.
func NewQDigest(logU uint8, k uint64) (*QDigest, error) { return quantile.NewQDigest(logU, k) }

// NewCKMS returns a targeted-quantile summary.
func NewCKMS(targets []QuantileTarget) (*CKMS, error) { return quantile.NewCKMS(targets) }

// NewFrugal1U returns a one-word estimator of the phi-quantile.
func NewFrugal1U(phi float64, seed uint64) (*Frugal1U, error) { return quantile.NewFrugal1U(phi, seed) }

// NewFrugal2U returns a two-word adaptive estimator of the phi-quantile.
func NewFrugal2U(phi float64, seed uint64) (*Frugal2U, error) { return quantile.NewFrugal2U(phi, seed) }

// NewExactQuantile returns the exact baseline accumulator.
func NewExactQuantile() *ExactQuantile { return quantile.NewExact() }

// WindowedQuantile answers quantiles over the last W values (blocked GK).
type WindowedQuantile = quantile.Windowed

// NewWindowedQuantile returns a sliding-window quantile summary.
func NewWindowedQuantile(windowSize int, eps float64) (*WindowedQuantile, error) {
	return quantile.NewWindowed(windowSize, eps)
}

// ---- Sampling (Table 1: "Sampling") ----

// NewReservoir returns a uniform reservoir sampler of size k (Vitter R).
func NewReservoir[T any](k int, seed uint64) (*sampling.Reservoir[T], error) {
	return sampling.NewReservoir[T](k, seed)
}

// NewReservoirL returns the skip-ahead variant (Algorithm L).
func NewReservoirL[T any](k int, seed uint64) (*sampling.ReservoirL[T], error) {
	return sampling.NewReservoirL[T](k, seed)
}

// NewWeightedReservoir returns an A-ES weighted sampler.
func NewWeightedReservoir[T any](k int, seed uint64) (*sampling.WeightedReservoir[T], error) {
	return sampling.NewWeightedReservoir[T](k, seed)
}

// NewBiasedReservoir returns Aggarwal's recency-biased sampler.
func NewBiasedReservoir[T any](k int, seed uint64) (*sampling.BiasedReservoir[T], error) {
	return sampling.NewBiasedReservoir[T](k, seed)
}

// NewChainSample returns a sliding-window uniform sampler.
func NewChainSample[T any](k int, windowSize uint64, seed uint64) (*sampling.ChainSample[T], error) {
	return sampling.NewChainSample[T](k, windowSize, seed)
}

// NewBernoulli returns an independent p-sampler.
func NewBernoulli[T any](p float64, seed uint64) (*sampling.Bernoulli[T], error) {
	return sampling.NewBernoulli[T](p, seed)
}

// ---- Moments, windows, histograms, wavelets (Table 1 + Section 2) ----

// AMSF2 estimates the second frequency moment.
type AMSF2 = moments.AMSF2

// FkSampler estimates higher frequency moments.
type FkSampler = moments.FkSampler

// DGIM counts ones over sliding windows in polylog space.
type DGIM = window.DGIM

// SignificantOnes is the Lee–Ting relaxed window counter.
type SignificantOnes = window.SignificantOnes

// EHSum extends DGIM to bounded integer sums.
type EHSum = window.EHSum

// SlidingStats tracks windowed mean/variance exactly.
type SlidingStats = window.SlidingStats

// HistogramBucket is one histogram bucket.
type HistogramBucket = histogram.Bucket

// EquiWidthHistogram is the fixed-bucket baseline histogram.
type EquiWidthHistogram = histogram.EquiWidth

// EndBiasedHistogram keeps exact heads and a uniform tail.
type EndBiasedHistogram = histogram.EndBiased

// WaveletSynopsis is a top-k Haar coefficient synopsis.
type WaveletSynopsis = wavelet.Synopsis

// NewAMSF2 returns a tug-of-war sketch with rows x cols counters.
func NewAMSF2(rows, cols int, seed uint64) (*AMSF2, error) { return moments.NewAMSF2(rows, cols, seed) }

// NewFkSampler returns an F_k estimator with the given sampler count.
func NewFkSampler(k, samplers int, seed uint64) (*FkSampler, error) {
	return moments.NewFkSampler(k, samplers, seed)
}

// NewDGIM returns an exponential-histogram window counter.
func NewDGIM(windowSize uint64, eps float64) (*DGIM, error) { return window.NewDGIM(windowSize, eps) }

// NewSignificantOnes returns a Lee–Ting significant-one counter.
func NewSignificantOnes(windowSize uint64, theta, eps float64) (*SignificantOnes, error) {
	return window.NewSignificantOnes(windowSize, theta, eps)
}

// NewEHSum returns a sliding-window sum estimator.
func NewEHSum(windowSize uint64, eps float64, maxV uint64) (*EHSum, error) {
	return window.NewEHSum(windowSize, eps, maxV)
}

// NewSlidingStats returns an exact windowed mean/variance tracker.
func NewSlidingStats(windowSize int) (*SlidingStats, error) {
	return window.NewSlidingStats(windowSize)
}

// NewEquiWidthHistogram returns an equi-width histogram.
func NewEquiWidthHistogram(lo, hi float64, buckets int) (*EquiWidthHistogram, error) {
	return histogram.NewEquiWidth(lo, hi, buckets)
}

// VOptimalHistogram computes the SSE-optimal piecewise-constant histogram.
func VOptimalHistogram(values []float64, buckets int) ([]HistogramBucket, float64, error) {
	return histogram.VOptimal(values, buckets)
}

// NewEndBiasedHistogram returns an end-biased histogram.
func NewEndBiasedHistogram(threshold uint64) (*EndBiasedHistogram, error) {
	return histogram.NewEndBiased(threshold)
}

// NewWaveletSynopsis builds a k-coefficient Haar synopsis of a signal.
func NewWaveletSynopsis(signal []float64, k int) (*WaveletSynopsis, error) {
	return wavelet.NewSynopsis(signal, k)
}

// ---- Order statistics over sequences (Table 1 rows 8-9) ----

// InversionCounter counts inversions exactly (Fenwick tree).
type InversionCounter = inversions.ExactCounter

// InversionEstimator approximates inversions in sublinear space.
type InversionEstimator = inversions.Estimator

// LIS tracks the longest increasing subsequence exactly.
type LIS = subsequence.LIS

// ApproxLIS bounds memory with weighted patience tails.
type ApproxLIS = subsequence.ApproxLIS

// DTWMatcher finds stream subsequences similar to a query.
type DTWMatcher = subsequence.Matcher

// NewInversionCounter returns an exact inversion counter over [0, universe).
func NewInversionCounter(universe int) (*InversionCounter, error) {
	return inversions.NewExactCounter(universe)
}

// NewInversionEstimator returns a sampling inversion estimator.
func NewInversionEstimator(samplers int, seed uint64) (*InversionEstimator, error) {
	return inversions.NewEstimator(samplers, seed)
}

// NewLIS returns an exact streaming LIS tracker.
func NewLIS() *LIS { return subsequence.NewLIS() }

// NewApproxLIS returns a bounded-memory LIS estimator.
func NewApproxLIS(maxTails int) (*ApproxLIS, error) { return subsequence.NewApproxLIS(maxTails) }

// NewDTWMatcher returns a query-similar subsequence matcher.
func NewDTWMatcher(query []float64, threshold float64, radius int) (*DTWMatcher, error) {
	return subsequence.NewMatcher(query, threshold, radius)
}

// ---- Graph streams (Table 1: "Graph analysis", "Path Analysis") ----

// SpanningForest is one-pass streaming connectivity.
type SpanningForest = graphstream.SpanningForest

// GreedyMatching is the 2-approximate semi-streaming matcher.
type GreedyMatching = graphstream.GreedyMatching

// WeightedMatching is the one-pass weighted matcher.
type WeightedMatching = graphstream.WeightedMatching

// Spanner retains a (2k-1)-spanner of the edge stream.
type Spanner = graphstream.Spanner

// TriangleCounter counts triangles over edge streams.
type TriangleCounter = graphstream.TriangleCounter

// DynamicReach answers bounded-length path queries on dynamic graphs.
type DynamicReach = graphstream.DynamicReach

// GraphEdge is an undirected edge.
type GraphEdge = workload.Edge

// NewSpanningForest returns a streaming spanning forest.
func NewSpanningForest(n int) (*SpanningForest, error) { return graphstream.NewSpanningForest(n) }

// NewGreedyMatching returns a streaming maximal matcher.
func NewGreedyMatching(n int) (*GreedyMatching, error) { return graphstream.NewGreedyMatching(n) }

// NewWeightedMatching returns a one-pass weighted matcher.
func NewWeightedMatching(n int, gamma float64) (*WeightedMatching, error) {
	return graphstream.NewWeightedMatching(n, gamma)
}

// NewSpanner returns a streaming (2k-1)-spanner.
func NewSpanner(n, k int) (*Spanner, error) { return graphstream.NewSpanner(n, k) }

// NewTriangleCounter returns an exact streaming triangle counter.
func NewTriangleCounter(n int) (*TriangleCounter, error) { return graphstream.NewTriangleCounter(n) }

// NewDynamicReach returns a dynamic graph with <=l path queries.
func NewDynamicReach(n int) (*DynamicReach, error) { return graphstream.NewDynamicReach(n) }

// MinCut estimates global minimum cuts via repeated Karger contraction.
type MinCut = graphstream.MinCut

// NewMinCut returns a min-cut estimator over n vertices.
func NewMinCut(n int, seed uint64) (*MinCut, error) { return graphstream.NewMinCut(n, seed) }

// ---- Detection, prediction, clustering, correlation, patterns ----

// AnomalyDetector scores observations; higher is more anomalous.
type AnomalyDetector = anomaly.Detector

// EWMADetector is the control-chart detector.
type EWMADetector = anomaly.EWMA

// MADDetector is the robust median/MAD detector.
type MADDetector = anomaly.MAD

// ChangeDetector detects distribution shifts (KS windows).
type ChangeDetector = anomaly.ChangeDetector

// HSTrees is the streaming half-space-trees ensemble.
type HSTrees = anomaly.HSTrees

// Kalman is a constant-velocity Kalman filter.
type Kalman = predict.Kalman

// Holt is double exponential smoothing.
type Holt = predict.Holt

// AR1 is an online AR(1) model.
type AR1 = predict.AR1

// OnlineKMeans is the sequential one-pass clusterer.
type OnlineKMeans = cluster.OnlineKMeans

// StreamKMedian is the STREAM chunked clusterer.
type StreamKMedian = cluster.StreamKMedian

// MicroClusters maintains CluStream CF vectors.
type MicroClusters = cluster.MicroClusters

// ClusterPoint is a dense point.
type ClusterPoint = cluster.Point

// WindowedCorrelation is incrementally-maintained windowed Pearson.
type WindowedCorrelation = correlation.Windowed

// PairScanner finds correlated stream pairs.
type PairScanner = correlation.PairScanner

// SAX symbolizes real-valued series.
type SAX = pattern.SAX

// ShapeDetector matches symbol patterns over SAX streams.
type ShapeDetector = pattern.ShapeDetector

// CEP is the condition/action + sequence rule engine.
type CEP = pattern.CEP

// CEPEvent is one CEP input event.
type CEPEvent = pattern.Event

// CEPRule is a simple condition/action rule.
type CEPRule = pattern.Rule

// CEPSequenceRule is a followed-by-within-window rule.
type CEPSequenceRule = pattern.SequenceRule

// NewEWMADetector returns an EWMA z-score detector.
func NewEWMADetector(alpha float64) (*EWMADetector, error) { return anomaly.NewEWMA(alpha) }

// NewMADDetector returns a median/MAD detector over a window.
func NewMADDetector(windowSize int) (*MADDetector, error) { return anomaly.NewMAD(windowSize) }

// NewChangeDetector returns a KS distribution-shift detector.
func NewChangeDetector(windowSize int, threshold float64) (*ChangeDetector, error) {
	return anomaly.NewChangeDetector(windowSize, threshold)
}

// NewHSTrees returns a half-space-trees ensemble.
func NewHSTrees(trees, depth, dims, windowSize int, mins, maxs []float64, seed uint64) (*HSTrees, error) {
	return anomaly.NewHSTrees(trees, depth, dims, windowSize, mins, maxs, seed)
}

// NewKalman returns a constant-velocity Kalman filter.
func NewKalman(q, r float64) (*Kalman, error) { return predict.NewKalman(q, r) }

// NewHolt returns a Holt double-exponential forecaster.
func NewHolt(alpha, beta float64) (*Holt, error) { return predict.NewHolt(alpha, beta) }

// NewAR1 returns an online AR(1) model.
func NewAR1(lambda float64) (*AR1, error) { return predict.NewAR1(lambda) }

// Predictor is the shared one-step-ahead forecasting contract.
type Predictor = predict.Predictor

// NewLastValue returns the persistence baseline forecaster.
func NewLastValue() *predict.LastValue { return predict.NewLastValue() }

// ImputeRMSE scores a predictor imputing NaN gaps against ground truth.
func ImputeRMSE(p Predictor, truth, masked []float64) float64 {
	return predict.ImputeRMSE(p, truth, masked)
}

// NewOnlineKMeans returns a sequential k-means clusterer.
func NewOnlineKMeans(k, dim int) (*OnlineKMeans, error) { return cluster.NewOnlineKMeans(k, dim) }

// NewStreamKMedian returns a STREAM-style chunked clusterer.
func NewStreamKMedian(k, chunkSize int, seed uint64) (*StreamKMedian, error) {
	return cluster.NewStreamKMedian(k, chunkSize, seed)
}

// NewMicroClusters returns a CluStream micro-cluster maintainer.
func NewMicroClusters(max, dim int, radiusFactor float64) (*MicroClusters, error) {
	return cluster.NewMicroClusters(max, dim, radiusFactor)
}

// NewWindowedCorrelation returns a windowed Pearson tracker.
func NewWindowedCorrelation(windowSize int) (*WindowedCorrelation, error) {
	return correlation.NewWindowed(windowSize)
}

// NewPairScanner returns a correlated-pair scanner over k streams.
func NewPairScanner(k, windowSize int) (*PairScanner, error) {
	return correlation.NewPairScanner(k, windowSize)
}

// NewSAX returns a SAX symbolizer.
func NewSAX(alphabet, frame, normWindow int) (*SAX, error) {
	return pattern.NewSAX(alphabet, frame, normWindow)
}

// NewShapeDetector returns a symbol-pattern detector ('.' wildcards).
func NewShapeDetector(patternStr string) (*ShapeDetector, error) {
	return pattern.NewShapeDetector(patternStr)
}

// NewCEP returns a complex-event-processing rule engine.
func NewCEP(maxQueue int) (*CEP, error) { return pattern.NewCEP(maxQueue) }

// ---- Platforms (Table 2 / Section 3) and Lambda (Figure 1) ----

// TopologyBuilder assembles Storm/Heron-style dataflows.
type TopologyBuilder = engine.Builder

// Topology is a runnable dataflow.
type Topology = engine.Topology

// TopologyConfig tunes a run (semantics, queues, retries).
type TopologyConfig = engine.Config

// TopologyStats summarizes a run.
type TopologyStats = engine.Stats

// TupleMessage is one tuple.
type TupleMessage = engine.Message

// Bolt processes tuples.
type Bolt = engine.Bolt

// BoltFunc adapts a function to Bolt.
type BoltFunc = engine.BoltFunc

// Spout produces tuples.
type Spout = engine.Spout

// SpoutFunc adapts a function to Spout.
type SpoutFunc = engine.SpoutFunc

// Delivery semantics.
const (
	AtMostOnce  = engine.AtMostOnce
	AtLeastOnce = engine.AtLeastOnce
)

// NewTopologyBuilder returns an empty topology builder.
func NewTopologyBuilder() *TopologyBuilder { return engine.NewBuilder() }

// ShuffleFrom / FieldsFrom / GlobalFrom / BroadcastFrom subscribe bolts to
// upstream streams with the named grouping.
var (
	ShuffleFrom   = engine.ShuffleFrom
	FieldsFrom    = engine.FieldsFrom
	GlobalFrom    = engine.GlobalFrom
	BroadcastFrom = engine.BroadcastFrom
)

// NewDedup wraps a bolt with replay suppression (effectively-once).
func NewDedup(inner Bolt, idFn func(TupleMessage) uint64) (*engine.Dedup, error) {
	return engine.NewDedup(inner, idFn)
}

// Broker is the Kafka-like partitioned log.
type Broker = mqlog.Broker

// LogTopic is a partitioned topic.
type LogTopic = mqlog.Topic

// LogRecord is one key/value pair for batched appends (LogTopic.ProduceBatch).
type LogRecord = mqlog.Record

// ConsumerGroup coordinates partition-assigned consumers.
type ConsumerGroup = mqlog.ConsumerGroup

// NewBroker returns an empty log broker.
func NewBroker() *Broker { return mqlog.NewBroker() }

// NewConsumerGroup returns a consumer group over a topic.
func NewConsumerGroup(b *Broker, t *LogTopic, name string) (*ConsumerGroup, error) {
	return mqlog.NewConsumerGroup(b, t, name)
}

// LogDurableConfig enables segmented on-disk persistence for a topic:
// pass it to Broker.CreateTopicDurable (or via LambdaConfig.Durable /
// StoreClusterConfig.Durable) and the topic's partitions persist as
// chains of CRC-framed append-only segment files, recovered — torn tail
// truncated — when a broker reopens the same directory.
type LogDurableConfig = mqlog.DurableConfig

// LogDurabilityStats snapshots a durable topic's disk-side counters
// (segments, bytes, fsyncs, recovery figures); see LogTopic.DurabilityStats.
type LogDurabilityStats = mqlog.DurabilityStats

// ErrLogEmptyBatch is returned by LogTopic.ProduceBatchTo for an empty
// record batch — there is no "first assigned offset" to report.
var ErrLogEmptyBatch = mqlog.ErrEmptyBatch

// ErrLogInvalidFetchMax is returned by LogTopic.Fetch for max <= 0.
var ErrLogInvalidFetchMax = mqlog.ErrInvalidFetchMax

// ---- Sketch store (sharded speed-layer serving subsystem) ----

// SketchStore is the sharded, concurrent store of keyed, time-bucketed
// synopses — the speed-layer serving subsystem (see internal/store).
type SketchStore = store.Store

// SketchStoreHotKeyConfig tunes the store's hot-key detection, write
// combining and splaying; the zero value disables the feature.
type SketchStoreHotKeyConfig = store.HotKeyConfig

// SketchStoreHotKey names one currently-splayed (metric, key) series.
type SketchStoreHotKey = store.HotKey

// StoreResettable marks synopses the store can recycle in place.
type StoreResettable = store.Resettable

// SketchStoreConfig tunes a SketchStore (shards, bucket geometry,
// retention budgets).
type SketchStoreConfig = store.Config

// StoreObservation is one data point bound for a SketchStore.
type StoreObservation = store.Observation

// StoreSynopsis is the mergeable bucket contract of the SketchStore.
type StoreSynopsis = store.Synopsis

// StorePrototype constructs fresh bucket synopses for a registered metric.
type StorePrototype = store.Prototype

// SketchStoreStats is a snapshot of a SketchStore's counters.
type SketchStoreStats = store.Stats

// DistinctSynopsis / FreqSynopsis / TopKSynopsis / QuantileSynopsis are
// the concrete bucket synopsis families a Query result can be asserted to.
type (
	DistinctSynopsis = store.Distinct
	FreqSynopsis     = store.Freq
	TopKSynopsis     = store.TopK
	QuantileSynopsis = store.Quantiles
)

// NewSketchStore returns an empty sharded sketch store.
func NewSketchStore(cfg SketchStoreConfig) (*SketchStore, error) { return store.New(cfg) }

// NewDistinctProto returns a HyperLogLog bucket prototype (2^p registers).
func NewDistinctProto(precision uint8, seed uint64) (StorePrototype, error) {
	return store.NewDistinctProto(precision, seed)
}

// NewFreqProto returns a Count-Min bucket prototype.
func NewFreqProto(width, depth int, seed uint64) (StorePrototype, error) {
	return store.NewFreqProto(width, depth, seed)
}

// NewTopKProto returns a Space-Saving bucket prototype with k counters.
func NewTopKProto(k int) (StorePrototype, error) { return store.NewTopKProto(k) }

// NewQuantileProto returns a q-digest bucket prototype over [0, 2^logU).
func NewQuantileProto(logU uint8, k uint64) (StorePrototype, error) {
	return store.NewQuantileProto(logU, k)
}

// EncodeObservation serializes an observation in the store's mqlog wire
// format.
func EncodeObservation(obs StoreObservation) []byte { return store.EncodeObservation(obs) }

// DecodeObservation parses the EncodeObservation wire format.
func DecodeObservation(data []byte) (StoreObservation, error) {
	return store.DecodeObservation(data)
}

// StoreBolt sinks a topology stream into a SketchStore.
//
// Deprecated: StoreBolt is SinkBolt; use NewSinkBolt with any Backend
// (wrap it with Instrument for serving telemetry).
type StoreBolt = engine.StoreBolt

// NewStoreBolt returns a bolt sinking into st; extract maps messages to
// observations (nil accepts Message.Value of type StoreObservation).
//
// Deprecated: use NewSinkBolt — a SketchStore is a Backend, and
// Instrument adds telemetry to any of them.
func NewStoreBolt(st *SketchStore, extract func(TupleMessage) (StoreObservation, bool)) (*StoreBolt, error) {
	return engine.NewStoreBolt(st, extract)
}

// CombineSnapshots merges partial query answers (e.g. per-node or per-key
// snapshots) into one fresh synopsis, deterministically — the
// scatter-gather combiner (see internal/store).
func CombineSnapshots(proto StorePrototype, parts ...StoreSynopsis) (StoreSynopsis, error) {
	return store.CombineSnapshots(proto, parts...)
}

// ReplayLogPartition feeds one partition's messages in [from, end) into
// the store and returns the next offset to consume — the building block
// of log-based recovery (ReplayLog covers the whole-topic batch rebuild).
func ReplayLogPartition(st *SketchStore, topic *LogTopic, pid int, from uint64, decode store.Decoder) (next uint64, applied uint64, truncated bool, err error) {
	return store.ReplayPartition(st, topic, pid, from, decode)
}

// ---- Unified serving API (analytics.Backend) ----

// Backend is the unified serving contract: SketchStore, ClusterRouter and
// Lambda all satisfy it, so one call site can query the speed store, the
// partitioned cluster or the Lambda batch+speed merge interchangeably.
// See internal/analytics for the exact cross-backend semantics (unknown
// metrics error with ErrUnknownMetric; registered metrics with no data
// answer empty cells).
type Backend = analytics.Backend

// QueryRequest is one typed serving query: metric(s), one/many/all keys,
// a half-open [From, To) stream-time range, and an aggregate-vs-per-key
// flag. Multi-key requests fan out in parallel inside each backend
// (per-shard gather in the store, per owning node in the cluster), and
// the cluster answers a whole multi-metric request in one
// generation-fenced parallel round.
type QueryRequest = store.QueryRequest

// QueryResult is the typed response: one QueryAnswer per requested cell,
// with typed accessors (Distinct, Count, TopK, Quantile, Raw) replacing
// caller-side synopsis type assertions.
type QueryResult = store.QueryResult

// QueryAnswer is one cell of a QueryResult: the merged synopsis of one
// (metric, key) series or of a metric's aggregated key union.
type QueryAnswer = store.Answer

// SynopsisFamily identifies which synopsis family an answer holds and
// therefore which typed accessors are meaningful on it.
type SynopsisFamily = store.Family

// The synopsis families a QueryAnswer can report.
const (
	FamilyOther    = store.FamilyOther
	FamilyDistinct = store.FamilyDistinct
	FamilyFreq     = store.FamilyFreq
	FamilyTopK     = store.FamilyTopK
	FamilyQuantile = store.FamilyQuantile
)

// ErrUnknownMetric is the sentinel every Backend wraps when a request or
// observation names a metric that was never registered.
var ErrUnknownMetric = store.ErrUnknownMetric

// PointRequest maps a legacy point query (one metric, one key, inclusive
// [from, to]) onto the QueryRequest it is equivalent to.
func PointRequest(metric, key string, from, to int64) QueryRequest {
	return store.PointRequest(metric, key, from, to)
}

// SinkBolt sinks a topology stream into any serving Backend — the one
// terminal bolt that replaces StoreBolt/ClusterBolt/LambdaBolt.
type SinkBolt = engine.SinkBolt

// NewSinkBolt returns a bolt sinking into be; extract maps messages to
// observations (nil accepts Message.Value of type StoreObservation).
func NewSinkBolt(be Backend, extract func(TupleMessage) (StoreObservation, bool)) (*SinkBolt, error) {
	return engine.NewSinkBolt(be, extract)
}

// ---- Telemetry (self-instrumentation) ----

// Telemetry is the metrics registry every subsystem can report into:
// atomic counters, gauges and fixed-bucket latency histograms with
// p50/p95/p99 accessors, encoded in the Prometheus text exposition
// format. Wire a registry into a subsystem with its SetTelemetry method
// (SketchStore, LogTopic, LogConsumerGroup, StoreCluster, Lambda), wrap
// any Backend with Instrument, and serve the scrape surface with
// MetricsHandler. A nil *Telemetry everywhere means "telemetry off":
// instruments become no-ops and hot paths pay one pointer check.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// TelemetryCounter is a monotonically increasing counter instrument.
type TelemetryCounter = telemetry.Counter

// TelemetryGauge is a float gauge instrument.
type TelemetryGauge = telemetry.Gauge

// TelemetryHistogram is a fixed-bucket latency histogram instrument
// with Quantile/P50/P95/P99 accessors.
type TelemetryHistogram = telemetry.Histogram

// MetricsHandler returns an http.Handler serving reg on two routes:
// /metrics (Prometheus text exposition) and /debug/analytics (a JSON
// snapshot including histogram quantiles). A nil registry serves valid
// empty payloads.
func MetricsHandler(reg *Telemetry) http.Handler { return telemetry.Handler(reg) }

// ServeMetrics starts an HTTP server on addr exposing MetricsHandler
// and returns it (callers Close it on shutdown) — the one-liner behind
// the cmd demos' -metrics flag.
func ServeMetrics(addr string, reg *Telemetry) *http.Server { return telemetry.Serve(addr, reg) }

// Instrument wraps a Backend so every Observe and Query is counted per
// metric and timed into reg, labeled backend=name — SinkBolt topologies
// and demo drivers get serving telemetry without the backend knowing.
// Answers are byte-identical to the bare backend's (the conformance
// suite pins this); a nil registry with no options returns be
// unchanged. Pass WithTracer to also open a root span per operation.
func Instrument(be Backend, reg *Telemetry, name string, opts ...InstrumentOption) Backend {
	return analytics.Instrument(be, reg, name, opts...)
}

// InstrumentOption configures an Instrument wrapper beyond its
// registry (currently: WithTracer).
type InstrumentOption = analytics.Option

// ---- Tracing (request spans and the slow-query log) ----

// Tracer samples, records and exports request traces: bounded in-memory
// rings of finished spans (Chrome trace-event JSON on /debug/traces)
// plus a slow-query log (/debug/slow). A nil *Tracer everywhere means
// "tracing off"; unsampled requests pay roughly a pointer check and one
// atomic increment per root.
type Tracer = trace.Tracer

// TraceConfig tunes a Tracer: SampleRate (0..1 head sampling),
// SlowThreshold (tail-keep + slow-log), ring capacities and the sampler
// seed (seeded runs sample deterministically).
type TraceConfig = trace.Config

// TraceContext is the portable (trace, span) reference that crosses
// layer and log boundaries — observations and query requests carry one,
// and the cluster router encodes it into log record headers.
type TraceContext = trace.Context

// TraceSpan is one timed operation within a trace.
type TraceSpan = trace.Span

// TraceAttr is one typed span attribute (TraceStr/TraceInt/TraceBool).
type TraceAttr = trace.Attr

// SlowQueryEntry is one slow-query log record: the root's name,
// duration and attributes plus per-stage child durations.
type SlowQueryEntry = trace.SlowEntry

// NewTracer returns a Tracer for cfg. Wire it with a subsystem's
// SetTracer method (SketchStore, StoreCluster, Lambda) and hand it to
// Instrument via WithTracer so roots open at the serving boundary.
func NewTracer(cfg TraceConfig) *Tracer { return trace.NewTracer(cfg) }

// WithTracer makes an Instrument wrapper open a root span per backend
// operation: head-sampled ingest roots whose context rides the
// observation through every layer (and across the cluster's log), and
// always-started query roots kept when sampled or slow.
func WithTracer(tr *Tracer) InstrumentOption { return analytics.WithTracer(tr) }

// TraceStr returns a string-valued span attribute.
func TraceStr(key, value string) TraceAttr { return trace.Str(key, value) }

// TraceInt returns an int-valued span attribute.
func TraceInt(key string, value int64) TraceAttr { return trace.Int(key, value) }

// TraceBool returns a bool-valued span attribute.
func TraceBool(key string, value bool) TraceAttr { return trace.Bool(key, value) }

// DebugOptions selects the optional debug surfaces MetricsHandlerWith
// mounts next to /metrics: a Tracer (adds /debug/traces and
// /debug/slow) and net/http/pprof (adds /debug/pprof/...).
type DebugOptions = telemetry.DebugOptions

// MetricsHandlerWith is MetricsHandler plus the optional debug
// surfaces: /debug/traces (Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto), /debug/slow (the slow-query log) and,
// when opts.Pprof is set, the standard pprof endpoints.
func MetricsHandlerWith(reg *Telemetry, opts DebugOptions) http.Handler {
	return telemetry.HandlerWith(reg, opts)
}

// ServeMetricsWith is ServeMetrics with debug surfaces — the one-liner
// behind the cmd demos' -trace and -pprof flags. The returned server
// has hardened timeouts (slowloris-resistant header/read deadlines, a
// write deadline long enough for 30s CPU profiles).
func ServeMetricsWith(addr string, reg *Telemetry, opts DebugOptions) *http.Server {
	return telemetry.ServeWith(addr, reg, opts)
}

// ---- Partitioned store cluster (multi-node serving over mqlog) ----

// StoreCluster is the partitioned store cluster: N single-threaded store
// nodes behind one mqlog ingest topic, with consumer-group ownership,
// scatter-gather queries and log-based recovery (see internal/dstore).
type StoreCluster = dstore.Cluster

// StoreClusterConfig tunes a StoreCluster (partitions, retention,
// per-node store config, batch sizes).
type StoreClusterConfig = dstore.Config

// StoreClusterStats aggregates a cluster's counters.
type StoreClusterStats = dstore.Stats

// ClusterNode is one cluster member: an event loop plus its local store.
type ClusterNode = dstore.Node

// ClusterRouter partitions Observe traffic onto the ingest log and
// answers queries by owner routing or scatter-gather.
type ClusterRouter = dstore.Router

// NewStoreCluster returns a cluster with no nodes; register metrics,
// then StartNode.
func NewStoreCluster(cfg StoreClusterConfig) (*StoreCluster, error) { return dstore.New(cfg) }

// ClusterBolt forwards a topology stream into a cluster's router.
//
// Deprecated: ClusterBolt is SinkBolt; use NewSinkBolt with any Backend
// (wrap it with Instrument for serving telemetry).
type ClusterBolt = engine.ClusterBolt

// NewClusterBolt returns a bolt forwarding into r; extract maps messages
// to observations (nil accepts Message.Value of type StoreObservation).
//
// Deprecated: use NewSinkBolt — a ClusterRouter is a Backend, and
// Instrument adds telemetry to any of them.
func NewClusterBolt(r *ClusterRouter, extract func(TupleMessage) (StoreObservation, bool)) (*ClusterBolt, error) {
	return engine.NewClusterBolt(r, extract)
}

// ReplayLog feeds the retained prefix of an mqlog topic into the store —
// the Lambda batch-layer recomputation (decode nil uses the wire codec).
func ReplayLog(st *SketchStore, topic *LogTopic, decode store.Decoder) (uint64, error) {
	return store.Replay(st, topic, decode)
}

// RebuildStore builds a fresh store from cfg and protos and replays the
// topic into it.
func RebuildStore(cfg SketchStoreConfig, protos map[string]StorePrototype, topic *LogTopic, decode store.Decoder) (*SketchStore, uint64, error) {
	return store.Rebuild(cfg, protos, topic, decode)
}

// ---- Lambda Architecture (Figure 1), store-backed ----

// Lambda is the Figure 1 architecture on the real subsystems: the master
// dataset is an mqlog topic, batch views are sealed stores recomputed up
// to frozen end-offset snapshots, the speed layer is a SketchStore (or,
// behind LambdaConfig.Cluster, a StoreCluster), and queries merge the two
// through CombineSnapshots — one code path for counters, cardinality,
// quantiles and top-k.
type Lambda = lambda.Architecture

// LambdaConfig tunes a Lambda (master topic geometry, batch/speed store
// configs, optional cluster speed layer).
type LambdaConfig = lambda.Config

// LambdaBatchInfo describes one completed batch recompute (version,
// frozen end offsets, applied count, retention truncation).
type LambdaBatchInfo = lambda.BatchInfo

// NewLambda returns a store-backed Lambda Architecture. Register metrics,
// then Append/Query; RunBatch on the batch cadence.
func NewLambda(cfg LambdaConfig) (*Lambda, error) { return lambda.New(cfg) }

// FrozenStoreView is a sealed batch view: a store recomputed from the log
// prefix up to a frozen end-offset snapshot, closed to writes.
type FrozenStoreView = store.FrozenView

// FreezeStoreAt recomputes a sealed batch view of the topic's prefix
// [0, ends) — the Lambda batch layer as a standalone helper.
func FreezeStoreAt(cfg SketchStoreConfig, protos map[string]StorePrototype, topic *LogTopic, ends []uint64, decode store.Decoder) (*FrozenStoreView, error) {
	return store.FreezeAt(cfg, protos, topic, ends, decode)
}

// FreezeStoreAtFrom is FreezeStoreAt with a checkpoint fast path: a
// compatible snapshot in checkpointDir seeds the view and only the log
// suffix past its offsets replays (empty dir = full recompute).
func FreezeStoreAtFrom(cfg SketchStoreConfig, protos map[string]StorePrototype, topic *LogTopic, ends []uint64, decode store.Decoder, checkpointDir string) (*FrozenStoreView, error) {
	return store.FreezeAtFrom(cfg, protos, topic, ends, decode, checkpointDir)
}

// StoreCheckpointMeta stamps a checkpoint with the log position it
// covers (offsets, optional owned-partition set, optional floors).
type StoreCheckpointMeta = store.CheckpointMeta

// StoreCheckpointManifest describes a written checkpoint (geometry,
// record/byte counts, CRC, and its StoreCheckpointMeta fields).
type StoreCheckpointManifest = store.CheckpointManifest

// StoreCheckpointInfo summarizes a completed checkpoint write.
type StoreCheckpointInfo = store.CheckpointInfo

// WriteStoreCheckpoint snapshots every resident bucket of st into dir as
// a manifest + data file pair (atomic via temp+rename, CRC-framed).
func WriteStoreCheckpoint(st *SketchStore, dir string, meta StoreCheckpointMeta) (StoreCheckpointInfo, error) {
	return store.WriteCheckpoint(st, dir, meta)
}

// RestoreStoreCheckpoint rehydrates a checkpoint into an empty store
// with matching geometry and registered metrics; replay the log suffix
// past the manifest's offsets to catch up.
func RestoreStoreCheckpoint(st *SketchStore, dir string) (*StoreCheckpointManifest, error) {
	return store.RestoreCheckpoint(st, dir)
}

// ReadStoreCheckpointManifest loads dir's manifest without touching the
// data file — the cheap compatibility probe before a restore.
func ReadStoreCheckpointManifest(dir string) (*StoreCheckpointManifest, error) {
	return store.ReadCheckpointManifest(dir)
}

// ReplayLogPartitionTo is ReplayLogPartition with an explicit exclusive
// end bound — the offset-fenced replay batch views and speed-layer
// truncation are built on.
func ReplayLogPartitionTo(st *SketchStore, topic *LogTopic, pid int, from, end uint64, decode store.Decoder) (next uint64, applied uint64, truncated bool, err error) {
	return store.ReplayPartitionTo(st, topic, pid, from, end, decode)
}

// LogReader is an end-offset-bounded sequential reader over one log
// partition (LogTopic.NewReader).
type LogReader = mqlog.Reader

// LambdaBolt sinks a topology stream into a Lambda architecture,
// dispatching every tuple to both the master log and the speed layer.
//
// Deprecated: LambdaBolt is SinkBolt; use NewSinkBolt with any Backend
// (wrap it with Instrument for serving telemetry).
type LambdaBolt = engine.LambdaBolt

// NewLambdaBolt returns a bolt sinking into arch; extract maps messages
// to observations (nil accepts Message.Value of type StoreObservation).
//
// Deprecated: use NewSinkBolt — a Lambda is a Backend, and Instrument
// adds telemetry to any of them.
func NewLambdaBolt(arch *Lambda, extract func(TupleMessage) (StoreObservation, bool)) (*LambdaBolt, error) {
	return engine.NewLambdaBolt(arch, extract)
}

// ---- HTTP serving tier (analyticsd: wire codec, edge cache, client) ----

// AnalyticsServer is the HTTP serving edge: the full Backend contract
// (register / observe / query / keys / stats under /v1/) over a JSON
// wire codec that round-trips all four synopsis families byte-exactly,
// plus the observability plane (/metrics, /debug/traces, /debug/slow,
// optional pprof) on the same port. Per-request deadlines arrive via
// the X-Analytics-Timeout header and propagate as context cancellation
// through the backend gather; remote trace contexts arrive via
// X-Analytics-Trace and are adopted into the server's tracer.
type AnalyticsServer = serve.Server

// AnalyticsServerConfig wires an AnalyticsServer: the Backend it fronts
// (required), an optional ReadCache, Telemetry registry, Tracer, and
// the default/maximum per-query deadlines.
type AnalyticsServerConfig = serve.Config

// NewAnalyticsServer returns a serving edge over cfg.Backend. Mount
// Handler() or call Serve(addr); cmd/analyticsd is the packaged daemon.
func NewAnalyticsServer(cfg AnalyticsServerConfig) (*AnalyticsServer, error) {
	return serve.NewServer(cfg)
}

// AnalyticsClient is the client side of the serving API: a Backend (and
// ContextQuerier) whose backend lives across a socket, so conformance
// tests and dashboards point at a remote analyticsd unchanged. Register
// metrics with Register(name, MetricSpec) — or Sync to pull the
// server's schema — so the client can rebuild answer synopses.
type AnalyticsClient = serve.Client

// NewAnalyticsClient returns a client for the analyticsd at baseURL;
// nil hc uses http.DefaultClient.
func NewAnalyticsClient(baseURL string, hc *http.Client) *AnalyticsClient {
	return serve.NewClient(baseURL, hc)
}

// MetricSpec is the declarative, wire-serializable twin of a
// StorePrototype: family plus construction parameters (precision, seed,
// width/depth, k, universe), from which both ends of the wire
// materialize identical, merge-compatible synopses.
type MetricSpec = serve.ProtoSpec

// DistinctMetricSpec declares a HyperLogLog-backed distinct-count metric.
func DistinctMetricSpec(precision uint8, seed uint64) MetricSpec {
	return serve.DistinctSpec(precision, seed)
}

// FreqMetricSpec declares a CountMin-backed frequency metric.
func FreqMetricSpec(width, depth int, seed uint64) MetricSpec {
	return serve.FreqSpec(width, depth, seed)
}

// TopKMetricSpec declares a SpaceSaving-backed top-k metric.
func TopKMetricSpec(k int) MetricSpec { return serve.TopKSpec(k) }

// QuantileMetricSpec declares a q-digest-backed quantile metric over a
// [0, 2^logU) universe with compression factor k.
func QuantileMetricSpec(logU uint8, k uint64) MetricSpec {
	return serve.QuantileSpec(logU, k)
}

// Wire headers of the serving API: the per-request deadline budget and
// the propagated trace context.
const (
	AnalyticsTimeoutHeader = serve.TimeoutHeader
	AnalyticsTraceHeader   = serve.TraceHeader
)

// ReadCache is the serving edge's sealed-range query cache: answers for
// fully-sealed [From, To) ranges are cached and invalidated per metric
// when a write advances the open bucket (or lands below it). Exact for
// single-writer edges; see internal/rcache for the cluster caveat.
type ReadCache = rcache.Cache

// ReadCacheConfig sizes a ReadCache (bucket width — must match the
// backend store geometry — shard count, entry budget).
type ReadCacheConfig = rcache.Config

// ReadCacheStats is a point-in-time counter snapshot (hits, misses,
// evictions, invalidations, resident entries).
type ReadCacheStats = rcache.Stats

// NewReadCache returns a ReadCache; give it to an
// AnalyticsServerConfig and the edge checks it before every backend
// gather.
func NewReadCache(cfg ReadCacheConfig) (*ReadCache, error) { return rcache.New(cfg) }

// ContextQuerier is the optional deadline-aware query surface a Backend
// may implement; QueryWithContext prefers it and falls back to Query.
type ContextQuerier = analytics.ContextQuerier

// QueryWithContext queries be under ctx: backends implementing
// ContextQuerier (the cluster router, the serving client) get the
// context threaded through their gather; others answer Query once the
// context is still live.
func QueryWithContext(ctx context.Context, be Backend, req QueryRequest) (QueryResult, error) {
	return analytics.QueryContext(ctx, be, req)
}

// ---- Admission control (overload shedding and batched ingest) ----

// BatchObserver is the optional batched-write surface a Backend may
// implement: the whole batch is validated before anything mutates
// (all-or-nothing), an accepted batch is byte-identical to the same
// observations fed one Observe at a time, and an empty batch is a
// no-op. SketchStore, ClusterRouter, Lambda and AnalyticsClient all
// implement it.
type BatchObserver = analytics.BatchObserver

// ObserveBatch absorbs a batch through be: backends implementing
// BatchObserver get the amortized path (one shard-group lock in the
// store, one partition-buffer acquisition in the cluster, one HTTP
// request from the client); for the rest it degrades to an Observe
// loop, stopping at the first error.
func ObserveBatch(be Backend, obs []StoreObservation) error {
	return analytics.ObserveBatch(be, obs)
}

// AdmissionController prices writes against token buckets (global,
// per-metric, per-tenant) and sheds what the budget cannot cover with
// a typed, retryable error. A lag-driven backpressure ladder halves
// the admitted rates per level as consumer lag or log disk pressure
// grows. A nil controller admits everything.
type AdmissionController = admission.Controller

// AdmissionConfig tunes an AdmissionController: Rate/Burst for the
// global bucket, MetricRate/TenantRate for the keyed buckets, and a
// Backpressure block wiring lag and disk signals.
type AdmissionConfig = admission.Config

// AdmissionBackpressure wires overload signals into an
// AdmissionController: consumer lag (e.g. ClusterRouter's consumer
// group) and log disk usage, sampled at most once per SampleEvery.
type AdmissionBackpressure = admission.BackpressureConfig

// AdmissionStats snapshots a controller's admitted/shed accounting,
// current backpressure level, and token balance.
type AdmissionStats = admission.Stats

// NewAdmissionController builds a controller from cfg.
func NewAdmissionController(cfg AdmissionConfig) (*AdmissionController, error) {
	return admission.New(cfg)
}

// AdmitBackend wraps be so every Observe and ObserveBatch first clears
// ctrl: a shed write returns an error matching ErrOverloaded (carrying
// a Retry-After via OverloadWait) and provably never reaches the
// backend — batches are admitted whole before a single observation is
// delegated. A nil controller returns be unchanged.
func AdmitBackend(be Backend, ctrl *AdmissionController) Backend {
	return analytics.Admit(be, ctrl)
}

// ErrOverloaded is the sentinel every shed write matches with
// errors.Is — locally from an AdmissionController, or rehydrated by
// AnalyticsClient from an HTTP 429 + Retry-After exchange.
var ErrOverloaded = admission.ErrOverloaded

// Overload is the typed shed error: the quoted RetryAfter plus which
// budget (scope/key) rejected the write.
type Overload = admission.Overload

// OverloadWait extracts the quoted Retry-After from a shed error; ok
// reports whether err carries an Overload at all.
func OverloadWait(err error) (wait time.Duration, ok bool) {
	return admission.Wait(err)
}
