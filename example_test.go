package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the unified serving API: a sketch store is one
// repro.Backend (the cluster router and the Lambda architecture are the
// others), typed QueryRequests replace point queries plus type
// assertions, and one multi-key aggregate request answers a union.
func Example() {
	st, err := repro.NewSketchStore(repro.SketchStoreConfig{Shards: 4, BucketWidth: 60, RingBuckets: 60})
	if err != nil {
		panic(err)
	}
	var be repro.Backend = st // or a StoreCluster's Router(), or a Lambda

	hits, err := repro.NewFreqProto(1024, 4, 42)
	if err != nil {
		panic(err)
	}
	if err := be.RegisterMetric("hits", hits); err != nil {
		panic(err)
	}
	for i := 0; i < 90; i++ {
		page := "/home"
		if i%3 == 0 {
			page = "/docs"
		}
		if err := be.Observe(repro.StoreObservation{
			Metric: "hits", Key: page, Item: "get", Value: 1, Time: int64(i),
		}); err != nil {
			panic(err)
		}
	}

	// One typed request per question — no synopsis type assertions.
	one, err := be.Query(repro.QueryRequest{Metric: "hits", Key: "/home", From: 0, To: 90})
	if err != nil {
		panic(err)
	}
	fmt.Println("/home gets:", one.Count("get"))

	// A multi-key aggregate request unions both pages in one round-trip.
	site, err := be.Query(repro.QueryRequest{
		Metric: "hits", Keys: []string{"/home", "/docs"}, From: 0, To: 90, Aggregate: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("site gets:", site.Count("get"))

	// Output:
	// /home gets: 60
	// site gets: 90
}
