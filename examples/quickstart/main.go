// Command quickstart tours the core sketch API on a synthetic tweet
// stream: distinct users (HyperLogLog), trending hashtags (Space-Saving),
// tweet-length quantiles (Greenwald–Khanna), and seen-before filtering
// (Bloom) — the four everyday tools of the tutorial's streaming-analytics
// toolbox, in ~60 lines.
package main

import (
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	const tweets = 200000
	rng := workload.NewRNG(42)
	users := workload.NewZipf(rng, 50000, 1.1)   // heavy tweeters exist
	hashtags := workload.NewZipf(rng, 5000, 1.3) // a few tags trend

	distinctUsers, _ := repro.NewHyperLogLog(14, 1)
	trending, _ := repro.NewSpaceSaving(100)
	lengths, _ := repro.NewGK(0.01)
	seen, _ := repro.NewBloom(tweets, 0.01, 1)

	exactUsers := map[uint64]struct{}{}
	duplicates := 0

	for i := 0; i < tweets; i++ {
		user := users.Draw()
		tag := fmt.Sprintf("#tag%d", hashtags.Draw())
		length := 30 + rng.Intn(250)

		distinctUsers.UpdateUint64(user)
		trending.Update(tag)
		lengths.Update(float64(length))

		tweetID := []byte(fmt.Sprintf("%d:%s:%d", user, tag, i/2))
		if seen.Contains(tweetID) {
			duplicates++ // possibly a false positive; that's the contract
		}
		seen.Add(tweetID)

		exactUsers[user] = struct{}{}
	}

	fmt.Printf("tweets processed:      %d\n", tweets)
	fmt.Printf("distinct users (HLL):  %.0f  (exact %d, err %.2f%%)\n",
		distinctUsers.Estimate(), len(exactUsers),
		100*abs(distinctUsers.Estimate()-float64(len(exactUsers)))/float64(len(exactUsers)))
	fmt.Printf("HLL memory:            %d bytes (vs %d keys exact)\n",
		distinctUsers.Bytes(), len(exactUsers))

	fmt.Println("\ntop-5 trending hashtags (Space-Saving, 100 counters):")
	for _, c := range trending.TopK(5) {
		fmt.Printf("  %-8s count~%-7d (max overcount %d)\n", c.Item, c.Count, c.Err)
	}

	fmt.Println("\ntweet length quantiles (GK, eps=0.01):")
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  p%-3.0f = %.0f chars\n", phi*100, lengths.Query(phi))
	}
	fmt.Printf("GK summary holds %d tuples for %d observations\n", lengths.Tuples(), tweets)

	fmt.Printf("\nbloom 'seen before' hits: %d (true dups + ~1%% false positives)\n", duplicates)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
