// Command lambdademo walks through the tutorial's Figure 1 Lambda
// Architecture end to end: events are dispatched to the batch and speed
// layers, batch views are periodically recomputed from the immutable
// master dataset, and queries merge batch and realtime views. It prints,
// at each stage, what a batch-only system would answer versus what the
// Lambda merge answers, making the speed layer's contribution visible —
// then repeats the run with a Count-Min speed layer to show the memory/
// accuracy trade.
package main

import (
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	fmt.Println("=== exact speed layer ===")
	run(repro.NewLambda())

	fmt.Println("\n=== approximate (Count-Min) speed layer ===")
	approx, err := repro.NewLambdaApprox(4096, 4, 9)
	if err != nil {
		panic(err)
	}
	run(approx)
}

func run(arch *repro.Lambda) {
	rng := workload.NewRNG(11)
	keys := workload.NewZipf(rng, 100, 1.2)
	exact := map[string]int64{}

	appendBurst := func(n int) {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("metric-%d", keys.Draw())
			arch.Append(k, 1)
			exact[k]++
		}
	}

	probe := "metric-0"
	report := func(stage string) {
		fmt.Printf("%-28s master=%-7d staleness=%-6d batch-only(%s)=%-6d merged=%-6d exact=%-6d\n",
			stage, arch.MasterLen(), arch.Staleness(), probe,
			arch.BatchOnlyQuery(probe), arch.Query(probe), exact[probe])
	}

	appendBurst(20000)
	report("after first burst:")

	arch.RunBatch()
	report("after batch recompute:")

	appendBurst(15000)
	report("speed layer absorbing:")

	arch.RunBatch()
	report("second batch recompute:")

	appendBurst(5000)
	report("fresh events again:")

	// Verify the Lambda contract over every key: merged ~= exact (exact
	// speed layer: equal; CM speed layer: never under, small over).
	worstOver := int64(0)
	under := 0
	for k, v := range exact {
		got := arch.Query(k)
		if got < v {
			under++
		}
		if got-v > worstOver {
			worstOver = got - v
		}
	}
	fmt.Printf("contract check over %d keys: undercounts=%d worst overcount=%d\n",
		len(exact), under, worstOver)
}
