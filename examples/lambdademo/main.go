// Command lambdademo walks through the store-backed Figure 1 Lambda
// Architecture end to end: observations are dispatched to the immutable
// mqlog master topic and the sketch-store speed layer, batch views are
// periodically recomputed from the log up to frozen end offsets, and
// queries merge the sealed batch view with the live speed snapshot. It
// prints, at each stage, what a batch-only system would answer versus
// what the Lambda merge answers, making the speed layer's contribution
// visible.
package main

import (
	"fmt"

	"repro"
	"repro/internal/workload"
)

func main() {
	geom := repro.SketchStoreConfig{Shards: 8, BucketWidth: 1000, RingBuckets: 64}
	arch, err := repro.NewLambda(repro.LambdaConfig{Partitions: 4, Batch: geom, Speed: geom})
	if err != nil {
		panic(err)
	}
	defer arch.Close()
	proto, err := repro.NewFreqProto(2048, 4, 9)
	if err != nil {
		panic(err)
	}
	if err := arch.RegisterMetric("hits", proto); err != nil {
		panic(err)
	}

	rng := workload.NewRNG(11)
	keys := workload.NewZipf(rng, 100, 1.2)
	exact := map[string]uint64{}
	now := int64(0)

	appendBurst := func(n int) {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("metric-%d", keys.Draw())
			if err := arch.Append(repro.StoreObservation{Metric: "hits", Key: k, Item: "hit", Value: 1, Time: now}); err != nil {
				panic(err)
			}
			exact[k]++
			now++
		}
	}

	probe := "metric-0"
	countStale := func(syn repro.StoreSynopsis, err error) uint64 {
		if err != nil {
			panic(err)
		}
		return syn.(*repro.FreqSynopsis).Count("hit")
	}
	// Merged answers come through the typed serving API: the Count
	// accessor replaces the *FreqSynopsis type assertion.
	count := func(key string) uint64 {
		res, err := arch.Query(repro.QueryRequest{Metric: "hits", Key: key, From: 0, To: now + 1})
		if err != nil {
			panic(err)
		}
		return res.Count("hit")
	}
	report := func(stage string) {
		fmt.Printf("%-28s master=%-7d staleness=%-6d batch-only(%s)=%-6d merged=%-6d exact=%-6d\n",
			stage, arch.MasterLen(), arch.Staleness(), probe,
			countStale(arch.BatchOnlyQuery("hits", probe, 0, now)),
			count(probe), exact[probe])
	}

	appendBurst(20000)
	report("after first burst:")

	if _, err := arch.RunBatch(); err != nil {
		panic(err)
	}
	report("after batch recompute:")

	appendBurst(15000)
	report("speed layer absorbing:")

	if _, err := arch.RunBatch(); err != nil {
		panic(err)
	}
	report("second batch recompute:")

	appendBurst(5000)
	report("fresh events again:")

	// Verify the Lambda contract over every key: merged == exact (the
	// counter series are collision-free at this width, so the Count-Min
	// answers are exact, and the offset fence guarantees no double count).
	mismatches := 0
	for k, v := range exact {
		if count(k) != v {
			mismatches++
		}
	}
	fmt.Printf("contract check over %d keys: mismatches=%d\n", len(exact), mismatches)
}
