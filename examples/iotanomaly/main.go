// Command iotanomaly demonstrates the tutorial's sensor-network rows on a
// synthetic IoT feed: a temperature sensor with injected spikes and a
// level shift, plus dropped readings. The pipeline detects anomalies with
// an EWMA control chart and a robust MAD detector, flags the regime change
// with a KS change detector, and imputes the missing readings with a
// Kalman filter — comparing against the persistence baseline.
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/workload"
)

func main() {
	// 24h of 10s samples: fast machine-cycle seasonality + noise, with
	// trouble injected at known points. The change-detector window spans
	// two full seasonal periods so ordinary cycling looks stationary.
	spec := workload.SeriesSpec{
		N: 8640, Base: 21, SeasonAmp: 1.5, SeasonLen: 240, NoiseSD: 0.25,
	}
	anoms := []workload.Anomaly{
		{Kind: workload.Spike, Index: 2000, Len: 1, Mag: 20},
		{Kind: workload.Spike, Index: 4200, Len: 1, Mag: -16},
		{Kind: workload.LevelShift, Index: 6000, Len: 2640, Mag: 12},
	}
	series := spec.Generate(workload.NewRNG(99), anoms)

	ewma, _ := repro.NewEWMADetector(0.05)
	mad, _ := repro.NewMADDetector(180)
	change, _ := repro.NewChangeDetector(480, 0.4)

	var ewmaHits, madHits []int
	for i, v := range series.Values {
		if ewma.Score(v) > 6 {
			ewmaHits = append(ewmaHits, i)
		}
		if mad.Score(v) > 5 {
			madHits = append(madHits, i)
		}
		change.Score(v)
	}

	fmt.Println("injected events: spike@2000, spike@4200, level-shift@6000")
	fmt.Printf("EWMA fired %d times at: %v\n", len(ewmaHits), head(ewmaHits, 6))
	fmt.Printf("MAD  fired %d times at: %v\n", len(madHits), head(madHits, 6))
	fmt.Printf("KS change detector declared shifts at ticks: %v\n", change.Changes())

	score := func(hits []int) (tp int) {
		seen := map[int]bool{}
		for _, h := range hits {
			for _, a := range series.Anomalies {
				if h >= a.Index-2 && h <= a.Index+a.Len+2 && !seen[a.Index] {
					seen[a.Index] = true
					tp++
				}
			}
		}
		return tp
	}
	fmt.Printf("events caught: EWMA %d/3, MAD %d/3\n\n", score(ewmaHits), score(madHits))

	// Part 2: impute 8% dropped readings.
	masked, missing := workload.WithMissing(workload.NewRNG(7), series.Values, 0.08)
	kal, _ := repro.NewKalman(0.05, 0.5)
	holt, _ := repro.NewHolt(0.5, 0.1)
	kalmanRMSE := imputeRMSE(kal, series.Values, masked)
	holtRMSE := imputeRMSE(holt, series.Values, masked)
	lastRMSE := imputeLastValue(series.Values, masked)

	fmt.Printf("missing readings: %d of %d\n", len(missing), len(series.Values))
	fmt.Printf("imputation RMSE:  kalman %.3f   holt %.3f   last-value %.3f\n",
		kalmanRMSE, holtRMSE, lastRMSE)
	fmt.Println("(lower is better; the model-based imputers track the diurnal trend)")
}

type predictor interface {
	Predict() float64
	Observe(v float64)
}

func imputeRMSE(p predictor, truth, masked []float64) float64 {
	var sumSq float64
	var n int
	for i := range masked {
		f := p.Predict()
		if math.IsNaN(masked[i]) {
			d := f - truth[i]
			sumSq += d * d
			n++
			p.Observe(f)
		} else {
			p.Observe(masked[i])
		}
	}
	return math.Sqrt(sumSq / float64(n))
}

func imputeLastValue(truth, masked []float64) float64 {
	var sumSq float64
	var n int
	last := masked[0]
	for i := range masked {
		if math.IsNaN(masked[i]) {
			d := last - truth[i]
			sumSq += d * d
			n++
		} else {
			last = masked[i]
		}
	}
	return math.Sqrt(sumSq / float64(n))
}

func head(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}
