// Command trending runs the tutorial's flagship application — trending
// hashtags — as a Storm/Heron-style topology on the engine substrate:
//
//	tweets (spout) --shuffle--> extract (bolt x4) --fields--> count (bolt x4)
//
// Each counting task owns a Space-Saving summary for its key shard (fields
// grouping guarantees a hashtag always lands on the same task), and the
// shards merge at the end — the scale-out pattern the tutorial's
// "algorithms should scale out" requirement describes, with at-least-once
// delivery and injected failures to show the semantics.
package main

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/workload"
)

func main() {
	const tweets = 100000
	rng := workload.NewRNG(7)
	tags := workload.NewZipf(rng, 2000, 1.25)

	// Spout: synthetic tweets, each with 1-3 hashtags.
	emitted := 0
	spout := repro.SpoutFunc(func() (repro.TupleMessage, bool) {
		if emitted >= tweets {
			return repro.TupleMessage{}, false
		}
		emitted++
		n := 1 + rng.Intn(3)
		var sb strings.Builder
		sb.WriteString("some tweet text")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, " #t%d", tags.Draw())
		}
		return repro.TupleMessage{Value: sb.String()}, true
	})

	// Extract bolt: flaky on purpose — 1 in 500 tuples fails transiently,
	// demonstrating at-least-once replay.
	var injected int64
	extract := func(task int) repro.Bolt {
		n := 0
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			n++
			if n%500 == 250 {
				atomic.AddInt64(&injected, 1)
				return errors.New("transient extract failure")
			}
			for _, tok := range strings.Fields(m.Value.(string)) {
				if strings.HasPrefix(tok, "#") {
					emit(repro.TupleMessage{Key: tok, Value: 1})
				}
			}
			return nil
		})
	}

	// Count bolt: one Space-Saving shard per task.
	const shards = 4
	var mu sync.Mutex
	summaries := make([]*repro.SpaceSaving, shards)
	count := func(task int) repro.Bolt {
		ss, err := repro.NewSpaceSaving(200)
		if err != nil {
			panic(err)
		}
		mu.Lock()
		summaries[task] = ss
		mu.Unlock()
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			ss.Update(m.Key)
			return nil
		})
	}

	top, err := repro.NewTopologyBuilder().
		AddSpout("tweets", spout).
		AddBolt("extract", extract, 4, repro.ShuffleFrom("tweets")).
		AddBolt("count", count, shards, repro.FieldsFrom("extract")).
		Build(repro.TopologyConfig{Semantics: repro.AtLeastOnce, MaxRetries: 5})
	if err != nil {
		panic(err)
	}
	stats := top.Run()

	// Merge shard top-k lists (fields grouping makes shards disjoint by
	// key, so concatenation is a valid merge).
	var all []repro.Counted
	for _, ss := range summaries {
		if ss != nil {
			all = append(all, ss.TopK(20)...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Count > all[j].Count })

	fmt.Printf("tweets: %d   acked: %d   replayed: %d   dropped: %d   injected failures: %d\n",
		stats.SpoutEmitted, stats.Acked, stats.Replayed, stats.Dropped, injected)
	fmt.Println("\ntop-10 trending hashtags across shards:")
	for i, c := range all {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. %-8s ~%d occurrences\n", i+1, c.Item, c.Count)
	}
	fmt.Println("\n(at-least-once: counts may include duplicates from replayed tuples;")
	fmt.Println(" wrap the counting bolt in repro.NewDedup for effectively-once counts)")
}
