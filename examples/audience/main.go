// Command audience reproduces the tutorial's site-audience-analysis
// application: a day of page views over a Kafka-like partitioned log,
// consumed by a worker group that maintains per-section unique-visitor
// counts (HyperLogLog), cross-section audience overlap (KMV Jaccard),
// session-duration percentiles (CKMS targeted at p50/p99), and a uniform
// sample of visitors for an A/B test (reservoir sampling).
package main

import (
	"encoding/binary"
	"fmt"

	"repro"
	"repro/internal/workload"
)

const sections = 4

var sectionNames = [sections]string{"home", "news", "sports", "video"}

func main() {
	const views = 300000
	rng := workload.NewRNG(2024)
	visitors := workload.NewZipf(rng, 80000, 1.05)

	// Producer: page views into a 4-partition topic, keyed by visitor so
	// each visitor's events stay ordered within a partition.
	broker := repro.NewBroker()
	topic, err := broker.CreateTopic("pageviews", 4, 0)
	if err != nil {
		panic(err)
	}
	for i := 0; i < views; i++ {
		visitor := visitors.Draw()
		section := pickSection(rng, visitor)
		dur := uint32(2000 * rng.ExpFloat64()) // ms, long-tailed
		var payload [16]byte
		binary.LittleEndian.PutUint64(payload[0:], visitor)
		binary.LittleEndian.PutUint32(payload[8:], uint32(section))
		binary.LittleEndian.PutUint32(payload[12:], dur)
		topic.Produce(fmt.Sprintf("v%d", visitor), payload[:])
	}

	// Consumer group: two workers share the topic; sketches merge after.
	group, err := repro.NewConsumerGroup(broker, topic, "analytics")
	if err != nil {
		panic(err)
	}
	group.Join("worker-1")
	group.Join("worker-2")

	type workerState struct {
		uniq    [sections]*repro.HyperLogLog
		overlap [sections]*repro.KMV
		dur     *repro.CKMS
		sample  interface{ Update(uint64) }
	}
	mkState := func() *workerState {
		st := &workerState{}
		for s := 0; s < sections; s++ {
			st.uniq[s], _ = repro.NewHyperLogLog(13, 5)
			st.overlap[s], _ = repro.NewKMV(2048, 5)
		}
		st.dur, _ = repro.NewCKMS([]repro.QuantileTarget{
			{Phi: 0.5, Eps: 0.02}, {Phi: 0.99, Eps: 0.001},
		})
		res, _ := repro.NewReservoir[uint64](1000, 5)
		st.sample = res
		return st
	}
	states := map[string]*workerState{"worker-1": mkState(), "worker-2": mkState()}
	abSample, _ := repro.NewReservoir[uint64](1000, 5)

	for _, w := range []string{"worker-1", "worker-2"} {
		st := states[w]
		for {
			batches := group.Poll(w, 10000)
			if len(batches) == 0 {
				break
			}
			for _, b := range batches {
				for _, m := range b.Messages {
					visitor := binary.LittleEndian.Uint64(m.Value[0:])
					section := int(binary.LittleEndian.Uint32(m.Value[8:]))
					dur := binary.LittleEndian.Uint32(m.Value[12:])
					st.uniq[section].UpdateUint64(visitor)
					st.overlap[section].UpdateUint64(visitor)
					st.dur.Update(float64(dur))
					abSample.Update(visitor)
				}
				group.Commit(b.Partition, b.Next)
			}
		}
	}

	// Merge the workers' sketches (the scale-out step).
	merged := states["worker-1"]
	other := states["worker-2"]
	for s := 0; s < sections; s++ {
		if err := merged.uniq[s].Merge(other.uniq[s]); err != nil {
			panic(err)
		}
		if err := merged.overlap[s].Merge(other.overlap[s]); err != nil {
			panic(err)
		}
	}

	fmt.Printf("page views: %d   consumer lag after run: %d\n\n", views, broker.Lag("analytics", topic))
	fmt.Println("unique visitors per section (merged HLL):")
	for s := 0; s < sections; s++ {
		fmt.Printf("  %-7s %8.0f\n", sectionNames[s], merged.uniq[s].Estimate())
	}
	j, _ := merged.overlap[1].Jaccard(merged.overlap[2])
	fmt.Printf("\naudience overlap news<->sports (KMV Jaccard): %.3f\n", j)

	fmt.Println("\nsession duration percentiles (worker-1 shard, CKMS):")
	fmt.Printf("  p50 = %6.0f ms\n", merged.dur.Query(0.5))
	fmt.Printf("  p99 = %6.0f ms\n", merged.dur.Query(0.99))

	fmt.Printf("\nA/B-test sample: %d uniform visitors drawn from the stream\n",
		len(abSample.Sample()))
}

// pickSection correlates section preference with the visitor id so that
// news and sports share audience (they get overlapping visitor ranges).
func pickSection(rng *workload.RNG, visitor uint64) int {
	r := rng.Float64()
	if visitor%3 == 0 { // sports-and-news crowd
		if r < 0.45 {
			return 1
		}
		if r < 0.9 {
			return 2
		}
		return 0
	}
	switch {
	case r < 0.5:
		return 0
	case r < 0.7:
		return 1
	case r < 0.8:
		return 2
	default:
		return 3
	}
}
