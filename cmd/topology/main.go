// Command topology runs a configurable wordcount topology on the engine,
// exposing the Table 2 design space from the command line: delivery
// semantics, parallelism, failure injection and queue sizes.
//
// Usage:
//
//	topology [-n tuples] [-p parallelism] [-semantics atmost|atleast]
//	         [-fail-every n] [-queue size]
package main

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 100000, "number of input sentences")
	parallelism := flag.Int("p", 4, "bolt parallelism")
	semantics := flag.String("semantics", "atleast", "delivery semantics: atmost|atleast")
	failEvery := flag.Int("fail-every", 0, "inject a bolt failure every N tuples (0 = none)")
	queue := flag.Int("queue", 256, "task queue size")
	flag.Parse()

	sem := repro.AtLeastOnce
	if *semantics == "atmost" {
		sem = repro.AtMostOnce
	}

	words := []string{"real", "time", "analytics", "algorithms", "and", "systems", "storm", "heron", "lambda"}
	rng := workload.NewRNG(1)
	emitted := 0
	spout := repro.SpoutFunc(func() (repro.TupleMessage, bool) {
		if emitted >= *n {
			return repro.TupleMessage{}, false
		}
		emitted++
		var sb strings.Builder
		for i := 0; i < 4; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		return repro.TupleMessage{Value: sb.String()}, true
	})

	var processed int64
	split := func(int) repro.Bolt {
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			if *failEvery > 0 && atomic.AddInt64(&processed, 1)%int64(*failEvery) == 0 {
				return errors.New("injected failure")
			}
			for _, w := range strings.Fields(m.Value.(string)) {
				emit(repro.TupleMessage{Key: w, Value: 1})
			}
			return nil
		})
	}

	var mu sync.Mutex
	counts := map[string]int{}
	count := func(int) repro.Bolt {
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			mu.Lock()
			counts[m.Key]++
			mu.Unlock()
			return nil
		})
	}

	top, err := repro.NewTopologyBuilder().
		AddSpout("sentences", spout).
		AddBolt("split", split, *parallelism, repro.ShuffleFrom("sentences")).
		AddBolt("count", count, *parallelism, repro.FieldsFrom("split")).
		Build(repro.TopologyConfig{Semantics: sem, QueueSize: *queue, MaxRetries: 5})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	stats := top.Run()
	elapsed := time.Since(start)

	fmt.Printf("semantics=%s parallelism=%d queue=%d fail-every=%d\n",
		*semantics, *parallelism, *queue, *failEvery)
	fmt.Printf("sentences=%d elapsed=%v throughput=%.0f sentences/sec\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds())
	fmt.Printf("acked=%d replayed=%d dropped=%d split-errors=%d\n",
		stats.Acked, stats.Replayed, stats.Dropped, stats.Errors["split"])
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("distinct words=%d total word count=%d (expect %d without loss/dup)\n",
		len(counts), total, *n*4)
}
