// Command dstore demonstrates the partitioned store cluster as a live
// multi-node serving system, end to end across the repo's subsystems:
//
//   - a topology produces Zipf-keyed events through a SinkBolt, whose
//     router partitions them by key onto the cluster's mqlog ingest topic
//     (batched appends);
//   - N single-threaded node event loops consume their assigned
//     partitions through a consumer group, each into its own sketch
//     store (the scale-out speed layer);
//   - queries are answered by owner routing and by scatter-gather
//     (site-wide uniques merged across every node);
//   - a node is killed — the survivors recover its partitions by
//     replaying the log — and later rejoins, and after each membership
//     change the cluster's answers are compared to a single-store oracle
//     rebuilt from the same log.
//
// Usage:
//
//	go run ./cmd/dstore [-nodes 4] [-events 200000] [-partitions 8] [-dir /tmp/dstore] [-metrics :9090]
//
// With -dir, the ingest log persists as segmented on-disk files and node
// stores checkpoint there: rerunning over the same directory recovers the
// log (torn tail truncated), and node recoveries whose assignment still
// matches a checkpoint restore the snapshot and replay only the suffix.
package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/dstore"
	"repro/internal/engine"
	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes")
	events := flag.Int("events", 200000, "events to ingest")
	partitions := flag.Int("partitions", 8, "ingest topic partitions")
	dir := flag.String("dir", "", "persist the ingest log and node checkpoints under this directory (empty = in-memory)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/analytics on this address (e.g. :9090)")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint up this long after the demo finishes")
	traceRate := flag.Float64("trace", 0, "trace sample rate in [0,1]; with -metrics also serves /debug/traces and /debug/slow")
	slowThresh := flag.Duration("slow", 2*time.Millisecond, "queries at or over this duration are kept and slow-logged (needs -trace)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the -metrics address")
	flag.Parse()

	// Telemetry and tracing are opt-in: with no -metrics flag, reg stays
	// nil and the SetTelemetry/Instrument calls below are no-ops; with no
	// -trace flag, trc stays nil the same way.
	var reg *telemetry.Registry
	var trc *trace.Tracer
	if *traceRate > 0 {
		trc = trace.NewTracer(trace.Config{SampleRate: *traceRate, SlowThreshold: *slowThresh})
	}
	if *metricsAddr != "" {
		reg = telemetry.New()
		srv := telemetry.ServeWith(*metricsAddr, reg, telemetry.DebugOptions{Tracer: trc, Pprof: *pprofOn})
		defer srv.Close()
		fmt.Printf("telemetry: http://localhost%s/metrics and /debug/analytics\n", *metricsAddr)
		if trc != nil {
			fmt.Printf("tracing: http://localhost%s/debug/traces (chrome://tracing) and /debug/slow\n", *metricsAddr)
		}
		if *pprofOn {
			fmt.Printf("pprof: http://localhost%s/debug/pprof/\n", *metricsAddr)
		}
	}

	const (
		keySpace    = 64
		users       = 20000
		bucketWidth = 100
		ringBuckets = 64
	)

	protos := map[string]store.Prototype{}
	mustProto := func(name string, p store.Prototype, err error) {
		if err != nil {
			panic(err)
		}
		protos[name] = p
	}
	hll, err := store.NewDistinctProto(12, 42)
	mustProto("uniques", hll, err)
	topk, err := store.NewTopKProto(64)
	mustProto("top-pages", topk, err)
	quant, err := store.NewQuantileProto(20, 128)
	mustProto("latency-us", quant, err)

	storeCfg := store.Config{Shards: 8, BucketWidth: bucketWidth, RingBuckets: ringBuckets}
	clusterCfg := dstore.Config{Partitions: *partitions, Store: storeCfg}
	if *dir != "" {
		clusterCfg.Durable = &mqlog.DurableConfig{Dir: filepath.Join(*dir, "log")}
		clusterCfg.CheckpointDir = filepath.Join(*dir, "ckpt")
	}
	cluster, err := dstore.New(clusterCfg)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	if *dir != "" {
		ds := cluster.Topic().DurabilityStats()
		if ds.RecoveredRecords > 0 {
			fmt.Printf("restart: recovered %d log records from %s (recovery scan %.1fms)\n",
				ds.RecoveredRecords, *dir, float64(ds.RecoveryNanos)/1e6)
		} else {
			fmt.Printf("durable ingest log at %s (kill and rerun to watch recovery)\n", *dir)
		}
	}
	for name, p := range protos {
		if err := cluster.RegisterMetric(name, p); err != nil {
			panic(err)
		}
	}
	// One call wires the whole cluster: ingest topic, consumer group,
	// fan-out/recovery histograms, and every node store (including the
	// stores rebuilt by the kill/rejoin rebalances below). SetTracer
	// follows the same discipline for spans and trace-context headers.
	cluster.SetTelemetry(reg)
	cluster.SetTracer(trc)
	for i := 0; i < *nodes; i++ {
		if _, err := cluster.StartNode(); err != nil {
			panic(err)
		}
	}

	// Producers: a topology feeding the cluster through a SinkBolt —
	// the router behind it partitions by key onto the ingest log.
	rng := workload.NewRNG(7)
	zipfKey := workload.NewZipf(rng, keySpace, 1.2)
	zipfUser := workload.NewZipf(rng, users, 1.05)
	var now int64
	emitted := 0
	spout := engine.SpoutFunc(func() (engine.Message, bool) {
		if emitted >= *events {
			return engine.Message{}, false
		}
		// Each event carries three observations; rotate through them so
		// one spout emits a single metric per tuple.
		i := emitted
		emitted++
		now = int64(i / 3)
		page := fmt.Sprintf("page:/p%d", zipfKey.Draw())
		var obs store.Observation
		switch i % 3 {
		case 0:
			obs = store.Observation{Metric: "uniques", Key: page, Item: fmt.Sprintf("u%d", zipfUser.Draw()), Time: now}
		case 1:
			obs = store.Observation{Metric: "top-pages", Key: "global", Item: page, Time: now}
		default:
			obs = store.Observation{Metric: "latency-us", Key: page, Value: uint64(50 + (now*2654435761)%2000), Time: now}
		}
		return engine.Message{Key: obs.Key, Value: obs}, true
	})
	// The router is an analytics.Backend, so the generic serving sink
	// drives it — the same bolt would drive a single store or a Lambda.
	sink, err := engine.NewSinkBolt(analytics.Instrument(cluster.Router(), reg, "cluster", analytics.WithTracer(trc)), nil)
	if err != nil {
		panic(err)
	}
	topo, err := engine.NewBuilder().
		AddSpout("events", spout).
		AddBolt("cluster", sink.Factory(), 4, engine.FieldsFrom("events")).
		Build(engine.Config{Semantics: engine.AtLeastOnce})
	if err != nil {
		panic(err)
	}

	fmt.Printf("ingesting %d events through a SinkBolt topology into %d nodes over %d partitions...\n",
		*events, *nodes, *partitions)
	start := time.Now()
	topoStats := topo.Run()
	sink.Flush()
	if err := cluster.Drain(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start).Seconds()

	cstats := cluster.Stats()
	fmt.Printf("\ncluster: %d observations consumed in %.2fs (%.0f obs/sec); topology acked %d\n",
		cstats.Applied+cstats.Replayed, elapsed,
		float64(cstats.Applied+cstats.Replayed)/elapsed, topoStats.Acked)
	ends := cluster.Topic().EndOffsets()
	var logged uint64
	for _, e := range ends {
		logged += e
	}
	fmt.Printf("  ingest log: %d messages over %d partitions %v\n", logged, len(ends), ends)
	fmt.Printf("  %d nodes, %d recoveries, %d entries, %d synopsis bytes, lag %d\n",
		cstats.Nodes, cstats.Recoveries, cstats.Store.Entries, cstats.Store.Bytes, cstats.Lag)

	// Scatter-gather through the typed serving API: one aggregate request
	// over every page fans out to the owning nodes (each node range-merges
	// its keys in a single batched store query) and combines the partials
	// — no per-key query loop, no synopsis type assertions.
	router := cluster.Router()
	pages := router.Keys("uniques")
	union, err := router.Query(store.QueryRequest{
		Metric: "uniques", Keys: pages, From: 0, To: now + 1, Aggregate: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nscatter-gather: site-wide uniques over %d pages ~= %d users\n",
		len(pages), union.Distinct())
	top, err := router.Query(store.QueryRequest{Metric: "top-pages", Key: "global", From: 0, To: now + 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("top pages (Space-Saving, owner-routed):")
	for _, c := range top.TopK(5) {
		fmt.Printf("  %-12s ~%d views\n", c.Item, c.Count)
	}

	// Oracle: one store rebuilt from the same log.
	oracle, _, err := store.Rebuild(storeCfg, protos, cluster.Topic(), nil)
	if err != nil {
		panic(err)
	}
	compare := func(context string) {
		keys := oracle.Keys("uniques")
		sort.Strings(keys)
		// One multi-key request per side replaces a per-key query loop:
		// the cluster fans out to owning nodes, the oracle gathers each
		// shard's keys under one lock.
		req := store.QueryRequest{Metric: "uniques", Keys: keys, From: 0, To: now + 1}
		got, err := router.Query(req)
		if err != nil {
			panic(err)
		}
		want, err := oracle.Query(req)
		if err != nil {
			panic(err)
		}
		mismatch := 0
		for i, a := range got.Answers() {
			if a.Distinct() != want.Answers()[i].Distinct() {
				mismatch++
			}
		}
		verdict := "all answers equal the single-store oracle"
		if mismatch > 0 {
			verdict = fmt.Sprintf("%d answers DIVERGE from the oracle", mismatch)
		}
		fmt.Printf("%s: checked %d keys — %s\n", context, len(keys), verdict)
	}
	compare("\nsteady state")

	if *dir != "" {
		// Snapshot every node now: recoveries below whose assignment still
		// matches restore from the checkpoint instead of replaying the
		// whole owned prefix.
		if err := cluster.Checkpoint(); err != nil {
			panic(err)
		}
		fmt.Println("checkpointed every node's store (recoveries now replay only the suffix)")
	}

	victim := cluster.NodeNames()[0]
	fmt.Printf("\nkilling %s (its store is discarded; survivors replay its partitions from the log)...\n", victim)
	start = time.Now()
	if err := cluster.StopNode(victim); err != nil {
		panic(err)
	}
	if err := cluster.Drain(); err != nil {
		panic(err)
	}
	fmt.Printf("rebalanced + recovered in %.2fs (%d nodes)\n", time.Since(start).Seconds(), len(cluster.NodeNames()))
	compare("after kill")

	fmt.Println("\nrejoining a node (everyone rebuilds for the new assignment)...")
	start = time.Now()
	if _, err := cluster.StartNode(); err != nil {
		panic(err)
	}
	if err := cluster.Drain(); err != nil {
		panic(err)
	}
	fmt.Printf("rebalanced + recovered in %.2fs (%d nodes)\n", time.Since(start).Seconds(), len(cluster.NodeNames()))
	compare("after rejoin")

	if *dir != "" {
		final := cluster.Stats()
		fmt.Printf("\ncheckpoint-seeded recoveries: %d (suffix-only replays)\n", final.CheckpointRestores)
	}

	fmt.Println("\nper-node state:")
	for _, name := range cluster.NodeNames() {
		n := cluster.Node(name)
		if n == nil {
			continue
		}
		st, ok := n.StoreStats()
		if !ok {
			fmt.Printf("  %-8s recovering\n", name)
			continue
		}
		fmt.Printf("  %-8s partitions %v: %d entries, %d synopsis bytes, %d observations\n",
			name, cluster.Assignment(name), st.Entries, st.Bytes, st.Observed)
	}

	if *metricsAddr != "" && *linger > 0 {
		fmt.Printf("\nserving metrics on %s for %s (scrape now)...\n", *metricsAddr, *linger)
		time.Sleep(*linger)
	}
}
