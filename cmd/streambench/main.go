// Command streambench regenerates every table and figure of the
// reproduced paper's evaluation surface (Table 1 rows, Section 2
// synopses, Table 2 platform comparisons, Figure 1 Lambda Architecture,
// plus the design-choice ablations) and prints them as aligned text
// tables. Run with an experiment id (e.g. "T1.4" or "F1") to print one.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	want := ""
	if len(os.Args) > 1 {
		want = strings.ToUpper(os.Args[1])
	}
	printed := 0
	for _, table := range experiments.All() {
		if want != "" && strings.ToUpper(table.ID) != want {
			continue
		}
		fmt.Println(table.String())
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:\n", want)
		for _, table := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-6s %s\n", table.ID, table.Title)
		}
		os.Exit(1)
	}
}
