// Command streambench regenerates every table and figure of the
// reproduced paper's evaluation surface (Table 1 rows, Section 2
// synopses, Table 2 platform comparisons, Figure 1 Lambda Architecture,
// plus the design-choice ablations) and prints them as aligned text
// tables. Run with an experiment id (e.g. "T1.4" or "F1") to print one —
// only the selected experiment is executed.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	want := ""
	if len(os.Args) > 1 {
		want = strings.ToUpper(os.Args[1])
	}
	printed := 0
	for _, b := range experiments.Builders() {
		if want != "" && strings.ToUpper(b.ID) != want {
			continue
		}
		table := b.Build()
		fmt.Println(table.String())
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:\n", want)
		for _, b := range experiments.Builders() {
			fmt.Fprintf(os.Stderr, "  %-6s %s\n", b.ID, b.Title)
		}
		os.Exit(1)
	}
}
