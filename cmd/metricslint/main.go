// Command metricslint scrapes a Prometheus text-exposition payload (from
// a URL, a file, or stdin) and lints it: every line must be valid
// exposition syntax, every metric family must carry HELP and TYPE
// comments, and every family name must match the repo's telemetry
// convention ^analytics_[a-z_]+$ (histogram _bucket/_sum/_count series
// are attributed to their family). CI runs it against a live demo's
// -metrics endpoint, so -retries polls until the server is up.
//
// It also lints the tracing surface: -traceurl (or -tracefile) reads a
// /debug/traces payload and validates it against the Chrome trace-event
// schema the repo emits — a top-level traceEvents array of complete
// ("X"-phase) events with microsecond timestamps, pid/tid lanes and
// string-valued args, with no unknown fields. Both lints can run in one
// invocation.
//
// Usage:
//
//	go run ./cmd/metricslint -url http://localhost:9090/metrics [-retries 30]
//	go run ./cmd/metricslint -file scrape.txt [-require store,mqlog]
//	go run ./cmd/metricslint -traceurl http://localhost:9090/debug/traces [-min-events 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

var namePat = regexp.MustCompile(`^analytics_[a-z_]+$`)

func main() {
	url := flag.String("url", "", "scrape this URL")
	file := flag.String("file", "", "read this file instead of scraping (\"-\" for stdin)")
	retries := flag.Int("retries", 30, "URL fetch attempts, one second apart (a demo may still be starting)")
	minSamples := flag.Int("min-samples", 1, "fail unless the payload has at least this many samples")
	require := flag.String("require", "", "comma-separated layer names; fail unless analytics_<layer>_ metrics are present for each")
	traceURL := flag.String("traceurl", "", "also lint a /debug/traces payload scraped from this URL")
	traceFile := flag.String("tracefile", "", "also lint this /debug/traces payload file (\"-\" for stdin)")
	minEvents := flag.Int("min-events", 0, "fail unless the trace payload has at least this many events")
	flag.Parse()

	if *traceURL != "" || *traceFile != "" {
		payload, err := fetch(*traceURL, *traceFile, *retries)
		if err != nil {
			fail("%v", err)
		}
		events, errs := tracelint(payload)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "tracelint: %s\n", e)
		}
		if len(errs) > 0 {
			fail("%d trace-event schema errors", len(errs))
		}
		if events < *minEvents {
			fail("only %d trace events (< %d)", events, *minEvents)
		}
		fmt.Printf("tracelint: OK — %d events\n", events)
		if *url == "" && *file == "" {
			return
		}
	}

	payload, err := fetch(*url, *file, *retries)
	if err != nil {
		fail("%v", err)
	}
	families, samples, errs := lint(payload)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "metricslint: %s\n", e)
	}
	if len(errs) > 0 {
		fail("%d lint errors in %d lines", len(errs), strings.Count(payload, "\n"))
	}
	if samples < *minSamples {
		fail("only %d samples (< %d)", samples, *minSamples)
	}
	if *require != "" {
		var missing []string
		for _, layer := range strings.Split(*require, ",") {
			layer = strings.TrimSpace(layer)
			prefix := "analytics_" + layer + "_"
			found := false
			for name := range families {
				if strings.HasPrefix(name, prefix) {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, layer)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			fail("no metrics from required layers: %s", strings.Join(missing, ", "))
		}
	}
	fmt.Printf("metricslint: OK — %d families, %d samples\n", len(families), samples)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricslint: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func fetch(url, file string, retries int) (string, error) {
	switch {
	case url != "" && file != "":
		return "", fmt.Errorf("-url and -file are mutually exclusive")
	case file == "-":
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	case file != "":
		b, err := os.ReadFile(file)
		return string(b), err
	case url == "":
		return "", fmt.Errorf("one of -url or -file is required")
	}
	var lastErr error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(time.Second)
		}
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: status %d", url, resp.StatusCode)
			continue
		}
		return string(b), nil
	}
	return "", fmt.Errorf("%s unreachable after %d attempts: %v", url, retries, lastErr)
}

// family accumulates what the linter learned about one metric family.
type family struct {
	help, typ string
	samples   int
}

// lint walks the payload line by line; it returns the families seen, the
// total sample count, and one message per violation.
func lint(payload string) (map[string]*family, int, []string) {
	families := map[string]*family{}
	fam := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	var errs []string
	samples := 0
	for i, line := range strings.Split(payload, "\n") {
		bad := func(format string, args ...any) {
			errs = append(errs, fmt.Sprintf("line %d: %s: %q", i+1, fmt.Sprintf(format, args...), line))
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				bad("comment is neither HELP nor TYPE")
				continue
			}
			name := fields[2]
			if !namePat.MatchString(name) {
				bad("family %q does not match ^analytics_[a-z_]+$", name)
			}
			if fields[1] == "HELP" {
				fam(name).help = fields[3]
				continue
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
				fam(name).typ = fields[3]
			default:
				bad("unknown TYPE %q", fields[3])
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			bad("%v", err)
			continue
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && families[b] != nil {
				base = b
				break
			}
		}
		if !namePat.MatchString(base) {
			bad("metric %q does not match ^analytics_[a-z_]+$", base)
		}
		f, ok := families[base]
		if !ok {
			bad("sample for %q precedes its HELP/TYPE comments", base)
			continue
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			bad("value %q is not a float", rest)
			continue
		}
		f.samples++
		samples++
	}
	for name, f := range families {
		if f.help == "" {
			errs = append(errs, fmt.Sprintf("family %s has no HELP", name))
		}
		if f.typ == "" {
			errs = append(errs, fmt.Sprintf("family %s has no TYPE", name))
		}
		if f.samples == 0 {
			errs = append(errs, fmt.Sprintf("family %s has no samples", name))
		}
	}
	return families, samples, errs
}

// tracelint validates a /debug/traces payload against the Chrome
// trace-event schema the tracer exports: a JSON object whose
// traceEvents array holds complete ("X"-phase) events — non-empty name,
// non-negative microsecond ts/dur, pid 1, a per-trace tid lane, and
// string-valued args carrying at least the trace_id/span_id pair — and
// whose only other member is the tracer's stats metadata. Events are
// decoded with unknown fields disallowed, so schema drift fails loudly.
func tracelint(payload string) (int, []string) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Metadata    json.RawMessage   `json:"metadata"`
	}
	dec := json.NewDecoder(strings.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return 0, []string{fmt.Sprintf("payload is not a trace-event document: %v", err)}
	}
	if doc.TraceEvents == nil {
		return 0, []string{"no traceEvents array (an empty tracer must still emit one)"}
	}
	var errs []string
	idPat := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for i, raw := range doc.TraceEvents {
		bad := func(format string, args ...any) {
			errs = append(errs, fmt.Sprintf("event %d: %s", i, fmt.Sprintf(format, args...)))
		}
		var ev struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *uint64           `json:"tid"`
			Args map[string]string `json:"args"`
		}
		d := json.NewDecoder(strings.NewReader(string(raw)))
		d.DisallowUnknownFields()
		if err := d.Decode(&ev); err != nil {
			bad("not a trace event: %v", err)
			continue
		}
		if ev.Name == "" {
			bad("empty name")
		}
		if ev.Ph != "X" {
			bad("phase %q, want complete event %q", ev.Ph, "X")
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			bad("missing or negative ts")
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			bad("missing or negative dur")
		}
		if ev.Pid == nil || *ev.Pid != 1 {
			bad("pid is not the tracer's single process lane")
		}
		if ev.Tid == nil {
			bad("missing tid lane")
		}
		for _, key := range []string{"trace_id", "span_id"} {
			if !idPat.MatchString(ev.Args[key]) {
				bad("args[%s] %q is not 16 hex digits", key, ev.Args[key])
			}
		}
	}
	return len(doc.TraceEvents), errs
}

// splitSample splits `name{labels} value` (or `name value`) into the
// metric name and the value text, validating the label block's syntax.
func splitSample(line string) (name, value string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return "", "", fmt.Errorf("no value")
		}
		return name, value, nil
	}
	name = line[:brace]
	rest := line[brace+1:]
	// Walk the label pairs, honoring \" escapes inside quoted values.
	for {
		if strings.HasPrefix(rest, "}") {
			return name, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			return "", "", fmt.Errorf("malformed label block")
		}
		labelName := rest[:eq]
		if labelName == "" || strings.ContainsAny(labelName, `{}" `) {
			return "", "", fmt.Errorf("malformed label name %q", labelName)
		}
		rest = rest[eq+2:]
		for {
			q := strings.IndexByte(rest, '"')
			if q < 0 {
				return "", "", fmt.Errorf("unterminated label value")
			}
			// Count the backslashes before the quote: an odd run escapes it.
			bs := 0
			for j := q - 1; j >= 0 && rest[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				rest = rest[q+1:]
				break
			}
			rest = rest[q+1:]
		}
		rest = strings.TrimPrefix(rest, ",")
	}
}
