// Command benchjson runs the serving-layer benchmarks (`go test -bench`
// over the store, mqlog and lambda packages plus the root experiment
// benchmarks) and renders the results as stable, diff-friendly JSON —
// the regenerator behind the checked-in BENCH_store.json baseline.
//
// Usage:
//
//	go run ./cmd/benchjson > BENCH_store.json
//	go run ./cmd/benchjson -bench 'StoreIngest' -pkg ./internal/store
//	go run ./cmd/benchjson -file bench.txt        # parse an existing run
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line in machine-readable form. Extra holds
// custom b.ReportMetric columns (e.g. "obs/sec") verbatim.
type Result struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the whole JSON document: enough machine context to judge
// whether a delta is hardware or code.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Command   string   `json:"command"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	pkgs := flag.String("pkg", "./internal/store,./internal/mqlog,./internal/lambda,.", "comma-separated packages to benchmark")
	benchtime := flag.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime)")
	count := flag.Int("count", 1, "runs per benchmark (go test -count)")
	file := flag.String("file", "", "parse this `go test -bench` output instead of running anything (\"-\" for stdin)")
	flag.Parse()

	var out string
	var cmdline string
	if *file != "" {
		b, err := readInput(*file)
		if err != nil {
			fatal("%v", err)
		}
		out, cmdline = b, "parsed from "+*file
	} else {
		args := []string{"test", "-run", "NONE", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, strings.Split(*pkgs, ",")...)
		cmdline = "go " + strings.Join(args, " ")
		fmt.Fprintf(os.Stderr, "benchjson: %s\n", cmdline)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		b, err := cmd.Output()
		if err != nil {
			fatal("%s: %v", cmdline, err)
		}
		out = string(b)
	}

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Command:   cmdline,
	}
	report.CPU, report.Results = parse(out)
	if len(report.Results) == 0 {
		fatal("no benchmark lines in output")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func readInput(file string) (string, error) {
	if file == "-" {
		var sb strings.Builder
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		return sb.String(), sc.Err()
	}
	b, err := os.ReadFile(file)
	return string(b), err
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse walks `go test -bench` output: pkg:/cpu: context lines set the
// current package and machine, Benchmark lines become Results.
func parse(out string) (cpu string, results []Result) {
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Package: pkg, Name: m[1], Iterations: iters}
		// The tail alternates "<value> <unit>" pairs: ns/op, B/op,
		// allocs/op, then any ReportMetric extras.
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		results = append(results, r)
	}
	return cpu, results
}
