// Command analyticsd serves the analytics.Backend contract over HTTP:
// the repo's serving tier as a standalone daemon. One port carries the
// data plane (register / observe / query / keys / stats under /v1/) and
// the observability plane (/metrics, /debug/analytics, /debug/traces,
// /debug/slow, optional /debug/pprof) — see internal/serve for the wire
// format and headers.
//
// The backend is selectable: the sharded store (default), the
// partitioned cluster behind its ingest log, or the full Lambda
// Architecture. Sealed-range query answers are cached at the edge
// (internal/rcache) and invalidated as writes arrive; responses carry
// "cached": true when served from the cache.
//
// With -rate > 0 the daemon runs admission control (internal/admission):
// token buckets bound total ingest, each metric and each tenant (billed
// to the -tenant-header request header), the cluster backend feeds its
// consumer-group lag into the backpressure ladder, and shed writes
// answer 429 with a Retry-After header instead of degrading everyone.
//
// Usage:
//
//	go run ./cmd/analyticsd [-addr :8080] [-backend store|cluster|lambda]
//	    [-events 50000] [-cache 4096] [-trace 0.05] [-pprof]
//	    [-rate 0] [-burst 0] [-tenant-header X-Analytics-Tenant]
//
// With -events > 0 the daemon preloads a deterministic demo dataset
// (one metric per synopsis family: uniques, top-pages, page-hits,
// latency-us) so curl has something to answer immediately:
//
//	curl -s localhost:8080/v1/query -d '{"metrics":["top-pages"],"aggregate":true,"all_keys":true,"from":0,"to":4000}'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/analytics"
	"repro/internal/dstore"
	"repro/internal/lambda"
	"repro/internal/rcache"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	bucketWidth = 100
	ringBuckets = 256
)

func storeGeom(shards int) store.Config {
	return store.Config{Shards: shards, BucketWidth: bucketWidth, RingBuckets: ringBuckets}
}

// buildBackend assembles the selected serving layer. start runs any
// deferred bring-up that must wait until after metric registration (the
// cluster starts its nodes then — dstore requires every RegisterMetric
// before StartNode); drain reaches read-your-writes after preload;
// cleanup tears the layer down; lag, when non-nil, samples the
// backend's consumer-group lag for the admission controller's
// backpressure ladder.
func buildBackend(kind string, shards int, reg *telemetry.Registry, trc *trace.Tracer) (be analytics.Backend, start, drain func() error, cleanup func(), lag func() uint64, err error) {
	none := func() error { return nil }
	switch kind {
	case "store":
		st, err := store.New(storeGeom(shards))
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		st.SetTelemetry(reg)
		st.SetTracer(trc)
		return st, none, none, func() {}, nil, nil
	case "cluster":
		cl, err := dstore.New(dstore.Config{Partitions: 4, Store: storeGeom(shards)})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		cl.SetTelemetry(reg)
		cl.SetTracer(trc)
		start = func() error {
			for i := 0; i < 2; i++ {
				if _, err := cl.StartNode(); err != nil {
					return err
				}
			}
			return nil
		}
		return cl.Router(), start, cl.Drain, func() { cl.Close() }, cl.Lag, nil
	case "lambda":
		ar, err := lambda.New(lambda.Config{Batch: storeGeom(shards), Speed: storeGeom(shards)})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		ar.SetTelemetry(reg)
		ar.SetTracer(trc)
		return ar, none, ar.Drain, func() { ar.Close() }, nil, nil
	default:
		return nil, nil, nil, nil, nil, fmt.Errorf("unknown -backend %q (store, cluster or lambda)", kind)
	}
}

// registerDemo declares the demo schema (one metric per synopsis
// family) through the serving edge's own registration path. It must run
// before start() — the cluster backend refuses registrations once its
// nodes are up.
func registerDemo(srv *serve.Server) error {
	for name, spec := range map[string]serve.ProtoSpec{
		"uniques":    serve.DistinctSpec(12, 42),
		"page-hits":  serve.FreqSpec(1024, 4, 42),
		"top-pages":  serve.TopKSpec(32),
		"latency-us": serve.QuantileSpec(20, 512),
	} {
		if err := srv.Register(name, spec); err != nil {
			return err
		}
	}
	return nil
}

// preload streams a deterministic Zipf-keyed demo dataset through the
// backend and the cache-invalidation path, so a fresh daemon answers
// queries (and exercises the cache) immediately. Observations flow
// through the batched ingest path in chunks — against the cluster
// backend that is Router.ObserveBatch grouping records per partition —
// and the raw backend, not the admission-wrapped one: a daemon must
// not shed its own demo dataset.
func preload(be analytics.Backend, cache *rcache.Cache, events int) error {
	const chunk = 512
	zipf := workload.NewZipf(workload.NewRNG(7), 64, 1.2)
	batch := make([]store.Observation, 0, chunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := analytics.ObserveBatch(be, batch); err != nil {
			return err
		}
		if cache != nil {
			for i := range batch {
				cache.NoteObserve(batch[i].Metric, batch[i].Time)
			}
		}
		batch = batch[:0]
		return nil
	}
	for i := 0; i < events; i++ {
		t := int64(i)
		page := fmt.Sprintf("page-%02d", zipf.Draw())
		user := fmt.Sprintf("user-%d", (i*2654435761)%20000)
		lat := uint64(100 + (i*37)%9000)
		batch = append(batch,
			store.Observation{Metric: "uniques", Key: page, Item: user, Time: t},
			store.Observation{Metric: "page-hits", Key: page, Item: page, Time: t},
			store.Observation{Metric: "top-pages", Key: "all", Item: page, Time: t},
			store.Observation{Metric: "latency-us", Key: page, Value: lat, Time: t},
		)
		if len(batch) >= chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if f, ok := be.(analytics.Flusher); ok {
		f.Flush()
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "store", "serving layer: store, cluster or lambda")
	shards := flag.Int("shards", 8, "store shard count per node")
	events := flag.Int("events", 50000, "demo observations to preload (0 = start empty)")
	cacheEntries := flag.Int("cache", 4096, "read-cache entry budget (0 disables the cache)")
	traceRate := flag.Float64("trace", 0.05, "trace sample rate in [0,1]; 0 disables tracing")
	slowThresh := flag.Duration("slow", 2*time.Millisecond, "queries at or over this duration are slow-logged (needs -trace)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-query deadline (X-Analytics-Timeout overrides, clamped to -maxtimeout)")
	maxTimeout := flag.Duration("maxtimeout", time.Minute, "upper bound for client-requested deadlines")
	rate := flag.Float64("rate", 0, "admission rate in observations/sec shared by the global, per-metric and per-tenant buckets (0 = no admission control)")
	burst := flag.Float64("burst", 0, "admission burst size in observations (0 = 2x -rate)")
	tenantHeader := flag.String("tenant-header", serve.DefaultTenantHeader, "request header naming the tenant a write batch is billed to")
	negCache := flag.Int("negcache", 256, "negative-result cache entries for unknown-metric probes (0 disables)")
	flag.Parse()

	reg := telemetry.New()
	var trc *trace.Tracer
	if *traceRate > 0 {
		trc = trace.NewTracer(trace.Config{SampleRate: *traceRate, SlowThreshold: *slowThresh})
	}

	be, start, drain, cleanup, lag, err := buildBackend(*backend, *shards, reg, trc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyticsd:", err)
		os.Exit(1)
	}
	defer cleanup()

	// Admission: one -rate bounds total ingest, each metric and each
	// tenant individually (fairness at every scope without a flag per
	// scope). The cluster backend additionally feeds its consumer-group
	// lag into the backpressure ladder, so a daemon whose nodes fall
	// behind throttles producers instead of growing the log unboundedly.
	var ctrl *admission.Controller
	if *rate > 0 {
		if *burst <= 0 {
			*burst = 2 * *rate
		}
		cfg := admission.Config{
			Rate: *rate, Burst: *burst,
			MetricRate: *rate, MetricBurst: *burst,
			TenantRate: *rate, TenantBurst: *burst,
		}
		if lag != nil {
			cfg.Backpressure = admission.BackpressureConfig{
				Lag:     lag,
				LagHigh: uint64(*burst) * 16,
			}
		}
		if ctrl, err = admission.New(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "analyticsd:", err)
			os.Exit(1)
		}
		ctrl.SetTelemetry(reg)
	}

	var cache *rcache.Cache
	if *cacheEntries > 0 {
		cache, err = rcache.New(rcache.Config{BucketWidth: bucketWidth, MaxEntries: *cacheEntries})
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyticsd:", err)
			os.Exit(1)
		}
	}

	// Admission wraps OUTSIDE instrumentation: a shed write never reaches
	// the instrumented backend, so observe counters and latency
	// histograms only see admitted traffic (the shed side is accounted by
	// analytics_admission_*).
	srv, err := serve.NewServer(serve.Config{
		Backend:        analytics.Admit(analytics.Instrument(be, reg, *backend, analytics.WithTracer(trc)), ctrl),
		Cache:          cache,
		Registry:       reg,
		Tracer:         trc,
		Pprof:          *pprofOn,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Admission:      ctrl,
		TenantHeader:   *tenantHeader,
		NegCache:       *negCache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyticsd:", err)
		os.Exit(1)
	}

	if *events > 0 {
		if err := registerDemo(srv); err != nil {
			fmt.Fprintln(os.Stderr, "analyticsd: register:", err)
			os.Exit(1)
		}
	}
	// Deferred backend bring-up (cluster node start) happens after the
	// demo schema lands: dstore pins registration before StartNode.
	if err := start(); err != nil {
		fmt.Fprintln(os.Stderr, "analyticsd:", err)
		os.Exit(1)
	}
	if *events > 0 {
		t0 := time.Now()
		if err := preload(be, cache, *events); err != nil {
			fmt.Fprintln(os.Stderr, "analyticsd: preload:", err)
			os.Exit(1)
		}
		if err := drain(); err != nil {
			fmt.Fprintln(os.Stderr, "analyticsd: drain:", err)
			os.Exit(1)
		}
		fmt.Printf("preloaded %d events x 4 metrics in %v (backend %s)\n",
			*events, time.Since(t0).Round(time.Millisecond), *backend)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyticsd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = httpSrv.Serve(ln) }()
	// The "listening" line is the readiness signal scripts wait for —
	// printed only after the listener is bound.
	fmt.Printf("analyticsd listening on %s (backend %s, cache %d entries)\n",
		ln.Addr(), *backend, *cacheEntries)
	fmt.Printf("  data plane: POST /v1/query /v1/observe /v1/register, GET /v1/keys /v1/stats /v1/metrics\n")
	fmt.Printf("  telemetry:  GET /metrics /debug/analytics")
	if trc != nil {
		fmt.Printf(" /debug/traces /debug/slow")
	}
	if *pprofOn {
		fmt.Printf(" /debug/pprof/")
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("analyticsd: shutting down")
	_ = httpSrv.Close()
}
