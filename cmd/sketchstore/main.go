// Command sketchstore demonstrates the sharded sketch store as a live
// speed-layer serving system, end to end across the repo's subsystems:
//
//   - producers append Zipf-keyed events to an mqlog topic (the durable
//     input log of the Lambda Architecture);
//   - a topology consumes the topic through a consumer group and sinks it
//     into the store via SinkBolt tasks (the speed layer);
//   - concurrent query workers issue range merge-queries against the
//     store the whole time (the serving path);
//   - when ingest finishes, the log is replayed into a fresh store (the
//     batch layer) and both layers' answers are compared per key.
//
// Usage:
//
//	go run ./cmd/sketchstore [-shards 16] [-events 200000] [-queriers 4] [-dir /tmp/sketch] [-metrics :9090]
//
// With -dir, the input log persists as segmented on-disk files and the
// speed store is checkpointed at the end of the run: rerunning over the
// same directory recovers the log (torn tail truncated) and appends on
// top of it.
package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytics"
	"repro/internal/engine"
	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	shards := flag.Int("shards", 16, "store shard count (rounded up to a power of two)")
	events := flag.Int("events", 200000, "events to ingest")
	queriers := flag.Int("queriers", 4, "concurrent query workers")
	dir := flag.String("dir", "", "persist the input log and a store checkpoint under this directory (empty = in-memory)")
	hotReplicas := flag.Int("hotreplicas", 8, "sub-entries per detected hot key (0 disables hot-key splaying)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/analytics on this address (e.g. :9090)")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint up this long after the demo finishes")
	traceRate := flag.Float64("trace", 0, "trace sample rate in [0,1]; with -metrics also serves /debug/traces and /debug/slow")
	slowThresh := flag.Duration("slow", 2*time.Millisecond, "queries at or over this duration are kept and slow-logged (needs -trace)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the -metrics address")
	flag.Parse()

	// Telemetry and tracing are opt-in: with no -metrics flag, reg stays
	// nil and every SetTelemetry/Instrument call below is a no-op; with no
	// -trace flag, trc stays nil the same way.
	var reg *telemetry.Registry
	var trc *trace.Tracer
	if *traceRate > 0 {
		trc = trace.NewTracer(trace.Config{SampleRate: *traceRate, SlowThreshold: *slowThresh})
	}
	if *metricsAddr != "" {
		reg = telemetry.New()
		srv := telemetry.ServeWith(*metricsAddr, reg, telemetry.DebugOptions{Tracer: trc, Pprof: *pprofOn})
		defer srv.Close()
		fmt.Printf("telemetry: http://localhost%s/metrics and /debug/analytics\n", *metricsAddr)
		if trc != nil {
			fmt.Printf("tracing: http://localhost%s/debug/traces (chrome://tracing) and /debug/slow\n", *metricsAddr)
		}
		if *pprofOn {
			fmt.Printf("pprof: http://localhost%s/debug/pprof/\n", *metricsAddr)
		}
	}

	const (
		keySpace    = 64
		users       = 20000
		bucketWidth = 100
		ringBuckets = 64
	)

	protos := map[string]store.Prototype{}
	mustProto := func(name string, p store.Prototype, err error) {
		if err != nil {
			panic(err)
		}
		protos[name] = p
	}
	hll, err := store.NewDistinctProto(12, 42)
	mustProto("uniques", hll, err)
	topk, err := store.NewTopKProto(64)
	mustProto("top-pages", topk, err)
	quant, err := store.NewQuantileProto(20, 128)
	mustProto("latency-us", quant, err)

	newStore := func() *store.Store {
		st, err := store.New(store.Config{
			Shards:      *shards,
			BucketWidth: bucketWidth,
			RingBuckets: ringBuckets,
			// The Zipf page keys are exactly the traffic hot-key write
			// combining is for: detected keys batch lock-free and splay
			// across shards, and the batch rebuild below still converges.
			HotKey: store.HotKeyConfig{Replicas: *hotReplicas},
		})
		if err != nil {
			panic(err)
		}
		for name, p := range protos {
			if err := st.RegisterMetric(name, p); err != nil {
				panic(err)
			}
		}
		return st
	}
	speed := newStore()
	speed.SetTelemetry(reg)
	speed.SetTracer(trc)

	// Input log: in-memory by default, segmented on-disk with -dir (a
	// rerun over the same directory recovers the persisted prefix and
	// appends after it).
	var durable *mqlog.DurableConfig
	if *dir != "" {
		durable = &mqlog.DurableConfig{Dir: filepath.Join(*dir, "log")}
	}
	broker := mqlog.NewBroker()
	topic, err := broker.CreateTopicDurable("events", 8, 0, durable)
	if err != nil {
		panic(err)
	}
	defer topic.Close()
	topic.SetTelemetry(reg)
	if *dir != "" {
		if ds := topic.DurabilityStats(); ds.RecoveredRecords > 0 {
			fmt.Printf("restart: recovered %d log records from %s (recovery scan %.1fms)\n",
				ds.RecoveredRecords, *dir, float64(ds.RecoveryNanos)/1e6)
		}
	}

	// Producers: Zipf-keyed page views with synthetic latency values,
	// written to the log ahead of the topology (the log decouples them).
	rng := workload.NewRNG(7)
	zipfKey := workload.NewZipf(rng, keySpace, 1.2)
	zipfUser := workload.NewZipf(rng, users, 1.05)
	var clock atomic.Int64
	fmt.Printf("producing %d events to mqlog topic %q (8 partitions)...\n", *events, "events")
	for i := 0; i < *events; i++ {
		page := fmt.Sprintf("page:/p%d", zipfKey.Draw())
		user := fmt.Sprintf("u%d", zipfUser.Draw())
		ts := clock.Add(1)
		latency := uint64(50 + (ts*2654435761)%2000) // deterministic pseudo-latency
		for _, obs := range []store.Observation{
			{Metric: "uniques", Key: page, Item: user, Time: ts},
			{Metric: "top-pages", Key: "global", Item: page, Time: ts},
			{Metric: "latency-us", Key: page, Value: latency, Time: ts},
		} {
			topic.Produce(obs.Key, store.EncodeObservation(obs))
		}
	}

	// Speed layer: consumer-group spout -> SinkBolt topology, with
	// concurrent query workers hammering the store while it ingests.
	group, err := mqlog.NewConsumerGroup(broker, topic, "speed-layer")
	if err != nil {
		panic(err)
	}
	group.SetTelemetry(reg)
	group.Join("worker-0")
	// The spout drains the consumer group through a local queue; spouts
	// are pulled by a single feeder goroutine, so no locking is needed.
	runTopology := func(st *store.Store) engine.Stats {
		queue := []mqlog.Message(nil)
		src := engine.SpoutFunc(func() (engine.Message, bool) {
			for len(queue) == 0 {
				batches := group.Poll("worker-0", 512)
				if len(batches) == 0 {
					return engine.Message{}, false
				}
				for _, b := range batches {
					queue = append(queue, b.Messages...)
					group.Commit(b.Partition, b.Next)
				}
			}
			m := queue[0]
			queue = queue[1:]
			obs, ok := store.WireDecoder(m)
			if !ok {
				return engine.Message{Key: m.Key, Value: nil}, true
			}
			return engine.Message{Key: m.Key, Value: obs}, true
		})
		// Instrument gives the sink per-metric Observe counters and latency
		// histograms on top of the store's own telemetry (no-op on nil reg),
		// and with -trace it is also the span root for sampled ingests.
		sink, err := engine.NewSinkBolt(analytics.Instrument(st, reg, "store", analytics.WithTracer(trc)), nil)
		if err != nil {
			panic(err)
		}
		topo, err := engine.NewBuilder().
			AddSpout("log", src).
			AddBolt("store", sink.Factory(), 4, engine.FieldsFrom("log")).
			Build(engine.Config{Semantics: engine.AtLeastOnce})
		if err != nil {
			panic(err)
		}
		return topo.Run()
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	var queries atomic.Uint64
	// The query workers go through the same instrumented edge as the
	// sink: with -trace every request opens a root span, so anything over
	// -slow shows up in /debug/slow with its per-shard gather stages.
	qbe := analytics.Instrument(speed, reg, "store", analytics.WithTracer(trc))
	for q := 0; q < *queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now := clock.Load()
				from := now - 20*bucketWidth
				if from < 0 {
					from = 0
				}
				page := fmt.Sprintf("page:/p%d", (q*31+i)%keySpace+1)
				// One multi-metric request replaces two point queries.
				if _, err := qbe.Query(store.QueryRequest{
					Metrics: []string{"uniques", "latency-us"}, Key: page, From: from, To: now + 1,
				}); err != nil {
					panic(err)
				}
				queries.Add(2)
			}
		}(q)
	}

	fmt.Printf("ingesting through SinkBolt topology (shards=%d) with %d concurrent queriers...\n",
		speed.Shards(), *queriers)
	start := time.Now()
	topoStats := runTopology(speed)
	ingestSecs := time.Since(start).Seconds()
	close(stop)
	qwg.Wait()

	speed.FlushHot() // settle pending hot-key batches before reporting
	stats := speed.Stats()
	fmt.Printf("\nspeed layer: %d observations in %.2fs (%.0f obs/sec), %d queries served concurrently\n",
		stats.Observed, ingestSecs, float64(stats.Observed)/ingestSecs, queries.Load())
	fmt.Printf("  store: %d entries, %d synopsis bytes, %d late drops; topology acked %d\n",
		stats.Entries, stats.Bytes, stats.DroppedLate, topoStats.Acked)
	if stats.Promotions > 0 {
		fmt.Printf("  hot keys: %d splayed now (%d promotions, %d demotions), %d writes combined+splayed\n",
			stats.HotKeys, stats.Promotions, stats.Demotions, stats.SplayedWrites)
		for _, hk := range speed.HotKeys() {
			fmt.Printf("    %s/%s\n", hk.Metric, hk.Key)
		}
	}

	// Serving snapshot: global top pages and per-page answers.
	now := clock.Load()
	top, err := speed.Query(store.QueryRequest{Metric: "top-pages", Key: "global", From: 0, To: now + 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("\ntop pages (Space-Saving over all buckets):")
	for _, c := range top.TopK(5) {
		fmt.Printf("  %-12s ~%d views\n", c.Item, c.Count)
	}

	// Batch layer: rebuild from the log and compare per-key answers.
	fmt.Println("\nrebuilding batch layer from mqlog (full replay)...")
	rstart := time.Now()
	batch, applied, err := store.Rebuild(store.Config{
		Shards:      *shards,
		BucketWidth: bucketWidth,
		RingBuckets: ringBuckets,
		HotKey:      store.HotKeyConfig{Replicas: *hotReplicas},
	}, protos, topic, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d observations in %.2fs\n", applied, time.Since(rstart).Seconds())

	fmt.Println("\nspeed vs batch (per-page uniques over the ring window):")
	keys := speed.Keys("uniques")
	sort.Strings(keys)
	if len(keys) > 5 {
		keys = keys[:5]
	}
	agree := true
	req := store.QueryRequest{Metric: "uniques", Keys: keys, From: 0, To: now + 1}
	speedRes, err := speed.Query(req)
	if err != nil {
		panic(err)
	}
	batchRes, err := batch.Query(req)
	if err != nil {
		panic(err)
	}
	for i, a := range speedRes.Answers() {
		sa, sb := a.Distinct(), batchRes.Answers()[i].Distinct()
		match := "=="
		if sa != sb {
			match, agree = "!=", false
		}
		fmt.Printf("  %-12s speed %d %s batch %d\n", a.Key, sa, match, sb)
	}
	if agree {
		fmt.Println("layers agree: replaying the log reproduces the speed layer's state")
	} else {
		fmt.Println("layers diverge: investigate retention/ordering")
	}

	if *dir != "" {
		// Snapshot the speed store next to the log: a consumer restarting
		// over this pair restores the snapshot and replays only the log
		// suffix past the recorded offsets (store.RestoreCheckpoint).
		info, err := store.WriteCheckpoint(speed, filepath.Join(*dir, "ckpt"),
			store.CheckpointMeta{Offsets: topic.EndOffsets()})
		if err != nil {
			panic(err)
		}
		ds := topic.DurabilityStats()
		fmt.Printf("\ndurability: log %d segments / %d bytes on disk (%d fsyncs); checkpoint %d records / %d bytes\n",
			ds.Segments, ds.DiskBytes, ds.Fsyncs, info.Records, info.Bytes)
	}

	if *metricsAddr != "" && *linger > 0 {
		fmt.Printf("\nserving metrics on %s for %s (scrape now)...\n", *metricsAddr, *linger)
		time.Sleep(*linger)
	}
}
