// Command lambda drives the store-backed Lambda Architecture (Figure 1)
// through its whole cycle on the real subsystems:
//
//  1. a topology streams observations through the generic serving sink
//     (engine.SinkBolt over the architecture's Backend face), which
//     dispatches every tuple to the immutable mqlog master topic and the
//     sketch-store speed layer;
//  2. a batch recompute freezes the log's end offsets and rebuilds a
//     sealed batch view from the master dataset alone;
//  3. merged queries combine the sealed view with the live speed
//     snapshot across all four synopsis families;
//  4. the speed layer is truncated to the uncovered log suffix at every
//     handoff — watch its observation count collapse to the tail.
//
// Run with -cluster to swap the single speed store for a partitioned
// dstore cluster consuming the same master topic through its router.
//
// Run with -dir to persist the master dataset (segmented on-disk log)
// and the batch view's checkpoint there: kill the process — even
// mid-write — and rerun with the same -dir, and the architecture reopens
// the log (truncating a torn tail), seeds the next batch view from the
// checkpoint, and replays only the log suffix past it.
package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	clusterMode := flag.Bool("cluster", false, "serve the speed layer from a partitioned store cluster")
	dir := flag.String("dir", "", "persist the master log and batch checkpoint under this directory (empty = in-memory)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/analytics on this address (e.g. :9090)")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint up this long after the demo finishes")
	traceRate := flag.Float64("trace", 0, "trace sample rate in [0,1]; with -metrics also serves /debug/traces and /debug/slow")
	slowThresh := flag.Duration("slow", 2*time.Millisecond, "queries at or over this duration are kept and slow-logged (needs -trace)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the -metrics address")
	flag.Parse()

	// Telemetry and tracing are opt-in: with no -metrics flag, reg stays
	// nil and the SetTelemetry/Instrument calls below are no-ops; with no
	// -trace flag, trc stays nil the same way. With -cluster the scrape
	// covers all four layers at once: lambda, dstore, the store underneath
	// each node, and the mqlog master topic — and a sampled trace spans
	// them all, stitched across the master log.
	var reg *repro.Telemetry
	var trc *repro.Tracer
	if *traceRate > 0 {
		trc = repro.NewTracer(repro.TraceConfig{SampleRate: *traceRate, SlowThreshold: *slowThresh})
	}
	if *metricsAddr != "" {
		reg = repro.NewTelemetry()
		srv := repro.ServeMetricsWith(*metricsAddr, reg, repro.DebugOptions{Tracer: trc, Pprof: *pprofOn})
		defer srv.Close()
		fmt.Printf("telemetry: http://localhost%s/metrics and /debug/analytics\n", *metricsAddr)
		if trc != nil {
			fmt.Printf("tracing: http://localhost%s/debug/traces (chrome://tracing) and /debug/slow\n", *metricsAddr)
		}
		if *pprofOn {
			fmt.Printf("pprof: http://localhost%s/debug/pprof/\n", *metricsAddr)
		}
	}

	geom := repro.SketchStoreConfig{Shards: 8, BucketWidth: 1000, RingBuckets: 64}
	cfg := repro.LambdaConfig{Partitions: 4, Batch: geom, Speed: geom}
	// The single-store speed layer runs the hot-key write-combining path,
	// as a production speed layer under Zipf traffic would.
	cfg.Speed.HotKey = repro.SketchStoreHotKeyConfig{Replicas: 8, MaxHot: 64, PromotePct: 2, EpochWrites: 512}
	if *clusterMode {
		cfg = repro.LambdaConfig{
			Batch:        geom,
			Cluster:      &repro.StoreClusterConfig{Partitions: 8, Store: geom},
			ClusterNodes: 3,
		}
	}
	if *dir != "" {
		cfg.Durable = &repro.LogDurableConfig{Dir: filepath.Join(*dir, "log")}
		cfg.CheckpointDir = filepath.Join(*dir, "batch")
		if cfg.Cluster != nil {
			cfg.Cluster.CheckpointDir = filepath.Join(*dir, "nodes")
		}
	}
	arch, err := repro.NewLambda(cfg)
	if err != nil {
		panic(err)
	}
	defer arch.Close()
	if *dir != "" {
		if recovered := arch.MasterLen(); recovered > 0 {
			fmt.Printf("restart: recovered %d messages from the durable master log in %s\n", recovered, *dir)
		} else {
			fmt.Printf("durable master log at %s (kill and rerun to watch recovery)\n", *dir)
		}
	}

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	hits, err := repro.NewFreqProto(1024, 4, 7)
	must(err)
	uniq, err := repro.NewDistinctProto(12, 7)
	must(err)
	top, err := repro.NewTopKProto(64)
	must(err)
	lat, err := repro.NewQuantileProto(16, 256)
	must(err)
	must(arch.RegisterMetric("hits", hits))
	must(arch.RegisterMetric("uniq", uniq))
	must(arch.RegisterMetric("top", top))
	must(arch.RegisterMetric("lat", lat))
	arch.SetTelemetry(reg)
	if trc != nil {
		arch.SetTracer(trc)
	}

	// ---- 1. Append: a topology streams into both layers at once ----
	const tuples = 30000
	rng := workload.NewRNG(21)
	z := workload.NewZipf(rng, 64, 1.3)
	emitted := 0
	var now int64
	spout := repro.SpoutFunc(func() (repro.TupleMessage, bool) {
		if emitted >= tuples {
			return repro.TupleMessage{}, false
		}
		now = int64(emitted)
		emitted++
		key := fmt.Sprintf("page:/p%d", z.Draw())
		return repro.TupleMessage{Key: key, Value: repro.StoreObservation{
			Metric: "hits", Key: key, Item: fmt.Sprintf("u%d", rng.Uint64()%48), Value: 1, Time: now,
		}}, true
	})
	// The architecture is a repro.Backend, so the generic serving sink
	// drives it — the same bolt would drive a store or a cluster router.
	// be is the architecture behind the instrumented serving edge: the
	// sink streams through it, and the demo's queries below use it too,
	// so with -trace every request roots a span (slow ones hit /debug/slow).
	be := repro.Instrument(arch, reg, "lambda", repro.WithTracer(trc))
	bolt, err := repro.NewSinkBolt(be, nil)
	must(err)
	topo, err := repro.NewTopologyBuilder().
		AddSpout("events", spout).
		AddBolt("lambda", bolt.Factory(), 4, repro.FieldsFrom("events")).
		Build(repro.TopologyConfig{Semantics: repro.AtLeastOnce})
	must(err)
	stats := topo.Run()
	must(arch.Drain())
	fmt.Printf("topology streamed %d tuples into both layers (acked=%d)\n", tuples, stats.Acked)
	fmt.Printf("  master log: %d messages  staleness: %d  speed layer holds: %d\n\n",
		arch.MasterLen(), arch.Staleness(), arch.SpeedStats().Observed)

	probe := "page:/p0"
	countStale := func(syn repro.StoreSynopsis, err error) uint64 {
		must(err)
		return syn.(*repro.FreqSynopsis).Count("u0")
	}
	// Merged answers come through the typed serving API: no type
	// assertion, just the Count accessor on the result.
	count := func() uint64 {
		res, err := be.Query(repro.QueryRequest{Metric: "hits", Key: probe, From: 0, To: now + 1})
		must(err)
		return res.Count("u0")
	}

	// ---- 2+3. Batch recompute, then merged queries ----
	fmt.Printf("before batch: batch-only(%s)=%d merged=%d\n",
		probe, countStale(arch.BatchOnlyQuery("hits", probe, 0, now)), count())
	info, err := arch.RunBatch()
	must(err)
	if info.FromCheckpoint {
		fmt.Printf("batch v%d seeded from checkpoint (%d bucket records restored) + %d replayed from the log suffix, up to offsets %v\n",
			info.Version, info.Restored, info.Applied, info.Ends)
	} else {
		fmt.Printf("batch v%d recomputed from the log: %d observations up to offsets %v\n",
			info.Version, info.Applied, info.Ends)
	}

	// ---- 4. Speed-layer truncation: only the post-freeze tail remains ----
	fmt.Printf("after handoff: speed layer holds %d observations (truncated to the fence)\n",
		arch.SpeedStats().Observed)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("page:/p%d", z.Draw())
		must(arch.Append(repro.StoreObservation{Metric: "hits", Key: key, Item: fmt.Sprintf("u%d", rng.Uint64()%48), Value: 1, Time: now}))
		must(arch.Append(repro.StoreObservation{Metric: "uniq", Key: key, Item: fmt.Sprintf("u%d", rng.Uint64()%4096), Time: now}))
		must(arch.Append(repro.StoreObservation{Metric: "top", Key: key, Item: fmt.Sprintf("u%d", rng.Uint64()%48), Time: now}))
		must(arch.Append(repro.StoreObservation{Metric: "lat", Key: key, Value: rng.Uint64() % 50000, Time: now}))
		now++
	}
	must(arch.Drain())
	fmt.Printf("5k fresh events later: staleness=%d  speed layer holds %d\n",
		arch.Staleness(), arch.SpeedStats().Observed)
	fmt.Printf("  batch-only(%s)=%d merged=%d (speed layer compensates batch latency)\n\n",
		probe, countStale(arch.BatchOnlyQuery("hits", probe, 0, now)), count())

	// One merged request answers every family at once: a multi-metric
	// QueryRequest fans out inside the architecture and comes back as one
	// typed answer per (metric, key) cell.
	res, err := be.Query(repro.QueryRequest{
		Metrics: []string{"uniq", "top", "lat"}, Key: probe, From: 0, To: now + 1,
	})
	must(err)
	u, _ := res.At("uniq", probe)
	tk, _ := res.At("top", probe)
	l, _ := res.At("lat", probe)
	fmt.Printf("merged families for %s: distinct~%d  top1=%v  p99=%d\n",
		probe, u.Distinct(), tk.TopK(1), l.Quantile(0.99))

	// A second boundary: the offset fence advances, nothing double counts.
	pre := count()
	info, err = arch.RunBatch()
	must(err)
	post := count()
	fmt.Printf("batch v%d: merged answer %d -> %d across the boundary (fence moved, no double count)\n",
		info.Version, pre, post)

	if *metricsAddr != "" && *linger > 0 {
		fmt.Printf("\nserving metrics on %s for %s (scrape now)...\n", *metricsAddr, *linger)
		time.Sleep(*linger)
	}
}
