package repro_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro"
)

// These tests exercise the public facade end to end — the integration
// surface a downstream user sees — complementing the per-package unit
// tests in internal/.

func TestFacadeSketchRoundTrip(t *testing.T) {
	hll, err := repro.NewHyperLogLog(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := repro.NewSpaceSaving(50)
	if err != nil {
		t.Fatal(err)
	}
	gk, err := repro.NewGK(0.01)
	if err != nil {
		t.Fatal(err)
	}
	bloom, err := repro.NewBloom(10000, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("item-%d", i%1000)
		hll.UpdateString(key)
		ss.Update(key)
		gk.Update(float64(i % 1000))
		bloom.AddString(key)
	}
	if est := hll.Estimate(); math.Abs(est-1000) > 100 {
		t.Fatalf("facade HLL estimate %v", est)
	}
	if top := ss.TopK(5); len(top) != 5 {
		t.Fatalf("facade top-k %v", top)
	}
	if med := gk.Query(0.5); med < 400 || med > 600 {
		t.Fatalf("facade median %v", med)
	}
	if !bloom.ContainsString("item-1") {
		t.Fatal("facade bloom lost a key")
	}
}

func TestFacadeGenericSamplers(t *testing.T) {
	res, err := repro.NewReservoir[string](10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		res.Update(fmt.Sprintf("ev-%d", i))
	}
	if len(res.Sample()) != 10 {
		t.Fatalf("facade reservoir size %d", len(res.Sample()))
	}
	wr, err := repro.NewWeightedReservoir[int](5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		wr.Update(i, float64(i+1))
	}
	if len(wr.Sample()) != 5 {
		t.Fatalf("facade weighted reservoir size %d", len(wr.Sample()))
	}
}

func TestFacadeTopologyWordcount(t *testing.T) {
	sentences := []string{"a b", "b c", "c c"}
	i := 0
	spout := repro.SpoutFunc(func() (repro.TupleMessage, bool) {
		if i >= len(sentences) {
			return repro.TupleMessage{}, false
		}
		i++
		return repro.TupleMessage{Value: sentences[i-1]}, true
	})
	counts := map[string]int{}
	split := func(int) repro.Bolt {
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			for _, r := range m.Value.(string) {
				if r != ' ' {
					emit(repro.TupleMessage{Key: string(r), Value: 1})
				}
			}
			return nil
		})
	}
	count := func(int) repro.Bolt {
		return repro.BoltFunc(func(m repro.TupleMessage, emit func(repro.TupleMessage)) error {
			counts[m.Key]++
			return nil
		})
	}
	top, err := repro.NewTopologyBuilder().
		AddSpout("src", spout).
		AddBolt("split", split, 2, repro.ShuffleFrom("src")).
		AddBolt("count", count, 1, repro.GlobalFrom("split")).
		Build(repro.TopologyConfig{Semantics: repro.AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if counts["c"] != 3 || counts["b"] != 2 || counts["a"] != 1 {
		t.Fatalf("facade wordcount %v", counts)
	}
	if stats.Acked != 3 {
		t.Fatalf("facade acked %d", stats.Acked)
	}
}

func TestFacadeLambda(t *testing.T) {
	geom := repro.SketchStoreConfig{Shards: 4, BucketWidth: 10, RingBuckets: 64}
	arch, err := repro.NewLambda(repro.LambdaConfig{Partitions: 2, Batch: geom, Speed: geom})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	proto, err := repro.NewFreqProto(256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.RegisterMetric("hits", proto); err != nil {
		t.Fatal(err)
	}
	if err := arch.Append(repro.StoreObservation{Metric: "hits", Key: "k", Item: "u", Value: 5, Time: 0}); err != nil {
		t.Fatal(err)
	}
	info, err := arch.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Applied != 1 {
		t.Fatalf("facade batch info %+v", info)
	}
	if err := arch.Append(repro.StoreObservation{Metric: "hits", Key: "k", Item: "u", Value: 3, Time: 1}); err != nil {
		t.Fatal(err)
	}
	syn, err := arch.QueryPoint("hits", "k", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := syn.(*repro.FreqSynopsis).Count("u"); got != 8 {
		t.Fatalf("facade lambda merged count %d, want 8", got)
	}
	if arch.Staleness() != 1 {
		t.Fatalf("facade staleness %d, want 1", arch.Staleness())
	}
	// The standalone batch-layer helpers compose over the same topic.
	view, err := repro.FreezeStoreAt(geom, map[string]repro.StorePrototype{"hits": proto}, arch.Topic(), arch.Topic().EndOffsets(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := view.QueryPoint("hits", "k", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := vs.(*repro.FreqSynopsis).Count("u"); got != 8 {
		t.Fatalf("facade frozen view count %d, want 8", got)
	}
}

// The unified serving API through the facade: all three serving layers
// satisfy repro.Backend, answer typed QueryRequests, and agree on the
// unknown-metric sentinel.
func TestFacadeBackend(t *testing.T) {
	geom := repro.SketchStoreConfig{Shards: 4, BucketWidth: 10, RingBuckets: 64}
	proto, err := repro.NewDistinctProto(12, 7)
	if err != nil {
		t.Fatal(err)
	}

	st, err := repro.NewSketchStore(geom)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := repro.NewStoreCluster(repro.StoreClusterConfig{Partitions: 4, Store: geom})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	arch, err := repro.NewLambda(repro.LambdaConfig{Partitions: 2, Batch: geom, Speed: geom})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()

	backends := []repro.Backend{st, cl.Router(), arch}
	for _, be := range backends {
		if err := be.RegisterMetric("uniques", proto); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.StartNode(); err != nil {
		t.Fatal(err)
	}
	for _, be := range backends {
		for i := 0; i < 100; i++ {
			if err := be.Observe(repro.StoreObservation{
				Metric: "uniques", Key: "home", Item: fmt.Sprintf("u%d", i%40), Time: int64(i % 50),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, be := range backends {
		res, err := be.Query(repro.QueryRequest{Metric: "uniques", Key: "home", From: 0, To: 50})
		if err != nil {
			t.Fatal(err)
		}
		if res.Family() != repro.FamilyDistinct {
			t.Fatalf("family %v, want distinct", res.Family())
		}
		if got := res.Distinct(); got < 35 || got > 45 {
			t.Fatalf("typed distinct %d, want ~40", got)
		}
		// The typed path equals the legacy point wrapper.
		syn, err := be.(interface {
			QueryPoint(metric, key string, from, to int64) (repro.StoreSynopsis, error)
		}).QueryPoint("uniques", "home", 0, 49)
		if err != nil {
			t.Fatal(err)
		}
		if want := syn.(*repro.DistinctSynopsis).Estimate(); float64(res.Distinct()) != math.Round(want) {
			t.Fatalf("typed %d != point %f", res.Distinct(), want)
		}
		// Unified error semantics: unknown metrics carry the sentinel...
		if _, err := be.Query(repro.QueryRequest{Metric: "nope", Key: "home", From: 0, To: 50}); !errors.Is(err, repro.ErrUnknownMetric) {
			t.Fatalf("unknown metric error %v, want ErrUnknownMetric", err)
		}
		// ...and a known metric with no data answers empty, not an error.
		res, err = be.Query(repro.QueryRequest{Metric: "uniques", Key: "ghost", From: 0, To: 50})
		if err != nil {
			t.Fatal(err)
		}
		if res.Items() != 0 {
			t.Fatalf("ghost key items %d, want 0", res.Items())
		}
		if got := be.Keys("uniques"); len(got) != 1 || got[0] != "home" {
			t.Fatalf("keys %v, want [home]", got)
		}
		if be.Stats().Observed == 0 {
			t.Fatal("stats observed 0")
		}
	}
}

func TestFacadeBrokerConsumerGroup(t *testing.T) {
	b := repro.NewBroker()
	topic, err := b.CreateTopic("t", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		topic.Produce(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	g, err := repro.NewConsumerGroup(b, topic, "grp")
	if err != nil {
		t.Fatal(err)
	}
	g.Join("w")
	total := 0
	for {
		batches := g.Poll("w", 100)
		if len(batches) == 0 {
			break
		}
		for _, batch := range batches {
			total += len(batch.Messages)
			g.Commit(batch.Partition, batch.Next)
		}
	}
	if total != 10 {
		t.Fatalf("facade consumer got %d", total)
	}
}

func TestFacadeGraphAndWindows(t *testing.T) {
	sf, err := repro.NewSpanningForest(10)
	if err != nil {
		t.Fatal(err)
	}
	sf.Update(repro.GraphEdge{U: 0, V: 1})
	sf.Update(repro.GraphEdge{U: 1, V: 2})
	if !sf.Connected(0, 2) {
		t.Fatal("facade forest connectivity")
	}
	dg, err := repro.NewDGIM(100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		dg.Update(true)
	}
	if est := dg.Estimate(); est < 40 || est > 60 {
		t.Fatalf("facade DGIM estimate %d", est)
	}
}

func TestFacadeWindowedQuantileAndMinCut(t *testing.T) {
	wq, err := repro.NewWindowedQuantile(1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		wq.Update(float64(i % 100))
	}
	if med := wq.Query(0.5); med < 30 || med > 70 {
		t.Fatalf("facade windowed median %v", med)
	}
	mc, err := repro.NewMinCut(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc.Update(repro.GraphEdge{U: 0, V: 1})
	mc.Update(repro.GraphEdge{U: 1, V: 2})
	mc.Update(repro.GraphEdge{U: 2, V: 3})
	if cut := mc.Estimate(50); cut != 1 {
		t.Fatalf("facade path min cut %d", cut)
	}
}

func TestFacadePredictors(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 5, 6}
	masked := []float64{1, 2, math.NaN(), 4, math.NaN(), 6}
	k, _ := repro.NewKalman(0.1, 1)
	rmse := repro.ImputeRMSE(k, truth, masked)
	base := repro.ImputeRMSE(repro.NewLastValue(), truth, masked)
	if rmse < 0 || base < 0 {
		t.Fatal("negative RMSE")
	}
}

// The sketch-store facade covers the full speed/batch loop: ingest via a
// SinkBolt topology, concurrent range queries, and a rebuild from the
// log that matches the live store.
func TestFacadeSketchStore(t *testing.T) {
	protos := map[string]repro.StorePrototype{}
	hll, err := repro.NewDistinctProto(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	topk, err := repro.NewTopKProto(32)
	if err != nil {
		t.Fatal(err)
	}
	protos["uniques"], protos["top"] = hll, topk
	cfg := repro.SketchStoreConfig{Shards: 8, BucketWidth: 10, RingBuckets: 100}
	st, err := repro.NewSketchStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range protos {
		if err := st.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}

	broker := repro.NewBroker()
	topic, err := broker.CreateTopic("events", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const events = 3000
	for i := 0; i < events; i++ {
		obs := repro.StoreObservation{
			Metric: "uniques",
			Key:    fmt.Sprintf("page%d", i%4),
			Item:   fmt.Sprintf("user%d", i%800),
			Time:   int64(i % 500),
		}
		topic.Produce(obs.Key, repro.EncodeObservation(obs))
	}

	// Speed layer: topology ingest from the log.
	var pos int
	var queue []repro.StoreObservation
	spout := repro.SpoutFunc(func() (repro.TupleMessage, bool) {
		for len(queue) == 0 {
			if pos >= topic.Partitions() {
				return repro.TupleMessage{}, false
			}
			off := topic.StartOffset(pos)
			msgs, next, _, err := topic.Fetch(pos, off, events)
			if err != nil || len(msgs) == 0 {
				pos++
				continue
			}
			for _, m := range msgs {
				if obs, err := repro.DecodeObservation(m.Value); err == nil {
					queue = append(queue, obs)
				}
			}
			_ = next
			pos++
		}
		obs := queue[0]
		queue = queue[1:]
		return repro.TupleMessage{Key: obs.Key, Value: obs}, true
	})
	sink, err := repro.NewSinkBolt(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := repro.NewTopologyBuilder().
		AddSpout("log", spout).
		AddBolt("store", sink.Factory(), 4, repro.FieldsFrom("log")).
		Build(repro.TopologyConfig{Semantics: repro.AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	topo.Run()
	if got := st.Stats().Observed; got != events {
		t.Fatalf("speed layer observed %d, want %d", got, events)
	}

	// Batch layer: rebuild from the log and compare.
	batch, applied, err := repro.RebuildStore(cfg, protos, topic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != events {
		t.Fatalf("replayed %d, want %d", applied, events)
	}
	for k := 0; k < 4; k++ {
		key := fmt.Sprintf("page%d", k)
		a, err := st.QueryPoint("uniques", key, 0, 499)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.QueryPoint("uniques", key, 0, 499)
		if err != nil {
			t.Fatal(err)
		}
		sa := a.(*repro.DistinctSynopsis).Estimate()
		sb := b.(*repro.DistinctSynopsis).Estimate()
		if sa != sb {
			t.Fatalf("%s: speed %f != batch %f", key, sa, sb)
		}
		if sa < 150 || sa > 250 {
			t.Fatalf("%s: implausible estimate %f", key, sa)
		}
	}
}

// The partitioned store cluster through the facade: cluster up, ingest
// through the router, scatter-gather a union, survive a kill/rejoin, and
// agree with a single-store rebuild of the same log.
func TestFacadeStoreCluster(t *testing.T) {
	storeCfg := repro.SketchStoreConfig{Shards: 4, BucketWidth: 10, RingBuckets: 100}
	c, err := repro.NewStoreCluster(repro.StoreClusterConfig{Partitions: 8, Store: storeCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proto, err := repro.NewDistinctProto(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterMetric("uniques", proto); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	const events = 3000
	r := c.Router()
	for i := 0; i < events; i++ {
		if err := r.Observe(repro.StoreObservation{
			Metric: "uniques",
			Key:    fmt.Sprintf("page%d", i%8),
			Item:   fmt.Sprintf("user%d", i%700),
			Time:   int64(i % 500),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// Kill + rejoin: survivors and the joiner recover from the log.
	if err := c.StopNode(c.NodeNames()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartNode(); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	batch, applied, err := repro.RebuildStore(storeCfg, map[string]repro.StorePrototype{"uniques": proto}, c.Topic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if applied != events {
		t.Fatalf("replayed %d, want %d", applied, events)
	}
	keys := r.Keys("uniques")
	if len(keys) != 8 {
		t.Fatalf("cluster serves %d keys, want 8", len(keys))
	}
	var parts []repro.StoreSynopsis
	for _, key := range keys {
		a, err := r.QueryPoint("uniques", key, 0, 499)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batch.QueryPoint("uniques", key, 0, 499)
		if err != nil {
			t.Fatal(err)
		}
		sa := a.(*repro.DistinctSynopsis).Estimate()
		sb := b.(*repro.DistinctSynopsis).Estimate()
		if sa != sb {
			t.Fatalf("%s: cluster %f != batch rebuild %f", key, sa, sb)
		}
		parts = append(parts, b)
	}
	// Scatter-gather union vs a manual combine of the oracle's parts.
	union, err := r.QueryMerged("uniques", keys, 0, 499)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CombineSnapshots(proto, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := union.(*repro.DistinctSynopsis).Estimate(), want.(*repro.DistinctSynopsis).Estimate(); g != w {
		t.Fatalf("scatter-gather union %f != combined oracle %f", g, w)
	}
}
