package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/dstore"
	"repro/internal/store"
	"repro/internal/workload"
)

// T3_1_ClusterStore measures the partitioned store cluster (internal/
// dstore) on the two axes that justify going multi-node, per the
// tutorial's Section 3 platforms:
//
// Scale-out ingest. Every node gets the same fixed synopsis byte budget —
// per-node memory, the resource a real deployment adds machines to get
// more of. The uniform-key workload's working set overflows one node's
// budget several times over but fits the aggregate budget of eight, so
// the single node churns — every write to an evicted series pays an
// eviction plus a fresh synopsis allocation — while the eight-node
// cluster absorbs the same stream into resident entries. The speedup
// column is the acceptance gate (>= 3x at 8 nodes); note this is a
// memory-capacity win, visible even on one core, not a CPU-parallelism
// win (nodes are single-threaded event loops, the Samza container model,
// so on a multi-core box the same rows also gain core parallelism).
//
// Log-based recovery. The second phase ingests a Zipf stream across all
// three synopsis families, kills a node (the survivors recover its
// partitions by replaying the log), verifies every per-key cardinality /
// frequency / quantile answer against a single-store oracle rebuilt from
// the same log, rejoins a node (another rebalance + recovery), and
// verifies again. The mismatch column must be zero: scatter-gathered
// cluster answers equal one store fed the same stream, through the whole
// kill-and-rejoin cycle.
func T3_1_ClusterStore() Table {
	t := Table{
		ID:     "T3.1",
		Title:  "Partitioned store cluster: scale-out ingest + kill/rejoin recovery",
		Claim:  "fixed per-node budgets scale out: 8 nodes ingest >= 3x one node on uniform keys; after kill+rejoin every query equals a single-store oracle",
		Header: []string{"phase", "nodes", "obs/sec", "speedup", "evictions", "checked", "mismatch"},
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	// ---- Phase 1: ingest scaling under fixed per-node budgets ----
	const (
		events   = 120000
		keySpace = 2048 // x 4 KB HLL = ~8 MB working set
		trials   = 3
	)
	// 4 shards x 512 KB = 2 MB per node: 8 nodes hold the working set
	// with 2x slack, 1 node overflows it 4x.
	nodeStore := store.Config{Shards: 4, BucketWidth: 1 << 30, RingBuckets: 2, MaxShardBytes: 512 << 10}
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}

	ingest := func(nodes int) (float64, uint64) {
		c, err := dstore.New(dstore.Config{Partitions: 8, Store: nodeStore})
		if err != nil {
			panic(err)
		}
		defer c.Close()
		proto, err := store.NewDistinctProto(12, 7)
		if err != nil {
			panic(err)
		}
		if err := c.RegisterMetric("uniq", proto); err != nil {
			panic(err)
		}
		for i := 0; i < nodes; i++ {
			if _, err := c.StartNode(); err != nil {
				panic(err)
			}
		}
		// Settle all join rebalances on an empty log so the timed section
		// measures ingest, not membership churn.
		if err := c.Drain(); err != nil {
			panic(err)
		}
		r := c.Router()
		runtime.GC()
		start := time.Now()
		for i := 0; i < events; i++ {
			if err := r.Observe(store.Observation{
				Metric: "uniq",
				Key:    keys[i%keySpace],
				Item:   items[i%len(items)],
				Time:   1,
			}); err != nil {
				panic(err)
			}
		}
		if err := c.Drain(); err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Seconds()
		return float64(events) / elapsed, c.Stats().Store.EvictedSize
	}

	var base float64
	for _, nodes := range []int{1, 2, 4, 8} {
		rates := make([]float64, trials)
		evicted := make([]uint64, trials)
		for i := 0; i < trials; i++ {
			rates[i], evicted[i] = ingest(nodes)
		}
		// Report the median-rate trial as one consistent row: its rate
		// AND its eviction count, so the columns describe the same run.
		order := make([]int, trials)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return rates[order[a]] < rates[order[b]] })
		mid := order[trials/2]
		rate := rates[mid]
		if nodes == 1 {
			base = rate
		}
		t.AddRow(
			"ingest",
			d(nodes),
			f(rate),
			fmt.Sprintf("%.2fx", rate/base),
			d(evicted[mid]),
			"-", "-",
		)
	}

	// ---- Phase 2: kill-and-rejoin recovery vs a single-store oracle ----
	exact := store.Config{Shards: 4, BucketWidth: 100, RingBuckets: 64}
	protos := map[string]store.Prototype{}
	mk := func(name string, p store.Prototype, err error) {
		if err != nil {
			panic(err)
		}
		protos[name] = p
	}
	hll, err := store.NewDistinctProto(12, 11)
	mk("uniq", hll, err)
	cm, err := store.NewFreqProto(256, 4, 11)
	mk("hits", cm, err)
	qd, err := store.NewQuantileProto(16, 64)
	mk("lat", qd, err)

	c, err := dstore.New(dstore.Config{Partitions: 8, Store: exact})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	for name, p := range protos {
		if err := c.RegisterMetric(name, p); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := c.StartNode(); err != nil {
			panic(err)
		}
	}
	rng := workload.NewRNG(909)
	z := workload.NewZipf(rng, 48, 1.2)
	r := c.Router()
	var to int64
	for i := 0; i < 4000; i++ {
		to = int64(i)
		key := fmt.Sprintf("k%d", z.Draw())
		item := fmt.Sprintf("u%d", rng.Uint64()%4096)
		val := rng.Uint64() % 50000
		for _, obs := range []store.Observation{
			{Metric: "uniq", Key: key, Item: item, Time: to},
			{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: to},
			{Metric: "lat", Key: key, Value: val, Time: to},
		} {
			if err := r.Observe(obs); err != nil {
				panic(err)
			}
		}
	}
	if err := c.Drain(); err != nil {
		panic(err)
	}
	oracle, _, err := store.Rebuild(exact, protos, c.Topic(), nil)
	if err != nil {
		panic(err)
	}

	compare := func() (checked, mismatch int) {
		// One multi-metric, multi-key request per side replaces 3 x N point
		// queries: the cluster side fans out to owning nodes (one batched
		// store query each), the oracle side gathers per shard.
		req := store.QueryRequest{
			Metrics: []string{"uniq", "hits", "lat"},
			Keys:    oracle.Keys("uniq"),
			From:    0, To: to + 1,
		}
		cres, err := r.Query(req)
		if err != nil {
			panic(err)
		}
		ores, err := oracle.Query(req)
		if err != nil {
			panic(err)
		}
		ca, oa := cres.Answers(), ores.Answers()
		for i, c := range ca {
			o := oa[i]
			switch c.Metric {
			case "uniq":
				if c.Distinct() != o.Distinct() {
					mismatch++
				}
				checked++
			case "hits":
				for u := 0; u < 8; u++ {
					item := fmt.Sprintf("u%d", u)
					if c.Count(item) != o.Count(item) {
						mismatch++
					}
					checked++
				}
			case "lat":
				for _, phi := range []float64{0.5, 0.9, 0.99} {
					if c.Quantile(phi) != o.Quantile(phi) {
						mismatch++
					}
					checked++
				}
			}
		}
		return checked, mismatch
	}

	phase := func(label string, nodes int) {
		checked, mismatch := compare()
		t.AddRow(label, d(nodes), "-", "-", "-", d(checked), d(mismatch))
	}
	phase("steady", 4)

	victim := c.NodeNames()[1]
	if err := c.StopNode(victim); err != nil {
		panic(err)
	}
	if err := c.Drain(); err != nil {
		panic(err)
	}
	phase("after kill", 3)

	if _, err := c.StartNode(); err != nil {
		panic(err)
	}
	if err := c.Drain(); err != nil {
		panic(err)
	}
	phase("after rejoin", 4)

	return t
}
