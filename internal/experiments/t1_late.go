package experiments

import (
	"fmt"
	"math"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/graphstream"
	"repro/internal/pattern"
	"repro/internal/predict"
	"repro/internal/subsequence"
	"repro/internal/window"
	"repro/internal/workload"
)

// T1_09_Subsequences compares exact and approximate LIS across stream
// shapes and shows DTW subsequence matching.
func T1_09_Subsequences() Table {
	t := Table{
		ID:     "T1.9",
		Title:  "Finding Subsequences (application: traffic analysis)",
		Claim:  "patience LIS exact in O(L); bounded-memory variant within constant factor; DTW matcher finds planted shapes",
		Header: []string{"task", "stream", "exact", "approx/found", "approx-bytes"},
	}
	const n = 50000
	for _, shape := range []struct {
		name string
		swap float64
	}{{"near-sorted", 0.02}, {"shuffled", 2.0}} {
		stream := workload.NearSorted(workload.NewRNG(109), n, shape.swap)
		exact := subsequence.NewLIS()
		approx, _ := subsequence.NewApproxLIS(128)
		for _, v := range stream {
			exact.Update(v)
			approx.Update(v)
		}
		t.AddRow("LIS", shape.name, d(exact.Length()), d(approx.Estimate()), d(approx.Bytes()))
	}
	// LCS baseline row.
	rng := workload.NewRNG(110)
	a := workload.Uniform(rng, 2000, 20)
	b := workload.Uniform(rng, 2000, 20)
	t.AddRow("LCS(2k,2k)", "uniform-20", d(subsequence.LCS(a, b)), "-", "-")
	// DTW matcher row: 3 planted pulses.
	query := []float64{0, 1, 3, 6, 3, 1, 0}
	m, _ := subsequence.NewMatcher(query, 1.5, 2)
	found := 0
	plant := map[int]bool{1000: true, 5000: true, 9000: true}
	for i := 0; i < 12000; i++ {
		if plant[i] {
			for _, q := range query {
				if m.Update(q+rng.NormFloat64()*0.05) != nil {
					found++
				}
			}
			continue
		}
		if m.Update(rng.NormFloat64()*0.2) != nil {
			found++
		}
	}
	t.AddRow("DTW-match", "3 planted pulses", "3", d(found), "-")
	return t
}

// T1_10_PathAnalysis exercises bounded-length reachability on a dynamic
// graph under churn.
func T1_10_PathAnalysis() Table {
	t := Table{
		ID:     "T1.10",
		Title:  "Path Analysis (application: web graph analysis)",
		Claim:  "path<=l queries stay correct under edge insertions and deletions",
		Header: []string{"phase", "edges", "query", "answer", "want"},
	}
	const n = 5000
	dr, _ := graphstream.NewDynamicReach(n)
	// Build a long path plus random chords.
	for _, e := range workload.PathGraph(n) {
		dr.Insert(e)
	}
	t.AddRow("path built", d(n-1), "within(0,100,100)", fmt.Sprint(dr.WithinL(0, 100, 100)), "true")
	t.AddRow("path built", d(n-1), "within(0,100,99)", fmt.Sprint(dr.WithinL(0, 100, 99)), "false")
	dr.Delete(workload.Edge{U: 50, V: 51})
	t.AddRow("cut at 50-51", d(n-2), "within(0,100,5000)", fmt.Sprint(dr.WithinL(0, 100, 5000)), "false")
	t.AddRow("cut at 50-51", d(n-2), "within(0,50,5000)", fmt.Sprint(dr.WithinL(0, 50, 5000)), "true")
	dr.Insert(workload.Edge{U: 0, V: 4000})
	t.AddRow("chord added", d(n-1), "within(0,4000,1)", fmt.Sprint(dr.WithinL(0, 4000, 1)), "true")
	t.AddRow("chord added", d(n-1), "within(0,100,5000)", fmt.Sprint(dr.WithinL(0, 100, 5000)), "true (via chord)")
	return t
}

// T1_11_Anomaly scores the detector ladder on labelled synthetic streams.
func T1_11_Anomaly() Table {
	t := Table{
		ID:     "T1.11",
		Title:  "Anomaly Detection (application: sensor networks)",
		Claim:  "detectors catch injected spikes/shifts with few false alarms; robust methods survive contamination",
		Header: []string{"detector", "threshold", "events-caught", "false-alarms", "notes"},
	}
	spec := workload.SeriesSpec{N: 20000, Base: 100, NoiseSD: 2}
	anoms := []workload.Anomaly{
		{Kind: workload.Spike, Index: 3000, Len: 1, Mag: 12},
		{Kind: workload.Spike, Index: 9000, Len: 1, Mag: -10},
		{Kind: workload.Spike, Index: 15000, Len: 1, Mag: 14},
		{Kind: workload.LevelShift, Index: 17000, Len: 3000, Mag: 8},
	}
	series := spec.Generate(workload.NewRNG(111), anoms)
	run := func(name string, det anomaly.Detector, threshold float64, notes string) {
		caught := map[int]bool{}
		fa := 0
		for i, v := range series.Values {
			if det.Score(v) > threshold {
				hit := false
				for ai, a := range series.Anomalies {
					// For level shifts, firing anywhere in the shifted
					// region is legitimate (the data IS anomalous there);
					// detection credit requires firing near the onset.
					lo, hi := a.Index-3, a.Index+3
					if a.Kind == workload.LevelShift {
						hi = a.Index + a.Len + 3
					}
					if i >= lo && i <= hi {
						if a.Kind != workload.LevelShift || i <= a.Index+120 {
							caught[ai] = true
						}
						hit = true
					}
				}
				if !hit {
					fa++
				}
			}
		}
		t.AddRow(name, f(threshold), fmt.Sprintf("%d/4", len(caught)), d(fa), notes)
	}
	ew, _ := anomaly.NewEWMA(0.05)
	run("ewma-zscore", ew, 5, "parametric")
	mad, _ := anomaly.NewMAD(300)
	run("median/mad", mad, 5, "robust")
	hs, _ := anomaly.NewHSTrees(25, 9, 1, 2000, []float64{80}, []float64{130}, 7)
	run("hs-trees", hs, 0.55, "mass-profile ensemble")
	// Change detector scored separately (it detects shifts, not points).
	cd, _ := anomaly.NewChangeDetector(200, 0.5)
	for _, v := range series.Values {
		cd.Score(v)
	}
	shiftCaught := "no"
	for _, c := range cd.Changes() {
		if c >= 17000 && c <= 17600 {
			shiftCaught = "yes"
		}
	}
	t.AddRow("ks-change", "0.5", "shift: "+shiftCaught, d(len(cd.Changes())-1), "distribution shift")
	return t
}

// T1_12_TemporalPatterns measures SAX+shape detection hit rates and the
// CEP rule engine.
func T1_12_TemporalPatterns() Table {
	t := Table{
		ID:     "T1.12",
		Title:  "Temporal Pattern Analysis (application: traffic analysis)",
		Claim:  "SAX symbolization + shape matching finds planted ramps; CEP sequences fire within windows only",
		Header: []string{"detector", "planted", "found", "spurious"},
	}
	// Plant rising ramps in noise; SAX should symbolize them as ascending
	// runs matched by "abcd"-ish shapes. Use alphabet 4, frame 4.
	rng := workload.NewRNG(112)
	sax, _ := pattern.NewSAX(4, 4, 200)
	det, _ := pattern.NewShapeDetector("ad")
	planted := 0
	found := 0
	for seg := 0; seg < 200; seg++ {
		if seg%10 == 5 {
			planted++
			for i := 0; i < 16; i++ {
				v := float64(i)*2 - 16 // steep ramp through the range
				if sym, ok := sax.Update(v + rng.NormFloat64()*0.1); ok {
					if det.Update(sym) {
						found++
					}
				}
			}
			continue
		}
		for i := 0; i < 16; i++ {
			if sym, ok := sax.Update(rng.NormFloat64()); ok {
				if det.Update(sym) {
					found++
				}
			}
		}
	}
	spurious := 0
	if found > planted {
		spurious = found - planted
	}
	t.AddRow("sax+shape(ramp)", d(planted), d(found), d(spurious))

	// CEP: login followed by large wire within 5 events.
	cep, _ := pattern.NewCEP(64)
	fired := 0
	cep.AddSequence(pattern.SequenceRule{
		Name:   "fraud",
		First:  func(e pattern.Event) bool { return e.Type == "login" },
		Then:   func(e pattern.Event) bool { return e.Type == "wire" && e.Value > 10000 },
		Window: 5,
		Action: func(a, b pattern.Event) { fired++ },
	})
	// 3 in-window pairs, 2 out-of-window pairs.
	submitPair := func(gap int) {
		cep.Submit(pattern.Event{Type: "login"})
		for i := 0; i < gap; i++ {
			cep.Submit(pattern.Event{Type: "noise"})
		}
		cep.Submit(pattern.Event{Type: "wire", Value: 20000})
	}
	for i := 0; i < 3; i++ {
		submitPair(2)
	}
	for i := 0; i < 2; i++ {
		submitPair(8)
	}
	t.AddRow("cep-sequence", "3 in-window", d(fired), d(fired-3))
	return t
}

// T1_13_Prediction scores the imputation RMSE ladder.
func T1_13_Prediction() Table {
	t := Table{
		ID:     "T1.13",
		Title:  "Data Prediction (application: sensor data analysis)",
		Claim:  "model-based imputation (Kalman/Holt/AR) beats last-value persistence on structured series",
		Header: []string{"predictor", "trend-series", "seasonal-series", "random-walk"},
	}
	mkSeries := func(seed uint64, spec workload.SeriesSpec) ([]float64, []float64) {
		s := spec.Generate(workload.NewRNG(seed), nil)
		masked, _ := workload.WithMissing(workload.NewRNG(seed+1), s.Values, 0.1)
		return s.Values, masked
	}
	trendT, trendM := mkSeries(113, workload.SeriesSpec{N: 5000, Base: 10, Trend: 0.05, NoiseSD: 0.5})
	seasT, seasM := mkSeries(115, workload.SeriesSpec{N: 5000, Base: 10, SeasonAmp: 5, SeasonLen: 100, NoiseSD: 0.5})
	// Random walk built manually.
	rw := make([]float64, 5000)
	rng := workload.NewRNG(117)
	for i := 1; i < len(rw); i++ {
		rw[i] = rw[i-1] + rng.NormFloat64()
	}
	rwM, _ := workload.WithMissing(workload.NewRNG(118), rw, 0.1)

	row := func(name string, build func() predict.Predictor) {
		r1 := predict.ImputeRMSE(build(), trendT, trendM)
		r2 := predict.ImputeRMSE(build(), seasT, seasM)
		r3 := predict.ImputeRMSE(build(), rw, rwM)
		t.AddRow(name, f(r1), f(r2), f(r3))
	}
	row("kalman", func() predict.Predictor { k, _ := predict.NewKalman(0.01, 1); return k })
	row("holt", func() predict.Predictor { h, _ := predict.NewHolt(0.5, 0.1); return h })
	row("ar1", func() predict.Predictor { a, _ := predict.NewAR1(0.999); return a })
	row("last-value", func() predict.Predictor { return predict.NewLastValue() })
	return t
}

// T1_14_Clustering compares streaming clusterers' SSE against offline
// k-means++ on a Gaussian mixture.
func T1_14_Clustering() Table {
	t := Table{
		ID:     "T1.14",
		Title:  "Clustering (application: medical imaging / telemetry)",
		Claim:  "STREAM and micro-clusters reach near-offline SSE in sublinear memory; online k-means cheapest/loosest",
		Header: []string{"clusterer", "SSE-vs-offline", "bytes", "pass"},
	}
	const n = 30000
	const k = 5
	rng := workload.NewRNG(119)
	means := make([]cluster.Point, k)
	for i := range means {
		means[i] = cluster.Point{float64(i) * 25, float64(i%2) * 25}
	}
	pts := make([]cluster.Point, n)
	for i := range pts {
		m := means[rng.Intn(k)]
		pts[i] = cluster.Point{m[0] + rng.NormFloat64()*1.5, m[1] + rng.NormFloat64()*1.5}
	}
	offline := cluster.KMeansPP(pts, nil, k, 10, workload.NewRNG(120))
	offSSE := cluster.SSE(pts, nil, offline)

	ok, _ := cluster.NewOnlineKMeans(k, 2)
	sk, _ := cluster.NewStreamKMedian(k, 2000, 121)
	mc, _ := cluster.NewMicroClusters(60, 2, 2)
	for _, p := range pts {
		ok.Update(p)
		sk.Update(p)
		mc.Update(p)
	}
	t.AddRow("offline-kmeans++", "1.00x", d(n*16), "full data")
	t.AddRow("online-kmeans", fmt.Sprintf("%.2fx", cluster.SSE(pts, nil, ok.Centers())/offSSE), d(k*16+8), "1")
	t.AddRow("stream-kmedian", fmt.Sprintf("%.2fx", cluster.SSE(pts, nil, sk.Centers())/offSSE), d(sk.Bytes()), "1")
	mcC, mcW := mc.Snapshot()
	macro := cluster.KMeansPP(mcC, mcW, k, 10, workload.NewRNG(122))
	t.AddRow("microclusters+macro", fmt.Sprintf("%.2fx", cluster.SSE(pts, nil, macro)/offSSE), d(mc.Bytes()), "1")
	return t
}

// T1_15_GraphAnalysis runs the semi-streaming graph suite against offline
// baselines.
func T1_15_GraphAnalysis() Table {
	t := Table{
		ID:     "T1.15",
		Title:  "Graph analysis (application: web graph analysis)",
		Claim:  "one-pass matching >= 1/2 offline greedy; spanner sparsifies with bounded stretch; triangles exact",
		Header: []string{"problem", "streaming", "baseline", "ratio/stretch", "space"},
	}
	const n = 2000
	rng := workload.NewRNG(123)
	edges := workload.PreferentialGraph(rng, n, 3)

	gm, _ := graphstream.NewGreedyMatching(n)
	sf, _ := graphstream.NewSpanningForest(n)
	sp, _ := graphstream.NewSpanner(n, 2)
	tc, _ := graphstream.NewTriangleCounter(n)
	for _, e := range edges {
		gm.Update(e)
		sf.Update(e)
		sp.Update(e)
		tc.Update(e)
	}
	// Offline maximal matching on a shuffled edge order as baseline.
	base, _ := graphstream.NewGreedyMatching(n)
	shuffled := append([]workload.Edge(nil), edges...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	for _, e := range shuffled {
		base.Update(e)
	}
	t.AddRow("max-matching", d(gm.Size()), d(base.Size()),
		fmt.Sprintf("%.2f", float64(gm.Size())/float64(base.Size())), "O(n)")
	t.AddRow("vertex-cover", d(len(gm.VertexCover())), ">= matching size", "<=2x OPT", "O(n)")
	t.AddRow("connectivity", fmt.Sprintf("%d comps", sf.Components()), "union-find", "exact", d(len(sf.Edges())*16))
	// Spanner stretch check on sampled pairs.
	worst := 0
	for _, e := range edges[:200] {
		if dd := sp.Distance(e.U, e.V); dd > worst {
			worst = dd
		}
	}
	t.AddRow("3-spanner", fmt.Sprintf("%d edges", sp.Edges()), fmt.Sprintf("%d input", len(edges)),
		fmt.Sprintf("stretch<=%d", worst), "O(n^1.5)")
	t.AddRow("triangles", d(tc.Count()), "exact", "1.00", "O(m)")
	return t
}

// T1_16_BasicCounting verifies the DGIM error bound across window sizes.
func T1_16_BasicCounting() Table {
	t := Table{
		ID:     "T1.16",
		Title:  "Basic Counting (application: popularity analysis)",
		Claim:  "DGIM relative error <= eps with O((1/eps)log^2 n) bits vs O(n) exact",
		Header: []string{"window", "eps", "max-rel-err", "dgim-bytes", "exact-bytes"},
	}
	for _, cfg := range []struct {
		n   uint64
		eps float64
	}{{1 << 12, 0.1}, {1 << 16, 0.1}, {1 << 16, 0.02}, {1 << 20, 0.05}} {
		dg, _ := window.NewDGIM(cfg.n, cfg.eps)
		exact := window.NewExactWindowCounter(int(cfg.n))
		rng := workload.NewRNG(124)
		worst := 0.0
		total := int(cfg.n) * 3
		if total > 300000 {
			total = 300000
		}
		for i := 0; i < total; i++ {
			bit := rng.Float64() < 0.4
			dg.Update(bit)
			exact.Update(bit)
			if i%997 == 0 && exact.Count() > 0 {
				rel := math.Abs(float64(dg.Estimate())-float64(exact.Count())) / float64(exact.Count())
				if rel > worst {
					worst = rel
				}
			}
		}
		t.AddRow(d(int(cfg.n)), f(cfg.eps), pct(worst), d(dg.Bytes()), d(exact.Bytes()))
	}
	return t
}

// T1_17_SignificantOnes verifies the Lee–Ting guarantee and its space
// scaling: the group count is independent of the window size n, whereas
// DGIM's bucket count grows with log n — the relaxation's payoff.
func T1_17_SignificantOnes() Table {
	t := Table{
		ID:     "T1.17",
		Title:  "Significant One Counting (application: traffic accounting)",
		Claim:  "err <= eps*m whenever m >= theta*n; space O(1/(theta*eps)) independent of n vs DGIM's O((1/eps)log(eps n))",
		Header: []string{"window n", "density", "max-err/m (m>=theta*n)", "so-groups", "dgim-buckets"},
	}
	const theta = 0.1
	const eps = 0.1
	run := func(n uint64, density float64) {
		so, _ := window.NewSignificantOnes(n, theta, eps)
		dg, _ := window.NewDGIM(n, eps)
		exact := window.NewExactWindowCounter(int(n))
		rng := workload.NewRNG(125)
		worst := 0.0
		total := int(3 * n)
		if total > 2000000 {
			total = 2000000
		}
		for i := 0; i < total; i++ {
			bit := rng.Float64() < density
			so.Update(bit)
			dg.Update(bit)
			exact.Update(bit)
			if i > int(n) && i%1009 == 0 {
				m := float64(exact.Count())
				if m >= theta*float64(n) {
					rel := math.Abs(float64(so.Estimate())-m) / m
					if rel > worst {
						worst = rel
					}
				}
			}
		}
		t.AddRow(d(int(n)), pct(density), pct(worst), d(so.Groups()), d(dg.Buckets()))
	}
	// Density sweep at fixed n: the guarantee holds wherever m >= theta*n.
	for _, density := range []float64{0.5, 0.2, 0.05} {
		run(1<<16, density)
	}
	// Window sweep at fixed density: SO group count stays flat while DGIM
	// grows logarithmically, crossing over at large n.
	run(1<<14, 0.5)
	run(1<<18, 0.5)
	run(1<<20, 0.5)
	return t
}
