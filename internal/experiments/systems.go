package experiments

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/frequency"
	"repro/internal/histogram"
	"repro/internal/lambda"
	"repro/internal/mqlog"
	"repro/internal/quantile"
	"repro/internal/store"
	"repro/internal/wavelet"
	"repro/internal/workload"
)

// S2_1_Histograms compares V-optimal, equi-width and end-biased SSE on an
// unevenly-segmented signal.
func S2_1_Histograms() Table {
	t := Table{
		ID:     "S2.1",
		Title:  "Histograms (Section 2 synopsis)",
		Claim:  "V-optimal minimizes SSE; equi-width pays on uneven segments; end-biased wins on Zipf frequencies",
		Header: []string{"histogram", "signal", "SSE", "vs-voptimal"},
	}
	rng := workload.NewRNG(201)
	vals := make([]float64, 0, 400)
	levels := []float64{0, 40, 42, -25, 60}
	widths := []int{200, 40, 80, 40, 40}
	for li, lv := range levels {
		for i := 0; i < widths[li]; i++ {
			vals = append(vals, lv+rng.NormFloat64())
		}
	}
	const b = 5
	_, vsse, _ := histogram.VOptimal(vals, b)
	ew := histogram.EquiWidthIndexBuckets(vals, b)
	esse := histogram.SSEOfBuckets(vals, ew)
	t.AddRow("v-optimal", "5 uneven segments", f(vsse), "1.00x")
	t.AddRow("equi-width", "5 uneven segments", f(esse), fmt.Sprintf("%.1fx", esse/math.Max(vsse, 1e-9)))

	// End-biased on Zipf frequencies: compare frequency-model error
	// against a uniform model.
	eb, _ := histogram.NewEndBiased(50)
	z := workload.NewZipf(rng, 1000, 1.3)
	const n = 50000
	counts := map[float64]uint64{}
	for i := 0; i < n; i++ {
		v := float64(z.Draw())
		eb.Update(v)
		counts[v]++
	}
	var ebErr, uniErr float64
	uniform := float64(n) / float64(len(counts))
	for v, c := range counts {
		ebErr += math.Abs(eb.EstimateFreq(v) - float64(c))
		uniErr += math.Abs(uniform - float64(c))
	}
	t.AddRow("end-biased", "zipf frequencies", f(ebErr/float64(len(counts))),
		fmt.Sprintf("uniform=%.1f", uniErr/float64(len(counts))))
	return t
}

// S2_2_Wavelets measures Haar top-k L2 reconstruction error.
func S2_2_Wavelets() Table {
	t := Table{
		ID:     "S2.2",
		Title:  "Wavelets (Section 2 synopsis)",
		Claim:  "top-k Haar coefficients minimize L2 reconstruction error; error falls monotonically in k",
		Header: []string{"coefficients kept", "L2 error", "fraction of signal norm"},
	}
	spec := workload.SeriesSpec{N: 1024, Base: 50, SeasonAmp: 20, SeasonLen: 128, NoiseSD: 3}
	signal := spec.Generate(workload.NewRNG(202), nil).Values
	norm := 0.0
	for _, v := range signal {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for _, k := range []int{4, 16, 64, 256, 1024} {
		s, _ := wavelet.NewSynopsis(signal, k)
		e := wavelet.L2Error(signal, s.Reconstruct())
		t.AddRow(d(k), f(e), pct(e/norm))
	}
	return t
}

// T2_1_Semantics runs the wordcount topology under both delivery
// guarantees with injected failures, measuring loss, duplication and
// throughput — the central semantics comparison of Table 2.
func T2_1_Semantics() Table {
	t := Table{
		ID:     "T2.1",
		Title:  "Table 2: delivery semantics under failure (Storm/Heron acking model)",
		Claim:  "at-most-once loses failed tuples; at-least-once replays (duplicates possible, no loss); acking costs throughput",
		Header: []string{"semantics", "failures", "delivered", "lost", "duplicated", "tuples/sec"},
	}
	const tuples = 50000
	const failEvery = 400
	run := func(sem engine.Semantics) (delivered, lost, dup uint64, rate float64) {
		var deliveredCount sync.Map
		emitted := 0
		spout := engine.SpoutFunc(func() (engine.Message, bool) {
			if emitted >= tuples {
				return engine.Message{}, false
			}
			emitted++
			return engine.Message{Key: fmt.Sprintf("m%d", emitted-1), Value: 1}, true
		})
		var n int64
		flaky := func(int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				c := atomic.AddInt64(&n, 1)
				if c%failEvery == 0 {
					// Alternate the two real-world failure shapes: crash
					// before any output (clean loss) and crash after the
					// side effect (the classic duplicate source on replay).
					if (c/failEvery)%2 == 0 {
						emit(m)
					}
					return errors.New("injected")
				}
				emit(m)
				return nil
			})
		}
		sink := func(int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				v, _ := deliveredCount.LoadOrStore(m.Key, new(int64))
				atomic.AddInt64(v.(*int64), 1)
				return nil
			})
		}
		top, err := engine.NewBuilder().
			AddSpout("src", spout).
			AddBolt("flaky", flaky, 4, engine.ShuffleFrom("src")).
			AddBolt("sink", sink, 4, engine.FieldsFrom("flaky")).
			Build(engine.Config{Semantics: sem, MaxRetries: 10})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		top.Run()
		elapsed := time.Since(start).Seconds()
		for i := 0; i < tuples; i++ {
			v, ok := deliveredCount.Load(fmt.Sprintf("m%d", i))
			if !ok {
				lost++
				continue
			}
			c := atomic.LoadInt64(v.(*int64))
			delivered++
			if c > 1 {
				dup++
			}
		}
		return delivered, lost, dup, float64(tuples) / elapsed
	}
	dAMO, lAMO, dupAMO, rateAMO := run(engine.AtMostOnce)
	t.AddRow("at-most-once", d(tuples/failEvery), d(dAMO), d(lAMO), d(dupAMO), f(rateAMO))
	dALO, lALO, dupALO, rateALO := run(engine.AtLeastOnce)
	t.AddRow("at-least-once", d(tuples/failEvery), d(dALO), d(lALO), d(dupALO), f(rateALO))
	return t
}

// T2_2_Grouping measures scaling across worker counts for shuffle and
// fields groupings on a skewed key distribution.
func T2_2_Grouping() Table {
	t := Table{
		ID:     "T2.2",
		Title:  "Table 2: groupings and parallelism",
		Claim:  "shuffle balances load regardless of skew; fields grouping is key-local but inherits skew",
		Header: []string{"grouping", "workers", "tuples/sec", "max/min task load"},
	}
	const tuples = 100000
	keys := workload.Keys(workload.NewZipf(workload.NewRNG(203), 1000, 1.2).Stream(tuples))
	run := func(grouping engine.Input, workers int) (rate float64, imbalance float64) {
		loads := make([]int64, workers)
		i := 0
		spout := engine.SpoutFunc(func() (engine.Message, bool) {
			if i >= tuples {
				return engine.Message{}, false
			}
			i++
			return engine.Message{Key: keys[i-1], Value: 1}, true
		})
		work := func(task int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				atomic.AddInt64(&loads[task], 1)
				return nil
			})
		}
		top, err := engine.NewBuilder().
			AddSpout("src", spout).
			AddBolt("work", work, workers, grouping).
			Build(engine.Config{})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		top.Run()
		elapsed := time.Since(start).Seconds()
		minL, maxL := loads[0], loads[0]
		for _, l := range loads {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		if minL == 0 {
			minL = 1
		}
		return float64(tuples) / elapsed, float64(maxL) / float64(minL)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		rate, imb := run(engine.ShuffleFrom("src"), workers)
		t.AddRow("shuffle", d(workers), f(rate), fmt.Sprintf("%.2f", imb))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		rate, imb := run(engine.FieldsFrom("src"), workers)
		t.AddRow("fields", d(workers), f(rate), fmt.Sprintf("%.2f", imb))
	}
	return t
}

// T2_3_Broker compares direct channel links against log-mediated stages
// (the Samza design), measuring the cost and the replayability benefit.
func T2_3_Broker() Table {
	t := Table{
		ID:     "T2.3",
		Title:  "Table 2: broker-mediated stages (Samza/Kafka design)",
		Claim:  "persisting stages to a log costs throughput but buys replay and inter-job decoupling",
		Header: []string{"wiring", "tuples/sec", "replayable", "consumer-lag-visible"},
	}
	const tuples = 200000
	// Direct: in-process topology.
	{
		i := 0
		spout := engine.SpoutFunc(func() (engine.Message, bool) {
			if i >= tuples {
				return engine.Message{}, false
			}
			i++
			return engine.Message{Key: "k", Value: i}, true
		})
		var count int64
		sink := func(int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				atomic.AddInt64(&count, 1)
				return nil
			})
		}
		top, _ := engine.NewBuilder().
			AddSpout("src", spout).
			AddBolt("sink", sink, 2, engine.ShuffleFrom("src")).
			Build(engine.Config{})
		start := time.Now()
		top.Run()
		t.AddRow("direct-channels", f(float64(tuples)/time.Since(start).Seconds()), "no", "no")
	}
	// Log-mediated: produce to the broker, then consume via a group.
	{
		broker := mqlog.NewBroker()
		topic, _ := broker.CreateTopic("stage", 4, 0)
		start := time.Now()
		payload := []byte("x")
		for i := 0; i < tuples; i++ {
			topic.Produce(fmt.Sprintf("k%d", i%64), payload)
		}
		group, _ := mqlog.NewConsumerGroup(broker, topic, "job")
		group.Join("w1")
		group.Join("w2")
		consumed := 0
		for _, w := range []string{"w1", "w2"} {
			for {
				batches := group.Poll(w, 8192)
				if len(batches) == 0 {
					break
				}
				for _, b := range batches {
					consumed += len(b.Messages)
					group.Commit(b.Partition, b.Next)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		if consumed != tuples {
			panic("broker lost messages")
		}
		t.AddRow("log-mediated", f(float64(tuples)/elapsed), "yes", "yes")
	}
	return t
}

// F1_Lambda regenerates Figure 1 on the store-backed architecture: the
// master dataset is an mqlog topic, the batch layer recomputes sealed
// views from it at frozen end offsets, the speed layer is a sharded
// sketch store truncated at every handoff, and queries merge the two.
// The table shows merged correctness, the staleness a batch-only system
// suffers between recomputes, and batch recompute cost against the log.
func F1_Lambda() Table {
	t := Table{
		ID:     "F1",
		Title:  "Figure 1: Lambda Architecture (store-backed)",
		Claim:  "merged (batch+speed) queries stay exact at all times; batch-only answers go stale between runs",
		Header: []string{"tick", "staleness", "batch-only-err", "merged-err", "speed-obs"},
	}
	geom := store.Config{Shards: 8, BucketWidth: 1000, RingBuckets: 64}
	arch, err := lambda.New(lambda.Config{Partitions: 4, Batch: geom, Speed: geom})
	if err != nil {
		panic(err)
	}
	defer arch.Close()
	proto, err := store.NewFreqProto(2048, 4, 204)
	if err != nil {
		panic(err)
	}
	if err := arch.RegisterMetric("hits", proto); err != nil {
		panic(err)
	}
	exact := map[string]uint64{}
	rng := workload.NewRNG(204)
	z := workload.NewZipf(rng, 200, 1.1)
	const total = 60000
	const batchEvery = 20000
	count := func(syn store.Synopsis, err error) uint64 {
		if err != nil {
			panic(err)
		}
		return syn.(*store.Freq).Count("hit")
	}
	probeErr := func() (float64, float64) {
		var bErr, mErr float64
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", i)
			b := count(arch.BatchOnlyQuery("hits", k, 0, total))
			m := count(arch.QueryPoint("hits", k, 0, total))
			bErr += math.Abs(float64(b) - float64(exact[k]))
			mErr += math.Abs(float64(m) - float64(exact[k]))
		}
		return bErr, mErr
	}
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("k%d", z.Draw())
		if err := arch.Append(store.Observation{Metric: "hits", Key: k, Item: "hit", Value: 1, Time: int64(i)}); err != nil {
			panic(err)
		}
		exact[k]++
		if i%batchEvery == batchEvery-1 {
			bErr, mErr := probeErr()
			t.AddRow(d(i+1)+" (pre-batch)", d(arch.Staleness()), f(bErr), f(mErr), d(arch.SpeedStats().Observed))
			start := time.Now()
			if _, err := arch.RunBatch(); err != nil {
				panic(err)
			}
			recompute := time.Since(start)
			bErr, mErr = probeErr()
			t.AddRow(fmt.Sprintf("%d (post-batch %.1fms)", i+1, recompute.Seconds()*1000),
				d(arch.Staleness()), f(bErr), f(mErr), d(arch.SpeedStats().Observed))
		}
	}
	return t
}

// A1_ConservativeUpdate is the Count-Min conservative-update ablation.
func A1_ConservativeUpdate() Table {
	t := Table{
		ID:     "A1",
		Title:  "Ablation: Count-Min conservative update",
		Claim:  "conservative update tightens overestimates at equal memory (cost: loses mergeability)",
		Header: []string{"width", "plain avg-overcount", "conservative avg-overcount", "improvement"},
	}
	const n = 100000
	stream := frequency.ZipfStrings(205, n, 10000, 1.0)
	truth := map[string]uint64{}
	for _, it := range stream {
		truth[it]++
	}
	for _, width := range []int{128, 512, 2048} {
		plain, _ := frequency.NewCountMin(width, 4, 1)
		cons, _ := frequency.NewCountMin(width, 4, 1)
		cons.SetConservative(true)
		for _, it := range stream {
			plain.UpdateString(it, 1)
			cons.UpdateString(it, 1)
		}
		var pe, ce float64
		for it, c := range truth {
			pe += float64(plain.EstimateString(it) - c)
			ce += float64(cons.EstimateString(it) - c)
		}
		pe /= float64(len(truth))
		ce /= float64(len(truth))
		imp := "-"
		if ce > 0 {
			imp = fmt.Sprintf("%.1fx", pe/ce)
		}
		t.AddRow(d(width), f(pe), f(ce), imp)
	}
	return t
}

// A4_AckingOverhead isolates the throughput cost of XOR ack tracking (the
// Storm -> Heron motivation applied to our engine).
func A4_AckingOverhead() Table {
	t := Table{
		ID:     "A4",
		Title:  "Ablation: acking overhead (no failures injected)",
		Claim:  "tuple-tree tracking costs throughput even on clean runs — the price of the at-least-once guarantee",
		Header: []string{"semantics", "tuples/sec", "relative"},
	}
	const tuples = 200000
	run := func(sem engine.Semantics) float64 {
		i := 0
		spout := engine.SpoutFunc(func() (engine.Message, bool) {
			if i >= tuples {
				return engine.Message{}, false
			}
			i++
			return engine.Message{Key: fmt.Sprintf("k%d", i%256), Value: 1}, true
		})
		pass := func(int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				emit(m)
				return nil
			})
		}
		var count int64
		sink := func(int) engine.Bolt {
			return engine.BoltFunc(func(m engine.Message, emit func(engine.Message)) error {
				atomic.AddInt64(&count, 1)
				return nil
			})
		}
		top, _ := engine.NewBuilder().
			AddSpout("src", spout).
			AddBolt("mid", pass, 4, engine.ShuffleFrom("src")).
			AddBolt("sink", sink, 4, engine.FieldsFrom("mid")).
			Build(engine.Config{Semantics: sem})
		start := time.Now()
		top.Run()
		return float64(tuples) / time.Since(start).Seconds()
	}
	amo := run(engine.AtMostOnce)
	alo := run(engine.AtLeastOnce)
	t.AddRow("at-most-once", f(amo), "1.00x")
	t.AddRow("at-least-once", f(alo), fmt.Sprintf("%.2fx", alo/amo))
	return t
}

// A5_GKCompression sweeps GK eps to show the space/accuracy trade.
func A5_GKCompression() Table {
	t := Table{
		ID:     "A5",
		Title:  "Ablation: Greenwald–Khanna eps vs space",
		Claim:  "summary size grows ~1/eps while observed rank error stays below eps",
		Header: []string{"eps", "tuples", "bytes", "p50 rank err"},
	}
	const n = 200000
	rng := workload.NewRNG(206)
	stream := make([]float64, n)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), stream...)
	sortFloats(sorted)
	for _, eps := range []float64{0.05, 0.01, 0.002} {
		g, _ := quantile.NewGK(eps)
		for _, v := range stream {
			g.Update(v)
		}
		got := g.Query(0.5)
		r := float64(searchFloats(sorted, got))
		t.AddRow(f(eps), d(g.Tuples()), d(g.Bytes()), pct(math.Abs(r-0.5*n)/n))
	}
	return t
}
