package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cardinality"
	"repro/internal/filter"
	"repro/internal/workload"
)

// A2_SparseDenseCrossover locates the cardinality at which HLL++'s sparse
// representation stops paying off versus dense registers.
func A2_SparseDenseCrossover() Table {
	t := Table{
		ID:     "A2",
		Title:  "Ablation: HLL++ sparse/dense crossover",
		Claim:  "sparse wins (smaller + near-exact) at low cardinality; dense wins past the conversion point",
		Header: []string{"n distinct", "hll++ bytes", "dense bytes", "hll++ err", "dense err", "mode"},
	}
	for _, n := range []int{10, 100, 500, 2000, 10000, 100000} {
		sp, _ := cardinality.NewSparseHLL(14, 1)
		dn, _ := cardinality.NewHyperLogLog(14, 1)
		for _, x := range workload.Distinct(workload.NewRNG(uint64(301+n)), n) {
			sp.UpdateUint64(x)
			dn.UpdateUint64(x)
		}
		mode := "dense"
		if sp.IsSparse() {
			mode = "sparse"
		}
		spErr := math.Abs(sp.Estimate()-float64(n)) / float64(n)
		dnErr := math.Abs(dn.Estimate()-float64(n)) / float64(n)
		t.AddRow(d(n), d(sp.Bytes()), d(dn.Bytes()), pct(spErr), pct(dnErr), mode)
	}
	return t
}

// A3_DoubleHashing verifies Kirsch–Mitzenmacher: two hashes simulate k
// with no practical FPR loss, at a fraction of the hashing cost.
func A3_DoubleHashing() Table {
	t := Table{
		ID:     "A3",
		Title:  "Ablation: Bloom double hashing vs k independent hashes",
		Claim:  "FPR is statistically identical; double hashing computes 1 hash instead of k",
		Header: []string{"k", "FPR double-hash", "FPR independent", "hash evals/op"},
	}
	const n = 20000
	keys := make([][]byte, n)
	probes := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("in-%d", i))
		probes[i] = []byte(fmt.Sprintf("out-%d", i))
	}
	fpr := func(b *filter.Bloom) float64 {
		for _, k := range keys {
			b.Add(k)
		}
		fp := 0
		for _, p := range probes {
			if b.Contains(p) {
				fp++
			}
		}
		return float64(fp) / n
	}
	for _, k := range []uint{3, 5, 8} {
		dh, _ := filter.NewBloomMK(1<<18, k, 1)
		ih, _ := filter.NewBloomMK(1<<18, k, 1)
		ih.SetIndependentHashes(true)
		t.AddRow(d(int(k)), pct(fpr(dh)), pct(fpr(ih)), fmt.Sprintf("1 vs %d", k))
	}
	return t
}

// sortFloats and searchFloats are tiny wrappers so systems.go stays free
// of a direct sort import tangle.
func sortFloats(xs []float64)                  { sort.Float64s(xs) }
func searchFloats(xs []float64, v float64) int { return sort.SearchFloat64s(xs, v+1e-12) }
