package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cardinality"
	"repro/internal/correlation"
	"repro/internal/filter"
	"repro/internal/frequency"
	"repro/internal/inversions"
	"repro/internal/moments"
	"repro/internal/quantile"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// T1_01_Sampling measures how well each sampler's sample reproduces the
// stream's mean and median, and (for window samplers) how fresh it is.
func T1_01_Sampling() Table {
	t := Table{
		ID:     "T1.1",
		Title:  "Sampling (application: A/B testing)",
		Claim:  "bounded samples represent the stream; window/biased variants favor recency",
		Header: []string{"sampler", "sample", "mean-drift", "median-drift", "frac-recent-10%"},
	}
	const n = 100000
	rng := workload.NewRNG(101)
	stream := make([]float64, n)
	for i := range stream {
		// Drifting stream: later values are larger, so recency is visible.
		stream[i] = float64(i)/n*100 + rng.NormFloat64()*5
	}
	trueMean := mean(stream)
	trueMedian := median(stream)

	evaluate := func(name string, sample []float64, recencyIdx []int) {
		md, qd := 0.0, 0.0
		if len(sample) > 0 {
			md = math.Abs(mean(sample)-trueMean) / trueMean
			qd = math.Abs(median(sample)-trueMedian) / trueMedian
		}
		recent := 0
		for _, idx := range recencyIdx {
			if idx >= n*9/10 {
				recent++
			}
		}
		fr := "n/a"
		if len(recencyIdx) > 0 {
			fr = pct(float64(recent) / float64(len(recencyIdx)))
		}
		t.AddRow(name, d(len(sample)), pct(md), pct(qd), fr)
	}

	// Reservoir R over (value, index) pairs.
	type vi struct {
		v float64
		i int
	}
	res, _ := sampling.NewReservoir[vi](1000, 1)
	resL, _ := sampling.NewReservoirL[vi](1000, 2)
	biased, _ := sampling.NewBiasedReservoir[vi](1000, 3)
	chain, _ := sampling.NewChainSample[vi](1000, n/10, 4)
	bern, _ := sampling.NewBernoulli[vi](0.01, 5)
	for i, v := range stream {
		p := vi{v: v, i: i}
		res.Update(p)
		resL.Update(p)
		biased.Update(p)
		chain.Update(p)
		bern.Update(p)
	}
	extract := func(xs []vi) ([]float64, []int) {
		vs := make([]float64, len(xs))
		is := make([]int, len(xs))
		for i, x := range xs {
			vs[i], is[i] = x.v, x.i
		}
		return vs, is
	}
	v, i := extract(res.Sample())
	evaluate("reservoir-R", v, i)
	v, i = extract(resL.Sample())
	evaluate("reservoir-L", v, i)
	v, i = extract(bern.Sample())
	evaluate("bernoulli-1%", v, i)
	v, i = extract(biased.Sample())
	evaluate("biased-reservoir", v, i)
	v, i = extract(chain.Sample())
	evaluate("chain-window-10%", v, i)
	return t
}

// T1_02_Filtering measures false-positive rate against bits-per-key for
// the filter family, at zero false negatives.
func T1_02_Filtering() Table {
	t := Table{
		ID:     "T1.2",
		Title:  "Filtering (application: set membership)",
		Claim:  "no false negatives; FPR falls with bits/key; cuckoo beats Bloom at low FPR and supports deletion",
		Header: []string{"filter", "bits/key", "FPR", "false-negatives", "deletes"},
	}
	const n = 20000
	keys := make([][]byte, n)
	probes := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("member-%d", i))
		probes[i] = []byte(fmt.Sprintf("absent-%d", i))
	}
	measure := func(name string, add func([]byte), contains func([]byte) bool, bytes int, deletes string) {
		for _, k := range keys {
			add(k)
		}
		fn := 0
		for _, k := range keys {
			if !contains(k) {
				fn++
			}
		}
		fp := 0
		for _, p := range probes {
			if contains(p) {
				fp++
			}
		}
		t.AddRow(name, f(float64(bytes*8)/n), pct(float64(fp)/n), d(fn), deletes)
	}
	for _, fpTarget := range []float64{0.05, 0.01, 0.001} {
		b, _ := filter.NewBloom(n, fpTarget, 1)
		measure(fmt.Sprintf("bloom@%.3f", fpTarget), b.Add, b.Contains, b.Bytes(), "no")
	}
	cb, _ := filter.NewCountingBloom(n*10, 5, 2)
	measure("counting-bloom", cb.Add, cb.Contains, cb.Bytes(), "yes")
	pb, _ := filter.NewPartitionedBloom(n*2, 5, 3)
	measure("partitioned", pb.Add, pb.Contains, pb.Bytes(), "no")
	ck, _ := filter.NewCuckoo(n, 4)
	measure("cuckoo-16bit", func(k []byte) { ck.Add(k) }, ck.Contains, ck.Bytes(), "yes")
	return t
}

// T1_03_Correlation plants correlated pairs among independent streams and
// measures discovery precision/recall, plus lag recovery.
func T1_03_Correlation() Table {
	t := Table{
		ID:     "T1.3",
		Title:  "Correlation (application: fraud detection)",
		Claim:  "windowed scan finds exactly the planted correlated pairs; lagged coupling recovered",
		Header: []string{"setup", "planted", "found", "precision", "recall"},
	}
	rng := workload.NewRNG(103)
	const k = 12
	const n = 3000
	for _, coupling := range []float64{0.9, 0.7, 0.5} {
		ps, _ := correlation.NewPairScanner(k, 500)
		// Plant pairs (1,4) and (7,9).
		planted := map[[2]int]bool{{1, 4}: true, {7, 9}: true}
		for i := 0; i < n; i++ {
			vals := make([]float64, k)
			for j := range vals {
				vals[j] = rng.NormFloat64()
			}
			vals[4] = coupling*vals[1] + (1-coupling)*rng.NormFloat64()
			vals[9] = coupling*vals[7] + (1-coupling)*rng.NormFloat64()
			ps.Update(vals)
		}
		found := ps.Above(0.45)
		tp := 0
		for _, pr := range found {
			if planted[[2]int{pr.I, pr.J}] {
				tp++
			}
		}
		prec, rec := 1.0, float64(tp)/2
		if len(found) > 0 {
			prec = float64(tp) / float64(len(found))
		}
		t.AddRow(fmt.Sprintf("coupling=%.1f", coupling), "2", d(len(found)), pct(prec), pct(rec))
	}
	// Lag recovery row.
	x, y := workload.CorrelatedPair(rng, 5000, 0.9, 12)
	lag, corr := correlation.CrossCorrelation(x, y, 30)
	t.AddRow("lagged(true=12)", "1", fmt.Sprintf("lag=%d r=%.2f", lag, corr), "-", "-")
	return t
}

// T1_04_Cardinality sweeps distinct counts and compares estimator error
// against memory for the full sketch family.
func T1_04_Cardinality() Table {
	t := Table{
		ID:     "T1.4",
		Title:  "Estimating Cardinality (application: site audience analysis)",
		Claim:  "HLL ~1.04/sqrt(m); LogLog worse at equal m; LC best below capacity then saturates; KMV supports set ops",
		Header: []string{"estimator", "n=1e3", "n=1e4", "n=1e5", "n=1e6", "bytes"},
	}
	ns := []int{1000, 10000, 100000, 1000000}
	row := func(name string, run func(stream []uint64) (est float64, bytes int)) {
		cells := []string{name}
		var lastBytes int
		for _, n := range ns {
			stream := workload.Distinct(workload.NewRNG(uint64(104+n)), n)
			est, bytes := run(stream)
			lastBytes = bytes
			cells = append(cells, pct(math.Abs(est-float64(n))/float64(n)))
		}
		cells = append(cells, d(lastBytes))
		t.AddRow(cells...)
	}
	row("linear-64KB", func(s []uint64) (float64, int) {
		lc, _ := cardinality.NewLinearCounter(1<<19, 1)
		for _, x := range s {
			lc.UpdateUint64(x)
		}
		return lc.Estimate(), lc.Bytes()
	})
	row("pcsa-256", func(s []uint64) (float64, int) {
		p, _ := cardinality.NewPCSA(256, 1)
		for _, x := range s {
			p.UpdateUint64(x)
		}
		return p.Estimate(), p.Bytes()
	})
	row("loglog-p12", func(s []uint64) (float64, int) {
		l, _ := cardinality.NewLogLog(12, 1)
		for _, x := range s {
			l.UpdateUint64(x)
		}
		return l.Estimate(), l.Bytes()
	})
	row("hll-p12", func(s []uint64) (float64, int) {
		h, _ := cardinality.NewHyperLogLog(12, 1)
		for _, x := range s {
			h.UpdateUint64(x)
		}
		return h.Estimate(), h.Bytes()
	})
	row("hll++-p12", func(s []uint64) (float64, int) {
		h, _ := cardinality.NewSparseHLL(12, 1)
		for _, x := range s {
			h.UpdateUint64(x)
		}
		return h.Estimate(), h.Bytes()
	})
	row("kmv-1024", func(s []uint64) (float64, int) {
		k, _ := cardinality.NewKMV(1024, 1)
		for _, x := range s {
			k.UpdateUint64(x)
		}
		return k.Estimate(), k.Bytes()
	})
	return t
}

// T1_05_Quantiles compares the quantile summaries' rank error and space
// against the exact baseline.
func T1_05_Quantiles() Table {
	t := Table{
		ID:     "T1.5",
		Title:  "Estimating Quantiles (application: network analysis)",
		Claim:  "GK meets eps deterministically in sublinear space; frugal uses O(1) words; CKMS cheap at targeted tails",
		Header: []string{"summary", "p50-err", "p99-err", "bytes", "vs-exact-bytes"},
	}
	const n = 200000
	rng := workload.NewRNG(105)
	stream := make([]float64, n)
	for i := range stream {
		stream[i] = rng.ExpFloat64() * 100 // long-tailed latencies
	}
	sorted := append([]float64(nil), stream...)
	sort.Float64s(sorted)
	rankErr := func(got float64, phi float64) float64 {
		r := float64(sort.SearchFloat64s(sorted, got+1e-12))
		return math.Abs(r-phi*n) / n
	}
	exactBytes := n * 8

	gk, _ := quantile.NewGK(0.005)
	ck, _ := quantile.NewCKMS([]quantile.Target{{Phi: 0.5, Eps: 0.02}, {Phi: 0.99, Eps: 0.002}})
	f2a, _ := quantile.NewFrugal2U(0.5, 1)
	f2b, _ := quantile.NewFrugal2U(0.99, 1)
	qd, _ := quantile.NewQDigest(20, 2000)
	for _, v := range stream {
		gk.Update(v)
		ck.Update(v)
		f2a.Update(v)
		f2b.Update(v)
		qd.Update(uint64(v*100), 1)
	}
	t.AddRow("gk-eps0.005", pct(rankErr(gk.Query(0.5), 0.5)), pct(rankErr(gk.Query(0.99), 0.99)),
		d(gk.Bytes()), ratio(gk.Bytes(), exactBytes))
	t.AddRow("ckms-targeted", pct(rankErr(ck.Query(0.5), 0.5)), pct(rankErr(ck.Query(0.99), 0.99)),
		d(ck.Bytes()), ratio(ck.Bytes(), exactBytes))
	t.AddRow("frugal2u", pct(rankErr(f2a.Query(), 0.5)), pct(rankErr(f2b.Query(), 0.99)),
		"16+16", ratio(32, exactBytes))
	t.AddRow("qdigest-k2000", pct(rankErr(float64(qd.Query(0.5))/100, 0.5)),
		pct(rankErr(float64(qd.Query(0.99))/100, 0.99)), d(qd.Bytes()), ratio(qd.Bytes(), exactBytes))
	t.AddRow("exact", "0", "0", d(exactBytes), "1x")
	return t
}

// T1_06_Moments measures AMS F2 error versus sketch size and Fk sampling.
func T1_06_Moments() Table {
	t := Table{
		ID:     "T1.6",
		Title:  "Estimating Moments (application: databases / join sizes)",
		Claim:  "AMS F2 error shrinks ~1/sqrt(cols); sketch preserves skew ordering",
		Header: []string{"estimator", "config", "rel-error", "bytes"},
	}
	const n = 100000
	stream := workload.NewZipf(workload.NewRNG(106), 5000, 1.1).Stream(n)
	truth := moments.ExactMoments(stream, 2)[2]
	for _, cols := range []int{16, 64, 256, 1024} {
		a, _ := moments.NewAMSF2(5, cols, 7)
		for _, x := range stream {
			a.Update(x, 1)
		}
		t.AddRow("ams-f2", fmt.Sprintf("5x%d", cols),
			pct(math.Abs(a.Estimate()-truth)/truth), d(a.Bytes()))
	}
	fk, _ := moments.NewFkSampler(3, 400, 7)
	for _, x := range stream {
		fk.Update(x)
	}
	f3 := moments.ExactMoments(stream, 3)[3]
	t.AddRow("fk-sampler(k=3)", "400 samplers", pct(math.Abs(fk.Estimate()-f3)/f3), d(fk.Bytes()))
	return t
}

// T1_07_FrequentElements scores the heavy-hitter family on recall,
// precision and space at a Zipf workload.
func T1_07_FrequentElements() Table {
	t := Table{
		ID:     "T1.7",
		Title:  "Finding Frequent Elements (application: trending hashtags)",
		Claim:  "counter summaries: full recall above N/k in O(k) space; CM overestimates, CS two-sided; SS tracks top-k tightest",
		Header: []string{"algorithm", "recall", "precision", "avg-count-err", "bytes"},
	}
	const n = 200000
	const theta = 0.002
	stream := frequency.ZipfStrings(107, n, 20000, 1.1)
	truth := map[string]uint64{}
	for _, it := range stream {
		truth[it]++
	}
	thresh := uint64(theta * n)
	var heavy []string
	for it, c := range truth {
		if c > thresh {
			heavy = append(heavy, it)
		}
	}
	score := func(name string, est func(string) uint64, candidates []string, bytes int) {
		found := map[string]bool{}
		for _, c := range candidates {
			if est(c) > thresh/2 {
				found[c] = true
			}
		}
		tp := 0
		for _, h := range heavy {
			if found[h] {
				tp++
			}
		}
		var errSum float64
		for _, h := range heavy {
			e := est(h)
			errSum += math.Abs(float64(e) - float64(truth[h]))
		}
		prec := 1.0
		if len(found) > 0 {
			prec = float64(tp) / float64(len(found))
		}
		t.AddRow(name, pct(float64(tp)/float64(len(heavy))), pct(prec),
			f(errSum/float64(len(heavy))), d(bytes))
	}
	k := int(2 / theta)
	mg, _ := frequency.NewMisraGries(k)
	ss, _ := frequency.NewSpaceSaving(k)
	lc, _ := frequency.NewLossyCounting(theta / 2)
	st, _ := frequency.NewStickySampling(theta, theta/2, 0.01, 1)
	cm, _ := frequency.NewCountMin(2048, 5, 1)
	cs, _ := frequency.NewCountSketch(2048, 5, 1)
	for _, it := range stream {
		mg.Update(it)
		ss.Update(it)
		lc.Update(it)
		st.Update(it)
		cm.UpdateString(it, 1)
		cs.Update([]byte(it), 1)
	}
	mgCand := make([]string, 0)
	for _, c := range mg.Candidates() {
		mgCand = append(mgCand, c.Item)
	}
	score("misra-gries", mg.Estimate, mgCand, mg.Bytes())
	ssCand := make([]string, 0)
	for _, c := range ss.TopK(k) {
		ssCand = append(ssCand, c.Item)
	}
	score("space-saving", func(s string) uint64 { c, _ := ss.Estimate(s); return c }, ssCand, ss.Bytes())
	lcCand := make([]string, 0)
	for _, c := range lc.Frequent(theta) {
		lcCand = append(lcCand, c.Item)
	}
	score("lossy-counting", lc.Estimate, lcCand, lc.Bytes())
	stCand := make([]string, 0)
	for _, c := range st.Frequent(theta) {
		stCand = append(stCand, c.Item)
	}
	score("sticky-sampling", st.Estimate, stCand, st.Bytes())
	// Sketches answer point queries; candidates are the true heavy set
	// plus decoys (sketches cannot enumerate).
	decoys := heavy
	for i := 0; i < 100; i++ {
		decoys = append(decoys, fmt.Sprintf("k%d", 19000+i))
	}
	score("count-min", cm.EstimateString, decoys, cm.Bytes())
	score("count-sketch", func(s string) uint64 {
		v := cs.Estimate([]byte(s))
		if v < 0 {
			return 0
		}
		return uint64(v)
	}, decoys, cs.Bytes())
	return t
}

// T1_08_Inversions compares the streaming estimator against the exact
// Fenwick counter across sortedness levels.
func T1_08_Inversions() Table {
	t := Table{
		ID:     "T1.8",
		Title:  "Counting Inversions (application: measuring sortedness)",
		Claim:  "estimator tracks exact count across disorder levels in constant space",
		Header: []string{"stream", "exact", "estimate", "rel-err", "est-bytes", "exact-bytes"},
	}
	const n = 20000
	for _, swap := range []float64{0.001, 0.01, 0.1, 1.0} {
		stream := workload.NearSorted(workload.NewRNG(108), n, swap)
		ex, _ := inversions.NewExactCounter(n)
		est, _ := inversions.NewEstimator(600, 7)
		for _, v := range stream {
			ex.Update(v)
			est.Update(v)
		}
		rel := math.Abs(est.Estimate()-float64(ex.Count())) / math.Max(1, float64(ex.Count()))
		t.AddRow(fmt.Sprintf("swaps=%.1f%%", swap*100), d(ex.Count()),
			f(est.Estimate()), pct(rel), d(est.Bytes()), d(ex.Bytes()))
	}
	return t
}

// mean/median helpers for the sampling experiment.
func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func ratio(a, b int) string {
	return fmt.Sprintf("%.4fx", float64(a)/float64(b))
}
