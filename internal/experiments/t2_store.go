package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/quantile"
	"repro/internal/store"
	"repro/internal/workload"
)

// T2_4_SketchStore measures the sharded sketch store as a serving system,
// at shard counts 1/4/16/64 under two key distributions, in two phases per
// row: an ingest phase (16 parallel writers) and a serving phase (writers
// keep ingesting while readers issue range merge-queries). The tutorial's
// Section 3 point is that the speed layer's state store — not the sketch —
// is where write-heavy concurrency lives. Sharding shrinks the lock
// domain: with one shard, every preemption of a lock holder stalls every
// writer; with N shards, only the writers colliding on that shard. On
// uniform keys ingest throughput therefore rises from 1 to 16 shards; on
// Zipf-skewed keys the hottest keys serialize on their home shards and cap
// the win — the known limitation that leads production stores to split or
// replicate hot keys. GOMAXPROCS is raised to the writer count for the
// measurement so lock holders genuinely get timesliced mid-critical-
// section even on small containers — the regime a deployed multi-threaded
// store actually runs in (on a multi-core box the same contention appears
// without the override; see BenchmarkStoreIngest).
func T2_4_SketchStore() Table {
	t := Table{
		ID:     "T2.4",
		Title:  "Sharded sketch store: concurrent ingest + merge-query serving",
		Claim:  "per-shard locking scales ingest 1 -> 16 shards on uniform keys (Zipf hot keys cap the win); snapshot queries stay fast under ingest",
		Header: []string{"shards", "keys", "ingest/sec", "queries/sec", "query-p50-us", "query-p99-us"},
	}
	const (
		writers   = 16
		perWriter = 25000
		readers   = 4
		perReader = 300
		keySpace  = 128
	)
	prev := runtime.GOMAXPROCS(writers)
	defer runtime.GOMAXPROCS(prev)

	// Pre-generate workloads so the measured sections are store cost, not
	// generator cost.
	uniform := make([]string, writers*perWriter)
	for i := range uniform {
		uniform[i] = fmt.Sprintf("k%d", i%keySpace)
	}
	zipf := make([]string, writers*perWriter)
	rng := workload.NewRNG(404)
	z := workload.NewZipf(rng, keySpace, 1.1)
	for i := range zipf {
		zipf[i] = fmt.Sprintf("k%d", z.Draw())
	}
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}

	for _, shards := range []int{1, 4, 16, 64} {
		for _, dist := range []struct {
			name string
			keys []string
		}{{"uniform", uniform}, {"zipf", zipf}} {
			st, err := store.New(store.Config{Shards: shards, BucketWidth: 50, RingBuckets: 64})
			if err != nil {
				panic(err)
			}
			proto, err := store.NewDistinctProto(12, 7)
			if err != nil {
				panic(err)
			}
			if err := st.RegisterMetric("uniq", proto); err != nil {
				panic(err)
			}
			var clock atomic.Int64
			write := func(i int) {
				ts := clock.Add(1)
				if err := st.Observe(store.Observation{
					Metric: "uniq",
					Key:    dist.keys[i%len(dist.keys)],
					Item:   items[i%len(items)],
					Time:   ts,
				}); err != nil {
					panic(err)
				}
			}

			// Phase A: ingest only — throughput vs shard count.
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						write(w*perWriter + i)
					}
				}(w)
			}
			wg.Wait()
			ingestSecs := time.Since(start).Seconds()

			// Phase B: serving under ingest — half the writers stream on
			// while readers issue bounded batches of range merge-queries
			// over recent history.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			for w := 0; w < writers/2; w++ {
				bg.Add(1)
				go func(w int) {
					defer bg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
							write(w*perWriter + i)
						}
					}
				}(w)
			}
			qlat, _ := quantile.NewGK(0.01)
			var qmu sync.Mutex
			var rwg sync.WaitGroup
			qstart := time.Now()
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func(r int) {
					defer rwg.Done()
					for i := 0; i < perReader; i++ {
						now := clock.Load()
						from := now - 2000
						if from < 0 {
							from = 0
						}
						q0 := time.Now()
						if _, err := st.Query("uniq", dist.keys[(r*7919+i*31)%len(dist.keys)], from, now); err != nil {
							panic(err)
						}
						us := float64(time.Since(q0).Microseconds())
						qmu.Lock()
						qlat.Update(us)
						qmu.Unlock()
					}
				}(r)
			}
			rwg.Wait()
			querySecs := time.Since(qstart).Seconds()
			close(stop)
			bg.Wait()

			t.AddRow(
				fmt.Sprintf("%d", shards),
				dist.name,
				f(float64(writers*perWriter)/ingestSecs),
				f(float64(readers*perReader)/querySecs),
				f(qlat.Query(0.50)),
				f(qlat.Query(0.99)),
			)
		}
	}
	return t
}
