package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/quantile"
	"repro/internal/store"
	"repro/internal/workload"
)

// T2_5_HotKeySplay measures the hot-key mitigation T2.4 motivates: the
// same 16-writer ingest phase, on Zipf-keyed traffic at two skews, with
// the store's hot-key splaying off (baseline) and on. The baseline's hot
// keys serialize on their home shard's lock, so adding shards stops
// helping; with splaying enabled the store detects them with per-shard
// Space-Saving trackers and spreads their writes across R sub-entries on
// distinct shards, re-merged lazily at query time — the split/replicate
// strategy production stores use, made safe here by the mergeable-
// summaries property of every bucket synopsis. The speedup column is the
// acceptance gate: at 16 shards splayed ingest must beat baseline by well
// over 1x (deterministic equality of splayed vs unsplayed answers is
// asserted by TestHotKeyLifecycleMatchesControl in internal/store).
func T2_5_HotKeySplay() Table {
	t := Table{
		ID:     "T2.5",
		Title:  "Hot-key write splaying: Zipf ingest, baseline vs splayed",
		Claim:  "splaying hot keys across shards recovers the ingest scaling Zipf skew destroys (>= 1.5x at 16 shards)",
		Header: []string{"shards", "zipf-s", "baseline/sec", "splayed/sec", "speedup", "hot-keys", "splayed-writes"},
	}
	const (
		writers   = 16
		perWriter = 50000 // long enough that detection warmup is noise
		keySpace  = 128
	)
	prev := runtime.GOMAXPROCS(writers)
	defer runtime.GOMAXPROCS(prev)

	keysFor := func(seed uint64, skew float64) []string {
		keys := make([]string, writers*perWriter)
		rng := workload.NewRNG(seed)
		z := workload.NewZipf(rng, keySpace, skew)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", z.Draw())
		}
		return keys
	}
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}

	ingest := func(shards int, keys []string, hot store.HotKeyConfig) (float64, store.Stats) {
		st, err := store.New(store.Config{Shards: shards, BucketWidth: 50, RingBuckets: 64, HotKey: hot})
		if err != nil {
			panic(err)
		}
		proto, err := store.NewDistinctProto(12, 7)
		if err != nil {
			panic(err)
		}
		if err := st.RegisterMetric("uniq", proto); err != nil {
			panic(err)
		}
		runtime.GC() // start every trial from a settled heap
		var clock atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					n := w*perWriter + i
					if err := st.Observe(store.Observation{
						Metric: "uniq",
						Key:    keys[n%len(keys)],
						Item:   items[n%len(items)],
						Time:   clock.Add(1),
					}); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(writers*perWriter) / time.Since(start).Seconds(), st.Stats()
	}
	// A sub-second trial is at the mercy of scheduler and GC timing with
	// GOMAXPROCS raised past the physical cores, so each cell reports the
	// median of five trials, and baseline/splayed trials interleave so
	// drift in the container's effective speed cancels instead of biasing
	// whichever column ran second.
	const trials = 5
	median := func(rates []float64, stats []store.Stats) (float64, store.Stats) {
		order := make([]int, len(rates))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return rates[order[a]] < rates[order[b]] })
		mid := order[len(order)/2]
		return rates[mid], stats[mid]
	}

	// The key streams are shard-independent; build one per skew up front
	// instead of re-generating 800k strings for every shard count.
	keysBySkew := map[float64][]string{}
	for _, skew := range []float64{1.1, 1.5} {
		keysBySkew[skew] = keysFor(505, skew)
	}

	for _, shards := range []int{1, 4, 16, 64} {
		for _, skew := range []float64{1.1, 1.5} {
			keys := keysBySkew[skew]
			baseRates := make([]float64, trials)
			baseStats := make([]store.Stats, trials)
			splayRates := make([]float64, trials)
			splayStats := make([]store.Stats, trials)
			for i := 0; i < trials; i++ {
				baseRates[i], baseStats[i] = ingest(shards, keys, store.HotKeyConfig{})
				// Deliberately broad promotion (low PromotePct, high
				// MaxHot): on a 128-key Zipf stream nearly every key
				// clears the bar eventually, so the hot-keys column shows
				// the whole keyspace splayed — write combining pays for
				// medium keys too, and MaxHot is the actual guard rail.
				splayRates[i], splayStats[i] = ingest(shards, keys, store.HotKeyConfig{Replicas: 16, MaxHot: 256, PromotePct: 2, EpochWrites: 512})
			}
			base, _ := median(baseRates, baseStats)
			splay, stats := median(splayRates, splayStats)
			t.AddRow(
				fmt.Sprintf("%d", shards),
				fmt.Sprintf("%.1f", skew),
				f(base),
				f(splay),
				fmt.Sprintf("%.2fx", splay/base),
				d(int64(stats.HotKeys)),
				d(stats.SplayedWrites),
			)
		}
	}
	return t
}

// T2_4_SketchStore measures the sharded sketch store as a serving system,
// at shard counts 1/4/16/64 under two key distributions, in two phases per
// row: an ingest phase (16 parallel writers) and a serving phase (writers
// keep ingesting while readers issue range merge-queries). The tutorial's
// Section 3 point is that the speed layer's state store — not the sketch —
// is where write-heavy concurrency lives. Sharding shrinks the lock
// domain: with one shard, every preemption of a lock holder stalls every
// writer; with N shards, only the writers colliding on that shard. On
// uniform keys ingest throughput therefore rises from 1 to 16 shards; on
// Zipf-skewed keys the hottest keys serialize on their home shards and cap
// the win — the known limitation that leads production stores to split or
// replicate hot keys. GOMAXPROCS is raised to the writer count for the
// measurement so lock holders genuinely get timesliced mid-critical-
// section even on small containers — the regime a deployed multi-threaded
// store actually runs in (on a multi-core box the same contention appears
// without the override; see BenchmarkStoreIngest).
func T2_4_SketchStore() Table {
	t := Table{
		ID:     "T2.4",
		Title:  "Sharded sketch store: concurrent ingest + merge-query serving",
		Claim:  "per-shard locking scales ingest 1 -> 16 shards on uniform keys (Zipf hot keys cap the win); snapshot queries stay fast under ingest",
		Header: []string{"shards", "keys", "ingest/sec", "queries/sec", "query-p50-us", "query-p99-us"},
	}
	const (
		writers   = 16
		perWriter = 25000
		readers   = 4
		perReader = 300
		keySpace  = 128
	)
	prev := runtime.GOMAXPROCS(writers)
	defer runtime.GOMAXPROCS(prev)

	// Pre-generate workloads so the measured sections are store cost, not
	// generator cost.
	uniform := make([]string, writers*perWriter)
	for i := range uniform {
		uniform[i] = fmt.Sprintf("k%d", i%keySpace)
	}
	zipf := make([]string, writers*perWriter)
	rng := workload.NewRNG(404)
	z := workload.NewZipf(rng, keySpace, 1.1)
	for i := range zipf {
		zipf[i] = fmt.Sprintf("k%d", z.Draw())
	}
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("u%d", i)
	}

	for _, shards := range []int{1, 4, 16, 64} {
		for _, dist := range []struct {
			name string
			keys []string
		}{{"uniform", uniform}, {"zipf", zipf}} {
			st, err := store.New(store.Config{Shards: shards, BucketWidth: 50, RingBuckets: 64})
			if err != nil {
				panic(err)
			}
			proto, err := store.NewDistinctProto(12, 7)
			if err != nil {
				panic(err)
			}
			if err := st.RegisterMetric("uniq", proto); err != nil {
				panic(err)
			}
			var clock atomic.Int64
			write := func(i int) {
				ts := clock.Add(1)
				if err := st.Observe(store.Observation{
					Metric: "uniq",
					Key:    dist.keys[i%len(dist.keys)],
					Item:   items[i%len(items)],
					Time:   ts,
				}); err != nil {
					panic(err)
				}
			}

			// Phase A: ingest only — throughput vs shard count.
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						write(w*perWriter + i)
					}
				}(w)
			}
			wg.Wait()
			ingestSecs := time.Since(start).Seconds()

			// Phase B: serving under ingest — half the writers stream on
			// while readers issue bounded batches of range merge-queries
			// over recent history.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			for w := 0; w < writers/2; w++ {
				bg.Add(1)
				go func(w int) {
					defer bg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
							write(w*perWriter + i)
						}
					}
				}(w)
			}
			qlat, _ := quantile.NewGK(0.01)
			var qmu sync.Mutex
			var rwg sync.WaitGroup
			qstart := time.Now()
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func(r int) {
					defer rwg.Done()
					for i := 0; i < perReader; i++ {
						now := clock.Load()
						from := now - 2000
						if from < 0 {
							from = 0
						}
						q0 := time.Now()
						if _, err := st.QueryPoint("uniq", dist.keys[(r*7919+i*31)%len(dist.keys)], from, now); err != nil {
							panic(err)
						}
						us := float64(time.Since(q0).Microseconds())
						qmu.Lock()
						qlat.Update(us)
						qmu.Unlock()
					}
				}(r)
			}
			rwg.Wait()
			querySecs := time.Since(qstart).Seconds()
			close(stop)
			bg.Wait()

			t.AddRow(
				fmt.Sprintf("%d", shards),
				dist.name,
				f(float64(writers*perWriter)/ingestSecs),
				f(float64(readers*perReader)/querySecs),
				f(qlat.Query(0.50)),
				f(qlat.Query(0.99)),
			)
		}
	}
	return t
}
