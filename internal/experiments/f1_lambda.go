package experiments

import (
	"fmt"
	"sort"

	"repro/internal/lambda"
	"repro/internal/store"
	"repro/internal/workload"
)

// F1_2_StoreLambda proves the offset-fenced batch/speed split end to end:
// a store-backed Lambda serving all four synopsis families (counters,
// cardinality, top-k, quantiles) must answer exactly like a single store
// that replayed the whole master log, at every batch-recompute boundary —
// while the speed layer sustains the T2.5 hot-key write-combining path
// under Zipf-skewed ingest.
//
// The mismatch column is the acceptance gate and must be zero: counters
// (Count-Min is additive), cardinality (HyperLogLog merge is register
// max) and top-k (Space-Saving in its exact regime: k counters >= item
// universe) are compared for equality; quantiles are compared against the
// exact value list within the merged q-digest's rank-error budget (two
// constituents at logU/k = 16/256 each, checked at 4x slack). The
// hot-keys / splayed-writes columns prove the speed layer actually ran
// the splayed path, not the plain one — the speed store's stats reset at
// every truncation, so they are sampled just before each handoff.
func F1_2_StoreLambda() Table {
	t := Table{
		ID:     "F1.2",
		Title:  "Store-backed Lambda: merged batch+speed answers vs single-store oracle",
		Claim:  "across batch boundaries, merged answers equal a replay-everything oracle (counters/cardinality/top-k exact, quantiles within bound) with hot-key splaying active",
		Header: []string{"boundary", "appended", "staleness-pre", "hot-keys", "splayed-writes", "checked", "mismatch"},
	}
	geom := store.Config{Shards: 8, BucketWidth: 1000, RingBuckets: 64}
	speed := geom
	speed.HotKey = store.HotKeyConfig{Replicas: 8, MaxHot: 64, PromotePct: 2, EpochWrites: 512}
	arch, err := lambda.New(lambda.Config{Partitions: 4, Batch: geom, Speed: speed})
	if err != nil {
		panic(err)
	}
	defer arch.Close()

	protos := map[string]store.Prototype{}
	mk := func(name string, p store.Prototype, err error) {
		if err != nil {
			panic(err)
		}
		protos[name] = p
		if err := arch.RegisterMetric(name, p); err != nil {
			panic(err)
		}
	}
	cm, err := store.NewFreqProto(512, 4, 12)
	mk("hits", cm, err)
	hll, err := store.NewDistinctProto(12, 12)
	mk("uniq", hll, err)
	ss, err := store.NewTopKProto(64) // item universe is 48: exact regime
	mk("top", ss, err)
	qd, err := store.NewQuantileProto(16, 256)
	mk("lat", qd, err)

	rng := workload.NewRNG(112)
	z := workload.NewZipf(rng, 32, 1.3)
	values := map[string][]uint64{}
	const rounds = 4 // >= 3 batch-recompute boundaries, plus one extra
	const perRound = 15000
	var now int64
	for round := 1; round <= rounds; round++ {
		for i := 0; i < perRound; i++ {
			now = int64((round-1)*perRound + i)
			key := fmt.Sprintf("k%d", z.Draw())
			item := fmt.Sprintf("u%d", rng.Uint64()%48)
			val := rng.Uint64() % 50000
			for _, obs := range []store.Observation{
				{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
				{Metric: "uniq", Key: key, Item: item, Time: now},
				{Metric: "top", Key: key, Item: item, Time: now},
				{Metric: "lat", Key: key, Value: val, Time: now},
			} {
				if err := arch.Append(obs); err != nil {
					panic(err)
				}
			}
			values[key] = append(values[key], val)
		}
		// Sample hot-key engagement before the handoff resets the store.
		arch.FlushSpeedHot()
		st := arch.SpeedStats()
		stalePre := arch.Staleness()
		if _, err := arch.RunBatch(); err != nil {
			panic(err)
		}
		checked, mismatch := lambdaOracleCompare(arch, geom, protos, values, now)
		t.AddRow(d(round), d(arch.Appended()), d(stalePre), d(st.HotKeys), d(st.SplayedWrites), d(checked), d(mismatch))
	}
	return t
}

// lambdaOracleCompare checks every key's merged answer against a single
// store rebuilt from the whole master log with the architecture's own
// geometry, returning how many answers were checked and how many
// disagreed beyond each family's bound.
func lambdaOracleCompare(arch *lambda.Architecture, geom store.Config, protos map[string]store.Prototype, values map[string][]uint64, to int64) (checked, mismatch int) {
	oracle, _, err := store.Rebuild(geom, protos, arch.Topic(), nil)
	if err != nil {
		panic(err)
	}
	q := func(src func(metric, key string, from, to int64) (store.Synopsis, error), metric, key string) store.Synopsis {
		syn, err := src(metric, key, 0, to)
		if err != nil {
			panic(err)
		}
		return syn
	}
	for _, key := range oracle.Keys("hits") {
		// Counters: additive, exact.
		mh := q(arch.QueryPoint, "hits", key).(*store.Freq)
		oh := q(oracle.QueryPoint, "hits", key).(*store.Freq)
		for u := 0; u < 8; u++ {
			item := fmt.Sprintf("u%d", u)
			if mh.Count(item) != oh.Count(item) {
				mismatch++
			}
			checked++
		}
		// Cardinality: register max, exact.
		if q(arch.QueryPoint, "uniq", key).(*store.Distinct).Estimate() != q(oracle.QueryPoint, "uniq", key).(*store.Distinct).Estimate() {
			mismatch++
		}
		checked++
		// Top-k: exact regime (64 counters, 48 items), exact.
		mt := map[string]uint64{}
		for _, c := range q(arch.QueryPoint, "top", key).(*store.TopK).Top(64) {
			mt[c.Item] = c.Count
		}
		ot := map[string]uint64{}
		for _, c := range q(oracle.QueryPoint, "top", key).(*store.TopK).Top(64) {
			ot[c.Item] = c.Count
		}
		if len(mt) != len(ot) {
			mismatch++
		} else {
			for item, c := range ot {
				if mt[item] != c {
					mismatch++
					break
				}
			}
		}
		checked++
		// Quantiles: rank error within the merged digest budget against
		// the exact value list.
		vals := append([]uint64(nil), values[key]...)
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		n := len(vals)
		tol := int(0.25*float64(n)) + 1 // 4x slack on 2 x logU/k = 0.125
		ml := q(arch.QueryPoint, "lat", key).(*store.Quantiles)
		for _, phi := range []float64{0.5, 0.9, 0.99} {
			got := ml.Quantile(phi)
			lo := sort.Search(n, func(i int) bool { return vals[i] >= got })
			hi := sort.Search(n, func(i int) bool { return vals[i] > got })
			target := int(phi * float64(n))
			if lo-tol > target || hi+tol < target {
				mismatch++
			}
			checked++
		}
	}
	return checked, mismatch
}
