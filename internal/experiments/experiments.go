// Package experiments regenerates every table and figure of the
// tutorial's evaluation surface (Table 1's seventeen problem rows,
// Section 2's synopsis structures, Table 2's platform design space, and
// Figure 1's Lambda Architecture) as measurable artifacts: each experiment
// runs a deterministic workload through the relevant implementations and
// reports accuracy, memory and ordering results as a formatted table.
//
// cmd/streambench prints them all; bench_test.go wraps each in a
// testing.B benchmark; EXPERIMENTS.md records the outcomes against the
// paper's qualitative claims.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a title, column headers, and rows.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's qualitative claim this table checks
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// d formats an integer.
func d[T int | int64 | uint64](v T) string { return fmt.Sprintf("%d", v) }

// Builder names one experiment without running it, so callers can list or
// select experiments (cmd/streambench) without paying for the whole suite.
type Builder struct {
	ID    string
	Title string
	Build func() Table
}

// Builders returns every experiment in presentation order.
func Builders() []Builder {
	return []Builder{
		{"T1.1", "Table 1 row: sampling", T1_01_Sampling},
		{"T1.2", "Table 1 row: filtering", T1_02_Filtering},
		{"T1.3", "Table 1 row: correlation", T1_03_Correlation},
		{"T1.4", "Table 1 row: cardinality", T1_04_Cardinality},
		{"T1.5", "Table 1 row: quantiles", T1_05_Quantiles},
		{"T1.6", "Table 1 row: moments", T1_06_Moments},
		{"T1.7", "Table 1 row: frequent elements", T1_07_FrequentElements},
		{"T1.8", "Table 1 row: inversions", T1_08_Inversions},
		{"T1.9", "Table 1 row: subsequences", T1_09_Subsequences},
		{"T1.10", "Table 1 row: path analysis", T1_10_PathAnalysis},
		{"T1.11", "Table 1 row: anomaly detection", T1_11_Anomaly},
		{"T1.12", "Table 1 row: temporal patterns", T1_12_TemporalPatterns},
		{"T1.13", "Table 1 row: prediction", T1_13_Prediction},
		{"T1.14", "Table 1 row: clustering", T1_14_Clustering},
		{"T1.15", "Table 1 row: graph analysis", T1_15_GraphAnalysis},
		{"T1.16", "Table 1 row: basic counting", T1_16_BasicCounting},
		{"T1.17", "Table 1 row: significant ones", T1_17_SignificantOnes},
		{"S2.1", "Section 2: histograms", S2_1_Histograms},
		{"S2.2", "Section 2: wavelets", S2_2_Wavelets},
		{"T2.1", "Table 2: delivery semantics", T2_1_Semantics},
		{"T2.2", "Table 2: stream groupings", T2_2_Grouping},
		{"T2.3", "Table 2: partitioned log", T2_3_Broker},
		{"T2.4", "Sharded sketch store serving", T2_4_SketchStore},
		{"T2.5", "Hot-key write splaying", T2_5_HotKeySplay},
		{"T3.1", "Partitioned store cluster", T3_1_ClusterStore},
		{"F1", "Figure 1: Lambda Architecture", F1_Lambda},
		{"F1.2", "Store-backed Lambda vs oracle", F1_2_StoreLambda},
		{"A1", "Ablation: conservative update", A1_ConservativeUpdate},
		{"A2", "Ablation: sparse/dense crossover", A2_SparseDenseCrossover},
		{"A3", "Ablation: double hashing", A3_DoubleHashing},
		{"A4", "Ablation: acking overhead", A4_AckingOverhead},
		{"A5", "Ablation: GK compression", A5_GKCompression},
	}
}

// All runs every experiment and returns the tables in presentation order.
func All() []Table {
	builders := Builders()
	tables := make([]Table, 0, len(builders))
	for _, b := range builders {
		tables = append(tables, b.Build())
	}
	return tables
}
