// Package experiments regenerates every table and figure of the
// tutorial's evaluation surface (Table 1's seventeen problem rows,
// Section 2's synopsis structures, Table 2's platform design space, and
// Figure 1's Lambda Architecture) as measurable artifacts: each experiment
// runs a deterministic workload through the relevant implementations and
// reports accuracy, memory and ordering results as a formatted table.
//
// cmd/streambench prints them all; bench_test.go wraps each in a
// testing.B benchmark; EXPERIMENTS.md records the outcomes against the
// paper's qualitative claims.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a title, column headers, and rows.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's qualitative claim this table checks
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// d formats an integer.
func d[T int | int64 | uint64](v T) string { return fmt.Sprintf("%d", v) }

// All runs every experiment and returns the tables in presentation order.
func All() []Table {
	return []Table{
		T1_01_Sampling(),
		T1_02_Filtering(),
		T1_03_Correlation(),
		T1_04_Cardinality(),
		T1_05_Quantiles(),
		T1_06_Moments(),
		T1_07_FrequentElements(),
		T1_08_Inversions(),
		T1_09_Subsequences(),
		T1_10_PathAnalysis(),
		T1_11_Anomaly(),
		T1_12_TemporalPatterns(),
		T1_13_Prediction(),
		T1_14_Clustering(),
		T1_15_GraphAnalysis(),
		T1_16_BasicCounting(),
		T1_17_SignificantOnes(),
		S2_1_Histograms(),
		S2_2_Wavelets(),
		T2_1_Semantics(),
		T2_2_Grouping(),
		T2_3_Broker(),
		F1_Lambda(),
		A1_ConservativeUpdate(),
		A2_SparseDenseCrossover(),
		A3_DoubleHashing(),
		A4_AckingOverhead(),
		A5_GKCompression(),
	}
}
