package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The fast experiments run directly in tests; the heavyweight ones are
// covered by bench_test.go at the repo root (one testing.B per table) and
// by cmd/streambench.

func checkTable(t *testing.T, table Table) {
	t.Helper()
	if table.ID == "" || table.Title == "" {
		t.Fatalf("table missing id/title: %+v", table)
	}
	if len(table.Header) == 0 || len(table.Rows) == 0 {
		t.Fatalf("%s: empty table", table.ID)
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Header) {
			t.Fatalf("%s: row width %d != header width %d (%v)",
				table.ID, len(row), len(table.Header), row)
		}
	}
	s := table.String()
	if !strings.Contains(s, table.ID) {
		t.Fatalf("%s: render missing id", table.ID)
	}
}

func TestFastTablesWellFormed(t *testing.T) {
	for _, build := range []func() Table{
		T1_03_Correlation,
		T1_08_Inversions,
		T1_10_PathAnalysis,
		T1_12_TemporalPatterns,
		T1_13_Prediction,
		S2_1_Histograms,
		S2_2_Wavelets,
		A2_SparseDenseCrossover,
		A5_GKCompression,
	} {
		checkTable(t, build())
	}
}

func TestPathAnalysisAnswersMatchWant(t *testing.T) {
	table := T1_10_PathAnalysis()
	for _, row := range table.Rows {
		answer, want := row[3], row[4]
		if !strings.HasPrefix(want, answer) {
			t.Fatalf("T1.10 row %v: answer %q does not match want %q", row, answer, want)
		}
	}
}

func TestWaveletErrorMonotone(t *testing.T) {
	table := S2_2_Wavelets()
	prev := 1e300
	for _, row := range table.Rows {
		var e float64
		if _, err := sscan(row[1], &e); err != nil {
			t.Fatalf("unparseable error cell %q", row[1])
		}
		if e > prev+1e-9 {
			t.Fatalf("wavelet error not monotone: %v after %v", e, prev)
		}
		prev = e
	}
}

// sscan parses a float cell produced by f().
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

// The Builders registry is what cmd/streambench selects and lists by, so
// its IDs must be unique and must match the IDs of the tables they build
// (checked on the fast builders; the slow ones share the same literal
// convention).
func TestBuildersRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	count := 0
	fast := map[string]bool{
		"T1.3": true, "T1.8": true, "T1.10": true, "T1.12": true,
		"T1.13": true, "S2.1": true, "S2.2": true, "A2": true, "A5": true,
	}
	for _, b := range Builders() {
		if b.ID == "" || b.Title == "" || b.Build == nil {
			t.Fatalf("incomplete builder %+v", b)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate builder id %s", b.ID)
		}
		seen[b.ID] = true
		count++
		if fast[b.ID] {
			if got := b.Build().ID; got != b.ID {
				t.Fatalf("builder id %s builds table id %s", b.ID, got)
			}
		}
	}
	if count != 32 {
		t.Fatalf("expected 32 experiments, registry has %d", count)
	}
}
