package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The fast experiments run directly in tests; the heavyweight ones are
// covered by bench_test.go at the repo root (one testing.B per table) and
// by cmd/streambench.

func checkTable(t *testing.T, table Table) {
	t.Helper()
	if table.ID == "" || table.Title == "" {
		t.Fatalf("table missing id/title: %+v", table)
	}
	if len(table.Header) == 0 || len(table.Rows) == 0 {
		t.Fatalf("%s: empty table", table.ID)
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Header) {
			t.Fatalf("%s: row width %d != header width %d (%v)",
				table.ID, len(row), len(table.Header), row)
		}
	}
	s := table.String()
	if !strings.Contains(s, table.ID) {
		t.Fatalf("%s: render missing id", table.ID)
	}
}

func TestFastTablesWellFormed(t *testing.T) {
	for _, build := range []func() Table{
		T1_03_Correlation,
		T1_08_Inversions,
		T1_10_PathAnalysis,
		T1_12_TemporalPatterns,
		T1_13_Prediction,
		S2_1_Histograms,
		S2_2_Wavelets,
		A2_SparseDenseCrossover,
		A5_GKCompression,
	} {
		checkTable(t, build())
	}
}

func TestPathAnalysisAnswersMatchWant(t *testing.T) {
	table := T1_10_PathAnalysis()
	for _, row := range table.Rows {
		answer, want := row[3], row[4]
		if !strings.HasPrefix(want, answer) {
			t.Fatalf("T1.10 row %v: answer %q does not match want %q", row, answer, want)
		}
	}
}

func TestWaveletErrorMonotone(t *testing.T) {
	table := S2_2_Wavelets()
	prev := 1e300
	for _, row := range table.Rows {
		var e float64
		if _, err := sscan(row[1], &e); err != nil {
			t.Fatalf("unparseable error cell %q", row[1])
		}
		if e > prev+1e-9 {
			t.Fatalf("wavelet error not monotone: %v after %v", e, prev)
		}
		prev = e
	}
}

// sscan parses a float cell produced by f().
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
