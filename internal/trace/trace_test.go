package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if s := tr.StartRoot("q"); s != nil {
		t.Fatal("nil tracer StartRoot returned non-nil span")
	}
	if s := tr.StartSampled("o"); s != nil {
		t.Fatal("nil tracer StartSampled returned non-nil span")
	}
	if s := tr.StartRemote(Context{Trace: 1, Span: 1}, "r"); s != nil {
		t.Fatal("nil tracer StartRemote returned non-nil span")
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v, want zero", got)
	}
	if tr.Slow() != nil || tr.Traces() != nil {
		t.Fatal("nil tracer Slow/Traces returned non-nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer WriteChrome emitted invalid JSON: %v", err)
	}

	var sp *Span
	sp.SetAttrs(Str("k", "v"))
	sp.Finish()
	if c := sp.Child("x"); c != nil {
		t.Fatal("nil span Child returned non-nil")
	}
	if ctx := sp.Context(); ctx.Valid() {
		t.Fatal("nil span Context is valid")
	}
}

func TestContextRoundTrip(t *testing.T) {
	c := Context{Trace: 0xdeadbeefcafe, Span: 0x1234}
	got := DecodeContext(EncodeContext(c))
	if got != c {
		t.Fatalf("round trip = %+v, want %+v", got, c)
	}
	if DecodeContext(nil).Valid() || DecodeContext([]byte{1, 2, 3}).Valid() {
		t.Fatal("malformed input decoded to a valid context")
	}
	if (Context{}).Valid() {
		t.Fatal("zero context reported valid")
	}
}

// TestSamplerDeterminism: two tracers with the same seed and rate make
// identical head-sampling decisions; a different seed diverges.
func TestSamplerDeterminism(t *testing.T) {
	const n = 4096
	draw := func(seed uint64, rate float64) []bool {
		tr := NewTracer(Config{SampleRate: rate, Seed: seed})
		out := make([]bool, n)
		for i := range out {
			out[i] = tr.StartSampled("o") != nil
		}
		return out
	}
	a, b := draw(42, 0.25), draw(42, 0.25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed tracers diverged at draw %d", i)
		}
	}
	c := draw(7, 0.25)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical decision sequences")
	}

	kept := 0
	for _, k := range a {
		if k {
			kept++
		}
	}
	// 0.25 rate over 4096 draws: expect ~1024; allow a generous band.
	if kept < 800 || kept > 1250 {
		t.Fatalf("kept %d of %d at rate 0.25, outside plausible band", kept, n)
	}

	if tr := NewTracer(Config{SampleRate: 1}); tr.StartSampled("o") == nil {
		t.Fatal("rate 1 dropped a trace")
	}
	if tr := NewTracer(Config{SampleRate: 0}); tr.StartSampled("o") != nil {
		t.Fatal("rate 0 kept a trace")
	}
}

func TestRootKeptWhenSlowEvenAtRateZero(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0, SlowThreshold: time.Nanosecond})
	sp := tr.StartRoot("query")
	sp.SetAttrs(Str("metric", "latency"), Int("keys", 3))
	st := sp.Child("store.gather")
	time.Sleep(time.Millisecond)
	st.Finish()
	sp.Finish()

	stats := tr.Stats()
	if stats.Slow != 1 || stats.Kept != 1 || stats.Resident != 1 {
		t.Fatalf("stats = %+v, want slow=kept=resident=1", stats)
	}
	slow := tr.Slow()
	if len(slow) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(slow))
	}
	e := slow[0]
	if e.Name != "query" || e.Attrs["metric"] != "latency" || e.Attrs["keys"] != "3" {
		t.Fatalf("slow entry = %+v", e)
	}
	if len(e.Stages) != 1 || e.Stages[0].Name != "store.gather" || e.Stages[0].DurationMS <= 0 {
		t.Fatalf("slow stages = %+v", e.Stages)
	}

	// A fast root at rate 0 is discarded entirely.
	tr2 := NewTracer(Config{SampleRate: 0, SlowThreshold: time.Hour})
	tr2.StartRoot("fast").Finish()
	if st2 := tr2.Stats(); st2.Kept != 0 || st2.Resident != 0 || st2.Slow != 0 {
		t.Fatalf("fast unsampled root retained: %+v", st2)
	}
}

func TestRemoteStitching(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1})
	root := tr.StartSampled("observe")
	ctx := root.Context()
	root.Finish() // ingest root finishes before the consume side runs

	hdr := EncodeContext(ctx)
	remote := tr.StartRemote(DecodeContext(hdr), "mqlog.fetch")
	apply := remote.Child("dstore.apply")
	apply.Finish()
	remote.Finish()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1 stitched trace", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (root+fetch+apply)", len(spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["mqlog.fetch"].Parent != ctx.Span {
		t.Fatal("remote span not parented to the propagated context")
	}
	if byName["dstore.apply"].Parent != byName["mqlog.fetch"].ID {
		t.Fatal("child of remote span mis-parented")
	}
	if st := tr.Stats(); st.Stitched != 1 {
		t.Fatalf("stitched = %d, want 1", st.Stitched)
	}

	// Unknown trace: dropped and counted.
	if sp := tr.StartRemote(Context{Trace: 0x999, Span: 0x1}, "late"); sp != nil {
		t.Fatal("StartRemote attached to an unknown trace")
	}
	if st := tr.Stats(); st.DroppedLate != 1 {
		t.Fatalf("dropped_late = %d, want 1", st.DroppedLate)
	}
}

func TestRingEvictionRetiresTraceID(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Capacity: 2})
	first := tr.StartSampled("a")
	firstCtx := first.Context()
	first.Finish()
	for i := 0; i < 2; i++ {
		tr.StartSampled("b").Finish()
	}
	// first was evicted by the two later traces; stitching must fail.
	if sp := tr.StartRemote(firstCtx, "late"); sp != nil {
		t.Fatal("StartRemote attached to an evicted trace")
	}
	if st := tr.Stats(); st.Resident != 2 || st.DroppedLate != 1 {
		t.Fatalf("stats after eviction = %+v", st)
	}
}

func TestMaxSpansBound(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, MaxSpans: 4})
	root := tr.StartSampled("r")
	for i := 0; i < 10; i++ {
		root.Child("c").Finish()
	}
	root.Finish() // root itself is dropped too: 10 children beat it to the cap
	traces := tr.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 4 {
		t.Fatalf("spans retained = %d, want 4", len(traces[0].Spans))
	}
	if traces[0].Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", traces[0].Dropped)
	}
	if st := tr.Stats(); st.DroppedSpans != 7 {
		t.Fatalf("stats dropped_spans = %d, want 7", st.DroppedSpans)
	}
}

func TestSlowLogBounded(t *testing.T) {
	tr := NewTracer(Config{SlowThreshold: time.Nanosecond, SlowCapacity: 3})
	for i := 0; i < 5; i++ {
		sp := tr.StartRoot("q")
		sp.SetAttrs(Int("i", int64(i)))
		sp.Finish()
	}
	slow := tr.Slow()
	if len(slow) != 3 {
		t.Fatalf("slow log = %d entries, want 3", len(slow))
	}
	// Oldest-first: entries 2, 3, 4 survive.
	for i, e := range slow {
		if want := int64(i + 2); e.Attrs["i"] != jsonInt(want) {
			t.Fatalf("slow[%d].i = %q, want %d", i, e.Attrs["i"], want)
		}
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestWriteChromeSchema(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1})
	root := tr.StartRoot("query")
	root.SetAttrs(Str("backend", "store"))
	child := root.Child("store.gather")
	child.SetAttrs(Int("shard", 3))
	child.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *uint64           `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		Metadata *Stats `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 ||
			ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event fails chrome trace-event shape: %+v", ev)
		}
		if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
			t.Fatalf("event missing id args: %+v", ev)
		}
	}
	if doc.Metadata == nil || doc.Metadata.Kept != 1 {
		t.Fatalf("metadata = %+v", doc.Metadata)
	}
}

// TestConcurrentFinishDuringExport hammers span finishing, remote
// stitching and WriteChrome/Slow/Stats concurrently; run under -race
// it proves export never reads a trace buffer without its lock.
func TestConcurrentFinishDuringExport(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, SlowThreshold: time.Nanosecond, Capacity: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				root := tr.StartRoot("query")
				root.SetAttrs(Int("i", int64(i)))
				ctx := root.Context()
				c := root.Child("gather")
				c.Finish()
				root.Finish()
				if r := tr.StartRemote(ctx, "late"); r != nil {
					r.Finish()
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				sink.Reset()
				if err := tr.WriteChrome(&sink); err != nil {
					t.Errorf("WriteChrome: %v", err)
					return
				}
				tr.Slow()
				tr.Stats()
				tr.Traces()
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func BenchmarkStartSampledUnsampled(b *testing.B) {
	tr := NewTracer(Config{SampleRate: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := tr.StartSampled("observe"); sp != nil {
			sp.Finish()
		}
	}
}
