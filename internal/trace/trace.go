// Package trace is a zero-dependency request tracer for the analytics
// stack. It mirrors the telemetry package's wiring discipline — every
// layer accepts a *Tracer through a SetTracer hook, a nil *Tracer (and
// a nil *Span) is a no-op on every method — so tracing can be compiled
// in everywhere and cost nothing until a process opts in.
//
// Model. A trace is a tree of spans sharing one TraceID. Each span has
// its own SpanID, a parent SpanID (zero for the root), a name, a
// monotonic start timestamp and duration (time.Time's monotonic
// reading — wall-clock steps cannot reorder spans), and a small list
// of typed attributes. Spans are single-writer: the goroutine that
// started a span owns it until Finish, which hands the record to the
// trace's buffer under that buffer's lock.
//
// Sampling. Two knobs, two entry points:
//
//   - StartSampled (ingest path) is head sampling: it consults the
//     probabilistic sampler once and returns nil unless the trace is
//     kept, so the unsampled hot path never allocates.
//   - StartRoot (query path) always records while the request runs and
//     decides at Finish: the trace is kept if it was head-sampled OR
//     its duration crossed Config.SlowThreshold. Slow requests
//     additionally produce a slow-log entry summarising the request
//     attributes and per-stage (direct child) durations.
//
// The sampler is lock-cheap: one atomic counter hashed through
// splitmix64 against a precomputed threshold, deterministic for a
// fixed Config.Seed.
//
// Stitching. A sampled ingest trace stays "active" (addressable by
// TraceID) after its root finishes, so spans recorded on the far side
// of the mqlog — fetch, node apply, store observe — attach to the same
// trace via StartRemote even though they run seconds later on other
// goroutines. Eviction from the bounded ring is what finally retires a
// TraceID; late spans for an evicted trace are counted and dropped.
package trace

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace (a tree of spans). Zero is invalid.
type TraceID uint64

// SpanID identifies one span within a trace. Zero is invalid and
// doubles as "no parent" on root spans.
type SpanID uint64

// Context is the portable reference to a live span — what crosses
// layer boundaries (Observation/QueryRequest fields) and, encoded via
// EncodeContext, the mqlog record header that crosses the log itself.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context references a real trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// HeaderKey is the mqlog record-header key under which dstore.Router
// carries an encoded Context across the log.
const HeaderKey = "trace"

// ctxWireLen is the encoded size of a Context: two big-endian uint64s.
const ctxWireLen = 16

// EncodeContext encodes c into a fresh 16-byte slice (big-endian
// TraceID then SpanID) suitable for a mqlog record header value.
func EncodeContext(c Context) []byte {
	b := make([]byte, ctxWireLen)
	binary.BigEndian.PutUint64(b[0:8], uint64(c.Trace))
	binary.BigEndian.PutUint64(b[8:16], uint64(c.Span))
	return b
}

// DecodeContext decodes a header value written by EncodeContext. It
// returns a zero (invalid) Context for malformed input.
func DecodeContext(b []byte) Context {
	if len(b) != ctxWireLen {
		return Context{}
	}
	return Context{
		Trace: TraceID(binary.BigEndian.Uint64(b[0:8])),
		Span:  SpanID(binary.BigEndian.Uint64(b[8:16])),
	}
}

// Attr is one typed span attribute. Exactly one of the value fields is
// meaningful, selected by Kind.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	Bool bool
}

// AttrKind discriminates Attr's value fields.
type AttrKind uint8

const (
	KindString AttrKind = iota
	KindInt
	KindBool
)

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Kind: KindBool, Bool: v} }

// Config parameterises a Tracer. The zero value keeps nothing (rate 0,
// no slow threshold) but still costs ~nothing, matching the nil-tracer
// contract.
type Config struct {
	// SampleRate is the head-sampling probability in [0,1]. 0 keeps
	// nothing by probability (slow queries are still kept); 1 keeps
	// everything.
	SampleRate float64
	// SlowThreshold marks a root span slow when its duration meets or
	// exceeds it; slow roots are always kept and also logged to the
	// slow-query log. 0 disables the slow path.
	SlowThreshold time.Duration
	// Capacity bounds the ring of finished traces (default 256).
	Capacity int
	// SlowCapacity bounds the slow-query log (default 128).
	SlowCapacity int
	// Seed seeds the deterministic sampler (0 means 0: two tracers
	// with equal Seed and SampleRate sample identically).
	Seed uint64
	// MaxSpans bounds the spans recorded per trace (default 512);
	// spans beyond the cap are counted and dropped.
	MaxSpans int
}

// Stats is a point-in-time summary of tracer activity, served by
// /debug/traces alongside the export and useful in tests.
type Stats struct {
	Started      uint64 `json:"started"`       // root spans opened
	Sampled      uint64 `json:"sampled"`       // head-sampling keeps
	Kept         uint64 `json:"kept"`          // traces retained in the ring (total, not resident)
	Slow         uint64 `json:"slow"`          // roots over SlowThreshold
	Stitched     uint64 `json:"stitched"`      // remote spans attached via StartRemote
	DroppedLate  uint64 `json:"dropped_late"`  // remote spans for evicted/unknown traces
	DroppedSpans uint64 `json:"dropped_spans"` // spans beyond MaxSpans per trace
	Resident     int    `json:"resident"`      // traces currently in the ring
}

// Tracer samples, records and exports traces. All methods are safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Tracer struct {
	cfg       Config
	threshold uint64 // sampler keep threshold over splitmix64 output
	ctr       atomic.Uint64

	started      atomic.Uint64
	sampledN     atomic.Uint64
	keptN        atomic.Uint64
	slowN        atomic.Uint64
	stitched     atomic.Uint64
	droppedLate  atomic.Uint64
	droppedSpans atomic.Uint64

	epoch time.Time // export time base; monotonic via time.Since

	mu     sync.Mutex
	ring   []*traceBuf // bounded FIFO of kept traces
	head   int         // next slot to overwrite once full
	active map[TraceID]*traceBuf
	slow   []SlowEntry // bounded FIFO of slow-query entries
	slowAt int
	tid    uint64 // per-trace export lane counter
}

// traceBuf accumulates the finished spans of one trace. Spans append
// under mu; sampled and id are immutable after creation.
type traceBuf struct {
	id      TraceID
	sampled bool   // head-sampled (kept regardless of duration)
	lane    uint64 // stable export "tid"

	mu      sync.Mutex
	spans   []spanRec
	dropped int
	kept    bool // resident in the ring (or pending root decision)
}

// spanRec is the immutable record of a finished span.
type spanRec struct {
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// Span is a live, unfinished span. The starting goroutine owns it —
// SetAttrs and Child are not synchronised — until Finish publishes it.
// All methods are no-ops on a nil receiver.
type Span struct {
	tr     *Tracer
	buf    *traceBuf
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
	root   bool
	done   bool
}

// NewTracer builds a Tracer from cfg, applying defaults for zero
// capacities.
func NewTracer(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = 128
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 512
	}
	t := &Tracer{
		cfg:    cfg,
		epoch:  time.Now(),
		active: make(map[TraceID]*traceBuf),
	}
	switch {
	case cfg.SampleRate >= 1:
		t.threshold = ^uint64(0)
	case cfg.SampleRate > 0:
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return t
}

// splitmix64 is the finalizer from Steele et al.'s SplittableRandom —
// a strong 64-bit mixer, cheap enough for the ingest hot path.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sample draws the next deterministic sampling decision and a fresh
// nonzero id usable as TraceID/SpanID material.
func (t *Tracer) sample() (keep bool, id uint64) {
	n := t.ctr.Add(1)
	h := splitmix64(n + t.cfg.Seed)
	// Reuse the hash as the ID source: mix once more so the keep
	// decision and the ID are decorrelated, and force nonzero.
	id = splitmix64(h) | 1
	if t.threshold == ^uint64(0) {
		return true, id
	}
	return h < t.threshold, id
}

// nextSpanID returns a fresh nonzero span id.
func (t *Tracer) nextSpanID() SpanID {
	return SpanID(splitmix64(t.ctr.Add(1)+t.cfg.Seed) | 1)
}

// newBuf registers a new active trace.
func (t *Tracer) newBuf(id TraceID, sampled bool) *traceBuf {
	b := &traceBuf{id: id, sampled: sampled, kept: true}
	t.mu.Lock()
	t.tid++
	b.lane = t.tid
	t.active[id] = b
	t.mu.Unlock()
	return b
}

// StartRoot opens the root span of a new trace and always records it;
// whether the trace is kept is decided at Finish (head-sampled or
// slow). Use on the query path, where the request is already heavy
// enough to afford a span. Returns nil on a nil tracer.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	keep, id := t.sample()
	if keep {
		t.sampledN.Add(1)
	}
	b := t.newBuf(TraceID(id), keep)
	return &Span{
		tr:    t,
		buf:   b,
		id:    SpanID(splitmix64(id) | 1),
		name:  name,
		start: time.Now(),
		root:  true,
	}
}

// StartSampled opens the root span of a new trace only if head
// sampling keeps it, returning nil otherwise. Use on the ingest path:
// the unsampled case is one atomic add and one multiply, no
// allocation. Returns nil on a nil tracer.
func (t *Tracer) StartSampled(name string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	keep, id := t.sample()
	if !keep {
		return nil
	}
	t.sampledN.Add(1)
	b := t.newBuf(TraceID(id), true)
	return &Span{
		tr:    t,
		buf:   b,
		id:    SpanID(splitmix64(id) | 1),
		name:  name,
		start: time.Now(),
		root:  true,
	}
}

// StartRemote attaches a new span to an existing trace referenced by
// ctx — the consume-side half of cross-log stitching. The span's
// parent is ctx.Span. Returns nil if the tracer is nil, ctx is
// invalid, or the trace has already been evicted (counted in
// Stats.DroppedLate).
func (t *Tracer) StartRemote(ctx Context, name string) *Span {
	if t == nil || !ctx.Valid() {
		return nil
	}
	t.mu.Lock()
	b := t.active[ctx.Trace]
	t.mu.Unlock()
	if b == nil {
		t.droppedLate.Add(1)
		return nil
	}
	t.stitched.Add(1)
	return &Span{
		tr:     t,
		buf:    b,
		id:     t.nextSpanID(),
		parent: ctx.Span,
		name:   name,
		start:  time.Now(),
	}
}

// AdoptRemote attaches a root span to a trace that began in ANOTHER
// process — the serving edge's half of cross-process stitching. An HTTP
// client propagates its trace context in a request header; the daemon
// adopts it here, and every layer underneath then stitches onto the
// same trace via the usual StartRemote path. Unlike StartRemote, an
// unknown TraceID registers a fresh active trace under the remote id:
// the remote side only propagates contexts it sampled, so the adopted
// trace is head-kept. The first adoption returns a root span (its
// Finish applies the retention decision and can land in the slow-query
// log); later adoptions of an already-active trace attach plain spans,
// exactly as StartRemote would. Returns nil if the tracer is nil or
// ctx is invalid.
func (t *Tracer) AdoptRemote(ctx Context, name string) *Span {
	if t == nil || !ctx.Valid() {
		return nil
	}
	t.mu.Lock()
	b := t.active[ctx.Trace]
	adopted := b == nil
	if adopted {
		b = &traceBuf{id: ctx.Trace, sampled: true, kept: true}
		t.tid++
		b.lane = t.tid
		t.active[ctx.Trace] = b
	}
	t.mu.Unlock()
	if adopted {
		t.started.Add(1)
		t.sampledN.Add(1)
	} else {
		t.stitched.Add(1)
	}
	return &Span{
		tr:     t,
		buf:    b,
		id:     t.nextSpanID(),
		parent: ctx.Span,
		name:   name,
		start:  time.Now(),
		root:   adopted,
	}
}

// Child opens a sub-span of s. Returns nil on a nil span, so deep call
// chains never need nil checks of their own.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		buf:    s.buf,
		id:     s.tr.nextSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// Context returns the portable reference to s, for propagation across
// a process or log boundary. Zero (invalid) on a nil span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.buf.id, Span: s.id}
}

// SetAttrs appends attributes to s. Call only from the goroutine that
// owns the span (before Finish).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Finish stamps the span's duration and publishes it into its trace.
// Finishing the root also decides retention: keep if head-sampled or
// over the slow threshold, and emit a slow-log entry for the latter.
// Finish is idempotent (second and later calls are no-ops), so a
// deferred Finish can back an explicit one on error-free paths.
func (s *Span) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	dur := time.Since(s.start)
	t := s.tr
	b := s.buf
	rec := spanRec{
		id:     s.id,
		parent: s.parent,
		name:   s.name,
		start:  s.start,
		dur:    dur,
		attrs:  s.attrs,
	}
	b.mu.Lock()
	if len(b.spans) < t.cfg.MaxSpans {
		b.spans = append(b.spans, rec)
	} else {
		b.dropped++
		t.droppedSpans.Add(1)
	}
	b.mu.Unlock()
	if s.root {
		t.finishRoot(b, rec)
	}
}

// finishRoot applies the tail retention decision for b's root span.
func (t *Tracer) finishRoot(b *traceBuf, root spanRec) {
	slow := t.cfg.SlowThreshold > 0 && root.dur >= t.cfg.SlowThreshold
	keep := b.sampled || slow
	if slow {
		t.slowN.Add(1)
	}
	if keep {
		t.keptN.Add(1)
	}

	var entry SlowEntry
	if slow {
		entry = t.buildSlowEntry(b, root)
	}

	t.mu.Lock()
	if keep {
		t.pushLocked(b)
	} else {
		delete(t.active, b.id)
	}
	if slow {
		t.pushSlowLocked(entry)
	}
	t.mu.Unlock()
}

// pushLocked inserts b into the bounded ring, evicting (and retiring
// from the active map) the oldest trace when full. Caller holds t.mu.
func (t *Tracer) pushLocked(b *traceBuf) {
	if len(t.ring) < t.cfg.Capacity {
		t.ring = append(t.ring, b)
		return
	}
	old := t.ring[t.head]
	delete(t.active, old.id)
	t.ring[t.head] = b
	t.head = (t.head + 1) % t.cfg.Capacity
}

// pushSlowLocked appends to the bounded slow log. Caller holds t.mu.
func (t *Tracer) pushSlowLocked(e SlowEntry) {
	if len(t.slow) < t.cfg.SlowCapacity {
		t.slow = append(t.slow, e)
		return
	}
	t.slow[t.slowAt] = e
	t.slowAt = (t.slowAt + 1) % t.cfg.SlowCapacity
}

// Stats returns a point-in-time activity summary. Zero value on a nil
// tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	resident := len(t.ring)
	t.mu.Unlock()
	return Stats{
		Started:      t.started.Load(),
		Sampled:      t.sampledN.Load(),
		Kept:         t.keptN.Load(),
		Slow:         t.slowN.Load(),
		Stitched:     t.stitched.Load(),
		DroppedLate:  t.droppedLate.Load(),
		DroppedSpans: t.droppedSpans.Load(),
		Resident:     resident,
	}
}
