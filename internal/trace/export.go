// export.go renders the tracer's retained state for humans and tools:
// the Chrome trace-event JSON consumed by chrome://tracing and
// Perfetto (served at /debug/traces), the slow-query log (served at
// /debug/slow), and structured snapshots for tests.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// SlowStage is one per-stage duration inside a slow-query entry — a
// direct child of the slow root span.
type SlowStage struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// SlowEntry is one slow-query log record: the request summary (the
// root span's attributes) plus per-stage durations.
type SlowEntry struct {
	Time       time.Time         `json:"time"`
	TraceID    string            `json:"trace_id"`
	Name       string            `json:"name"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Stages     []SlowStage       `json:"stages,omitempty"`
}

// buildSlowEntry summarises b's root span and its direct children.
// Stages reflect the spans recorded before the root finished; remote
// spans stitched in later appear in the exported trace but not here.
func (t *Tracer) buildSlowEntry(b *traceBuf, root spanRec) SlowEntry {
	e := SlowEntry{
		Time:       root.start,
		TraceID:    idString(uint64(b.id)),
		Name:       root.name,
		DurationMS: durMS(root.dur),
	}
	if len(root.attrs) > 0 {
		e.Attrs = make(map[string]string, len(root.attrs))
		for _, a := range root.attrs {
			e.Attrs[a.Key] = attrString(a)
		}
	}
	b.mu.Lock()
	for _, s := range b.spans {
		if s.parent == root.id {
			e.Stages = append(e.Stages, SlowStage{Name: s.name, DurationMS: durMS(s.dur)})
		}
	}
	b.mu.Unlock()
	sort.SliceStable(e.Stages, func(i, j int) bool { return e.Stages[i].Name < e.Stages[j].Name })
	return e
}

// Slow returns the slow-query log, oldest first. Nil on a nil tracer.
func (t *Tracer) Slow() []SlowEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SlowEntry, 0, len(t.slow))
	out = append(out, t.slow[t.slowAt:]...)
	out = append(out, t.slow[:t.slowAt]...)
	return out
}

// SpanSnapshot is one finished span in a structured trace snapshot.
type SpanSnapshot struct {
	ID       SpanID
	Parent   SpanID
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// TraceSnapshot is one retained trace: its spans in finish order.
type TraceSnapshot struct {
	ID      TraceID
	Sampled bool
	Dropped int
	Spans   []SpanSnapshot
}

// Traces snapshots every trace currently retained in the ring, oldest
// first. Nil on a nil tracer.
func (t *Tracer) Traces() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := make([]*traceBuf, 0, len(t.ring))
	bufs = append(bufs, t.ring[t.head:]...)
	bufs = append(bufs, t.ring[:t.head]...)
	t.mu.Unlock()

	out := make([]TraceSnapshot, 0, len(bufs))
	for _, b := range bufs {
		b.mu.Lock()
		ts := TraceSnapshot{
			ID:      b.id,
			Sampled: b.sampled,
			Dropped: b.dropped,
			Spans:   make([]SpanSnapshot, 0, len(b.spans)),
		}
		for _, s := range b.spans {
			ts.Spans = append(ts.Spans, SpanSnapshot{
				ID:       s.id,
				Parent:   s.parent,
				Name:     s.name,
				Start:    s.start,
				Duration: s.dur,
				Attrs:    append([]Attr(nil), s.attrs...),
			})
		}
		b.mu.Unlock()
		out = append(out, ts)
	}
	return out
}

// chromeEvent is one Chrome trace-event object. We emit only complete
// events (ph "X"): name, microsecond timestamp + duration, and a
// pid/tid lane per trace so chrome://tracing stacks each trace's spans
// together.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace-event format.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Meta        *Stats        `json:"metadata,omitempty"`
}

// WriteChrome writes every retained trace as Chrome trace-event JSON.
// Timestamps are microseconds since the tracer's epoch, taken from the
// spans' monotonic clock readings. Safe to call while spans are still
// finishing; each trace's spans are snapshotted under its own lock. A
// nil tracer writes an empty document.
func (t *Tracer) WriteChrome(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}}
	if t != nil {
		st := t.Stats()
		doc.Meta = &st
		for _, ts := range t.Traces() {
			lane := laneOf(t, ts.ID)
			for _, s := range ts.Spans {
				ev := chromeEvent{
					Name: s.Name,
					Ph:   "X",
					Ts:   float64(s.Start.Sub(t.epoch)) / float64(time.Microsecond),
					Dur:  float64(s.Duration) / float64(time.Microsecond),
					Pid:  1,
					Tid:  lane,
					Args: map[string]string{
						"trace_id": idString(uint64(ts.ID)),
						"span_id":  idString(uint64(s.ID)),
					},
				}
				if s.Parent != 0 {
					ev.Args["parent_id"] = idString(uint64(s.Parent))
				}
				for _, a := range s.Attrs {
					ev.Args[a.Key] = attrString(a)
				}
				doc.TraceEvents = append(doc.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// laneOf returns the trace's stable export lane (its tid).
func laneOf(t *Tracer, id TraceID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.active[id]; ok {
		return b.lane
	}
	return 0
}

// idString renders a trace or span id as fixed-width hex.
func idString(v uint64) string { return fmt.Sprintf("%016x", v) }

// attrString renders an attribute value for JSON maps.
func attrString(a Attr) string {
	switch a.Kind {
	case KindInt:
		return strconv.FormatInt(a.Int, 10)
	case KindBool:
		return strconv.FormatBool(a.Bool)
	default:
		return a.Str
	}
}

// durMS converts a duration to fractional milliseconds.
func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
