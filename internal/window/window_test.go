package window

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestDGIMValidation(t *testing.T) {
	if _, err := NewDGIM(0, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewDGIM(100, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewDGIM(100, 1); err == nil {
		t.Fatal("eps=1 accepted")
	}
}

func TestDGIMErrorBound(t *testing.T) {
	const n = 10000
	const eps = 0.1
	d, _ := NewDGIM(n, eps)
	exact := NewExactWindowCounter(n)
	rng := workload.NewRNG(1)
	for i := 0; i < 100000; i++ {
		bit := rng.Float64() < 0.3
		d.Update(bit)
		exact.Update(bit)
		if i%777 == 776 {
			est := float64(d.Estimate())
			truth := float64(exact.Count())
			if truth > 0 && math.Abs(est-truth) > eps*truth+1 {
				t.Fatalf("tick %d: est %v truth %v exceeds eps bound", i, est, truth)
			}
		}
	}
}

func TestDGIMBurstyStream(t *testing.T) {
	// Alternating dense and empty phases stress bucket expiry.
	const n = 1000
	d, _ := NewDGIM(n, 0.2)
	exact := NewExactWindowCounter(n)
	for phase := 0; phase < 20; phase++ {
		dense := phase%2 == 0
		for i := 0; i < 700; i++ {
			d.Update(dense)
			exact.Update(dense)
		}
		est := float64(d.Estimate())
		truth := float64(exact.Count())
		if math.Abs(est-truth) > 0.2*truth+2 {
			t.Fatalf("phase %d: est %v truth %v", phase, est, truth)
		}
	}
}

func TestDGIMAllZeros(t *testing.T) {
	d, _ := NewDGIM(100, 0.1)
	for i := 0; i < 1000; i++ {
		d.Update(false)
	}
	if d.Estimate() != 0 {
		t.Fatalf("all-zero estimate %d", d.Estimate())
	}
	if d.Buckets() != 0 {
		t.Fatalf("buckets retained for zeros: %d", d.Buckets())
	}
}

func TestDGIMSpaceLogarithmic(t *testing.T) {
	const n = 1 << 20
	d, _ := NewDGIM(n, 0.1)
	for i := 0; i < 2*n; i++ {
		d.Update(true)
	}
	// Buckets per size = 7; sizes up to log2(n)=20 -> ~147 max.
	if d.Buckets() > 200 {
		t.Fatalf("DGIM holds %d buckets for all-ones window of %d", d.Buckets(), n)
	}
}

func TestExactWindowCounter(t *testing.T) {
	e := NewExactWindowCounter(5)
	for i := 0; i < 5; i++ {
		e.Update(true)
	}
	if e.Count() != 5 {
		t.Fatalf("count %d", e.Count())
	}
	for i := 0; i < 3; i++ {
		e.Update(false)
	}
	if e.Count() != 2 {
		t.Fatalf("after eviction count %d", e.Count())
	}
}

func TestSignificantOnesValidation(t *testing.T) {
	if _, err := NewSignificantOnes(0, 0.1, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewSignificantOnes(100, 0, 0.1); err == nil {
		t.Fatal("theta=0 accepted")
	}
	if _, err := NewSignificantOnes(100, 0.1, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestSignificantOnesGuaranteeWhenSignificant(t *testing.T) {
	const n = 10000
	const theta = 0.1
	const eps = 0.1
	s, _ := NewSignificantOnes(n, theta, eps)
	exact := NewExactWindowCounter(n)
	rng := workload.NewRNG(2)
	for i := 0; i < 100000; i++ {
		// Ones density 0.4 >> theta: the guarantee must be in force.
		bit := rng.Float64() < 0.4
		s.Update(bit)
		exact.Update(bit)
		if i > n && i%999 == 0 {
			m := float64(exact.Count())
			if m < theta*n {
				continue
			}
			est := float64(s.Estimate())
			if math.Abs(est-m) > eps*m+float64(2*s.lambda) {
				t.Fatalf("tick %d: est %v truth %v violates eps*m", i, est, m)
			}
		}
	}
}

func TestSignificantOnesSmallerThanDGIM(t *testing.T) {
	// The point of the relaxation: fewer buckets than DGIM at equal eps.
	const n = 1 << 18
	s, _ := NewSignificantOnes(n, 0.2, 0.1)
	d, _ := NewDGIM(n, 0.1)
	rng := workload.NewRNG(3)
	for i := 0; i < 2*n; i++ {
		bit := rng.Float64() < 0.5
		s.Update(bit)
		d.Update(bit)
	}
	if s.Groups() >= d.Buckets() {
		t.Fatalf("significant-ones %d groups not below DGIM %d buckets", s.Groups(), d.Buckets())
	}
}

func TestEHSumTracksWindowSum(t *testing.T) {
	const n = 2000
	e, err := NewEHSum(n, 0.15, 100)
	if err != nil {
		t.Fatal(err)
	}
	ring := make([]uint64, n)
	var exact uint64
	pos := 0
	rng := workload.NewRNG(4)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(20))
		exact -= ring[pos]
		ring[pos] = v
		exact += v
		pos = (pos + 1) % n
		e.Update(v)
		if i > n && i%501 == 0 {
			est := float64(e.Estimate())
			truth := float64(exact)
			if truth > 0 && math.Abs(est-truth) > 0.15*truth+20 {
				t.Fatalf("tick %d: sum est %v truth %v", i, est, truth)
			}
		}
	}
}

func TestSlidingStatsExact(t *testing.T) {
	s, _ := NewSlidingStats(4)
	for _, v := range []float64{1, 2, 3, 4} {
		s.Update(v)
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Variance() != 1.25 {
		t.Fatalf("variance %v", s.Variance())
	}
	// Slide: window becomes {2,3,4,5}.
	s.Update(5)
	if s.Mean() != 3.5 {
		t.Fatalf("slid mean %v", s.Mean())
	}
	if !s.Full() || s.Len() != 4 {
		t.Fatal("window fill state wrong")
	}
}

func TestSlidingStatsNumericalStability(t *testing.T) {
	s, _ := NewSlidingStats(100)
	// Large offset + small signal is the classic catastrophic-cancellation
	// trap for running-sum variance.
	base := 1e9
	rng := workload.NewRNG(5)
	for i := 0; i < 100000; i++ {
		s.Update(base + rng.Float64())
	}
	v := s.Variance()
	// Uniform(0,1) variance = 1/12 ~ 0.083.
	if v < 0.05 || v > 0.12 {
		t.Fatalf("variance %v drifted (want ~0.083)", v)
	}
}

func TestSlidingStatsEmpty(t *testing.T) {
	s, _ := NewSlidingStats(10)
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty stats nonzero")
	}
}

func BenchmarkDGIMUpdate(b *testing.B) {
	d, _ := NewDGIM(1<<20, 0.01)
	for i := 0; i < b.N; i++ {
		d.Update(i%3 == 0)
	}
}

func BenchmarkSignificantOnesUpdate(b *testing.B) {
	s, _ := NewSignificantOnes(1<<20, 0.1, 0.01)
	for i := 0; i < b.N; i++ {
		s.Update(i%3 == 0)
	}
}

func BenchmarkSlidingStats(b *testing.B) {
	s, _ := NewSlidingStats(1000)
	for i := 0; i < b.N; i++ {
		s.Update(float64(i % 100))
	}
}
