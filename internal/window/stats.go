package window

import (
	"math"

	"repro/internal/core"
)

// EHSum extends the DGIM exponential histogram from bits to bounded
// non-negative integer sums (the standard extension in the DGIM paper):
// an arriving value v is treated as v ones arriving together. Relative
// error for window sums follows the same eps bound.
type EHSum struct {
	inner *DGIM
	maxV  uint64
}

// NewEHSum returns a sliding-window sum estimator for values in [0, maxV]
// over windows of n ticks with relative error eps.
func NewEHSum(n uint64, eps float64, maxV uint64) (*EHSum, error) {
	if maxV == 0 {
		return nil, core.Errf("EHSum", "maxV", "must be positive")
	}
	inner, err := NewDGIM(n, eps)
	if err != nil {
		return nil, err
	}
	return &EHSum{inner: inner, maxV: maxV}, nil
}

// Update advances one tick with value v (clamped to maxV). The tick
// consumes one window slot regardless of v; the v "ones" share the
// arrival timestamp.
func (e *EHSum) Update(v uint64) {
	if v > e.maxV {
		v = e.maxV
	}
	if v == 0 {
		e.inner.Update(false)
		return
	}
	// First unit advances time; the rest land on the same tick by
	// replaying Update with a rolled-back clock.
	e.inner.Update(true)
	for i := uint64(1); i < v; i++ {
		e.inner.now-- // same-timestamp insert
		e.inner.Update(true)
	}
}

// Estimate returns the estimated window sum.
func (e *EHSum) Estimate() uint64 { return e.inner.Estimate() }

// Bytes approximates the footprint.
func (e *EHSum) Bytes() int { return e.inner.Bytes() + 8 }

// SlidingStats maintains exact mean and variance over a sliding window of
// fixed size using a ring buffer and running sums — the "maintaining
// statistics like variance" problem Section 2 lists.
//
// The sums are kept on offset-shifted values (offset = first observed
// sample, re-centered on periodic recomputation), which avoids the
// catastrophic cancellation of the naive sum-of-squares formula when the
// signal rides on a large level (e.g. microvolt noise on a gigahertz
// counter).
type SlidingStats struct {
	vals       []float64
	pos        int
	filled     int
	offset     float64
	hasOffset  bool
	sum        float64 // sum of (v - offset)
	sumSq      float64 // sum of (v - offset)^2
	sinceRecmp int
}

// NewSlidingStats returns a window-statistics tracker over n samples.
func NewSlidingStats(n int) (*SlidingStats, error) {
	if n <= 0 {
		return nil, core.Errf("SlidingStats", "n", "%d must be positive", n)
	}
	return &SlidingStats{vals: make([]float64, n)}, nil
}

// Update pushes one sample, evicting the oldest when full.
func (s *SlidingStats) Update(v float64) {
	if !s.hasOffset {
		s.offset = v
		s.hasOffset = true
	}
	if s.filled == len(s.vals) {
		old := s.vals[s.pos] - s.offset
		s.sum -= old
		s.sumSq -= old * old
	} else {
		s.filled++
	}
	s.vals[s.pos] = v
	d := v - s.offset
	s.sum += d
	s.sumSq += d * d
	s.pos = (s.pos + 1) % len(s.vals)

	// Re-center the offset periodically so a drifting level does not
	// slowly reintroduce cancellation.
	s.sinceRecmp++
	if s.sinceRecmp >= 4*len(s.vals) {
		s.recompute()
	}
}

func (s *SlidingStats) recompute() {
	s.offset = s.Mean()
	s.sum, s.sumSq = 0, 0
	for i := 0; i < s.filled; i++ {
		d := s.vals[i] - s.offset
		s.sum += d
		s.sumSq += d * d
	}
	s.sinceRecmp = 0
}

// Mean returns the window mean (0 when empty).
func (s *SlidingStats) Mean() float64 {
	if s.filled == 0 {
		return 0
	}
	return s.offset + s.sum/float64(s.filled)
}

// Variance returns the population variance of the window (0 when empty).
func (s *SlidingStats) Variance() float64 {
	if s.filled == 0 {
		return 0
	}
	mShift := s.sum / float64(s.filled)
	v := s.sumSq/float64(s.filled) - mShift*mShift
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the window standard deviation.
func (s *SlidingStats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Len returns the number of samples currently in the window.
func (s *SlidingStats) Len() int { return s.filled }

// Full reports whether the window has reached capacity.
func (s *SlidingStats) Full() bool { return s.filled == len(s.vals) }
