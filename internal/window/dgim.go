// Package window implements sliding-window counting — the last two rows of
// the tutorial's Table 1:
//
//   - Basic Counting (Datar–Gionis–Indyk–Motwani exponential histograms):
//     estimate the number of 1-bits in the last n ticks within relative
//     error eps using O((1/eps) log^2 n) bits.
//   - Significant One Counting (Lee–Ting): the relaxation that only
//     guarantees eps*m error when the window is at least theta-full of
//     ones, buying a smaller summary — the paper's traffic-accounting
//     application.
//
// The package also extends the exponential-histogram technique to sums and
// to mean/variance over sliding windows, the "maintaining statistics"
// problems Section 2 lists under sliding windows.
package window

import (
	"repro/internal/core"
)

// DGIM maintains an exponential histogram over the last n ticks of a 0/1
// stream. Buckets hold exponentially growing counts of ones; at most
// ceil(1/eps)/2+2 buckets of each size are kept, so the oldest (half
// counted) bucket bounds the relative error by eps.
type DGIM struct {
	window  uint64
	maxSame int // buckets allowed per size before merging: ceil(1/(2eps))+2
	now     uint64
	buckets []dgimBucket // newest first
	ones    uint64       // total ones ever seen (diagnostics)
}

type dgimBucket struct {
	ts   uint64 // timestamp of the most recent 1 in the bucket
	size uint64 // number of ones (power of two)
}

// NewDGIM returns an exponential histogram for windows of n ticks with
// relative error at most eps.
func NewDGIM(n uint64, eps float64) (*DGIM, error) {
	if n == 0 {
		return nil, core.Errf("DGIM", "n", "must be positive")
	}
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("DGIM", "eps", "%v not in (0,1)", eps)
	}
	maxSame := int(1/(2*eps)) + 2
	return &DGIM{window: n, maxSame: maxSame}, nil
}

// Update advances the window one tick, recording whether the bit was 1.
func (d *DGIM) Update(bit bool) {
	d.now++
	// Expire buckets whose timestamp left the window.
	for len(d.buckets) > 0 {
		oldest := d.buckets[len(d.buckets)-1]
		if oldest.ts+d.window <= d.now {
			d.buckets = d.buckets[:len(d.buckets)-1]
		} else {
			break
		}
	}
	if !bit {
		return
	}
	d.ones++
	// Prepend a size-1 bucket, then cascade merges.
	d.buckets = append([]dgimBucket{{ts: d.now, size: 1}}, d.buckets...)
	size := uint64(1)
	for {
		count := 0
		lastIdx := -1
		secondLastIdx := -1
		for i, b := range d.buckets {
			if b.size == size {
				count++
				secondLastIdx = lastIdx
				lastIdx = i
			}
		}
		if count <= d.maxSame {
			break
		}
		// Merge the two oldest buckets of this size (they are the two with
		// the largest indexes, i.e. lastIdx and secondLastIdx).
		merged := dgimBucket{ts: d.buckets[secondLastIdx].ts, size: size * 2}
		d.buckets[secondLastIdx] = merged
		d.buckets = append(d.buckets[:lastIdx], d.buckets[lastIdx+1:]...)
		size *= 2
	}
}

// Estimate returns the estimated count of ones in the current window:
// the full sizes of all but the oldest bucket, plus half the oldest.
func (d *DGIM) Estimate() uint64 {
	if len(d.buckets) == 0 {
		return 0
	}
	var total uint64
	for _, b := range d.buckets {
		total += b.size
	}
	oldest := d.buckets[len(d.buckets)-1].size
	return total - oldest + (oldest+1)/2
}

// Buckets returns the current bucket count (the space bound experiments
// track).
func (d *DGIM) Buckets() int { return len(d.buckets) }

// Bytes approximates the footprint.
func (d *DGIM) Bytes() int { return len(d.buckets)*16 + 40 }

// Now returns the current tick.
func (d *DGIM) Now() uint64 { return d.now }

// ExactWindowCounter is the exact baseline: a ring buffer of the last n
// bits. Linear space, zero error.
type ExactWindowCounter struct {
	bits  []bool
	pos   int
	count uint64
	full  bool
}

// NewExactWindowCounter returns an exact 1-bit counter over n ticks.
func NewExactWindowCounter(n int) *ExactWindowCounter {
	return &ExactWindowCounter{bits: make([]bool, n)}
}

// Update advances one tick with the given bit.
func (e *ExactWindowCounter) Update(bit bool) {
	if e.bits[e.pos] {
		e.count--
	}
	e.bits[e.pos] = bit
	if bit {
		e.count++
	}
	e.pos++
	if e.pos == len(e.bits) {
		e.pos = 0
		e.full = true
	}
}

// Count returns the exact number of ones in the window.
func (e *ExactWindowCounter) Count() uint64 { return e.count }

// Bytes returns the ring footprint.
func (e *ExactWindowCounter) Bytes() int { return len(e.bits) + 24 }
