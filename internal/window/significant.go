package window

import (
	"repro/internal/core"
)

// SignificantOnes implements Lee–Ting significant-one counting: estimate
// the number m of 1-bits in a sliding window of n ticks such that the
// error is at most eps*m whenever m >= theta*n ("maintaining significant
// stream statistics over sliding windows", the survey's traffic-accounting
// row). Below the significance threshold the answer may be arbitrary,
// which is exactly what buys the space saving over DGIM: only
// O((1/eps) log(1/theta)) buckets are needed instead of O((1/eps) log(eps n)).
//
// The implementation tracks ones in coarse lambda-sized groups
// (lambda = theta*eps*n/2): groups are exact counts of lambda ones each, so
// at most 2/(theta*eps) groups cover a significant window, and expiry
// granularity — the only error source — is one group.
type SignificantOnes struct {
	window uint64
	theta  float64
	eps    float64
	lambda uint64 // ones per group
	now    uint64
	groups []soGroup // newest first
	cur    uint64    // ones accumulated toward the newest (open) group
	curTS  uint64    // timestamp of the first 1 in the open group
}

type soGroup struct {
	start uint64 // timestamp of the group's first 1
	end   uint64 // timestamp of the group's last 1
}

// NewSignificantOnes returns a Lee–Ting counter for windows of n ticks,
// significance threshold theta, and relative error eps.
func NewSignificantOnes(n uint64, theta, eps float64) (*SignificantOnes, error) {
	if n == 0 {
		return nil, core.Errf("SignificantOnes", "n", "must be positive")
	}
	if theta <= 0 || theta >= 1 {
		return nil, core.Errf("SignificantOnes", "theta", "%v not in (0,1)", theta)
	}
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("SignificantOnes", "eps", "%v not in (0,1)", eps)
	}
	lambda := uint64(theta * eps * float64(n) / 2)
	if lambda == 0 {
		lambda = 1
	}
	return &SignificantOnes{window: n, theta: theta, eps: eps, lambda: lambda}, nil
}

// Update advances one tick with the given bit.
func (s *SignificantOnes) Update(bit bool) {
	s.now++
	// Expire groups that ended before the window.
	for len(s.groups) > 0 {
		oldest := s.groups[len(s.groups)-1]
		if oldest.end+s.window <= s.now {
			s.groups = s.groups[:len(s.groups)-1]
		} else {
			break
		}
	}
	if !bit {
		return
	}
	if s.cur == 0 {
		s.curTS = s.now
	}
	s.cur++
	if s.cur == s.lambda {
		s.groups = append([]soGroup{{start: s.curTS, end: s.now}}, s.groups...)
		s.cur = 0
	}
}

// Estimate returns the estimated number of ones in the window. The
// guarantee |est - m| <= eps*m holds whenever m >= theta*n.
func (s *SignificantOnes) Estimate() uint64 {
	est := s.cur // open group is exact
	for i, g := range s.groups {
		if i == len(s.groups)-1 && g.start+s.window <= s.now {
			// Oldest group straddles the window edge: count half.
			est += (s.lambda + 1) / 2
		} else {
			est += s.lambda
		}
	}
	return est
}

// Groups returns the number of closed groups retained.
func (s *SignificantOnes) Groups() int { return len(s.groups) }

// Bytes approximates the footprint.
func (s *SignificantOnes) Bytes() int { return len(s.groups)*16 + 56 }

// SignificanceThreshold returns theta*n, the ones-count above which the
// error guarantee is in force.
func (s *SignificantOnes) SignificanceThreshold() uint64 {
	return uint64(s.theta * float64(s.window))
}
