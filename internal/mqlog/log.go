// Package mqlog is an in-process, Kafka-like partitioned message log — the
// broker substrate the tutorial's Section 3 platforms assume: Samza reads
// and writes all streams through Kafka, Pulsar spills to Kafka under
// backpressure, and the Lambda Architecture's input dispatch is typically
// a log.
//
// It provides topics with a fixed number of partitions, append-only
// segments with monotonically increasing offsets, key-based partitioning,
// consumer groups with offset tracking and rebalancing, and size-based
// retention — the semantic core of the real system, minus the network and
// disk, which the experiments do not need (see DESIGN.md substitutions).
package mqlog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hashutil"
	"repro/internal/telemetry"
)

// ErrEmptyBatch is returned by the batch produce paths when the record
// slice is empty: there is no "first assigned offset" for a batch that
// assigned nothing, and returning the current end offset instead would
// hand callers a fence anchored on a record they never wrote.
var ErrEmptyBatch = errors.New("mqlog: empty record batch")

// ErrInvalidFetchMax is returned by Fetch when max <= 0. Without it a
// zero max yields an empty batch indistinguishable from "caught up",
// and raw Fetch poll loops spin forever.
var ErrInvalidFetchMax = errors.New("mqlog: fetch max must be positive")

// Header is one key/value metadata pair attached to a message —
// Kafka-style record headers. The broker is deliberately agnostic to
// header contents (dstore uses them to carry trace context across the
// log); like Value, a header's Value bytes are aliased under the
// producer-ownership contract, never copied or mutated by the broker.
//
// Headers are in-memory only: the durable write-through (durable.go)
// persists key+value framing only, so headers do not survive a restart.
// That is the right trade for their one consumer today — trace context
// is ephemeral by nature (the tracer's ring won't outlive the process
// either) — and keeps the on-disk format stable.
type Header struct {
	Key   string
	Value []byte
}

// Message is one log entry.
type Message struct {
	Key     string
	Value   []byte
	Headers []Header
	Offset  uint64
}

// partition is a single append-only sequence with retention. Retention
// advances a head index (amortized O(1) per append) and compacts the
// backing slice only when more than half of it is dead, so a full
// partition never pays a per-append copy.
type partition struct {
	mu    sync.Mutex
	base  uint64 // offset of msgs[head]
	head  int    // index of the oldest retained message in msgs
	msgs  []Message
	limit int           // max retained messages (0 = unlimited)
	dur   *durPartition // disk write-through state; nil for in-memory topics
}

func (p *partition) append(key string, value []byte, hdrs []Header) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appendLocked(key, value, hdrs)
}

// appendLocked lands one message and applies retention. Callers hold p.mu.
// Headers ride along in memory only; the durable write-through persists
// key+value framing and deliberately drops them (see Header).
func (p *partition) appendLocked(key string, value []byte, hdrs []Header) uint64 {
	off := p.base + uint64(len(p.msgs)-p.head)
	p.msgs = append(p.msgs, Message{Key: key, Value: value, Headers: hdrs, Offset: off})
	if p.dur != nil {
		p.durAppendLocked(key, value, off)
	}
	if p.limit > 0 && len(p.msgs)-p.head > p.limit {
		drop := len(p.msgs) - p.head - p.limit
		p.head += drop
		p.base += uint64(drop)
		if p.head > len(p.msgs)/2 {
			n := copy(p.msgs, p.msgs[p.head:])
			p.msgs = p.msgs[:n]
			p.head = 0
		}
	}
	return off
}

// appendBatch lands a batch of records under one lock acquisition and
// returns the offset of the first record (they are assigned
// contiguously). An empty batch assigns nothing and reports ok=false:
// the returned offset is the partition's current end, which is NOT the
// offset of any record in this batch and must not be used as a fence.
func (p *partition) appendBatch(recs []Record) (first uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	first = p.base + uint64(len(p.msgs)-p.head)
	for _, r := range recs {
		p.appendLocked(r.Key, r.Value, r.Headers)
	}
	return first, len(recs) > 0
}

// fetch returns up to max messages starting at offset. When offset has been
// truncated by retention, reading resumes at the oldest retained message
// (Kafka's "earliest" reset semantics) and truncated reports the condition.
//
// Aliasing audit: the Message structs MUST be copied out (the returned
// slice must not alias p.msgs) because retention compaction in
// appendLocked shifts the live suffix down with copy(p.msgs, ...), which
// would rewrite a returned subslice in place under a concurrent append.
// Message.Value byte slices, by contrast, are safely shared: the broker
// never mutates a value after append, and producers hand over ownership
// (see Produce) — so fetch is zero-copy for payloads and copying for
// struct headers, deliberately. Message.Headers follows the same split:
// the struct copy duplicates the []Header slice header, moving it out
// of compaction's way (compaction relocates Message structs, never the
// header backing array), while the Header entries and their Value bytes
// stay shared under the producer-ownership contract — trace-context
// headers cross the log zero-copy. Regression: TestFetchHeadersSurviveCompaction.
func (p *partition) fetch(offset uint64, max int) (msgs []Message, next uint64, truncated bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < p.base {
		offset = p.base
		truncated = true
	}
	idx := p.head + int(offset-p.base)
	if idx >= len(p.msgs) {
		return nil, offset, truncated
	}
	end := idx + max
	if end > len(p.msgs) {
		end = len(p.msgs)
	}
	out := make([]Message, end-idx)
	copy(out, p.msgs[idx:end])
	return out, offset + uint64(len(out)), truncated
}

func (p *partition) endOffset() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + uint64(len(p.msgs)-p.head)
}

func (p *partition) startOffset() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base
}

// Topic is a named set of partitions.
type Topic struct {
	name  string
	parts []*partition
	seed  uint64

	// Telemetry (telemetry.go). The record counters are always-on
	// atomics (one add per call, batched paths pay one add per batch);
	// the fetch-batch histogram is nil until SetTelemetry wires it, and
	// is an atomic pointer because wiring may race in-flight fetches
	// (e.g. a cluster instrumented while its nodes are polling).
	produced      atomic.Uint64
	fetched       atomic.Uint64
	telFetchBatch atomic.Pointer[telemetry.Histogram]

	// Durability (durable.go). dur is set once at creation and never
	// mutated; nil means in-memory. The counters are always-on atomics;
	// the fsync-latency histogram is wired by SetTelemetry.
	dur              *DurableConfig
	stopSync         chan struct{}
	syncDone         chan struct{}
	closeOnce        sync.Once
	fsyncs           atomic.Uint64
	segRolls         atomic.Uint64
	tornTruncations  atomic.Uint64
	recoveredRecords atomic.Uint64
	recoveryNanos    atomic.Int64
	diskErrors       atomic.Uint64
	telFsync         atomic.Pointer[telemetry.Histogram]
}

// Broker hosts topics and consumer-group offsets.
type Broker struct {
	mu     sync.Mutex
	topics map[string]*Topic
	// groupOffsets[group][topic] -> per-partition committed offsets
	groupOffsets map[string]map[string][]uint64
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:       make(map[string]*Topic),
		groupOffsets: make(map[string]map[string][]uint64),
	}
}

// CreateTopic creates a topic with the given partition count and per-
// partition retention limit (0 = unlimited). Creating an existing topic is
// an error.
func (b *Broker) CreateTopic(name string, partitions, retention int) (*Topic, error) {
	if name == "" {
		return nil, core.Errf("Broker", "name", "topic name must be non-empty")
	}
	if partitions <= 0 {
		return nil, core.Errf("Broker", "partitions", "%d must be positive", partitions)
	}
	if retention < 0 {
		return nil, core.Errf("Broker", "retention", "%d must be >= 0", retention)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.topics[name]; exists {
		return nil, fmt.Errorf("mqlog: topic %q already exists", name)
	}
	t := &Topic{name: name, seed: hashutil.Sum64String(name, 0)}
	for i := 0; i < partitions; i++ {
		t.parts = append(t.parts, &partition{limit: retention})
	}
	b.topics[name] = t
	return t, nil
}

// Topic returns an existing topic or an error.
func (b *Broker) Topic(name string) (*Topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("mqlog: unknown topic %q", name)
	}
	return t, nil
}

// Partitions returns the topic's partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// Produce appends a message, routing by key hash (empty keys round-robin
// via the value hash, matching Kafka's sticky-less default closely enough
// for experiments). The broker takes ownership of value: it is aliased,
// not copied, and must not be mutated by the producer afterwards.
func (t *Topic) Produce(key string, value []byte) (partitionID int, offset uint64) {
	pid := t.route(key, value)
	t.produced.Add(1)
	return pid, t.parts[pid].append(key, value, nil)
}

// route picks the partition Produce would append (key, value) to.
func (t *Topic) route(key string, value []byte) int {
	var h uint64
	if key != "" {
		h = hashutil.Sum64String(key, t.seed)
	} else {
		h = hashutil.Sum64(value, t.seed)
	}
	return int(h % uint64(len(t.parts)))
}

// PartitionFor returns the partition a keyed message routes to — the
// ownership map a partition-aware client (e.g. a scatter-gather router)
// shares with Produce.
func (t *Topic) PartitionFor(key string) int {
	return int(hashutil.Sum64String(key, t.seed) % uint64(len(t.parts)))
}

// Record is one key/value pair bound for a topic, the unit of batch
// production. As with Produce, the broker aliases Value (and any
// Headers) rather than copying them.
type Record struct {
	Key     string
	Value   []byte
	Headers []Header
}

// ProduceBatch appends a batch of records, routing each by key exactly as
// Produce does, but grouping the batch per partition so every partition's
// lock is acquired once per call instead of once per record — the batched
// forwarding path a producer-side router should use. It returns the
// number of records appended (always len(recs)).
func (t *Topic) ProduceBatch(recs []Record) int {
	if len(recs) == 0 {
		return 0
	}
	t.produced.Add(uint64(len(recs)))
	// Fast path: batches from a partition-aware router are usually
	// single-partition already; detect that without allocating.
	first := t.route(recs[0].Key, recs[0].Value)
	single := true
	for i := 1; i < len(recs) && single; i++ {
		single = t.route(recs[i].Key, recs[i].Value) == first
	}
	if single {
		t.parts[first].appendBatch(recs)
		return len(recs)
	}
	byPart := make(map[int][]Record, len(t.parts))
	for _, r := range recs {
		pid := t.route(r.Key, r.Value)
		byPart[pid] = append(byPart[pid], r)
	}
	for pid, group := range byPart {
		t.parts[pid].appendBatch(group)
	}
	return len(recs)
}

// ProduceBatchTo appends a batch of records to an explicit partition
// under one lock acquisition and returns the first assigned offset —
// the -To form of ProduceBatch, for producers that already partitioned
// (a router that routed by PartitionFor must not pay a second hash per
// record here). An empty batch is ErrEmptyBatch: it assigns no offsets,
// so there is no first offset to return, and silently handing back the
// current end offset would let a caller fence on a record it never
// wrote.
func (t *Topic) ProduceBatchTo(partitionID int, recs []Record) (uint64, error) {
	if partitionID < 0 || partitionID >= len(t.parts) {
		return 0, core.Errf("Topic", "partitionID", "%d out of range", partitionID)
	}
	if len(recs) == 0 {
		return 0, ErrEmptyBatch
	}
	t.produced.Add(uint64(len(recs)))
	first, _ := t.parts[partitionID].appendBatch(recs)
	return first, nil
}

// ProduceTo appends a message to an explicit partition.
func (t *Topic) ProduceTo(partitionID int, key string, value []byte) (uint64, error) {
	if partitionID < 0 || partitionID >= len(t.parts) {
		return 0, core.Errf("Topic", "partitionID", "%d out of range", partitionID)
	}
	t.produced.Add(1)
	return t.parts[partitionID].append(key, value, nil), nil
}

// Fetch reads up to max messages from one partition starting at offset.
// max must be positive: a non-positive max can never return messages,
// which is indistinguishable from "caught up" and spins raw poll loops
// forever — it is rejected with ErrInvalidFetchMax instead.
func (t *Topic) Fetch(partitionID int, offset uint64, max int) (msgs []Message, next uint64, truncated bool, err error) {
	if partitionID < 0 || partitionID >= len(t.parts) {
		return nil, 0, false, core.Errf("Topic", "partitionID", "%d out of range", partitionID)
	}
	if max <= 0 {
		return nil, offset, false, ErrInvalidFetchMax
	}
	msgs, next, truncated = t.parts[partitionID].fetch(offset, max)
	if len(msgs) > 0 {
		t.fetched.Add(uint64(len(msgs)))
		if h := t.telFetchBatch.Load(); h != nil {
			h.Observe(float64(len(msgs)))
		}
	}
	return msgs, next, truncated, nil
}

// EndOffset returns the next offset to be written to the partition.
func (t *Topic) EndOffset(partitionID int) uint64 { return t.parts[partitionID].endOffset() }

// EndOffsets returns a snapshot of every partition's end offset, indexed
// by partition id. Each entry is read under its partition's lock, so the
// snapshot is per-partition exact; across partitions it is only monotone
// (a concurrent producer may land between reads), which is what log-based
// recovery needs: replaying up to a snapshot taken after an ownership
// change covers everything produced before it.
func (t *Topic) EndOffsets() []uint64 {
	out := make([]uint64, len(t.parts))
	for pid, p := range t.parts {
		out[pid] = p.endOffset()
	}
	return out
}

// StartOffset returns the oldest retained offset of the partition.
func (t *Topic) StartOffset(partitionID int) uint64 { return t.parts[partitionID].startOffset() }

// Commit records a consumer group's position for one partition.
func (b *Broker) Commit(group, topic string, partitionID int, offset uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	byTopic, ok := b.groupOffsets[group]
	if !ok {
		byTopic = make(map[string][]uint64)
		b.groupOffsets[group] = byTopic
	}
	offs := byTopic[topic]
	if len(offs) <= partitionID {
		grown := make([]uint64, partitionID+1)
		copy(grown, offs)
		offs = grown
	}
	offs[partitionID] = offset
	byTopic[topic] = offs
}

// Committed returns the group's committed offset for a partition (0 when
// never committed).
func (b *Broker) Committed(group, topic string, partitionID int) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if byTopic, ok := b.groupOffsets[group]; ok {
		if offs, ok := byTopic[topic]; ok && partitionID < len(offs) {
			return offs[partitionID]
		}
	}
	return 0
}

// Lag returns the total unconsumed messages for a group across a topic's
// partitions — the standard consumer health metric. The group's
// committed offsets are snapshotted once under one broker lock before
// any end offset is read: interleaving per-partition Committed calls
// with end-offset reads would let a commit landing mid-scan shift the
// baseline between partitions and double-count in-flight ones.
func (b *Broker) Lag(group string, t *Topic) uint64 {
	b.mu.Lock()
	var committed []uint64
	if byTopic, ok := b.groupOffsets[group]; ok {
		committed = append(committed, byTopic[t.name]...)
	}
	b.mu.Unlock()
	var total uint64
	for pid, p := range t.parts {
		var c uint64
		if pid < len(committed) {
			c = committed[pid]
		}
		if end := p.endOffset(); end > c {
			total += end - c
		}
	}
	return total
}
