// telemetry.go wires the broker substrate into a telemetry.Registry:
// produce/fetch throughput and per-partition end offsets per topic, and
// consumer-group lag and rebalance counts per group. Everything except
// the fetch-batch histogram is a scrape-time read of state the log
// already maintains. Wire before serving traffic.
package mqlog

import (
	"strconv"

	"repro/internal/telemetry"
)

// SetTelemetry registers the topic's metrics with reg, labeled by topic
// name (and partition id for the end-offset gauges). A nil registry is
// a no-op; calling again re-binds the callbacks to this topic.
func (t *Topic) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("analytics_mqlog_produced_records_total",
		"Records appended to the topic across all produce paths.",
		func() uint64 { return t.produced.Load() }, "topic", t.name)
	reg.CounterFunc("analytics_mqlog_fetched_records_total",
		"Records returned by fetches against the topic.",
		func() uint64 { return t.fetched.Load() }, "topic", t.name)
	for pid := range t.parts {
		p := t.parts[pid]
		reg.GaugeFunc("analytics_mqlog_end_offset",
			"Next offset to be written to the partition.",
			func() float64 { return float64(p.endOffset()) },
			"topic", t.name, "partition", strconv.Itoa(pid))
	}
	t.telFetchBatch.Store(reg.Histogram("analytics_mqlog_fetch_batch_records",
		"Records per non-empty fetch (poll efficiency).",
		0, 512, 64, "topic", t.name))
	if t.dur != nil {
		reg.CounterFunc("analytics_mqlog_fsyncs_total",
			"Fsyncs issued against the topic's segment files.",
			func() uint64 { return t.fsyncs.Load() }, "topic", t.name)
		reg.CounterFunc("analytics_mqlog_segment_rolls_total",
			"Active-segment rolls across the topic's partitions.",
			func() uint64 { return t.segRolls.Load() }, "topic", t.name)
		reg.CounterFunc("analytics_mqlog_torn_truncations_total",
			"Torn tail records truncated during recovery scans.",
			func() uint64 { return t.tornTruncations.Load() }, "topic", t.name)
		reg.CounterFunc("analytics_mqlog_recovered_records_total",
			"Records replayed from segment files at topic open.",
			func() uint64 { return t.recoveredRecords.Load() }, "topic", t.name)
		reg.CounterFunc("analytics_mqlog_disk_errors_total",
			"Latched disk failures (durability degraded, serving continues).",
			func() uint64 { return t.diskErrors.Load() }, "topic", t.name)
		reg.GaugeFunc("analytics_mqlog_recovery_scan_seconds",
			"Wall time of the open-time segment recovery scan.",
			func() float64 { return float64(t.recoveryNanos.Load()) / 1e9 },
			"topic", t.name)
		reg.GaugeFunc("analytics_mqlog_disk_bytes",
			"On-disk footprint of the topic's segment files.",
			func() float64 { return float64(t.DurabilityStats().DiskBytes) },
			"topic", t.name)
		t.telFsync.Store(reg.Histogram("analytics_mqlog_fsync_seconds",
			"Latency of segment fsyncs (group commits and explicit Syncs).",
			0, 0.05, 50, "topic", t.name))
	}
}

// SetTelemetry registers the group's health metrics with reg: total
// unconsumed lag (end offset minus committed, summed over partitions)
// and the rebalance count (the group generation — bumped on every
// membership change or forced rebalance). A nil registry is a no-op.
func (g *ConsumerGroup) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("analytics_mqlog_group_lag",
		"Unconsumed records for the group across the topic's partitions.",
		func() float64 { return float64(g.broker.Lag(g.name, g.topic)) },
		"group", g.name, "topic", g.topic.name)
	reg.CounterFunc("analytics_mqlog_rebalances_total",
		"Group rebalances (the group generation).",
		func() uint64 { return uint64(g.Generation()) },
		"group", g.name, "topic", g.topic.name)
}
