// telemetry.go wires the broker substrate into a telemetry.Registry:
// produce/fetch throughput and per-partition end offsets per topic, and
// consumer-group lag and rebalance counts per group. Everything except
// the fetch-batch histogram is a scrape-time read of state the log
// already maintains. Wire before serving traffic.
package mqlog

import (
	"strconv"

	"repro/internal/telemetry"
)

// SetTelemetry registers the topic's metrics with reg, labeled by topic
// name (and partition id for the end-offset gauges). A nil registry is
// a no-op; calling again re-binds the callbacks to this topic.
func (t *Topic) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("analytics_mqlog_produced_records_total",
		"Records appended to the topic across all produce paths.",
		func() uint64 { return t.produced.Load() }, "topic", t.name)
	reg.CounterFunc("analytics_mqlog_fetched_records_total",
		"Records returned by fetches against the topic.",
		func() uint64 { return t.fetched.Load() }, "topic", t.name)
	for pid := range t.parts {
		p := t.parts[pid]
		reg.GaugeFunc("analytics_mqlog_end_offset",
			"Next offset to be written to the partition.",
			func() float64 { return float64(p.endOffset()) },
			"topic", t.name, "partition", strconv.Itoa(pid))
	}
	t.telFetchBatch.Store(reg.Histogram("analytics_mqlog_fetch_batch_records",
		"Records per non-empty fetch (poll efficiency).",
		0, 512, 64, "topic", t.name))
}

// SetTelemetry registers the group's health metrics with reg: total
// unconsumed lag (end offset minus committed, summed over partitions)
// and the rebalance count (the group generation — bumped on every
// membership change or forced rebalance). A nil registry is a no-op.
func (g *ConsumerGroup) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("analytics_mqlog_group_lag",
		"Unconsumed records for the group across the topic's partitions.",
		func() float64 { return float64(g.broker.Lag(g.name, g.topic)) },
		"group", g.name, "topic", g.topic.name)
	reg.CounterFunc("analytics_mqlog_rebalances_total",
		"Group rebalances (the group generation).",
		func() uint64 { return uint64(g.Generation()) },
		"group", g.name, "topic", g.topic.name)
}
