package mqlog

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// ConsumerGroup coordinates a set of named consumers over one topic:
// partitions are range-assigned to the sorted member list, and every
// membership change triggers a rebalance, as in Kafka's classic group
// protocol. Poll reads from the caller's assigned partitions only and
// Commit advances the group's offsets, so messages are delivered to
// exactly one member per group (at-least-once across rebalances).
type ConsumerGroup struct {
	mu      sync.Mutex
	broker  *Broker
	topic   *Topic
	name    string
	members []string
	// assignment[member] = partition ids
	assignment map[string][]int
	generation int
	// cursors[member] rotates each Poll's partition scan start, so when
	// the budget is smaller than the assignment no partition is starved.
	cursors map[string]int
}

// NewConsumerGroup returns a consumer group over the topic.
func NewConsumerGroup(broker *Broker, topic *Topic, name string) (*ConsumerGroup, error) {
	if broker == nil || topic == nil {
		return nil, core.Errf("ConsumerGroup", "broker/topic", "must be non-nil")
	}
	if name == "" {
		return nil, core.Errf("ConsumerGroup", "name", "must be non-empty")
	}
	return &ConsumerGroup{
		broker:     broker,
		topic:      topic,
		name:       name,
		assignment: make(map[string][]int),
		cursors:    make(map[string]int),
	}, nil
}

// Join adds a member and rebalances. Joining twice is a no-op.
func (g *ConsumerGroup) Join(member string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m == member {
			return
		}
	}
	g.members = append(g.members, member)
	g.rebalance()
}

// Leave removes a member and rebalances; its partitions move to survivors.
func (g *ConsumerGroup) Leave(member string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == member {
			g.members = append(g.members[:i], g.members[i+1:]...)
			delete(g.cursors, member)
			g.rebalance()
			return
		}
	}
}

// rebalance performs range assignment over the sorted member list.
// Callers hold g.mu.
func (g *ConsumerGroup) rebalance() {
	g.generation++
	g.assignment = make(map[string][]int)
	if len(g.members) == 0 {
		return
	}
	sorted := append([]string(nil), g.members...)
	sort.Strings(sorted)
	nParts := g.topic.Partitions()
	for pid := 0; pid < nParts; pid++ {
		m := sorted[pid%len(sorted)]
		g.assignment[m] = append(g.assignment[m], pid)
	}
}

// ForceRebalance bumps the group generation and recomputes the
// assignment without any membership change. Members holding work fenced
// at the old generation are fenced out (CommitFenced fails), and
// consumers keyed to the generation rebuild — the administrative "bounce
// the group" every log-backed state store needs when the state it must
// rebuild from the log changes out from under the members (e.g. an
// offset floor moved by a batch-layer handoff).
func (g *ConsumerGroup) ForceRebalance() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rebalance()
}

// Assignment returns the member's current partitions.
func (g *ConsumerGroup) Assignment(member string) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.assignment[member]...)
}

// Owner returns the member currently assigned the partition and the
// generation of that assignment — the inverse of Assignment, used by
// query routers to find which consumer serves a key's partition.
func (g *ConsumerGroup) Owner(partitionID int) (member string, generation int, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for m, parts := range g.assignment {
		for _, pid := range parts {
			if pid == partitionID {
				return m, g.generation, true
			}
		}
	}
	return "", g.generation, false
}

// Owners returns the whole partition -> member assignment, indexed by
// partition id ("" = unowned), plus the generation it was read at — one
// lock acquisition for callers resolving many keys (a scatter-gather
// router), where per-key Owner calls would rescan the assignment each
// time.
func (g *ConsumerGroup) Owners() (byPartition []string, generation int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, g.topic.Partitions())
	for m, parts := range g.assignment {
		for _, pid := range parts {
			out[pid] = m
		}
	}
	return out, g.generation
}

// Members returns the current member names, sorted.
func (g *ConsumerGroup) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := append([]string(nil), g.members...)
	sort.Strings(out)
	return out
}

// Generation returns the rebalance generation, bumped on every membership
// change.
func (g *ConsumerGroup) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// Poll fetches up to max messages for the member from its assigned
// partitions, starting at the group's committed offsets. The budget is
// divided fairly across the assigned partitions (Kafka's per-partition
// fetch cap), so one backlogged partition cannot starve the others and a
// consumer behind on several partitions sees them interleaved, not
// drained one partition at a time; any unused share is then offered to
// partitions with more backlog. The scan start rotates across calls, so
// even a budget smaller than the assignment (share clamped to 1) reaches
// every partition within a few polls instead of always feeding the first
// few. It does NOT commit; pair with Commit after processing for
// at-least-once semantics.
func (g *ConsumerGroup) Poll(member string, max int) []PartitionBatch {
	g.mu.Lock()
	parts := append([]int(nil), g.assignment[member]...)
	if n := len(parts); n > 0 {
		rot := g.cursors[member] % n
		g.cursors[member] = rot + 1
		parts = append(parts[rot:], parts[:rot]...)
	}
	g.mu.Unlock()
	if len(parts) == 0 || max <= 0 {
		return nil
	}

	share := max / len(parts)
	if share < 1 {
		share = 1
	}
	var out []PartitionBatch
	remaining := max
	for _, pid := range parts {
		if remaining <= 0 {
			break
		}
		cap := share
		if cap > remaining {
			cap = remaining
		}
		offset := g.broker.Committed(g.name, g.topic.name, pid)
		msgs, next, _, err := g.topic.Fetch(pid, offset, cap)
		if err != nil || len(msgs) == 0 {
			continue
		}
		out = append(out, PartitionBatch{Partition: pid, Messages: msgs, Next: next})
		remaining -= len(msgs)
	}
	// Second pass: hand the leftover budget to partitions that still have
	// backlog beyond their fair share.
	for i := range out {
		if remaining <= 0 {
			break
		}
		b := &out[i]
		msgs, next, _, err := g.topic.Fetch(b.Partition, b.Next, remaining)
		if err != nil || len(msgs) == 0 {
			continue
		}
		b.Messages = append(b.Messages, msgs...)
		b.Next = next
		remaining -= len(msgs)
	}
	return out
}

// Commit advances the group's offset for one partition (after processing).
func (g *ConsumerGroup) Commit(partitionID int, next uint64) {
	g.broker.Commit(g.name, g.topic.name, partitionID, next)
}

// CommitFenced advances the group's offset for one partition only if the
// member still owns it at the given generation, and reports whether the
// commit was applied. This is Kafka's generation fencing: a consumer that
// processed a batch, was preempted, and lost the partition in a rebalance
// must not clobber the new owner's position — a stale commit past the new
// owner's recovery point would silently skip messages. The ownership check
// and the broker commit happen under the group lock, which rebalances also
// hold, so a commit observed at generation G is ordered before any
// generation G+1 assignment.
func (g *ConsumerGroup) CommitFenced(member string, generation, partitionID int, next uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.generation != generation {
		return false
	}
	owned := false
	for _, pid := range g.assignment[member] {
		if pid == partitionID {
			owned = true
			break
		}
	}
	if !owned {
		return false
	}
	g.broker.Commit(g.name, g.topic.name, partitionID, next)
	return true
}

// PartitionBatch is one partition's slice of a Poll result.
type PartitionBatch struct {
	Partition int
	Messages  []Message
	Next      uint64 // offset to commit after processing Messages
}
