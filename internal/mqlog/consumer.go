package mqlog

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// ConsumerGroup coordinates a set of named consumers over one topic:
// partitions are range-assigned to the sorted member list, and every
// membership change triggers a rebalance, as in Kafka's classic group
// protocol. Poll reads from the caller's assigned partitions only and
// Commit advances the group's offsets, so messages are delivered to
// exactly one member per group (at-least-once across rebalances).
type ConsumerGroup struct {
	mu      sync.Mutex
	broker  *Broker
	topic   *Topic
	name    string
	members []string
	// assignment[member] = partition ids
	assignment map[string][]int
	generation int
}

// NewConsumerGroup returns a consumer group over the topic.
func NewConsumerGroup(broker *Broker, topic *Topic, name string) (*ConsumerGroup, error) {
	if broker == nil || topic == nil {
		return nil, core.Errf("ConsumerGroup", "broker/topic", "must be non-nil")
	}
	if name == "" {
		return nil, core.Errf("ConsumerGroup", "name", "must be non-empty")
	}
	return &ConsumerGroup{
		broker:     broker,
		topic:      topic,
		name:       name,
		assignment: make(map[string][]int),
	}, nil
}

// Join adds a member and rebalances. Joining twice is a no-op.
func (g *ConsumerGroup) Join(member string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m == member {
			return
		}
	}
	g.members = append(g.members, member)
	g.rebalance()
}

// Leave removes a member and rebalances; its partitions move to survivors.
func (g *ConsumerGroup) Leave(member string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == member {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.rebalance()
			return
		}
	}
}

// rebalance performs range assignment over the sorted member list.
// Callers hold g.mu.
func (g *ConsumerGroup) rebalance() {
	g.generation++
	g.assignment = make(map[string][]int)
	if len(g.members) == 0 {
		return
	}
	sorted := append([]string(nil), g.members...)
	sort.Strings(sorted)
	nParts := g.topic.Partitions()
	for pid := 0; pid < nParts; pid++ {
		m := sorted[pid%len(sorted)]
		g.assignment[m] = append(g.assignment[m], pid)
	}
}

// Assignment returns the member's current partitions.
func (g *ConsumerGroup) Assignment(member string) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.assignment[member]...)
}

// Generation returns the rebalance generation, bumped on every membership
// change.
func (g *ConsumerGroup) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// Poll fetches up to max messages for the member from its assigned
// partitions, starting at the group's committed offsets. It does NOT
// commit; pair with Commit after processing for at-least-once semantics.
func (g *ConsumerGroup) Poll(member string, max int) []PartitionBatch {
	g.mu.Lock()
	parts := append([]int(nil), g.assignment[member]...)
	g.mu.Unlock()

	var out []PartitionBatch
	remaining := max
	for _, pid := range parts {
		if remaining <= 0 {
			break
		}
		offset := g.broker.Committed(g.name, g.topic.name, pid)
		msgs, next, _, err := g.topic.Fetch(pid, offset, remaining)
		if err != nil || len(msgs) == 0 {
			continue
		}
		out = append(out, PartitionBatch{Partition: pid, Messages: msgs, Next: next})
		remaining -= len(msgs)
	}
	return out
}

// Commit advances the group's offset for one partition (after processing).
func (g *ConsumerGroup) Commit(partitionID int, next uint64) {
	g.broker.Commit(g.name, g.topic.name, partitionID, next)
}

// PartitionBatch is one partition's slice of a Poll result.
type PartitionBatch struct {
	Partition int
	Messages  []Message
	Next      uint64 // offset to commit after processing Messages
}
