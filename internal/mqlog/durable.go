// durable.go gives a topic's partitions segmented on-disk persistence
// behind the existing partition API: every append is written through to
// the active segment file, a group-commit syncer fsyncs dirty partitions
// on a fixed interval (so producers never wait on the disk unless
// SyncEveryAppend asks them to), retention unlinks whole sealed segments
// by age or total bytes, and opening a durable topic replays the segment
// chain — truncating a torn tail record — to rebuild base/end offsets
// and the in-memory log. In-memory topics (no DurableConfig) are
// untouched: the hooks below are nil-guarded no-ops.
package mqlog

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// DurableConfig configures on-disk persistence for a topic's partitions.
// The zero Dir disables durability (and the config is then invalid for
// CreateTopicDurable); every other field has a usable default.
type DurableConfig struct {
	// Dir is the root directory for the topic's segment files; each
	// topic gets Dir/<topic>/p<NNNN>/<base>.seg, so one Dir can host
	// every topic of a broker.
	Dir string
	// SegmentBytes rolls the active segment once it reaches this size
	// (default 1 MiB). Rolling seals the old segment, which makes it
	// eligible for retention.
	SegmentBytes int
	// FsyncInterval is the group-commit window: a background syncer
	// flushes and fsyncs every dirty partition this often (default 2ms).
	// Appends between syncs are buffered — a crash loses at most one
	// window, the standard group-commit trade.
	FsyncInterval time.Duration
	// SyncEveryAppend makes every append flush+fsync inline before
	// returning (no group commit, no background syncer) — the zero-loss
	// mode, at a large per-append cost.
	SyncEveryAppend bool
	// MaxLogBytes unlinks the oldest sealed segments once the
	// partition's on-disk footprint exceeds it (0 = unlimited). The
	// active segment is never unlinked.
	MaxLogBytes int64
	// MaxSegmentAge unlinks sealed segments older than this
	// (0 = unlimited), measured from the segment's last write.
	MaxSegmentAge time.Duration
}

func (d DurableConfig) withDefaults() DurableConfig {
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = 1 << 20
	}
	if d.FsyncInterval <= 0 {
		d.FsyncInterval = 2 * time.Millisecond
	}
	return d
}

// sealedSegment is the metadata the writer keeps for a closed segment —
// enough to apply retention without reopening the file.
type sealedSegment struct {
	base, end uint64 // offset range [base, end)
	size      int64
	sealedAt  time.Time
	path      string
}

// durPartition is one partition's disk state. Every field is guarded by
// the owning partition's mutex except where noted; the group-commit
// syncer snapshots the *os.File under the lock and fsyncs outside it.
type durPartition struct {
	dir    string
	cfg    DurableConfig
	t      *Topic
	f      *os.File
	w      *bufio.Writer
	base   uint64 // base offset of the active segment
	size   int64  // bytes written to the active segment (incl. header)
	sealed []sealedSegment
	dirty  bool // buffered or unsynced writes since the last fsync
	closed bool
	err    error  // first disk error; latched, disables further writes
	buf    []byte // scratch encode buffer, reused across appends
}

// fail latches the partition's first disk error. The in-memory log keeps
// serving — durability degrades, availability does not — and the error
// surfaces through Topic.Sync, Topic.Close and DurabilityStats.
func (d *durPartition) fail(err error) {
	if d.err == nil {
		d.err = err
		d.t.diskErrors.Add(1)
	}
}

// durAppendLocked writes one record through to the active segment and
// rolls it when full. Caller holds p.mu; off is the offset appendLocked
// just assigned.
func (p *partition) durAppendLocked(key string, value []byte, off uint64) {
	d := p.dur
	if d == nil || d.err != nil || d.closed {
		return
	}
	d.buf = appendRecord(d.buf[:0], key, value)
	if _, err := d.w.Write(d.buf); err != nil {
		d.fail(err)
		return
	}
	d.size += int64(len(d.buf))
	d.dirty = true
	if d.cfg.SyncEveryAppend {
		if err := d.flushSyncLocked(); err != nil {
			d.fail(err)
			return
		}
	}
	if d.size >= int64(d.cfg.SegmentBytes) {
		p.rollLocked(off + 1)
	}
}

// flushSyncLocked flushes the buffered writer and fsyncs the active
// segment, recording fsync latency. Caller holds p.mu.
func (d *durPartition) flushSyncLocked() error {
	if err := d.w.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.t.observeFsync(time.Since(start))
	d.dirty = false
	return nil
}

// rollLocked seals the active segment and opens a fresh one based at
// nextBase, then applies disk retention. Caller holds p.mu.
func (p *partition) rollLocked(nextBase uint64) {
	d := p.dur
	if err := d.flushSyncLocked(); err != nil {
		d.fail(err)
		return
	}
	path := d.f.Name()
	if err := d.f.Close(); err != nil {
		d.fail(err)
		return
	}
	d.sealed = append(d.sealed, sealedSegment{
		base: d.base, end: nextBase, size: d.size, sealedAt: time.Now(), path: path,
	})
	f, err := createSegment(d.dir, nextBase)
	if err != nil {
		d.fail(err)
		return
	}
	d.f = f
	d.w.Reset(f)
	d.base = nextBase
	d.size = segHeaderSize
	d.t.segRolls.Add(1)
	p.applyDiskRetentionLocked()
}

// applyDiskRetentionLocked unlinks the oldest sealed segments while the
// partition exceeds MaxLogBytes or holds segments older than
// MaxSegmentAge, advancing the in-memory base past the unlinked range so
// StartOffset, fetch clamping and Reader truncation reflect exactly what
// the disk still holds. The active segment is never unlinked. Caller
// holds p.mu.
func (p *partition) applyDiskRetentionLocked() {
	d := p.dur
	total := d.size
	for _, s := range d.sealed {
		total += s.size
	}
	drop := 0
	for drop < len(d.sealed) {
		s := d.sealed[drop]
		overBytes := d.cfg.MaxLogBytes > 0 && total > d.cfg.MaxLogBytes
		tooOld := d.cfg.MaxSegmentAge > 0 && time.Since(s.sealedAt) > d.cfg.MaxSegmentAge
		if !overBytes && !tooOld {
			break
		}
		if err := os.Remove(s.path); err != nil {
			d.fail(err)
			break
		}
		total -= s.size
		drop++
		// Advance the in-memory log past the unlinked segment.
		if s.end > p.base {
			n := int(s.end - p.base)
			if n > len(p.msgs)-p.head {
				n = len(p.msgs) - p.head
			}
			p.head += n
			p.base = s.end
			if p.head > len(p.msgs)/2 {
				kept := copy(p.msgs, p.msgs[p.head:])
				p.msgs = p.msgs[:kept]
				p.head = 0
			}
		}
	}
	if drop > 0 {
		d.sealed = append(d.sealed[:0], d.sealed[drop:]...)
	}
}

// openDurPartition opens (or creates) one partition's segment directory,
// replays the segment chain into the in-memory log, truncates a torn
// tail, and leaves the last segment open for appends. It returns the
// recovered messages; the caller installs them and applies the
// in-memory retention limit.
func openDurPartition(dir string, cfg DurableConfig, t *Topic) (*durPartition, []Message, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	d := &durPartition{dir: dir, cfg: cfg, t: t}
	names, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(names) == 0 {
		f, err := createSegment(dir, 0)
		if err != nil {
			return nil, nil, err
		}
		d.f = f
		d.w = bufio.NewWriter(f)
		d.size = segHeaderSize
		return d, nil, nil
	}

	var msgs []Message
	var scans []segmentScan
	expect := uint64(0)
	usable := 0
	for i, name := range names {
		sc, err := scanSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		if i > 0 && sc.base != expect {
			// Offset gap after a torn or vanished segment: the readable
			// log ends at the previous segment. Unlink the rest rather
			// than serve a log with a hole in it.
			break
		}
		scans = append(scans, sc)
		msgs = append(msgs, sc.msgs...)
		expect = sc.base + uint64(len(sc.msgs))
		usable = i + 1
		if sc.torn {
			t.tornTruncations.Add(1)
			break
		}
	}
	if usable < len(names) {
		if err := discardLater(dir, names, usable); err != nil {
			return nil, nil, err
		}
	}

	last := scans[usable-1]
	lastPath := filepath.Join(dir, names[usable-1])
	f, err := os.OpenFile(lastPath, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if last.torn {
		if err := f.Truncate(last.validEnd); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(last.validEnd, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	d.f = f
	d.w = bufio.NewWriter(f)
	d.base = last.base
	d.size = last.validEnd
	for _, sc := range scans[:usable-1] {
		info, _ := os.Stat(filepath.Join(dir, segmentName(sc.base)))
		sealedAt := time.Now()
		if info != nil {
			sealedAt = info.ModTime()
		}
		d.sealed = append(d.sealed, sealedSegment{
			base: sc.base, end: sc.base + uint64(len(sc.msgs)),
			size: sc.validEnd, sealedAt: sealedAt,
			path: filepath.Join(dir, segmentName(sc.base)),
		})
	}
	t.recoveredRecords.Add(uint64(len(msgs)))
	return d, msgs, nil
}

// CreateTopicDurable creates a topic whose partitions persist to disk
// under d.Dir, recovering any state a previous process left there: the
// segment chain is scanned (torn tails truncated, post-gap segments
// discarded), offsets are rebuilt from segment headers, and the
// recovered messages populate the in-memory log before the topic is
// returned. A nil d is exactly CreateTopic — the in-memory fast path is
// byte-for-byte unchanged.
func (b *Broker) CreateTopicDurable(name string, partitions, retention int, d *DurableConfig) (*Topic, error) {
	if d == nil {
		return b.CreateTopic(name, partitions, retention)
	}
	if d.Dir == "" {
		return nil, core.Errf("Broker", "durable", "Dir must be non-empty")
	}
	t, err := b.CreateTopic(name, partitions, retention)
	if err != nil {
		return nil, err
	}
	cfg := d.withDefaults()
	t.dur = &cfg
	start := time.Now()
	for pid, p := range t.parts {
		dir := filepath.Join(cfg.Dir, name, fmt.Sprintf("p%04d", pid))
		dp, msgs, err := openDurPartition(dir, cfg, t)
		if err != nil {
			b.removeTopic(name)
			return nil, fmt.Errorf("mqlog: open durable partition %d of %q: %w", pid, name, err)
		}
		p.dur = dp
		if len(msgs) > 0 {
			p.base = msgs[0].Offset
			p.msgs = msgs
			p.head = 0
			if p.limit > 0 && len(p.msgs) > p.limit {
				drop := len(p.msgs) - p.limit
				p.head = drop
				p.base += uint64(drop)
			}
		} else if dp.base > 0 {
			// Segments existed but every record was retained away or the
			// active segment is empty: offsets resume at the base.
			p.base = dp.base
		}
	}
	t.recoveryNanos.Store(time.Since(start).Nanoseconds())
	if !cfg.SyncEveryAppend {
		t.stopSync = make(chan struct{})
		t.syncDone = make(chan struct{})
		go t.syncLoop(cfg.FsyncInterval)
	}
	return t, nil
}

// removeTopic undoes a CreateTopic that failed durable open halfway.
func (b *Broker) removeTopic(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.topics, name)
}

// syncLoop is the group-commit writer: every interval it flushes and
// fsyncs each dirty partition. Flush happens under the partition lock;
// the fsync itself happens outside it so producers are never blocked on
// the disk (see syncIgnoringClosed for the roll race).
func (t *Topic) syncLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	defer close(t.syncDone)
	for {
		select {
		case <-t.stopSync:
			t.syncOnce()
			return
		case <-tick.C:
			t.syncOnce()
		}
	}
}

// syncOnce flushes and fsyncs every dirty partition once.
func (t *Topic) syncOnce() {
	for _, p := range t.parts {
		d := p.dur
		if d == nil {
			continue
		}
		p.mu.Lock()
		var f *os.File
		if d.err == nil && !d.closed && d.dirty {
			if err := d.w.Flush(); err != nil {
				d.fail(err)
			} else {
				f = d.f
				d.dirty = false
			}
		}
		p.mu.Unlock()
		if f == nil {
			continue
		}
		start := time.Now()
		if err := syncIgnoringClosed(f); err != nil {
			p.mu.Lock()
			d.fail(err)
			p.mu.Unlock()
			continue
		}
		t.observeFsync(time.Since(start))
	}
}

// observeFsync records one fsync in the always-on counter and, when
// telemetry is wired, the latency histogram.
func (t *Topic) observeFsync(dt time.Duration) {
	t.fsyncs.Add(1)
	if h := t.telFsync.Load(); h != nil {
		h.Observe(dt.Seconds())
	}
}

// Sync forces a flush+fsync of every partition's active segment — the
// explicit durability barrier for shutdown paths and tests. It returns
// the first disk error latched by any partition. In-memory topics
// return nil.
func (t *Topic) Sync() error {
	if t.dur == nil {
		return nil
	}
	var first error
	for _, p := range t.parts {
		d := p.dur
		if d == nil {
			continue
		}
		p.mu.Lock()
		if d.err == nil && !d.closed {
			if err := d.flushSyncLocked(); err != nil {
				d.fail(err)
			}
		}
		if first == nil && d.err != nil {
			first = d.err
		}
		p.mu.Unlock()
	}
	return first
}

// Close stops the group-commit syncer, flushes and fsyncs every
// partition, and closes the segment files. The in-memory log keeps
// serving reads and even writes afterwards (writes just stop being
// persisted), which lets a closed cluster's log still be replayed; a
// second Close is a no-op. In-memory topics return nil.
func (t *Topic) Close() error {
	if t.dur == nil {
		return nil
	}
	var first error
	t.closeOnce.Do(func() {
		if t.stopSync != nil {
			close(t.stopSync)
			<-t.syncDone
		}
		first = t.Sync()
		for _, p := range t.parts {
			d := p.dur
			if d == nil {
				continue
			}
			p.mu.Lock()
			if !d.closed {
				d.closed = true
				if err := d.f.Close(); err != nil && first == nil {
					first = err
				}
			}
			p.mu.Unlock()
		}
	})
	return first
}

// Close closes every durable topic on the broker (see Topic.Close) and
// returns the first error.
func (b *Broker) Close() error {
	b.mu.Lock()
	topics := make([]*Topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.Unlock()
	var first error
	for _, t := range topics {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Durable reports whether the topic persists to disk.
func (t *Topic) Durable() bool { return t.dur != nil }

// DurabilityStats is a point-in-time snapshot of the topic's disk state.
type DurabilityStats struct {
	Segments         int    // segment files on disk (sealed + active)
	DiskBytes        int64  // total on-disk footprint
	Fsyncs           uint64 // fsyncs issued (group commits + explicit Syncs)
	SegmentRolls     uint64 // active-segment rolls
	TornTruncations  uint64 // torn tails truncated during recovery
	RecoveredRecords uint64 // records replayed from disk at open
	RecoveryNanos    int64  // wall time of the open-time recovery scan
	DiskErrors       uint64 // latched disk failures (durability degraded)
	Err              error  // first latched disk error, if any
}

// DurabilityStats reports the topic's durability counters and on-disk
// footprint. In-memory topics return the zero value.
func (t *Topic) DurabilityStats() DurabilityStats {
	if t.dur == nil {
		return DurabilityStats{}
	}
	s := DurabilityStats{
		Fsyncs:           t.fsyncs.Load(),
		SegmentRolls:     t.segRolls.Load(),
		TornTruncations:  t.tornTruncations.Load(),
		RecoveredRecords: t.recoveredRecords.Load(),
		RecoveryNanos:    t.recoveryNanos.Load(),
		DiskErrors:       t.diskErrors.Load(),
	}
	for _, p := range t.parts {
		d := p.dur
		if d == nil {
			continue
		}
		p.mu.Lock()
		s.Segments += 1 + len(d.sealed)
		s.DiskBytes += d.size
		for _, seg := range d.sealed {
			s.DiskBytes += seg.size
		}
		if s.Err == nil {
			s.Err = d.err
		}
		p.mu.Unlock()
	}
	return s
}
