package mqlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// syncEvery returns a DurableConfig with inline fsync, so every produced
// record is fully on disk when Produce returns — tests can then simulate
// a kill -9 by simply not calling Close.
func syncEvery(dir string) *DurableConfig {
	return &DurableConfig{Dir: dir, SyncEveryAppend: true}
}

// fetchAll drains one partition from offset 0.
func fetchAll(t *testing.T, topic *Topic, pid int) []Message {
	t.Helper()
	msgs, _, _, err := topic.Fetch(pid, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return msgs
}

func TestDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	const n = 100

	t1, err := NewBroker().CreateTopicDurable("t", 2, 0, syncEvery(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := t1.ProduceTo(i%2, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}

	t2, err := NewBroker().CreateTopicDurable("t", 2, 0, syncEvery(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	ds := t2.DurabilityStats()
	if ds.RecoveredRecords != n {
		t.Fatalf("recovered %d records, want %d", ds.RecoveredRecords, n)
	}
	if ds.TornTruncations != 0 {
		t.Fatalf("clean shutdown reported %d torn truncations", ds.TornTruncations)
	}
	for pid := 0; pid < 2; pid++ {
		if got, want := t2.EndOffset(pid), uint64(n/2); got != want {
			t.Fatalf("partition %d end offset %d, want %d", pid, got, want)
		}
		for j, m := range fetchAll(t, t2, pid) {
			i := 2*j + pid
			if m.Offset != uint64(j) || m.Key != fmt.Sprintf("k%d", i) || string(m.Value) != fmt.Sprintf("v%d", i) {
				t.Fatalf("partition %d record %d recovered as %+v", pid, j, m)
			}
		}
	}
	// Offsets continue where the previous process stopped.
	off, err := t2.ProduceTo(0, "late", nil)
	if err != nil {
		t.Fatal(err)
	}
	if off != n/2 {
		t.Fatalf("post-recovery append got offset %d, want %d", off, n/2)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	const n = 10

	t1, err := NewBroker().CreateTopicDurable("t", 1, 0, syncEvery(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		t1.ProduceTo(0, fmt.Sprintf("k%d", i), []byte("payload"))
	}
	// Simulated kill -9 mid-write: every record is synced (so the file is
	// complete), then the tail record's frame is cut short on disk.
	seg := filepath.Join(dir, "t", "p0000", segmentName(0))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	t2, err := NewBroker().CreateTopicDurable("t", 1, 0, syncEvery(dir))
	if err != nil {
		t.Fatal(err)
	}
	ds := t2.DurabilityStats()
	if ds.TornTruncations != 1 {
		t.Fatalf("torn truncations %d, want 1", ds.TornTruncations)
	}
	if got := t2.EndOffset(0); got != n-1 {
		t.Fatalf("end offset %d after torn tail, want %d", got, n-1)
	}
	msgs := fetchAll(t, t2, 0)
	if len(msgs) != n-1 {
		t.Fatalf("recovered %d records, want %d", len(msgs), n-1)
	}
	for i, m := range msgs {
		if m.Key != fmt.Sprintf("k%d", i) || string(m.Value) != "payload" {
			t.Fatalf("record %d corrupted by truncation: %+v", i, m)
		}
	}
	// The torn offset is reused, and a third open sees a clean log.
	if off, _ := t2.ProduceTo(0, "replacement", nil); off != n-1 {
		t.Fatalf("replacement record got offset %d, want %d", off, n-1)
	}
	if err := t2.Close(); err != nil {
		t.Fatal(err)
	}
	t3, err := NewBroker().CreateTopicDurable("t", 1, 0, syncEvery(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer t3.Close()
	if ds := t3.DurabilityStats(); ds.TornTruncations != 0 || t3.EndOffset(0) != n {
		t.Fatalf("third open: torn=%d end=%d, want torn=0 end=%d", ds.TornTruncations, t3.EndOffset(0), n)
	}
}

func TestDurableGapDiscardsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	// ~19-byte records against a 64-byte segment cap: every few appends roll.
	cfg := &DurableConfig{Dir: dir, SegmentBytes: 64, SyncEveryAppend: true}
	t1, err := NewBroker().CreateTopicDurable("t", 1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		t1.ProduceTo(0, "k", []byte("vvvv"))
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	pdir := filepath.Join(dir, "t", "p0000")
	names, err := listSegments(pdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 4 {
		t.Fatalf("only %d segments, need >= 4 to punch a hole", len(names))
	}
	gapBase, _ := parseSegmentName(names[1])
	if err := os.Remove(filepath.Join(pdir, names[1])); err != nil {
		t.Fatal(err)
	}

	t2, err := NewBroker().CreateTopicDurable("t", 1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	// The readable log ends where the hole starts; everything after the
	// vanished segment is unlinked rather than served with an offset gap.
	if got := t2.EndOffset(0); got != gapBase {
		t.Fatalf("end offset %d after gap, want %d", got, gapBase)
	}
	left, err := listSegments(pdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("%d segment files survive the gap discard, want 1 (%v)", len(left), left)
	}
}

func TestDurableSegmentRollAndRetention(t *testing.T) {
	dir := t.TempDir()
	cfg := &DurableConfig{Dir: dir, SegmentBytes: 256, MaxLogBytes: 1024, SyncEveryAppend: true}
	t1, err := NewBroker().CreateTopicDurable("t", 1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		t1.ProduceTo(0, fmt.Sprintf("k%d", i), []byte("0123456789abcdef"))
	}
	ds := t1.DurabilityStats()
	if ds.SegmentRolls == 0 {
		t.Fatal("no segment rolls despite tiny SegmentBytes")
	}
	if ds.DiskBytes > cfg.MaxLogBytes+int64(cfg.SegmentBytes) {
		t.Fatalf("disk footprint %d not bounded by retention (max %d + one active segment)", ds.DiskBytes, cfg.MaxLogBytes)
	}
	start := t1.StartOffset(0)
	if start == 0 {
		t.Fatal("disk retention never advanced the start offset")
	}
	// The in-memory log tracks exactly what the disk still holds.
	msgs, next, truncated, err := t1.Fetch(0, 0, 1<<20)
	if err != nil || !truncated {
		t.Fatalf("fetch below the retained range: err=%v truncated=%v", err, truncated)
	}
	if msgs[0].Offset != start || next != n {
		t.Fatalf("retained range [%d, %d), want [%d, %d)", msgs[0].Offset, next, start, n)
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}

	t2, err := NewBroker().CreateTopicDurable("t", 1, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	if got := t2.StartOffset(0); got != start {
		t.Fatalf("recovered start offset %d, want %d", got, start)
	}
	if got := t2.EndOffset(0); got != n {
		t.Fatalf("recovered end offset %d, want %d", got, n)
	}
	re := fetchAll(t, t2, 0)
	if len(re) != len(msgs) {
		t.Fatalf("recovered %d retained records, want %d", len(re), len(msgs))
	}
	for i, m := range re {
		if m.Offset != msgs[i].Offset || m.Key != msgs[i].Key {
			t.Fatalf("retained record %d recovered as %+v, want %+v", i, m, msgs[i])
		}
	}
}

// TestGroupCommitCloseFlushesEverything is the group-commit counterpart
// of the SyncEveryAppend tests above: appends are acknowledged before
// their fsync tick, so the write buffer and segment rolls must all land
// on the final flush a clean Close performs — reopening may lose nothing.
func TestGroupCommitCloseFlushesEverything(t *testing.T) {
	dir := t.TempDir()
	t1, err := NewBroker().CreateTopicDurable("t", 4, 0, &DurableConfig{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := 0; i < n; i++ {
		t1.Produce(fmt.Sprintf("k%d", i%17), []byte("v"))
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	t2, err := NewBroker().CreateTopicDurable("t", 4, 0, &DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	ds := t2.DurabilityStats()
	var end uint64
	for _, e := range t2.EndOffsets() {
		end += e
	}
	if ds.RecoveredRecords != n || end != n || ds.TornTruncations != 0 {
		t.Fatalf("recovered %d records, ends sum %d, torn %d; want %d records, 0 torn",
			ds.RecoveredRecords, end, ds.TornTruncations, n)
	}
}

func TestProduceBatchToEmptyBatch(t *testing.T) {
	topic, _ := NewBroker().CreateTopic("t", 2, 0)
	if _, err := topic.ProduceBatchTo(0, nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("nil batch: got %v, want ErrEmptyBatch", err)
	}
	if _, err := topic.ProduceBatchTo(0, []Record{}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: got %v, want ErrEmptyBatch", err)
	}
	if end := topic.EndOffset(0); end != 0 {
		t.Fatalf("rejected batches assigned offsets: end %d", end)
	}
	first, err := topic.ProduceBatchTo(0, []Record{{Key: "a"}, {Key: "b"}})
	if err != nil || first != 0 {
		t.Fatalf("first batch: offset %d err %v", first, err)
	}
	first, err = topic.ProduceBatchTo(0, []Record{{Key: "c"}})
	if err != nil || first != 2 {
		t.Fatalf("second batch: offset %d err %v", first, err)
	}
	if _, err := topic.ProduceBatchTo(9, []Record{{Key: "x"}}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestFetchRejectsNonPositiveMax(t *testing.T) {
	topic, _ := NewBroker().CreateTopic("t", 1, 0)
	topic.ProduceTo(0, "k", []byte("v"))
	for _, max := range []int{0, -1, -100} {
		msgs, next, _, err := topic.Fetch(0, 0, max)
		if !errors.Is(err, ErrInvalidFetchMax) {
			t.Fatalf("max=%d: got %v, want ErrInvalidFetchMax", max, err)
		}
		if len(msgs) != 0 || next != 0 {
			t.Fatalf("max=%d: rejected fetch still returned msgs=%d next=%d", max, len(msgs), next)
		}
	}
	if msgs, _, _, err := topic.Fetch(0, 0, 1); err != nil || len(msgs) != 1 {
		t.Fatalf("valid fetch: %d msgs, err %v", len(msgs), err)
	}
}

func TestLagConsistentUnderConcurrentCommits(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 4, 0)
	const perPart = 100
	for pid := 0; pid < 4; pid++ {
		for i := 0; i < perPart; i++ {
			topic.ProduceTo(pid, "k", nil)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := uint64(1); off <= perPart; off++ {
			for pid := 0; pid < 4; pid++ {
				b.Commit("g", "t", pid, off)
			}
		}
	}()
	// Commits only advance, so every lag observed mid-stream must stay
	// within the true range — the one-lock snapshot keeps a commit landing
	// mid-scan from shifting the baseline between partitions.
	for i := 0; i < 1000; i++ {
		if lag := b.Lag("g", topic); lag > 4*perPart {
			t.Fatalf("lag %d exceeds total backlog %d", lag, 4*perPart)
		}
	}
	wg.Wait()
	if lag := b.Lag("g", topic); lag != 0 {
		t.Fatalf("final lag %d, want 0", lag)
	}
}

// BenchmarkDurableIngest measures the per-append cost of the durability
// modes: group-commit (default), inline fsync, and the in-memory baseline.
func BenchmarkDurableIngest(b *testing.B) {
	value := []byte("0123456789abcdef0123456789abcdef")
	run := func(b *testing.B, d *DurableConfig) {
		topic, err := NewBroker().CreateTopicDurable("bench", 1, 0, d)
		if err != nil {
			b.Fatal(err)
		}
		defer topic.Close()
		b.SetBytes(int64(len(value)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			topic.ProduceTo(0, "key", value)
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, nil) })
	b.Run("group-commit", func(b *testing.B) { run(b, &DurableConfig{Dir: b.TempDir()}) })
	b.Run("fsync-every-append", func(b *testing.B) { run(b, &DurableConfig{Dir: b.TempDir(), SyncEveryAppend: true}) })
}
