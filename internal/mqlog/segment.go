// segment.go is the on-disk unit of the durable log: one append-only
// file per contiguous offset range, named by its base offset, holding
// length-prefixed CRC-framed records. The format is deliberately dumb —
// no index, no compression — because partitions are replayed front to
// back on open and served from memory afterwards; the file's only jobs
// are surviving the process and making torn tails detectable.
//
// Layout:
//
//	header  [4]magic "MQSG"  [4]version  [8]base offset        (16 bytes)
//	record  [4]payload len   [4]crc32(payload)  [payload]      (repeated)
//	payload [4]key len       [key bytes]        [value bytes]
//
// All integers are little-endian. A record whose frame is incomplete or
// whose CRC does not match ends the readable log; recovery truncates the
// file there (a torn tail from a crash mid-write) and everything before
// it is intact by construction.
package mqlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segMagic      uint32 = 0x4d515347 // "MQSG"
	segVersion    uint32 = 1
	segHeaderSize        = 16
	recFrameSize         = 8 // payload length + crc32
	segSuffix            = ".seg"
)

// segmentName renders a base offset as the segment's file name; zero-
// padding keeps lexicographic order equal to numeric order.
func segmentName(base uint64) string {
	return fmt.Sprintf("%020d%s", base, segSuffix)
}

// parseSegmentName recovers the base offset from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	s, ok := strings.CutSuffix(name, segSuffix)
	if !ok || len(s) != 20 {
		return 0, false
	}
	base, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// appendSegmentHeader appends the 16-byte segment header to buf.
func appendSegmentHeader(buf []byte, base uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, segMagic)
	buf = binary.LittleEndian.AppendUint32(buf, segVersion)
	buf = binary.LittleEndian.AppendUint64(buf, base)
	return buf
}

// appendRecord appends one framed record to buf and returns the extended
// slice — the single encode path shared by the writer and by tests that
// construct segment files directly.
func appendRecord(buf []byte, key string, value []byte) []byte {
	payloadLen := 4 + len(key) + len(value)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	crc := crc32.ChecksumIEEE(buf[payloadAt:])
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// recordSize is the on-disk footprint of one record.
func recordSize(key string, value []byte) int64 {
	return int64(recFrameSize + 4 + len(key) + len(value))
}

// segmentScan is the result of reading one segment file front to back.
type segmentScan struct {
	base     uint64    // base offset from the header
	msgs     []Message // decoded records, offsets assigned from base
	validEnd int64     // file offset just past the last intact record
	torn     bool      // the file extended past validEnd with a bad frame
}

// scanSegment reads and validates an entire segment file. It never
// modifies the file; the caller decides whether to truncate a torn tail.
// Frame errors (short header, impossible length, CRC mismatch) end the
// scan rather than failing it — everything before the first bad frame is
// intact and usable. Only a corrupt segment header is a hard error.
func scanSegment(path string) (segmentScan, error) {
	var sc segmentScan
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if len(data) < segHeaderSize {
		return sc, fmt.Errorf("mqlog: segment %s: short header (%d bytes)", filepath.Base(path), len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:4]); magic != segMagic {
		return sc, fmt.Errorf("mqlog: segment %s: bad magic %#x", filepath.Base(path), magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return sc, fmt.Errorf("mqlog: segment %s: unsupported version %d", filepath.Base(path), v)
	}
	sc.base = binary.LittleEndian.Uint64(data[8:16])
	if wantBase, ok := parseSegmentName(filepath.Base(path)); ok && wantBase != sc.base {
		return sc, fmt.Errorf("mqlog: segment %s: header base %d does not match file name", filepath.Base(path), sc.base)
	}
	pos := int64(segHeaderSize)
	off := sc.base
	for {
		rest := data[pos:]
		if len(rest) == 0 {
			break // clean end of file
		}
		if len(rest) < recFrameSize {
			sc.torn = true
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		wantCRC := binary.LittleEndian.Uint32(rest[4:8])
		if payloadLen < 4 || recFrameSize+payloadLen > int64(len(rest)) {
			sc.torn = true
			break
		}
		payload := rest[recFrameSize : recFrameSize+payloadLen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			sc.torn = true
			break
		}
		keyLen := int64(binary.LittleEndian.Uint32(payload[0:4]))
		if 4+keyLen > payloadLen {
			sc.torn = true
			break
		}
		key := string(payload[4 : 4+keyLen])
		value := make([]byte, payloadLen-4-keyLen)
		copy(value, payload[4+keyLen:])
		sc.msgs = append(sc.msgs, Message{Key: key, Value: value, Offset: off})
		off++
		pos += recFrameSize + payloadLen
	}
	sc.validEnd = pos
	return sc, nil
}

// listSegments returns the segment files in dir sorted by base offset.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded names: lexicographic == numeric
	return names, nil
}

// createSegment creates a fresh segment file for base and leaves the file
// positioned for appends, header written but not yet synced.
func createSegment(dir string, base uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(appendSegmentHeader(make([]byte, 0, segHeaderSize), base)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncIgnoringClosed fsyncs f, treating a concurrently closed handle as
// success: the group-commit syncer fsyncs outside the partition lock, so
// a segment roll can close the file between flush and sync — and the
// roll path itself syncs before closing, so the data is already down.
func syncIgnoringClosed(f *os.File) error {
	if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
		return err
	}
	return nil
}

// discardLater removes segment files with a base at or above from —
// recovery's answer to a torn or missing middle segment: the log's
// readable prefix ends at the tear, and anything after it would leave an
// offset gap, so it is unlinked rather than served.
func discardLater(dir string, names []string, from int) error {
	for _, name := range names[from:] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
