package mqlog

import (
	"fmt"
	"testing"
)

func newReaderTopic(t *testing.T, partitions, retention int) (*Broker, *Topic) {
	t.Helper()
	b := NewBroker()
	topic, err := b.CreateTopic("r", partitions, retention)
	if err != nil {
		t.Fatal(err)
	}
	return b, topic
}

func TestReaderBoundedAtFrozenEnd(t *testing.T) {
	_, topic := newReaderTopic(t, 1, 0)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(0, "k", []byte{byte(i)})
	}
	end := topic.EndOffset(0)
	// Produce past the freeze point: the reader must never see these.
	for i := 10; i < 15; i++ {
		topic.ProduceTo(0, "k", []byte{byte(i)})
	}
	r, err := topic.NewReader(0, 0, end)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		msgs := r.Next(3)
		if msgs == nil {
			break
		}
		for _, m := range msgs {
			got = append(got, m.Value[0])
		}
	}
	if len(got) != 10 {
		t.Fatalf("read %d messages, want 10", len(got))
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("message %d has value %d", i, v)
		}
	}
	if r.Offset() != end {
		t.Fatalf("resume offset %d, want %d", r.Offset(), end)
	}
	if r.Truncated() {
		t.Fatal("truncated on an untruncated log")
	}
}

func TestReaderStopsShortOfUnproducedEnd(t *testing.T) {
	_, topic := newReaderTopic(t, 1, 0)
	for i := 0; i < 4; i++ {
		topic.ProduceTo(0, "k", nil)
	}
	// Bound beyond the produced log: reader drains what exists and parks.
	r, err := topic.NewReader(0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		msgs := r.Next(10)
		if msgs == nil {
			break
		}
		n += len(msgs)
	}
	if n != 4 {
		t.Fatalf("read %d, want 4", n)
	}
	if r.Offset() != 4 {
		t.Fatalf("parked at %d, want 4", r.Offset())
	}
	// New messages become visible to subsequent Next calls, still bounded.
	for i := 0; i < 200; i++ {
		topic.ProduceTo(0, "k", nil)
	}
	for {
		msgs := r.Next(64)
		if msgs == nil {
			break
		}
		n += len(msgs)
	}
	if n != 100 {
		t.Fatalf("total read %d, want the 100 bound", n)
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	_, topic := newReaderTopic(t, 1, 8)
	for i := 0; i < 20; i++ {
		topic.ProduceTo(0, "k", []byte{byte(i)})
	}
	// Offsets 0..11 are gone (retention 8 of 20); a reader over [0, 20)
	// resumes at the oldest retained and reports the loss.
	r, err := topic.NewReader(0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		msgs := r.Next(5)
		if msgs == nil {
			break
		}
		for _, m := range msgs {
			got = append(got, m.Value[0])
		}
	}
	if !r.Truncated() {
		t.Fatal("truncation not reported")
	}
	if len(got) != 8 || got[0] != 12 {
		t.Fatalf("got %d messages starting at %d, want 8 starting at 12", len(got), got[0])
	}
}

func TestReaderTruncationPastBound(t *testing.T) {
	_, topic := newReaderTopic(t, 1, 4)
	for i := 0; i < 6; i++ {
		topic.ProduceTo(0, "k", nil)
	}
	// Freeze at 6, then let retention push the start past the bound.
	for i := 0; i < 20; i++ {
		topic.ProduceTo(0, "k", nil)
	}
	r, err := topic.NewReader(0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := r.Next(10); msgs != nil {
		t.Fatalf("reader leaked %d post-bound messages", len(msgs))
	}
	if !r.Truncated() {
		t.Fatal("truncation not reported")
	}
}

func TestReaderClampParksAtFirstWithheldOffset(t *testing.T) {
	_, topic := newReaderTopic(t, 1, 4)
	// Retained suffix [4, 8) straddles the bound 6: a single fetch resets
	// to 4 and returns 4..7; the reader must deliver 4..5, withhold 6..7,
	// and park at 6 — committing Offset() must not skip the withheld two.
	for i := 0; i < 8; i++ {
		topic.ProduceTo(0, "k", []byte{byte(i)})
	}
	r, err := topic.NewReader(0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	msgs := r.Next(10)
	if len(msgs) != 2 || msgs[0].Offset != 4 || msgs[1].Offset != 5 {
		t.Fatalf("clamped batch %v", msgs)
	}
	if !r.Truncated() {
		t.Fatal("truncation not reported")
	}
	if r.Offset() != 6 {
		t.Fatalf("parked at %d, want the first withheld offset 6", r.Offset())
	}
	if more := r.Next(10); more != nil {
		t.Fatalf("reader past its bound returned %v", more)
	}
}

func TestReaderValidation(t *testing.T) {
	_, topic := newReaderTopic(t, 2, 0)
	if _, err := topic.NewReader(2, 0, 1); err == nil {
		t.Fatal("out-of-range pid accepted")
	}
	if _, err := topic.NewReader(0, 5, 1); err == nil {
		t.Fatal("from > end accepted")
	}
	r, err := topic.NewReader(1, 3, 3)
	if err != nil {
		t.Fatalf("empty range rejected: %v", err)
	}
	if msgs := r.Next(10); msgs != nil {
		t.Fatal("empty range returned messages")
	}
}

func TestForceRebalanceBumpsGenerationKeepsAssignment(t *testing.T) {
	b, topic := newReaderTopic(t, 4, 0)
	g, err := NewConsumerGroup(b, topic, "grp")
	if err != nil {
		t.Fatal(err)
	}
	g.Join("a")
	g.Join("b")
	gen := g.Generation()
	before := fmt.Sprintf("%v/%v", g.Assignment("a"), g.Assignment("b"))
	g.ForceRebalance()
	if g.Generation() != gen+1 {
		t.Fatalf("generation %d, want %d", g.Generation(), gen+1)
	}
	after := fmt.Sprintf("%v/%v", g.Assignment("a"), g.Assignment("b"))
	if before != after {
		t.Fatalf("assignment changed across force-rebalance: %s -> %s", before, after)
	}
	// Work fenced at the old generation is fenced out.
	if g.CommitFenced("a", gen, g.Assignment("a")[0], 1) {
		t.Fatal("stale-generation commit accepted")
	}
	if !g.CommitFenced("a", gen+1, g.Assignment("a")[0], 1) {
		t.Fatal("current-generation commit rejected")
	}
}
