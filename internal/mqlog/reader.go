// reader.go is the end-offset-bounded replay reader: a sequential cursor
// over one partition's messages in [from, end), where end is a frozen
// bound the caller snapshotted (Topic.EndOffsets) rather than the moving
// end of the log. This is the primitive batch-layer recomputation needs —
// a batch view is defined by the log prefix it covers, so the reader must
// stop at the freeze point no matter how far producers have advanced the
// partition since — and the primitive log-based recovery already used
// implicitly by clamping fetches inside store.ReplayPartition, now
// exposed where it belongs: next to the log.
package mqlog

import "repro/internal/core"

// Reader iterates one partition's retained messages in [offset, end).
// It is a single-consumer cursor: not safe for concurrent use, cheap to
// create, holding no partition locks between Next calls (each Next is one
// bounded fetch). Retention may truncate the requested range while the
// reader runs; reading resumes at the oldest retained message (Kafka's
// "earliest" reset) and Truncated latches that messages were lost.
type Reader struct {
	t         *Topic
	pid       int
	next      uint64
	end       uint64
	truncated bool
}

// NewReader returns a reader over the partition's messages in [from, end).
// end is an exclusive bound the caller typically snapshots from
// EndOffset/EndOffsets before starting; an end beyond the partition's
// current end simply means the reader drains what is retained and reports
// done. from > end is an error (an empty range is from == end).
func (t *Topic) NewReader(pid int, from, end uint64) (*Reader, error) {
	if pid < 0 || pid >= len(t.parts) {
		return nil, core.Errf("Reader", "pid", "%d out of range", pid)
	}
	if from > end {
		return nil, core.Errf("Reader", "range", "from %d > end %d", from, end)
	}
	return &Reader{t: t, pid: pid, next: from, end: end}, nil
}

// Next returns the next batch of up to max messages, or nil when the
// reader has reached its end bound (or the end of the retained log —
// whichever comes first; Offset distinguishes the two). Messages at or
// past the end bound are never returned, even when retention truncates
// the log under the reader and the fetch resumes past the bound.
func (r *Reader) Next(max int) []Message {
	if max <= 0 {
		return nil
	}
	for r.next < r.end {
		take := max
		if remaining := r.end - r.next; uint64(take) > remaining {
			take = int(remaining)
		}
		msgs, next, trunc := r.t.parts[r.pid].fetch(r.next, take)
		r.truncated = r.truncated || trunc
		if len(msgs) == 0 {
			// Caught up with the retained log short of the bound: the
			// remainder either was never produced or belongs to a live
			// consumer. Park at the resume point.
			r.next = next
			return nil
		}
		if msgs[0].Offset >= r.end {
			// Retention truncated the rest of the range away and the fetch
			// reset past the bound; nothing in [next, end) survives.
			r.next = r.end
			return nil
		}
		// A fetch that resumed after truncation can straddle the bound;
		// clamp the tail off rather than leak post-freeze messages — and
		// park at the first clamped offset, not the fetch's resume point,
		// so Offset never claims delivery of messages the clamp withheld
		// (a consumer committing it would silently skip them).
		clamped := false
		for i, m := range msgs {
			if m.Offset >= r.end {
				r.next = m.Offset
				msgs = msgs[:i]
				clamped = true
				break
			}
		}
		if !clamped {
			r.next = next
		}
		return msgs
	}
	return nil
}

// Offset returns the next offset the reader would consume — the resume
// point to commit when the reader is drained.
func (r *Reader) Offset() uint64 { return r.next }

// Truncated reports whether any part of the requested range was lost to
// retention before the reader got to it.
func (r *Reader) Truncated() bool { return r.truncated }
