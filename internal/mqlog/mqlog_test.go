package mqlog

import (
	"fmt"
	"sync"
	"testing"
)

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("", 1, 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := b.CreateTopic("t", 0, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := b.CreateTopic("t", 1, -1); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := b.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic("t", 1, 0); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	if _, err := b.Topic("missing"); err == nil {
		t.Fatal("unknown topic returned")
	}
}

func TestProduceFetchOrdering(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("events", 1, 0)
	for i := 0; i < 100; i++ {
		topic.Produce("k", []byte(fmt.Sprintf("v%d", i)))
	}
	msgs, next, truncated, err := topic.Fetch(0, 0, 1000)
	if err != nil || truncated {
		t.Fatalf("fetch err=%v truncated=%v", err, truncated)
	}
	if len(msgs) != 100 || next != 100 {
		t.Fatalf("got %d msgs next %d", len(msgs), next)
	}
	for i, m := range msgs {
		if m.Offset != uint64(i) || string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("ordering broken at %d: %+v", i, m)
		}
	}
}

func TestKeyPartitioningStable(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("keyed", 8, 0)
	pid1, _ := topic.Produce("user-42", []byte("a"))
	pid2, _ := topic.Produce("user-42", []byte("b"))
	if pid1 != pid2 {
		t.Fatal("same key routed to different partitions")
	}
	// Different keys should spread across partitions.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		pid, _ := topic.Produce(fmt.Sprintf("k%d", i), nil)
		seen[pid] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d/8 partitions used", len(seen))
	}
}

func TestRetentionTruncates(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("small", 1, 10)
	for i := 0; i < 100; i++ {
		topic.ProduceTo(0, "", []byte{byte(i)})
	}
	if start := topic.StartOffset(0); start != 90 {
		t.Fatalf("start offset %d, want 90", start)
	}
	msgs, next, truncated, _ := topic.Fetch(0, 0, 1000)
	if !truncated {
		t.Fatal("truncation not reported")
	}
	if len(msgs) != 10 || msgs[0].Offset != 90 || next != 100 {
		t.Fatalf("fetch after retention: %d msgs, first %d, next %d", len(msgs), msgs[0].Offset, next)
	}
}

func TestCommitAndLag(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("lagged", 2, 0)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(i%2, "", nil)
	}
	if lag := b.Lag("g1", topic); lag != 10 {
		t.Fatalf("initial lag %d", lag)
	}
	b.Commit("g1", "lagged", 0, 5)
	if lag := b.Lag("g1", topic); lag != 5 {
		t.Fatalf("lag after commit %d", lag)
	}
	if got := b.Committed("g1", "lagged", 0); got != 5 {
		t.Fatalf("committed %d", got)
	}
	if got := b.Committed("g2", "lagged", 0); got != 0 {
		t.Fatal("group isolation broken")
	}
}

func TestConsumerGroupRebalance(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("cg", 4, 0)
	g, err := NewConsumerGroup(b, topic, "workers")
	if err != nil {
		t.Fatal(err)
	}
	g.Join("a")
	if got := g.Assignment("a"); len(got) != 4 {
		t.Fatalf("solo member got %v", got)
	}
	g.Join("b")
	la, lb := len(g.Assignment("a")), len(g.Assignment("b"))
	if la+lb != 4 || la != 2 || lb != 2 {
		t.Fatalf("two-member split %d/%d", la, lb)
	}
	gen := g.Generation()
	g.Join("b") // duplicate join is a no-op
	if g.Generation() != gen {
		t.Fatal("duplicate join bumped generation")
	}
	g.Leave("a")
	if got := g.Assignment("b"); len(got) != 4 {
		t.Fatalf("survivor got %v", got)
	}
	if got := g.Assignment("a"); len(got) != 0 {
		t.Fatal("departed member retains partitions")
	}
}

func TestConsumerGroupExactlyOnePerGroup(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("work", 4, 0)
	const total = 1000
	for i := 0; i < total; i++ {
		topic.Produce(fmt.Sprintf("k%d", i), []byte{1})
	}
	g, _ := NewConsumerGroup(b, topic, "grp")
	g.Join("w1")
	g.Join("w2")
	counts := map[string]int{}
	for _, w := range []string{"w1", "w2"} {
		for {
			batches := g.Poll(w, 100)
			if len(batches) == 0 {
				break
			}
			for _, batch := range batches {
				counts[w] += len(batch.Messages)
				g.Commit(batch.Partition, batch.Next)
			}
		}
	}
	if counts["w1"]+counts["w2"] != total {
		t.Fatalf("delivered %d+%d != %d", counts["w1"], counts["w2"], total)
	}
	if counts["w1"] == 0 || counts["w2"] == 0 {
		t.Fatalf("work not shared: %v", counts)
	}
	if lag := b.Lag("grp", topic); lag != 0 {
		t.Fatalf("residual lag %d", lag)
	}
}

func TestAtLeastOnceAcrossRestart(t *testing.T) {
	// Poll without commit, then poll again: same messages redelivered.
	b := NewBroker()
	topic, _ := b.CreateTopic("alo", 1, 0)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(0, "", []byte{byte(i)})
	}
	g, _ := NewConsumerGroup(b, topic, "grp")
	g.Join("w")
	first := g.Poll("w", 100)
	if len(first) != 1 || len(first[0].Messages) != 10 {
		t.Fatal("first poll incomplete")
	}
	// Crash before commit: poll again from committed offset 0.
	second := g.Poll("w", 100)
	if len(second) != 1 || len(second[0].Messages) != 10 {
		t.Fatal("redelivery after uncommitted poll failed")
	}
	g.Commit(0, second[0].Next)
	if third := g.Poll("w", 100); len(third) != 0 {
		t.Fatal("messages redelivered after commit")
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("conc", 4, 0)
	var wg sync.WaitGroup
	const producers = 8
	const perProducer = 1000
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				topic.Produce(fmt.Sprintf("p%d-%d", p, i), []byte{byte(i)})
			}
		}(p)
	}
	wg.Wait()
	var total uint64
	for pid := 0; pid < 4; pid++ {
		total += topic.EndOffset(pid)
	}
	if total != producers*perProducer {
		t.Fatalf("lost messages: %d != %d", total, producers*perProducer)
	}
	// Offsets within each partition must be dense.
	for pid := 0; pid < 4; pid++ {
		msgs, _, _, _ := topic.Fetch(pid, 0, producers*perProducer)
		for i, m := range msgs {
			if m.Offset != uint64(i) {
				t.Fatalf("partition %d offset gap at %d", pid, i)
			}
		}
	}
}

func BenchmarkProduce(b *testing.B) {
	br := NewBroker()
	topic, _ := br.CreateTopic("bench", 8, 1<<20)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Produce("key", val)
	}
}

func BenchmarkFetch100(b *testing.B) {
	br := NewBroker()
	topic, _ := br.CreateTopic("bench", 1, 0)
	for i := 0; i < 100000; i++ {
		topic.ProduceTo(0, "", []byte{1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Fetch(0, uint64(i*100%90000), 100)
	}
}
