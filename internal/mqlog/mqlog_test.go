package mqlog

import (
	"fmt"
	"sync"
	"testing"
)

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("", 1, 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := b.CreateTopic("t", 0, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := b.CreateTopic("t", 1, -1); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := b.CreateTopic("t", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic("t", 1, 0); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	if _, err := b.Topic("missing"); err == nil {
		t.Fatal("unknown topic returned")
	}
}

func TestProduceFetchOrdering(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("events", 1, 0)
	for i := 0; i < 100; i++ {
		topic.Produce("k", []byte(fmt.Sprintf("v%d", i)))
	}
	msgs, next, truncated, err := topic.Fetch(0, 0, 1000)
	if err != nil || truncated {
		t.Fatalf("fetch err=%v truncated=%v", err, truncated)
	}
	if len(msgs) != 100 || next != 100 {
		t.Fatalf("got %d msgs next %d", len(msgs), next)
	}
	for i, m := range msgs {
		if m.Offset != uint64(i) || string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("ordering broken at %d: %+v", i, m)
		}
	}
}

func TestKeyPartitioningStable(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("keyed", 8, 0)
	pid1, _ := topic.Produce("user-42", []byte("a"))
	pid2, _ := topic.Produce("user-42", []byte("b"))
	if pid1 != pid2 {
		t.Fatal("same key routed to different partitions")
	}
	// Different keys should spread across partitions.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		pid, _ := topic.Produce(fmt.Sprintf("k%d", i), nil)
		seen[pid] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d/8 partitions used", len(seen))
	}
}

func TestRetentionTruncates(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("small", 1, 10)
	for i := 0; i < 100; i++ {
		topic.ProduceTo(0, "", []byte{byte(i)})
	}
	if start := topic.StartOffset(0); start != 90 {
		t.Fatalf("start offset %d, want 90", start)
	}
	msgs, next, truncated, _ := topic.Fetch(0, 0, 1000)
	if !truncated {
		t.Fatal("truncation not reported")
	}
	if len(msgs) != 10 || msgs[0].Offset != 90 || next != 100 {
		t.Fatalf("fetch after retention: %d msgs, first %d, next %d", len(msgs), msgs[0].Offset, next)
	}
}

func TestCommitAndLag(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("lagged", 2, 0)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(i%2, "", nil)
	}
	if lag := b.Lag("g1", topic); lag != 10 {
		t.Fatalf("initial lag %d", lag)
	}
	b.Commit("g1", "lagged", 0, 5)
	if lag := b.Lag("g1", topic); lag != 5 {
		t.Fatalf("lag after commit %d", lag)
	}
	if got := b.Committed("g1", "lagged", 0); got != 5 {
		t.Fatalf("committed %d", got)
	}
	if got := b.Committed("g2", "lagged", 0); got != 0 {
		t.Fatal("group isolation broken")
	}
}

func TestConsumerGroupRebalance(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("cg", 4, 0)
	g, err := NewConsumerGroup(b, topic, "workers")
	if err != nil {
		t.Fatal(err)
	}
	g.Join("a")
	if got := g.Assignment("a"); len(got) != 4 {
		t.Fatalf("solo member got %v", got)
	}
	g.Join("b")
	la, lb := len(g.Assignment("a")), len(g.Assignment("b"))
	if la+lb != 4 || la != 2 || lb != 2 {
		t.Fatalf("two-member split %d/%d", la, lb)
	}
	gen := g.Generation()
	g.Join("b") // duplicate join is a no-op
	if g.Generation() != gen {
		t.Fatal("duplicate join bumped generation")
	}
	g.Leave("a")
	if got := g.Assignment("b"); len(got) != 4 {
		t.Fatalf("survivor got %v", got)
	}
	if got := g.Assignment("a"); len(got) != 0 {
		t.Fatal("departed member retains partitions")
	}
}

func TestConsumerGroupExactlyOnePerGroup(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("work", 4, 0)
	const total = 1000
	for i := 0; i < total; i++ {
		topic.Produce(fmt.Sprintf("k%d", i), []byte{1})
	}
	g, _ := NewConsumerGroup(b, topic, "grp")
	g.Join("w1")
	g.Join("w2")
	counts := map[string]int{}
	for _, w := range []string{"w1", "w2"} {
		for {
			batches := g.Poll(w, 100)
			if len(batches) == 0 {
				break
			}
			for _, batch := range batches {
				counts[w] += len(batch.Messages)
				g.Commit(batch.Partition, batch.Next)
			}
		}
	}
	if counts["w1"]+counts["w2"] != total {
		t.Fatalf("delivered %d+%d != %d", counts["w1"], counts["w2"], total)
	}
	if counts["w1"] == 0 || counts["w2"] == 0 {
		t.Fatalf("work not shared: %v", counts)
	}
	if lag := b.Lag("grp", topic); lag != 0 {
		t.Fatalf("residual lag %d", lag)
	}
}

func TestAtLeastOnceAcrossRestart(t *testing.T) {
	// Poll without commit, then poll again: same messages redelivered.
	b := NewBroker()
	topic, _ := b.CreateTopic("alo", 1, 0)
	for i := 0; i < 10; i++ {
		topic.ProduceTo(0, "", []byte{byte(i)})
	}
	g, _ := NewConsumerGroup(b, topic, "grp")
	g.Join("w")
	first := g.Poll("w", 100)
	if len(first) != 1 || len(first[0].Messages) != 10 {
		t.Fatal("first poll incomplete")
	}
	// Crash before commit: poll again from committed offset 0.
	second := g.Poll("w", 100)
	if len(second) != 1 || len(second[0].Messages) != 10 {
		t.Fatal("redelivery after uncommitted poll failed")
	}
	g.Commit(0, second[0].Next)
	if third := g.Poll("w", 100); len(third) != 0 {
		t.Fatal("messages redelivered after commit")
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("conc", 4, 0)
	var wg sync.WaitGroup
	const producers = 8
	const perProducer = 1000
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				topic.Produce(fmt.Sprintf("p%d-%d", p, i), []byte{byte(i)})
			}
		}(p)
	}
	wg.Wait()
	var total uint64
	for pid := 0; pid < 4; pid++ {
		total += topic.EndOffset(pid)
	}
	if total != producers*perProducer {
		t.Fatalf("lost messages: %d != %d", total, producers*perProducer)
	}
	// Offsets within each partition must be dense.
	for pid := 0; pid < 4; pid++ {
		msgs, _, _, _ := topic.Fetch(pid, 0, producers*perProducer)
		for i, m := range msgs {
			if m.Offset != uint64(i) {
				t.Fatalf("partition %d offset gap at %d", pid, i)
			}
		}
	}
}

func BenchmarkProduce(b *testing.B) {
	br := NewBroker()
	topic, _ := br.CreateTopic("bench", 8, 1<<20)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Produce("key", val)
	}
}

func BenchmarkFetch100(b *testing.B) {
	br := NewBroker()
	topic, _ := br.CreateTopic("bench", 1, 0)
	for i := 0; i < 100000; i++ {
		topic.ProduceTo(0, "", []byte{1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Fetch(0, uint64(i*100%90000), 100)
	}
}

func TestProduceBatchMatchesProduceRouting(t *testing.T) {
	b1, b2 := NewBroker(), NewBroker()
	t1, _ := b1.CreateTopic("t", 4, 0)
	t2, _ := b2.CreateTopic("t", 4, 0)
	var recs []Record
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i%17)
		val := []byte(fmt.Sprintf("v%d", i))
		t1.Produce(key, val)
		recs = append(recs, Record{Key: key, Value: val})
	}
	if n := t2.ProduceBatch(recs); n != len(recs) {
		t.Fatalf("ProduceBatch appended %d of %d", n, len(recs))
	}
	for pid := 0; pid < 4; pid++ {
		if t1.EndOffset(pid) != t2.EndOffset(pid) {
			t.Fatalf("partition %d: Produce end %d != ProduceBatch end %d",
				pid, t1.EndOffset(pid), t2.EndOffset(pid))
		}
		m1, _, _, _ := t1.Fetch(pid, 0, 1000)
		m2, _, _, _ := t2.Fetch(pid, 0, 1000)
		for i := range m1 {
			if m1[i].Key != m2[i].Key || string(m1[i].Value) != string(m2[i].Value) || m1[i].Offset != m2[i].Offset {
				t.Fatalf("partition %d message %d differs: %+v vs %+v", pid, i, m1[i], m2[i])
			}
		}
	}
}

func TestPartitionForAgreesWithProduce(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 8, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		pid, _ := topic.Produce(key, []byte("v"))
		if got := topic.PartitionFor(key); got != pid {
			t.Fatalf("PartitionFor(%q) = %d, Produce routed to %d", key, got, pid)
		}
	}
}

func TestEndOffsetsSnapshot(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 3, 0)
	for i := 0; i < 50; i++ {
		topic.Produce(fmt.Sprintf("k%d", i), []byte("v"))
	}
	ends := topic.EndOffsets()
	if len(ends) != 3 {
		t.Fatalf("EndOffsets returned %d entries", len(ends))
	}
	var total uint64
	for pid, end := range ends {
		if end != topic.EndOffset(pid) {
			t.Fatalf("partition %d snapshot %d != EndOffset %d", pid, end, topic.EndOffset(pid))
		}
		total += end
	}
	if total != 50 {
		t.Fatalf("snapshot totals %d messages, produced 50", total)
	}
}

func TestFetchCopiesOutOfCompaction(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 1, 4)
	for i := 0; i < 4; i++ {
		topic.ProduceTo(0, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	msgs, _, _, _ := topic.Fetch(0, 0, 4)
	// Push retention far enough that the backing slice compacts (head
	// crosses the halfway mark and the live suffix is shifted down).
	for i := 4; i < 40; i++ {
		topic.ProduceTo(0, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	for i, m := range msgs {
		if want := fmt.Sprintf("v%d", i); string(m.Value) != want || m.Offset != uint64(i) {
			t.Fatalf("fetched message %d rewritten under compaction: %+v (want value %q)", i, m, want)
		}
	}
}

// TestFetchHeadersSurviveCompaction pins the header half of fetch's
// aliasing audit: record headers (the trace-context carrier) fetched
// before retention compaction must stay intact while later appends
// shift the partition's backing slice down in place.
func TestFetchHeadersSurviveCompaction(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 1, 4)
	for i := 0; i < 4; i++ {
		topic.ProduceBatchTo(0, []Record{{
			Key:   "k",
			Value: []byte(fmt.Sprintf("v%d", i)),
			Headers: []Header{
				{Key: "trace", Value: []byte(fmt.Sprintf("ctx%d", i))},
				{Key: "other", Value: []byte{byte(i)}},
			},
		}})
	}
	msgs, _, _, _ := topic.Fetch(0, 0, 4)
	// Headerless appends push retention past the halfway mark so the
	// live suffix compacts over the slots the fetch snapshotted.
	for i := 4; i < 40; i++ {
		topic.ProduceTo(0, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	for i, m := range msgs {
		if len(m.Headers) != 2 {
			t.Fatalf("message %d has %d headers after compaction, want 2", i, len(m.Headers))
		}
		h := m.Headers[0]
		if h.Key != "trace" || string(h.Value) != fmt.Sprintf("ctx%d", i) {
			t.Fatalf("message %d trace header rewritten under compaction: %q=%q", i, h.Key, h.Value)
		}
		if m.Headers[1].Key != "other" || m.Headers[1].Value[0] != byte(i) {
			t.Fatalf("message %d second header corrupted: %+v", i, m.Headers[1])
		}
	}
}

func TestOwnerInverseOfAssignment(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 8, 0)
	g, _ := NewConsumerGroup(b, topic, "g")
	if _, _, ok := g.Owner(0); ok {
		t.Fatal("empty group reported an owner")
	}
	g.Join("a")
	g.Join("b")
	g.Join("c")
	if got := g.Members(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Members() = %v", got)
	}
	owned := map[string]int{}
	for pid := 0; pid < 8; pid++ {
		member, gen, ok := g.Owner(pid)
		if !ok {
			t.Fatalf("partition %d unowned", pid)
		}
		if gen != g.Generation() {
			t.Fatalf("Owner generation %d != group generation %d", gen, g.Generation())
		}
		owned[member]++
		found := false
		for _, p := range g.Assignment(member) {
			if p == pid {
				found = true
			}
		}
		if !found {
			t.Fatalf("Owner(%d)=%s but Assignment(%s) lacks it", pid, member, member)
		}
	}
	if len(owned) != 3 {
		t.Fatalf("partitions spread over %d members, want 3", len(owned))
	}
}

func TestCommitFencedRejectsStaleOwner(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 2, 0)
	g, _ := NewConsumerGroup(b, topic, "g")
	g.Join("a")
	gen := g.Generation()
	if !g.CommitFenced("a", gen, 0, 5) {
		t.Fatal("current owner's commit rejected")
	}
	if got := b.Committed("g", "t", 0); got != 5 {
		t.Fatalf("committed %d, want 5", got)
	}
	// A rebalance bumps the generation; commits from the old one must be
	// fenced out even if the member still owns the partition.
	g.Join("b")
	if g.CommitFenced("a", gen, 0, 9) {
		t.Fatal("stale-generation commit accepted")
	}
	if got := b.Committed("g", "t", 0); got != 5 {
		t.Fatalf("stale commit clobbered offset: %d", got)
	}
	// And a member cannot commit a partition assigned to someone else.
	gen = g.Generation()
	var foreign int = -1
	for pid := 0; pid < 2; pid++ {
		if member, _, _ := g.Owner(pid); member != "a" {
			foreign = pid
		}
	}
	if foreign < 0 {
		t.Fatal("expected b to own a partition after joining")
	}
	if g.CommitFenced("a", gen, foreign, 1) {
		t.Fatal("commit to foreign partition accepted")
	}
}

func TestPollRotatesUnderSmallBudget(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 8, 0)
	g, _ := NewConsumerGroup(b, topic, "g")
	g.Join("a")
	for pid := 0; pid < 8; pid++ {
		for i := 0; i < 4; i++ {
			topic.ProduceTo(pid, "k", []byte(fmt.Sprintf("p%d-%d", pid, i)))
		}
	}
	// Budget far below the assignment size: without scan rotation the
	// first partitions would absorb every poll and the tail would starve.
	seen := map[int]bool{}
	for poll := 0; poll < 16; poll++ {
		for _, batch := range g.Poll("a", 2) {
			seen[batch.Partition] = true
			g.Commit(batch.Partition, batch.Next)
		}
	}
	for pid := 0; pid < 8; pid++ {
		if !seen[pid] {
			t.Fatalf("partition %d starved across rotating polls (saw %v)", pid, seen)
		}
	}
	if lag := b.Lag("g", topic); lag != 0 {
		t.Fatalf("lag %d after enough polls to drain everything", lag)
	}
}

func TestProduceBatchToExplicitPartition(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 4, 0)
	recs := []Record{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}}
	first, err := topic.ProduceBatchTo(2, recs)
	if err != nil || first != 0 {
		t.Fatalf("first batch: offset %d err %v", first, err)
	}
	first, err = topic.ProduceBatchTo(2, recs)
	if err != nil || first != 2 {
		t.Fatalf("second batch: offset %d err %v (offsets must be contiguous)", first, err)
	}
	if end := topic.EndOffset(2); end != 4 {
		t.Fatalf("end offset %d, want 4", end)
	}
	msgs, _, _, _ := topic.Fetch(2, 0, 10)
	if len(msgs) != 4 || msgs[1].Key != "b" || string(msgs[3].Value) != "2" {
		t.Fatalf("fetched %+v", msgs)
	}
	if _, err := topic.ProduceBatchTo(9, recs); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestOwnersSnapshotAndCursorCleanup(t *testing.T) {
	b := NewBroker()
	topic, _ := b.CreateTopic("t", 6, 0)
	g, _ := NewConsumerGroup(b, topic, "g")
	g.Join("a")
	g.Join("b")
	owners, gen := g.Owners()
	if gen != g.Generation() || len(owners) != 6 {
		t.Fatalf("Owners() = %v gen %d", owners, gen)
	}
	for pid, member := range owners {
		want, _, _ := g.Owner(pid)
		if member != want {
			t.Fatalf("Owners()[%d] = %q, Owner = %q", pid, member, want)
		}
	}
	// Polling creates a scan cursor; leaving must clean it up, or a
	// churned group (monotonic member names) leaks an entry per member.
	g.Poll("a", 4)
	g.Poll("b", 4)
	g.Leave("a")
	g.mu.Lock()
	_, leaked := g.cursors["a"]
	g.mu.Unlock()
	if leaked {
		t.Fatal("Leave left the member's poll cursor behind")
	}
	owners, _ = g.Owners()
	for pid, member := range owners {
		if member != "b" {
			t.Fatalf("partition %d owned by %q after sole-survivor rebalance", pid, member)
		}
	}
}
