// Package hashutil provides the seeded, non-cryptographic hash functions
// that the sketch packages are built on.
//
// Every probabilistic data structure in this repository (Bloom filters,
// Count-Min, HyperLogLog, KMV, AMS, ...) needs one or more of:
//
//   - a fast 64-bit hash of arbitrary bytes with a seed (Sum64),
//   - a pair of independent 64-bit hashes for Kirsch–Mitzenmacher double
//     hashing (Sum128),
//   - a family of k derived hash values (DoubleHash),
//   - a 4-universal family with provable moment bounds for AMS-style
//     sketches (Tabulation).
//
// The implementation is a from-scratch MurmurHash3 x64/128 variant plus
// splitmix64 finalizers; it depends only on the standard library.
package hashutil

import "encoding/binary"

// Sum64 returns a 64-bit hash of data under the given seed.
func Sum64(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// Sum64String is Sum64 for strings without forcing the caller to convert.
func Sum64String(s string, seed uint64) uint64 {
	// The conversion copies, which is acceptable at the call rates of the
	// sketches in this repo; hot paths pre-hash once and reuse the value.
	return Sum64([]byte(s), seed)
}

// Sum64Uint64 hashes a fixed-width integer key. It uses the splitmix64
// finalizer, which is a bijection, xor-folded with the seed.
func Sum64Uint64(x, seed uint64) uint64 {
	return Mix64(x ^ (seed * 0x9e3779b97f4a7c15))
}

// Mix64 is the splitmix64 finalizer: a fast bijective mixer with full
// avalanche, suitable for integer keys and for deriving seed streams.
func Mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func rotl64(x uint64, r uint) uint64 { return (x << r) | (x >> (64 - r)) }

// Sum128 returns two 64-bit hash values of data under the given seed,
// following the MurmurHash3 x64/128 construction. The two halves are
// close enough to independent for double hashing (Kirsch–Mitzenmacher).
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1 := seed
	h2 := seed
	n := len(data)

	// Body: 16-byte blocks.
	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data[0:8])
		k2 := binary.LittleEndian.Uint64(data[8:16])
		data = data[16:]

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	var k1, k2 uint64
	switch len(data) {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// DoubleHash derives the i-th hash value from a (h1, h2) pair using the
// Kirsch–Mitzenmacher construction g_i(x) = h1 + i*h2 + i^2 ("less hashing,
// same performance"). The quadratic term avoids degenerate cycles when h2
// is small relative to the table size.
func DoubleHash(h1, h2 uint64, i uint) uint64 {
	ii := uint64(i)
	return h1 + ii*h2 + ii*ii
}

// Family is a deterministic family of seeded hash functions derived from a
// base seed. Row i of a Count-Min sketch uses Family.Seed(i); recreating a
// Family with the same base seed recreates identical functions, which is
// what makes sketches mergeable across processes.
type Family struct {
	base uint64
}

// NewFamily returns a hash family derived from base.
func NewFamily(base uint64) Family { return Family{base: base} }

// Seed returns the i-th derived seed.
func (f Family) Seed(i int) uint64 { return Mix64(f.base + uint64(i)*0x9e3779b97f4a7c15) }

// Hash hashes data with the i-th function of the family.
func (f Family) Hash(data []byte, i int) uint64 { return Sum64(data, f.Seed(i)) }

// HashUint64 hashes a 64-bit key with the i-th function of the family.
func (f Family) HashUint64(x uint64, i int) uint64 { return Sum64Uint64(x, f.Seed(i)) }
