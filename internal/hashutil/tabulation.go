package hashutil

// Tabulation implements simple tabulation hashing over 64-bit keys:
// the key is split into 8 bytes and each byte indexes a table of random
// 64-bit words which are XOR-combined. Simple tabulation is 3-independent
// and behaves like a 4-universal family in the Chernoff-style concentration
// arguments the AMS sketch requires (Patrascu–Thorup), making it the right
// tool for frequency-moment estimation where plain multiply-shift is too
// weak for the variance bounds.
type Tabulation struct {
	tables [8][256]uint64
}

// NewTabulation builds a tabulation hash whose tables are filled
// deterministically from seed via splitmix64.
func NewTabulation(seed uint64) *Tabulation {
	t := &Tabulation{}
	state := seed
	for i := 0; i < 8; i++ {
		for j := 0; j < 256; j++ {
			state = Mix64(state + 0x9e3779b97f4a7c15)
			t.tables[i][j] = state
		}
	}
	return t
}

// Hash returns the tabulation hash of x.
func (t *Tabulation) Hash(x uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= t.tables[i][byte(x>>(8*uint(i)))]
	}
	return h
}

// Sign returns +1 or -1 with equal probability, derived from the low bit of
// the tabulation hash. AMS and Count Sketch both need 4-wise independent
// signs.
func (t *Tabulation) Sign(x uint64) int64 {
	if t.Hash(x)&1 == 0 {
		return 1
	}
	return -1
}
