package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSum64Deterministic(t *testing.T) {
	data := []byte("the quick brown fox")
	if Sum64(data, 1) != Sum64(data, 1) {
		t.Fatal("Sum64 not deterministic")
	}
	if Sum64(data, 1) == Sum64(data, 2) {
		t.Fatal("Sum64 ignores seed")
	}
}

func TestSum128TailLengths(t *testing.T) {
	// Exercise every tail branch (0..16 bytes) and ensure each length
	// produces a distinct hash: catches fallthrough bugs in the switch.
	seen := map[uint64]int{}
	buf := make([]byte, 17)
	for i := range buf {
		buf[i] = byte(i + 1)
	}
	for n := 0; n <= 17; n++ {
		h1, h2 := Sum128(buf[:n], 42)
		if prev, dup := seen[h1]; dup {
			t.Fatalf("length %d collides with length %d", n, prev)
		}
		seen[h1] = n
		if h1 == h2 {
			t.Fatalf("h1 == h2 for length %d", n)
		}
	}
}

func TestSum64StringMatchesBytes(t *testing.T) {
	s := "hashutil-string"
	if Sum64String(s, 7) != Sum64([]byte(s), 7) {
		t.Fatal("string and byte hashing disagree")
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sample collisions would
	// indicate a broken constant.
	seen := make(map[uint64]struct{}, 10000)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if _, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = struct{}{}
	}
}

func TestSum64Uint64SeedSensitivity(t *testing.T) {
	if Sum64Uint64(12345, 1) == Sum64Uint64(12345, 2) {
		t.Fatal("integer hash ignores seed")
	}
}

func TestDoubleHashDistinct(t *testing.T) {
	h1, h2 := Sum128([]byte("key"), 9)
	seen := map[uint64]struct{}{}
	for i := uint(0); i < 32; i++ {
		v := DoubleHash(h1, h2, i)
		if _, dup := seen[v]; dup {
			t.Fatalf("double hash repeats at i=%d", i)
		}
		seen[v] = struct{}{}
	}
}

func TestFamilyReproducible(t *testing.T) {
	f1 := NewFamily(99)
	f2 := NewFamily(99)
	for i := 0; i < 8; i++ {
		if f1.Seed(i) != f2.Seed(i) {
			t.Fatalf("family seeds diverge at %d", i)
		}
		if f1.Hash([]byte("x"), i) != f2.Hash([]byte("x"), i) {
			t.Fatalf("family hashes diverge at %d", i)
		}
	}
	if f1.Seed(0) == f1.Seed(1) {
		t.Fatal("distinct family indices share a seed")
	}
}

func TestAvalancheBias(t *testing.T) {
	// Flipping one input bit should flip each output bit with probability
	// close to 1/2. A crude SAC test over integer keys.
	const trials = 4000
	var flips [64]int
	for i := 0; i < trials; i++ {
		x := Mix64(uint64(i) * 0x9e3779b97f4a7c15)
		h := Sum64Uint64(x, 7)
		hFlip := Sum64Uint64(x^1, 7)
		d := h ^ hFlip
		for b := 0; b < 64; b++ {
			if d&(1<<uint(b)) != 0 {
				flips[b]++
			}
		}
	}
	for b := 0; b < 64; b++ {
		p := float64(flips[b]) / trials
		if math.Abs(p-0.5) > 0.08 {
			t.Fatalf("bit %d avalanche probability %.3f, want ~0.5", b, p)
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Bucket 64k hashed integers into 256 bins; the chi-square statistic
	// should be near its expectation (255) for a uniform hash.
	const n = 1 << 16
	const bins = 256
	var counts [bins]int
	for i := 0; i < n; i++ {
		counts[Sum64Uint64(uint64(i), 3)%bins]++
	}
	expected := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df = 255; mean 255, sd = sqrt(2*255) ~ 22.6. Allow 6 sigma.
	if chi2 > 255+6*22.6 {
		t.Fatalf("chi-square %.1f too large for uniform hash", chi2)
	}
}

func TestTabulationDeterministic(t *testing.T) {
	a := NewTabulation(5)
	b := NewTabulation(5)
	c := NewTabulation(6)
	for i := uint64(0); i < 100; i++ {
		if a.Hash(i) != b.Hash(i) {
			t.Fatal("tabulation not deterministic")
		}
	}
	diff := false
	for i := uint64(0); i < 100; i++ {
		if a.Hash(i) != c.Hash(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("tabulation ignores seed")
	}
}

func TestTabulationSignBalance(t *testing.T) {
	tab := NewTabulation(11)
	sum := int64(0)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		sum += tab.Sign(i)
	}
	// Expected 0 with sd sqrt(n) ~ 316; allow 6 sigma.
	if sum > 1900 || sum < -1900 {
		t.Fatalf("sign sum %d too far from 0", sum)
	}
}

func TestQuickSeedIndependence(t *testing.T) {
	// Property: for random keys, two different seeds rarely agree.
	f := func(x uint64) bool {
		return Sum64Uint64(x, 1) != Sum64Uint64(x, 2) || x == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSum64_16B(b *testing.B) {
	data := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		Sum64(data, uint64(i))
	}
}

func BenchmarkSum64Uint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Sum64Uint64(uint64(i), 7)
	}
}

func BenchmarkTabulation(b *testing.B) {
	tab := NewTabulation(1)
	for i := 0; i < b.N; i++ {
		tab.Hash(uint64(i))
	}
}
