package filter

import (
	"repro/internal/core"
	"repro/internal/hashutil"
)

// Cuckoo is a cuckoo filter (Fan–Andersen–Kaminsky–Mitzenmacher, cited by
// the survey as "practically better than Bloom"): it stores short
// fingerprints in a two-choice bucketed table with cuckoo eviction, giving
// lower space at low target FPR than Bloom filters, plus true deletion.
//
// Buckets hold 4 fingerprints (the paper's sweet spot). A key's two bucket
// candidates are related by i2 = i1 XOR hash(fingerprint), so relocation
// needs only the fingerprint — the defining trick of the structure.
type Cuckoo struct {
	buckets  [][cuckooSlots]uint16
	mask     uint64 // bucket-count mask (power of two)
	seed     uint64
	n        uint64
	kicks    int // max relocation chain length before stashing
	overflow bool
	// stash holds fingerprints left homeless by failed eviction walks
	// (e.g. the same key inserted more than 2*cuckooSlots times). Without
	// it, a failed walk would silently drop a previously inserted key's
	// fingerprint, breaking the no-false-negative guarantee.
	stash []stashEntry
}

type stashEntry struct {
	index uint64 // one of the fingerprint's two candidate buckets
	fp    uint16
}

const cuckooSlots = 4

// NewCuckoo returns a cuckoo filter with capacity for roughly
// expectedItems at ~95% load.
func NewCuckoo(expectedItems int, seed uint64) (*Cuckoo, error) {
	if expectedItems <= 0 {
		return nil, core.Errf("Cuckoo", "expectedItems", "%d must be positive", expectedItems)
	}
	need := uint64(float64(expectedItems) / 0.95 / cuckooSlots)
	nb := uint64(1)
	for nb < need {
		nb <<= 1
	}
	if nb < 2 {
		nb = 2
	}
	return &Cuckoo{
		buckets: make([][cuckooSlots]uint16, nb),
		mask:    nb - 1,
		seed:    seed,
		kicks:   500,
	}, nil
}

// fingerprint returns a nonzero 16-bit fingerprint of the key.
func (c *Cuckoo) fingerprint(h uint64) uint16 {
	fp := uint16(h >> 48)
	if fp == 0 {
		fp = 1
	}
	return fp
}

func (c *Cuckoo) altIndex(i uint64, fp uint16) uint64 {
	return (i ^ hashutil.Sum64Uint64(uint64(fp), c.seed^0xdead)) & c.mask
}

func (c *Cuckoo) indexes(key []byte) (uint64, uint64, uint16) {
	h := hashutil.Sum64(key, c.seed)
	fp := c.fingerprint(h)
	i1 := h & c.mask
	return i1, c.altIndex(i1, fp), fp
}

func (c *Cuckoo) insertAt(i uint64, fp uint16) bool {
	b := &c.buckets[i]
	for s := 0; s < cuckooSlots; s++ {
		if b[s] == 0 {
			b[s] = fp
			return true
		}
	}
	return false
}

// Add inserts a key. It returns false when the insertion spilled to the
// overflow stash (the filter is effectively full); the key is still
// queryable either way, so no-false-negatives holds for every added key.
func (c *Cuckoo) Add(key []byte) bool {
	i1, i2, fp := c.indexes(key)
	if c.insertAt(i1, fp) || c.insertAt(i2, fp) {
		c.n++
		return true
	}
	// Random-walk eviction.
	i := i1
	state := hashutil.Mix64(uint64(fp) ^ i1 ^ c.seed)
	for k := 0; k < c.kicks; k++ {
		state = hashutil.Mix64(state)
		slot := state % cuckooSlots
		fp, c.buckets[i][slot] = c.buckets[i][slot], fp
		i = c.altIndex(i, fp)
		if c.insertAt(i, fp) {
			c.n++
			return true
		}
	}
	// The walk failed; fp is some (possibly different) key's homeless
	// fingerprint. Stash it so that key stays findable.
	c.stash = append(c.stash, stashEntry{index: i, fp: fp})
	c.n++
	c.overflow = true
	return false
}

// stashContains reports whether the stash holds fp for a key whose
// candidate buckets are i1/i2.
func (c *Cuckoo) stashContains(i1, i2 uint64, fp uint16) bool {
	for _, e := range c.stash {
		if e.fp == fp && (e.index == i1 || e.index == i2) {
			return true
		}
	}
	return false
}

// Contains reports whether key may be present.
func (c *Cuckoo) Contains(key []byte) bool {
	i1, i2, fp := c.indexes(key)
	for s := 0; s < cuckooSlots; s++ {
		if c.buckets[i1][s] == fp || c.buckets[i2][s] == fp {
			return true
		}
	}
	return len(c.stash) > 0 && c.stashContains(i1, i2, fp)
}

// Remove deletes one copy of key's fingerprint. It returns false when the
// fingerprint was not present. As with all cuckoo filters, removing a key
// that was never added may delete a colliding key's fingerprint.
func (c *Cuckoo) Remove(key []byte) bool {
	i1, i2, fp := c.indexes(key)
	for _, i := range [2]uint64{i1, i2} {
		for s := 0; s < cuckooSlots; s++ {
			if c.buckets[i][s] == fp {
				c.buckets[i][s] = 0
				if c.n > 0 {
					c.n--
				}
				return true
			}
		}
	}
	for si, e := range c.stash {
		if e.fp == fp && (e.index == i1 || e.index == i2) {
			c.stash = append(c.stash[:si], c.stash[si+1:]...)
			if c.n > 0 {
				c.n--
			}
			return true
		}
	}
	return false
}

// Bytes returns the table footprint including the overflow stash.
func (c *Cuckoo) Bytes() int { return len(c.buckets)*cuckooSlots*2 + len(c.stash)*10 + 32 }

// Count returns the number of stored fingerprints.
func (c *Cuckoo) Count() uint64 { return c.n }

// Overflowed reports whether any insertion has failed.
func (c *Cuckoo) Overflowed() bool { return c.overflow }

// LoadFactor returns the fraction of occupied slots.
func (c *Cuckoo) LoadFactor() float64 {
	used := 0
	for i := range c.buckets {
		for s := 0; s < cuckooSlots; s++ {
			if c.buckets[i][s] != 0 {
				used++
			}
		}
	}
	return float64(used) / float64(len(c.buckets)*cuckooSlots)
}
