package filter

import (
	"fmt"
	"testing"
	"testing/quick"
)

func keysRange(lo, hi int) [][]byte {
	out := make([][]byte, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, []byte(fmt.Sprintf("key-%d", i)))
	}
	return out
}

func TestBloomParamValidation(t *testing.T) {
	if _, err := NewBloom(0, 0.01, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewBloom(100, 0, 1); err == nil {
		t.Fatal("fp=0 accepted")
	}
	if _, err := NewBloom(100, 1, 1); err == nil {
		t.Fatal("fp=1 accepted")
	}
	if _, err := NewBloomMK(0, 3, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewBloomMK(100, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b, _ := NewBloom(10000, 0.01, 7)
	ins := keysRange(0, 10000)
	for _, k := range ins {
		b.Add(k)
	}
	for _, k := range ins {
		if !b.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestBloomFPRNearTarget(t *testing.T) {
	b, _ := NewBloom(10000, 0.01, 7)
	for _, k := range keysRange(0, 10000) {
		b.Add(k)
	}
	fp := 0
	probes := keysRange(1000000, 1020000)
	for _, k := range probes {
		if b.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(len(probes))
	if rate > 0.02 {
		t.Fatalf("FPR %.4f, want <= ~0.02 at target 0.01", rate)
	}
	if est := b.EstimatedFPRate(); est > 0.02 {
		t.Fatalf("estimated FPR %.4f off", est)
	}
}

func TestBloomIndependentHashesEquivalentFPR(t *testing.T) {
	// Ablation: double hashing should match k independent hashes.
	mk := func(indep bool) float64 {
		b, _ := NewBloomMK(1<<17, 7, 3)
		b.SetIndependentHashes(indep)
		for _, k := range keysRange(0, 10000) {
			b.Add(k)
		}
		fp := 0
		probes := keysRange(500000, 520000)
		for _, k := range probes {
			if b.Contains(k) {
				fp++
			}
		}
		return float64(fp) / float64(len(probes))
	}
	dh := mk(false)
	ih := mk(true)
	if dh > ih*3+0.005 {
		t.Fatalf("double hashing FPR %.4f much worse than independent %.4f", dh, ih)
	}
}

func TestBloomMergeUnion(t *testing.T) {
	a, _ := NewBloomMK(1<<16, 5, 9)
	b, _ := NewBloomMK(1<<16, 5, 9)
	for _, k := range keysRange(0, 500) {
		a.Add(k)
	}
	for _, k := range keysRange(500, 1000) {
		b.Add(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range keysRange(0, 1000) {
		if !a.Contains(k) {
			t.Fatalf("merged filter missing %q", k)
		}
	}
	c, _ := NewBloomMK(1<<15, 5, 9)
	if err := a.Merge(c); err == nil {
		t.Fatal("merged incompatible geometry")
	}
}

func TestPartitionedBloomBasics(t *testing.T) {
	p, _ := NewPartitionedBloom(1<<14, 5, 11)
	ins := keysRange(0, 5000)
	for _, k := range ins {
		p.Add(k)
	}
	for _, k := range ins {
		if !p.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	fp := 0
	probes := keysRange(100000, 110000)
	for _, k := range probes {
		if p.Contains(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(probes)); rate > 0.1 {
		t.Fatalf("partitioned FPR %.4f too high", rate)
	}
}

func TestCountingBloomAddRemove(t *testing.T) {
	c, _ := NewCountingBloom(1<<16, 4, 13)
	ins := keysRange(0, 2000)
	for _, k := range ins {
		c.Add(k)
	}
	for _, k := range ins {
		if !c.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	// Remove the first half; they should (mostly) disappear while the
	// second half must all remain.
	for _, k := range ins[:1000] {
		c.Remove(k)
	}
	for _, k := range ins[1000:] {
		if !c.Contains(k) {
			t.Fatalf("removal corrupted other key %q", k)
		}
	}
	gone := 0
	for _, k := range ins[:1000] {
		if !c.Contains(k) {
			gone++
		}
	}
	if gone < 900 {
		t.Fatalf("only %d/1000 removed keys vanished", gone)
	}
}

func TestCountingBloomSaturationSticky(t *testing.T) {
	c, _ := NewCountingBloom(64, 2, 13)
	k := []byte("hot")
	for i := 0; i < 100; i++ {
		c.Add(k)
	}
	// 100 adds saturate 4-bit counters; 100 removes must NOT produce a
	// false negative for a key that is still logically present 0 times but
	// whose counters saturated (stickiness preserves colliding keys).
	for i := 0; i < 100; i++ {
		c.Remove(k)
	}
	if !c.Contains(k) {
		// Sticky saturation means the key is still reported present.
		t.Fatal("saturated counter was decremented to zero")
	}
}

func TestStableBloomRecentVsStale(t *testing.T) {
	s, _ := NewStableBloom(1<<14, 3, 3, 10, 17)
	// Insert an "old" key, then flood with traffic, then check decay.
	old := []byte("old-key")
	s.Add(old)
	for _, k := range keysRange(0, 200000) {
		s.Add(k)
	}
	recent := keysRange(199000, 200000)
	miss := 0
	for _, k := range recent {
		if !s.Contains(k) {
			miss++
		}
	}
	if miss > 100 {
		t.Fatalf("stable bloom forgot %d/1000 recent keys", miss)
	}
	if s.Contains(old) {
		t.Fatal("stable bloom never decayed the stale key")
	}
}

func TestCuckooBasics(t *testing.T) {
	c, _ := NewCuckoo(10000, 19)
	ins := keysRange(0, 10000)
	for _, k := range ins {
		if !c.Add(k) {
			t.Fatalf("insertion failed at load %.2f", c.LoadFactor())
		}
	}
	for _, k := range ins {
		if !c.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	fp := 0
	probes := keysRange(1000000, 1050000)
	for _, k := range probes {
		if c.Contains(k) {
			fp++
		}
	}
	// 16-bit fingerprints, 8 slots scanned: FPR ~ 8/2^16 ~ 0.00012.
	if rate := float64(fp) / float64(len(probes)); rate > 0.002 {
		t.Fatalf("cuckoo FPR %.5f too high", rate)
	}
}

func TestCuckooRemove(t *testing.T) {
	c, _ := NewCuckoo(1000, 19)
	k := []byte("target")
	if !c.Add(k) {
		t.Fatal("add failed")
	}
	if !c.Remove(k) {
		t.Fatal("remove failed")
	}
	if c.Contains(k) {
		t.Fatal("still present after removal")
	}
	if c.Remove(k) {
		t.Fatal("second removal succeeded")
	}
}

func TestCuckooHighLoad(t *testing.T) {
	c, _ := NewCuckoo(1000, 23)
	inserted := 0
	for _, k := range keysRange(0, 2000) {
		if c.Add(k) {
			inserted++
		}
	}
	if !c.Overflowed() {
		t.Fatal("expected overflow past capacity")
	}
	// Must still have achieved a high load factor before failing.
	if c.LoadFactor() < 0.8 {
		t.Fatalf("overflowed at low load %.2f", c.LoadFactor())
	}
	_ = inserted
}

func TestQuickBloomNoFalseNegatives(t *testing.T) {
	f := func(keys [][]byte) bool {
		b, _ := NewBloom(len(keys)+1, 0.01, 3)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCuckooAddedAlwaysFound(t *testing.T) {
	f := func(keys [][]byte) bool {
		c, _ := NewCuckoo(4*len(keys)+8, 5)
		added := make([][]byte, 0, len(keys))
		for _, k := range keys {
			if c.Add(k) {
				added = append(added, k)
			}
		}
		for _, k := range added {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	f, _ := NewBloom(1<<20, 0.01, 1)
	key := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		f.Add(key)
	}
}

func BenchmarkBloomContains(b *testing.B) {
	f, _ := NewBloom(1<<20, 0.01, 1)
	for _, k := range keysRange(0, 100000) {
		f.Add(k)
	}
	key := []byte("key-50000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(key)
	}
}

func BenchmarkCuckooAdd(b *testing.B) {
	f, _ := NewCuckoo(1<<20, 1)
	key := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		key[2] = byte(i >> 16)
		f.Add(key)
	}
}

func TestBloomEstimatedFPRTracksLoad(t *testing.T) {
	b, _ := NewBloomMK(1<<12, 4, 5)
	prev := b.EstimatedFPRate()
	for load := 0; load < 5; load++ {
		for _, k := range keysRange(load*200, (load+1)*200) {
			b.Add(k)
		}
		cur := b.EstimatedFPRate()
		if cur < prev {
			t.Fatalf("estimated FPR decreased under load: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

func TestCuckooStashKeepsVictimFindable(t *testing.T) {
	// Insert the same key far beyond 2*bucket capacity: the eviction walk
	// must spill to the stash without losing other keys.
	c, _ := NewCuckoo(64, 3)
	other := keysRange(0, 32)
	for _, k := range other {
		c.Add(k)
	}
	dup := []byte("hammered")
	for i := 0; i < 30; i++ {
		c.Add(dup)
	}
	for _, k := range other {
		if !c.Contains(k) {
			t.Fatalf("key %q lost during pathological duplicates", k)
		}
	}
	if !c.Contains(dup) {
		t.Fatal("hammered key not findable")
	}
}

func TestStableBloomValidation(t *testing.T) {
	if _, err := NewStableBloom(0, 3, 3, 10, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewStableBloom(100, 3, 0, 10, 1); err == nil {
		t.Fatal("max=0 accepted")
	}
	if _, err := NewStableBloom(100, 3, 3, 0, 1); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestBloomSerializationRoundTrip(t *testing.T) {
	b, _ := NewBloom(5000, 0.01, 31)
	ins := keysRange(0, 5000)
	for _, k := range ins {
		b.Add(k)
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBloom(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ins {
		if !back.Contains(k) {
			t.Fatalf("decoded filter lost %q", k)
		}
	}
	if back.Count() != b.Count() {
		t.Fatal("count changed in round trip")
	}
	// Decoded filter must merge with the original geometry.
	if err := back.Merge(b); err != nil {
		t.Fatalf("decoded filter incompatible with source: %v", err)
	}
}

func TestBloomSerializationRejectsBadInput(t *testing.T) {
	b, _ := NewBloomMK(1<<10, 4, 9)
	b.Add([]byte("x"))
	data, _ := b.MarshalBinary()
	if _, err := UnmarshalBloom(data[:5]); err == nil {
		t.Fatal("truncated accepted")
	}
	bad := append([]byte(nil), data...)
	bad[1] ^= 0xff
	if _, err := UnmarshalBloom(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	short := append([]byte(nil), data[:len(data)-8]...)
	if _, err := UnmarshalBloom(short); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
