package filter

import (
	"repro/internal/core"
	"repro/internal/hashutil"
)

// CountingBloom replaces each bit with a small counter so keys can be
// removed (Bonomi et al., cited by the survey as the improved counting
// Bloom construction). Four-bit counters are the classic choice: overflow
// probability is negligible at the recommended load, and we saturate rather
// than wrap to preserve the no-false-negative guarantee for keys that were
// never deleted.
type CountingBloom struct {
	counters []uint8 // one nibble-sized counter per cell, stored one per byte
	m        uint64
	k        uint
	seed     uint64
	n        uint64
}

// NewCountingBloom returns a counting Bloom filter with m counters and k
// hashes per key.
func NewCountingBloom(m int, k uint, seed uint64) (*CountingBloom, error) {
	if m <= 0 {
		return nil, core.Errf("CountingBloom", "m", "%d must be positive", m)
	}
	if k == 0 || k > 64 {
		return nil, core.Errf("CountingBloom", "k", "%d not in [1,64]", k)
	}
	return &CountingBloom{counters: make([]uint8, m), m: uint64(m), k: k, seed: seed}, nil
}

const countingBloomMax = 15 // 4-bit saturation point

func (c *CountingBloom) each(key []byte, fn func(pos uint64)) {
	h1, h2 := hashutil.Sum128(key, c.seed)
	for i := uint(0); i < c.k; i++ {
		fn(hashutil.DoubleHash(h1, h2, i) % c.m)
	}
}

// Add inserts a key.
func (c *CountingBloom) Add(key []byte) {
	c.n++
	c.each(key, func(pos uint64) {
		if c.counters[pos] < countingBloomMax {
			c.counters[pos]++
		}
	})
}

// Remove deletes one occurrence of key. Removing a key that was never added
// can introduce false negatives for other keys, as in any counting Bloom
// filter; callers are expected to pair removals with prior insertions.
func (c *CountingBloom) Remove(key []byte) {
	if c.n > 0 {
		c.n--
	}
	c.each(key, func(pos uint64) {
		// Saturated counters are sticky: decrementing one could undercount
		// a colliding key. This trades a small permanent false-positive
		// rate for preserving no-false-negatives.
		if c.counters[pos] > 0 && c.counters[pos] < countingBloomMax {
			c.counters[pos]--
		}
	})
}

// Contains reports whether key may be present.
func (c *CountingBloom) Contains(key []byte) bool {
	ok := true
	c.each(key, func(pos uint64) {
		if c.counters[pos] == 0 {
			ok = false
		}
	})
	return ok
}

// Bytes returns the counter-array footprint.
func (c *CountingBloom) Bytes() int { return len(c.counters) + 24 }

// Count returns the net number of keys (adds minus removes).
func (c *CountingBloom) Count() uint64 { return c.n }

// StableBloom is a time-decaying Bloom filter for unbounded streams
// (Dautrich–Ravishankar's inferential time-decaying family, simplified to
// the classic stable-Bloom rule): before each insertion, p random cells are
// decremented, so stale keys fade and the filter reaches a stable occupancy
// instead of saturating. Recent keys are reliably found; old keys decay to
// misses — the behaviour wanted for "have we seen this URL recently?"
// duplicate suppression.
type StableBloom struct {
	cells []uint8
	m     uint64
	k     uint
	max   uint8
	p     int // cells decremented per insertion
	seed  uint64
	rng   uint64 // cheap xorshift state for decrement positions
	n     uint64
}

// NewStableBloom returns a stable Bloom filter with m cells, k hashes,
// cell ceiling max, and p decrements per insertion.
func NewStableBloom(m int, k uint, max uint8, p int, seed uint64) (*StableBloom, error) {
	if m <= 0 {
		return nil, core.Errf("StableBloom", "m", "%d must be positive", m)
	}
	if k == 0 || k > 64 {
		return nil, core.Errf("StableBloom", "k", "%d not in [1,64]", k)
	}
	if max == 0 {
		return nil, core.Errf("StableBloom", "max", "must be positive")
	}
	if p <= 0 {
		return nil, core.Errf("StableBloom", "p", "%d must be positive", p)
	}
	return &StableBloom{
		cells: make([]uint8, m),
		m:     uint64(m),
		k:     k,
		max:   max,
		p:     p,
		seed:  seed,
		rng:   seed | 1,
	}, nil
}

func (s *StableBloom) nextRand() uint64 {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

// Add inserts a key, first decaying p random cells.
func (s *StableBloom) Add(key []byte) {
	s.n++
	for i := 0; i < s.p; i++ {
		pos := s.nextRand() % s.m
		if s.cells[pos] > 0 {
			s.cells[pos]--
		}
	}
	h1, h2 := hashutil.Sum128(key, s.seed)
	for i := uint(0); i < s.k; i++ {
		s.cells[hashutil.DoubleHash(h1, h2, i)%s.m] = s.max
	}
}

// Contains reports whether key has been seen recently (not yet decayed).
func (s *StableBloom) Contains(key []byte) bool {
	h1, h2 := hashutil.Sum128(key, s.seed)
	for i := uint(0); i < s.k; i++ {
		if s.cells[hashutil.DoubleHash(h1, h2, i)%s.m] == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the cell-array footprint.
func (s *StableBloom) Bytes() int { return len(s.cells) + 32 }

// Count returns the number of Add calls.
func (s *StableBloom) Count() uint64 { return s.n }
