package filter

import (
	"encoding/binary"

	"repro/internal/core"
)

// Bloom binary layout:
//
//	[magic u32][k u32][flags u8][seed u64][n u64][words u32][bits words x u64]
const bloomMagic = 0x424c4d46 // "BLMF"

const bloomFlagIndep = 1

// MarshalBinary encodes the filter, including its seed, so the decoded
// filter is immediately queryable.
func (b *Bloom) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+4+1+8+8+4+len(b.bits)*8)
	binary.LittleEndian.PutUint32(out[0:], bloomMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(b.k))
	if b.indep {
		out[8] = bloomFlagIndep
	}
	binary.LittleEndian.PutUint64(out[9:], b.seed)
	binary.LittleEndian.PutUint64(out[17:], b.n)
	binary.LittleEndian.PutUint32(out[25:], uint32(len(b.bits)))
	pos := 29
	for _, w := range b.bits {
		binary.LittleEndian.PutUint64(out[pos:], w)
		pos += 8
	}
	return out, nil
}

// UnmarshalBloom decodes a filter serialized by MarshalBinary.
func UnmarshalBloom(data []byte) (*Bloom, error) {
	if len(data) < 29 {
		return nil, core.ErrCorrupt
	}
	if binary.LittleEndian.Uint32(data[0:]) != bloomMagic {
		return nil, core.ErrCorrupt
	}
	k := uint(binary.LittleEndian.Uint32(data[4:]))
	words := int(binary.LittleEndian.Uint32(data[25:]))
	if k == 0 || k > 64 || words <= 0 || len(data) != 29+words*8 {
		return nil, core.ErrCorrupt
	}
	b := &Bloom{
		bits:  make([]uint64, words),
		m:     uint64(words * 64),
		k:     k,
		indep: data[8]&bloomFlagIndep != 0,
		seed:  binary.LittleEndian.Uint64(data[9:]),
		n:     binary.LittleEndian.Uint64(data[17:]),
	}
	pos := 29
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(data[pos:])
		pos += 8
	}
	return b, nil
}
