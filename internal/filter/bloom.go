// Package filter implements the set-membership filters of the tutorial's
// "Filtering" row of Table 1: the classic Bloom filter, the counting Bloom
// filter (deletions), the partitioned Bloom filter, a time-decaying stable
// Bloom filter for unbounded streams, and the cuckoo filter, which the
// survey cites as "practically better than Bloom".
//
// All variants use Kirsch–Mitzenmacher double hashing ("less hashing, same
// performance", also cited by the survey): two base hashes generate the k
// probe positions with no loss in asymptotic false-positive rate. The
// ablation bench compares this against k fully independent hashes.
package filter

import (
	"math"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// Bloom is a classic Bloom filter over byte keys: k bit positions per key,
// no false negatives, false-positive rate ~(1 - e^{-kn/m})^k.
type Bloom struct {
	bits  []uint64
	m     uint64 // number of bits
	k     uint   // hashes per key
	seed  uint64
	n     uint64 // inserted keys
	indep bool   // use k independent hashes instead of double hashing
}

// NewBloom returns a Bloom filter sized for expectedItems at the target
// false-positive rate fpRate, using the standard optimal m and k.
func NewBloom(expectedItems int, fpRate float64, seed uint64) (*Bloom, error) {
	if expectedItems <= 0 {
		return nil, core.Errf("Bloom", "expectedItems", "%d must be positive", expectedItems)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, core.Errf("Bloom", "fpRate", "%v not in (0,1)", fpRate)
	}
	mBits := uint64(math.Ceil(-float64(expectedItems) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	k := uint(math.Round(float64(mBits) / float64(expectedItems) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewBloomMK(int(mBits), k, seed)
}

// NewBloomMK returns a Bloom filter with explicit bit count and hash count.
func NewBloomMK(mBits int, k uint, seed uint64) (*Bloom, error) {
	if mBits <= 0 {
		return nil, core.Errf("Bloom", "mBits", "%d must be positive", mBits)
	}
	if k == 0 || k > 64 {
		return nil, core.Errf("Bloom", "k", "%d not in [1,64]", k)
	}
	words := (mBits + 63) / 64
	return &Bloom{bits: make([]uint64, words), m: uint64(words * 64), k: k, seed: seed}, nil
}

// SetIndependentHashes switches the filter to k fully independent hash
// functions (ablation baseline for double hashing). Must be called before
// any Add.
func (b *Bloom) SetIndependentHashes(on bool) { b.indep = on }

func (b *Bloom) positions(key []byte, fn func(pos uint64) bool) {
	if b.indep {
		fam := hashutil.NewFamily(b.seed)
		for i := uint(0); i < b.k; i++ {
			if !fn(fam.Hash(key, int(i)) % b.m) {
				return
			}
		}
		return
	}
	h1, h2 := hashutil.Sum128(key, b.seed)
	for i := uint(0); i < b.k; i++ {
		if !fn(hashutil.DoubleHash(h1, h2, i) % b.m) {
			return
		}
	}
}

// Add inserts a key.
func (b *Bloom) Add(key []byte) {
	b.n++
	b.positions(key, func(pos uint64) bool {
		b.bits[pos/64] |= 1 << (pos % 64)
		return true
	})
}

// AddString inserts a string key.
func (b *Bloom) AddString(key string) { b.Add([]byte(key)) }

// Contains reports whether key may have been inserted. False positives are
// possible; false negatives are not.
func (b *Bloom) Contains(key []byte) bool {
	found := true
	b.positions(key, func(pos uint64) bool {
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			found = false
			return false
		}
		return true
	})
	return found
}

// ContainsString reports membership of a string key.
func (b *Bloom) ContainsString(key string) bool { return b.Contains([]byte(key)) }

// Bytes returns the bit-array footprint.
func (b *Bloom) Bytes() int { return len(b.bits)*8 + 24 }

// Count returns the number of Add calls.
func (b *Bloom) Count() uint64 { return b.n }

// EstimatedFPRate returns the theoretical false-positive rate at the
// current load: (1 - e^{-kn/m})^k.
func (b *Bloom) EstimatedFPRate() float64 {
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.n)/float64(b.m)), float64(b.k))
}

// Merge ORs another filter with identical geometry into b; the result
// represents the union of the two key sets.
func (b *Bloom) Merge(other *Bloom) error {
	if other == nil || b.m != other.m || b.k != other.k || b.seed != other.seed || b.indep != other.indep {
		return core.ErrIncompatible
	}
	for i, w := range other.bits {
		b.bits[i] |= w
	}
	b.n += other.n
	return nil
}

// PartitionedBloom splits the m bits into k disjoint slices, one per hash
// function (Hao–Kodialam–Lakshman style partitioning cited by the survey).
// Slightly worse FPR constant than the flat layout but each probe touches
// its own region, which removes inter-hash collisions and makes the
// structure trivially shardable.
type PartitionedBloom struct {
	slices [][]uint64
	per    uint64 // bits per slice
	seed   uint64
	n      uint64
}

// NewPartitionedBloom returns a partitioned filter with k slices of
// sliceBits bits each.
func NewPartitionedBloom(sliceBits int, k uint, seed uint64) (*PartitionedBloom, error) {
	if sliceBits <= 0 {
		return nil, core.Errf("PartitionedBloom", "sliceBits", "%d must be positive", sliceBits)
	}
	if k == 0 || k > 64 {
		return nil, core.Errf("PartitionedBloom", "k", "%d not in [1,64]", k)
	}
	words := (sliceBits + 63) / 64
	slices := make([][]uint64, k)
	for i := range slices {
		slices[i] = make([]uint64, words)
	}
	return &PartitionedBloom{slices: slices, per: uint64(words * 64), seed: seed}, nil
}

// Add inserts a key.
func (p *PartitionedBloom) Add(key []byte) {
	p.n++
	h1, h2 := hashutil.Sum128(key, p.seed)
	for i := range p.slices {
		pos := hashutil.DoubleHash(h1, h2, uint(i)) % p.per
		p.slices[i][pos/64] |= 1 << (pos % 64)
	}
}

// Contains reports whether key may have been inserted.
func (p *PartitionedBloom) Contains(key []byte) bool {
	h1, h2 := hashutil.Sum128(key, p.seed)
	for i := range p.slices {
		pos := hashutil.DoubleHash(h1, h2, uint(i)) % p.per
		if p.slices[i][pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the total footprint.
func (p *PartitionedBloom) Bytes() int { return len(p.slices) * int(p.per) / 8 }

// Count returns the number of Add calls.
func (p *PartitionedBloom) Count() uint64 { return p.n }
