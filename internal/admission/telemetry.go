package admission

import (
	"time"

	"repro/internal/telemetry"
)

// SetTelemetry registers the controller's accounting with reg as
// analytics_admission_* series. Shed totals are labeled by the scope
// that rejected (global | metric | tenant | backpressure) so the
// serving smoke can attribute every 429; the scope counters sum to
// every rejection the controller ever issued. All instruments except
// the wait histogram are scrape-time reads of the controller's atomics.
// A nil registry (or nil controller) is a no-op.
func (c *Controller) SetTelemetry(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("analytics_admission_admitted_total",
		"Observations admitted past every limiter.",
		func() uint64 { return c.admitted.Load() })
	reg.CounterFunc("analytics_admission_shed_total",
		"Observations rejected by the global bucket.",
		func() uint64 { return c.shedGlobal.Load() }, "scope", "global")
	reg.CounterFunc("analytics_admission_shed_total",
		"Observations rejected by a per-metric bucket.",
		func() uint64 { return c.shedMetric.Load() }, "scope", "metric")
	reg.CounterFunc("analytics_admission_shed_total",
		"Observations rejected by a per-tenant bucket.",
		func() uint64 { return c.shedTenant.Load() }, "scope", "tenant")
	reg.CounterFunc("analytics_admission_shed_total",
		"Observations rejected by the backpressure ladder.",
		func() uint64 { return c.shedPressure.Load() }, "scope", "backpressure")
	reg.GaugeFunc("analytics_admission_throttle_level",
		"Current backpressure ladder level (0 = full rate).",
		func() float64 { return float64(c.Level()) })
	reg.CounterFunc("analytics_admission_throttle_changes_total",
		"Backpressure ladder level transitions.",
		func() uint64 { return c.levelChanges.Load() })
	reg.GaugeFunc("analytics_admission_tokens",
		"Global token-bucket level (refilled to now).",
		func() float64 { return c.Tokens() })
	waitHist := reg.Histogram("analytics_admission_wait_seconds",
		"Suggested Retry-After handed out on shed requests.",
		1e-4, 10, 40)
	if waitHist != nil {
		c.waits.obsMu.Lock()
		c.waits.observe = func(d time.Duration) { waitHist.Observe(d.Seconds()) }
		c.waits.obsMu.Unlock()
	}
}
