// Package admission is the serving stack's overload-control subsystem:
// token-bucket admission for ingest traffic plus a lag-driven
// backpressure controller, so the pipeline degrades predictably at peak
// velocity instead of collapsing — the paper's "real time is only as
// real as the system's worst minute" argument made operational, and the
// principled counterpart of the hard throughput budgets real-time
// triggers run under.
//
// # Model
//
// A Controller owns three families of token buckets, each refilled on
// demand from an injected monotonic clock (so tests are deterministic
// and no background goroutine runs):
//
//   - one global bucket (Rate/Burst) bounding total ingest,
//   - per-metric buckets (MetricRate/MetricBurst), created lazily, so
//     one firehose metric cannot starve the rest, and
//   - per-tenant buckets (TenantRate/TenantBurst), keyed by whatever
//     string the serving edge extracts (a header, an API key), checked
//     through AdmitTenant.
//
// Admission is strictly shed-don't-queue: Admit never blocks. A denied
// request gets a typed *Overload error carrying the suggested
// RetryAfter — the time at which the failed bucket will have refilled
// enough tokens — which the serving edge maps to HTTP 429 +
// Retry-After and the HTTP client rehydrates so errors.Is(err,
// ErrOverloaded) matches on both sides of the socket.
//
// # Backpressure
//
// Overload is not only producer-side: a cluster whose consumer group
// falls behind, or whose log is filling its disk, must slow admission
// before the lag becomes unrecoverable. The Controller samples the
// configured lag and disk signals at most once per SampleEvery and
// folds them into a throttle ladder: level 0 is full rate, each level
// above halves every bucket's effective refill rate, and the top level
// sheds everything. See BackpressureConfig for the exact ladder math.
//
// # Accounting
//
// Every decision is counted: admitted and shed observation totals (shed
// broken down by scope — global, metric, tenant, backpressure), the
// current throttle level, live global tokens, and a histogram of the
// RetryAfter waits handed out. SetTelemetry exposes all of it as
// analytics_admission_* series; Stats snapshots the same numbers for
// in-process assertions. The shed counter accounts for every rejection
// the controller ever issues — the serving smoke drill cross-checks it
// against observed 429s.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel every rejected request wraps. Match it
// with errors.Is; extract the typed detail (RetryAfter, scope) with
// errors.As into a *Overload, or with the Wait helper.
var ErrOverloaded = errors.New("admission: overloaded")

// Overload is the typed rejection the whole stack propagates: the
// decorator returns it, the serving edge maps it to HTTP 429 +
// Retry-After, and the HTTP client rebuilds one from the response so
// in-process and remote callers match the same sentinel.
type Overload struct {
	// RetryAfter is the suggested backoff: the time until the failed
	// bucket refills enough tokens for a request of the same size (or
	// the resample interval, when backpressure is shedding everything).
	RetryAfter time.Duration
	// Scope names the limiter that rejected: "global", "metric",
	// "tenant" or "backpressure".
	Scope string
	// Key is the metric or tenant the scoped bucket belongs to (empty
	// for the global and backpressure scopes).
	Key string
}

func (o *Overload) Error() string {
	if o.Key != "" {
		return fmt.Sprintf("admission: overloaded (%s %q, retry after %v)", o.Scope, o.Key, o.RetryAfter)
	}
	return fmt.Sprintf("admission: overloaded (%s, retry after %v)", o.Scope, o.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match through the typed
// error.
func (o *Overload) Unwrap() error { return ErrOverloaded }

// Wait extracts the suggested retry-after from an overload error chain;
// ok is false when err does not wrap an *Overload.
func Wait(err error) (d time.Duration, ok bool) {
	var o *Overload
	if errors.As(err, &o) {
		return o.RetryAfter, true
	}
	return 0, false
}

// Config tunes a Controller. All rates are observations per second; a
// zero rate disables that limiter family entirely.
type Config struct {
	// Rate/Burst bound total admitted ingest: Rate tokens per second
	// refill a bucket holding at most Burst. Burst defaults to Rate
	// (one second of headroom).
	Rate  float64
	Burst float64
	// MetricRate/MetricBurst bound each metric individually (buckets
	// are created lazily per metric name). MetricBurst defaults to
	// MetricRate.
	MetricRate  float64
	MetricBurst float64
	// TenantRate/TenantBurst bound each tenant individually, via
	// AdmitTenant. TenantBurst defaults to TenantRate.
	TenantRate  float64
	TenantBurst float64
	// Now is the monotonic clock in nanoseconds. Inject a fake for
	// deterministic tests; nil uses the runtime's monotonic clock.
	Now func() int64
	// Backpressure scales effective rates down when the consumers or
	// the log fall behind. The zero value disables it.
	Backpressure BackpressureConfig
}

// BackpressureConfig wires load signals into the throttle ladder. Each
// signal is a sampler callback paired with the value at which
// throttling begins:
//
//	level(x) = 0                          if x < High
//	level(x) = 1 + floor(log2(x / High))  otherwise, capped at MaxLevel
//
// The controller's level is the max across signals; every bucket's
// effective refill rate is scaled by 2^-level, and at MaxLevel
// admission sheds everything until the signal falls back below the top
// rung. With the default MaxLevel 4: lag in [High, 2*High) halves
// rates, [2*High, 4*High) quarters them, and lag beyond 8*High stops
// ingest dead — a ladder, not a cliff.
type BackpressureConfig struct {
	// Lag samples consumer-group lag (e.g. dstore.Cluster.Lag): the
	// unconsumed-record count of the ingest topic. Nil disables the
	// signal.
	Lag func() uint64
	// LagHigh is the lag at which throttling begins (required when Lag
	// is set).
	LagHigh uint64
	// Disk samples log disk pressure in bytes (e.g. the durable mqlog
	// segment footprint). Nil disables the signal.
	Disk func() uint64
	// DiskHigh is the byte count at which throttling begins (required
	// when Disk is set).
	DiskHigh uint64
	// SampleEvery bounds how often the signals are polled (default
	// 100ms): admission between samples reuses the last level, so the
	// samplers stay off the per-observation hot path.
	SampleEvery time.Duration
	// MaxLevel is the ladder's top rung (default 4), at which
	// everything sheds.
	MaxLevel int
}

func (b BackpressureConfig) enabled() bool { return b.Lag != nil || b.Disk != nil }

// Controller is the admission authority. Safe for concurrent use; a
// nil *Controller admits everything (so call sites can wire one
// unconditionally).
type Controller struct {
	cfg Config
	now func() int64

	global bucket

	mu      sync.RWMutex
	metrics map[string]*bucket
	tenants map[string]*bucket

	// Backpressure state: the current ladder level and when the signals
	// were last polled.
	level      atomic.Int32
	lastSample atomic.Int64

	admitted     atomic.Uint64
	shedGlobal   atomic.Uint64
	shedMetric   atomic.Uint64
	shedTenant   atomic.Uint64
	shedPressure atomic.Uint64
	levelChanges atomic.Uint64
	waits        waitRecorder
}

// New validates cfg and builds a Controller.
func New(cfg Config) (*Controller, error) {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Rate", cfg.Rate}, {"Burst", cfg.Burst},
		{"MetricRate", cfg.MetricRate}, {"MetricBurst", cfg.MetricBurst},
		{"TenantRate", cfg.TenantRate}, {"TenantBurst", cfg.TenantBurst},
	} {
		if f.v < 0 {
			return nil, fmt.Errorf("admission: Config.%s %v must be >= 0", f.name, f.v)
		}
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
	}
	if cfg.MetricBurst <= 0 {
		cfg.MetricBurst = cfg.MetricRate
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = cfg.TenantRate
	}
	bp := &cfg.Backpressure
	if bp.Lag != nil && bp.LagHigh == 0 {
		return nil, errors.New("admission: Backpressure.LagHigh is required with a Lag sampler")
	}
	if bp.Disk != nil && bp.DiskHigh == 0 {
		return nil, errors.New("admission: Backpressure.DiskHigh is required with a Disk sampler")
	}
	if bp.SampleEvery <= 0 {
		bp.SampleEvery = 100 * time.Millisecond
	}
	if bp.MaxLevel <= 0 {
		bp.MaxLevel = 4
	}
	c := &Controller{
		cfg:     cfg,
		now:     cfg.Now,
		metrics: make(map[string]*bucket),
		tenants: make(map[string]*bucket),
	}
	if c.now == nil {
		start := time.Now()
		c.now = func() int64 { return int64(time.Since(start)) }
	}
	// Arm the sampler so the very first Admit polls the signals instead
	// of running one SampleEvery blind.
	c.lastSample.Store(c.now() - int64(bp.SampleEvery) - 1)
	c.global.fill(cfg.Burst)
	return c, nil
}

// signalLevel maps one signal value onto the ladder.
func signalLevel(x, high uint64, maxLevel int) int {
	if high == 0 || x < high {
		return 0
	}
	level := 1
	for x >= 2*high && level < maxLevel {
		x /= 2
		level++
	}
	return level
}

// throttleLevel returns the current ladder level, resampling the
// signals when SampleEvery has elapsed. Exactly one caller wins the
// resample CAS; everyone else reuses the stored level.
func (c *Controller) throttleLevel(now int64) int {
	bp := c.cfg.Backpressure
	if !bp.enabled() {
		return 0
	}
	last := c.lastSample.Load()
	if now-last > int64(bp.SampleEvery) && c.lastSample.CompareAndSwap(last, now) {
		lvl := 0
		if bp.Lag != nil {
			lvl = signalLevel(bp.Lag(), bp.LagHigh, bp.MaxLevel)
		}
		if bp.Disk != nil {
			if dl := signalLevel(bp.Disk(), bp.DiskHigh, bp.MaxLevel); dl > lvl {
				lvl = dl
			}
		}
		if old := c.level.Swap(int32(lvl)); old != int32(lvl) {
			c.levelChanges.Add(1)
		}
		return lvl
	}
	return int(c.level.Load())
}

// scale returns the effective-rate multiplier for a ladder level; 0
// means shed everything.
func (c *Controller) scale(level int) float64 {
	if level <= 0 {
		return 1
	}
	if level >= c.cfg.Backpressure.MaxLevel {
		return 0
	}
	return 1 / float64(uint64(1)<<uint(level))
}

// keyed returns the named bucket from m, creating it full on first
// sight. The read path is an RLock + map hit — no allocation.
func (c *Controller) keyed(m map[string]*bucket, key string, burst float64) *bucket {
	c.mu.RLock()
	b := m[key]
	c.mu.RUnlock()
	if b != nil {
		return b
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b = m[key]; b != nil {
		return b
	}
	b = &bucket{}
	b.fill(burst)
	m[key] = b
	return b
}

// shed records a rejection of n observations against scope and builds
// the typed error.
func (c *Controller) shed(counter *atomic.Uint64, n int, scope, key string, retry time.Duration) error {
	counter.Add(uint64(n))
	c.waits.record(retry)
	return &Overload{RetryAfter: retry, Scope: scope, Key: key}
}

// Admit decides whether n observations of metric may enter the stack:
// the backpressure ladder first (cheapest — one atomic load between
// samples), then the global bucket, then the metric's own. It never
// blocks; a denial is a typed *Overload wrapping ErrOverloaded, with
// nothing consumed from the narrower buckets (a metric-scope denial
// refunds the global tokens it reserved). A nil Controller admits
// everything.
func (c *Controller) Admit(metric string, n int) error {
	if c == nil || n <= 0 {
		return nil
	}
	now := c.now()
	level := c.throttleLevel(now)
	scale := c.scale(level)
	if scale == 0 {
		return c.shed(&c.shedPressure, n, "backpressure", "",
			c.cfg.Backpressure.SampleEvery)
	}
	need := float64(n)
	if c.cfg.Rate > 0 {
		if ok, retry := c.global.take(now, c.cfg.Rate*scale, c.cfg.Burst, need); !ok {
			scope, ctr := "global", &c.shedGlobal
			if level > 0 {
				// The tokens ran dry because the ladder scaled the refill
				// down; attribute the shed to backpressure so operators see
				// the lag, not a phantom traffic spike.
				scope, ctr = "backpressure", &c.shedPressure
			}
			return c.shed(ctr, n, scope, "", retry)
		}
	}
	if c.cfg.MetricRate > 0 {
		b := c.keyed(c.metrics, metric, c.cfg.MetricBurst)
		if ok, retry := b.take(now, c.cfg.MetricRate*scale, c.cfg.MetricBurst, need); !ok {
			if c.cfg.Rate > 0 {
				c.global.refund(need, c.cfg.Burst)
			}
			return c.shed(&c.shedMetric, n, "metric", metric, retry)
		}
	}
	c.admitted.Add(uint64(n))
	return nil
}

// AdmitTenant decides whether n observations from tenant may enter —
// the serving edge's fairness check, run before the request reaches
// the Backend (so a shed request provably mutates nothing). Tenants
// share nothing: each name gets its own bucket at TenantRate. A nil
// Controller, a zero TenantRate, or n <= 0 admits.
func (c *Controller) AdmitTenant(tenant string, n int) error {
	if c == nil || n <= 0 || c.cfg.TenantRate <= 0 {
		return nil
	}
	now := c.now()
	scale := c.scale(c.throttleLevel(now))
	if scale == 0 {
		return c.shed(&c.shedPressure, n, "backpressure", "",
			c.cfg.Backpressure.SampleEvery)
	}
	b := c.keyed(c.tenants, tenant, c.cfg.TenantBurst)
	if ok, retry := b.take(now, c.cfg.TenantRate*scale, c.cfg.TenantBurst, float64(n)); !ok {
		return c.shed(&c.shedTenant, n, "tenant", tenant, retry)
	}
	c.admitted.Add(uint64(n))
	return nil
}

// Level reports the current backpressure ladder level without
// resampling.
func (c *Controller) Level() int {
	if c == nil {
		return 0
	}
	return int(c.level.Load())
}

// Tokens reports the global bucket's current token count (refilled to
// now), or the configured burst when no global rate is set.
func (c *Controller) Tokens() float64 {
	if c == nil {
		return 0
	}
	if c.cfg.Rate <= 0 {
		return c.cfg.Burst
	}
	return c.global.peek(c.now(), c.cfg.Rate*c.scale(c.Level()), c.cfg.Burst)
}

// Stats is a point-in-time snapshot of the controller's accounting.
type Stats struct {
	Admitted        uint64 // observations admitted (all scopes)
	Shed            uint64 // observations rejected (all scopes)
	ShedGlobal      uint64
	ShedMetric      uint64
	ShedTenant      uint64
	ShedPressure    uint64
	Level           int     // current backpressure ladder level
	LevelChanges    uint64  // ladder transitions observed
	Tokens          float64 // global bucket tokens right now
	MetricBuckets   int
	TenantBuckets   int
	MeanRetrySec    float64 // mean suggested RetryAfter across sheds
	SheddedRequests uint64  // calls (not observations) that were denied
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	nm, nt := len(c.metrics), len(c.tenants)
	c.mu.RUnlock()
	sg, sm, st, sp := c.shedGlobal.Load(), c.shedMetric.Load(), c.shedTenant.Load(), c.shedPressure.Load()
	return Stats{
		Admitted:        c.admitted.Load(),
		Shed:            sg + sm + st + sp,
		ShedGlobal:      sg,
		ShedMetric:      sm,
		ShedTenant:      st,
		ShedPressure:    sp,
		Level:           c.Level(),
		LevelChanges:    c.levelChanges.Load(),
		Tokens:          c.Tokens(),
		MetricBuckets:   nm,
		TenantBuckets:   nt,
		MeanRetrySec:    c.waits.mean(),
		SheddedRequests: c.waits.count.Load(),
	}
}
