package admission

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is the injected monotonic clock: tests advance it by hand,
// so every refill is exact and no test sleeps.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (f *fakeClock) now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ns
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.ns += int64(d)
	f.mu.Unlock()
}

func newController(t *testing.T, cfg Config) (*Controller, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	cfg.Now = clk.now
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, clk
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Rate: -1}); err == nil {
		t.Fatal("negative Rate accepted")
	}
	if _, err := New(Config{Backpressure: BackpressureConfig{Lag: func() uint64 { return 0 }}}); err == nil {
		t.Fatal("Lag sampler without LagHigh accepted")
	}
	if _, err := New(Config{Backpressure: BackpressureConfig{Disk: func() uint64 { return 0 }}}); err == nil {
		t.Fatal("Disk sampler without DiskHigh accepted")
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	if err := c.Admit("m", 1); err != nil {
		t.Fatalf("nil Admit: %v", err)
	}
	if err := c.AdmitTenant("t", 100); err != nil {
		t.Fatalf("nil AdmitTenant: %v", err)
	}
	if c.Level() != 0 {
		t.Fatalf("nil Level = %d", c.Level())
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("nil Stats = %+v", got)
	}
}

func TestGlobalBucketBurstThenShed(t *testing.T) {
	c, clk := newController(t, Config{Rate: 10, Burst: 5})
	for i := 0; i < 5; i++ {
		if err := c.Admit("m", 1); err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
	}
	err := c.Admit("m", 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var o *Overload
	if !errors.As(err, &o) {
		t.Fatalf("want *Overload, got %T", err)
	}
	if o.Scope != "global" {
		t.Fatalf("scope = %q, want global", o.Scope)
	}
	// One token refills in 1/rate = 100ms; the quote must say so.
	if want := 100 * time.Millisecond; o.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v", o.RetryAfter, want)
	}
	if d, ok := Wait(err); !ok || d != o.RetryAfter {
		t.Fatalf("Wait = (%v, %v)", d, ok)
	}
	// Refill exactly the quoted wait: the same request now passes.
	clk.advance(o.RetryAfter)
	if err := c.Admit("m", 1); err != nil {
		t.Fatalf("admit after quoted wait: %v", err)
	}
	st := c.Stats()
	if st.Admitted != 6 || st.Shed != 1 || st.ShedGlobal != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatchAdmissionIsAllOrNothing(t *testing.T) {
	c, _ := newController(t, Config{Rate: 10, Burst: 5})
	if err := c.Admit("m", 5); err != nil {
		t.Fatalf("admit batch of 5: %v", err)
	}
	// A batch of 3 against an empty bucket sheds whole — no partial
	// token consumption.
	if err := c.Admit("m", 3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want shed, got %v", err)
	}
	if got := c.Tokens(); got != 0 {
		t.Fatalf("tokens after failed batch = %v, want 0 (nothing consumed)", got)
	}
	if st := c.Stats(); st.Shed != 3 {
		t.Fatalf("shed counts observations, got %+v", st)
	}
}

func TestRetryAfterCappedAtFullRefill(t *testing.T) {
	c, _ := newController(t, Config{Rate: 10, Burst: 5})
	err := c.Admit("m", 1000) // far beyond burst: can never succeed whole
	var o *Overload
	if !errors.As(err, &o) {
		t.Fatalf("want *Overload, got %v", err)
	}
	// Cap = time to refill burst from empty = 5/10 s.
	if want := 500 * time.Millisecond; o.RetryAfter > want {
		t.Fatalf("RetryAfter = %v, want <= %v", o.RetryAfter, want)
	}
}

func TestPerMetricIsolationAndGlobalRefund(t *testing.T) {
	c, _ := newController(t, Config{Rate: 100, Burst: 100, MetricRate: 10, MetricBurst: 2})
	// Exhaust hog's bucket.
	if err := c.Admit("hog", 2); err != nil {
		t.Fatalf("hog burst: %v", err)
	}
	err := c.Admit("hog", 1)
	var o *Overload
	if !errors.As(err, &o) || o.Scope != "metric" || o.Key != "hog" {
		t.Fatalf("want metric-scope shed for hog, got %v", err)
	}
	// The global tokens the hog's denial reserved were refunded, so a
	// different metric still has the full remaining global budget.
	if got, want := c.Tokens(), float64(98); got != want {
		t.Fatalf("global tokens = %v, want %v (refund on metric shed)", got, want)
	}
	if err := c.Admit("quiet", 2); err != nil {
		t.Fatalf("quiet metric throttled by hog: %v", err)
	}
	st := c.Stats()
	if st.ShedMetric != 1 || st.MetricBuckets != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTenantBuckets(t *testing.T) {
	c, clk := newController(t, Config{TenantRate: 4, TenantBurst: 2})
	if err := c.AdmitTenant("alice", 2); err != nil {
		t.Fatalf("alice burst: %v", err)
	}
	err := c.AdmitTenant("alice", 1)
	var o *Overload
	if !errors.As(err, &o) || o.Scope != "tenant" || o.Key != "alice" {
		t.Fatalf("want tenant shed for alice, got %v", err)
	}
	if !strings.Contains(o.Error(), `"alice"`) {
		t.Fatalf("Error() should name the tenant: %q", o.Error())
	}
	if err := c.AdmitTenant("bob", 2); err != nil {
		t.Fatalf("bob throttled by alice: %v", err)
	}
	clk.advance(time.Second) // refills alice fully (rate 4 > burst 2)
	if err := c.AdmitTenant("alice", 2); err != nil {
		t.Fatalf("alice after refill: %v", err)
	}
	if st := c.Stats(); st.TenantBuckets != 2 || st.ShedTenant != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSignalLevelLadder(t *testing.T) {
	cases := []struct {
		x, high uint64
		max     int
		want    int
	}{
		{0, 100, 4, 0},
		{99, 100, 4, 0},
		{100, 100, 4, 1},
		{199, 100, 4, 1},
		{200, 100, 4, 2},
		{399, 100, 4, 2},
		{400, 100, 4, 3},
		{800, 100, 4, 4},
		{1 << 40, 100, 4, 4}, // capped
		{500, 0, 4, 0},       // disabled signal
	}
	for _, tc := range cases {
		if got := signalLevel(tc.x, tc.high, tc.max); got != tc.want {
			t.Errorf("signalLevel(%d, %d, %d) = %d, want %d", tc.x, tc.high, tc.max, got, tc.want)
		}
	}
}

func TestBackpressureScalesRatesAndShedsAtMax(t *testing.T) {
	var lag uint64
	c, clk := newController(t, Config{
		Rate: 10, Burst: 10,
		Backpressure: BackpressureConfig{
			Lag:         func() uint64 { return lag },
			LagHigh:     100,
			SampleEvery: 10 * time.Millisecond,
			MaxLevel:    4,
		},
	})
	// Healthy: level 0, everything admits.
	if err := c.Admit("m", 10); err != nil {
		t.Fatalf("healthy admit: %v", err)
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d, want 0", c.Level())
	}

	// Lag crosses High: next sample moves to level 1 and the refill
	// rate halves — after 1s only rate/2 = 5 tokens accrued.
	lag = 100
	clk.advance(time.Second)
	for i := 0; i < 5; i++ {
		if err := c.Admit("m", 1); err != nil {
			t.Fatalf("level-1 admit %d: %v", i, err)
		}
	}
	if c.Level() != 1 {
		t.Fatalf("level = %d, want 1", c.Level())
	}
	err := c.Admit("m", 1)
	var o *Overload
	if !errors.As(err, &o) || o.Scope != "backpressure" {
		t.Fatalf("want backpressure-attributed shed at level 1, got %v", err)
	}

	// Lag at 8*High reaches MaxLevel: everything sheds regardless of
	// tokens, with the resample interval as the quoted wait.
	lag = 800
	clk.advance(time.Second)
	err = c.Admit("m", 1)
	if !errors.As(err, &o) || o.Scope != "backpressure" {
		t.Fatalf("want full shed at MaxLevel, got %v", err)
	}
	if o.RetryAfter != 10*time.Millisecond {
		t.Fatalf("MaxLevel RetryAfter = %v, want the resample interval", o.RetryAfter)
	}
	if c.Level() != 4 {
		t.Fatalf("level = %d, want 4", c.Level())
	}

	// Recovery: lag drains, the next sample returns to level 0.
	lag = 0
	clk.advance(time.Second)
	if err := c.Admit("m", 1); err != nil {
		t.Fatalf("recovered admit: %v", err)
	}
	if c.Level() != 0 {
		t.Fatalf("level after recovery = %d, want 0", c.Level())
	}
	if st := c.Stats(); st.LevelChanges < 3 {
		t.Fatalf("LevelChanges = %d, want >= 3 (0→1→4→0)", st.LevelChanges)
	}
}

func TestDiskSignalTakesMax(t *testing.T) {
	var lag, disk uint64
	c, clk := newController(t, Config{
		Backpressure: BackpressureConfig{
			Lag: func() uint64 { return lag }, LagHigh: 100,
			Disk: func() uint64 { return disk }, DiskHigh: 1 << 20,
			SampleEvery: time.Millisecond, MaxLevel: 4,
		},
	})
	lag, disk = 50, 4<<20 // lag healthy, disk at 4*High → level 3
	clk.advance(time.Second)
	_ = c.Admit("m", 1) // trigger a sample
	if c.Level() != 3 {
		t.Fatalf("level = %d, want 3 (disk dominates)", c.Level())
	}
}

func TestSamplerRunsAtMostOncePerInterval(t *testing.T) {
	calls := 0
	c, clk := newController(t, Config{
		Backpressure: BackpressureConfig{
			Lag:         func() uint64 { calls++; return 0 },
			LagHigh:     100,
			SampleEvery: time.Second,
		},
	})
	for i := 0; i < 100; i++ {
		if err := c.Admit("m", 1); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("sampler ran %d times within one interval, want 1", calls)
	}
	clk.advance(2 * time.Second)
	_ = c.Admit("m", 1)
	if calls != 2 {
		t.Fatalf("sampler ran %d times after interval elapsed, want 2", calls)
	}
}

func TestShedTotalAccountsForEveryRejection(t *testing.T) {
	c, _ := newController(t, Config{Rate: 1, Burst: 1, TenantRate: 1, TenantBurst: 1})
	var rejected uint64
	for i := 0; i < 10; i++ {
		if err := c.Admit("m", 1); err != nil {
			rejected++
		}
		if err := c.AdmitTenant("t", 1); err != nil {
			rejected++
		}
	}
	st := c.Stats()
	if st.Shed != rejected || rejected == 0 {
		t.Fatalf("Shed = %d, want %d (every rejection accounted)", st.Shed, rejected)
	}
	if st.Shed != st.ShedGlobal+st.ShedMetric+st.ShedTenant+st.ShedPressure {
		t.Fatalf("scope counters do not sum: %+v", st)
	}
	if st.SheddedRequests != rejected {
		t.Fatalf("SheddedRequests = %d, want %d", st.SheddedRequests, rejected)
	}
	if st.MeanRetrySec <= 0 {
		t.Fatalf("MeanRetrySec = %v, want > 0", st.MeanRetrySec)
	}
}

func TestTelemetryExposition(t *testing.T) {
	reg := telemetry.New()
	c, _ := newController(t, Config{Rate: 2, Burst: 2})
	c.SetTelemetry(reg)
	for i := 0; i < 5; i++ {
		_ = c.Admit("m", 1)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"analytics_admission_admitted_total 2",
		`analytics_admission_shed_total{scope="global"} 3`,
		"analytics_admission_throttle_level 0",
		"analytics_admission_tokens 0",
		"analytics_admission_wait_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Registering on a nil registry or nil controller must not panic.
	c.SetTelemetry(nil)
	(*Controller)(nil).SetTelemetry(reg)
}

func TestConcurrentAdmitRace(t *testing.T) {
	var lag uint64 = 50
	c, _ := newController(t, Config{
		Rate: 1e6, Burst: 1e6, MetricRate: 1e6, TenantRate: 1e6,
		Now: func() int64 { return time.Now().UnixNano() },
		Backpressure: BackpressureConfig{
			Lag: func() uint64 { return lag }, LagHigh: 100,
			SampleEvery: time.Microsecond,
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			metric := fmt.Sprintf("m%d", g%3)
			for i := 0; i < 2000; i++ {
				_ = c.Admit(metric, 1)
				_ = c.AdmitTenant("t", 1)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Admitted+st.Shed != 2*8*2000 {
		t.Fatalf("admitted %d + shed %d != %d", st.Admitted, st.Shed, 2*8*2000)
	}
}

func TestZeroRatesAdmitEverything(t *testing.T) {
	c, _ := newController(t, Config{})
	for i := 0; i < 1000; i++ {
		if err := c.Admit("m", 10); err != nil {
			t.Fatalf("unlimited admit: %v", err)
		}
		if err := c.AdmitTenant("t", 10); err != nil {
			t.Fatalf("unlimited tenant admit: %v", err)
		}
	}
}
