package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// bucket is one refill-on-demand token bucket. There is no background
// refiller: each take computes the tokens accrued since the last visit
// from the caller's clock, which keeps idle buckets free and makes the
// math exact under an injected test clock. The zero value is an empty
// bucket; fill before first use.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   int64 // clock reading (ns) at the last refill
}

func (b *bucket) fill(burst float64) {
	b.mu.Lock()
	b.tokens = burst
	b.mu.Unlock()
}

// refillLocked advances the bucket to now at rate tokens/sec, capped at
// burst. Callers hold b.mu.
func (b *bucket) refillLocked(now int64, rate, burst float64) {
	if elapsed := now - b.last; elapsed > 0 {
		b.tokens += float64(elapsed) * rate / float64(time.Second)
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
}

// take attempts to consume need tokens at the effective rate. On
// success it returns ok=true; on failure nothing is consumed and retry
// suggests how long until the deficit refills (capped at the time to
// refill from empty, so a huge batch against a small bucket cannot
// quote an absurd wait).
func (b *bucket) take(now int64, rate, burst, need float64) (ok bool, retry time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now, rate, burst)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	deficit := need - b.tokens
	if deficit > burst {
		deficit = burst
	}
	if rate <= 0 {
		return false, time.Second
	}
	return false, time.Duration(deficit / rate * float64(time.Second))
}

// refund returns tokens reserved by a wider limiter whose narrower
// sibling then shed (so a metric-scope denial does not silently drain
// the global budget).
func (b *bucket) refund(n, burst float64) {
	b.mu.Lock()
	b.tokens += n
	if b.tokens > burst {
		b.tokens = burst
	}
	b.mu.Unlock()
}

// peek reports the token count as of now without consuming.
func (b *bucket) peek(now int64, rate, burst float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now, rate, burst)
	return b.tokens
}

// waitRecorder accumulates the RetryAfter durations handed out on
// sheds, for the Stats snapshot and the wait histogram's fallback when
// no registry is attached.
type waitRecorder struct {
	count   atomic.Uint64
	totalNs atomic.Int64
	observe func(time.Duration) // set by SetTelemetry; may stay nil
	obsMu   sync.RWMutex
}

func (w *waitRecorder) record(d time.Duration) {
	w.count.Add(1)
	w.totalNs.Add(int64(d))
	w.obsMu.RLock()
	fn := w.observe
	w.obsMu.RUnlock()
	if fn != nil {
		fn(d)
	}
}

func (w *waitRecorder) mean() float64 {
	n := w.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(w.totalNs.Load() / int64(n)).Seconds()
}
