package telemetry

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-exposition", false, "rewrite testdata/exposition.golden")

// goldenRegistry builds a registry with one instrument of every kind,
// multiple label sets, and label values needing escaping, all with
// deterministic values.
func goldenRegistry() *Registry {
	r := New()
	c := r.Counter("analytics_golden_ops_total", "Operations, by layer.", "layer", "store")
	c.Add(42)
	r.Counter("analytics_golden_ops_total", "Operations, by layer.", "layer", "lambda").Add(7)
	r.CounterFunc("analytics_golden_lag", "Fixed scrape-time counter.", func() uint64 { return 13 }, "group", "g0")

	g := r.Gauge("analytics_golden_depth", "Queue depth.", "topic", "events")
	g.Set(2.5)
	r.Gauge("analytics_golden_escaped", "Label escaping: backslash, quote, newline.",
		"path", "a\\b\"c\nd")

	h := r.Histogram("analytics_golden_seconds", "Latency in seconds.", 0, 1.0, 4, "layer", "store")
	h.Observe(0.1) // bucket le=0.25
	h.Observe(0.3) // bucket le=0.5
	h.Observe(0.3)
	h.Observe(2.0) // clamped into +Inf bucket
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-exposition to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two encodes of an idle registry must be byte-identical")
	}
}

func TestHandlerSurfaces(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "analytics_golden_ops_total") {
		t.Fatalf("metrics body missing counter:\n%s", buf[:n])
	}

	dresp, err := srv.Client().Get(srv.URL + "/debug/analytics")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var payload struct {
		Families []SnapshotFamily `json:"families"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&payload); err != nil {
		t.Fatalf("debug payload not JSON: %v", err)
	}
	byName := map[string]SnapshotFamily{}
	for _, f := range payload.Families {
		byName[f.Name] = f
	}
	hist, ok := byName["analytics_golden_seconds"]
	if !ok {
		t.Fatalf("debug payload missing histogram family: %v", payload.Families)
	}
	if len(hist.Series) != 1 || hist.Series[0].P95 == nil {
		t.Fatalf("histogram series missing quantiles: %+v", hist.Series)
	}
}

func TestNilHandlerServesEmpty(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/analytics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Families []SnapshotFamily `json:"families"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Families) != 0 {
		t.Fatalf("nil registry families = %v", payload.Families)
	}
}
