package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler serving the registry's two surfaces:
//
//   - /metrics          — Prometheus text exposition (version 0.0.4)
//   - /debug/analytics  — JSON snapshot with histogram quantiles
//
// A nil registry serves an empty (but valid) payload on both, so demos
// can mount the handler unconditionally.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/analytics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Families []SnapshotFamily `json:"families"`
		}{Families: r.Snapshot()})
	})
	return mux
}

// Serve starts an HTTP server on addr exposing Handler(r) and returns
// immediately; errors after startup (e.g. the listener closing) are
// dropped. It is the one-liner the cmd demos use for their -metrics
// flag. Returns the server so callers can Close it.
func Serve(addr string, r *Registry) *http.Server {
	srv := &http.Server{Addr: addr, Handler: Handler(r)}
	go func() { _ = srv.ListenAndServe() }()
	return srv
}
