package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/trace"
)

// DebugOptions selects the optional debug surfaces HandlerWith mounts
// next to /metrics. The zero value mounts nothing extra, making
// Handler(r) == HandlerWith(r, DebugOptions{}).
type DebugOptions struct {
	// Tracer, when non-nil, mounts /debug/traces (Chrome trace-event
	// JSON of the retained trace ring — load it in chrome://tracing or
	// Perfetto) and /debug/slow (the slow-query log).
	Tracer *trace.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/. Opt-in because
	// profiles expose process internals and a 30s CPU profile holds a
	// handler goroutine for its full window.
	Pprof bool
}

// Handler returns an http.Handler serving the registry's two surfaces:
//
//   - /metrics          — Prometheus text exposition (version 0.0.4)
//   - /debug/analytics  — JSON snapshot with histogram quantiles
//
// A nil registry serves an empty (but valid) payload on both, so demos
// can mount the handler unconditionally.
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, DebugOptions{})
}

// HandlerWith is Handler plus the opt-in debug surfaces:
//
//   - /debug/traces — Chrome trace-event JSON (when opts.Tracer != nil)
//   - /debug/slow   — slow-query log entries, oldest first
//   - /debug/pprof/ — the standard pprof index (when opts.Pprof)
//
// The trace surfaces serve empty-but-valid payloads for a nil tracer,
// matching the registry's contract.
func HandlerWith(r *Registry, opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/analytics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Families []SnapshotFamily `json:"families"`
		}{Families: r.Snapshot()})
	})
	if opts.Tracer != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = opts.Tracer.WriteChrome(w)
		})
		mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			slow := opts.Tracer.Slow()
			if slow == nil {
				slow = []trace.SlowEntry{}
			}
			_ = enc.Encode(struct {
				Slow []trace.SlowEntry `json:"slow"`
			}{Slow: slow})
		})
	}
	if opts.Pprof {
		// Mount the pprof handlers explicitly: the package's init only
		// registers them on http.DefaultServeMux, which we don't serve.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts an HTTP server on addr exposing Handler(r) and returns
// immediately; errors after startup (e.g. the listener closing) are
// dropped. It is the one-liner the cmd demos use for their -metrics
// flag. Returns the server so callers can Close it.
func Serve(addr string, r *Registry) *http.Server {
	return ServeWith(addr, r, DebugOptions{})
}

// ServeWith is Serve over HandlerWith. The server carries defensive
// timeouts — ReadHeaderTimeout above all, since a zero value leaves the
// listener open to slowloris header dribbling — sized so the slowest
// legitimate responses (30s pprof CPU profiles, 60s execution traces)
// still fit inside WriteTimeout.
func ServeWith(addr string, r *Registry, opts DebugOptions) *http.Server {
	srv := &http.Server{
		Addr:              addr,
		Handler:           HandlerWith(r, opts),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.ListenAndServe() }()
	return srv
}
