package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("analytics_test_total", "h")
	g := r.Gauge("analytics_test", "h")
	h := r.Histogram("analytics_test_seconds", "h", 0, 1, 8)
	r.CounterFunc("analytics_test_fn_total", "h", func() uint64 { return 1 })
	r.GaugeFunc("analytics_test_fn", "h", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must return nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("analytics_ops_total", "ops", "layer", "store")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("analytics_ops_total", "ops", "layer", "store"); again != c {
		t.Fatal("re-registration must return the same series")
	}
	other := r.Counter("analytics_ops_total", "ops", "layer", "lambda")
	if other == c {
		t.Fatal("distinct labels must be distinct series")
	}

	g := r.Gauge("analytics_depth", "depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestFuncInstrumentsReadThroughAndRebind(t *testing.T) {
	r := New()
	n := uint64(7)
	r.CounterFunc("analytics_seen_total", "seen", func() uint64 { return n })
	c := r.Counter("analytics_seen_total", "seen")
	if got := c.Value(); got != 7 {
		t.Fatalf("func counter = %d, want 7", got)
	}
	// Re-binding swaps the callback on the same series — the dstore
	// node-store rebuild path.
	r.CounterFunc("analytics_seen_total", "seen", func() uint64 { return 99 })
	if got := c.Value(); got != 99 {
		t.Fatalf("rebound func counter = %d, want 99", got)
	}
	r.GaugeFunc("analytics_fill", "fill", func() float64 { return 0.25 })
	if got := r.Gauge("analytics_fill", "fill").Value(); got != 0.25 {
		t.Fatalf("func gauge = %v, want 0.25", got)
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := New()
	a := r.Counter("analytics_x_total", "x", "b", "2", "a", "1")
	b := r.Counter("analytics_x_total", "x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("analytics_thing_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("analytics_thing_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("analytics_lat_seconds", "lat", 0, 1.0, 100)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000.0) // uniform over [0, 1)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got, want := h.Sum(), 499.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	checks := []struct{ phi, want float64 }{{0.50, 0.50}, {0.95, 0.95}, {0.99, 0.99}}
	for _, c := range checks {
		if got := h.Quantile(c.phi); math.Abs(got-c.want) > 0.02 {
			t.Fatalf("q%.2f = %v, want ~%v", c.phi, got, c.want)
		}
	}
	if h.P50() != h.Quantile(0.50) || h.P95() != h.Quantile(0.95) || h.P99() != h.Quantile(0.99) {
		t.Fatal("P50/P95/P99 must match Quantile")
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	r := New()
	h := r.Histogram("analytics_clamp_seconds", "lat", 0, 1.0, 4)
	h.Observe(-5)  // below range: first bucket
	h.Observe(100) // above range: final (+Inf) bucket
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `analytics_clamp_seconds_bucket{le="0.25"} 1`) {
		t.Fatalf("underflow not in first bucket:\n%s", out)
	}
	if !strings.Contains(out, `analytics_clamp_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("overflow not in +Inf bucket:\n%s", out)
	}
}

// TestConcurrentWritesDuringEncode hammers every instrument kind from
// many goroutines while snapshots and encodes run concurrently — the
// -race coverage the issue asks for.
func TestConcurrentWritesDuringEncode(t *testing.T) {
	r := New()
	var stop sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		stop.Add(1)
		go func(worker int) {
			defer stop.Done()
			c := r.Counter("analytics_conc_total", "c", "layer", "store")
			g := r.Gauge("analytics_conc_depth", "g", "layer", "store")
			h := r.Histogram("analytics_conc_seconds", "h", 0, 1, 16, "layer", "store")
			for j := 0; ; j++ {
				select {
				case <-done:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 100)
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		_ = r.Snapshot()
		time.Sleep(time.Millisecond)
	}
	close(done)
	stop.Wait()

	c := r.Counter("analytics_conc_total", "c", "layer", "store")
	h := r.Histogram("analytics_conc_seconds", "h", 0, 1, 16, "layer", "store")
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("writers must have landed")
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != h.Count() {
		t.Fatalf("bucket total %d != count %d", cum, h.Count())
	}
}
