// Package telemetry is the repo's self-instrumentation substrate: a
// zero-dependency, allocation-conscious metrics registry with atomic
// counters, gauges and fixed-bucket latency histograms, a Prometheus
// text-exposition encoder, and an http.Handler serving /metrics and a
// /debug/analytics JSON snapshot.
//
// The source paper comes out of a stack where the analytics system is
// itself the observability substrate; this package closes that loop by
// letting the store, the mqlog broker, the dstore cluster and the
// Lambda architecture measure their own latencies, lags and drop
// counters with the same equi-width bucket math their synopses use
// (histogram.EquiWidth supplies the bucket index computation).
//
// # Nil safety
//
// Every instrument method is a no-op on a nil receiver, and every
// Registry method returns nil instruments from a nil receiver, so
// instrumented subsystems pay a single pointer check on their hot
// paths when no registry is configured. Timing sites should gate the
// time.Now() pair on the instrument being non-nil.
//
// # Registration model
//
// Metric families are keyed by name; children (series) are keyed by
// their label set. Registering the same name and labels again returns
// the existing instrument — and for the Func variants swaps in the new
// callback — so wiring is idempotent and survives subsystem rebuilds
// (e.g. a dstore node store recreated on recovery re-binds the scrape
// callbacks to the fresh atomics; the visible counter reset is the
// standard Prometheus restart semantics). Registering a name with a
// conflicting instrument kind panics: that is a programming error, not
// a runtime condition.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// Kind discriminates the instrument families a Registry holds.
type Kind uint8

// Instrument kinds, in exposition-type order.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families keyed by name. The zero value is not
// usable; construct with New. A nil *Registry is a valid "telemetry
// off" value: all registration methods return nil instruments.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family; children are the label-set series.
type family struct {
	name, help string
	kind       Kind
	mu         sync.RWMutex
	children   map[string]*child
}

// child is one series: sorted label pairs plus exactly one instrument.
type child struct {
	labels   []string // alternating key, value; sorted by key
	labelKey string   // canonical, escaped {k="v",...} body (no braces)
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// Counter is a monotonically increasing uint64. A Func-backed counter
// reads its value through the callback at scrape time instead, which
// is how subsystems expose atomics they already maintain without any
// hot-path double counting.
type Counter struct {
	v  atomic.Uint64
	fn atomic.Value // func() uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (via the callback for Func-backed
// counters). Zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	if fn, ok := c.fn.Load().(func() uint64); ok && fn != nil {
		return fn()
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. Func-backed gauges read
// through their callback at scrape time.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
	fn   atomic.Value  // func() float64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (via the callback for Func-backed
// gauges). Zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if fn, ok := g.fn.Load().(func() float64); ok && fn != nil {
		return fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: equi-width buckets
// over [lo, hi) with atomic per-bucket counts, an atomic sum, and
// quantile accessors. Bucket index math is histogram.EquiWidth's;
// out-of-range observations clamp into the edge buckets, so the final
// bucket is exposed as le="+Inf".
type Histogram struct {
	eq     *histogram.EquiWidth // bucket math only; its own counts stay zero
	lo, hi float64
	bounds []float64 // upper bounds; bounds[len-1] is treated as +Inf
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value (for latency histograms, in seconds).
// No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.eq.BucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
// No-op on a nil receiver. Callers on hot paths should gate the
// time.Now() call itself on the histogram being non-nil.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations. Zero on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values. Zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the phi-quantile (phi in [0, 1]) by linear
// interpolation inside the bucket holding the target rank. Returns 0
// with no observations or on a nil receiver.
func (h *Histogram) Quantile(phi float64) float64 {
	if h == nil {
		return 0
	}
	snap := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * float64(total)
	width := (h.hi - h.lo) / float64(len(snap))
	var cum float64
	for i, c := range snap {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			frac := (target - cum) / float64(c)
			return h.lo + float64(i)*width + frac*width
		}
		cum = next
	}
	return h.hi
}

// P50 returns the estimated median observation.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the estimated 95th-percentile observation.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the estimated 99th-percentile observation.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Counter returns the counter series for name and the given label
// pairs, registering the family and series on first use. Nil on a nil
// registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, KindCounter, labels)
	if ch.counter == nil {
		ch.counter = &Counter{}
	}
	return ch.counter
}

// CounterFunc registers (or re-binds) a counter whose value is read
// through fn at scrape time — the zero-hot-path-cost way to expose a
// counter a subsystem already maintains atomically. No-op on a nil
// registry.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	c := r.Counter(name, help, labels...)
	if c == nil {
		return
	}
	c.fn.Store(fn)
}

// Gauge returns the gauge series for name and the given label pairs,
// registering the family and series on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, KindGauge, labels)
	if ch.gauge == nil {
		ch.gauge = &Gauge{}
	}
	return ch.gauge
}

// GaugeFunc registers (or re-binds) a gauge read through fn at scrape
// time. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	g := r.Gauge(name, help, labels...)
	if g == nil {
		return
	}
	g.fn.Store(fn)
}

// Histogram returns the histogram series for name and the given label
// pairs: buckets equi-width buckets over [lo, hi). Re-registering an
// existing series returns it unchanged (the first geometry wins). Nil
// on a nil registry; panics on invalid geometry, as NewEquiWidth would.
func (r *Registry) Histogram(name, help string, lo, hi float64, buckets int, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, KindHistogram, labels)
	if ch.hist == nil {
		eq, err := histogram.NewEquiWidth(lo, hi, buckets)
		if err != nil {
			panic(fmt.Sprintf("telemetry: histogram %q: %v", name, err))
		}
		ch.hist = &Histogram{
			eq:     eq,
			lo:     lo,
			hi:     hi,
			bounds: eq.BucketBounds(),
			counts: make([]atomic.Uint64, buckets),
		}
	}
	return ch.hist
}

// child locates or creates the series for (name, labels), enforcing
// kind consistency across the family.
func (r *Registry) child(name, help string, kind Kind, labels []string) *child {
	validateName(name)
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label pairs %v", name, labels))
	}
	pairs := sortPairs(labels)
	key := labelKey(pairs)

	r.mu.Lock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = fam
	}
	r.mu.Unlock()
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, fam.kind, kind))
	}

	fam.mu.Lock()
	defer fam.mu.Unlock()
	ch, ok := fam.children[key]
	if !ok {
		ch = &child{labels: pairs, labelKey: key}
		fam.children[key] = ch
	}
	return ch
}

func validateName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
		}
	}
}

// sortPairs copies the alternating key/value list and sorts it by key.
func sortPairs(labels []string) []string {
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, len(labels))
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
	}
	return out
}

// labelKey renders sorted pairs as the canonical escaped body of a
// label set: k1="v1",k2="v2" (no surrounding braces).
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(pairs[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
