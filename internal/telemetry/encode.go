package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): families sorted
// by name, series sorted by label set, one HELP and TYPE line per
// family. Histograms emit cumulative le buckets (final bucket +Inf),
// then _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, fam := range r.families {
		names = append(names, name)
		fams[name] = fam
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		fam := fams[name]
		sb.Reset()
		fmt.Fprintf(&sb, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, ch := range fam.sortedChildren() {
			switch fam.kind {
			case KindCounter:
				fmt.Fprintf(&sb, "%s%s %d\n", fam.name, braced(ch.labelKey), ch.counter.Value())
			case KindGauge:
				fmt.Fprintf(&sb, "%s%s %s\n", fam.name, braced(ch.labelKey), formatFloat(ch.gauge.Value()))
			case KindHistogram:
				writeHistogram(&sb, fam.name, ch)
			}
		}
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with
// the series labels plus le, then _sum and _count.
func writeHistogram(sb *strings.Builder, name string, ch *child) {
	h := ch.hist
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds)-1 {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, braced(joinLabels(ch.labelKey, `le="`+le+`"`)), cum)
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, braced(ch.labelKey), formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, braced(ch.labelKey), cum)
}

// sortedChildren snapshots the family's series sorted by label key.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].labelKey < out[b].labelKey })
	return out
}

func braced(body string) string {
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the text format: backslash and
// newline (double quotes are legal in HELP text).
func escapeHelp(help string) string {
	help = strings.ReplaceAll(help, `\`, `\\`)
	return strings.ReplaceAll(help, "\n", `\n`)
}

// SnapshotBucket is one cumulative histogram bucket in a Snapshot.
type SnapshotBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// SnapshotSeries is one series in a Snapshot: its labels plus either a
// scalar value (counter, gauge) or the histogram aggregate.
type SnapshotSeries struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	P50     *float64          `json:"p50,omitempty"`
	P95     *float64          `json:"p95,omitempty"`
	P99     *float64          `json:"p99,omitempty"`
	Buckets []SnapshotBucket  `json:"buckets,omitempty"`
}

// SnapshotFamily is one metric family in a Snapshot.
type SnapshotFamily struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help"`
	Series []SnapshotSeries `json:"series"`
}

// Snapshot renders the registry as a JSON-marshalable structure, the
// payload behind /debug/analytics. Families sort by name, series by
// label set; histogram series carry count, sum, p50/p95/p99 and the
// cumulative buckets. A nil registry snapshots empty.
func (r *Registry) Snapshot() []SnapshotFamily {
	if r == nil {
		return []SnapshotFamily{}
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, fam := range r.families {
		names = append(names, name)
		fams[name] = fam
	}
	r.mu.RUnlock()
	sort.Strings(names)

	out := make([]SnapshotFamily, 0, len(names))
	for _, name := range names {
		fam := fams[name]
		sf := SnapshotFamily{Name: fam.name, Type: fam.kind.String(), Help: fam.help}
		for _, ch := range fam.sortedChildren() {
			var labels map[string]string
			if len(ch.labels) > 0 {
				labels = make(map[string]string, len(ch.labels)/2)
				for i := 0; i < len(ch.labels); i += 2 {
					labels[ch.labels[i]] = ch.labels[i+1]
				}
			}
			ss := SnapshotSeries{Labels: labels}
			switch fam.kind {
			case KindCounter:
				v := float64(ch.counter.Value())
				ss.Value = &v
			case KindGauge:
				v := ch.gauge.Value()
				ss.Value = &v
			case KindHistogram:
				h := ch.hist
				count, sum := h.Count(), h.Sum()
				p50, p95, p99 := h.P50(), h.P95(), h.P99()
				ss.Count, ss.Sum, ss.P50, ss.P95, ss.P99 = &count, &sum, &p50, &p95, &p99
				var cum uint64
				for i := range h.counts {
					cum += h.counts[i].Load()
					le := "+Inf"
					if i < len(h.bounds)-1 {
						le = formatFloat(h.bounds[i])
					}
					ss.Buckets = append(ss.Buckets, SnapshotBucket{Le: le, Count: cum})
				}
			}
			sf.Series = append(sf.Series, ss)
		}
		out = append(out, sf)
	}
	return out
}
