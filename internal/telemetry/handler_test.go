package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestDebugTraceSurfaces(t *testing.T) {
	tr := trace.NewTracer(trace.Config{SampleRate: 1, SlowThreshold: time.Nanosecond})
	root := tr.StartRoot("query")
	root.SetAttrs(trace.Str("backend", "store"))
	root.Child("store.gather").Finish()
	root.Finish()

	srv := httptest.NewServer(HandlerWith(nil, DebugOptions{Tracer: tr, Pprof: true}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("/debug/traces has %d events, want 2", len(doc.TraceEvents))
	}

	sresp, err := srv.Client().Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var slow struct {
		Slow []trace.SlowEntry `json:"slow"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&slow); err != nil {
		t.Fatalf("/debug/slow not JSON: %v", err)
	}
	if len(slow.Slow) != 1 || slow.Slow[0].Name != "query" || len(slow.Slow[0].Stages) != 1 {
		t.Fatalf("/debug/slow = %+v", slow.Slow)
	}

	presp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", presp.StatusCode)
	}
}

func TestDebugSurfacesAbsentByDefault(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/debug/traces", "/debug/slow", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404 when not opted in", path, resp.StatusCode)
		}
	}
}

// TestServeTimeoutsHardened pins the slowloris fix: every server the
// demos start must carry a nonzero ReadHeaderTimeout (and companions).
func TestServeTimeoutsHardened(t *testing.T) {
	srv := Serve("127.0.0.1:0", nil)
	defer srv.Close()
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris foot-gun")
	}
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("timeouts unset: read=%v write=%v idle=%v",
			srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout)
	}
	// pprof's 30s default CPU profile must fit inside WriteTimeout.
	if srv.WriteTimeout < 31*time.Second {
		t.Fatalf("WriteTimeout %v too small for a 30s pprof profile", srv.WriteTimeout)
	}
}
