package anomaly

import (
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// HSTrees is the streaming half-space trees ensemble of Tan, Ting and Liu
// (IJCAI'11), cited in the survey's anomaly row: an ensemble of random
// binary trees over the (normalized) value space, each node splitting a
// randomly chosen dimension at its midpoint. Mass counts are collected in
// one window and used for scoring in the next (the reference/latest window
// flip), so the model adapts to drift without storing points.
//
// Scores are inverted mass: points falling into sparsely populated leaves
// score high.
type HSTrees struct {
	trees      []*hsNode
	depth      int
	windowSize int
	seen       int
	dims       int
	mins       []float64
	maxs       []float64
	warm       bool
}

type hsNode struct {
	dim         int
	split       float64
	left, right *hsNode
	refMass     float64 // mass from the reference window (used to score)
	latest      float64 // mass accumulating in the current window
}

// NewHSTrees returns an ensemble of trees half-space trees of the given
// depth over dims-dimensional points, flipping windows every windowSize
// observations. mins/maxs bound the value space (the workrange).
func NewHSTrees(trees, depth, dims, windowSize int, mins, maxs []float64, seed uint64) (*HSTrees, error) {
	if trees <= 0 {
		return nil, core.Errf("HSTrees", "trees", "%d must be positive", trees)
	}
	if depth <= 0 || depth > 20 {
		return nil, core.Errf("HSTrees", "depth", "%d not in [1,20]", depth)
	}
	if dims <= 0 {
		return nil, core.Errf("HSTrees", "dims", "%d must be positive", dims)
	}
	if windowSize <= 0 {
		return nil, core.Errf("HSTrees", "windowSize", "%d must be positive", windowSize)
	}
	if len(mins) != dims || len(maxs) != dims {
		return nil, core.Errf("HSTrees", "bounds", "mins/maxs must have %d entries", dims)
	}
	rng := workload.NewRNG(seed)
	h := &HSTrees{
		depth:      depth,
		windowSize: windowSize,
		dims:       dims,
		mins:       append([]float64(nil), mins...),
		maxs:       append([]float64(nil), maxs...),
	}
	for t := 0; t < trees; t++ {
		lo := append([]float64(nil), mins...)
		hi := append([]float64(nil), maxs...)
		h.trees = append(h.trees, buildHSNode(rng, lo, hi, depth))
	}
	return h, nil
}

func buildHSNode(rng *workload.RNG, lo, hi []float64, depth int) *hsNode {
	if depth == 0 {
		return &hsNode{dim: -1}
	}
	dim := rng.Intn(len(lo))
	split := (lo[dim] + hi[dim]) / 2
	n := &hsNode{dim: dim, split: split}
	oldHi := hi[dim]
	hi[dim] = split
	n.left = buildHSNode(rng, lo, hi, depth-1)
	hi[dim] = oldHi
	oldLo := lo[dim]
	lo[dim] = split
	n.right = buildHSNode(rng, lo, hi, depth-1)
	lo[dim] = oldLo
	return n
}

// ScorePoint ingests a dims-dimensional point and returns its anomaly
// score (higher = more anomalous). During the first (warm-up) window the
// score is 0 while reference mass accumulates.
func (h *HSTrees) ScorePoint(p []float64) float64 {
	score := 0.0
	for _, root := range h.trees {
		node := root
		depth := 0
		for node.dim >= 0 {
			node.latest++
			if p[node.dim] < node.split {
				node = node.left
			} else {
				node = node.right
			}
			depth++
		}
		node.latest++
		if h.warm {
			// Tan et al. scoring: leaf reference mass scaled by 2^depth;
			// low mass at high depth = anomalous. Invert so higher = worse.
			mass := node.refMass * math.Pow(2, float64(depth))
			score += 1 / (1 + mass)
		}
	}
	h.seen++
	if h.seen >= h.windowSize {
		h.flip()
		h.seen = 0
		h.warm = true
	}
	return score / float64(len(h.trees))
}

// Score implements Detector for one-dimensional streams.
func (h *HSTrees) Score(v float64) float64 { return h.ScorePoint([]float64{v}) }

func (h *HSTrees) flip() {
	for _, root := range h.trees {
		flipNode(root)
	}
}

func flipNode(n *hsNode) {
	if n == nil {
		return
	}
	n.refMass = n.latest
	n.latest = 0
	flipNode(n.left)
	flipNode(n.right)
}

// Warm reports whether a full reference window has been accumulated.
func (h *HSTrees) Warm() bool { return h.warm }
