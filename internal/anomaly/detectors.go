// Package anomaly implements streaming anomaly detection — the tutorial's
// Table 1 row motivated by sensor networks and, at Twitter, by operational
// metrics monitoring. It provides the standard detector ladder the survey's
// citations span:
//
//   - EWMA/z-score: parametric control-chart detection,
//   - robust median/MAD over sliding windows (non-parametric, resistant to
//     the anomalies themselves, cf. Subramaniam et al.),
//   - distribution-change detection between adjacent windows (the
//     Dasu et al. "change you can believe in" row),
//   - HS-trees (Tan–Ting–Liu "fast anomaly detection for streaming data"):
//     an ensemble of random half-space trees scoring mass profiles.
//
// All detectors share the Detector interface so the T1.11 experiment can
// score them uniformly against labelled synthetic streams.
package anomaly

import (
	"math"

	"repro/internal/core"
)

// Detector scores one observation at a time; higher scores are more
// anomalous. Implementations define their own scale; callers threshold.
type Detector interface {
	// Score ingests v and returns its anomaly score.
	Score(v float64) float64
}

// EWMA is an exponentially weighted moving average control chart: the
// score is the absolute z-score of the observation against the EW mean and
// EW variance. The classic first-line detector for metric spikes.
type EWMA struct {
	alpha    float64
	mean     float64
	variance float64
	n        uint64
}

// NewEWMA returns an EWMA detector with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, core.Errf("EWMA", "alpha", "%v not in (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// ewmaWarmup is the number of observations used purely to seed the
// baseline; control charts score nothing until the baseline exists.
const ewmaWarmup = 10

// Score ingests v and returns |z|, its distance from the EW mean in EW
// standard deviations. The first ewmaWarmup observations score 0 while
// they seed the baseline.
func (e *EWMA) Score(v float64) float64 {
	e.n++
	if e.n == 1 {
		e.mean = v
		return 0
	}
	var z float64
	if e.n > ewmaWarmup {
		sd := math.Sqrt(e.variance)
		if sd > 1e-12 {
			z = math.Abs(v-e.mean) / sd
		} else if v != e.mean {
			z = math.Inf(1)
		}
	}
	// Update after scoring so the anomaly does not mask itself.
	diff := v - e.mean
	incr := e.alpha * diff
	e.mean += incr
	e.variance = (1 - e.alpha) * (e.variance + diff*incr)
	return z
}

// Mean returns the current EW mean.
func (e *EWMA) Mean() float64 { return e.mean }

// MAD is a robust sliding-window detector: the score is the observation's
// distance from the window median in units of 1.4826*MAD (the consistent
// sigma estimate). Unlike EWMA, level shifts and heavy outliers inside the
// window barely perturb the baseline.
type MAD struct {
	window []float64
	pos    int
	filled int
}

// NewMAD returns a median/MAD detector over a window of n samples.
func NewMAD(n int) (*MAD, error) {
	if n < 3 {
		return nil, core.Errf("MAD", "n", "%d must be >= 3", n)
	}
	return &MAD{window: make([]float64, n)}, nil
}

// Score ingests v and returns its robust z-score against the current
// window (scored before insertion).
func (m *MAD) Score(v float64) float64 {
	var score float64
	if m.filled >= 3 {
		med := median(m.window[:m.filled])
		devs := make([]float64, m.filled)
		for i := 0; i < m.filled; i++ {
			devs[i] = math.Abs(m.window[i] - med)
		}
		mad := median(devs) * 1.4826
		if mad > 1e-12 {
			score = math.Abs(v-med) / mad
		} else if v != med {
			score = math.Inf(1)
		}
	}
	m.window[m.pos] = v
	m.pos = (m.pos + 1) % len(m.window)
	if m.filled < len(m.window) {
		m.filled++
	}
	return score
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion select via sort of a copy; windows are small
	quickSelectSort(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

func quickSelectSort(xs []float64) {
	// Small windows: insertion sort avoids the sort package's interface
	// overhead in the hot scoring loop.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// ChangeDetector detects distribution shifts by comparing the empirical
// CDFs of a reference window and the current window with a two-sample
// Kolmogorov–Smirnov statistic. The score is the KS distance in [0,1];
// when it exceeds the threshold the current window is promoted to the new
// reference (self-resetting change detection).
type ChangeDetector struct {
	size      int
	threshold float64
	ref       []float64
	cur       []float64
	changes   []uint64
	n         uint64
}

// NewChangeDetector returns a KS change detector with the given window
// size and promotion threshold.
func NewChangeDetector(size int, threshold float64) (*ChangeDetector, error) {
	if size < 8 {
		return nil, core.Errf("ChangeDetector", "size", "%d must be >= 8", size)
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, core.Errf("ChangeDetector", "threshold", "%v not in (0,1)", threshold)
	}
	return &ChangeDetector{size: size, threshold: threshold}, nil
}

// Score ingests v and returns the current KS distance between reference
// and current windows (0 until both are full).
func (c *ChangeDetector) Score(v float64) float64 {
	c.n++
	if len(c.ref) < c.size {
		c.ref = append(c.ref, v)
		return 0
	}
	c.cur = append(c.cur, v)
	if len(c.cur) < c.size {
		return 0
	}
	d := ksDistance(c.ref, c.cur)
	if d > c.threshold {
		c.changes = append(c.changes, c.n)
		c.ref = append(c.ref[:0], c.cur...)
	}
	// Slide the current window by half for overlap.
	c.cur = append(c.cur[:0], c.cur[c.size/2:]...)
	return d
}

// Changes returns the stream positions at which shifts were declared.
func (c *ChangeDetector) Changes() []uint64 { return c.changes }

func ksDistance(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	quickSelectSort(sa)
	quickSelectSort(sb)
	i, j := 0, 0
	maxD := 0.0
	for i < len(sa) && j < len(sb) {
		if sa[i] <= sb[j] {
			i++
		} else {
			j++
		}
		d := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
