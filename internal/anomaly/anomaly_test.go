package anomaly

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// scoreSeries runs a detector over a labelled series and returns
// (truePositives, falsePositives, positives) at the given threshold.
func scoreSeries(d Detector, s workload.Series, threshold float64, slack int) (tp, fp, anomalous int) {
	fired := map[int]bool{}
	for i, v := range s.Values {
		if d.Score(v) > threshold {
			fired[i] = true
		}
	}
	for i := range fired {
		if s.IsAnomalous(i, slack) {
			tp++
		} else {
			fp++
		}
	}
	return tp, fp, len(fired)
}

func spikeSeries(seed uint64) workload.Series {
	spec := workload.SeriesSpec{N: 5000, Base: 100, NoiseSD: 2}
	anoms := []workload.Anomaly{
		{Kind: workload.Spike, Index: 1000, Len: 1, Mag: 12},
		{Kind: workload.Spike, Index: 2500, Len: 1, Mag: 15},
		{Kind: workload.Spike, Index: 4000, Len: 1, Mag: 10},
	}
	return spec.Generate(workload.NewRNG(seed), anoms)
}

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("alpha>1 accepted")
	}
}

func TestEWMADetectsSpikes(t *testing.T) {
	s := spikeSeries(1)
	d, _ := NewEWMA(0.05)
	tp, fp, _ := scoreSeries(d, s, 6, 1)
	if tp < 3 {
		t.Fatalf("EWMA found %d/3 spikes", tp)
	}
	if fp > 5 {
		t.Fatalf("EWMA fired %d false positives", fp)
	}
}

func TestEWMATracksDrift(t *testing.T) {
	// A slow trend must not fire a well-tuned EWMA.
	spec := workload.SeriesSpec{N: 5000, Base: 0, Trend: 0.01, NoiseSD: 1}
	s := spec.Generate(workload.NewRNG(2), nil)
	d, _ := NewEWMA(0.1)
	_, fp, _ := scoreSeries(d, s, 6, 0)
	if fp > 5 {
		t.Fatalf("EWMA fired %d times on pure drift", fp)
	}
}

func TestMADRobustToLevelShift(t *testing.T) {
	// After a level shift, MAD should fire at the shift boundary and then
	// re-adapt once the window fills with the new level.
	spec := workload.SeriesSpec{N: 4000, Base: 50, NoiseSD: 1}
	anoms := []workload.Anomaly{{Kind: workload.LevelShift, Index: 2000, Len: 2000, Mag: 20}}
	s := spec.Generate(workload.NewRNG(3), anoms)
	d, _ := NewMAD(200)
	fires := []int{}
	for i, v := range s.Values {
		if d.Score(v) > 8 {
			fires = append(fires, i)
		}
	}
	if len(fires) == 0 {
		t.Fatal("MAD never fired on a 20-sigma level shift")
	}
	if fires[0] < 1990 || fires[0] > 2010 {
		t.Fatalf("first fire at %d, want ~2000", fires[0])
	}
	// It must stop firing once adapted (no fires in the last quarter).
	for _, f := range fires {
		if f > 3000 {
			t.Fatalf("MAD still firing at %d after adaptation window", f)
		}
	}
}

func TestMADHandlesConstantSeries(t *testing.T) {
	d, _ := NewMAD(50)
	for i := 0; i < 200; i++ {
		if s := d.Score(5); i > 3 && s != 0 {
			t.Fatalf("constant series scored %v", s)
		}
	}
	// A deviation from a constant series is infinitely surprising.
	if s := d.Score(6); !math.IsInf(s, 1) {
		t.Fatalf("deviation from constant scored %v", s)
	}
}

func TestChangeDetectorFindsDistributionShift(t *testing.T) {
	d, err := NewChangeDetector(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(4)
	// 2000 samples N(0,1), then 2000 samples N(5,1).
	for i := 0; i < 2000; i++ {
		d.Score(rng.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		d.Score(5 + rng.NormFloat64())
	}
	changes := d.Changes()
	if len(changes) == 0 {
		t.Fatal("no change detected across a 5-sigma mean shift")
	}
	first := changes[0]
	if first < 2000 || first > 2400 {
		t.Fatalf("change detected at %d, want shortly after 2000", first)
	}
	if len(changes) > 3 {
		t.Fatalf("%d changes declared for a single shift", len(changes))
	}
}

func TestChangeDetectorQuietOnStationary(t *testing.T) {
	d, _ := NewChangeDetector(100, 0.5)
	rng := workload.NewRNG(5)
	for i := 0; i < 10000; i++ {
		d.Score(rng.NormFloat64())
	}
	if n := len(d.Changes()); n != 0 {
		t.Fatalf("%d spurious changes on stationary stream", n)
	}
}

func TestHSTreesValidation(t *testing.T) {
	if _, err := NewHSTrees(0, 5, 1, 100, []float64{0}, []float64{1}, 1); err == nil {
		t.Fatal("trees=0 accepted")
	}
	if _, err := NewHSTrees(5, 5, 2, 100, []float64{0}, []float64{1}, 1); err == nil {
		t.Fatal("bounds dim mismatch accepted")
	}
}

func TestHSTreesScoresOutliersHigher(t *testing.T) {
	h, err := NewHSTrees(25, 8, 1, 500, []float64{0}, []float64{1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(6)
	// Warm up with mass concentrated near 0.5.
	for i := 0; i < 2000; i++ {
		h.Score(0.5 + rng.NormFloat64()*0.02)
	}
	if !h.Warm() {
		t.Fatal("not warm after 4 windows")
	}
	inlier := h.Score(0.5)
	outlier := h.Score(0.95)
	if outlier <= inlier {
		t.Fatalf("outlier %v not above inlier %v", outlier, inlier)
	}
}

func TestHSTreesAdaptsAfterWindows(t *testing.T) {
	h, _ := NewHSTrees(25, 8, 1, 500, []float64{0}, []float64{1}, 8)
	rng := workload.NewRNG(7)
	for i := 0; i < 2000; i++ {
		h.Score(0.2 + rng.NormFloat64()*0.02)
	}
	before := h.Score(0.8)
	// Move the distribution to 0.8 for several windows; it must stop being
	// anomalous.
	for i := 0; i < 2000; i++ {
		h.Score(0.8 + rng.NormFloat64()*0.02)
	}
	after := h.Score(0.8)
	if after >= before {
		t.Fatalf("model did not adapt: before %v after %v", before, after)
	}
}

func BenchmarkEWMAScore(b *testing.B) {
	d, _ := NewEWMA(0.05)
	for i := 0; i < b.N; i++ {
		d.Score(float64(i % 100))
	}
}

func BenchmarkMADScore(b *testing.B) {
	d, _ := NewMAD(100)
	for i := 0; i < b.N; i++ {
		d.Score(float64(i % 100))
	}
}

func BenchmarkHSTreesScore(b *testing.B) {
	h, _ := NewHSTrees(25, 10, 1, 1000, []float64{0}, []float64{1}, 1)
	for i := 0; i < b.N; i++ {
		h.Score(float64(i%100) / 100)
	}
}
