// Package lambda implements the Lambda Architecture of the tutorial's
// Figure 1 on the repo's real subsystems, with each numbered stage of the
// figure as an explicit component:
//
//  1. incoming data is dispatched to both the batch and speed layers
//     (Append): the master dataset is an immutable mqlog topic — every
//     observation is encoded with the store wire codec and appended,
//     keyed so a series always lands in one partition — and the same
//     observation feeds the speed layer;
//  2. the batch layer recomputes batch views from the master dataset
//     alone (RunBatch): a fresh sketch store replayed up to a frozen
//     end-offset snapshot (store.FreezeAt over an end-offset-bounded
//     mqlog reader), never patched incrementally;
//  3. the serving layer indexes the batch view for low-latency reads:
//     the sealed store.FrozenView, swapped in atomically;
//  4. the speed layer absorbs what the batch view does not yet cover: a
//     sharded store.Store (hot-key splaying and all) fed synchronously by
//     Append, or — behind Config.Cluster — a partitioned dstore cluster
//     consuming the master topic through its router;
//  5. queries merge the batch and realtime views (Query): the two
//     synopsis snapshots combine through store.CombineSnapshots, so one
//     code path answers counters, cardinality, quantiles and top-k.
//
// # Offset fencing
//
// The two layers partition the log by offset, per partition: a batch view
// frozen at end-offset snapshot E answers exactly for [0, E), and the
// speed layer is truncated to [E, ...) at every batch handoff — a fresh
// speed store replayed from the fence (single-store mode, atomically
// under the append lock) or dstore.TruncateBelow + rebuild (cluster
// mode). Merged answers therefore cover every appended observation
// exactly once; TestMergedMatchesOracleAcrossBoundaries and experiment
// F1.2 pin this against a replay-everything oracle across batch
// boundaries. Retention on the master topic bounds recomputation the
// usual way: history the log has dropped is gone for every layer equally
// (FrozenView.Truncated reports it).
//
// The old package-local master dataset (an event slice) and keyed-counter
// speed layer are gone: the same store/mqlog/dstore seams the rest of the
// repo serves production traffic through are the only implementation.
package lambda

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dstore"
	"repro/internal/mqlog"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config tunes an Architecture.
type Config struct {
	// Topic names the master-dataset topic (default "lambda-master").
	// Ignored in cluster mode, where the cluster's ingest topic — named,
	// partitioned and retained by Cluster's own config — is the master.
	Topic string
	// Partitions is the master topic's partition count (default 4).
	// Ignored in cluster mode (see Topic).
	Partitions int
	// Retention is the per-partition retention limit in messages
	// (0 = unlimited). Batch recomputation replays the retained prefix,
	// so retention bounds how far back a batch view can reach. Ignored in
	// cluster mode (see Topic): set Cluster.Retention instead.
	Retention int
	// Batch is the batch-layer store geometry views are recomputed with.
	Batch store.Config
	// Speed is the speed-layer store geometry (single-store mode). Enable
	// Speed.HotKey to run the T2.5 write-combining path under Lambda.
	Speed store.Config
	// Cluster, when non-nil, replaces the single speed store with a
	// partitioned dstore cluster: Appends route through the cluster's
	// Router onto its ingest topic (which becomes the master dataset) and
	// speed queries are owner-routed. Cluster.Store supplies the per-node
	// geometry; Config.Speed is ignored.
	Cluster *dstore.Config
	// ClusterNodes is how many nodes to start in cluster mode (default 2).
	ClusterNodes int
	// Durable, when non-nil, backs the master topic with segmented
	// on-disk persistence (see mqlog.DurableConfig), so the master
	// dataset survives a process restart. In cluster mode it is copied
	// into the cluster config (unless Cluster.Durable is already set),
	// since the cluster's ingest topic is the master.
	Durable *mqlog.DurableConfig
	// CheckpointDir, when non-empty, makes batch recomputation
	// incremental across restarts: RunBatch writes each installed view's
	// checkpoint there, and the next RunBatch (in this process or a
	// restarted one) seeds its view from the snapshot and replays only
	// the log suffix past it (store.FreezeAtFrom).
	CheckpointDir string
}

func (c Config) withDefaults() Config {
	if c.Topic == "" {
		c.Topic = "lambda-master"
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.ClusterNodes <= 0 {
		c.ClusterNodes = 2
	}
	return c
}

// BatchInfo describes one completed batch run.
type BatchInfo struct {
	Version        uint64   // 1 for the first batch view, then increasing
	Ends           []uint64 // per-partition frozen end offsets the view covers
	Applied        uint64   // observations the recompute replayed (suffix only when FromCheckpoint)
	Truncated      bool     // part of the covered range was lost to retention
	Restored       uint64   // bucket records rehydrated from a checkpoint
	FromCheckpoint bool     // the view was seeded from a checkpoint
}

// Architecture wires the layers together per Figure 1.
type Architecture struct {
	cfg   Config
	topic *mqlog.Topic

	// protoMu guards protos; the map is read on every Append/Query in
	// single-store mode, so reads go through an RLock (cluster mode reads
	// the cluster's lock-free table instead).
	protoMu sync.RWMutex
	protos  map[string]store.Prototype

	// speedMu is the handoff lock: Append dispatches under RLock, RunBatch
	// swaps the truncated speed store under Lock, so a batch cutover sees
	// a drained, frozen log tail. Cluster mode never takes it on the write
	// path (the router is the synchronization point).
	speedMu sync.RWMutex
	speed   *store.Store

	cluster *dstore.Cluster
	started atomic.Bool
	startMu sync.Mutex

	// batch is the serving layer: the latest sealed view, swapped
	// atomically; nil before the first RunBatch.
	batch   atomic.Pointer[store.FrozenView]
	batchMu sync.Mutex // serializes batch runs
	version atomic.Uint64

	appended atomic.Uint64

	// tel is the architecture's telemetry wiring (telemetry.go), swapped
	// atomically so SetTelemetry can be called on a live architecture.
	tel atomic.Pointer[archTel]

	// trc is the architecture's tracer (trace_wire.go), same live-wiring
	// discipline as tel; nil means tracing is off.
	trc atomic.Pointer[trace.Tracer]
}

// New returns a store-backed Lambda Architecture. Register metrics, then
// Append/Query; RunBatch whenever the batch cadence fires.
func New(cfg Config) (*Architecture, error) {
	if cfg.Retention < 0 {
		return nil, core.Errf("Lambda", "Retention", "%d must be >= 0", cfg.Retention)
	}
	cfg = cfg.withDefaults()
	a := &Architecture{cfg: cfg, protos: make(map[string]store.Prototype)}
	// Validate both layer geometries eagerly: a config that cannot build a
	// store must fail here, not at the first batch run.
	if _, err := store.New(cfg.Batch); err != nil {
		return nil, fmt.Errorf("lambda: batch store config: %w", err)
	}
	if cfg.Cluster != nil {
		ccfg := *cfg.Cluster
		if ccfg.Durable == nil {
			// The cluster's ingest topic is the master dataset, so the
			// architecture's durability setting belongs to it.
			ccfg.Durable = cfg.Durable
		}
		cl, err := dstore.New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("lambda: cluster speed layer: %w", err)
		}
		a.cluster = cl
		a.topic = cl.Topic()
		return a, nil
	}
	speed, err := store.New(cfg.Speed)
	if err != nil {
		return nil, fmt.Errorf("lambda: speed store config: %w", err)
	}
	a.speed = speed
	topic, err := mqlog.NewBroker().CreateTopicDurable(cfg.Topic, cfg.Partitions, cfg.Retention, cfg.Durable)
	if err != nil {
		return nil, err
	}
	a.topic = topic
	return a, nil
}

// RegisterMetric binds a metric name to the synopsis prototype both
// layers build buckets with. Register every metric before the first
// Append (cluster nodes rebuild stores from the registered set, and a
// batch view recomputed without a metric could not absorb its history).
func (a *Architecture) RegisterMetric(name string, proto store.Prototype) error {
	if a.started.Load() {
		return fmt.Errorf("lambda: register metric %q before the first append", name)
	}
	if a.cluster != nil {
		if err := a.cluster.RegisterMetric(name, proto); err != nil {
			return err
		}
	} else {
		if err := a.speed.RegisterMetric(name, proto); err != nil {
			return err
		}
	}
	a.protoMu.Lock()
	a.protos[name] = proto
	a.protoMu.Unlock()
	return nil
}

// Metrics returns the registered metric names (unordered).
func (a *Architecture) Metrics() []string {
	a.protoMu.RLock()
	defer a.protoMu.RUnlock()
	out := make([]string, 0, len(a.protos))
	for name := range a.protos {
		out = append(out, name)
	}
	return out
}

func (a *Architecture) proto(metric string) (store.Prototype, error) {
	a.protoMu.RLock()
	p, ok := a.protos[metric]
	a.protoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lambda: %w %q", store.ErrUnknownMetric, metric)
	}
	return p, nil
}

// protoTable snapshots the registered metrics for a batch recompute.
func (a *Architecture) protoTable() map[string]store.Prototype {
	a.protoMu.RLock()
	defer a.protoMu.RUnlock()
	out := make(map[string]store.Prototype, len(a.protos))
	for name, p := range a.protos {
		out[name] = p
	}
	return out
}

// ensureStarted performs the lazy cluster-node start on the first append
// or query, after which the metric set is immutable.
func (a *Architecture) ensureStarted() error {
	if a.started.Load() {
		return nil
	}
	a.startMu.Lock()
	defer a.startMu.Unlock()
	if a.started.Load() {
		return nil
	}
	if a.cluster != nil {
		for i := 0; i < a.cfg.ClusterNodes; i++ {
			if _, err := a.cluster.StartNode(); err != nil {
				return err
			}
		}
	}
	a.started.Store(true)
	return nil
}

// Append dispatches one observation to both layers (Figure 1, step 1):
// the wire-encoded observation is appended to the master topic — keyed by
// obs.Key, so a series replays in append order — and the same observation
// lands in the speed layer. In single-store mode the speed write is
// synchronous (read-your-writes); in cluster mode the router batches onto
// the log and the owning node applies it (Drain the architecture's
// Cluster for read-your-writes).
func (a *Architecture) Append(obs store.Observation) error {
	if err := a.ensureStarted(); err != nil {
		return err
	}
	if a.cluster != nil {
		// The router validates, encodes, and appends; nodes consume. One
		// dispatch reaches both layers because both read the same log.
		if err := a.cluster.Router().Observe(obs); err != nil {
			return err
		}
		a.appended.Add(1)
		return nil
	}
	// Validate before producing: the master dataset is immutable, so a
	// rejected observation must not have been appended. The checks mirror
	// the cluster router's, so a program can switch speed-layer modes
	// without its accepted-input surface moving.
	if obs.Time < 0 {
		return core.Errf("Lambda", "Time", "%d must be >= 0", obs.Time)
	}
	if obs.Key == "" {
		return core.Errf("Lambda", "Key", "must be non-empty (keys route the master log's partitions)")
	}
	if _, err := a.proto(obs.Metric); err != nil {
		return err
	}
	a.speedMu.RLock()
	defer a.speedMu.RUnlock()
	a.topic.Produce(obs.Key, store.EncodeObservation(obs))
	a.appended.Add(1)
	return a.speed.Observe(obs)
}

// ObserveBatch dispatches a whole slice of observations with amortized
// overhead: in cluster mode the router's batched path groups records
// per partition; in single-store mode the entire batch is validated
// first (a rejected batch appends NOTHING to the immutable master
// dataset), then one append-lock acquisition covers every Produce and
// the speed store absorbs the batch through its own amortized path.
// Per-key order is input order in both modes, so an accepted batch is
// byte-identical to a loop of Append.
func (a *Architecture) ObserveBatch(obs []store.Observation) error {
	if len(obs) == 0 {
		return nil
	}
	if err := a.ensureStarted(); err != nil {
		return err
	}
	if a.cluster != nil {
		if err := a.cluster.Router().ObserveBatch(obs); err != nil {
			return err
		}
		a.appended.Add(uint64(len(obs)))
		return nil
	}
	for i := range obs {
		o := &obs[i]
		if o.Time < 0 {
			return core.Errf("Lambda", "Time", "%d must be >= 0", o.Time)
		}
		if o.Key == "" {
			return core.Errf("Lambda", "Key", "must be non-empty (keys route the master log's partitions)")
		}
		if _, err := a.proto(o.Metric); err != nil {
			return err
		}
	}
	a.speedMu.RLock()
	defer a.speedMu.RUnlock()
	for i := range obs {
		a.topic.Produce(obs[i].Key, store.EncodeObservation(obs[i]))
	}
	a.appended.Add(uint64(len(obs)))
	return a.speed.ObserveBatch(obs)
}

// RunBatch recomputes the batch view from the master dataset alone
// (step 2), installs it in the serving layer (step 3), and truncates the
// speed layer to the uncovered suffix (step 4). The freeze point is an
// end-offset snapshot taken at entry; appends keep flowing into the old
// speed layer while the recompute runs, and the cutover — install view,
// swap in a speed store replayed from the fence — is atomic under the
// append lock (single-store mode) or handed to the cluster's truncation
// rebuild (cluster mode; exact once RunBatch returns, because it drains).
func (a *Architecture) RunBatch() (BatchInfo, error) {
	if err := a.ensureStarted(); err != nil {
		return BatchInfo{}, err
	}
	a.batchMu.Lock()
	defer a.batchMu.Unlock()

	tel := a.tel.Load()
	var handoffStart time.Time
	if tel != nil {
		handoffStart = time.Now()
	}
	if a.cluster != nil {
		// Settle producer-side batches so the freeze covers them.
		a.cluster.Router().Flush()
	}
	ends := a.topic.EndOffsets()
	var freezeStart time.Time
	if tel != nil {
		freezeStart = time.Now()
	}
	// With a CheckpointDir the recompute is incremental: the previous
	// run's snapshot (possibly from a previous process) seeds the view
	// and only the log suffix past it replays. Without one, or when the
	// snapshot no longer fits, this is the full [0, ends) recompute.
	view, err := store.FreezeAtFrom(a.cfg.Batch, a.protoTable(), a.topic, ends, nil, a.cfg.CheckpointDir)
	if err != nil {
		return BatchInfo{}, err
	}
	if tel != nil {
		tel.freeze.ObserveSince(freezeStart)
	}
	var truncStart time.Time
	if tel != nil {
		truncStart = time.Now()
	}

	if a.cluster != nil {
		// Install the view first, then shed the covered prefix: the brief
		// overlap double-covers (never drops) history, and the drain below
		// restores exactness before RunBatch returns. The version bumps
		// with the install, so even an error from the truncation or drain
		// below leaves BatchVersion counting the views actually serving.
		a.batch.Store(view)
		a.version.Add(1)
		if err := a.cluster.TruncateBelow(ends); err != nil {
			return BatchInfo{}, err
		}
		if err := a.cluster.Drain(); err != nil {
			return BatchInfo{}, err
		}
	} else {
		// Single-store cutover: block appends, replay the post-freeze
		// suffix [ends, live end) into a fresh speed store, swap both
		// pointers. The replay cost is one inter-batch delta — the same
		// work the old buffer-expiry rebuild paid, against the log.
		fresh, err := store.New(a.cfg.Speed)
		if err != nil {
			return BatchInfo{}, err
		}
		for name, proto := range a.protoTable() {
			if err := fresh.RegisterMetric(name, proto); err != nil {
				return BatchInfo{}, err
			}
		}
		if tel != nil {
			// Re-bind the speed layer's metric series to the replacement
			// store before it serves (re-registration swaps the callbacks).
			fresh.SetTelemetry(tel.reg, "layer", "lambda_speed")
		}
		if tr := a.trc.Load(); tr != nil {
			fresh.SetTracer(tr)
		}
		a.speedMu.Lock()
		for pid := 0; pid < a.topic.Partitions(); pid++ {
			if _, _, _, err := store.ReplayPartitionTo(fresh, a.topic, pid, ends[pid], a.topic.EndOffset(pid), nil); err != nil {
				a.speedMu.Unlock()
				return BatchInfo{}, err
			}
		}
		fresh.FlushHot()
		a.speed = fresh
		a.batch.Store(view)
		a.version.Add(1)
		a.speedMu.Unlock()
	}
	if tel != nil {
		tel.truncate.ObserveSince(truncStart)
		tel.handoff.ObserveSince(handoffStart)
	}
	info := BatchInfo{
		Version:        a.version.Load(),
		Ends:           view.EndOffsets(),
		Applied:        view.Applied(),
		Truncated:      view.Truncated(),
		Restored:       view.Restored(),
		FromCheckpoint: view.FromCheckpoint(),
	}
	if a.cfg.CheckpointDir != "" {
		// Persist the just-installed view after the handoff completes: a
		// write failure costs only the next run's fast path, but the
		// caller should know — the view is serving either way (Version
		// already counts it).
		if _, err := view.WriteCheckpoint(a.cfg.CheckpointDir); err != nil {
			return info, fmt.Errorf("lambda: batch checkpoint: %w", err)
		}
	}
	return info, nil
}

// Observe absorbs one observation — the analytics.Backend spelling of
// Append (every observation a Lambda absorbs is dispatched to both
// layers, so "observe" and "append to the master dataset" are the same
// act here).
func (a *Architecture) Observe(obs store.Observation) error { return a.Append(obs) }

// Query answers one serving-API request by combining the batch and
// realtime views (step 5): for every requested (metric, key) cell the
// sealed batch snapshot and the live speed snapshot merge through
// store.CombineSnapshots, whatever the metric's family; aggregate
// requests then merge the per-key cells in sorted key order. Before the
// first batch run the answer is the speed layer's alone. In single-store
// mode the (batch view, speed store) pair is snapshotted under the same
// read lock RunBatch's cutover writes both sides under, so a query can
// never pair an old speed store with a new batch view (which would
// double-count the inter-batch delta) or the reverse (which would drop
// it); the speed side of every requested cell is gathered under that one
// read lock, so a multi-key query costs one handoff-lock round-trip, not
// one per key. In cluster mode the speed side is one generation-fenced
// scatter-gather per metric.
func (a *Architecture) Query(req store.QueryRequest) (store.QueryResult, error) {
	return a.QueryContext(context.Background(), req)
}

// queryCancelled wraps a context error so errors.Is still sees
// context.Canceled / context.DeadlineExceeded through the wrap.
func queryCancelled(err error) error {
	return fmt.Errorf("lambda: query cancelled: %w", err)
}

// QueryContext is Query honoring a deadline: ctx threads into the speed
// layer's gather (the store's per-shard fan-out, or the cluster's
// scatter-gather in cluster mode) and is re-checked between the merge
// phases, so a cancelled or expired context aborts the request with an
// error wrapping ctx.Err(). The batch view is sealed and the merge
// allocates only private state, so an aborted query leaves nothing to
// clean up. context.Background() recovers plain Query exactly.
func (a *Architecture) QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error) {
	if err := a.ensureStarted(); err != nil {
		return store.QueryResult{}, err
	}
	req, err := req.Normalize()
	if err != nil {
		return store.QueryResult{}, err
	}
	protos := make([]store.Prototype, len(req.Metrics))
	for i, metric := range req.Metrics {
		if protos[i], err = a.proto(metric); err != nil {
			return store.QueryResult{}, err
		}
	}

	// A traced request records one child span per merge stage — speed
	// gather, batch-view read, cell-wise merge — parented on the caller's
	// context; an untraced request pays one Valid check. The deferred
	// finishes only matter on error returns (Finish is idempotent).
	var tr *trace.Tracer
	if req.Trace.Valid() {
		tr = a.trc.Load()
	}

	// Phase 1: snapshot the (batch view, speed layer) pair and gather the
	// speed side of every cell. AllKeys resolves against the union of both
	// layers' resident keys, so a key only the batch view still holds is
	// answered too.
	var ssp *trace.Span
	if tr != nil {
		ssp = tr.StartRemote(req.Trace, "lambda.speed")
		defer ssp.Finish()
	}
	var view *store.FrozenView
	keysPerMetric := make([][]string, len(req.Metrics))
	speedPerMetric := make([][]store.Synopsis, len(req.Metrics))
	gather := func(speed func(store.QueryRequest) (store.QueryResult, error), speedKeys func(string) []string) error {
		for i, metric := range req.Metrics {
			keys := req.Keys
			if req.AllKeys {
				keys = unionKeys(speedKeys(metric), viewKeys(view, metric))
			}
			keysPerMetric[i] = keys
			if len(keys) == 0 {
				continue
			}
			// The sub-request carries the speed span's context, so the
			// store's per-shard gather spans (and, in cluster mode, the
			// router's scatter spans) nest under lambda.speed.
			res, err := speed(store.QueryRequest{Metric: metric, Keys: keys, From: req.From, To: req.To, Trace: ssp.Context()})
			if err != nil {
				return err
			}
			speedPerMetric[i] = res.RawSynopses()
		}
		return nil
	}
	if a.cluster != nil {
		// Cluster mode: the handoff is install-view-then-truncate, so a
		// query racing a rebuild transiently double-covers (never drops)
		// history; RunBatch drains before returning to restore exactness.
		view = a.batch.Load()
		r := a.cluster.Router()
		speed := func(q store.QueryRequest) (store.QueryResult, error) { return r.QueryContext(ctx, q) }
		if err := gather(speed, r.Keys); err != nil {
			return store.QueryResult{}, err
		}
	} else {
		a.speedMu.RLock()
		view = a.batch.Load()
		speed := func(q store.QueryRequest) (store.QueryResult, error) { return a.speed.QueryContext(ctx, q) }
		err := gather(speed, a.speed.Keys)
		a.speedMu.RUnlock()
		if err != nil {
			return store.QueryResult{}, err
		}
	}
	if ssp != nil {
		cells := 0
		for _, keys := range keysPerMetric {
			cells += len(keys)
		}
		ssp.SetAttrs(trace.Int("metrics", int64(len(req.Metrics))), trace.Int("cells", int64(cells)))
		ssp.Finish()
	}

	// Phase 2a: the view is sealed, so querying it outside the lock is
	// safe; read the batch side of every cell.
	var bsp *trace.Span
	if tr != nil {
		bsp = tr.StartRemote(req.Trace, "lambda.batch")
		defer bsp.Finish()
	}
	batchPerMetric := make([][]store.Synopsis, len(req.Metrics))
	if view != nil {
		for i, metric := range req.Metrics {
			keys := keysPerMetric[i]
			if len(keys) == 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return store.QueryResult{}, queryCancelled(err)
			}
			res, err := view.Query(store.QueryRequest{Metric: metric, Keys: keys, From: req.From, To: req.To})
			if err != nil {
				return store.QueryResult{}, err
			}
			batchPerMetric[i] = res.RawSynopses()
		}
	}
	if bsp != nil {
		bsp.SetAttrs(trace.Bool("view", view != nil), trace.Int("version", int64(a.version.Load())))
		bsp.Finish()
	}

	// Phase 2b: merge batch and speed cell-wise, then aggregate if asked.
	var msp *trace.Span
	if tr != nil {
		msp = tr.StartRemote(req.Trace, "lambda.merge")
		defer msp.Finish()
	}
	var answers []store.Answer
	mergedCells := 0
	for i, metric := range req.Metrics {
		if err := ctx.Err(); err != nil {
			return store.QueryResult{}, queryCancelled(err)
		}
		keys := keysPerMetric[i]
		batchSyns := batchPerMetric[i]
		merged := make([]store.Synopsis, len(keys))
		for j := range keys {
			var batchSyn, speedSyn store.Synopsis
			if batchSyns != nil {
				batchSyn = batchSyns[j]
			}
			if speedPerMetric[i] != nil {
				speedSyn = speedPerMetric[i][j]
			}
			if merged[j], err = store.CombineSnapshots(protos[i], batchSyn, speedSyn); err != nil {
				return store.QueryResult{}, err
			}
		}
		if t := a.tel.Load(); t != nil {
			t.merges.Add(uint64(len(keys)))
		}
		mergedCells += len(keys)
		if req.Aggregate {
			comb, err := store.CombineSnapshots(protos[i], merged...)
			if err != nil {
				return store.QueryResult{}, err
			}
			answers = append(answers, store.NewAggregateAnswer(metric, comb))
			continue
		}
		for j, key := range keys {
			answers = append(answers, store.NewAnswer(metric, key, merged[j]))
		}
	}
	if msp != nil {
		msp.SetAttrs(trace.Int("cells", int64(mergedCells)))
		msp.Finish()
	}
	return store.NewQueryResult(answers), nil
}

// viewKeys returns the metric's keys resident in the batch view (nil
// before the first batch run).
func viewKeys(view *store.FrozenView, metric string) []string {
	if view == nil {
		return nil
	}
	return view.Keys(metric)
}

// unionKeys merges key slices into one sorted, deduplicated union.
func unionKeys(parts ...[]string) []string {
	var out []string
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Strings(out)
	return slices.Compact(out)
}

// QueryPoint answers a legacy point query (inclusive [from, to]) for one
// series — a thin wrapper over Query; see its layer-pairing contract.
func (a *Architecture) QueryPoint(metric, key string, from, to int64) (store.Synopsis, error) {
	res, err := a.Query(store.PointRequest(metric, key, from, to))
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// BatchOnlyQuery answers from the serving layer alone — the stale answer
// a batch-only system would give between recomputes, used by the F1
// staleness experiment. Before the first batch run it answers empty.
// The range is inclusive, as in QueryPoint.
func (a *Architecture) BatchOnlyQuery(metric, key string, from, to int64) (store.Synopsis, error) {
	if view := a.batch.Load(); view != nil {
		return view.QueryPoint(metric, key, from, to)
	}
	proto, err := a.proto(metric)
	if err != nil {
		return nil, err
	}
	return proto(), nil
}

// Keys returns the union of keys for the metric across the batch and
// speed layers (unordered, deduplicated). As in Query, single-store mode
// snapshots the layer pair under the cutover's read lock.
func (a *Architecture) Keys(metric string) []string {
	seen := make(map[string]struct{})
	var view *store.FrozenView
	if a.cluster != nil {
		view = a.batch.Load()
		for _, k := range a.cluster.Router().Keys(metric) {
			seen[k] = struct{}{}
		}
	} else {
		a.speedMu.RLock()
		view = a.batch.Load()
		for _, k := range a.speed.Keys(metric) {
			seen[k] = struct{}{}
		}
		a.speedMu.RUnlock()
	}
	if view != nil {
		for _, k := range view.Keys(metric) {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

// BatchView returns the current sealed batch view (nil before the first
// RunBatch).
func (a *Architecture) BatchView() *store.FrozenView { return a.batch.Load() }

// BatchVersion returns how many batch views have been installed.
func (a *Architecture) BatchVersion() uint64 { return a.version.Load() }

// Staleness returns the number of appended observations not yet covered
// by the batch view — the speed layer's raison d'être. It counts against
// Appended rather than the log's end offsets so cluster-mode router
// buffers (appended from the caller's point of view, not yet flushed to
// the log) are included.
func (a *Architecture) Staleness() uint64 {
	var covered uint64
	if view := a.batch.Load(); view != nil {
		for _, e := range view.EndOffsets() {
			covered += e
		}
	}
	appended := a.appended.Load()
	if appended < covered {
		// Producers writing to the master topic directly (not through
		// Append) inflate coverage past our own count; clamp.
		return 0
	}
	return appended - covered
}

// MasterLen returns the total number of messages ever appended to the
// master topic (per-partition end offsets are monotone, so this counts
// through retention).
func (a *Architecture) MasterLen() uint64 {
	var total uint64
	for _, end := range a.topic.EndOffsets() {
		total += end
	}
	return total
}

// Appended returns the observations dispatched through Append.
func (a *Architecture) Appended() uint64 { return a.appended.Load() }

// Topic returns the master-dataset topic (the cluster's ingest topic in
// cluster mode) — the replay surface oracles and audits rebuild from.
func (a *Architecture) Topic() *mqlog.Topic { return a.topic }

// Cluster returns the cluster speed layer, or nil in single-store mode.
func (a *Architecture) Cluster() *dstore.Cluster { return a.cluster }

// SpeedStats returns the speed layer's store counters (aggregated across
// nodes in cluster mode) — how much the realtime view currently absorbs.
func (a *Architecture) SpeedStats() store.Stats {
	if a.cluster != nil {
		return a.cluster.Stats().Store
	}
	a.speedMu.RLock()
	defer a.speedMu.RUnlock()
	return a.speed.Stats()
}

// Stats snapshots the speed layer's store counters — the
// analytics.Backend form of SpeedStats (the sealed batch view reports
// separately via BatchView().Stats()).
func (a *Architecture) Stats() store.Stats { return a.SpeedStats() }

// Flush settles producer-side buffers: in cluster mode the router's
// per-partition append batches reach the ingest log; in single-store mode
// appends are synchronous and Flush is a no-op. engine.SinkBolt calls it
// when a topology run completes.
func (a *Architecture) Flush() {
	if a.cluster != nil {
		a.cluster.Router().Flush()
	}
}

// FlushSpeedHot settles pending hot-key write-combining batches in the
// speed layer (a per-key Query already settles that key's batch; this is
// the whole-store form stats snapshots want).
func (a *Architecture) FlushSpeedHot() {
	if a.cluster != nil {
		a.cluster.FlushHot()
		return
	}
	a.speedMu.RLock()
	defer a.speedMu.RUnlock()
	a.speed.FlushHot()
}

// Drain blocks until the speed layer has absorbed everything appended so
// far: a no-op in single-store mode (appends are synchronous), the
// cluster drain otherwise. Call before exact comparisons in cluster mode.
func (a *Architecture) Drain() error {
	if a.cluster != nil {
		return a.cluster.Drain()
	}
	return nil
}

// Close releases the architecture: cluster nodes stop, and the master
// topic is closed — for a durable topic that is the final flush+fsync
// of its segment files. The topic's in-memory state survives: a closed
// architecture's log can still be replayed.
func (a *Architecture) Close() error {
	if a.cluster != nil {
		return a.cluster.Close()
	}
	return a.topic.Close()
}
