// Package lambda implements the Lambda Architecture of the tutorial's
// Figure 1, with each numbered stage of the figure as an explicit
// component:
//
//  1. incoming data is dispatched to both the batch layer and the speed
//     layer (Append),
//  2. the batch layer manages the immutable, append-only master dataset
//     and recomputes batch views from scratch (RunBatch),
//  3. the serving layer indexes batch views for low-latency queries
//     (ServingLayer),
//  4. the speed layer maintains realtime views over recent data only,
//     compensating for batch latency (SpeedLayer),
//  5. queries merge batch views and realtime views (Query).
//
// Views here are keyed counters — the canonical Summingbird-style
// aggregation the tutorial's Lambda discussion (and Twitter's production
// use) centers on. The speed layer can run exactly (map) or approximately
// (Count-Min sketch), reproducing the accuracy/memory trade the speed
// layer exists to make.
package lambda

import (
	"sync"

	"repro/internal/core"
	"repro/internal/frequency"
)

// Event is one raw datum: a key and an additive delta.
type Event struct {
	Key   string
	Delta int64
	// Seq is assigned by the master dataset on append (position in the
	// immutable log).
	Seq uint64
}

// MasterDataset is the immutable, append-only store of raw events (Figure
// 1's "master dataset"). Nothing is ever updated or deleted; batch views
// are always recomputed from the full log (or from a position).
type MasterDataset struct {
	mu     sync.RWMutex
	events []Event
}

// NewMasterDataset returns an empty master dataset.
func NewMasterDataset() *MasterDataset { return &MasterDataset{} }

// Append stores a raw event and returns its sequence number.
func (m *MasterDataset) Append(e Event) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.Seq = uint64(len(m.events))
	m.events = append(m.events, e)
	return e.Seq
}

// Len returns the number of stored events.
func (m *MasterDataset) Len() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return uint64(len(m.events))
}

// Scan calls fn for every event with Seq in [from, to).
func (m *MasterDataset) Scan(from, to uint64, fn func(Event)) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if to > uint64(len(m.events)) {
		to = uint64(len(m.events))
	}
	for i := from; i < to; i++ {
		fn(m.events[i])
	}
}

// BatchView is an immutable keyed aggregate over the master dataset's
// prefix [0, Watermark).
type BatchView struct {
	Counts    map[string]int64
	Watermark uint64 // events with Seq < Watermark are included
	Version   uint64
}

// ServingLayer indexes the latest batch view for low-latency reads.
// Swapping in a new view is atomic; readers always see a consistent view.
type ServingLayer struct {
	mu   sync.RWMutex
	view *BatchView
}

// NewServingLayer returns a serving layer with an empty view.
func NewServingLayer() *ServingLayer {
	return &ServingLayer{view: &BatchView{Counts: map[string]int64{}}}
}

// Load atomically installs a new batch view.
func (s *ServingLayer) Load(v *BatchView) {
	s.mu.Lock()
	s.view = v
	s.mu.Unlock()
}

// Get returns the batch value for key and the view's watermark.
func (s *ServingLayer) Get(key string) (int64, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.view.Counts[key], s.view.Watermark
}

// Watermark returns the current view's watermark.
func (s *ServingLayer) Watermark() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.view.Watermark
}

// SpeedLayer maintains the realtime view: aggregates over events NOT yet
// covered by the serving layer's batch view. It stores per-event deltas in
// a seq-ordered buffer so the covered prefix can be expired exactly when a
// new batch view lands.
type SpeedLayer struct {
	mu     sync.Mutex
	approx *frequency.CountMin // non-nil in approximate mode
	counts map[string]int64
	buf    []Event // events awaiting batch absorption, seq-ordered
}

// NewSpeedLayer returns an exact speed layer.
func NewSpeedLayer() *SpeedLayer {
	return &SpeedLayer{counts: map[string]int64{}}
}

// NewApproxSpeedLayer returns a Count-Min-backed speed layer with the
// given sketch geometry; realtime reads overestimate by at most the
// sketch's eps*N bound, and memory stays constant regardless of key
// cardinality — the trade the tutorial's speed-layer discussion motivates.
func NewApproxSpeedLayer(width, depth int, seed uint64) (*SpeedLayer, error) {
	cm, err := frequency.NewCountMin(width, depth, seed)
	if err != nil {
		return nil, err
	}
	return &SpeedLayer{approx: cm, counts: map[string]int64{}}, nil
}

// Record adds one event to the realtime view.
func (s *SpeedLayer) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, e)
	if s.approx != nil {
		if e.Delta > 0 {
			s.approx.UpdateString(e.Key, uint64(e.Delta))
		}
		return
	}
	s.counts[e.Key] += e.Delta
}

// Get returns the realtime contribution for key.
func (s *SpeedLayer) Get(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.approx != nil {
		return int64(s.approx.EstimateString(key))
	}
	return s.counts[key]
}

// Expire drops all events with Seq < watermark — they are now covered by
// the batch view. In approximate mode the sketch is rebuilt from the
// surviving buffer (Count-Min supports no deletion), which is exactly the
// "realtime views are small and disposable" property Lambda relies on.
func (s *SpeedLayer) Expire(watermark uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.buf[:0]
	for _, e := range s.buf {
		if e.Seq >= watermark {
			keep = append(keep, e)
		}
	}
	s.buf = keep
	if s.approx != nil {
		fresh, err := frequency.NewCountMin(sketchWidth(s.approx), sketchDepth(s.approx), 0xa17a)
		if err == nil {
			for _, e := range s.buf {
				if e.Delta > 0 {
					fresh.UpdateString(e.Key, uint64(e.Delta))
				}
			}
			s.approx = fresh
		}
		return
	}
	s.counts = map[string]int64{}
	for _, e := range s.buf {
		s.counts[e.Key] += e.Delta
	}
}

// PendingEvents returns the number of events not yet absorbed by batch.
func (s *SpeedLayer) PendingEvents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// The sketch geometry accessors keep SpeedLayer decoupled from the
// CountMin internals while letting Expire rebuild an identical sketch.
func sketchWidth(cm *frequency.CountMin) int { return cm.Width() }
func sketchDepth(cm *frequency.CountMin) int { return cm.Depth() }

// Architecture wires the four layers together per Figure 1.
type Architecture struct {
	master  *MasterDataset
	serving *ServingLayer
	speed   *SpeedLayer
	version uint64
	mu      sync.Mutex // serializes batch runs
}

// New returns a Lambda Architecture with an exact speed layer.
func New() *Architecture {
	return &Architecture{
		master:  NewMasterDataset(),
		serving: NewServingLayer(),
		speed:   NewSpeedLayer(),
	}
}

// NewWithSpeedLayer returns an architecture with a custom speed layer
// (e.g. the approximate one).
func NewWithSpeedLayer(sl *SpeedLayer) (*Architecture, error) {
	if sl == nil {
		return nil, core.Errf("lambda.Architecture", "speed", "must be non-nil")
	}
	return &Architecture{
		master:  NewMasterDataset(),
		serving: NewServingLayer(),
		speed:   sl,
	}, nil
}

// Append dispatches one event to both the batch and speed layers
// (Figure 1, step 1).
func (a *Architecture) Append(key string, delta int64) {
	e := Event{Key: key, Delta: delta}
	seq := a.master.Append(e)
	e.Seq = seq
	a.speed.Record(e)
}

// RunBatch recomputes the batch view from the entire master dataset (step
// 2), installs it in the serving layer (step 3), and expires the covered
// prefix from the speed layer (step 4). It returns the new view's
// watermark. Deliberately a full recompute: Lambda's robustness argument
// is that batch views are re-derivable from raw data alone.
func (a *Architecture) RunBatch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	watermark := a.master.Len()
	counts := map[string]int64{}
	a.master.Scan(0, watermark, func(e Event) {
		counts[e.Key] += e.Delta
	})
	a.version++
	a.serving.Load(&BatchView{Counts: counts, Watermark: watermark, Version: a.version})
	a.speed.Expire(watermark)
	return watermark
}

// Query answers a key lookup by merging the batch and realtime views
// (step 5).
func (a *Architecture) Query(key string) int64 {
	batch, _ := a.serving.Get(key)
	return batch + a.speed.Get(key)
}

// BatchOnlyQuery answers from the serving layer alone — the stale answer
// a batch-only system would give, used by the F1 staleness experiment.
func (a *Architecture) BatchOnlyQuery(key string) int64 {
	batch, _ := a.serving.Get(key)
	return batch
}

// Staleness returns the number of events not yet reflected in the batch
// view — the speed layer's raison d'être.
func (a *Architecture) Staleness() uint64 {
	return a.master.Len() - a.serving.Watermark()
}

// MasterLen returns the master dataset size.
func (a *Architecture) MasterLen() uint64 { return a.master.Len() }
