package lambda

import (
	"encoding"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/mqlog"
	"repro/internal/store"
)

// durableObs is the deterministic observation stream both the crashing
// architecture and the never-restarted oracle append: all four synopsis
// families, monotone time, a handful of keys.
func durableObs(i int) store.Observation {
	key := fmt.Sprintf("k%d", (i*i)%7)
	now := int64(i)
	switch i % 4 {
	case 0:
		return store.Observation{Metric: "hits", Key: key, Item: fmt.Sprintf("u%d", i%16), Value: 1 + uint64(i)%5, Time: now}
	case 1:
		return store.Observation{Metric: "uniq", Key: key, Item: fmt.Sprintf("u%d", (i*2654435761)%4096), Time: now}
	case 2:
		return store.Observation{Metric: "top", Key: "global", Item: key, Time: now}
	default:
		return store.Observation{Metric: "lat", Key: key, Value: uint64(i*2654435761) % 50000, Time: now}
	}
}

// assertAnswersEqual issues one multi-metric, multi-key QueryRequest per
// family against both backends and requires every answer cell to match
// exactly. Returns the number of cells compared.
func assertAnswersEqual(t *testing.T, got, want interface {
	Query(store.QueryRequest) (store.QueryResult, error)
	Keys(metric string) []string
}, to int64, context string) int {
	t.Helper()
	checked := 0
	for _, metric := range []string{"hits", "uniq", "top", "lat"} {
		keys := want.Keys(metric)
		sort.Strings(keys)
		if len(keys) == 0 {
			t.Fatalf("%s: oracle serves no %s keys", context, metric)
		}
		gotKeys := got.Keys(metric)
		if len(gotKeys) != len(keys) {
			t.Fatalf("%s: %s keys %d != oracle %d", context, metric, len(gotKeys), len(keys))
		}
		req := store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: to + 1}
		g, err := got.Query(req)
		if err != nil {
			t.Fatalf("%s: %s query: %v", context, metric, err)
		}
		w, err := want.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		for i, wa := range w.Answers() {
			ga := g.Answers()[i]
			switch metric {
			case "hits":
				for u := 0; u < 16; u++ {
					item := fmt.Sprintf("u%d", u)
					if ga.Count(item) != wa.Count(item) {
						t.Fatalf("%s: hits[%s].Count(%s) %d != oracle %d",
							context, wa.Key, item, ga.Count(item), wa.Count(item))
					}
				}
			case "uniq":
				if ga.Distinct() != wa.Distinct() {
					t.Fatalf("%s: uniq[%s] %d != oracle %d", context, wa.Key, ga.Distinct(), wa.Distinct())
				}
			case "top":
				gt, wt := ga.TopK(5), wa.TopK(5)
				if len(gt) != len(wt) {
					t.Fatalf("%s: top[%s] %d counters != oracle %d", context, wa.Key, len(gt), len(wt))
				}
				for j := range wt {
					if gt[j] != wt[j] {
						t.Fatalf("%s: top[%s][%d] %v != oracle %v", context, wa.Key, j, gt[j], wt[j])
					}
				}
			case "lat":
				for _, phi := range []float64{0.5, 0.9, 0.99} {
					if ga.Quantile(phi) != wa.Quantile(phi) {
						t.Fatalf("%s: lat[%s] p%g %d != oracle %d",
							context, wa.Key, phi, ga.Quantile(phi), wa.Quantile(phi))
					}
				}
			}
			checked++
		}
	}
	return checked
}

// TestLambdaDurableRestartRoundTrip is the kill -9 acceptance test: an
// architecture running on a durable master log and a batch checkpoint is
// abandoned without Close mid-write (its last log record is torn), then
// reopened over the same directory. The reopened architecture must
// truncate the torn tail, seed its batch view from the checkpoint,
// replay only the log suffix past it, and answer typed queries exactly
// like an oracle architecture that saw the surviving stream and never
// restarted.
func TestLambdaDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Topic = "lambda-master"
	// Every Append fsyncs before returning, so abandoning the
	// architecture without Close models a kill -9 faithfully: everything
	// acked is on disk, nothing is buffered in a background syncer.
	cfg.Durable = &mqlog.DurableConfig{Dir: filepath.Join(dir, "log"), SyncEveryAppend: true}
	cfg.CheckpointDir = filepath.Join(dir, "batch")

	// a1 is built without newArch: a crashed process never calls Close.
	a1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, proto := range testProtos(t) {
		if err := a1.RegisterMetric(name, proto); err != nil {
			t.Fatal(err)
		}
	}
	const pre, post = 600, 201
	for i := 0; i < pre; i++ {
		if err := a1.Append(durableObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := a1.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if info.FromCheckpoint {
		t.Fatal("first batch run claims a checkpoint seed")
	}
	for i := pre; i < pre+post-1; i++ {
		if err := a1.Append(durableObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The final append is the one the crash will tear: note which
	// partition it lands on by diffing the end offsets around it.
	before := a1.Topic().EndOffsets()
	if err := a1.Append(durableObs(pre + post - 1)); err != nil {
		t.Fatal(err)
	}
	victim := -1
	for p, end := range a1.Topic().EndOffsets() {
		if end != before[p] {
			victim = p
		}
	}
	if victim < 0 {
		t.Fatal("could not locate the last append's partition")
	}
	// Crash: no Close, no Drain. Tear the victim partition's newest
	// segment mid-record, as a power cut during the last write would.
	segs, err := filepath.Glob(filepath.Join(dir, "log", cfg.Topic, fmt.Sprintf("p%04d", victim), "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments for partition %d: %v", victim, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same directory.
	a2 := newArch(t, cfg)
	ds := a2.Topic().DurabilityStats()
	if ds.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", ds.TornTruncations)
	}
	if got, want := a2.MasterLen(), uint64(pre+post-1); got != want {
		t.Fatalf("recovered master log holds %d messages, want %d (torn record dropped)", got, want)
	}
	info, err = a2.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromCheckpoint {
		t.Fatal("restarted batch run did not seed from the checkpoint")
	}
	if info.Restored == 0 {
		t.Fatal("checkpoint seed restored no bucket records")
	}
	// Only the post-checkpoint suffix may replay — the torn final record
	// is gone, so that is post-1 observations, not post.
	if got, want := info.Applied, uint64(post-1); got != want {
		t.Fatalf("restarted batch replayed %d observations, want %d (suffix past the checkpoint)", got, want)
	}

	// Oracle: an in-memory architecture that saw the surviving stream and
	// never restarted.
	oracle := newArch(t, testConfig())
	for i := 0; i < pre+post-1; i++ {
		if err := oracle.Append(durableObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oracle.RunBatch(); err != nil {
		t.Fatal(err)
	}
	to := int64(pre + post)
	if n := assertAnswersEqual(t, a2, oracle, to, "after crash restart"); n == 0 {
		t.Fatal("nothing checked")
	}

	// The reopened architecture keeps serving: fresh appends and another
	// batch boundary, still equal to the oracle fed the same tail.
	for i := pre + post; i < pre+post+100; i++ {
		for _, arch := range []*Architecture{a2, oracle} {
			if err := arch.Append(durableObs(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	info, err = a2.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromCheckpoint || info.Applied != 100 {
		t.Fatalf("second restarted batch: FromCheckpoint=%v Applied=%d, want checkpoint seed of exactly the 100 new observations",
			info.FromCheckpoint, info.Applied)
	}
	if _, err := oracle.RunBatch(); err != nil {
		t.Fatal(err)
	}
	assertAnswersEqual(t, a2, oracle, to+100, "after post-restart traffic")
}

// TestRunBatchIncrementalWithinProcess checks the checkpoint fast path
// without any restart: with a CheckpointDir configured, every RunBatch
// after the first seeds from the previous run's snapshot and replays
// only the delta appended since.
func TestRunBatchIncrementalWithinProcess(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "batch")
	a := newArch(t, cfg)
	for i := 0; i < 500; i++ {
		if err := a.Append(durableObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := a.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if info.FromCheckpoint {
		t.Fatal("first batch run claims a checkpoint seed")
	}
	if info.Applied != 500 {
		t.Fatalf("first batch applied %d, want 500", info.Applied)
	}
	for i := 500; i < 620; i++ {
		if err := a.Append(durableObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err = a.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromCheckpoint {
		t.Fatal("second batch run did not seed from the first run's checkpoint")
	}
	if info.Applied != 120 {
		t.Fatalf("second batch replayed %d observations, want the 120-observation delta", info.Applied)
	}
	if info.Restored == 0 {
		t.Fatal("second batch restored no bucket records")
	}

	// The incremental view equals a from-scratch freeze of the same log.
	ends := a.Topic().EndOffsets()
	want, err := store.FreezeAt(testConfig().Batch, testProtos(t), a.Topic(), ends, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := a.BatchView()
	for _, metric := range []string{"hits", "uniq", "top", "lat"} {
		keys := want.Keys(metric)
		sort.Strings(keys)
		for _, key := range keys {
			g, err := got.QueryPoint(metric, key, 0, 620)
			if err != nil {
				t.Fatal(err)
			}
			w, err := want.QueryPoint(metric, key, 0, 620)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := g.(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			wb, err := w.(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(gb) != string(wb) {
				t.Fatalf("incremental batch view %s[%s] differs from a from-scratch freeze", metric, key)
			}
		}
	}
}
