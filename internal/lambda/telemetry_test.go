package lambda

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dstore"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestTelemetryCoversAllLayers wires a cluster-mode architecture — which
// contains every subsystem: the lambda dispatch itself, the dstore
// cluster, a sketch store per node, and the mqlog master topic — into
// one registry, runs a full ingest/batch/query cycle, and requires the
// scrape to expose at least one counter, one gauge and one histogram
// from each of the four layers, with real traffic behind the counters.
func TestTelemetryCoversAllLayers(t *testing.T) {
	geom := store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}
	arch, err := New(Config{
		Batch:        geom,
		Cluster:      &dstore.Config{Partitions: 4, Store: geom},
		ClusterNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	hll, err := store.NewDistinctProto(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	arch.SetTelemetry(reg)

	const span = 200
	for i := int64(0); i < span; i++ {
		obs := store.Observation{
			Metric: "uniq",
			Key:    fmt.Sprintf("k%d", i%4),
			Item:   fmt.Sprintf("u%d", i%13),
			Time:   i,
		}
		if err := arch.Append(obs); err != nil {
			t.Fatal(err)
		}
	}
	if err := arch.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.RunBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.Query(store.QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: span}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Family kinds, from the TYPE comments the encoder emits per family.
	typeLine := regexp.MustCompile(`(?m)^# TYPE (analytics_[a-z_]+) (counter|gauge|histogram)$`)
	kinds := map[string]map[string]bool{} // layer -> kind -> present
	for _, m := range typeLine.FindAllStringSubmatch(text, -1) {
		layer := strings.SplitN(strings.TrimPrefix(m[1], "analytics_"), "_", 2)[0]
		if kinds[layer] == nil {
			kinds[layer] = map[string]bool{}
		}
		kinds[layer][m[2]] = true
	}
	for _, layer := range []string{"store", "mqlog", "dstore", "lambda"} {
		for _, kind := range []string{"counter", "gauge", "histogram"} {
			if !kinds[layer][kind] {
				t.Errorf("scrape has no %s from layer %q", kind, layer)
			}
		}
	}

	// The counters carry the actual traffic, not just registrations.
	sample := func(name, labels string) float64 {
		pat := regexp.MustCompile(`(?m)^` + name + `\{` + labels + `\} (\S+)$`)
		m := pat.FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("scrape is missing %s{%s}", name, labels)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("%s{%s}: %v", name, labels, err)
		}
		return v
	}
	if got := sample("analytics_lambda_appended_total", `layer="lambda"`); got != span {
		t.Errorf("appended_total %v, want %d", got, span)
	}
	// In cluster mode the master dataset IS the cluster's ingest topic.
	if got := sample("analytics_mqlog_produced_records_total", `topic="dstore-ingest"`); got < span {
		t.Errorf("produced_records_total %v, want >= %d", got, span)
	}
	// RunBatch rebuilds every node store from the log, so the pre-handoff
	// live-applied counters reset; the traffic reappears as replays.
	applied := sample("analytics_dstore_applied_total", `layer="dstore"`)
	replayed := sample("analytics_dstore_replayed_total", `layer="dstore"`)
	if applied+replayed <= 0 {
		t.Errorf("dstore applied %v + replayed %v, want > 0", applied, replayed)
	}
	if got := sample("analytics_lambda_merges_total", `layer="lambda"`); got <= 0 {
		t.Errorf("merges_total %v, want > 0 after a merged query", got)
	}
	// The cluster's node stores registered under their own label sets.
	if !strings.Contains(text, `analytics_store_observations_total{layer="dstore",node=`) {
		t.Error("scrape has no per-node store counters from the cluster")
	}
	// Histograms saw the batch handoff.
	if got := sample("analytics_lambda_batch_handoff_seconds_count", `layer="lambda"`); got != 1 {
		t.Errorf("batch_handoff count %v, want 1", got)
	}
}

// TestTelemetryRebindsAcrossHandoff pins the speed-store swap: after
// RunBatch replaces the single-mode speed store, the scrape must follow
// the fresh store (its counters reset to the uncovered tail) rather than
// keep reading the retired one.
func TestTelemetryRebindsAcrossHandoff(t *testing.T) {
	geom := store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}
	arch, err := New(Config{Partitions: 2, Batch: geom, Speed: geom})
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	hll, err := store.NewDistinctProto(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	arch.SetTelemetry(reg)

	for i := int64(0); i < 100; i++ {
		if err := arch.Append(store.Observation{Metric: "uniq", Key: "k", Item: fmt.Sprintf("u%d", i), Time: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := arch.Drain(); err != nil {
		t.Fatal(err)
	}
	observed := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		m := regexp.MustCompile(`(?m)^analytics_store_observations_total\{layer="lambda_speed"\} (\d+)$`).FindStringSubmatch(sb.String())
		if m == nil {
			t.Fatal("scrape has no lambda_speed store counter")
		}
		return m[1]
	}
	if got := observed(); got != "100" {
		t.Fatalf("pre-handoff speed observations %s, want 100", got)
	}
	if _, err := arch.RunBatch(); err != nil {
		t.Fatal(err)
	}
	// The batch view now covers everything: the swapped-in speed store
	// replayed an empty suffix, and the scrape must say 0, not 100.
	if got := observed(); got != "0" {
		t.Fatalf("post-handoff speed observations %s, want 0 (fresh store)", got)
	}
}
