package lambda

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/dstore"
	"repro/internal/store"
	"repro/internal/workload"
)

func storeGeom() store.Config {
	return store.Config{Shards: 4, BucketWidth: 100, RingBuckets: 64}
}

func testConfig() Config {
	return Config{Partitions: 4, Batch: storeGeom(), Speed: storeGeom()}
}

// testProtos returns the four synopsis families one Lambda code path must
// serve: counters, cardinality, top-k, quantiles.
func testProtos(t testing.TB) map[string]store.Prototype {
	t.Helper()
	protos := map[string]store.Prototype{}
	mk := func(name string, p store.Prototype, err error) {
		if err != nil {
			t.Fatal(err)
		}
		protos[name] = p
	}
	cm, err := store.NewFreqProto(256, 4, 11)
	mk("hits", cm, err)
	hll, err := store.NewDistinctProto(12, 11)
	mk("uniq", hll, err)
	// k=64 counters over a <=48-key item universe: Space-Saving runs in
	// its exact regime, so merged halves must equal a one-pass summary.
	ss, err := store.NewTopKProto(64)
	mk("top", ss, err)
	qd, err := store.NewQuantileProto(16, 256)
	mk("lat", qd, err)
	return protos
}

func newArch(t testing.TB, cfg Config) *Architecture {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	for name, proto := range testProtos(t) {
		if err := a.RegisterMetric(name, proto); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestLambdaValidation(t *testing.T) {
	if _, err := New(Config{Retention: -1}); err == nil {
		t.Fatal("negative retention accepted")
	}
	if _, err := New(Config{Batch: store.Config{Shards: -1}}); err == nil {
		t.Fatal("invalid batch store config accepted")
	}
	if _, err := New(Config{Speed: store.Config{MaxIdle: -1}}); err == nil {
		t.Fatal("invalid speed store config accepted")
	}
	if _, err := New(Config{Cluster: &dstore.Config{Retention: -1}}); err == nil {
		t.Fatal("invalid cluster config accepted")
	}
	a := newArch(t, testConfig())
	if err := a.Append(store.Observation{Metric: "nope", Key: "k", Time: 0}); err == nil {
		t.Fatal("unregistered metric accepted")
	}
	if err := a.Append(store.Observation{Metric: "hits", Key: "k", Time: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := a.Append(store.Observation{Metric: "hits", Key: "", Item: "u", Time: 0}); err == nil {
		t.Fatal("empty key accepted (cluster mode rejects it; modes must agree)")
	}
	if got := a.MasterLen(); got != 0 {
		t.Fatalf("rejected appends reached the master dataset: %d", got)
	}
	if err := a.Append(store.Observation{Metric: "hits", Key: "k", Item: "u", Value: 1, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterMetric("late", testProtos(t)["hits"]); err == nil {
		t.Fatal("metric registration after first append accepted")
	}
	if _, err := a.QueryPoint("nope", "k", 0, 10); err == nil {
		t.Fatal("query on unregistered metric accepted")
	}
}

func hitCount(t *testing.T, syn store.Synopsis, item string) uint64 {
	t.Helper()
	return syn.(*store.Freq).Count(item)
}

func TestQueryMergesBatchAndSpeed(t *testing.T) {
	a := newArch(t, testConfig())
	for i := 0; i < 10; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "clicks", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := a.RunBatch()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Applied != 10 {
		t.Fatalf("batch info %+v", info)
	}
	for i := 10; i < 15; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "clicks", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := a.QueryPoint("hits", "clicks", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitCount(t, merged, "u"); got != 15 {
		t.Fatalf("merged count %d, want 15", got)
	}
	batchOnly, err := a.BatchOnlyQuery("hits", "clicks", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitCount(t, batchOnly, "u"); got != 10 {
		t.Fatalf("batch-only count %d, want 10", got)
	}
	if s := a.Staleness(); s != 5 {
		t.Fatalf("staleness %d, want 5", s)
	}
	if a.MasterLen() != 15 || a.Appended() != 15 {
		t.Fatalf("master len %d appended %d, want 15", a.MasterLen(), a.Appended())
	}
}

func TestRunBatchTruncatesSpeedLayer(t *testing.T) {
	a := newArch(t, testConfig())
	for i := 0; i < 100; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: fmt.Sprintf("k%d", i%10), Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.RunBatch(); err != nil {
		t.Fatal(err)
	}
	// The speed layer holds exactly the uncovered suffix: nothing.
	if obs := a.SpeedStats().Observed; obs != 0 {
		t.Fatalf("speed layer retains %d observations after batch handoff", obs)
	}
	// Merged query must not double count.
	syn, err := a.QueryPoint("hits", "k0", 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitCount(t, syn, "u"); got != 10 {
		t.Fatalf("double counting: %d, want 10", got)
	}
	// A second boundary with a live tail: only the tail stays realtime.
	for i := 100; i < 130; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "k0", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.RunBatch(); err != nil {
		t.Fatal(err)
	}
	for i := 130; i < 140; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "k0", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if obs := a.SpeedStats().Observed; obs != 10 {
		t.Fatalf("speed layer holds %d, want the 10-event tail", obs)
	}
	if s := a.Staleness(); s != 10 {
		t.Fatalf("staleness %d, want 10", s)
	}
}

func TestBatchOnlyGoesStale(t *testing.T) {
	a := newArch(t, testConfig())
	if err := a.Append(store.Observation{Metric: "hits", Key: "x", Item: "u", Value: 1, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunBatch(); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for i := 1; i <= 50; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "x", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
		b, err := a.BatchOnlyQuery("hits", "x", 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		m, err := a.QueryPoint("hits", "x", 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if hitCount(t, b, "u") != hitCount(t, m, "u") {
			stale++
		}
	}
	if stale != 50 {
		t.Fatalf("batch-only should lag merged for all 50 post-batch appends, got %d", stale)
	}
}

// oracleStore rebuilds a single store from the whole master log — the
// replay-everything oracle merged answers must match.
func oracleStore(t testing.TB, a *Architecture) *store.Store {
	t.Helper()
	st, _, err := store.Rebuild(a.cfg.Batch, testProtos(t), a.Topic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// assertParity compares merged lambda answers against the oracle for
// every key: counters, cardinality and top-k exactly, quantiles within a
// merged q-digest's rank-error bound against the exact value list.
func assertParity(t *testing.T, a *Architecture, o *store.Store, values map[string][]uint64, to int64, context string) {
	t.Helper()
	keys := o.Keys("hits")
	if len(keys) == 0 {
		t.Fatalf("%s: oracle has no keys", context)
	}
	for _, key := range keys {
		merged, err := a.QueryPoint("hits", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.QueryPoint("hits", key, 0, to)
		for u := 0; u < 8; u++ {
			item := fmt.Sprintf("u%d", u)
			if g, w := hitCount(t, merged, item), want.(*store.Freq).Count(item); g != w {
				t.Fatalf("%s: key %s item %s: merged count %d != oracle %d", context, key, item, g, w)
			}
		}
		mu, err := a.QueryPoint("uniq", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		wu, _ := o.QueryPoint("uniq", key, 0, to)
		if g, w := mu.(*store.Distinct).Estimate(), wu.(*store.Distinct).Estimate(); g != w {
			t.Fatalf("%s: key %s: merged cardinality %v != oracle %v", context, key, g, w)
		}
		mt, err := a.QueryPoint("top", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		wt, _ := o.QueryPoint("top", key, 0, to)
		if g, w := topCounts(mt), topCounts(wt); !sameCounts(g, w) {
			t.Fatalf("%s: key %s: merged top-k %v != oracle %v", context, key, g, w)
		}
		ml, err := a.QueryPoint("lat", key, 0, to)
		if err != nil {
			t.Fatal(err)
		}
		vals := values[key]
		if len(vals) == 0 {
			continue
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		n := len(sorted)
		// Rank tolerance: each constituent q-digest guarantees ~logU/k
		// rank error; the batch+speed merge doubles the constituents, so
		// accept 2x with slack. k=256, logU=16 -> 0.0625 per digest.
		tol := int(0.2*float64(n)) + 1
		for _, phi := range []float64{0.5, 0.9, 0.99} {
			got := ml.(*store.Quantiles).Quantile(phi)
			lo, hi := rankRange(sorted, got)
			target := int(phi * float64(n))
			if lo-tol > target || hi+tol < target {
				t.Fatalf("%s: key %s phi %.2f: answer %d has rank [%d,%d], target %d +/- %d",
					context, key, phi, got, lo, hi, target, tol)
			}
		}
	}
}

func topCounts(syn store.Synopsis) map[string]uint64 {
	out := map[string]uint64{}
	for _, c := range syn.(*store.TopK).Top(64) {
		out[c.Item] = c.Count
	}
	return out
}

func sameCounts(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// rankRange returns the index range [lo, hi) positions of x in sorted.
func rankRange(sorted []uint64, x uint64) (int, int) {
	lo, hi := 0, len(sorted)
	for i, v := range sorted {
		if v < x {
			lo = i + 1
		}
		if v <= x {
			hi = i + 1
		}
	}
	return lo, hi
}

// TestMergedMatchesOracleAcrossBoundaries is the batch/speed boundary
// property test (the F1.2 invariant, synopsis_prop_test.go style): after
// an arbitrary interleaving of appends and batch recomputes, Query equals
// a replay-everything oracle for every family, at every checkpoint.
func TestMergedMatchesOracleAcrossBoundaries(t *testing.T) {
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			a := newArch(t, testConfig())
			rng := workload.NewRNG(uint64(1000 + trial))
			z := workload.NewZipf(rng, 24, 1.2)
			values := map[string][]uint64{}
			now := int64(0)
			boundaries := 0
			for i := 0; i < 4000; i++ {
				key := fmt.Sprintf("k%d", z.Draw())
				item := fmt.Sprintf("u%d", rng.Uint64()%48)
				val := rng.Uint64() % 40000
				now = int64(i)
				for _, obs := range []store.Observation{
					{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
					{Metric: "uniq", Key: key, Item: item, Time: now},
					{Metric: "top", Key: key, Item: item, Time: now},
					{Metric: "lat", Key: key, Value: val, Time: now},
				} {
					if err := a.Append(obs); err != nil {
						t.Fatal(err)
					}
				}
				values[key] = append(values[key], val)
				// Arbitrary interleaving: batch runs fire randomly, ~1/500.
				if rng.Uint64()%500 == 0 {
					if _, err := a.RunBatch(); err != nil {
						t.Fatal(err)
					}
					boundaries++
					assertParity(t, a, oracleStore(t, a), values, now, fmt.Sprintf("post-batch %d", boundaries))
				}
				if i%1499 == 1498 {
					assertParity(t, a, oracleStore(t, a), values, now, "mid-stream")
				}
			}
			for ; boundaries < 3; boundaries++ {
				if _, err := a.RunBatch(); err != nil {
					t.Fatal(err)
				}
				assertParity(t, a, oracleStore(t, a), values, now, "final boundary")
			}
		})
	}
}

// TestLambdaParityHotKeySpeedLayer runs the boundary invariant with the
// T2.5 hot-key write-combining path enabled on the speed store, and
// checks the path actually engaged (writes were splayed).
func TestLambdaParityHotKeySpeedLayer(t *testing.T) {
	cfg := testConfig()
	cfg.Speed.HotKey = store.HotKeyConfig{Replicas: 4, MaxHot: 64, PromotePct: 2, EpochWrites: 256}
	a := newArch(t, cfg)
	rng := workload.NewRNG(42)
	z := workload.NewZipf(rng, 24, 1.4)
	values := map[string][]uint64{}
	now := int64(0)
	var splayed uint64
	for i := 0; i < 9000; i++ {
		key := fmt.Sprintf("k%d", z.Draw())
		item := fmt.Sprintf("u%d", rng.Uint64()%48)
		val := rng.Uint64() % 40000
		now = int64(i)
		for _, obs := range []store.Observation{
			{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
			{Metric: "uniq", Key: key, Item: item, Time: now},
			{Metric: "top", Key: key, Item: item, Time: now},
			{Metric: "lat", Key: key, Value: val, Time: now},
		} {
			if err := a.Append(obs); err != nil {
				t.Fatal(err)
			}
		}
		values[key] = append(values[key], val)
		if i%3000 == 2999 {
			// Sample the splay counter before the boundary wipes the
			// speed store (its stats reset with the truncation).
			a.FlushSpeedHot()
			splayed += a.SpeedStats().SplayedWrites
			if _, err := a.RunBatch(); err != nil {
				t.Fatal(err)
			}
			assertParity(t, a, oracleStore(t, a), values, now, fmt.Sprintf("hot boundary %d", i/3000))
		}
	}
	if splayed == 0 {
		t.Fatal("hot-key path never engaged: no splayed writes")
	}
}

// TestLambdaParityUnderConcurrentIngest is the named -race CI target (the
// F1.2 concurrency leg): writers append while batch recomputes and
// queries run; after the dust settles, merged answers equal the oracle
// for the order-independent families (counters, cardinality).
func TestLambdaParityUnderConcurrentIngest(t *testing.T) {
	a := newArch(t, testConfig())
	const writers = 4
	const perWriter = 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := workload.NewRNG(uint64(7000 + w))
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("k%d", rng.Uint64()%16)
				obs := store.Observation{Metric: "hits", Key: key, Item: fmt.Sprintf("u%d", rng.Uint64()%8), Value: 1, Time: int64(i)}
				if err := a.Append(obs); err != nil {
					t.Error(err)
					return
				}
				obs.Metric = "uniq"
				if err := a.Append(obs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := a.RunBatch(); err != nil {
				t.Error(err)
				return
			}
			if _, err := a.QueryPoint("hits", "k0", 0, int64(perWriter)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := a.RunBatch(); err != nil {
		t.Fatal(err)
	}
	o := oracleStore(t, a)
	for k := 0; k < 16; k++ {
		key := fmt.Sprintf("k%d", k)
		merged, err := a.QueryPoint("hits", key, 0, perWriter)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := o.QueryPoint("hits", key, 0, perWriter)
		for u := 0; u < 8; u++ {
			item := fmt.Sprintf("u%d", u)
			if g, w := hitCount(t, merged, item), want.(*store.Freq).Count(item); g != w {
				t.Fatalf("key %s item %s: merged %d != oracle %d", key, item, g, w)
			}
		}
		mu, err := a.QueryPoint("uniq", key, 0, perWriter)
		if err != nil {
			t.Fatal(err)
		}
		wu, _ := o.QueryPoint("uniq", key, 0, perWriter)
		if g, w := mu.(*store.Distinct).Estimate(), wu.(*store.Distinct).Estimate(); g != w {
			t.Fatalf("key %s: merged cardinality %v != oracle %v", key, g, w)
		}
	}
}

// TestClusterSpeedLayerParity runs the architecture with the dstore
// cluster as the speed layer: appends route through the cluster's router
// onto the shared master topic, batch handoffs truncate the cluster, and
// merged answers equal the oracle once drained.
func TestClusterSpeedLayerParity(t *testing.T) {
	cfg := Config{
		Batch:        storeGeom(),
		Cluster:      &dstore.Config{Partitions: 8, Store: storeGeom(), Topic: "lambda-cluster"},
		ClusterNodes: 3,
	}
	a := newArch(t, cfg)
	rng := workload.NewRNG(99)
	z := workload.NewZipf(rng, 24, 1.2)
	values := map[string][]uint64{}
	now := int64(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 1200; i++ {
			key := fmt.Sprintf("k%d", z.Draw())
			item := fmt.Sprintf("u%d", rng.Uint64()%48)
			val := rng.Uint64() % 40000
			now = int64(round*1200 + i)
			for _, obs := range []store.Observation{
				{Metric: "hits", Key: key, Item: item, Value: 1 + val%5, Time: now},
				{Metric: "uniq", Key: key, Item: item, Time: now},
				{Metric: "top", Key: key, Item: item, Time: now},
				{Metric: "lat", Key: key, Value: val, Time: now},
			} {
				if err := a.Append(obs); err != nil {
					t.Fatal(err)
				}
			}
			values[key] = append(values[key], val)
		}
		if _, err := a.RunBatch(); err != nil {
			t.Fatal(err)
		}
		// The cluster speed layer holds only the uncovered suffix, which
		// right after a drained batch handoff is nothing.
		if obs := a.SpeedStats().Observed; obs != 0 {
			t.Fatalf("round %d: cluster speed layer retains %d observations", round, obs)
		}
		assertParity(t, a, oracleStore(t, a), values, now, fmt.Sprintf("cluster round %d", round))
	}
	// Post-boundary tail served by the speed layer alone.
	if err := a.Append(store.Observation{Metric: "hits", Key: "k0", Item: "u0", Value: 3, Time: now}); err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	assertParity(t, a, oracleStore(t, a), values, now, "cluster tail")
}

func TestQueryBeforeFirstBatchServesSpeedOnly(t *testing.T) {
	a := newArch(t, testConfig())
	for i := 0; i < 20; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: "k", Item: "u", Value: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	syn, err := a.QueryPoint("hits", "k", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitCount(t, syn, "u"); got != 20 {
		t.Fatalf("pre-batch merged count %d, want 20", got)
	}
	b, err := a.BatchOnlyQuery("hits", "k", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := hitCount(t, b, "u"); got != 0 {
		t.Fatalf("batch-only before first batch %d, want 0", got)
	}
	if a.BatchView() != nil {
		t.Fatal("batch view exists before RunBatch")
	}
	if s := a.Staleness(); s != 20 {
		t.Fatalf("staleness %d, want 20", s)
	}
}

func BenchmarkLambdaAppend(b *testing.B) {
	a := newArch(b, testConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: fmt.Sprintf("k%d", i%64), Item: "u", Value: 1, Time: int64(i / 64)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambdaQueryMerged(b *testing.B) {
	a := newArch(b, testConfig())
	for i := 0; i < 50000; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: fmt.Sprintf("k%d", i%64), Item: fmt.Sprintf("u%d", i%8), Value: 1, Time: int64(i / 64)}); err != nil {
			b.Fatal(err)
		}
		if i == 25000 {
			if _, err := a.RunBatch(); err != nil {
				b.Fatal(err)
			}
		}
	}
	to := int64(50000 / 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.QueryPoint("hits", fmt.Sprintf("k%d", i%64), 0, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLambdaRunBatch100k(b *testing.B) {
	a := newArch(b, testConfig())
	for i := 0; i < 100000; i++ {
		if err := a.Append(store.Observation{Metric: "hits", Key: fmt.Sprintf("k%d", i%1000), Item: "u", Value: 1, Time: int64(i / 1000)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.RunBatch(); err != nil {
			b.Fatal(err)
		}
	}
}
