package lambda

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestMasterDatasetAppendOnly(t *testing.T) {
	m := NewMasterDataset()
	s0 := m.Append(Event{Key: "a", Delta: 1})
	s1 := m.Append(Event{Key: "b", Delta: 2})
	if s0 != 0 || s1 != 1 || m.Len() != 2 {
		t.Fatalf("seqs %d %d len %d", s0, s1, m.Len())
	}
	var seen []string
	m.Scan(0, 100, func(e Event) { seen = append(seen, e.Key) })
	if len(seen) != 2 || seen[0] != "a" {
		t.Fatalf("scan %v", seen)
	}
}

func TestQueryMergesBatchAndSpeed(t *testing.T) {
	a := New()
	// Ten events, batch over them, then five more.
	for i := 0; i < 10; i++ {
		a.Append("clicks", 1)
	}
	a.RunBatch()
	for i := 0; i < 5; i++ {
		a.Append("clicks", 1)
	}
	if got := a.Query("clicks"); got != 15 {
		t.Fatalf("merged query %d, want 15", got)
	}
	if got := a.BatchOnlyQuery("clicks"); got != 10 {
		t.Fatalf("batch-only %d, want 10", got)
	}
	if s := a.Staleness(); s != 5 {
		t.Fatalf("staleness %d, want 5", s)
	}
}

func TestRunBatchExpiresSpeedLayer(t *testing.T) {
	a := New()
	for i := 0; i < 100; i++ {
		a.Append(fmt.Sprintf("k%d", i%10), 1)
	}
	a.RunBatch()
	if p := a.speed.PendingEvents(); p != 0 {
		t.Fatalf("speed layer retains %d events after batch", p)
	}
	// Merged query must not double count.
	if got := a.Query("k0"); got != 10 {
		t.Fatalf("double counting: %d", got)
	}
}

func TestMergedAlwaysEqualsExact(t *testing.T) {
	// The F1 correctness invariant: at every point, for every key,
	// merged query == exact count over all appended events, regardless of
	// when batches run.
	a := New()
	exact := map[string]int64{}
	rng := workload.NewRNG(1)
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(50))
		a.Append(key, 1)
		exact[key]++
		if i%777 == 776 {
			a.RunBatch()
		}
		if i%501 == 500 {
			probe := fmt.Sprintf("k%d", rng.Intn(50))
			if got := a.Query(probe); got != exact[probe] {
				t.Fatalf("at %d: merged %d != exact %d for %s", i, got, exact[probe], probe)
			}
		}
	}
	a.RunBatch()
	for k, v := range exact {
		if got := a.Query(k); got != v {
			t.Fatalf("final: %s merged %d != %d", k, got, v)
		}
	}
}

func TestBatchOnlyStalenessGrows(t *testing.T) {
	a := New()
	a.Append("x", 1)
	a.RunBatch()
	errs := 0
	for i := 0; i < 100; i++ {
		a.Append("x", 1)
		if a.BatchOnlyQuery("x") != a.Query("x") {
			errs++
		}
	}
	if errs != 100 {
		t.Fatalf("batch-only answer should be stale for all 100 post-batch events, got %d", errs)
	}
}

func TestApproxSpeedLayerBounds(t *testing.T) {
	sl, err := NewApproxSpeedLayer(2048, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWithSpeedLayer(sl)
	if err != nil {
		t.Fatal(err)
	}
	exact := map[string]int64{}
	rng := workload.NewRNG(2)
	z := workload.NewZipf(rng, 500, 1.1)
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", z.Draw())
		a.Append(key, 1)
		exact[key]++
	}
	// Approximate speed layer never undercounts and overestimates within
	// the Count-Min bound (eps ~ e/2048 of N=20000 -> ~27).
	for k, v := range exact {
		got := a.Query(k)
		if got < v {
			t.Fatalf("approx merged undercounts %s: %d < %d", k, got, v)
		}
		if got > v+100 {
			t.Fatalf("approx overestimate too large for %s: %d vs %d", k, got, v)
		}
	}
	// After a batch run the sketch resets: answers become exact.
	a.RunBatch()
	for k, v := range exact {
		if got := a.Query(k); got != v {
			t.Fatalf("post-batch %s: %d != %d", k, got, v)
		}
	}
}

func TestConcurrentAppendsAndQueries(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 2500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				a.Append("hot", 1)
			}
		}()
	}
	// Concurrent batch runs and queries must not panic or corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			a.RunBatch()
			a.Query("hot")
		}
	}()
	wg.Wait()
	a.RunBatch()
	if got := a.Query("hot"); got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
}

func TestNegativeDeltas(t *testing.T) {
	a := New()
	a.Append("bal", 100)
	a.Append("bal", -30)
	if got := a.Query("bal"); got != 70 {
		t.Fatalf("net %d, want 70", got)
	}
	a.RunBatch()
	a.Append("bal", -20)
	if got := a.Query("bal"); got != 50 {
		t.Fatalf("post-batch net %d, want 50", got)
	}
}

func BenchmarkAppendQuery(b *testing.B) {
	a := New()
	for i := 0; i < b.N; i++ {
		a.Append("k", 1)
		if i%1000 == 999 {
			a.Query("k")
		}
	}
}

func BenchmarkRunBatch100k(b *testing.B) {
	a := New()
	for i := 0; i < 100000; i++ {
		a.Append(fmt.Sprintf("k%d", i%1000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RunBatch()
	}
}
