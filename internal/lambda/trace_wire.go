// trace_wire.go wires the Lambda Architecture into a trace.Tracer,
// mirroring SetTelemetry's live-wiring discipline (telemetry.go): the
// tracer lands in an atomic pointer, the speed layer underneath is
// wired immediately, and RunBatch re-wires every replacement speed
// store before it serves. A traced Query records three stage spans —
// lambda.speed (realtime gather), lambda.batch (sealed-view read),
// lambda.merge (cell-wise CombineSnapshots) — parented on the
// request's trace context, with the store and cluster layers hanging
// their own child spans off lambda.speed.
package lambda

import "repro/internal/trace"

// SetTracer wires the architecture's query and ingest paths to tr.
// Safe to call on a live architecture; a nil tracer is a no-op. In
// cluster mode this also wires the cluster (router trace headers, node
// consume spans, per-node stores); in single-store mode it wires the
// current speed store, and each batch cutover's fresh store is wired
// before it serves.
func (a *Architecture) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	a.trc.Store(tr)
	if a.cluster != nil {
		a.cluster.SetTracer(tr)
		return
	}
	a.speedMu.RLock()
	a.speed.SetTracer(tr)
	a.speedMu.RUnlock()
}
