// telemetry.go wires the Lambda Architecture into a telemetry.Registry:
// batch-handoff, frozen-view-build and speed-truncation latency
// histograms on the RunBatch path, batch/speed merge counts on the
// query path, staleness and batch-version gauges at scrape time — plus
// the master topic's mqlog metrics and the speed layer's own wiring
// (the single store labeled layer="lambda_speed", or the whole dstore
// cluster).
package lambda

import "repro/internal/telemetry"

// archTel is the architecture's published telemetry wiring; the append,
// query and batch paths read it through an atomic pointer so
// SetTelemetry can be called on a live architecture.
type archTel struct {
	reg      *telemetry.Registry // for re-wiring the swapped speed store
	handoff  *telemetry.Histogram
	freeze   *telemetry.Histogram
	truncate *telemetry.Histogram
	merges   *telemetry.Counter
}

// SetTelemetry registers the architecture's metrics with reg and wires
// the layers underneath it (master topic, speed store or cluster). A
// nil registry is a no-op; calling again re-binds the callbacks.
func (a *Architecture) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	labels := []string{"layer", "lambda"}
	reg.CounterFunc("analytics_lambda_appended_total",
		"Observations dispatched through Append to both layers.",
		func() uint64 { return a.appended.Load() }, labels...)
	reg.GaugeFunc("analytics_lambda_batch_version",
		"Batch views installed in the serving layer.",
		func() float64 { return float64(a.version.Load()) }, labels...)
	reg.GaugeFunc("analytics_lambda_staleness_records",
		"Appended observations not yet covered by the batch view.",
		func() float64 { return float64(a.Staleness()) }, labels...)
	reg.GaugeFunc("analytics_lambda_batch_restored_records",
		"Checkpoint records the current batch view was seeded from (0 = full recompute).",
		func() float64 {
			if v := a.batch.Load(); v != nil {
				return float64(v.Restored())
			}
			return 0
		}, labels...)

	tel := &archTel{
		reg: reg,
		handoff: reg.Histogram("analytics_lambda_batch_handoff_seconds",
			"Total RunBatch duration: freeze, install, truncate, drain.",
			0, 5.0, 64, labels...),
		freeze: reg.Histogram("analytics_lambda_freeze_seconds",
			"Frozen batch view build time (replay of the master dataset).",
			0, 5.0, 64, labels...),
		truncate: reg.Histogram("analytics_lambda_truncate_seconds",
			"Speed-layer truncation: suffix replay and swap, or cluster rebuild.",
			0, 5.0, 64, labels...),
		merges: reg.Counter("analytics_lambda_merges_total",
			"Per-cell batch+speed snapshot merges performed by queries.",
			labels...),
	}
	a.tel.Store(tel)

	a.topic.SetTelemetry(reg)
	if a.cluster != nil {
		a.cluster.SetTelemetry(reg)
		return
	}
	a.speedMu.RLock()
	a.speed.SetTelemetry(reg, "layer", "lambda_speed")
	a.speedMu.RUnlock()
}
