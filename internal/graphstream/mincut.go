package graphstream

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// MinCut estimates the global minimum cut of a streamed multigraph with
// Karger's randomized contraction, repeated `trials` times over the
// retained edge list. With O(n^2 log n) trials the result is the true
// minimum cut with high probability; with fewer it is an upper bound that
// is usually tight on small graphs — the "computing min-cut" entry of the
// survey's graph-analysis row.
type MinCut struct {
	n     int
	edges []workload.Edge
	rng   *workload.RNG
}

// NewMinCut returns a min-cut estimator over n vertices.
func NewMinCut(n int, seed uint64) (*MinCut, error) {
	if n < 2 {
		return nil, core.Errf("MinCut", "n", "%d must be >= 2", n)
	}
	return &MinCut{n: n, rng: workload.NewRNG(seed)}, nil
}

// Update retains one edge of the stream (self-loops dropped).
func (m *MinCut) Update(e workload.Edge) {
	if e.U == e.V {
		return
	}
	m.edges = append(m.edges, e)
}

// Edges returns the number of retained edges.
func (m *MinCut) Edges() int { return len(m.edges) }

// Estimate runs `trials` random contractions and returns the smallest cut
// found. Zero is returned for disconnected (or empty) graphs.
func (m *MinCut) Estimate(trials int) int {
	if len(m.edges) == 0 {
		return 0
	}
	best := len(m.edges) + 1
	for t := 0; t < trials; t++ {
		if c := m.contractOnce(); c < best {
			best = c
		}
		if best == 0 {
			break
		}
	}
	return best
}

// contractOnce performs one Karger contraction to two super-vertices and
// returns the number of crossing edges.
func (m *MinCut) contractOnce() int {
	uf, _ := NewUnionFind(m.n)
	// Identify the vertices that actually appear; contract until exactly
	// two components of *present* vertices remain.
	present := map[int]struct{}{}
	for _, e := range m.edges {
		present[e.U] = struct{}{}
		present[e.V] = struct{}{}
	}
	comps := len(present)
	if comps < 2 {
		return 0
	}
	// Random order over edges; contract while more than 2 components.
	order := m.rng.Perm(len(m.edges))
	for _, idx := range order {
		if comps <= 2 {
			break
		}
		e := m.edges[idx]
		if uf.Union(e.U, e.V) {
			comps--
		}
	}
	if comps > 2 {
		// Graph was disconnected: cut of size zero exists.
		return 0
	}
	cut := 0
	for _, e := range m.edges {
		if uf.Find(e.U) != uf.Find(e.V) {
			cut++
		}
	}
	return cut
}
