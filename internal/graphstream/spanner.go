package graphstream

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Spanner maintains a multiplicative (2k-1)-spanner over an edge stream by
// the bounded-girth rule: keep an edge iff the retained subgraph currently
// offers no path of length <= 2k-1 between its endpoints. The retained
// graph has O(n^{1+1/k}) edges and stretches distances by at most 2k-1 —
// the Ahn–Guha–McGregor sparsification row of Table 1.
type Spanner struct {
	k   int
	adj [][]int
	n   int
	cnt int
}

// NewSpanner returns a streaming (2k-1)-spanner over n vertices.
func NewSpanner(n, k int) (*Spanner, error) {
	if n <= 0 {
		return nil, core.Errf("Spanner", "n", "%d must be positive", n)
	}
	if k < 1 {
		return nil, core.Errf("Spanner", "k", "%d must be >= 1", k)
	}
	return &Spanner{k: k, adj: make([][]int, n), n: n}, nil
}

// Update offers one edge; it is retained iff the spanner currently has no
// path of length <= 2k-1 between its endpoints.
func (s *Spanner) Update(e workload.Edge) {
	if e.U == e.V {
		return
	}
	if s.withinDistance(e.U, e.V, 2*s.k-1) {
		return
	}
	s.adj[e.U] = append(s.adj[e.U], e.V)
	s.adj[e.V] = append(s.adj[e.V], e.U)
	s.cnt++
}

// withinDistance runs a depth-bounded BFS on the retained subgraph.
func (s *Spanner) withinDistance(src, dst, maxLen int) bool {
	if src == dst {
		return true
	}
	visited := map[int]int{src: 0}
	frontier := []int{src}
	for depth := 0; depth < maxLen && len(frontier) > 0; depth++ {
		var next []int
		for _, u := range frontier {
			for _, v := range s.adj[u] {
				if v == dst {
					return true
				}
				if _, seen := visited[v]; !seen {
					visited[v] = depth + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return false
}

// Edges returns the number of retained edges.
func (s *Spanner) Edges() int { return s.cnt }

// Distance returns the hop distance between a and b in the spanner
// (-1 when disconnected).
func (s *Spanner) Distance(a, b int) int {
	if a == b {
		return 0
	}
	visited := map[int]int{a: 0}
	frontier := []int{a}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range s.adj[u] {
				if _, seen := visited[v]; seen {
					continue
				}
				visited[v] = visited[u] + 1
				if v == b {
					return visited[v]
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return -1
}

// TriangleCounter counts triangles exactly over an edge stream by
// maintaining adjacency sets and, per arriving edge, intersecting its
// endpoints' neighbourhoods. Exact and O(m) space: the baseline the
// sampling estimators in the literature are judged against.
type TriangleCounter struct {
	adj   []map[int]struct{}
	count uint64
}

// NewTriangleCounter returns an exact streaming triangle counter over n
// vertices.
func NewTriangleCounter(n int) (*TriangleCounter, error) {
	if n <= 0 {
		return nil, core.Errf("TriangleCounter", "n", "%d must be positive", n)
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &TriangleCounter{adj: adj}, nil
}

// Update offers one edge (duplicates and self-loops ignored).
func (t *TriangleCounter) Update(e workload.Edge) {
	if e.U == e.V {
		return
	}
	if _, dup := t.adj[e.U][e.V]; dup {
		return
	}
	// New triangles are common neighbours of the endpoints.
	small, large := t.adj[e.U], t.adj[e.V]
	if len(large) < len(small) {
		small, large = large, small
	}
	for w := range small {
		if _, ok := large[w]; ok {
			t.count++
		}
	}
	t.adj[e.U][e.V] = struct{}{}
	t.adj[e.V][e.U] = struct{}{}
}

// Count returns the number of triangles.
func (t *TriangleCounter) Count() uint64 { return t.count }

// DynamicReach answers bounded-length path queries over a dynamic graph
// (edge insertions and deletions) — Table 1's "Path Analysis" row
// (Eppstein et al. dynamic-graph sparsification motivates the problem; at
// web-graph scale the bounded depth keeps queries cheap).
type DynamicReach struct {
	adj []map[int]struct{}
}

// NewDynamicReach returns a dynamic graph over n vertices.
func NewDynamicReach(n int) (*DynamicReach, error) {
	if n <= 0 {
		return nil, core.Errf("DynamicReach", "n", "%d must be positive", n)
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &DynamicReach{adj: adj}, nil
}

// Insert adds an undirected edge.
func (d *DynamicReach) Insert(e workload.Edge) {
	if e.U == e.V {
		return
	}
	d.adj[e.U][e.V] = struct{}{}
	d.adj[e.V][e.U] = struct{}{}
}

// Delete removes an undirected edge (no-op when absent).
func (d *DynamicReach) Delete(e workload.Edge) {
	delete(d.adj[e.U], e.V)
	delete(d.adj[e.V], e.U)
}

// WithinL reports whether a path of length <= l connects a and b, by
// bidirectional depth-bounded BFS.
func (d *DynamicReach) WithinL(a, b, l int) bool {
	if a == b {
		return true
	}
	if l <= 0 {
		return false
	}
	// Bidirectional: expand the smaller frontier, alternating, up to l
	// total depth.
	fromA := map[int]struct{}{a: {}}
	fromB := map[int]struct{}{b: {}}
	frontA := []int{a}
	frontB := []int{b}
	depth := 0
	for depth < l && (len(frontA) > 0 || len(frontB) > 0) {
		// Expand the smaller side.
		if len(frontA) <= len(frontB) && len(frontA) > 0 || len(frontB) == 0 {
			var next []int
			for _, u := range frontA {
				for v := range d.adj[u] {
					if _, meet := fromB[v]; meet {
						return true
					}
					if _, seen := fromA[v]; !seen {
						fromA[v] = struct{}{}
						next = append(next, v)
					}
				}
			}
			frontA = next
		} else {
			var next []int
			for _, u := range frontB {
				for v := range d.adj[u] {
					if _, meet := fromA[v]; meet {
						return true
					}
					if _, seen := fromB[v]; !seen {
						fromB[v] = struct{}{}
						next = append(next, v)
					}
				}
			}
			frontB = next
		}
		depth++
	}
	return false
}

// Degree returns the degree of v.
func (d *DynamicReach) Degree(v int) int { return len(d.adj[v]) }
