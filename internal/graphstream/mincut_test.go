package graphstream

import (
	"testing"

	"repro/internal/workload"
)

func TestMinCutValidation(t *testing.T) {
	if _, err := NewMinCut(1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestMinCutBarbell(t *testing.T) {
	// Two K5 cliques joined by exactly 2 bridge edges: min cut = 2.
	mc, _ := NewMinCut(10, 7)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			mc.Update(workload.Edge{U: i, V: j})
			mc.Update(workload.Edge{U: i + 5, V: j + 5})
		}
	}
	mc.Update(workload.Edge{U: 0, V: 5})
	mc.Update(workload.Edge{U: 1, V: 6})
	if got := mc.Estimate(200); got != 2 {
		t.Fatalf("barbell min cut %d, want 2", got)
	}
}

func TestMinCutBridge(t *testing.T) {
	// A single bridge: min cut = 1.
	mc, _ := NewMinCut(8, 9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mc.Update(workload.Edge{U: i, V: j})
			mc.Update(workload.Edge{U: i + 4, V: j + 4})
		}
	}
	mc.Update(workload.Edge{U: 3, V: 4})
	if got := mc.Estimate(200); got != 1 {
		t.Fatalf("bridge min cut %d, want 1", got)
	}
}

func TestMinCutDisconnected(t *testing.T) {
	mc, _ := NewMinCut(6, 11)
	mc.Update(workload.Edge{U: 0, V: 1})
	mc.Update(workload.Edge{U: 3, V: 4})
	if got := mc.Estimate(50); got != 0 {
		t.Fatalf("disconnected min cut %d, want 0", got)
	}
}

func TestMinCutEmpty(t *testing.T) {
	mc, _ := NewMinCut(4, 13)
	if got := mc.Estimate(10); got != 0 {
		t.Fatalf("empty min cut %d", got)
	}
}

func TestMinCutCycleIsTwo(t *testing.T) {
	// A simple cycle has min cut exactly 2.
	mc, _ := NewMinCut(12, 15)
	for i := 0; i < 12; i++ {
		mc.Update(workload.Edge{U: i, V: (i + 1) % 12})
	}
	if got := mc.Estimate(300); got != 2 {
		t.Fatalf("cycle min cut %d, want 2", got)
	}
}

func BenchmarkMinCutEstimate(b *testing.B) {
	mc, _ := NewMinCut(100, 1)
	rng := workload.NewRNG(1)
	for _, e := range workload.RandomGraph(rng, 100, 1000) {
		mc.Update(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Estimate(10)
	}
}
