package graphstream

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestUnionFindBasics(t *testing.T) {
	u, _ := NewUnionFind(5)
	if u.Components() != 5 {
		t.Fatalf("initial components %d", u.Components())
	}
	if !u.Union(0, 1) || !u.Union(2, 3) {
		t.Fatal("merges failed")
	}
	if u.Union(0, 1) {
		t.Fatal("repeated merge reported true")
	}
	if u.Components() != 3 {
		t.Fatalf("components %d, want 3", u.Components())
	}
	if !u.Connected(0, 1) || u.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	u.Union(1, 2)
	if !u.Connected(0, 3) {
		t.Fatal("transitive connectivity wrong")
	}
}

func TestSpanningForestSizeAndConnectivity(t *testing.T) {
	const n = 200
	sf, _ := NewSpanningForest(n)
	rng := workload.NewRNG(1)
	for _, e := range workload.RandomGraph(rng, n, 5000) {
		sf.Update(e)
	}
	// Dense random graph: almost surely connected -> n-1 tree edges.
	if sf.Components() != 1 {
		t.Fatalf("components %d", sf.Components())
	}
	if len(sf.Edges()) != n-1 {
		t.Fatalf("forest edges %d, want %d", len(sf.Edges()), n-1)
	}
}

func TestGreedyMatchingMaximal(t *testing.T) {
	const n = 300
	g, _ := NewGreedyMatching(n)
	rng := workload.NewRNG(2)
	edges := workload.RandomGraph(rng, n, 3000)
	for _, e := range edges {
		g.Update(e)
	}
	// Maximality: no offered edge may have both endpoints free.
	for _, e := range edges {
		if !g.IsMatched(e.U) && !g.IsMatched(e.V) {
			t.Fatalf("edge (%d,%d) violates maximality", e.U, e.V)
		}
	}
	// Matching property: no vertex in two pairs.
	seen := map[int]bool{}
	for _, e := range g.Pairs() {
		if seen[e.U] || seen[e.V] {
			t.Fatal("vertex matched twice")
		}
		seen[e.U], seen[e.V] = true, true
	}
}

func TestVertexCoverCoversEverything(t *testing.T) {
	const n = 150
	g, _ := NewGreedyMatching(n)
	rng := workload.NewRNG(3)
	edges := workload.RandomGraph(rng, n, 2000)
	for _, e := range edges {
		g.Update(e)
	}
	cover := map[int]bool{}
	for _, v := range g.VertexCover() {
		cover[v] = true
	}
	for _, e := range edges {
		if !cover[e.U] && !cover[e.V] {
			t.Fatalf("edge (%d,%d) uncovered", e.U, e.V)
		}
	}
}

func TestWeightedMatchingPrefersHeavy(t *testing.T) {
	w, _ := NewWeightedMatching(4, 0.1)
	w.Update(WeightedEdge{U: 0, V: 1, Weight: 1})
	// A much heavier conflicting edge must displace it.
	w.Update(WeightedEdge{U: 1, V: 2, Weight: 10})
	pairs := w.Pairs()
	if len(pairs) != 1 || pairs[0].Weight != 10 {
		t.Fatalf("displacement failed: %+v", pairs)
	}
	// A light conflicting edge must not.
	w.Update(WeightedEdge{U: 2, V: 3, Weight: 5})
	if len(w.Pairs()) != 1 {
		t.Fatalf("light edge displaced heavy: %+v", w.Pairs())
	}
}

func TestWeightedMatchingQualityVsGreedy(t *testing.T) {
	// On a graph with heavy edges arriving before light conflicting ones
	// and vice versa, the weighted matcher's total weight must at least
	// match unweighted greedy's.
	const n = 200
	rng := workload.NewRNG(4)
	edges := workload.RandomGraph(rng, n, 2000)
	weights := make([]float64, len(edges))
	for i := range weights {
		weights[i] = 1 + rng.Float64()*99
	}
	wm, _ := NewWeightedMatching(n, 1.0)
	gm, _ := NewGreedyMatching(n)
	var greedyWeight float64
	for i, e := range edges {
		wm.Update(WeightedEdge{U: e.U, V: e.V, Weight: weights[i]})
		before := gm.Size()
		gm.Update(e)
		if gm.Size() > before {
			greedyWeight += weights[i]
		}
	}
	if wm.TotalWeight() < greedyWeight*0.8 {
		t.Fatalf("weighted matching %v far below greedy %v", wm.TotalWeight(), greedyWeight)
	}
}

func TestSpannerStretchBound(t *testing.T) {
	const n = 120
	const k = 2 // (2k-1) = 3-spanner
	s, _ := NewSpanner(n, k)
	rng := workload.NewRNG(5)
	edges := workload.RandomGraph(rng, n, 2500)
	// Build exact graph for ground-truth distances.
	exact, _ := NewDynamicReach(n)
	for _, e := range edges {
		s.Update(e)
		exact.Insert(e)
	}
	// Spanner must be sparser than the input.
	if s.Edges() >= 2500/2 {
		t.Fatalf("spanner kept %d of 2500 edges", s.Edges())
	}
	// Stretch: adjacent-in-G pairs must be within 3 hops in the spanner.
	for _, e := range edges[:300] {
		d := s.Distance(e.U, e.V)
		if d < 0 || d > 2*k-1 {
			t.Fatalf("edge (%d,%d) stretched to %d > %d", e.U, e.V, d, 2*k-1)
		}
	}
}

func TestTriangleCounterExact(t *testing.T) {
	tc, _ := NewTriangleCounter(6)
	// K4 on {0,1,2,3} has 4 triangles.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			tc.Update(workload.Edge{U: i, V: j})
		}
	}
	if tc.Count() != 4 {
		t.Fatalf("K4 triangles %d, want 4", tc.Count())
	}
	// Duplicate edges must not double count.
	tc.Update(workload.Edge{U: 0, V: 1})
	if tc.Count() != 4 {
		t.Fatalf("duplicate edge changed count to %d", tc.Count())
	}
	// An edge to an isolated vertex adds nothing.
	tc.Update(workload.Edge{U: 4, V: 5})
	if tc.Count() != 4 {
		t.Fatal("isolated edge added triangles")
	}
}

func TestTriangleCounterMatchesBrute(t *testing.T) {
	const n = 40
	rng := workload.NewRNG(6)
	edges := workload.RandomGraph(rng, n, 300)
	tc, _ := NewTriangleCounter(n)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range edges {
		tc.Update(e)
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	var brute uint64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !adj[i][j] {
				continue
			}
			for k := j + 1; k < n; k++ {
				if adj[i][k] && adj[j][k] {
					brute++
				}
			}
		}
	}
	if tc.Count() != brute {
		t.Fatalf("streaming %d != brute %d", tc.Count(), brute)
	}
}

func TestDynamicReachPathQueries(t *testing.T) {
	const n = 50
	d, _ := NewDynamicReach(n)
	for _, e := range workload.PathGraph(n) {
		d.Insert(e)
	}
	if !d.WithinL(0, 10, 10) {
		t.Fatal("path of exactly length 10 not found")
	}
	if d.WithinL(0, 10, 9) {
		t.Fatal("found path shorter than exists")
	}
	if !d.WithinL(7, 7, 0) {
		t.Fatal("self not within 0")
	}
	// Delete a middle edge: reachability across it must vanish.
	d.Delete(workload.Edge{U: 5, V: 6})
	if d.WithinL(0, 10, 49) {
		t.Fatal("reachability survived edge deletion")
	}
	// Shortcut edge restores it with shorter length.
	d.Insert(workload.Edge{U: 0, V: 10})
	if !d.WithinL(0, 10, 1) {
		t.Fatal("shortcut not used")
	}
}

func TestQuickSpanningForestComponentsMatchUF(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 32
		sf, _ := NewSpanningForest(n)
		uf, _ := NewUnionFind(n)
		for _, r := range raw {
			u := int(r) % n
			v := int(r>>8) % n
			if u == v {
				continue
			}
			sf.Update(workload.Edge{U: u, V: v})
			uf.Union(u, v)
		}
		return sf.Components() == uf.Components()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyMatchingUpdate(b *testing.B) {
	g, _ := NewGreedyMatching(1 << 16)
	rng := workload.NewRNG(1)
	edges := workload.RandomGraph(rng, 1<<16, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(edges[i%len(edges)])
	}
}

func BenchmarkTriangleCounterUpdate(b *testing.B) {
	tc, _ := NewTriangleCounter(1 << 12)
	rng := workload.NewRNG(1)
	edges := workload.RandomGraph(rng, 1<<12, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Update(edges[i%len(edges)])
	}
}
