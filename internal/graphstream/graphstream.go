// Package graphstream implements the graph-stream algorithms of the
// tutorial's Table 1 "Graph analysis" and "Path Analysis" rows, in the
// semi-streaming model (O(n polylog n) memory, edges arrive one at a time)
// the survey's Feigenbaum et al. and McGregor citations define:
//
//   - connectivity / spanning forest via union-find,
//   - greedy maximal matching (2-approximation) and weighted matching,
//   - maximal-matching-based vertex cover (2-approximation),
//   - multiplicative spanners via bounded-girth edge retention,
//   - triangle counting (exact incidence form),
//   - bounded-length reachability over dynamic graphs (Table 1's
//     "path of length <= l between two nodes" row).
package graphstream

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// UnionFind is a path-compressing, union-by-rank disjoint-set forest —
// the one-pass connectivity summary of the semi-streaming model.
type UnionFind struct {
	parent []int
	rank   []uint8
	comps  int
}

// NewUnionFind returns a disjoint-set forest over n vertices.
func NewUnionFind(n int) (*UnionFind, error) {
	if n <= 0 {
		return nil, core.Errf("UnionFind", "n", "%d must be positive", n)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	return &UnionFind{parent: parent, rank: make([]uint8, n), comps: n}, nil
}

// Find returns the representative of x's component.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the components of a and b; it reports whether a merge
// happened (false when already connected).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.comps--
	return true
}

// Connected reports whether a and b are in the same component.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Components returns the number of components.
func (u *UnionFind) Components() int { return u.comps }

// SpanningForest consumes an edge stream keeping exactly the edges that
// merge components: a one-pass spanning forest in O(n) space.
type SpanningForest struct {
	uf    *UnionFind
	edges []workload.Edge
}

// NewSpanningForest returns a streaming spanning forest over n vertices.
func NewSpanningForest(n int) (*SpanningForest, error) {
	uf, err := NewUnionFind(n)
	if err != nil {
		return nil, err
	}
	return &SpanningForest{uf: uf}, nil
}

// Update offers one edge; it is retained iff it connects two components.
func (s *SpanningForest) Update(e workload.Edge) {
	if s.uf.Union(e.U, e.V) {
		s.edges = append(s.edges, e)
	}
}

// Edges returns the forest edges.
func (s *SpanningForest) Edges() []workload.Edge { return s.edges }

// Components returns the current component count.
func (s *SpanningForest) Components() int { return s.uf.Components() }

// Connected reports whether two vertices are connected.
func (s *SpanningForest) Connected(a, b int) bool { return s.uf.Connected(a, b) }

// GreedyMatching maintains a maximal matching over the edge stream: an
// edge is taken iff both endpoints are free. Maximal matchings are
// 1/2-approximate for maximum matching — the canonical semi-streaming
// result of Feigenbaum et al.
type GreedyMatching struct {
	matched []bool
	pairs   []workload.Edge
}

// NewGreedyMatching returns a streaming matcher over n vertices.
func NewGreedyMatching(n int) (*GreedyMatching, error) {
	if n <= 0 {
		return nil, core.Errf("GreedyMatching", "n", "%d must be positive", n)
	}
	return &GreedyMatching{matched: make([]bool, n)}, nil
}

// Update offers one edge.
func (g *GreedyMatching) Update(e workload.Edge) {
	if g.matched[e.U] || g.matched[e.V] || e.U == e.V {
		return
	}
	g.matched[e.U] = true
	g.matched[e.V] = true
	g.pairs = append(g.pairs, e)
}

// Size returns the matching size.
func (g *GreedyMatching) Size() int { return len(g.pairs) }

// Pairs returns the matched edges.
func (g *GreedyMatching) Pairs() []workload.Edge { return g.pairs }

// IsMatched reports whether vertex v is covered by the matching.
func (g *GreedyMatching) IsMatched(v int) bool { return g.matched[v] }

// VertexCover returns the 2-approximate vertex cover induced by the
// matching: both endpoints of every matched edge (König-style bound the
// survey's Chitnis et al. parameterized-streaming row builds on).
func (g *GreedyMatching) VertexCover() []int {
	out := make([]int, 0, 2*len(g.pairs))
	for _, e := range g.pairs {
		out = append(out, e.U, e.V)
	}
	return out
}

// WeightedMatching implements the one-pass weighted matching of
// Feigenbaum et al.: a new edge displaces its conflicting matched edges
// only when its weight exceeds (1+gamma) times their combined weight. The
// result is a constant-factor approximation in one pass.
type WeightedMatching struct {
	gamma float64
	// matchedWith[v] = index into pairs, or -1
	matchedWith []int
	pairs       []WeightedEdge
}

// WeightedEdge is an edge with a positive weight.
type WeightedEdge struct {
	U, V   int
	Weight float64
}

// NewWeightedMatching returns a one-pass weighted matcher over n vertices
// with displacement slack gamma (>= 0; the classic analysis uses gamma=1).
func NewWeightedMatching(n int, gamma float64) (*WeightedMatching, error) {
	if n <= 0 {
		return nil, core.Errf("WeightedMatching", "n", "%d must be positive", n)
	}
	if gamma < 0 {
		return nil, core.Errf("WeightedMatching", "gamma", "%v must be >= 0", gamma)
	}
	mw := make([]int, n)
	for i := range mw {
		mw[i] = -1
	}
	return &WeightedMatching{gamma: gamma, matchedWith: mw}, nil
}

// Update offers one weighted edge.
func (w *WeightedMatching) Update(e WeightedEdge) {
	if e.U == e.V || e.Weight <= 0 {
		return
	}
	conflictWeight := 0.0
	var conflicts []int
	if idx := w.matchedWith[e.U]; idx >= 0 {
		conflictWeight += w.pairs[idx].Weight
		conflicts = append(conflicts, idx)
	}
	if idx := w.matchedWith[e.V]; idx >= 0 && (len(conflicts) == 0 || idx != conflicts[0]) {
		conflictWeight += w.pairs[idx].Weight
		conflicts = append(conflicts, idx)
	}
	if e.Weight <= (1+w.gamma)*conflictWeight {
		return
	}
	// Displace conflicts (mark slots dead), take e.
	for _, idx := range conflicts {
		dead := w.pairs[idx]
		w.matchedWith[dead.U] = -1
		w.matchedWith[dead.V] = -1
		w.pairs[idx].Weight = 0 // tombstone
	}
	w.pairs = append(w.pairs, e)
	w.matchedWith[e.U] = len(w.pairs) - 1
	w.matchedWith[e.V] = len(w.pairs) - 1
}

// Pairs returns the live matched edges.
func (w *WeightedMatching) Pairs() []WeightedEdge {
	out := make([]WeightedEdge, 0)
	for _, p := range w.pairs {
		if p.Weight > 0 {
			out = append(out, p)
		}
	}
	return out
}

// TotalWeight returns the matching's total weight.
func (w *WeightedMatching) TotalWeight() float64 {
	total := 0.0
	for _, p := range w.pairs {
		total += p.Weight
	}
	return total
}
