// The Instrument decorator's conformance extension: a wrapped backend
// must be observationally identical to the bare one — same answers cell
// for cell, same errors, same key discovery — across every serving
// implementation, while the registry records the traffic on the side.
package analytics

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestInstrumentTransparent feeds the conformance dataset through an
// Instrument-wrapped backend and through a bare one, for all four
// serving implementations, and requires identical answers — the wrapper
// may only ever count and time, never change a byte of the result.
func TestInstrumentTransparent(t *testing.T) {
	bare := newHarnesses(t)
	wrapped := newHarnesses(t)
	reg := telemetry.New()
	for i := range wrapped {
		wrapped[i].be = Instrument(wrapped[i].be, reg, wrapped[i].name)
	}

	for i, hb := range bare {
		hw := wrapped[i]
		t.Run(hw.name, func(t *testing.T) {
			registerFamilies(t, hb.be)
			registerFamilies(t, hw.be) // through the wrapper: delegation path
			feed(t, hb.be, conformanceSpan)
			feed(t, hw.be, conformanceSpan)
			if err := hb.drain(); err != nil {
				t.Fatal(err)
			}
			if err := hw.drain(); err != nil {
				t.Fatal(err)
			}

			req := store.QueryRequest{
				Metrics: []string{"uniq", "hits", "top", "lat"},
				AllKeys: true,
				From:    0, To: conformanceSpan,
			}
			want, err := hb.be.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := hw.be.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Answers(), want.Answers()) {
				t.Fatal("instrumented answers differ from bare answers")
			}

			// The PointQuerier face must be equally transparent.
			pq := hw.be.(PointQuerier)
			for _, key := range []string{"k0", "k3", "ghost"} {
				ws, err := hb.be.(PointQuerier).QueryPoint("uniq", key, 0, conformanceSpan)
				if err != nil {
					t.Fatal(err)
				}
				gs, err := pq.QueryPoint("uniq", key, 0, conformanceSpan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gs, ws) {
					t.Fatalf("QueryPoint(%s) diverges under instrumentation", key)
				}
			}

			// Errors pass through unchanged, including the sentinel.
			_, err = hw.be.Query(store.QueryRequest{Metric: "nope", Key: "k0", From: 0, To: 10})
			if !errors.Is(err, store.ErrUnknownMetric) {
				t.Fatalf("wrapped query error %v, want ErrUnknownMetric", err)
			}
			// Keys is unordered on some backends (Lambda documents it so);
			// compare as sets.
			wantKeys, gotKeys := hb.be.Keys("uniq"), hw.be.Keys("uniq")
			sort.Strings(wantKeys)
			sort.Strings(gotKeys)
			if !reflect.DeepEqual(gotKeys, wantKeys) {
				t.Fatal("Keys diverges under instrumentation")
			}
			if hw.be.Stats().Observed != hb.be.Stats().Observed {
				t.Fatal("Stats diverges under instrumentation")
			}
		})
	}

	// The side effect the wrapper exists for: per-backend, per-metric
	// operation counts in the registry.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, h := range wrapped {
		obs := fmt.Sprintf(`analytics_backend_observe_total{backend=%q,metric="hits"} %d`, h.name, conformanceSpan)
		if !strings.Contains(text, obs) {
			t.Errorf("exposition is missing %q", obs)
		}
	}
}

// TestInstrumentNilRegistry pins the zero-cost opt-out: a nil registry
// returns the backend itself, not a wrapper.
func TestInstrumentNilRegistry(t *testing.T) {
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}
	if be := Instrument(st, nil, "store"); be != Backend(st) {
		t.Fatal("Instrument with nil registry did not return the bare backend")
	}
}

// TestInstrumentUnwrap pins the escape hatch back to the bare backend.
func TestInstrumentUnwrap(t *testing.T) {
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Instrument(st, telemetry.New(), "store")
	un, ok := wrapped.(interface{ Unwrap() Backend })
	if !ok {
		t.Fatal("instrumented backend has no Unwrap")
	}
	if un.Unwrap() != Backend(st) {
		t.Fatal("Unwrap did not return the bare backend")
	}
}

// TestInstrumentErrorCounting drives the error paths and checks they are
// counted per operation without perturbing the returned error.
func TestInstrumentErrorCounting(t *testing.T) {
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	be := Instrument(st, reg, "store")
	if err := be.Observe(store.Observation{Metric: "nope", Key: "k", Item: "x"}); !errors.Is(err, store.ErrUnknownMetric) {
		t.Fatalf("observe error %v", err)
	}
	if _, err := be.Query(store.QueryRequest{Metric: "nope", Key: "k", From: 0, To: 1}); !errors.Is(err, store.ErrUnknownMetric) {
		t.Fatalf("query error %v", err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"observe", "query"} {
		want := fmt.Sprintf(`analytics_backend_errors_total{backend="store",op=%q} 1`, op)
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
}
