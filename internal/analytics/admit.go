// admit.go is the admission decorator over the Backend contract, in the
// Instrument idiom: wrap any serving backend and every write is priced
// against the controller's token buckets before it can touch state.
// Queries are never admitted — overload control protects the write
// path; reads are already bounded by deadlines and the read cache.
package analytics

import (
	"context"

	"repro/internal/admission"
	"repro/internal/store"
)

// Admit wraps be so every Observe and ObserveBatch first clears
// ctrl.Admit for its metric. A shed write returns the controller's
// typed *admission.Overload (matching admission.ErrOverloaded via
// errors.Is) and provably never reaches the backend — batches are
// admitted in full before a single observation is delegated, riding
// the BatchObserver all-or-nothing contract underneath.
//
// A nil controller returns be unchanged, so call sites can wire
// admission unconditionally. The admitted-but-unthrottled hot path
// adds no allocations over the bare backend (pinned by the alloc gate
// in this package's benchmarks).
func Admit(be Backend, ctrl *admission.Controller) Backend {
	if ctrl == nil {
		return be
	}
	return &admitted{be: be, ctrl: ctrl}
}

type admitted struct {
	be   Backend
	ctrl *admission.Controller
}

func (a *admitted) RegisterMetric(name string, proto store.Prototype) error {
	return a.be.RegisterMetric(name, proto)
}

func (a *admitted) Observe(obs store.Observation) error {
	if err := a.ctrl.Admit(obs.Metric, 1); err != nil {
		return err
	}
	return a.be.Observe(obs)
}

// ObserveBatch admits the whole batch before delegating any of it, so
// a shed batch mutates nothing. Runs of the same metric are priced in
// one Admit call (the common shape — the serving edge and the preload
// both batch per metric or in metric-major order). When a later run
// sheds, tokens granted to earlier runs in the same batch stay spent:
// admission accounting is conservative under partial-batch shed, but
// backend state is untouched either way.
func (a *admitted) ObserveBatch(obs []store.Observation) error {
	for i := 0; i < len(obs); {
		j := i + 1
		for j < len(obs) && obs[j].Metric == obs[i].Metric {
			j++
		}
		if err := a.ctrl.Admit(obs[i].Metric, j-i); err != nil {
			return err
		}
		i = j
	}
	return ObserveBatch(a.be, obs)
}

func (a *admitted) Query(req store.QueryRequest) (store.QueryResult, error) {
	return a.be.Query(req)
}

func (a *admitted) Keys(metric string) []string { return a.be.Keys(metric) }

func (a *admitted) Stats() store.Stats { return a.be.Stats() }

// QueryContext delegates deadline-aware queries (unadmitted, like
// Query) so the decorator composes with the serving edge.
func (a *admitted) QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error) {
	return QueryContext(ctx, a.be, req)
}

// QueryPoint delegates through the contract helper path.
func (a *admitted) QueryPoint(metric, key string, from, to int64) (store.Synopsis, error) {
	if pq, ok := a.be.(PointQuerier); ok {
		return pq.QueryPoint(metric, key, from, to)
	}
	res, err := a.be.Query(store.PointRequest(metric, key, from, to))
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// Flush settles the backend's producer-side buffers when it has any.
func (a *admitted) Flush() {
	if f, ok := a.be.(Flusher); ok {
		f.Flush()
	}
}

// Unwrap returns the wrapped backend.
func (a *admitted) Unwrap() Backend { return a.be }
