// Package analytics defines the unified serving contract of this
// repository: one Backend interface that the tutorial's whole platform
// design space answers queries through — the sharded speed store
// (store.Store), the partitioned store cluster (dstore.Router) and the
// Lambda Architecture's batch+speed merge (lambda.Architecture) all
// satisfy it, so a dashboard, a topology sink (engine.SinkBolt) or an
// experiment can swap serving layers without touching a call site. This
// is the Section 3 argument made literal: the platforms differ in how
// they partition, recover and trade staleness for cost, not in what a
// query means.
//
// # Contract
//
// Every Backend implementation agrees on the following semantics, pinned
// by the cross-backend conformance suite in this package's tests:
//
//   - RegisterMetric binds a metric name to the store.Prototype its bucket
//     synopses are built from. Registration happens before the first
//     write; re-registering a name is an error.
//   - Observe absorbs one observation. An observation naming an
//     unregistered metric is an error wrapping store.ErrUnknownMetric;
//     a negative time is an error. Durability and read-your-writes vary
//     by backend (the store is synchronous; the cluster appends to its
//     ingest log and is read-your-writes after Drain; Lambda dispatches
//     to the master log and speed layer).
//   - Query answers a typed store.QueryRequest. A request naming an
//     unregistered metric fails with an error wrapping
//     store.ErrUnknownMetric. A registered metric with no data for a
//     requested key or range answers an EMPTY synopsis cell, never an
//     error — absence of writes is a valid answer. Multi-key and
//     multi-metric requests fan out inside the backend (per-shard gather
//     in the store, scatter-gather in the cluster, batch+speed merge in
//     Lambda), and aggregate answers merge per-key synopses in sorted key
//     order, so Aggregate equals per-key query + store.CombineSnapshots
//     byte for byte.
//   - Keys returns the metric's resident keys (deduplicated; order is
//     backend-defined). An unknown metric answers an empty slice, not an
//     error — Keys is a discovery call, not a validation call.
//   - Stats snapshots the backend's store counters: the store's own, the
//     aggregate across cluster nodes, or the Lambda speed layer's (its
//     sealed batch view reports separately via BatchView().Stats()).
package analytics

import (
	"context"

	"repro/internal/store"
)

// Backend is the unified serving API. store.Store, dstore.Router and
// lambda.Architecture satisfy it; engine.SinkBolt sinks topology streams
// into any of them through it. See the package comment for the exact
// semantics every implementation must honor.
type Backend interface {
	// RegisterMetric binds a metric name to the prototype its bucket
	// synopses are built from.
	RegisterMetric(name string, proto store.Prototype) error
	// Observe absorbs one observation.
	Observe(obs store.Observation) error
	// Query answers one typed request; see store.QueryRequest and
	// store.QueryResult.
	Query(req store.QueryRequest) (store.QueryResult, error)
	// Keys returns the metric's resident keys.
	Keys(metric string) []string
	// Stats snapshots the backend's store counters.
	Stats() store.Stats
}

// PointQuerier is the optional legacy surface: the inclusive-range point
// query every backend keeps as a thin wrapper over Query. New code should
// prefer Query; this exists so migrations can be mechanical.
type PointQuerier interface {
	QueryPoint(metric, key string, from, to int64) (store.Synopsis, error)
}

// Flusher is the optional producer-side flush a buffering backend (the
// cluster router, Lambda in cluster mode) exposes; engine.SinkBolt calls
// it when a topology run completes. Backends with synchronous writes
// simply don't implement it.
type Flusher interface {
	Flush()
}

// ContextQuerier is the optional deadline-aware query surface: a
// backend that can abort an in-flight gather when the caller's context
// is cancelled or its deadline passes. store.Store, dstore.Router and
// lambda.Architecture all implement it (ctx threads through the store's
// per-shard fan-out and the cluster's scatter-gather), and the serving
// daemon drives every request through it. QueryContext with a live
// context answers exactly what Query would; a cancelled context yields
// an error wrapping ctx.Err(), never a partial answer.
type ContextQuerier interface {
	QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error)
}

// QueryContext answers req through be honoring ctx: backends that
// implement ContextQuerier get the context threaded through their
// gathers; for the rest, ctx is checked once up front and the plain
// Query runs to completion (the contract every Backend already keeps).
func QueryContext(ctx context.Context, be Backend, req store.QueryRequest) (store.QueryResult, error) {
	if cq, ok := be.(ContextQuerier); ok {
		return cq.QueryContext(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return store.QueryResult{}, err
	}
	return be.Query(req)
}
