// trace_test.go pins the tracing decorator's two contracts: wrapping a
// backend with a tracer changes no answer (the conformance dataset
// reads back identically, traced vs bare), and a sampled cluster ingest
// stitches one trace across the log — Instrument root, router append,
// node fetch, node apply, store observe.
package analytics

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/dstore"
	"repro/internal/store"
	"repro/internal/trace"
)

// tracedTracer samples everything and calls every query slow, the
// maximally invasive configuration: every ingest carries a context,
// every query root is kept and slow-logged.
func tracedTracer() *trace.Tracer {
	return trace.NewTracer(trace.Config{
		SampleRate:    1,
		SlowThreshold: time.Nanosecond,
		Seed:          0x5EED,
	})
}

// TestTracedBackendsAnswerLikeBare runs every serving backend twice on
// the conformance dataset — bare, and wrapped in Instrument with a
// sample-everything tracer wired through the layer underneath — and
// requires identical answers. Tracing is observation, never
// computation.
func TestTracedBackendsAnswerLikeBare(t *testing.T) {
	bare := newHarnesses(t)
	traced := newHarnesses(t)
	for i := range bare {
		t.Run(bare[i].name, func(t *testing.T) {
			tr := tracedTracer()
			traced[i].wire(tr)
			tbe := Instrument(traced[i].be, nil, traced[i].name, WithTracer(tr))

			for _, h := range []struct {
				be    Backend
				drain func() error
			}{{bare[i].be, bare[i].drain}, {tbe, traced[i].drain}} {
				registerFamilies(t, h.be)
				feed(t, h.be, conformanceSpan)
				if f, ok := h.be.(Flusher); ok {
					f.Flush()
				}
				if err := h.drain(); err != nil {
					t.Fatal(err)
				}
			}

			req := store.QueryRequest{
				Metrics: []string{"uniq", "hits", "top", "lat"},
				AllKeys: true,
				From:    0, To: conformanceSpan,
			}
			want, err := bare[i].be.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tbe.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("traced answered %d cells, bare %d", got.Len(), want.Len())
			}
			for j, a := range got.Answers() {
				b := want.Answers()[j]
				if a.Metric != b.Metric || a.Key != b.Key {
					t.Fatalf("cell %d is %s/%s, bare has %s/%s", j, a.Metric, a.Key, b.Metric, b.Key)
				}
				switch a.Metric {
				case "uniq":
					if a.Distinct() != b.Distinct() {
						t.Errorf("%s/%s: distinct %d vs %d", a.Metric, a.Key, a.Distinct(), b.Distinct())
					}
				case "hits":
					for u := 0; u < 13; u++ {
						item := fmt.Sprintf("u%d", u)
						if a.Count(item) != b.Count(item) {
							t.Errorf("%s/%s: count(%s) %d vs %d", a.Metric, a.Key, item, a.Count(item), b.Count(item))
						}
					}
				case "top":
					if !reflect.DeepEqual(a.TopK(5), b.TopK(5)) {
						t.Errorf("%s/%s: topk %v vs %v", a.Metric, a.Key, a.TopK(5), b.TopK(5))
					}
				case "lat":
					if a.Quantile(0.5) != b.Quantile(0.5) {
						t.Errorf("%s/%s: median %d vs %d", a.Metric, a.Key, a.Quantile(0.5), b.Quantile(0.5))
					}
				}
			}

			// QueryPoint under tracing takes the Query path; the answer
			// contract says nobody can tell.
			pb, err := bare[i].be.(PointQuerier).QueryPoint("uniq", "k1", 0, conformanceSpan)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := tbe.(PointQuerier).QueryPoint("uniq", "k1", 0, conformanceSpan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pb, pt) {
				t.Error("QueryPoint diverges under tracing")
			}

			// The tracer actually saw the traffic: every Observe opened a
			// root, and the slow threshold put the queries in the slow log.
			if st := tr.Stats(); st.Started == 0 || st.Sampled == 0 {
				t.Fatalf("tracer stats %+v, want started and sampled roots", st)
			}
			if len(tr.Slow()) == 0 {
				t.Fatal("no slow-query entries despite 1ns threshold")
			}
		})
	}
}

// TestIngestTraceStitchesAcrossLog is the cross-log acceptance: one
// sampled observation through the cluster router must come back as one
// trace whose spans cover the whole ingest path — the Instrument root,
// the router's batched append, and the consuming node's fetch, apply,
// and store observe — even though the append and consume happen after
// the root span finished.
func TestIngestTraceStitchesAcrossLog(t *testing.T) {
	cl, err := dstore.New(dstore.Config{Partitions: 2, Store: storeGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	tr := tracedTracer()
	cl.SetTracer(tr)
	be := Instrument(cl.Router(), nil, "cluster", WithTracer(tr))

	hll, err := store.NewDistinctProto(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.RegisterMetric("uniq", hll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	// Settle the post-start rebalances first: records landing while a
	// node is still rebuilding are absorbed by the recovery replay — the
	// untraced bulk path — not the event loop that stitches.
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		obs := store.Observation{Metric: "uniq", Key: fmt.Sprintf("k%d", i%3), Item: fmt.Sprintf("u%d", i), Time: int64(i)}
		if err := be.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	be.(Flusher).Flush()
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}

	wantSpans := []string{"analytics.observe", "mqlog.append", "mqlog.fetch", "dstore.apply", "store.observe"}
	stitched := 0
	for _, ts := range tr.Traces() {
		names := make(map[string]bool, len(ts.Spans))
		for _, sp := range ts.Spans {
			names[sp.Name] = true
		}
		complete := true
		for _, w := range wantSpans {
			if !names[w] {
				complete = false
				break
			}
		}
		if complete {
			stitched++
		}
	}
	if stitched == 0 {
		var seen [][]string
		for _, ts := range tr.Traces() {
			var names []string
			for _, sp := range ts.Spans {
				names = append(names, sp.Name)
			}
			seen = append(seen, names)
		}
		t.Fatalf("no trace stitched the full ingest path %v; traces held %v (stats %+v)", wantSpans, seen, tr.Stats())
	}
}
