// batch.go extends the Backend contract with batched ingest: the write
// side's counterpart of the multi-key query fan-out. A batch is the
// unit the admission layer prices, the serving edge decodes, and the
// backends amortize — one shard lock per shard group in the store, one
// partition-buffer acquisition per partition in the Router, one speed
// RLock in Lambda — instead of per-observation overhead N times.
package analytics

import "repro/internal/store"

// BatchObserver is the optional batched-write surface. Semantics every
// implementation must honor, pinned by the conformance suite:
//
//   - The whole batch is validated before anything mutates: an invalid
//     observation (unknown metric, negative time) fails the call and
//     the backend absorbs NONE of the batch. This is stricter than a
//     loop of Observe (which mutates the prefix before the bad write)
//     and is what makes admission shedding provable — a rejected batch
//     leaves no trace.
//   - An accepted batch is byte-identical to the same observations fed
//     one Observe at a time, in order: per-(metric,key) arrival order
//     is preserved, so every synopsis, counter and hot-key decision
//     matches the loop exactly.
//   - An empty batch is a no-op, never an error.
type BatchObserver interface {
	ObserveBatch(obs []store.Observation) error
}

// ObserveBatch absorbs obs through be: backends that implement
// BatchObserver get the amortized path; for the rest it degrades to a
// loop of Observe, stopping at the first error (the loop cannot offer
// the all-or-nothing guarantee — callers that need it must check for
// BatchObserver, which all four in-repo backends implement).
func ObserveBatch(be Backend, obs []store.Observation) error {
	if bo, ok := be.(BatchObserver); ok {
		return bo.ObserveBatch(obs)
	}
	for _, o := range obs {
		if err := be.Observe(o); err != nil {
			return err
		}
	}
	return nil
}
