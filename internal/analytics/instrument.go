// instrument.go is the generic telemetry decorator over the Backend
// contract: wrap any serving backend and every Observe and Query is
// counted per metric and timed, without the backend knowing. It lives
// in this package (not internal/telemetry) because the decorator speaks
// the Backend contract and telemetry must stay a leaf package the store
// itself can import; the facade re-exports it as Instrument.
package analytics

import (
	"context"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Option configures an Instrument wrapper beyond its registry.
type Option func(*options)

type options struct {
	tracer *trace.Tracer
}

// WithTracer makes the wrapper the tracing root of the serving stack:
// every Observe opens a head-sampled ingest root (analytics.observe)
// whose context rides the observation into the backend — through the
// store's shard spans or, in cluster mode, across the log via record
// headers — and every Query opens an always-started root
// (analytics.query) carrying the request summary as attributes, kept
// at Finish when sampled or over the tracer's slow threshold (the
// latter also lands in the slow-query log). A nil tracer is a no-op.
func WithTracer(tr *trace.Tracer) Option {
	return func(o *options) { o.tracer = tr }
}

// Instrument wraps be so every Observe and Query is recorded in reg:
// per-backend/per-metric operation counters
// (analytics_backend_observe_total, analytics_backend_query_total,
// labeled backend=<name>, metric=<metric>), per-backend latency
// histograms (analytics_backend_observe_seconds,
// analytics_backend_query_seconds) and per-operation error counters
// (analytics_backend_errors_total, labeled op=observe|query). The
// wrapper delegates verbatim — answers are byte-identical to the bare
// backend's, which the conformance suite pins — and implements
// PointQuerier and Flusher: QueryPoint and Flush delegate when the
// underlying backend has them, and otherwise fall back to the contract
// equivalents (QueryPoint via Query on a PointRequest, Flush as a
// no-op), matching the semantics every backend already guarantees.
//
// A nil registry with no options returns be unchanged, so call sites
// can wire instrumentation unconditionally; with WithTracer the wrapper
// also traces (a nil registry then just mutes the metrics — every
// telemetry handle is nil-safe).
func Instrument(be Backend, reg *telemetry.Registry, backend string, opts ...Option) Backend {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if reg == nil && o.tracer == nil {
		return be
	}
	return &instrumented{
		be:      be,
		reg:     reg,
		backend: backend,
		trc:     o.tracer,
		obsLat: reg.Histogram("analytics_backend_observe_seconds",
			"Observe latency through the Backend contract.",
			0, 1e-3, 64, "backend", backend),
		qryLat: reg.Histogram("analytics_backend_query_seconds",
			"Query latency through the Backend contract.",
			0, 50e-3, 64, "backend", backend),
		obsErrs: reg.Counter("analytics_backend_errors_total",
			"Backend operations that returned an error.",
			"backend", backend, "op", "observe"),
		qryErrs: reg.Counter("analytics_backend_errors_total",
			"Backend operations that returned an error.",
			"backend", backend, "op", "query"),
		obsCount: make(map[string]*telemetry.Counter),
		qryCount: make(map[string]*telemetry.Counter),
	}
}

type instrumented struct {
	be      Backend
	reg     *telemetry.Registry
	backend string
	trc     *trace.Tracer // nil when tracing is off

	obsLat  *telemetry.Histogram
	qryLat  *telemetry.Histogram
	obsErrs *telemetry.Counter
	qryErrs *telemetry.Counter

	// Per-metric operation counters, pre-created on RegisterMetric (the
	// contract requires registration before first use) and created
	// lazily for anything that slips past — e.g. a backend wrapped
	// after its metrics were registered.
	mu       sync.RWMutex
	obsCount map[string]*telemetry.Counter
	qryCount map[string]*telemetry.Counter
}

// queryAttrs summarizes a request for the query root span — and so for
// the slow-query log, which snapshots the root's attributes.
func (in *instrumented) queryAttrs(req store.QueryRequest) []trace.Attr {
	metrics := req.Metrics
	if len(metrics) == 0 && req.Metric != "" {
		metrics = []string{req.Metric}
	}
	return []trace.Attr{
		trace.Str("backend", in.backend),
		trace.Str("metrics", strings.Join(metrics, ",")),
		trace.Int("keys", int64(len(req.Keys))),
		trace.Int("from", req.From),
		trace.Int("to", req.To),
		trace.Bool("aggregate", req.Aggregate),
		trace.Bool("all_keys", req.AllKeys),
	}
}

// counterFor returns the per-metric counter from m, registering the
// series on first sight. family is the metric family name.
func (in *instrumented) counterFor(m map[string]*telemetry.Counter, family, metric string) *telemetry.Counter {
	in.mu.RLock()
	c, ok := m[metric]
	in.mu.RUnlock()
	if ok {
		return c
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if c, ok = m[metric]; ok {
		return c
	}
	c = in.reg.Counter(family, "Backend operations by metric.",
		"backend", in.backend, "metric", metric)
	m[metric] = c
	return c
}

func (in *instrumented) RegisterMetric(name string, proto store.Prototype) error {
	if err := in.be.RegisterMetric(name, proto); err != nil {
		return err
	}
	// Pre-create the metric's series so the hot paths take the RLock.
	in.counterFor(in.obsCount, "analytics_backend_observe_total", name)
	in.counterFor(in.qryCount, "analytics_backend_query_total", name)
	return nil
}

func (in *instrumented) Observe(obs store.Observation) error {
	if sp := in.trc.StartSampled("analytics.observe"); sp != nil {
		// Head-sampled ingest root: the context rides the observation so
		// every layer underneath stitches child spans onto this trace.
		obs.Trace = sp.Context()
		sp.SetAttrs(trace.Str("backend", in.backend),
			trace.Str("metric", obs.Metric), trace.Str("key", obs.Key))
		defer sp.Finish()
	}
	t0 := time.Now()
	err := in.be.Observe(obs)
	in.obsLat.ObserveSince(t0)
	if err != nil {
		in.obsErrs.Inc()
		return err
	}
	in.counterFor(in.obsCount, "analytics_backend_observe_total", obs.Metric).Inc()
	return nil
}

// ObserveBatch counts and times the batch as one operation per
// observation: the latency histogram records the whole call (batched
// ingest is priced by the batch), the per-metric counters advance by
// each metric's share, and errors count once. Delegation goes through
// the package helper, so a backend without BatchObserver still absorbs
// the batch as a loop.
func (in *instrumented) ObserveBatch(obs []store.Observation) error {
	if len(obs) == 0 {
		return nil
	}
	t0 := time.Now()
	err := ObserveBatch(in.be, obs)
	in.obsLat.ObserveSince(t0)
	if err != nil {
		in.obsErrs.Inc()
		return err
	}
	for i := 0; i < len(obs); {
		j := i + 1
		for j < len(obs) && obs[j].Metric == obs[i].Metric {
			j++
		}
		in.counterFor(in.obsCount, "analytics_backend_observe_total", obs[i].Metric).Add(uint64(j - i))
		i = j
	}
	return nil
}

func (in *instrumented) Query(req store.QueryRequest) (store.QueryResult, error) {
	return in.QueryContext(context.Background(), req)
}

// QueryContext instruments exactly like Query while threading ctx into
// the backend (see the package-level QueryContext helper); the wrapper
// itself adds no cancellation points, so answers stay byte-identical
// to the bare backend's.
func (in *instrumented) QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error) {
	if sp := in.trc.StartRoot("analytics.query"); sp != nil {
		// Query roots always start; the tail decision at Finish keeps the
		// trace when head-sampled or over the slow threshold, and a slow
		// root lands in the slow-query log with these summary attributes
		// plus the per-stage child durations.
		req.Trace = sp.Context()
		sp.SetAttrs(in.queryAttrs(req)...)
		defer sp.Finish()
	}
	t0 := time.Now()
	res, err := QueryContext(ctx, in.be, req)
	in.qryLat.ObserveSince(t0)
	if err != nil {
		in.qryErrs.Inc()
		return res, err
	}
	if len(req.Metrics) == 0 {
		in.counterFor(in.qryCount, "analytics_backend_query_total", req.Metric).Inc()
	} else {
		for _, m := range req.Metrics {
			in.counterFor(in.qryCount, "analytics_backend_query_total", m).Inc()
		}
	}
	return res, nil
}

func (in *instrumented) Keys(metric string) []string { return in.be.Keys(metric) }

func (in *instrumented) Stats() store.Stats { return in.be.Stats() }

// QueryPoint counts as a query against the metric; it delegates to the
// backend's own PointQuerier when it has one and otherwise takes the
// contract-equivalent Query path (every backend's QueryPoint is pinned
// to be a thin wrapper over Query, so the answers are identical).
func (in *instrumented) QueryPoint(metric, key string, from, to int64) (store.Synopsis, error) {
	// When tracing, take the Query path even if the backend has its own
	// PointQuerier: the point-querier signature has nowhere to carry the
	// trace context, and the contract pins both paths to identical
	// answers, so tracing costs no fidelity.
	if pq, ok := in.be.(PointQuerier); ok && in.trc == nil {
		t0 := time.Now()
		syn, err := pq.QueryPoint(metric, key, from, to)
		in.qryLat.ObserveSince(t0)
		if err != nil {
			in.qryErrs.Inc()
			return syn, err
		}
		in.counterFor(in.qryCount, "analytics_backend_query_total", metric).Inc()
		return syn, nil
	}
	res, err := in.Query(store.PointRequest(metric, key, from, to))
	if err != nil {
		return nil, err
	}
	return res.Raw(), nil
}

// Flush settles the backend's producer-side buffers when it has any.
func (in *instrumented) Flush() {
	if f, ok := in.be.(Flusher); ok {
		f.Flush()
	}
}

// Unwrap returns the wrapped backend.
func (in *instrumented) Unwrap() Backend { return in.be }
