// bench_test.go: the ingest cost model under admission — bare store
// writes vs the same writes through the Admit decorator vs batched
// delivery — plus the alloc gate pinning that an admitted-but-
// unthrottled write costs at most one allocation over the bare path.
package analytics

import (
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/store"
)

// benchStore builds a store with one distinct-count metric.
func benchStore(b testing.TB) Backend {
	b.Helper()
	st, err := store.New(storeGeom())
	if err != nil {
		b.Fatal(err)
	}
	hll, _ := store.NewDistinctProto(12, 7)
	if err := st.RegisterMetric("uniq", hll); err != nil {
		b.Fatal(err)
	}
	return st
}

// openController admits everything: rates high enough that the bucket
// never empties, so the benchmark measures admission overhead, not
// shedding.
func openController(b testing.TB) *admission.Controller {
	b.Helper()
	ctrl, err := admission.New(admission.Config{Rate: 1e12, Burst: 1e12})
	if err != nil {
		b.Fatal(err)
	}
	return ctrl
}

func benchObs(i int) store.Observation {
	return store.Observation{Metric: "uniq", Key: "k0", Item: fmt.Sprintf("u%d", i%512), Time: int64(i)}
}

// TestAdmittedObserveAllocGate is the alloc budget the Admit doc
// promises: an admitted-but-unthrottled Observe adds at most one
// allocation per op over the bare backend.
func TestAdmittedObserveAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate is timing-adjacent; skipped in -short")
	}
	measure := func(be Backend) float64 {
		i := 0
		return testing.AllocsPerRun(200, func() {
			if err := be.Observe(benchObs(i)); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
	bare := measure(benchStore(t))
	admitted := measure(Admit(benchStore(t), openController(t)))
	if admitted > bare+1 {
		t.Fatalf("admitted path allocates %.1f/op, bare %.1f/op — admission may add at most 1", admitted, bare)
	}
}

// BenchmarkIngestBare is the floor: one Observe per op, no decorators.
func BenchmarkIngestBare(b *testing.B) {
	be := benchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.Observe(benchObs(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestAdmitted is the same write through Admit with a bucket
// that never empties: the per-write admission tax.
func BenchmarkIngestAdmitted(b *testing.B) {
	be := Admit(benchStore(b), openController(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.Observe(benchObs(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatched delivers the same admitted stream in
// 256-observation batches: one Admit call and one shard-group lock
// acquisition amortized across the run.
func BenchmarkIngestBatched(b *testing.B) {
	be := Admit(benchStore(b), openController(b))
	const size = 256
	batch := make([]store.Observation, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += size {
		n := size
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			batch[j] = benchObs(i + j)
		}
		if err := ObserveBatch(be, batch[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
