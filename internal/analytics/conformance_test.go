// The Backend conformance suite: one set of assertions, run against
// every serving implementation (sharded store, partitioned cluster
// router, Lambda in both speed-layer modes), pinning the cross-backend
// contract the package comment documents — identical unknown-metric
// errors, identical empty-answer semantics, typed accessors per synopsis
// family, half-open range bounds, and aggregate-equals-combined answers.
package analytics

import (
	"encoding"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/admission"
	"repro/internal/dstore"
	"repro/internal/lambda"
	"repro/internal/store"
	"repro/internal/trace"
)

// Compile-time contract checks: dropping a Backend (or PointQuerier, or
// the router's Flusher) method from any serving layer fails here, not at
// a distant call site.
var (
	_ Backend = (*store.Store)(nil)
	_ Backend = (*dstore.Router)(nil)
	_ Backend = (*lambda.Architecture)(nil)

	_ PointQuerier = (*store.Store)(nil)
	_ PointQuerier = (*dstore.Router)(nil)
	_ PointQuerier = (*lambda.Architecture)(nil)

	_ Flusher = (*dstore.Router)(nil)
	_ Flusher = (*lambda.Architecture)(nil)

	// Batched ingest is part of the cross-backend contract too: all
	// serving layers take the amortized path, never the Observe-loop
	// fallback. (serve.Client's assertion lives in that package — it
	// imports this one.)
	_ BatchObserver = (*store.Store)(nil)
	_ BatchObserver = (*dstore.Router)(nil)
	_ BatchObserver = (*lambda.Architecture)(nil)
)

// harness is one Backend under conformance: the implementation plus a
// drain to reach read-your-writes (teardowns are t.Cleanup's) and a
// wire hook handing a tracer to the layer underneath (trace_test.go
// runs the suite with tracing on).
type harness struct {
	name  string
	be    Backend
	drain func() error
	wire  func(*trace.Tracer)
}

func storeGeom() store.Config {
	return store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}
}

func newHarnesses(t *testing.T) []harness {
	t.Helper()
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}

	cl, err := dstore.New(dstore.Config{Partitions: 4, Store: storeGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	single, err := lambda.New(lambda.Config{Partitions: 2, Batch: storeGeom(), Speed: storeGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })

	clustered, err := lambda.New(lambda.Config{
		Batch:        storeGeom(),
		Cluster:      &dstore.Config{Partitions: 4, Store: storeGeom()},
		ClusterNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clustered.Close() })

	none := func() error { return nil }
	return []harness{
		{name: "store", be: st, drain: none, wire: st.SetTracer},
		{name: "cluster-router", be: cl.Router(), drain: func() error {
			if len(cl.NodeNames()) == 0 {
				for i := 0; i < 2; i++ {
					if _, err := cl.StartNode(); err != nil {
						return err
					}
				}
			}
			return cl.Drain()
		}, wire: cl.SetTracer},
		{name: "lambda-single", be: single, drain: single.Drain, wire: single.SetTracer},
		{name: "lambda-cluster", be: clustered, drain: clustered.Drain, wire: clustered.SetTracer},
	}
}

// registerFamilies binds one metric per synopsis family. Identical
// prototypes across backends, so answers must agree exactly.
func registerFamilies(t *testing.T, be Backend) map[string]store.Prototype {
	t.Helper()
	hll, _ := store.NewDistinctProto(12, 7)
	cm, _ := store.NewFreqProto(512, 4, 7)
	topk, _ := store.NewTopKProto(32)
	qd, _ := store.NewQuantileProto(16, 64)
	protos := map[string]store.Prototype{"uniq": hll, "hits": cm, "top": topk, "lat": qd}
	for name, p := range protos {
		if err := be.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}
	return protos
}

// conformanceStream materializes the deterministic conformance dataset:
// keys k0..k3, times [0, span), one observation per family per tick, in
// the exact order feed delivers them.
func conformanceStream(span int64) []store.Observation {
	out := make([]store.Observation, 0, span*4)
	for i := int64(0); i < span; i++ {
		key := fmt.Sprintf("k%d", i%4)
		item := fmt.Sprintf("u%d", i%13)
		out = append(out,
			store.Observation{Metric: "uniq", Key: key, Item: item, Time: i},
			store.Observation{Metric: "hits", Key: key, Item: item, Value: 2, Time: i},
			store.Observation{Metric: "top", Key: key, Item: item, Time: i},
			store.Observation{Metric: "lat", Key: key, Value: uint64(i), Time: i},
		)
	}
	return out
}

// feed streams the deterministic conformance dataset one Observe at a
// time — the reference delivery the batched path must match exactly.
func feed(t *testing.T, be Backend, span int64) {
	t.Helper()
	for _, obs := range conformanceStream(span) {
		if err := be.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
}

// feedBatched delivers the same dataset through ObserveBatch in uneven
// chunks (a prime size, so chunk boundaries drift across ticks, metrics
// and keys rather than aligning with any of them).
func feedBatched(t *testing.T, be Backend, span int64) {
	t.Helper()
	stream := conformanceStream(span)
	const chunk = 57
	for i := 0; i < len(stream); i += chunk {
		j := i + chunk
		if j > len(stream) {
			j = len(stream)
		}
		if err := ObserveBatch(be, stream[i:j]); err != nil {
			t.Fatal(err)
		}
	}
}

const conformanceSpan = 400

func TestBackendConformance(t *testing.T) {
	for _, h := range newHarnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			protos := registerFamilies(t, h.be)
			feed(t, h.be, conformanceSpan)
			if err := h.drain(); err != nil {
				t.Fatal(err)
			}

			t.Run("unknown-metric", func(t *testing.T) {
				_, err := h.be.Query(store.QueryRequest{Metric: "nope", Key: "k0", From: 0, To: 10})
				if !errors.Is(err, store.ErrUnknownMetric) {
					t.Fatalf("query error %v, want ErrUnknownMetric", err)
				}
				err = h.be.Observe(store.Observation{Metric: "nope", Key: "k0", Item: "x", Time: 0})
				if !errors.Is(err, store.ErrUnknownMetric) {
					t.Fatalf("observe error %v, want ErrUnknownMetric", err)
				}
				if keys := h.be.Keys("nope"); len(keys) != 0 {
					t.Fatalf("keys of unknown metric %v, want none (discovery, not validation)", keys)
				}
			})

			t.Run("empty-not-error", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{Metric: "uniq", Key: "ghost", From: 0, To: 10})
				if err != nil {
					t.Fatalf("known metric, absent key: %v", err)
				}
				if res.Len() != 1 || res.Items() != 0 {
					t.Fatalf("ghost answer cells=%d items=%d, want 1 empty cell", res.Len(), res.Items())
				}
				if res.Raw() == nil {
					t.Fatal("ghost answer has no synopsis")
				}
				// A range beyond the data is equally empty, equally not an error.
				res, err = h.be.Query(store.QueryRequest{Metric: "uniq", Key: "k0", From: 10 * conformanceSpan, To: 20 * conformanceSpan})
				if err != nil || res.Items() != 0 {
					t.Fatalf("out-of-range answer items=%d err=%v", res.Items(), err)
				}
			})

			t.Run("typed-accessors", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{
					Metrics: []string{"uniq", "hits", "top", "lat"},
					Key:     "k1",
					From:    0, To: conformanceSpan,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != 4 {
					t.Fatalf("cells %d, want 4", res.Len())
				}
				u, _ := res.At("uniq", "k1")
				if u.Family() != store.FamilyDistinct {
					t.Fatalf("uniq family %v", u.Family())
				}
				if got := u.Distinct(); got < 11 || got > 15 {
					t.Fatalf("distinct %d, want ~13", got)
				}
				hc, _ := res.At("hits", "k1")
				if hc.Family() != store.FamilyFreq || hc.Count("u1") == 0 {
					t.Fatalf("hits family %v count %d", hc.Family(), hc.Count("u1"))
				}
				tk, _ := res.At("top", "k1")
				if tk.Family() != store.FamilyTopK || len(tk.TopK(3)) != 3 {
					t.Fatalf("top family %v topk %v", tk.Family(), tk.TopK(3))
				}
				l, _ := res.At("lat", "k1")
				if l.Family() != store.FamilyQuantile {
					t.Fatalf("lat family %v", l.Family())
				}
				// k1 sees values 1, 5, ..., 397: the median sits near 199.
				if med := l.Quantile(0.5); med < 150 || med > 250 {
					t.Fatalf("median %d", med)
				}
			})

			t.Run("range-half-open", func(t *testing.T) {
				// Bucket width 10; [0, 10) must exclude the tick-10 bucket.
				narrow, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 0, To: 10})
				if err != nil {
					t.Fatal(err)
				}
				wide, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 0, To: 11})
				if err != nil {
					t.Fatal(err)
				}
				if narrow.Items() >= wide.Items() {
					t.Fatalf("[0,10) items %d not below [0,11) items %d", narrow.Items(), wide.Items())
				}
				if _, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 5, To: 5}); err == nil {
					t.Fatal("empty range accepted")
				}
			})

			t.Run("aggregate-vs-per-key", func(t *testing.T) {
				keys := []string{"k2", "k0", "k3"}
				for metric, proto := range protos {
					agg, err := h.be.Query(store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: conformanceSpan, Aggregate: true})
					if err != nil {
						t.Fatal(err)
					}
					perKey, err := h.be.Query(store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: conformanceSpan})
					if err != nil {
						t.Fatal(err)
					}
					want, err := store.CombineSnapshots(proto, perKey.RawSynopses()...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(agg.Raw(), want) {
						t.Fatalf("%s: aggregate differs from per-key + CombineSnapshots", metric)
					}
				}
			})

			t.Run("all-keys", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: conformanceSpan})
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != 4 {
					t.Fatalf("cells %d, want 4", res.Len())
				}
				for i, a := range res.Answers() {
					if want := fmt.Sprintf("k%d", i); a.Key != want || a.Items() == 0 {
						t.Fatalf("cell %d: key %s items %d", i, a.Key, a.Items())
					}
				}
				if keys := h.be.Keys("uniq"); len(keys) != 4 {
					t.Fatalf("keys %v", keys)
				}
			})

			t.Run("register-dup", func(t *testing.T) {
				if err := h.be.RegisterMetric("uniq", protos["uniq"]); err == nil {
					t.Fatal("re-registering a metric succeeded")
				}
			})

			if h.be.Stats().Observed == 0 {
				t.Fatal("stats report no observations")
			}
		})
	}
}

// Every backend fed the same stream must answer the same numbers — the
// platform design space differs in partitioning and staleness tradeoffs,
// never in what a query means.
func TestBackendsAgreeExactly(t *testing.T) {
	hs := newHarnesses(t)
	for _, h := range hs {
		registerFamilies(t, h.be)
		feed(t, h.be, conformanceSpan)
		if err := h.drain(); err != nil {
			t.Fatal(err)
		}
	}
	req := store.QueryRequest{
		Metrics: []string{"uniq", "hits", "top", "lat"},
		AllKeys: true,
		From:    0, To: conformanceSpan,
	}
	base, err := hs[0].be.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs[1:] {
		res, err := h.be.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != base.Len() {
			t.Fatalf("%s: %d cells vs %d", h.name, res.Len(), base.Len())
		}
		for i, a := range res.Answers() {
			b := base.Answers()[i]
			if a.Metric != b.Metric || a.Key != b.Key {
				t.Fatalf("%s: cell %d is %s/%s vs %s/%s", h.name, i, a.Metric, a.Key, b.Metric, b.Key)
			}
			switch a.Metric {
			case "uniq":
				if a.Distinct() != b.Distinct() {
					t.Errorf("%s: %s/%s distinct %d vs %d", h.name, a.Metric, a.Key, a.Distinct(), b.Distinct())
				}
			case "hits":
				for u := 0; u < 13; u++ {
					item := fmt.Sprintf("u%d", u)
					if a.Count(item) != b.Count(item) {
						t.Errorf("%s: %s/%s count(%s) %d vs %d", h.name, a.Metric, a.Key, item, a.Count(item), b.Count(item))
					}
				}
			case "top":
				if !reflect.DeepEqual(a.TopK(5), b.TopK(5)) {
					t.Errorf("%s: %s/%s topk diverges", h.name, a.Metric, a.Key)
				}
			case "lat":
				for _, phi := range []float64{0.5, 0.9, 0.99} {
					if a.Quantile(phi) != b.Quantile(phi) {
						t.Errorf("%s: %s/%s q%.2f %d vs %d", h.name, a.Metric, a.Key, phi, a.Quantile(phi), b.Quantile(phi))
					}
				}
			}
		}
	}
}

// marshalAnswers snapshots every answer cell of the full-dataset query
// as its binary checkpoint bytes — the strictest equality the synopses
// offer.
func marshalAnswers(t *testing.T, be Backend) [][]byte {
	t.Helper()
	res, err := be.Query(store.QueryRequest{
		Metrics: []string{"uniq", "hits", "top", "lat"},
		AllKeys: true,
		From:    0, To: conformanceSpan,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, 0, res.Len())
	for _, a := range res.Answers() {
		m, ok := a.Raw().(encoding.BinaryMarshaler)
		if !ok {
			t.Fatalf("synopsis %T has no binary encoding", a.Raw())
		}
		b, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		t.Fatal("no answer cells to snapshot")
	}
	return out
}

// TestBackendConformanceObserveBatch pins the BatchObserver contract on
// every backend: a batched delivery is byte-identical to the Observe
// loop, an empty batch is a no-op, and an invalid batch mutates nothing
// (all-or-nothing).
func TestBackendConformanceObserveBatch(t *testing.T) {
	looped := newHarnesses(t)
	batched := newHarnesses(t)
	for i, h := range looped {
		h := h
		b := batched[i]
		t.Run(h.name, func(t *testing.T) {
			registerFamilies(t, h.be)
			registerFamilies(t, b.be)
			feed(t, h.be, conformanceSpan)
			feedBatched(t, b.be, conformanceSpan)
			if err := h.drain(); err != nil {
				t.Fatal(err)
			}
			if err := b.drain(); err != nil {
				t.Fatal(err)
			}

			want := marshalAnswers(t, h.be)
			got := marshalAnswers(t, b.be)
			if len(got) != len(want) {
				t.Fatalf("batched backend answers %d cells, loop %d", len(got), len(want))
			}
			for j := range want {
				if !reflect.DeepEqual(got[j], want[j]) {
					t.Fatalf("cell %d: batched synopsis bytes diverge from Observe loop", j)
				}
			}

			if err := ObserveBatch(b.be, nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}

			// All-or-nothing: a batch with one invalid observation
			// leaves the backend byte-identical to before the call.
			bad := []store.Observation{
				{Metric: "uniq", Key: "k0", Item: "poison-a", Time: 1},
				{Metric: "no-such-metric", Key: "k0", Item: "x", Time: 1},
				{Metric: "uniq", Key: "k0", Item: "poison-b", Time: 1},
			}
			if err := ObserveBatch(b.be, bad); !errors.Is(err, store.ErrUnknownMetric) {
				t.Fatalf("invalid batch error %v, want ErrUnknownMetric", err)
			}
			late := []store.Observation{
				{Metric: "uniq", Key: "k0", Item: "poison-c", Time: 1},
				{Metric: "uniq", Key: "k0", Item: "poison-d", Time: -1},
			}
			if err := ObserveBatch(b.be, late); err == nil {
				t.Fatal("negative-time batch accepted")
			}
			if err := b.drain(); err != nil {
				t.Fatal(err)
			}
			after := marshalAnswers(t, b.be)
			if !reflect.DeepEqual(after, got) {
				t.Fatal("rejected batch mutated backend state")
			}
		})
	}
}

// TestBackendConformanceOverloadShed pins the admission property the
// overload design rests on: under a rate that sheds most of a stream,
// the accepted writes land byte-identical to an unthrottled oracle fed
// only the accepted subset, and shed requests — single or batched —
// mutate nothing and carry a usable Retry-After.
func TestBackendConformanceOverloadShed(t *testing.T) {
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}
	registerFamilies(t, st)
	registerFamilies(t, oracle)

	var ns int64 // frozen fake clock: no refill unless the test advances it
	ctrl, err := admission.New(admission.Config{
		Rate:  1,
		Burst: 10,
		Now:   func() int64 { return ns },
	})
	if err != nil {
		t.Fatal(err)
	}
	be := Admit(st, ctrl)

	stream := conformanceStream(10) // 40 observations against 10 tokens
	var accepted []store.Observation
	for _, obs := range stream {
		err := be.Observe(obs)
		if err == nil {
			accepted = append(accepted, obs)
			continue
		}
		if !errors.Is(err, admission.ErrOverloaded) {
			t.Fatalf("shed error %v, want ErrOverloaded", err)
		}
		if wait, ok := admission.Wait(err); !ok || wait <= 0 {
			t.Fatalf("shed error %v quotes no Retry-After", err)
		}
	}
	if len(accepted) != 10 {
		t.Fatalf("accepted %d writes, want exactly the 10-token burst", len(accepted))
	}
	for _, obs := range accepted {
		if err := oracle.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}

	// Shed writes provably never reached the store.
	if got := st.Stats().Observed; got != uint64(len(accepted)) {
		t.Fatalf("store observed %d writes, want %d (shed writes leaked through)", got, len(accepted))
	}
	stats := ctrl.Stats()
	if stats.Admitted != uint64(len(accepted)) {
		t.Fatalf("controller admitted %d, want %d", stats.Admitted, len(accepted))
	}
	if want := uint64(len(stream) - len(accepted)); stats.Shed != want {
		t.Fatalf("controller shed %d, want %d — every rejection must be accounted", stats.Shed, want)
	}

	// Byte-identical to the oracle fed only the accepted subset.
	want := marshalAnswers(t, oracle)
	got := marshalAnswers(t, st)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("throttled store diverges from oracle fed the accepted subset")
	}

	// A shed batch is all-or-nothing too: with the bucket empty the
	// whole batch bounces and nothing mutates.
	if err := ObserveBatch(be, stream); !errors.Is(err, admission.ErrOverloaded) {
		t.Fatalf("batch under empty bucket: %v, want ErrOverloaded", err)
	}
	if got := st.Stats().Observed; got != uint64(len(accepted)) {
		t.Fatalf("shed batch mutated the store: observed %d, want %d", got, len(accepted))
	}

	// Waiting exactly the quoted Retry-After re-admits: the sentinel's
	// number is actionable, not advisory.
	err = be.Observe(stream[0])
	if !errors.Is(err, admission.ErrOverloaded) {
		t.Fatalf("empty bucket admitted a write: %v", err)
	}
	wait, ok := admission.Wait(err)
	if !ok {
		t.Fatalf("shed error %v carries no Overload", err)
	}
	ns += int64(wait)
	if err := be.Observe(stream[0]); err != nil {
		t.Fatalf("write after waiting the quoted Retry-After: %v", err)
	}
}
