// The Backend conformance suite: one set of assertions, run against
// every serving implementation (sharded store, partitioned cluster
// router, Lambda in both speed-layer modes), pinning the cross-backend
// contract the package comment documents — identical unknown-metric
// errors, identical empty-answer semantics, typed accessors per synopsis
// family, half-open range bounds, and aggregate-equals-combined answers.
package analytics

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dstore"
	"repro/internal/lambda"
	"repro/internal/store"
	"repro/internal/trace"
)

// Compile-time contract checks: dropping a Backend (or PointQuerier, or
// the router's Flusher) method from any serving layer fails here, not at
// a distant call site.
var (
	_ Backend = (*store.Store)(nil)
	_ Backend = (*dstore.Router)(nil)
	_ Backend = (*lambda.Architecture)(nil)

	_ PointQuerier = (*store.Store)(nil)
	_ PointQuerier = (*dstore.Router)(nil)
	_ PointQuerier = (*lambda.Architecture)(nil)

	_ Flusher = (*dstore.Router)(nil)
	_ Flusher = (*lambda.Architecture)(nil)
)

// harness is one Backend under conformance: the implementation plus a
// drain to reach read-your-writes (teardowns are t.Cleanup's) and a
// wire hook handing a tracer to the layer underneath (trace_test.go
// runs the suite with tracing on).
type harness struct {
	name  string
	be    Backend
	drain func() error
	wire  func(*trace.Tracer)
}

func storeGeom() store.Config {
	return store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}
}

func newHarnesses(t *testing.T) []harness {
	t.Helper()
	st, err := store.New(storeGeom())
	if err != nil {
		t.Fatal(err)
	}

	cl, err := dstore.New(dstore.Config{Partitions: 4, Store: storeGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	single, err := lambda.New(lambda.Config{Partitions: 2, Batch: storeGeom(), Speed: storeGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })

	clustered, err := lambda.New(lambda.Config{
		Batch:        storeGeom(),
		Cluster:      &dstore.Config{Partitions: 4, Store: storeGeom()},
		ClusterNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clustered.Close() })

	none := func() error { return nil }
	return []harness{
		{name: "store", be: st, drain: none, wire: st.SetTracer},
		{name: "cluster-router", be: cl.Router(), drain: func() error {
			if len(cl.NodeNames()) == 0 {
				for i := 0; i < 2; i++ {
					if _, err := cl.StartNode(); err != nil {
						return err
					}
				}
			}
			return cl.Drain()
		}, wire: cl.SetTracer},
		{name: "lambda-single", be: single, drain: single.Drain, wire: single.SetTracer},
		{name: "lambda-cluster", be: clustered, drain: clustered.Drain, wire: clustered.SetTracer},
	}
}

// registerFamilies binds one metric per synopsis family. Identical
// prototypes across backends, so answers must agree exactly.
func registerFamilies(t *testing.T, be Backend) map[string]store.Prototype {
	t.Helper()
	hll, _ := store.NewDistinctProto(12, 7)
	cm, _ := store.NewFreqProto(512, 4, 7)
	topk, _ := store.NewTopKProto(32)
	qd, _ := store.NewQuantileProto(16, 64)
	protos := map[string]store.Prototype{"uniq": hll, "hits": cm, "top": topk, "lat": qd}
	for name, p := range protos {
		if err := be.RegisterMetric(name, p); err != nil {
			t.Fatal(err)
		}
	}
	return protos
}

// feed streams the deterministic conformance dataset: keys k0..k3, times
// [0, span), one observation per family per tick.
func feed(t *testing.T, be Backend, span int64) {
	t.Helper()
	for i := int64(0); i < span; i++ {
		key := fmt.Sprintf("k%d", i%4)
		item := fmt.Sprintf("u%d", i%13)
		for _, obs := range []store.Observation{
			{Metric: "uniq", Key: key, Item: item, Time: i},
			{Metric: "hits", Key: key, Item: item, Value: 2, Time: i},
			{Metric: "top", Key: key, Item: item, Time: i},
			{Metric: "lat", Key: key, Value: uint64(i), Time: i},
		} {
			if err := be.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
}

const conformanceSpan = 400

func TestBackendConformance(t *testing.T) {
	for _, h := range newHarnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			protos := registerFamilies(t, h.be)
			feed(t, h.be, conformanceSpan)
			if err := h.drain(); err != nil {
				t.Fatal(err)
			}

			t.Run("unknown-metric", func(t *testing.T) {
				_, err := h.be.Query(store.QueryRequest{Metric: "nope", Key: "k0", From: 0, To: 10})
				if !errors.Is(err, store.ErrUnknownMetric) {
					t.Fatalf("query error %v, want ErrUnknownMetric", err)
				}
				err = h.be.Observe(store.Observation{Metric: "nope", Key: "k0", Item: "x", Time: 0})
				if !errors.Is(err, store.ErrUnknownMetric) {
					t.Fatalf("observe error %v, want ErrUnknownMetric", err)
				}
				if keys := h.be.Keys("nope"); len(keys) != 0 {
					t.Fatalf("keys of unknown metric %v, want none (discovery, not validation)", keys)
				}
			})

			t.Run("empty-not-error", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{Metric: "uniq", Key: "ghost", From: 0, To: 10})
				if err != nil {
					t.Fatalf("known metric, absent key: %v", err)
				}
				if res.Len() != 1 || res.Items() != 0 {
					t.Fatalf("ghost answer cells=%d items=%d, want 1 empty cell", res.Len(), res.Items())
				}
				if res.Raw() == nil {
					t.Fatal("ghost answer has no synopsis")
				}
				// A range beyond the data is equally empty, equally not an error.
				res, err = h.be.Query(store.QueryRequest{Metric: "uniq", Key: "k0", From: 10 * conformanceSpan, To: 20 * conformanceSpan})
				if err != nil || res.Items() != 0 {
					t.Fatalf("out-of-range answer items=%d err=%v", res.Items(), err)
				}
			})

			t.Run("typed-accessors", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{
					Metrics: []string{"uniq", "hits", "top", "lat"},
					Key:     "k1",
					From:    0, To: conformanceSpan,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != 4 {
					t.Fatalf("cells %d, want 4", res.Len())
				}
				u, _ := res.At("uniq", "k1")
				if u.Family() != store.FamilyDistinct {
					t.Fatalf("uniq family %v", u.Family())
				}
				if got := u.Distinct(); got < 11 || got > 15 {
					t.Fatalf("distinct %d, want ~13", got)
				}
				hc, _ := res.At("hits", "k1")
				if hc.Family() != store.FamilyFreq || hc.Count("u1") == 0 {
					t.Fatalf("hits family %v count %d", hc.Family(), hc.Count("u1"))
				}
				tk, _ := res.At("top", "k1")
				if tk.Family() != store.FamilyTopK || len(tk.TopK(3)) != 3 {
					t.Fatalf("top family %v topk %v", tk.Family(), tk.TopK(3))
				}
				l, _ := res.At("lat", "k1")
				if l.Family() != store.FamilyQuantile {
					t.Fatalf("lat family %v", l.Family())
				}
				// k1 sees values 1, 5, ..., 397: the median sits near 199.
				if med := l.Quantile(0.5); med < 150 || med > 250 {
					t.Fatalf("median %d", med)
				}
			})

			t.Run("range-half-open", func(t *testing.T) {
				// Bucket width 10; [0, 10) must exclude the tick-10 bucket.
				narrow, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 0, To: 10})
				if err != nil {
					t.Fatal(err)
				}
				wide, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 0, To: 11})
				if err != nil {
					t.Fatal(err)
				}
				if narrow.Items() >= wide.Items() {
					t.Fatalf("[0,10) items %d not below [0,11) items %d", narrow.Items(), wide.Items())
				}
				if _, err := h.be.Query(store.QueryRequest{Metric: "hits", Key: "k0", From: 5, To: 5}); err == nil {
					t.Fatal("empty range accepted")
				}
			})

			t.Run("aggregate-vs-per-key", func(t *testing.T) {
				keys := []string{"k2", "k0", "k3"}
				for metric, proto := range protos {
					agg, err := h.be.Query(store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: conformanceSpan, Aggregate: true})
					if err != nil {
						t.Fatal(err)
					}
					perKey, err := h.be.Query(store.QueryRequest{Metric: metric, Keys: keys, From: 0, To: conformanceSpan})
					if err != nil {
						t.Fatal(err)
					}
					want, err := store.CombineSnapshots(proto, perKey.RawSynopses()...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(agg.Raw(), want) {
						t.Fatalf("%s: aggregate differs from per-key + CombineSnapshots", metric)
					}
				}
			})

			t.Run("all-keys", func(t *testing.T) {
				res, err := h.be.Query(store.QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: conformanceSpan})
				if err != nil {
					t.Fatal(err)
				}
				if res.Len() != 4 {
					t.Fatalf("cells %d, want 4", res.Len())
				}
				for i, a := range res.Answers() {
					if want := fmt.Sprintf("k%d", i); a.Key != want || a.Items() == 0 {
						t.Fatalf("cell %d: key %s items %d", i, a.Key, a.Items())
					}
				}
				if keys := h.be.Keys("uniq"); len(keys) != 4 {
					t.Fatalf("keys %v", keys)
				}
			})

			t.Run("register-dup", func(t *testing.T) {
				if err := h.be.RegisterMetric("uniq", protos["uniq"]); err == nil {
					t.Fatal("re-registering a metric succeeded")
				}
			})

			if h.be.Stats().Observed == 0 {
				t.Fatal("stats report no observations")
			}
		})
	}
}

// Every backend fed the same stream must answer the same numbers — the
// platform design space differs in partitioning and staleness tradeoffs,
// never in what a query means.
func TestBackendsAgreeExactly(t *testing.T) {
	hs := newHarnesses(t)
	for _, h := range hs {
		registerFamilies(t, h.be)
		feed(t, h.be, conformanceSpan)
		if err := h.drain(); err != nil {
			t.Fatal(err)
		}
	}
	req := store.QueryRequest{
		Metrics: []string{"uniq", "hits", "top", "lat"},
		AllKeys: true,
		From:    0, To: conformanceSpan,
	}
	base, err := hs[0].be.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs[1:] {
		res, err := h.be.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != base.Len() {
			t.Fatalf("%s: %d cells vs %d", h.name, res.Len(), base.Len())
		}
		for i, a := range res.Answers() {
			b := base.Answers()[i]
			if a.Metric != b.Metric || a.Key != b.Key {
				t.Fatalf("%s: cell %d is %s/%s vs %s/%s", h.name, i, a.Metric, a.Key, b.Metric, b.Key)
			}
			switch a.Metric {
			case "uniq":
				if a.Distinct() != b.Distinct() {
					t.Errorf("%s: %s/%s distinct %d vs %d", h.name, a.Metric, a.Key, a.Distinct(), b.Distinct())
				}
			case "hits":
				for u := 0; u < 13; u++ {
					item := fmt.Sprintf("u%d", u)
					if a.Count(item) != b.Count(item) {
						t.Errorf("%s: %s/%s count(%s) %d vs %d", h.name, a.Metric, a.Key, item, a.Count(item), b.Count(item))
					}
				}
			case "top":
				if !reflect.DeepEqual(a.TopK(5), b.TopK(5)) {
					t.Errorf("%s: %s/%s topk diverges", h.name, a.Metric, a.Key)
				}
			case "lat":
				for _, phi := range []float64{0.5, 0.9, 0.99} {
					if a.Quantile(phi) != b.Quantile(phi) {
						t.Errorf("%s: %s/%s q%.2f %d vs %d", h.name, a.Metric, a.Key, phi, a.Quantile(phi), b.Quantile(phi))
					}
				}
			}
		}
	}
}
