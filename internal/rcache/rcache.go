// Package rcache is the serving tier's sharded read-path cache for
// query results over fully-sealed time ranges.
//
// The store's bucket discipline makes exact read caching possible: a
// bucket below the stream's current open bucket is sealed, and sealed
// synopses only change when a late write lands inside the retention
// window (copy-on-write in the store). So a cached answer for a
// half-open range [From, To) that lies entirely below the open bucket
// is exact as long as no bucket advance and no late write touched the
// metric since the answer was computed. The cache tracks exactly that:
// a per-metric version that bumps when an observation advances the
// open bucket or lands below it, and every cached entry is stamped
// with the versions of its metrics at lookup time. A hit requires the
// stamps to match the current versions; anything else is a miss and
// the stale entry is dropped lazily.
//
// The contract requires every write to pass through NoteObserve — the
// serving daemon sits on the only ingest path, so it calls NoteObserve
// per observation before handing it to the backend. Writes that bypass
// the daemon bypass invalidation, exactly like any look-aside cache.
//
// AllKeys requests are never cached: the resident key set grows with
// writes to the open bucket (which bump no version), so the answer's
// cell list is not a pure function of sealed history.
//
// Entries shard by key hash, each shard holding an independent map and
// FIFO eviction ring under its own mutex, so concurrent lookups on a
// busy edge don't serialize. Cached results are shared across readers:
// treat the answers as read-only (the serving tier only encodes them).
package rcache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/hashutil"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Config tunes a Cache.
type Config struct {
	// BucketWidth is the backend store's bucket width in stream-time
	// units — the cache needs the same geometry to know where the open
	// bucket starts. Required (New fails on <= 0).
	BucketWidth int64
	// Shards is the shard count, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxEntries bounds the total cached results, split evenly across
	// shards; a full shard evicts its oldest entry (default 4096).
	MaxEntries int
}

// Cache is a sharded sealed-range read cache. Safe for concurrent use.
type Cache struct {
	cfg   Config
	mask  uint32
	shard []cshard

	mu      sync.RWMutex
	metrics map[string]*metricState

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// metricState is one metric's write watermark: the current open bucket
// index and a version that bumps whenever sealed history may have
// changed (bucket advance, or a late write below the open bucket).
type metricState struct {
	open    atomic.Int64
	version atomic.Uint64
}

// cshard is one cache shard: a keyed map plus a FIFO ring of keys for
// eviction in insertion order.
type cshard struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
	head    int
}

// entry is one cached result with the metric versions it was computed
// under.
type entry struct {
	res     store.QueryResult
	metrics []string
	stamp   []uint64
}

// New builds a Cache for stores with the given bucket geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.BucketWidth <= 0 {
		return nil, fmt.Errorf("rcache: BucketWidth %d must be > 0", cfg.BucketWidth)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	per := cfg.MaxEntries / cfg.Shards
	if per < 1 {
		per = 1
	}
	cfg.MaxEntries = per * cfg.Shards
	c := &Cache{
		cfg:     cfg,
		mask:    uint32(cfg.Shards - 1),
		shard:   make([]cshard, cfg.Shards),
		metrics: make(map[string]*metricState),
	}
	for i := range c.shard {
		c.shard[i].entries = make(map[string]*entry, per)
		c.shard[i].order = make([]string, 0, per)
	}
	return c, nil
}

// perShard is the per-shard entry budget.
func (c *Cache) perShard() int { return c.cfg.MaxEntries / c.cfg.Shards }

// state returns the metric's watermark, creating it on first sight.
func (c *Cache) state(metric string) *metricState {
	c.mu.RLock()
	st := c.metrics[metric]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st = c.metrics[metric]; st != nil {
		return st
	}
	st = &metricState{}
	st.open.Store(-1 << 62) // nothing observed: no range is sealed yet
	c.metrics[metric] = st
	return st
}

// peek returns the metric's watermark without creating it.
func (c *Cache) peek(metric string) *metricState {
	c.mu.RLock()
	st := c.metrics[metric]
	c.mu.RUnlock()
	return st
}

// NoteObserve records that an observation for metric at stream time t
// is about to reach the backend. An observation landing in the current
// open bucket changes nothing cacheable; one advancing the open bucket
// seals the buckets behind it and invalidates the metric's entries
// (they may predate the seal); one landing below the open bucket is a
// late write into sealed history and invalidates likewise. Call it on
// every write the serving edge forwards — it is two atomic loads on
// the common in-open-bucket path.
func (c *Cache) NoteObserve(metric string, t int64) {
	if t < 0 {
		return // the backend will reject it; nothing to invalidate
	}
	b := t / c.cfg.BucketWidth
	st := c.state(metric)
	for {
		open := st.open.Load()
		switch {
		case b == open:
			return
		case b > open:
			if !st.open.CompareAndSwap(open, b) {
				continue // another writer moved it; re-read
			}
		}
		// Advance (b > open) or late write (b < open): sealed history
		// for this metric may differ from any cached answer.
		st.version.Add(1)
		c.invalidations.Add(1)
		return
	}
}

// Token carries a Lookup's fill-eligibility between Lookup and Fill.
// The zero Token is ineligible, so a caller can thread it through
// unconditionally.
type Token struct {
	key     string
	idx     uint32
	metrics []string
	stamp   []uint64
	ok      bool
}

// Cacheable reports whether a Fill with this token could store the
// result (the request was eligible at Lookup time).
func (t Token) Cacheable() bool { return t.ok }

// Lookup checks the cache for req's answer. It returns (result, true)
// on an exact hit. On a miss it returns a Token: run the query against
// the backend and hand the result to Fill with the token, which stores
// it only if no invalidating write raced the query. Requests that are
// not cacheable — malformed, AllKeys, or ranges not yet fully sealed —
// return an ineligible token and are not counted as misses.
func (c *Cache) Lookup(req store.QueryRequest) (store.QueryResult, bool, Token) {
	req, err := req.Normalize()
	if err != nil || req.AllKeys {
		return store.QueryResult{}, false, Token{}
	}
	// The range must lie entirely below every metric's open bucket.
	metrics := req.Metrics
	stamp := make([]uint64, len(metrics))
	for i, m := range metrics {
		st := c.peek(m)
		if st == nil {
			return store.QueryResult{}, false, Token{}
		}
		if req.To > st.open.Load()*c.cfg.BucketWidth {
			return store.QueryResult{}, false, Token{}
		}
		stamp[i] = st.version.Load()
	}
	key := cacheKey(req)
	idx := uint32(hashutil.Sum64String(key, 0)) & c.mask
	tok := Token{key: key, idx: idx, metrics: metrics, stamp: stamp, ok: true}

	sh := &c.shard[idx]
	sh.mu.Lock()
	e := sh.entries[key]
	if e != nil && stampEqual(e.stamp, stamp) {
		res := e.res
		sh.mu.Unlock()
		c.hits.Add(1)
		return res, true, tok
	}
	if e != nil {
		// Stale under the current versions; drop it lazily (the FIFO
		// slot stays and is skipped at eviction time).
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return store.QueryResult{}, false, tok
}

// Fill stores res under the token's key, unless an invalidating write
// for one of its metrics raced the backend query (the version stamp
// moved since Lookup), in which case the result is silently discarded
// — the next lookup recomputes.
func (c *Cache) Fill(tok Token, res store.QueryResult) {
	if !tok.ok {
		return
	}
	for i, m := range tok.metrics {
		st := c.peek(m)
		if st == nil || st.version.Load() != tok.stamp[i] {
			return
		}
	}
	sh := &c.shard[tok.idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[tok.key]; !dup && len(sh.entries) >= c.perShard() {
		// Evict in FIFO order, skipping ring slots whose entries were
		// already dropped by a stale lookup.
		for len(sh.order) > 0 && len(sh.entries) >= c.perShard() {
			old := sh.order[sh.head]
			sh.order[sh.head] = ""
			sh.head++
			if sh.head == len(sh.order) {
				sh.order = sh.order[:0]
				sh.head = 0
			}
			if _, live := sh.entries[old]; live {
				delete(sh.entries, old)
				c.evictions.Add(1)
			}
		}
	}
	if _, dup := sh.entries[tok.key]; !dup {
		sh.order = append(sh.order, tok.key)
	}
	sh.entries[tok.key] = &entry{res: res, metrics: tok.metrics, stamp: tok.stamp}
}

// cacheKey renders the normalized request unambiguously: %q quoting
// keeps metric and key names containing separators from colliding.
func cacheKey(req store.QueryRequest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%q|%q|%d|%d|%t", req.Metrics, req.Keys, req.From, req.To, req.Aggregate)
	return b.String()
}

// stampEqual compares version stamps.
func stampEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Stats is a point-in-time summary of cache activity.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
	}
}

// Len counts the resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shard {
		sh := &c.shard[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// HitRatio returns hits / (hits + misses), or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// SetTelemetry registers the cache's metrics with reg under the given
// label pairs (default layer="serve" — the cache fronts the serving
// tier). All instruments are scrape-time reads of the cache's atomics.
// A nil registry is a no-op.
func (c *Cache) SetTelemetry(reg *telemetry.Registry, labels ...string) {
	if reg == nil {
		return
	}
	if len(labels) == 0 {
		labels = []string{"layer", "serve"}
	}
	reg.CounterFunc("analytics_serve_cache_hits_total",
		"Read-cache lookups answered from a cached sealed-range result.",
		func() uint64 { return c.hits.Load() }, labels...)
	reg.CounterFunc("analytics_serve_cache_misses_total",
		"Read-cache lookups that fell through to the backend.",
		func() uint64 { return c.misses.Load() }, labels...)
	reg.CounterFunc("analytics_serve_cache_evictions_total",
		"Entries evicted by the per-shard FIFO budget.",
		func() uint64 { return c.evictions.Load() }, labels...)
	reg.CounterFunc("analytics_serve_cache_invalidations_total",
		"Per-metric version bumps (bucket advances and late writes).",
		func() uint64 { return c.invalidations.Load() }, labels...)
	reg.GaugeFunc("analytics_serve_cache_entries",
		"Resident cached results across all shards.",
		func() float64 { return float64(c.Len()) }, labels...)
	reg.GaugeFunc("analytics_serve_cache_hit_ratio",
		"Hits over lookups since start (0 before the first lookup).",
		func() float64 { return c.HitRatio() }, labels...)
}
