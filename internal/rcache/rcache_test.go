package rcache

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

const width = 100 // bucket width used across these tests

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.BucketWidth == 0 {
		cfg.BucketWidth = width
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// result builds a distinguishable cached payload so hit assertions can
// check identity, not just the hit flag.
func result(tag string) store.QueryResult {
	return store.NewQueryResult([]store.Answer{store.NewAnswer(tag, "k", nil)})
}

func sealedReq(metric string) store.QueryRequest {
	return store.QueryRequest{Metric: metric, Key: "k", From: 0, To: width}
}

func TestRCacheMissFillHit(t *testing.T) {
	c := mustCache(t, Config{})
	// Writes in buckets 0 and 1: bucket 0 is sealed once bucket 1 opens.
	c.NoteObserve("m", 10)
	c.NoteObserve("m", width+10)

	req := sealedReq("m")
	if _, hit, tok := c.Lookup(req); hit || !tok.Cacheable() {
		t.Fatalf("first lookup: hit=%v cacheable=%v, want miss+cacheable", hit, tok.Cacheable())
	} else {
		c.Fill(tok, result("m"))
	}
	res, hit, _ := c.Lookup(req)
	if !hit {
		t.Fatal("second lookup: want hit")
	}
	if got := res.Answers(); len(got) != 1 || got[0].Metric != "m" {
		t.Fatalf("hit returned wrong payload: %+v", got)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestRCacheIneligibleRequests(t *testing.T) {
	c := mustCache(t, Config{})
	c.NoteObserve("m", width+10) // open bucket 1; [0,width) sealed

	cases := []struct {
		name string
		req  store.QueryRequest
	}{
		{"malformed empty range", store.QueryRequest{Metric: "m", Key: "k", From: 5, To: 5}},
		{"all-keys", store.QueryRequest{Metric: "m", AllKeys: true, From: 0, To: width}},
		{"range reaches open bucket", store.QueryRequest{Metric: "m", Key: "k", From: 0, To: width + 1}},
		{"unknown metric", sealedReq("never-seen")},
		{"one unknown among two", store.QueryRequest{Metrics: []string{"m", "never-seen"}, Key: "k", From: 0, To: width}},
	}
	for _, tc := range cases {
		if _, hit, tok := c.Lookup(tc.req); hit || tok.Cacheable() {
			t.Errorf("%s: hit=%v cacheable=%v, want neither", tc.name, hit, tok.Cacheable())
		}
	}
	if s := c.Stats(); s.Misses != 0 {
		t.Fatalf("ineligible lookups counted as misses: %+v", s)
	}
	// Fill with an ineligible token must be a no-op.
	c.Fill(Token{}, result("m"))
	if c.Len() != 0 {
		t.Fatal("Fill with zero token stored an entry")
	}
}

func TestRCacheAdvanceInvalidates(t *testing.T) {
	c := mustCache(t, Config{})
	c.NoteObserve("m", width+10)
	_, _, tok := c.Lookup(sealedReq("m"))
	c.Fill(tok, result("m"))
	if _, hit, _ := c.Lookup(sealedReq("m")); !hit {
		t.Fatal("want hit before advance")
	}

	c.NoteObserve("m", 3*width) // advance: seals bucket 1 and 2
	if _, hit, _ := c.Lookup(sealedReq("m")); hit {
		t.Fatal("post-advance lookup must miss")
	}
	if s := c.Stats(); s.Invalidations < 2 { // initial open + advance
		t.Fatalf("invalidations = %d, want >= 2", s.Invalidations)
	}
	// The same range is still sealed, so it re-fills under the new version.
	_, _, tok = c.Lookup(sealedReq("m"))
	c.Fill(tok, result("m"))
	if _, hit, _ := c.Lookup(sealedReq("m")); !hit {
		t.Fatal("want hit after re-fill under new version")
	}
}

func TestRCacheLateWriteInvalidates(t *testing.T) {
	c := mustCache(t, Config{})
	c.NoteObserve("m", 2*width+10) // open bucket 2
	_, _, tok := c.Lookup(sealedReq("m"))
	c.Fill(tok, result("m"))

	c.NoteObserve("m", 2*width+20) // same open bucket: no invalidation
	if _, hit, _ := c.Lookup(sealedReq("m")); !hit {
		t.Fatal("in-open-bucket write must not invalidate")
	}

	c.NoteObserve("m", 10) // late write into sealed bucket 0
	if _, hit, _ := c.Lookup(sealedReq("m")); hit {
		t.Fatal("late write into sealed history must invalidate")
	}
}

func TestRCachePerMetricIsolation(t *testing.T) {
	c := mustCache(t, Config{})
	c.NoteObserve("a", width+1)
	c.NoteObserve("b", width+1)
	_, _, ta := c.Lookup(sealedReq("a"))
	c.Fill(ta, result("a"))
	_, _, tb := c.Lookup(sealedReq("b"))
	c.Fill(tb, result("b"))

	c.NoteObserve("a", 5) // late write on a only
	if _, hit, _ := c.Lookup(sealedReq("a")); hit {
		t.Fatal("a must be invalidated")
	}
	if _, hit, _ := c.Lookup(sealedReq("b")); !hit {
		t.Fatal("b must survive a's invalidation")
	}
}

func TestRCacheFillDiscardsOnRace(t *testing.T) {
	c := mustCache(t, Config{})
	c.NoteObserve("m", width+1)
	_, _, tok := c.Lookup(sealedReq("m"))
	c.NoteObserve("m", 1) // invalidating write between Lookup and Fill
	c.Fill(tok, result("m"))
	if c.Len() != 0 {
		t.Fatal("Fill must discard a result whose version stamp raced")
	}
}

func TestRCacheEvictionFIFO(t *testing.T) {
	// One shard, four slots: the fifth insert evicts the oldest.
	c := mustCache(t, Config{Shards: 1, MaxEntries: 4})
	c.NoteObserve("m", 10*width)
	reqAt := func(i int) store.QueryRequest {
		return store.QueryRequest{Metric: "m", Key: "k", From: int64(i) * width, To: int64(i+1) * width}
	}
	for i := 0; i < 5; i++ {
		_, _, tok := c.Lookup(reqAt(i))
		if !tok.Cacheable() {
			t.Fatalf("req %d not cacheable", i)
		}
		c.Fill(tok, result(fmt.Sprint(i)))
	}
	if s := c.Stats(); s.Entries != 4 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 4 entries / 1 eviction", s)
	}
	if _, hit, _ := c.Lookup(reqAt(0)); hit {
		t.Fatal("oldest entry must have been evicted")
	}
	if _, hit, _ := c.Lookup(reqAt(4)); !hit {
		t.Fatal("newest entry must be resident")
	}
}

func TestRCacheTelemetry(t *testing.T) {
	c := mustCache(t, Config{})
	reg := telemetry.New()
	c.SetTelemetry(reg)

	c.NoteObserve("m", width+1)
	_, _, tok := c.Lookup(sealedReq("m"))
	c.Fill(tok, result("m"))
	c.Lookup(sealedReq("m"))

	rec := httptest.NewRecorder()
	telemetry.Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`analytics_serve_cache_hits_total{layer="serve"} 1`,
		`analytics_serve_cache_misses_total{layer="serve"} 1`,
		`analytics_serve_cache_entries{layer="serve"} 1`,
		`analytics_serve_cache_hit_ratio{layer="serve"} 0.5`,
		`analytics_serve_cache_invalidations_total{layer="serve"} 1`,
		`analytics_serve_cache_evictions_total{layer="serve"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\n%s", want, body)
		}
	}
}

func TestRCacheHitRatioZeroBeforeLookups(t *testing.T) {
	c := mustCache(t, Config{})
	if r := c.HitRatio(); r != 0 {
		t.Fatalf("HitRatio before lookups = %v, want 0", r)
	}
}

func TestRCacheRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without BucketWidth must fail")
	}
}

func TestRCacheConcurrency(t *testing.T) {
	c := mustCache(t, Config{Shards: 4, MaxEntries: 64})
	c.NoteObserve("m", 100*width)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					c.NoteObserve("m", int64(i%10)*width) // mix of late writes
				default:
					req := store.QueryRequest{Metric: "m", Key: "k",
						From: int64(i%8) * width, To: int64(i%8+1) * width}
					if res, hit, tok := c.Lookup(req); hit {
						_ = res
					} else {
						c.Fill(tok, result("m"))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c.Stats() // must not race with anything above
}
