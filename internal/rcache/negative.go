// negative.go: the read cache's tiny sibling for the *absence* of a
// metric. Dashboards and probes love to re-ask for metrics that do not
// exist (typos, decommissioned series, speculative discovery), and
// each such query otherwise walks the full backend path just to learn
// "unknown metric" again — in cluster mode that is a scatter-gather.
// The negative cache pins recent unknown-metric verdicts at the edge
// so repeats answer 404 immediately.
package rcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Negative remembers metric names the backend recently reported
// unknown. Entries are evicted FIFO past MaxEntries and removed the
// moment the edge registers the name (Forget) — the same
// all-writes-through-the-edge contract the read cache runs under: a
// metric registered behind the edge's back stays negatively cached
// until its entry ages out, so keep the cache small. A nil *Negative
// is inert (Lookup always misses, Note and Forget are no-ops).
type Negative struct {
	mu   sync.Mutex
	max  int
	m    map[string]struct{}
	fifo []string

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewNegative builds a negative cache holding at most max names;
// max <= 0 returns nil (the inert cache).
func NewNegative(max int) *Negative {
	if max <= 0 {
		return nil
	}
	return &Negative{max: max, m: make(map[string]struct{}, max)}
}

// Lookup reports whether metric is cached-unknown, counting the probe
// as a hit or miss.
func (n *Negative) Lookup(metric string) bool {
	if n == nil {
		return false
	}
	n.mu.Lock()
	_, ok := n.m[metric]
	n.mu.Unlock()
	if ok {
		n.hits.Add(1)
	} else {
		n.misses.Add(1)
	}
	return ok
}

// Note records that the backend just reported metric unknown.
func (n *Negative) Note(metric string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.m[metric]; ok {
		return
	}
	for len(n.m) >= n.max {
		old := n.fifo[0]
		n.fifo = n.fifo[1:]
		delete(n.m, old)
		n.evictions.Add(1)
	}
	n.m[metric] = struct{}{}
	n.fifo = append(n.fifo, metric)
}

// Forget drops metric's entry — called when the edge registers the
// name, so a fresh registration is never shadowed by its own 404s.
func (n *Negative) Forget(metric string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.m[metric]; !ok {
		return
	}
	delete(n.m, metric)
	for i, name := range n.fifo {
		if name == metric {
			n.fifo = append(n.fifo[:i], n.fifo[i+1:]...)
			break
		}
	}
}

// Len reports the resident entry count.
func (n *Negative) Len() int {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.m)
}

// Stats snapshots the probe counters (hits, misses, evictions).
func (n *Negative) Stats() (hits, misses, evictions uint64) {
	if n == nil {
		return 0, 0, 0
	}
	return n.hits.Load(), n.misses.Load(), n.evictions.Load()
}

// SetTelemetry registers the cache's counters with reg as
// analytics_serve_negcache_* (default label layer="serve", matching
// the read cache). A nil registry or nil cache is a no-op.
func (n *Negative) SetTelemetry(reg *telemetry.Registry, labels ...string) {
	if n == nil || reg == nil {
		return
	}
	if len(labels) == 0 {
		labels = []string{"layer", "serve"}
	}
	reg.CounterFunc("analytics_serve_negcache_hits_total",
		"Unknown-metric probes answered from the negative cache.",
		func() uint64 { return n.hits.Load() }, labels...)
	reg.CounterFunc("analytics_serve_negcache_misses_total",
		"Negative-cache probes that fell through to the backend.",
		func() uint64 { return n.misses.Load() }, labels...)
	reg.CounterFunc("analytics_serve_negcache_evictions_total",
		"Negative entries evicted by the FIFO budget.",
		func() uint64 { return n.evictions.Load() }, labels...)
	reg.GaugeFunc("analytics_serve_negcache_entries",
		"Resident negative entries.",
		func() float64 { return float64(n.Len()) }, labels...)
}
