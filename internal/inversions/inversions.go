// Package inversions implements inversion counting over streams — the
// "Counting Inversions" row of the tutorial's Table 1 (Ajtai–Jayram–Kumar–
// Sivakumar), whose application is measuring the sortedness of data.
//
// Exact counting needs Omega(n) space; the streaming estimator here uses
// the AJKS-style reduction: sample positions via independent reservoirs,
// count how many later elements invert each sampled one, and scale. The
// experiments compare it against the exact Fenwick-tree baseline.
package inversions

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// ExactCounter counts inversions exactly with a Fenwick (binary indexed)
// tree over a bounded integer domain: for each arrival, the number of
// previously seen strictly greater values is added. O(n log U) time,
// O(U) space.
type ExactCounter struct {
	tree  []uint64
	total uint64
	n     uint64
	count uint64
}

// NewExactCounter returns an exact inversion counter for values in
// [0, universe).
func NewExactCounter(universe int) (*ExactCounter, error) {
	if universe <= 0 {
		return nil, core.Errf("inversions.ExactCounter", "universe", "%d must be positive", universe)
	}
	return &ExactCounter{tree: make([]uint64, universe+1)}, nil
}

func (e *ExactCounter) add(i int) {
	for i++; i < len(e.tree); i += i & (-i) {
		e.tree[i]++
	}
}

// prefix returns the count of seen values <= i.
func (e *ExactCounter) prefix(i int) uint64 {
	var s uint64
	for i++; i > 0; i -= i & (-i) {
		s += e.tree[i]
	}
	return s
}

// Update observes the next value of the stream.
func (e *ExactCounter) Update(v uint64) {
	iv := int(v)
	if iv >= len(e.tree)-1 {
		iv = len(e.tree) - 2
	}
	// Inversions contributed: previously seen values strictly greater.
	greater := e.total - e.prefix(iv)
	e.count += greater
	e.add(iv)
	e.total++
	e.n++
}

// Count returns the exact inversion count so far.
func (e *ExactCounter) Count() uint64 { return e.count }

// Items returns the stream length.
func (e *ExactCounter) Items() uint64 { return e.n }

// Bytes returns the tree footprint.
func (e *ExactCounter) Bytes() int { return len(e.tree)*8 + 24 }

// Estimator approximates the inversion count with s independent samplers:
// each reservoir-samples one stream position, then counts subsequent
// arrivals smaller than the sampled value. Each sampler's expected count is
// inversions/n, so the scaled mean is unbiased.
type Estimator struct {
	samplers []invSampler
	rng      *workload.RNG
	n        uint64
}

type invSampler struct {
	val    uint64
	have   bool
	follow uint64 // later elements smaller than val
}

// NewEstimator returns an inversion estimator with s samplers.
func NewEstimator(s int, seed uint64) (*Estimator, error) {
	if s <= 0 {
		return nil, core.Errf("inversions.Estimator", "s", "%d must be positive", s)
	}
	return &Estimator{samplers: make([]invSampler, s), rng: workload.NewRNG(seed)}, nil
}

// Update observes the next value of the stream.
func (est *Estimator) Update(v uint64) {
	est.n++
	for i := range est.samplers {
		sp := &est.samplers[i]
		// Reservoir of size 1 over positions.
		if est.rng.Uint64()%est.n == 0 {
			sp.val = v
			sp.have = true
			sp.follow = 0
			continue
		}
		if sp.have && v < sp.val {
			sp.follow++
		}
	}
}

// Estimate returns the estimated number of inversions.
func (est *Estimator) Estimate() float64 {
	if est.n == 0 {
		return 0
	}
	sum := 0.0
	live := 0
	for _, sp := range est.samplers {
		if !sp.have {
			continue
		}
		live++
		sum += float64(sp.follow)
	}
	if live == 0 {
		return 0
	}
	// Each sampled position i contributes count of j>i with a[j]<a[i];
	// the expectation over a uniform i is inversions/n.
	return sum / float64(live) * float64(est.n)
}

// Items returns the stream length.
func (est *Estimator) Items() uint64 { return est.n }

// Bytes returns the sampler footprint.
func (est *Estimator) Bytes() int { return len(est.samplers)*24 + 24 }

// Sortedness converts an inversion count into the normalized disorder
// measure inversions / (n*(n-1)/2) in [0,1] (0 = sorted, 1 = reversed) —
// the "measure sortedness" framing of Table 1.
func Sortedness(inversions float64, n uint64) float64 {
	if n < 2 {
		return 0
	}
	max := float64(n) * float64(n-1) / 2
	s := inversions / max
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}
