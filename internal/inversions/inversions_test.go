package inversions

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func bruteForce(xs []uint64) uint64 {
	var c uint64
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				c++
			}
		}
	}
	return c
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := workload.NewRNG(1)
	xs := workload.Uniform(rng, 500, 200)
	e, _ := NewExactCounter(200)
	for _, x := range xs {
		e.Update(x)
	}
	if want := bruteForce(xs); e.Count() != want {
		t.Fatalf("exact %d != brute force %d", e.Count(), want)
	}
}

func TestExactSortedAndReversed(t *testing.T) {
	e, _ := NewExactCounter(100)
	for i := uint64(0); i < 100; i++ {
		e.Update(i)
	}
	if e.Count() != 0 {
		t.Fatalf("sorted stream has %d inversions", e.Count())
	}
	r, _ := NewExactCounter(100)
	for i := 100; i > 0; i-- {
		r.Update(uint64(i - 1))
	}
	if want := uint64(100 * 99 / 2); r.Count() != want {
		t.Fatalf("reversed stream %d inversions, want %d", r.Count(), want)
	}
}

func TestExactClampsUniverse(t *testing.T) {
	e, _ := NewExactCounter(10)
	e.Update(1000) // clamped to 9
	e.Update(0)
	if e.Count() != 1 {
		t.Fatalf("clamped count %d", e.Count())
	}
}

func TestEstimatorTracksDisorderLevels(t *testing.T) {
	// The estimator must order near-sorted < half-shuffled < reversed.
	const n = 5000
	measure := func(xs []uint64) float64 {
		est, _ := NewEstimator(400, 7)
		for _, x := range xs {
			est.Update(x)
		}
		return est.Estimate()
	}
	rng := workload.NewRNG(2)
	nearSorted := measure(workload.NearSorted(rng, n, 0.01))
	shuffled := measure(workload.NearSorted(rng, n, 2.0))
	rev := make([]uint64, n)
	for i := range rev {
		rev[i] = uint64(n - i)
	}
	reversed := measure(rev)
	if !(nearSorted < shuffled && shuffled < reversed) {
		t.Fatalf("ordering broken: %v %v %v", nearSorted, shuffled, reversed)
	}
}

func TestEstimatorUnbiasedOnShuffled(t *testing.T) {
	const n = 3000
	rng := workload.NewRNG(3)
	xs := workload.NearSorted(rng, n, 2.0)
	truth := float64(bruteForce(xs))
	est, _ := NewEstimator(800, 11)
	for _, x := range xs {
		est.Update(x)
	}
	if rel := math.Abs(est.Estimate()-truth) / truth; rel > 0.25 {
		t.Fatalf("estimator rel error %.3f (est %.0f truth %.0f)", rel, est.Estimate(), truth)
	}
}

func TestSortedness(t *testing.T) {
	if s := Sortedness(0, 100); s != 0 {
		t.Fatalf("sorted score %v", s)
	}
	if s := Sortedness(100*99/2, 100); s != 1 {
		t.Fatalf("reversed score %v", s)
	}
	if s := Sortedness(1e12, 100); s != 1 {
		t.Fatal("clamping failed")
	}
	if s := Sortedness(5, 1); s != 0 {
		t.Fatal("n<2 not handled")
	}
}

func TestQuickExactMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]uint64, len(raw))
		for i, v := range raw {
			xs[i] = uint64(v)
		}
		e, _ := NewExactCounter(256)
		for _, x := range xs {
			e.Update(x)
		}
		return e.Count() == bruteForce(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactUpdate(b *testing.B) {
	e, _ := NewExactCounter(1 << 16)
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i*2654435761) % (1 << 16))
	}
}

func BenchmarkEstimatorUpdate(b *testing.B) {
	e, _ := NewEstimator(256, 1)
	for i := 0; i < b.N; i++ {
		e.Update(uint64(i*2654435761) % (1 << 16))
	}
}
