// storebolt.go is the sharded-store face of the generic serving sink —
// kept as a deprecated alias now that SinkBolt sinks into any
// analytics.Backend (the store, the cluster router, or a Lambda
// architecture) through one implementation.
package engine

import (
	"repro/internal/core"
	"repro/internal/store"
)

// StoreBolt applies each message's observation to a Store.
//
// Deprecated: StoreBolt is SinkBolt; use NewSinkBolt with any
// analytics.Backend (wrap it with analytics.Instrument for serving
// telemetry).
type StoreBolt = SinkBolt

// NewStoreBolt returns a bolt sinking into st. extract maps a message to
// an observation, returning false to skip the message; nil uses
// DefaultExtract.
//
// Deprecated: use NewSinkBolt — a store.Store is an analytics.Backend, and
// analytics.Instrument adds telemetry to any of them.
func NewStoreBolt(st *store.Store, extract func(Message) (store.Observation, bool)) (*StoreBolt, error) {
	if st == nil {
		// Checked here, not in NewSinkBolt: a typed nil pointer would
		// otherwise hide inside a non-nil interface value.
		return nil, core.Errf("StoreBolt", "store", "must be non-nil")
	}
	return NewSinkBolt(st, extract)
}
