// storebolt.go sinks topology streams into the sharded sketch store —
// the glue between the processing layer (this engine) and the serving
// layer (internal/store), playing the role Samza's local state stores or
// MillWheel's persistent per-key state play in the tutorial's Section 3
// platforms. A StoreBolt is a terminal bolt: it emits nothing downstream,
// it only applies observations to the store, which concurrent query
// traffic reads directly (the store's sharding makes the write path of
// many bolt tasks and the read path of many queriers safe together).
package engine

import (
	"repro/internal/core"
	"repro/internal/store"
)

// StoreBolt applies each message's observation to a Store.
type StoreBolt struct {
	st      *store.Store
	extract func(Message) (store.Observation, bool)
}

// NewStoreBolt returns a bolt sinking into st. extract maps a message to
// an observation, returning false to skip the message; nil uses
// DefaultExtract. One StoreBolt is safe to share across tasks (via a
// BoltFactory returning the same instance): the store does its own
// locking, per shard.
func NewStoreBolt(st *store.Store, extract func(Message) (store.Observation, bool)) (*StoreBolt, error) {
	if st == nil {
		return nil, core.Errf("StoreBolt", "store", "must be non-nil")
	}
	if extract == nil {
		extract = DefaultExtract
	}
	return &StoreBolt{st: st, extract: extract}, nil
}

// DefaultExtract accepts messages whose Value already is a
// store.Observation (by value or pointer).
func DefaultExtract(m Message) (store.Observation, bool) {
	switch v := m.Value.(type) {
	case store.Observation:
		return v, true
	case *store.Observation:
		if v != nil {
			return *v, true
		}
	}
	return store.Observation{}, false
}

// Process implements Bolt. A store error fails the tuple tree, so under
// at-least-once semantics a transient failure is replayed; skipped
// messages (extract false) and late drops (counted by the store) are not
// failures.
func (b *StoreBolt) Process(m Message, _ func(Message)) error {
	obs, ok := b.extract(m)
	if !ok {
		return nil
	}
	return b.st.Observe(obs)
}

// Factory returns a BoltFactory handing every task this same bolt,
// the common parallelism-N wiring for a StoreBolt.
func (b *StoreBolt) Factory() BoltFactory {
	return func(int) Bolt { return b }
}
