package engine

import (
	"fmt"
	"testing"

	"repro/internal/lambda"
	"repro/internal/store"
)

func lambdaWithHits(t *testing.T) *lambda.Architecture {
	t.Helper()
	geom := store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 100}
	a, err := lambda.New(lambda.Config{Partitions: 4, Batch: geom, Speed: geom})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	proto, err := store.NewFreqProto(256, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterMetric("hits", proto); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewLambdaBoltValidation(t *testing.T) {
	if _, err := NewLambdaBolt(nil, nil); err == nil {
		t.Fatal("nil architecture accepted")
	}
}

// A topology drives both Lambda layers through one LambdaBolt: every
// tuple lands in the master log AND the speed layer, so a batch recompute
// after the run and the merged query agree with the tuple count.
func TestLambdaBoltDrivesBothLayers(t *testing.T) {
	a := lambdaWithHits(t)
	const tuples = 4000
	emitted := 0
	spout := SpoutFunc(func() (Message, bool) {
		if emitted >= tuples {
			return Message{}, false
		}
		i := emitted
		emitted++
		return Message{
			Key: fmt.Sprintf("page%d", i%8),
			Value: store.Observation{
				Metric: "hits",
				Key:    fmt.Sprintf("page%d", i%8),
				Item:   "view",
				Value:  1,
				Time:   int64(i % 300),
			},
		}, true
	})
	sink, err := NewLambdaBolt(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewBuilder().
		AddSpout("events", spout).
		AddBolt("lambda", sink.Factory(), 4, FieldsFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["lambda"] != 0 {
		t.Fatalf("topology failures: %+v", stats)
	}
	if got := a.MasterLen(); got != tuples {
		t.Fatalf("master log has %d messages, want %d", got, tuples)
	}
	// Speed layer absorbed the stream (pre-batch merged answer is live).
	for k := 0; k < 8; k++ {
		syn, err := a.QueryPoint("hits", fmt.Sprintf("page%d", k), 0, 299)
		if err != nil {
			t.Fatal(err)
		}
		if got := syn.(*store.Freq).Count("view"); got != tuples/8 {
			t.Fatalf("page%d pre-batch merged count %d, want %d", k, got, tuples/8)
		}
	}
	// Batch recompute covers the whole run; answers are unchanged and the
	// speed layer is truncated to nothing.
	if _, err := a.RunBatch(); err != nil {
		t.Fatal(err)
	}
	if obs := a.SpeedStats().Observed; obs != 0 {
		t.Fatalf("speed layer holds %d observations after handoff", obs)
	}
	for k := 0; k < 8; k++ {
		syn, err := a.QueryPoint("hits", fmt.Sprintf("page%d", k), 0, 299)
		if err != nil {
			t.Fatal(err)
		}
		if got := syn.(*store.Freq).Count("view"); got != tuples/8 {
			t.Fatalf("page%d post-batch merged count %d, want %d", k, got, tuples/8)
		}
	}
}

// Messages the extractor rejects are skipped, not failed, and never
// reach the master log.
func TestLambdaBoltSkipsForeignMessages(t *testing.T) {
	a := lambdaWithHits(t)
	msgs := []Message{
		{Key: "a", Value: store.Observation{Metric: "hits", Key: "a", Item: "x", Value: 1, Time: 1}},
		{Key: "b", Value: "not an observation"},
		{Key: "c", Value: store.Observation{Metric: "hits", Key: "c", Item: "y", Value: 1, Time: 2}},
	}
	sink, _ := NewLambdaBolt(a, nil)
	topo, err := NewBuilder().
		AddSpout("events", &sliceSpout{msgs: msgs}).
		AddBolt("lambda", sink.Factory(), 2, ShuffleFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["lambda"] != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if got := a.MasterLen(); got != 2 {
		t.Fatalf("master log has %d messages, want 2", got)
	}
}
