package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// sliceSpout emits a fixed slice of messages.
type sliceSpout struct {
	msgs []Message
	pos  int
}

func (s *sliceSpout) Next() (Message, bool) {
	if s.pos >= len(s.msgs) {
		return Message{}, false
	}
	m := s.msgs[s.pos]
	s.pos++
	return m, true
}

func sentenceSpout(sentences []string) *sliceSpout {
	s := &sliceSpout{}
	for _, line := range sentences {
		s.msgs = append(s.msgs, Message{Key: "", Value: line})
	}
	return s
}

// splitBolt splits sentence values into word messages.
func splitBolt(int) Bolt {
	return BoltFunc(func(m Message, emit func(Message)) error {
		for _, w := range strings.Fields(m.Value.(string)) {
			emit(Message{Key: w, Value: 1})
		}
		return nil
	})
}

// countCollector counts words across all tasks (thread-safe).
type countCollector struct {
	mu     sync.Mutex
	counts map[string]int
}

func newCountCollector() *countCollector {
	return &countCollector{counts: map[string]int{}}
}

func (c *countCollector) factory() BoltFactory {
	return func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			c.mu.Lock()
			c.counts[m.Key] += m.Value.(int)
			c.mu.Unlock()
			return nil
		})
	}
}

func wordcountTopology(t *testing.T, sentences []string, cfg Config, counterParallelism int) (*countCollector, Stats) {
	t.Helper()
	coll := newCountCollector()
	b := NewBuilder().
		AddSpout("lines", sentenceSpout(sentences)).
		AddBolt("split", splitBolt, 4, ShuffleFrom("lines")).
		AddBolt("count", coll.factory(), counterParallelism, FieldsFrom("split"))
	top, err := b.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coll, top.Run()
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder().Build(Config{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewBuilder().AddSpout("", nil).Build(Config{}); err == nil {
		t.Fatal("nil spout accepted")
	}
	b := NewBuilder().
		AddSpout("s", SpoutFunc(func() (Message, bool) { return Message{}, false })).
		AddBolt("b", splitBolt, 1, ShuffleFrom("missing"))
	if _, err := b.Build(Config{}); err == nil {
		t.Fatal("unknown subscription accepted")
	}
	dup := NewBuilder().
		AddSpout("x", SpoutFunc(func() (Message, bool) { return Message{}, false })).
		AddSpout("x", SpoutFunc(func() (Message, bool) { return Message{}, false }))
	if _, err := dup.Build(Config{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	cyc := NewBuilder().
		AddSpout("s", SpoutFunc(func() (Message, bool) { return Message{}, false })).
		AddBolt("a", splitBolt, 1, ShuffleFrom("s"), ShuffleFrom("b")).
		AddBolt("b", splitBolt, 1, ShuffleFrom("a"))
	if _, err := cyc.Build(Config{}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestWordcountAtMostOnceExact(t *testing.T) {
	sentences := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	coll, stats := wordcountTopology(t, sentences, Config{Semantics: AtMostOnce}, 4)
	if coll.counts["the"] != 3 || coll.counts["quick"] != 2 || coll.counts["dog"] != 2 || coll.counts["fox"] != 1 {
		t.Fatalf("bad counts: %v", coll.counts)
	}
	if stats.SpoutEmitted != 3 {
		t.Fatalf("spout emitted %d", stats.SpoutEmitted)
	}
	if stats.Processed["split"] != 3 {
		t.Fatalf("split processed %d", stats.Processed["split"])
	}
	if stats.Processed["count"] != 10 {
		t.Fatalf("count processed %d", stats.Processed["count"])
	}
}

func TestWordcountAtLeastOnceNoFailuresExact(t *testing.T) {
	var sentences []string
	for i := 0; i < 500; i++ {
		sentences = append(sentences, fmt.Sprintf("w%d common w%d", i%50, i%7))
	}
	coll, stats := wordcountTopology(t, sentences, Config{Semantics: AtLeastOnce}, 4)
	if coll.counts["common"] != 500 {
		t.Fatalf("count %d, want 500", coll.counts["common"])
	}
	if stats.Acked != 500 {
		t.Fatalf("acked %d, want 500", stats.Acked)
	}
	if stats.Replayed != 0 || stats.Dropped != 0 {
		t.Fatalf("unexpected replays/drops: %+v", stats)
	}
}

// flakyBolt fails the first failures tuples it sees, then behaves.
func flakyBolt(failures int64, inner BoltFactory) BoltFactory {
	var remaining int64 = failures
	return func(task int) Bolt {
		in := inner(task)
		return BoltFunc(func(m Message, emit func(Message)) error {
			if atomic.AddInt64(&remaining, -1) >= 0 {
				return errors.New("injected failure")
			}
			return in.Process(m, emit)
		})
	}
}

func TestAtLeastOnceReplaysFailures(t *testing.T) {
	var sentences []string
	for i := 0; i < 200; i++ {
		sentences = append(sentences, "alpha")
	}
	coll := newCountCollector()
	b := NewBuilder().
		AddSpout("lines", sentenceSpout(sentences)).
		AddBolt("split", flakyBolt(20, splitBolt), 2, ShuffleFrom("lines")).
		AddBolt("count", coll.factory(), 2, FieldsFrom("split"))
	top, err := b.Build(Config{Semantics: AtLeastOnce, MaxRetries: 10})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	// Every tuple eventually processed: the count must be >= 200 (>= due
	// to possible duplicate side effects from partially-failed trees), and
	// every root acked.
	if coll.counts["alpha"] < 200 {
		t.Fatalf("lost tuples under at-least-once: %d", coll.counts["alpha"])
	}
	if stats.Acked != 200 {
		t.Fatalf("acked %d, want 200", stats.Acked)
	}
	if stats.Replayed < 20 {
		t.Fatalf("replays %d, want >= 20", stats.Replayed)
	}
	if stats.Dropped != 0 {
		t.Fatalf("dropped %d", stats.Dropped)
	}
}

func TestAtMostOnceLosesFailedTuples(t *testing.T) {
	var sentences []string
	for i := 0; i < 200; i++ {
		sentences = append(sentences, "beta")
	}
	coll := newCountCollector()
	b := NewBuilder().
		AddSpout("lines", sentenceSpout(sentences)).
		AddBolt("split", flakyBolt(50, splitBolt), 2, ShuffleFrom("lines")).
		AddBolt("count", coll.factory(), 2, FieldsFrom("split"))
	top, err := b.Build(Config{Semantics: AtMostOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if coll.counts["beta"] != 150 {
		t.Fatalf("at-most-once count %d, want exactly 150 (50 lost)", coll.counts["beta"])
	}
	if stats.Errors["split"] != 50 {
		t.Fatalf("split errors %d", stats.Errors["split"])
	}
}

func TestMaxRetriesDrops(t *testing.T) {
	coll := newCountCollector()
	// One poisoned message that always fails, plus healthy traffic.
	poison := func(inner BoltFactory) BoltFactory {
		return func(task int) Bolt {
			in := inner(task)
			return BoltFunc(func(m Message, emit func(Message)) error {
				if m.Value.(string) == "poison" {
					return errors.New("always fails")
				}
				return in.Process(m, emit)
			})
		}
	}
	sentences := []string{"ok", "poison", "ok"}
	b := NewBuilder().
		AddSpout("lines", sentenceSpout(sentences)).
		AddBolt("split", poison(splitBolt), 1, ShuffleFrom("lines")).
		AddBolt("count", coll.factory(), 1, FieldsFrom("split"))
	top, err := b.Build(Config{Semantics: AtLeastOnce, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if stats.Dropped != 1 {
		t.Fatalf("dropped %d, want 1", stats.Dropped)
	}
	if stats.Acked != 2 {
		t.Fatalf("acked %d, want 2", stats.Acked)
	}
	if coll.counts["ok"] != 2 {
		t.Fatalf("healthy tuples lost: %v", coll.counts)
	}
}

func TestFieldsGroupingRoutesKeysConsistently(t *testing.T) {
	// Record which task saw each key; a key must never appear on two tasks.
	var mu sync.Mutex
	keyTask := map[string]map[int]bool{}
	factory := func(task int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			mu.Lock()
			if keyTask[m.Key] == nil {
				keyTask[m.Key] = map[int]bool{}
			}
			keyTask[m.Key][task] = true
			mu.Unlock()
			return nil
		})
	}
	var msgs []Message
	rng := workload.NewRNG(1)
	for i := 0; i < 2000; i++ {
		msgs = append(msgs, Message{Key: fmt.Sprintf("k%d", rng.Intn(100)), Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("sink", factory, 8, FieldsFrom("src"))
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	top.Run()
	for k, tasks := range keyTask {
		if len(tasks) != 1 {
			t.Fatalf("key %s routed to %d tasks", k, len(tasks))
		}
	}
}

func TestShuffleGroupingBalances(t *testing.T) {
	var perTask [8]int64
	factory := func(task int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			atomic.AddInt64(&perTask[task], 1)
			return nil
		})
	}
	var msgs []Message
	for i := 0; i < 8000; i++ {
		msgs = append(msgs, Message{Key: "same-key", Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("sink", factory, 8, ShuffleFrom("src"))
	top, _ := b.Build(Config{})
	top.Run()
	for i, c := range perTask {
		if c < 900 || c > 1100 {
			t.Fatalf("task %d got %d of 8000 under shuffle", i, c)
		}
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	var perTask [4]int64
	factory := func(task int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			atomic.AddInt64(&perTask[task], 1)
			return nil
		})
	}
	var msgs []Message
	for i := 0; i < 100; i++ {
		msgs = append(msgs, Message{Key: "x", Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("sink", factory, 4, BroadcastFrom("src"))
	top, _ := b.Build(Config{Semantics: AtLeastOnce})
	stats := top.Run()
	for i, c := range perTask {
		if c != 100 {
			t.Fatalf("task %d got %d of 100 under broadcast", i, c)
		}
	}
	if stats.Acked != 100 {
		t.Fatalf("acked %d", stats.Acked)
	}
}

func TestGlobalGroupingSingleTask(t *testing.T) {
	var perTask [4]int64
	factory := func(task int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			atomic.AddInt64(&perTask[task], 1)
			return nil
		})
	}
	var msgs []Message
	for i := 0; i < 100; i++ {
		msgs = append(msgs, Message{Key: fmt.Sprintf("k%d", i), Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("sink", factory, 4, GlobalFrom("src"))
	top, _ := b.Build(Config{})
	top.Run()
	if perTask[0] != 100 || perTask[1]+perTask[2]+perTask[3] != 0 {
		t.Fatalf("global grouping spread: %v", perTask)
	}
}

func TestMultiStageDiamond(t *testing.T) {
	// src -> (a, b) -> join: both paths must deliver everything.
	var joined int64
	factory := func(task int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			atomic.AddInt64(&joined, 1)
			return nil
		})
	}
	pass := func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			emit(m)
			return nil
		})
	}
	var msgs []Message
	for i := 0; i < 300; i++ {
		msgs = append(msgs, Message{Key: fmt.Sprintf("k%d", i), Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("a", pass, 2, ShuffleFrom("src")).
		AddBolt("b", pass, 2, ShuffleFrom("src")).
		AddBolt("join", factory, 3, FieldsFrom("a"), FieldsFrom("b"))
	top, err := b.Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if joined != 600 {
		t.Fatalf("join saw %d, want 600", joined)
	}
	if stats.Acked != 300 {
		t.Fatalf("acked %d", stats.Acked)
	}
}

func TestDedupMakesEffectivelyOnce(t *testing.T) {
	// Flaky mid-stage + at-least-once = duplicates; Dedup at the counting
	// stage must restore exact counts (MillWheel recipe).
	var sentences []string
	for i := 0; i < 300; i++ {
		sentences = append(sentences, fmt.Sprintf("msg-%d", i))
	}
	coll := newCountCollector()
	dedupFactory := func(task int) Bolt {
		inner := coll.factory()(task)
		d, err := NewDedup(inner, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	passThatDuplicates := func(int) Bolt {
		n := 0
		return BoltFunc(func(m Message, emit func(Message)) error {
			emit(Message{Key: m.Value.(string), Value: 1})
			n++
			if n%10 == 0 {
				return errors.New("fail after emit") // classic duplicate source
			}
			return nil
		})
	}
	b := NewBuilder().
		AddSpout("lines", sentenceSpout(sentences)).
		AddBolt("dup", passThatDuplicates, 1, ShuffleFrom("lines")).
		AddBolt("count", dedupFactory, 1, FieldsFrom("dup"))
	top, err := b.Build(Config{Semantics: AtLeastOnce, MaxRetries: 20})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if stats.Replayed == 0 {
		t.Fatal("test did not exercise replays")
	}
	total := 0
	for _, c := range coll.counts {
		if c != 1 {
			t.Fatalf("duplicate leaked through dedup: %v", c)
		}
		total += c
	}
	if total != 300 {
		t.Fatalf("deduped total %d, want 300", total)
	}
}

func TestCheckpointStore(t *testing.T) {
	cs := NewCheckpointStore()
	if _, ok := cs.Get("x"); ok {
		t.Fatal("empty store returned value")
	}
	v1 := cs.Put("x", []byte("a"))
	v2 := cs.Put("y", []byte("b"))
	if v2 <= v1 {
		t.Fatal("versions not monotonic")
	}
	got, ok := cs.Get("x")
	if !ok || string(got) != "a" {
		t.Fatalf("get: %q %v", got, ok)
	}
	snap := cs.Snapshot()
	cs.Put("x", []byte("mutated"))
	if string(snap["x"]) != "a" {
		t.Fatal("snapshot not isolated")
	}
}

func TestBackpressureSmallQueues(t *testing.T) {
	// A tiny queue with a slow sink must still complete without loss.
	var processed int64
	slow := func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			// Simulated work: a tight loop (no sleep, keep the test fast).
			x := 0
			for i := 0; i < 100; i++ {
				x += i
			}
			_ = x
			atomic.AddInt64(&processed, 1)
			return nil
		})
	}
	var msgs []Message
	for i := 0; i < 5000; i++ {
		msgs = append(msgs, Message{Key: "k", Value: 1})
	}
	b := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("sink", slow, 1, ShuffleFrom("src"))
	top, _ := b.Build(Config{QueueSize: 2})
	top.Run()
	if processed != 5000 {
		t.Fatalf("processed %d under backpressure", processed)
	}
}

func BenchmarkTopologyAtMostOnce(b *testing.B) {
	benchTopology(b, AtMostOnce)
}

func BenchmarkTopologyAtLeastOnce(b *testing.B) {
	benchTopology(b, AtLeastOnce)
}

func benchTopology(b *testing.B, sem Semantics) {
	msgs := make([]Message, b.N)
	for i := range msgs {
		msgs[i] = Message{Key: fmt.Sprintf("k%d", i%100), Value: 1}
	}
	coll := newCountCollector()
	top, err := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("count", coll.factory(), 4, FieldsFrom("src")).
		Build(Config{Semantics: sem})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	top.Run()
}

func TestLatencyTracking(t *testing.T) {
	var msgs []Message
	for i := 0; i < 2000; i++ {
		msgs = append(msgs, Message{Key: "k", Value: 1})
	}
	work := func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			x := 0
			for i := 0; i < 1000; i++ {
				x += i
			}
			_ = x
			return nil
		})
	}
	top, err := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs}).
		AddBolt("work", work, 2, ShuffleFrom("src")).
		Build(Config{TrackLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	p50, ok := stats.LatencyP50["work"]
	if !ok {
		t.Fatal("no latency recorded")
	}
	p99 := stats.LatencyP99["work"]
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", p50, p99)
	}
	// Disabled by default.
	top2, _ := NewBuilder().
		AddSpout("src", &sliceSpout{msgs: msgs[:10]}).
		AddBolt("work", work, 1, ShuffleFrom("src")).
		Build(Config{})
	if s := top2.Run(); s.LatencyP50 != nil {
		t.Fatal("latency tracked without opt-in")
	}
}

func TestMultipleSpouts(t *testing.T) {
	// Two spouts feeding one sink; both streams fully delivered and acked.
	mk := func(prefix string, n int) *sliceSpout {
		s := &sliceSpout{}
		for i := 0; i < n; i++ {
			s.msgs = append(s.msgs, Message{Key: fmt.Sprintf("%s%d", prefix, i), Value: 1})
		}
		return s
	}
	var total int64
	sink := func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	}
	top, err := NewBuilder().
		AddSpout("a", mk("a", 300)).
		AddSpout("b", mk("b", 500)).
		AddBolt("sink", sink, 3, FieldsFrom("a"), FieldsFrom("b")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := top.Run()
	if total != 800 {
		t.Fatalf("sink saw %d, want 800", total)
	}
	if stats.Acked != 800 {
		t.Fatalf("acked %d", stats.Acked)
	}
	if stats.Emitted["a"] != 300 || stats.Emitted["b"] != 500 {
		t.Fatalf("per-spout emitted wrong: %v", stats.Emitted)
	}
}

func TestEmptySpout(t *testing.T) {
	sink := func(int) Bolt {
		return BoltFunc(func(m Message, emit func(Message)) error { return nil })
	}
	for _, sem := range []Semantics{AtMostOnce, AtLeastOnce} {
		top, err := NewBuilder().
			AddSpout("empty", &sliceSpout{}).
			AddBolt("sink", sink, 2, ShuffleFrom("empty")).
			Build(Config{Semantics: sem})
		if err != nil {
			t.Fatal(err)
		}
		stats := top.Run() // must terminate promptly
		if stats.SpoutEmitted != 0 {
			t.Fatalf("%v: emitted %d from empty spout", sem, stats.SpoutEmitted)
		}
	}
}

func TestGroupingStrings(t *testing.T) {
	for g, want := range map[GroupingType]string{
		Shuffle: "shuffle", Fields: "fields", Global: "global", Broadcast: "broadcast",
	} {
		if g.String() != want {
			t.Fatalf("%d stringer %q", g, g.String())
		}
	}
	if AtLeastOnce.String() != "at-least-once" || AtMostOnce.String() != "at-most-once" {
		t.Fatal("semantics stringer wrong")
	}
}
