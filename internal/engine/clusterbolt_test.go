package engine

import (
	"fmt"
	"testing"

	"repro/internal/dstore"
	"repro/internal/store"
)

func clusterWithUniques(t *testing.T, nodes int) *dstore.Cluster {
	t.Helper()
	c, err := dstore.New(dstore.Config{
		Partitions: 8,
		Store:      store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	proto, err := store.NewDistinctProto(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterMetric("uniques", proto); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, err := c.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestNewClusterBoltValidation(t *testing.T) {
	if _, err := NewClusterBolt(nil, nil); err == nil {
		t.Fatal("nil router accepted")
	}
}

// A topology with parallel ClusterBolt tasks forwards a keyed stream to
// the cluster's router; after the run drains, every series is served by
// its owning node with the same answers StoreBolt would have produced on
// one local store.
func TestClusterBoltSinksTopologyStream(t *testing.T) {
	c := clusterWithUniques(t, 3)
	const tuples = 4000
	emitted := 0
	spout := SpoutFunc(func() (Message, bool) {
		if emitted >= tuples {
			return Message{}, false
		}
		i := emitted
		emitted++
		return Message{
			Key: fmt.Sprintf("page%d", i%8),
			Value: store.Observation{
				Metric: "uniques",
				Key:    fmt.Sprintf("page%d", i%8),
				Item:   fmt.Sprintf("user%d", i%900),
				Time:   int64(i % 300),
			},
		}, true
	})
	sink, err := NewClusterBolt(c.Router(), nil)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewBuilder().
		AddSpout("events", spout).
		AddBolt("cluster", sink.Factory(), 4, FieldsFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["cluster"] != 0 {
		t.Fatalf("topology failures: %+v", stats)
	}
	sink.Flush()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	cst := c.Stats()
	if got := cst.Applied + cst.Replayed; got != tuples {
		t.Fatalf("cluster consumed %d, want %d", got, tuples)
	}
	// Oracle: one store rebuilt from the same log.
	protos := map[string]store.Prototype{}
	p, _ := store.NewDistinctProto(12, 42)
	protos["uniques"] = p
	oracle, _, err := store.Rebuild(store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 100}, protos, c.Topic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("page%d", k)
		got, err := c.Router().QueryPoint("uniques", key, 0, 299)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.QueryPoint("uniques", key, 0, 299)
		if err != nil {
			t.Fatal(err)
		}
		g, w := got.(*store.Distinct).Estimate(), want.(*store.Distinct).Estimate()
		if g != w {
			t.Fatalf("%s: cluster %v != oracle %v", key, g, w)
		}
	}
}

// Messages the extractor rejects are skipped, not failed, matching
// StoreBolt's contract.
func TestClusterBoltSkipsForeignMessages(t *testing.T) {
	c := clusterWithUniques(t, 2)
	msgs := []Message{
		{Key: "a", Value: store.Observation{Metric: "uniques", Key: "a", Item: "x", Time: 1}},
		{Key: "b", Value: "not an observation"},
		{Key: "c", Value: store.Observation{Metric: "uniques", Key: "c", Item: "y", Time: 2}},
	}
	sink, _ := NewClusterBolt(c.Router(), nil)
	topo, err := NewBuilder().
		AddSpout("events", &sliceSpout{msgs: msgs}).
		AddBolt("cluster", sink.Factory(), 2, ShuffleFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["cluster"] != 0 {
		t.Fatalf("stats %+v", stats)
	}
	sink.Flush()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	cst := c.Stats()
	if got := cst.Applied + cst.Replayed; got != 2 {
		t.Fatalf("consumed %d, want 2", got)
	}
}
