package engine

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

func storeWithUniques(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.New(store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := store.NewDistinctProto(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterMetric("uniques", proto); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStoreBoltValidation(t *testing.T) {
	if _, err := NewStoreBolt(nil, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestDefaultExtract(t *testing.T) {
	obs := store.Observation{Metric: "m", Key: "k", Item: "i", Time: 3}
	if got, ok := DefaultExtract(Message{Value: obs}); !ok || got != obs {
		t.Fatalf("value extract: %+v %v", got, ok)
	}
	if got, ok := DefaultExtract(Message{Value: &obs}); !ok || got != obs {
		t.Fatalf("pointer extract: %+v %v", got, ok)
	}
	if _, ok := DefaultExtract(Message{Value: (*store.Observation)(nil)}); ok {
		t.Fatal("nil pointer extracted")
	}
	if _, ok := DefaultExtract(Message{Value: "not an observation"}); ok {
		t.Fatal("foreign value extracted")
	}
}

// A topology with parallel StoreBolt tasks sinks a keyed stream into the
// store; fields grouping keeps each series on one task, but the shared
// store instance must be safe either way because the store locks per
// shard, not per task.
func TestStoreBoltSinksTopologyStream(t *testing.T) {
	st := storeWithUniques(t)
	const tuples = 4000
	emitted := 0
	spout := SpoutFunc(func() (Message, bool) {
		if emitted >= tuples {
			return Message{}, false
		}
		i := emitted
		emitted++
		return Message{
			Key: fmt.Sprintf("page%d", i%8),
			Value: store.Observation{
				Metric: "uniques",
				Key:    fmt.Sprintf("page%d", i%8),
				Item:   fmt.Sprintf("user%d", i%900),
				Time:   int64(i % 300),
			},
		}, true
	})
	sink, err := NewStoreBolt(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewBuilder().
		AddSpout("events", spout).
		AddBolt("store", sink.Factory(), 4, FieldsFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["store"] != 0 {
		t.Fatalf("topology failures: %+v", stats)
	}
	got := st.Stats()
	if got.Observed != tuples {
		t.Fatalf("store observed %d, want %d", got.Observed, tuples)
	}
	if got.Entries != 8 {
		t.Fatalf("entries %d, want 8", got.Entries)
	}
	for k := 0; k < 8; k++ {
		syn, err := st.QueryPoint("uniques", fmt.Sprintf("page%d", k), 0, 299)
		if err != nil {
			t.Fatal(err)
		}
		est := syn.(*store.Distinct).Estimate()
		// gcd(8 pages, 900 users) = 4, so each page cycles through a
		// 225-user residue class; allow HLL error around that.
		if est < 200 || est > 250 {
			t.Fatalf("page%d distinct estimate %f", k, est)
		}
	}
}

// Messages the extractor rejects are skipped, not failed: the tuple tree
// still acks under at-least-once, so foreign messages cost nothing.
func TestStoreBoltSkipsForeignMessages(t *testing.T) {
	st := storeWithUniques(t)
	msgs := []Message{
		{Key: "a", Value: store.Observation{Metric: "uniques", Key: "a", Item: "x", Time: 1}},
		{Key: "b", Value: "not an observation"},
		{Key: "c", Value: store.Observation{Metric: "uniques", Key: "c", Item: "y", Time: 2}},
	}
	sink, _ := NewStoreBolt(st, nil)
	topo, err := NewBuilder().
		AddSpout("events", &sliceSpout{msgs: msgs}).
		AddBolt("store", sink.Factory(), 2, ShuffleFrom("events")).
		Build(Config{Semantics: AtLeastOnce})
	if err != nil {
		t.Fatal(err)
	}
	stats := topo.Run()
	if stats.Dropped != 0 || stats.Errors["store"] != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if got := st.Stats().Observed; got != 2 {
		t.Fatalf("observed %d, want 2", got)
	}
}
