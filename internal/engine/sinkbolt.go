// sinkbolt.go sinks topology streams into any serving backend — the one
// terminal bolt the platform design space needs now that the sharded
// store, the partitioned cluster and the Lambda Architecture all answer
// the same analytics.Backend contract. Where the engine previously grew
// one bolt per serving layer (StoreBolt, ClusterBolt, LambdaBolt — kept
// below as deprecated wrappers), a SinkBolt is written once against the
// contract: it extracts an observation per tuple and hands it to
// Backend.Observe, whatever partitioning, durability or batch/speed
// split lives behind it.
package engine

import (
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/store"
)

// SinkBolt applies each message's observation to a serving backend. It is
// a terminal bolt: it emits nothing downstream; concurrent query traffic
// reads the backend directly through analytics.Backend.Query.
type SinkBolt struct {
	be      analytics.Backend
	extract func(Message) (store.Observation, bool)
}

// NewSinkBolt returns a bolt sinking into be. extract maps a message to
// an observation, returning false to skip the message; nil uses
// DefaultExtract. One SinkBolt is safe to share across tasks (via a
// BoltFactory returning the same instance): every Backend implementation
// is safe for concurrent writers.
func NewSinkBolt(be analytics.Backend, extract func(Message) (store.Observation, bool)) (*SinkBolt, error) {
	if be == nil {
		return nil, core.Errf("SinkBolt", "backend", "must be non-nil")
	}
	if extract == nil {
		extract = DefaultExtract
	}
	return &SinkBolt{be: be, extract: extract}, nil
}

// DefaultExtract accepts messages whose Value already is a
// store.Observation (by value or pointer).
func DefaultExtract(m Message) (store.Observation, bool) {
	switch v := m.Value.(type) {
	case store.Observation:
		return v, true
	case *store.Observation:
		if v != nil {
			return *v, true
		}
	}
	return store.Observation{}, false
}

// Backend returns the serving backend the bolt sinks into.
func (b *SinkBolt) Backend() analytics.Backend { return b.be }

// Process implements Bolt. A backend error (unregistered metric, negative
// time) fails the tuple tree, so under at-least-once semantics a
// transient failure is replayed; skipped messages (extract false) and
// late drops (counted by the backend's store) are not failures.
func (b *SinkBolt) Process(m Message, _ func(Message)) error {
	obs, ok := b.extract(m)
	if !ok {
		return nil
	}
	return b.be.Observe(obs)
}

// Flush settles the backend's producer-side buffers, when it has any
// (the cluster router's per-partition append batches, Lambda's cluster
// mode); synchronous backends make it a no-op. Call it after a topology
// run completes so the tail of the stream is not left sitting in
// producer-side batches.
func (b *SinkBolt) Flush() {
	if f, ok := b.be.(analytics.Flusher); ok {
		f.Flush()
	}
}

// Factory returns a BoltFactory handing every task this same bolt,
// the common parallelism-N wiring for a SinkBolt.
func (b *SinkBolt) Factory() BoltFactory {
	return func(int) Bolt { return b }
}
