package engine

import (
	"fmt"
	"testing"

	"repro/internal/analytics"
	"repro/internal/dstore"
	"repro/internal/lambda"
	"repro/internal/store"
)

func sinkGeom() store.Config {
	return store.Config{Shards: 4, BucketWidth: 10, RingBuckets: 64}
}

// sinkBackends builds one harness per serving layer: the backend, a
// drain to reach read-your-writes, and a label.
func sinkBackends(t *testing.T) []struct {
	name  string
	be    analytics.Backend
	drain func() error
} {
	t.Helper()
	st, err := store.New(sinkGeom())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dstore.New(dstore.Config{Partitions: 4, Store: sinkGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	arch, err := lambda.New(lambda.Config{Partitions: 2, Batch: sinkGeom(), Speed: sinkGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { arch.Close() })
	return []struct {
		name  string
		be    analytics.Backend
		drain func() error
	}{
		{"store", st, func() error { return nil }},
		{"cluster-router", cl.Router(), func() error {
			if len(cl.NodeNames()) == 0 {
				if _, err := cl.StartNode(); err != nil {
					return err
				}
				if _, err := cl.StartNode(); err != nil {
					return err
				}
			}
			return cl.Drain()
		}},
		{"lambda", arch, arch.Drain},
	}
}

// One generic SinkBolt drives every serving backend through the same
// topology wiring — parallel bolt tasks hammer Observe concurrently, so
// this is also the -race pass over the Backend write paths (named
// TestSinkBolt for the CI race step).
func TestSinkBoltIntoEachBackend(t *testing.T) {
	const events = 3000
	hll, err := store.NewDistinctProto(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range sinkBackends(t) {
		t.Run(h.name, func(t *testing.T) {
			if err := h.be.RegisterMetric("uniques", hll); err != nil {
				t.Fatal(err)
			}
			sink, err := NewSinkBolt(h.be, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sink.Backend() == nil {
				t.Fatal("backend accessor lost the backend")
			}
			emitted := 0
			spout := SpoutFunc(func() (Message, bool) {
				if emitted >= events {
					return Message{}, false
				}
				i := emitted
				emitted++
				key := fmt.Sprintf("page%d", i%8)
				return Message{Key: key, Value: store.Observation{
					Metric: "uniques", Key: key, Item: fmt.Sprintf("u%d", i%500), Time: int64(i % 300),
				}}, true
			})
			topo, err := NewBuilder().
				AddSpout("events", spout).
				AddBolt("sink", sink.Factory(), 4, FieldsFrom("events")).
				Build(Config{Semantics: AtLeastOnce})
			if err != nil {
				t.Fatal(err)
			}
			stats := topo.Run()
			sink.Flush() // settles buffering backends; no-op for the store
			if err := h.drain(); err != nil {
				t.Fatal(err)
			}
			if stats.Acked != events {
				t.Fatalf("acked %d, want %d", stats.Acked, events)
			}
			if got := h.be.Stats().Observed; got != events {
				t.Fatalf("backend observed %d, want %d", got, events)
			}
			res, err := h.be.Query(store.QueryRequest{Metric: "uniques", AllKeys: true, From: 0, To: 300, Aggregate: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Distinct(); got < 450 || got > 550 {
				t.Fatalf("aggregate distinct %d, want ~500", got)
			}
		})
	}
}

// Skips and failures follow the bolt contract: extract false skips the
// tuple, a backend error fails the tuple tree.
func TestSinkBoltSkipAndError(t *testing.T) {
	st, err := store.New(sinkGeom())
	if err != nil {
		t.Fatal(err)
	}
	hll, _ := store.NewDistinctProto(10, 1)
	if err := st.RegisterMetric("uniques", hll); err != nil {
		t.Fatal(err)
	}
	sink, err := NewSinkBolt(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Non-observation values are skipped, not errors.
	if err := sink.Process(Message{Value: "not an observation"}, nil); err != nil {
		t.Fatalf("skip returned %v", err)
	}
	// Unknown metrics fail the tuple.
	err = sink.Process(Message{Value: store.Observation{Metric: "nope", Key: "k", Time: 0}}, nil)
	if err == nil {
		t.Fatal("unknown metric did not fail the tuple")
	}
	if _, err := NewSinkBolt(nil, nil); err == nil {
		t.Fatal("nil backend accepted")
	}
}
