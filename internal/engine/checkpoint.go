package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// CheckpointStore is a keyed, versioned state store — the in-process
// stand-in for MillWheel's BigTable checkpointing (see DESIGN.md). Bolts
// persist per-key state into it, and the Dedup wrapper uses it to suppress
// replayed tuples, turning at-least-once delivery into effectively-once
// state updates (MillWheel's "strong productions + dedup" recipe).
type CheckpointStore struct {
	mu      sync.RWMutex
	state   map[string][]byte
	version uint64
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{state: make(map[string][]byte)}
}

// Put stores value under key and returns the store's new version.
func (c *CheckpointStore) Put(key string, value []byte) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state[key] = append([]byte(nil), value...)
	c.version++
	return c.version
}

// Get returns the value under key.
func (c *CheckpointStore) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.state[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Version returns the store's current version.
func (c *CheckpointStore) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Snapshot returns a deep copy of the full state, for recovery tests.
func (c *CheckpointStore) Snapshot() map[string][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]byte, len(c.state))
	for k, v := range c.state {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Dedup wraps a bolt with replay suppression: each message is identified
// by a content hash (or by the IDFunc when supplied) and delivered to the
// inner bolt at most once per task. Combined with AtLeastOnce delivery the
// inner bolt observes each distinct message effectively once.
type Dedup struct {
	inner Bolt
	seen  map[uint64]struct{}
	idFn  func(Message) uint64
}

// NewDedup wraps inner with content-hash deduplication. idFn may be nil,
// in which case the key and the value's string form are hashed. Note the
// per-task scope: Dedup composes with Fields grouping (same key always
// reaches the same task), which is how the experiments use it.
func NewDedup(inner Bolt, idFn func(Message) uint64) (*Dedup, error) {
	if inner == nil {
		return nil, core.Errf("Dedup", "inner", "must be non-nil")
	}
	if idFn == nil {
		idFn = defaultMessageID
	}
	return &Dedup{inner: inner, seen: make(map[uint64]struct{}), idFn: idFn}, nil
}

func defaultMessageID(m Message) uint64 {
	h := hashutil.Sum64String(m.Key, 0xded09)
	if s, ok := m.Value.(string); ok {
		h ^= hashutil.Sum64String(s, 0x1d)
	} else if i, ok := m.Value.(int); ok {
		h ^= hashutil.Sum64Uint64(uint64(i), 0x1d)
	} else if u, ok := m.Value.(uint64); ok {
		h ^= hashutil.Sum64Uint64(u, 0x1d)
	}
	return h
}

// Process implements Bolt.
func (d *Dedup) Process(m Message, emit func(Message)) error {
	id := d.idFn(m)
	if _, dup := d.seen[id]; dup {
		return nil
	}
	if err := d.inner.Process(m, emit); err != nil {
		return err
	}
	// Mark seen only after successful processing so failed tuples are
	// reprocessed on replay.
	d.seen[id] = struct{}{}
	return nil
}
