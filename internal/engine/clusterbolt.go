// clusterbolt.go is the partitioned-cluster face of the generic serving
// sink — kept as a deprecated alias now that SinkBolt sinks into any
// analytics.Backend. A cluster-backed SinkBolt forwards observations to a
// dstore.Router, which partitions them by key onto the cluster's ingest
// log in batched appends; a processed tuple is durable once appended and
// becomes queryable when the owning node consumes it (Drain the cluster
// for read-your-writes), and SinkBolt.Flush settles the router's
// producer-side batches after a topology run.
package engine

import (
	"repro/internal/core"
	"repro/internal/dstore"
	"repro/internal/store"
)

// ClusterBolt forwards each message's observation to a cluster Router.
//
// Deprecated: ClusterBolt is SinkBolt; use NewSinkBolt with any
// analytics.Backend (wrap it with analytics.Instrument for serving
// telemetry).
type ClusterBolt = SinkBolt

// NewClusterBolt returns a bolt forwarding into r. extract maps a message
// to an observation, returning false to skip the message; nil uses
// DefaultExtract.
//
// Deprecated: use NewSinkBolt — a dstore.Router is an analytics.Backend, and
// analytics.Instrument adds telemetry to any of them.
func NewClusterBolt(r *dstore.Router, extract func(Message) (store.Observation, bool)) (*ClusterBolt, error) {
	if r == nil {
		// Checked here, not in NewSinkBolt: a typed nil pointer would
		// otherwise hide inside a non-nil interface value.
		return nil, core.Errf("ClusterBolt", "router", "must be non-nil")
	}
	return NewSinkBolt(r, extract)
}
