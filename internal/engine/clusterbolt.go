// clusterbolt.go sinks topology streams into the partitioned store
// cluster — the multi-node sibling of StoreBolt. Where a StoreBolt
// applies observations to one local store, a ClusterBolt forwards them to
// a dstore.Router, which partitions them by key onto the cluster's ingest
// log in batched appends; the cluster's nodes consume and serve them.
// This is the Section 3 shape end to end: topology -> log -> partitioned
// state, with the log (not the bolt) as the durability and recovery
// boundary.
package engine

import (
	"repro/internal/core"
	"repro/internal/dstore"
	"repro/internal/store"
)

// ClusterBolt forwards each message's observation to a cluster Router.
type ClusterBolt struct {
	r       *dstore.Router
	extract func(Message) (store.Observation, bool)
}

// NewClusterBolt returns a bolt forwarding into r. extract maps a message
// to an observation, returning false to skip the message; nil uses
// DefaultExtract. One ClusterBolt is safe to share across tasks (via a
// BoltFactory returning the same instance): the router buffers per
// partition under its own locks.
func NewClusterBolt(r *dstore.Router, extract func(Message) (store.Observation, bool)) (*ClusterBolt, error) {
	if r == nil {
		return nil, core.Errf("ClusterBolt", "router", "must be non-nil")
	}
	if extract == nil {
		extract = DefaultExtract
	}
	return &ClusterBolt{r: r, extract: extract}, nil
}

// Process implements Bolt. A router error (unregistered metric, negative
// time) fails the tuple tree, so under at-least-once semantics the tuple
// is replayed; skipped messages (extract false) are not failures. Note
// the bolt observes into the ingest log, not a store: a processed tuple
// is durable once appended, and becomes queryable when the owning node
// consumes it (Drain the cluster for read-your-writes).
func (b *ClusterBolt) Process(m Message, _ func(Message)) error {
	obs, ok := b.extract(m)
	if !ok {
		return nil
	}
	return b.r.Observe(obs)
}

// Flush appends the router's buffered observations to the log. Call it
// after a topology run completes so the tail of the stream is not left
// sitting in producer-side batches.
func (b *ClusterBolt) Flush() { b.r.Flush() }

// Factory returns a BoltFactory handing every task this same bolt,
// the common parallelism-N wiring for a ClusterBolt.
func (b *ClusterBolt) Factory() BoltFactory {
	return func(int) Bolt { return b }
}
