// lambdabolt.go is the Lambda-Architecture face of the generic serving
// sink — kept as a deprecated alias now that SinkBolt sinks into any
// analytics.Backend. A Lambda-backed SinkBolt drives Figure 1's step 1:
// every tuple's observation reaches Architecture.Observe, which appends
// to the immutable master topic AND lands the observation in the speed
// layer in one call — and because a rejected observation never reaches
// the master log, an at-least-once replay cannot double-append.
package engine

import (
	"repro/internal/core"
	"repro/internal/lambda"
	"repro/internal/store"
)

// LambdaBolt dispatches each message's observation into a Lambda
// architecture (master log + speed layer).
//
// Deprecated: LambdaBolt is SinkBolt; use NewSinkBolt with any
// analytics.Backend (wrap it with analytics.Instrument for serving
// telemetry).
type LambdaBolt = SinkBolt

// NewLambdaBolt returns a bolt sinking into arch. extract maps a message
// to an observation, returning false to skip the message; nil uses
// DefaultExtract.
//
// Deprecated: use NewSinkBolt — a lambda.Architecture is an
// analytics.Backend, and analytics.Instrument adds telemetry to any of
// them.
func NewLambdaBolt(arch *lambda.Architecture, extract func(Message) (store.Observation, bool)) (*LambdaBolt, error) {
	if arch == nil {
		// Checked here, not in NewSinkBolt: a typed nil pointer would
		// otherwise hide inside a non-nil interface value.
		return nil, core.Errf("LambdaBolt", "arch", "must be non-nil")
	}
	return NewSinkBolt(arch, extract)
}
