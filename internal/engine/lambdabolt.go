// lambdabolt.go sinks topology streams into the Lambda Architecture —
// Figure 1's step 1 (dispatch to both layers) as a terminal bolt. Where a
// StoreBolt feeds one speed-layer store and a ClusterBolt feeds a
// partitioned cluster's log, a LambdaBolt feeds lambda.Architecture's
// Append, which appends to the immutable master topic AND lands the
// observation in the speed layer in one call — so one topology stream
// drives batch recomputation and realtime serving from the same wire.
package engine

import (
	"repro/internal/core"
	"repro/internal/lambda"
	"repro/internal/store"
)

// LambdaBolt dispatches each message's observation into a Lambda
// architecture (master log + speed layer).
type LambdaBolt struct {
	arch    *lambda.Architecture
	extract func(Message) (store.Observation, bool)
}

// NewLambdaBolt returns a bolt sinking into arch. extract maps a message
// to an observation, returning false to skip the message; nil uses
// DefaultExtract. One LambdaBolt is safe to share across tasks (via a
// BoltFactory returning the same instance): Append is safe for concurrent
// writers in both speed-layer modes.
func NewLambdaBolt(arch *lambda.Architecture, extract func(Message) (store.Observation, bool)) (*LambdaBolt, error) {
	if arch == nil {
		return nil, core.Errf("LambdaBolt", "arch", "must be non-nil")
	}
	if extract == nil {
		extract = DefaultExtract
	}
	return &LambdaBolt{arch: arch, extract: extract}, nil
}

// Process implements Bolt. An append error (unregistered metric, negative
// time) fails the tuple tree, so under at-least-once semantics the tuple
// is replayed — and because a rejected observation never reaches the
// master log, the replay cannot double-append. Skipped messages (extract
// false) are not failures.
func (b *LambdaBolt) Process(m Message, _ func(Message)) error {
	obs, ok := b.extract(m)
	if !ok {
		return nil
	}
	return b.arch.Append(obs)
}

// Factory returns a BoltFactory handing every task this same bolt,
// the common parallelism-N wiring for a LambdaBolt.
func (b *LambdaBolt) Factory() BoltFactory {
	return func(int) Bolt { return b }
}
