package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashutil"
	"repro/internal/quantile"
)

// envelope is one in-flight tuple: the message plus its tuple-tree
// bookkeeping (zero under AtMostOnce).
type envelope struct {
	msg  Message
	root uint64
	id   uint64
}

// component is a running spout or bolt with its task channels and
// downstream links.
type component struct {
	name  string
	tasks []chan envelope
	outs  []*outLink
	// metrics (atomics; one slot per component keeps the hot path simple)
	processed uint64
	emitted   uint64
	errors    uint64
	// latency percentiles (nil unless Config.TrackLatency)
	latMu sync.Mutex
	lat   *quantile.GK
}

type outLink struct {
	grouping GroupingType
	dest     *component
	rr       uint64 // round-robin cursor for Shuffle
}

// Topology is a built, runnable dataflow.
type Topology struct {
	cfg        Config
	spoutDecls []*spoutDecl
	boltDecls  []*boltDecl
	components map[string]*component

	idGen        uint64
	inflight     int64
	activeSpouts int32
	finishOnce   sync.Once
	quiesced     chan struct{}
	ack          *acker

	stats Stats
	// feeders by root id for ack/fail routing (single spout per root)
	feederMu sync.Mutex
	feeders  map[uint64]*feeder
}

// Stats summarizes a topology run.
type Stats struct {
	SpoutEmitted uint64            // root tuples emitted (including replays)
	Acked        uint64            // tuple trees fully processed
	Replayed     uint64            // failed trees re-emitted
	Dropped      uint64            // trees dropped after MaxRetries
	Processed    map[string]uint64 // per-component processed tuples
	Emitted      map[string]uint64 // per-component emitted tuples
	Errors       map[string]uint64 // per-component bolt errors
	// LatencyP50/P99 hold per-bolt processing latency in microseconds
	// (populated only when Config.TrackLatency is set).
	LatencyP50 map[string]float64
	LatencyP99 map[string]float64
}

func newTopology(b *Builder, cfg Config) *Topology {
	t := &Topology{
		cfg:        cfg,
		spoutDecls: b.spouts,
		boltDecls:  b.bolts,
		components: make(map[string]*component),
		quiesced:   make(chan struct{}),
		feeders:    make(map[uint64]*feeder),
	}
	return t
}

func (t *Topology) nextID() uint64 {
	id := hashutil.Mix64(atomic.AddUint64(&t.idGen, 1))
	if id == 0 {
		id = 1
	}
	return id
}

// Run executes the topology until every spout is exhausted and every
// in-flight tuple is processed (and, under AtLeastOnce, every tuple tree
// acked or dropped). It returns the run's statistics.
func (t *Topology) Run() Stats {
	// Materialize components.
	for _, sd := range t.spoutDecls {
		t.components[sd.name] = &component{name: sd.name}
	}
	for _, bd := range t.boltDecls {
		c := &component{name: bd.name}
		for i := 0; i < bd.parallelism; i++ {
			c.tasks = append(c.tasks, make(chan envelope, t.cfg.QueueSize))
		}
		if t.cfg.TrackLatency {
			c.lat, _ = quantile.NewGK(0.01)
		}
		t.components[bd.name] = c
	}
	// Wire links.
	for _, bd := range t.boltDecls {
		dest := t.components[bd.name]
		for _, in := range bd.inputs {
			src := t.components[in.from]
			src.outs = append(src.outs, &outLink{grouping: in.grouping, dest: dest})
		}
	}
	if t.cfg.Semantics == AtLeastOnce {
		t.ack = newAcker(t.onTreeDone, t.onTreeFail)
	}

	// Start bolt tasks.
	var boltWG sync.WaitGroup
	for _, bd := range t.boltDecls {
		c := t.components[bd.name]
		for taskID := range c.tasks {
			boltWG.Add(1)
			go t.runBoltTask(&boltWG, bd, c, taskID)
		}
	}

	// Start spout feeders.
	var spoutWG sync.WaitGroup
	atomic.StoreInt32(&t.activeSpouts, int32(len(t.spoutDecls)))
	for _, sd := range t.spoutDecls {
		spoutWG.Add(1)
		go t.runFeeder(&spoutWG, sd)
	}

	spoutWG.Wait()
	<-t.quiesced
	// Quiescent: close every bolt queue so tasks exit.
	for _, bd := range t.boltDecls {
		for _, ch := range t.components[bd.name].tasks {
			close(ch)
		}
	}
	boltWG.Wait()

	// Collect stats.
	t.stats.Processed = make(map[string]uint64)
	t.stats.Emitted = make(map[string]uint64)
	t.stats.Errors = make(map[string]uint64)
	if t.cfg.TrackLatency {
		t.stats.LatencyP50 = make(map[string]float64)
		t.stats.LatencyP99 = make(map[string]float64)
	}
	for name, c := range t.components {
		t.stats.Processed[name] = atomic.LoadUint64(&c.processed)
		t.stats.Emitted[name] = atomic.LoadUint64(&c.emitted)
		t.stats.Errors[name] = atomic.LoadUint64(&c.errors)
		if c.lat != nil {
			t.stats.LatencyP50[name] = c.lat.Query(0.5)
			t.stats.LatencyP99[name] = c.lat.Query(0.99)
		}
	}
	return t.stats
}

func (t *Topology) maybeFinish() {
	if atomic.LoadInt64(&t.inflight) == 0 && atomic.LoadInt32(&t.activeSpouts) == 0 {
		t.finishOnce.Do(func() { close(t.quiesced) })
	}
}

// deliver routes one message from src to every downstream link, tracking
// the tuple tree when acking is on. It returns the number of copies sent.
func (t *Topology) deliver(src *component, msg Message, root uint64) int {
	copies := 0
	for _, link := range src.outs {
		switch link.grouping {
		case Shuffle:
			idx := int(atomic.AddUint64(&link.rr, 1)) % len(link.dest.tasks)
			t.send(link.dest, idx, msg, root)
			copies++
		case Fields:
			idx := int(hashutil.Sum64String(msg.Key, 0xf1e1d5) % uint64(len(link.dest.tasks)))
			t.send(link.dest, idx, msg, root)
			copies++
		case Global:
			t.send(link.dest, 0, msg, root)
			copies++
		case Broadcast:
			for idx := range link.dest.tasks {
				t.send(link.dest, idx, msg, root)
				copies++
			}
		}
	}
	return copies
}

func (t *Topology) send(dest *component, task int, msg Message, root uint64) {
	id := uint64(0)
	if t.ack != nil && root != 0 {
		id = t.nextID()
		t.ack.emit(root, id)
	}
	atomic.AddInt64(&t.inflight, 1)
	dest.tasks[task] <- envelope{msg: msg, root: root, id: id}
}

func (t *Topology) runBoltTask(wg *sync.WaitGroup, bd *boltDecl, c *component, taskID int) {
	defer wg.Done()
	bolt := bd.factory(taskID)
	for env := range c.tasks[taskID] {
		emit := func(m Message) {
			atomic.AddUint64(&c.emitted, 1)
			t.deliver(c, m, env.root)
		}
		var start time.Time
		if c.lat != nil {
			start = time.Now()
		}
		err := bolt.Process(env.msg, emit)
		if c.lat != nil {
			us := float64(time.Since(start).Nanoseconds()) / 1000
			c.latMu.Lock()
			c.lat.Update(us)
			c.latMu.Unlock()
		}
		atomic.AddUint64(&c.processed, 1)
		if t.ack != nil && env.root != 0 {
			if err != nil {
				atomic.AddUint64(&c.errors, 1)
				t.ack.fail(env.root)
			} else {
				t.ack.ack(env.root, env.id)
			}
		} else if err != nil {
			atomic.AddUint64(&c.errors, 1)
		}
		atomic.AddInt64(&t.inflight, -1)
		t.maybeFinish()
	}
}

// feeder drives one spout: new tuples from Next(), replays from failed
// trees, throttled by MaxPending outstanding roots.
type feeder struct {
	t       *Topology
	decl    *spoutDecl
	comp    *component
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64]Message
	retries map[uint64]int
	replay  []uint64
}

func (t *Topology) runFeeder(wg *sync.WaitGroup, sd *spoutDecl) {
	defer wg.Done()
	f := &feeder{
		t:       t,
		decl:    sd,
		comp:    t.components[sd.name],
		pending: make(map[uint64]Message),
		retries: make(map[uint64]int),
	}
	f.cond = sync.NewCond(&f.mu)

	if t.cfg.Semantics == AtMostOnce {
		for {
			msg, ok := sd.spout.Next()
			if !ok {
				break
			}
			atomic.AddUint64(&t.stats.SpoutEmitted, 1)
			atomic.AddUint64(&f.comp.emitted, 1)
			t.deliver(f.comp, msg, 0)
		}
		atomic.AddInt32(&t.activeSpouts, -1)
		t.maybeFinish()
		return
	}

	exhausted := false
	for {
		f.mu.Lock()
		for len(f.replay) == 0 && len(f.pending) >= t.cfg.MaxPending {
			f.cond.Wait()
		}
		if len(f.replay) > 0 {
			oldRoot := f.replay[0]
			f.replay = f.replay[1:]
			msg, live := f.pending[oldRoot]
			var tries int
			if live {
				tries = f.retries[oldRoot]
				delete(f.pending, oldRoot)
				delete(f.retries, oldRoot)
			}
			f.mu.Unlock()
			if live {
				// Replay under a FRESH root id: envelopes of the failed
				// attempt may still be in flight, and their late acks must
				// not XOR into the new tree.
				t.dropFeeder(oldRoot)
				newRoot := t.nextID()
				f.mu.Lock()
				f.pending[newRoot] = msg
				f.retries[newRoot] = tries
				f.mu.Unlock()
				t.registerFeeder(newRoot, f)
				atomic.AddUint64(&t.stats.Replayed, 1)
				f.emitRoot(msg, newRoot)
			}
			continue
		}
		f.mu.Unlock()
		if exhausted {
			// Wait for the pending set to drain, serving replays as they
			// arrive.
			f.mu.Lock()
			for len(f.pending) > 0 && len(f.replay) == 0 {
				f.cond.Wait()
			}
			done := len(f.pending) == 0
			f.mu.Unlock()
			if done {
				break
			}
			continue
		}
		msg, ok := sd.spout.Next()
		if !ok {
			exhausted = true
			continue
		}
		root := t.nextID()
		f.mu.Lock()
		f.pending[root] = msg
		f.mu.Unlock()
		t.registerFeeder(root, f)
		atomic.AddUint64(&t.stats.SpoutEmitted, 1)
		atomic.AddUint64(&f.comp.emitted, 1)
		f.emitRoot(msg, root)
	}
	atomic.AddInt32(&t.activeSpouts, -1)
	t.maybeFinish()
}

// emitRoot creates the tuple tree and delivers the root message. The tree
// entry carries a virtual id (the root itself) during delivery so the tree
// cannot complete while copies are still being enqueued.
func (f *feeder) emitRoot(msg Message, root uint64) {
	f.t.ack.create(root)
	f.t.deliver(f.comp, msg, root)
	f.t.ack.ack(root, root)
}

func (t *Topology) registerFeeder(root uint64, f *feeder) {
	t.feederMu.Lock()
	t.feeders[root] = f
	t.feederMu.Unlock()
}

func (t *Topology) takeFeeder(root uint64) *feeder {
	t.feederMu.Lock()
	f := t.feeders[root]
	t.feederMu.Unlock()
	return f
}

func (t *Topology) dropFeeder(root uint64) {
	t.feederMu.Lock()
	delete(t.feeders, root)
	t.feederMu.Unlock()
}

// onTreeDone is the acker completion callback.
func (t *Topology) onTreeDone(root uint64) {
	f := t.takeFeeder(root)
	if f == nil {
		return
	}
	t.dropFeeder(root)
	atomic.AddUint64(&t.stats.Acked, 1)
	f.mu.Lock()
	delete(f.pending, root)
	delete(f.retries, root)
	f.cond.Signal()
	f.mu.Unlock()
}

// onTreeFail is the acker failure callback: requeue for replay or drop
// after MaxRetries.
func (t *Topology) onTreeFail(root uint64) {
	f := t.takeFeeder(root)
	if f == nil {
		return
	}
	drop := false
	f.mu.Lock()
	f.retries[root]++
	if f.retries[root] > t.cfg.MaxRetries {
		delete(f.pending, root)
		delete(f.retries, root)
		drop = true
	} else {
		f.replay = append(f.replay, root)
	}
	f.cond.Signal()
	f.mu.Unlock()
	if drop {
		t.dropFeeder(root)
		atomic.AddUint64(&t.stats.Dropped, 1)
	}
}
