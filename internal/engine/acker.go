package engine

import "sync"

// acker implements Storm's XOR tuple-tree tracking: every root tuple owns
// an entry whose value is the XOR of all tuple ids that have been emitted
// into the tree but not yet acked. Emitting a child XORs its id in; acking
// a tuple XORs its id out; when the value returns to zero the whole tree
// has been fully processed and the spout is notified.
//
// The ids are pseudo-random 64-bit values, so a transient false zero has
// probability ~2^-64 per tree — the same probabilistic argument the Storm
// paper makes.
type acker struct {
	mu      sync.Mutex
	entries map[uint64]uint64 // root id -> xor of outstanding tuple ids
	onDone  func(root uint64)
	onFail  func(root uint64)
}

func newAcker(onDone, onFail func(root uint64)) *acker {
	return &acker{entries: make(map[uint64]uint64), onDone: onDone, onFail: onFail}
}

// create registers a new tuple tree rooted at root, whose first tuple id
// is also root.
func (a *acker) create(root uint64) {
	a.mu.Lock()
	a.entries[root] = root
	a.mu.Unlock()
}

// emit records that tuple id joined the tree of root.
func (a *acker) emit(root, id uint64) {
	a.mu.Lock()
	if _, live := a.entries[root]; live {
		a.entries[root] ^= id
	}
	a.mu.Unlock()
}

// ack records that tuple id finished processing; when the tree empties the
// completion callback fires (outside the lock).
func (a *acker) ack(root, id uint64) {
	a.mu.Lock()
	v, live := a.entries[root]
	if !live {
		a.mu.Unlock()
		return
	}
	v ^= id
	if v == 0 {
		delete(a.entries, root)
		a.mu.Unlock()
		a.onDone(root)
		return
	}
	a.entries[root] = v
	a.mu.Unlock()
}

// fail abandons the tree of root; the failure callback fires once (outside
// the lock), and late acks for the tree are ignored.
func (a *acker) fail(root uint64) {
	a.mu.Lock()
	_, live := a.entries[root]
	if live {
		delete(a.entries, root)
	}
	a.mu.Unlock()
	if live {
		a.onFail(root)
	}
}

// pending returns the number of live tuple trees.
func (a *acker) pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}
