// Package engine is an in-process stream-processing engine embodying the
// design space of the tutorial's Table 2 platforms:
//
//   - Storm/Heron topology model: spouts (sources) and bolts
//     (computations) wired into a DAG, each component running as a set of
//     parallel tasks (goroutines, one per task — Heron's
//     process-per-task argument applied at goroutine granularity, versus
//     Storm's multiplexed workers).
//   - Stream groupings: shuffle, fields (key-hash), global, broadcast —
//     the routing vocabulary shared by S4, Storm and MillWheel.
//   - Delivery semantics: at-most-once (no tracking) and at-least-once via
//     Storm's XOR ack tracking with spout-side replay; effectively-once is
//     layered on top by the Dedup bolt wrapper (checkpoint.go), the
//     MillWheel strategy of strong productions + dedup.
//   - Backpressure: bounded task queues; a slow bolt stalls its upstream
//     rather than exhausting memory (Heron-style backpressure rather than
//     Storm-style drop).
//
// The engine is deliberately in-process (see DESIGN.md substitutions): the
// semantics the tutorial compares platforms on — duplication, loss,
// ordering per key, throughput shape under acking — are protocol
// properties, observable without a network.
package engine

import (
	"fmt"

	"repro/internal/core"
)

// Message is one data tuple flowing through a topology.
type Message struct {
	Key   string
	Value any
}

// Spout produces the input stream. Next returns the next message and true,
// or false when the source is exhausted. Spouts are pulled by a single
// goroutine per spout component; they need not be thread-safe.
type Spout interface {
	Next() (Message, bool)
}

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func() (Message, bool)

// Next implements Spout.
func (f SpoutFunc) Next() (Message, bool) { return f() }

// Bolt processes one message and may emit any number of downstream
// messages via emit. Returning an error fails the tuple tree: under
// at-least-once semantics the root tuple is replayed, under at-most-once
// it is dropped. Each bolt *instance* is driven by exactly one goroutine,
// so per-instance state needs no locking (the actor model of Akka/S4).
type Bolt interface {
	Process(m Message, emit func(Message)) error
}

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(m Message, emit func(Message)) error

// Process implements Bolt.
func (f BoltFunc) Process(m Message, emit func(Message)) error { return f(m, emit) }

// BoltFactory builds one Bolt instance per task, letting each task own
// private state (counts, windows, sketches).
type BoltFactory func(task int) Bolt

// GroupingType selects how a stream's messages are routed to the
// downstream component's tasks.
type GroupingType int

const (
	// Shuffle distributes messages round-robin across tasks.
	Shuffle GroupingType = iota
	// Fields routes by hash of Message.Key: all messages with equal keys
	// reach the same task (the grouping per-key state requires).
	Fields
	// Global routes everything to task 0.
	Global
	// Broadcast copies every message to every task.
	Broadcast
)

// String names the grouping for metrics output.
func (g GroupingType) String() string {
	switch g {
	case Shuffle:
		return "shuffle"
	case Fields:
		return "fields"
	case Global:
		return "global"
	case Broadcast:
		return "broadcast"
	}
	return "unknown"
}

// Semantics selects the delivery guarantee.
type Semantics int

const (
	// AtMostOnce does no tracking: failures lose tuples.
	AtMostOnce Semantics = iota
	// AtLeastOnce tracks tuple trees with XOR acking and replays failed
	// roots from the spout: failures duplicate rather than lose.
	AtLeastOnce
)

// String names the semantics for metrics output.
func (s Semantics) String() string {
	if s == AtLeastOnce {
		return "at-least-once"
	}
	return "at-most-once"
}

// Config tunes a topology run.
type Config struct {
	// Semantics selects the delivery guarantee (default AtMostOnce).
	Semantics Semantics
	// QueueSize bounds each task's input queue (default 256). Smaller
	// queues apply backpressure sooner.
	QueueSize int
	// MaxPending bounds unacked spout tuples under AtLeastOnce (default
	// 1024) — Storm's max.spout.pending throttle.
	MaxPending int
	// MaxRetries bounds replays per root tuple under AtLeastOnce (default
	// 3); a root exceeding it is dropped and counted in Stats.Dropped.
	MaxRetries int
	// TrackLatency enables per-component processing-latency percentiles
	// in Stats (recorded with a Greenwald–Khanna summary — the library
	// dogfooding its own quantile sketch, as Heron's metrics manager
	// does). Costs one timestamp pair and a locked sketch update per
	// tuple.
	TrackLatency bool
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1024
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	return c
}

// Builder assembles a topology.
type Builder struct {
	spouts []*spoutDecl
	bolts  []*boltDecl
	names  map[string]bool
	err    error
}

type spoutDecl struct {
	name  string
	spout Spout
}

type boltDecl struct {
	name        string
	factory     BoltFactory
	parallelism int
	inputs      []inputDecl
}

type inputDecl struct {
	from     string
	grouping GroupingType
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{names: map[string]bool{}}
}

// AddSpout registers a source component.
func (b *Builder) AddSpout(name string, s Spout) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" || b.names[name] {
		b.err = core.Errf("Builder", "name", "spout %q empty or duplicate", name)
		return b
	}
	if s == nil {
		b.err = core.Errf("Builder", "spout", "%q is nil", name)
		return b
	}
	b.names[name] = true
	b.spouts = append(b.spouts, &spoutDecl{name: name, spout: s})
	return b
}

// AddBolt registers a processing component with the given parallelism and
// input subscriptions.
func (b *Builder) AddBolt(name string, factory BoltFactory, parallelism int, inputs ...Input) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" || b.names[name] {
		b.err = core.Errf("Builder", "name", "bolt %q empty or duplicate", name)
		return b
	}
	if factory == nil {
		b.err = core.Errf("Builder", "factory", "%q is nil", name)
		return b
	}
	if parallelism <= 0 {
		b.err = core.Errf("Builder", "parallelism", "%q: %d must be positive", name, parallelism)
		return b
	}
	if len(inputs) == 0 {
		b.err = core.Errf("Builder", "inputs", "%q subscribes to nothing", name)
		return b
	}
	d := &boltDecl{name: name, factory: factory, parallelism: parallelism}
	for _, in := range inputs {
		d.inputs = append(d.inputs, inputDecl{from: in.From, grouping: in.Grouping})
	}
	b.names[name] = true
	b.bolts = append(b.bolts, d)
	return b
}

// Input subscribes a bolt to an upstream component's output stream.
type Input struct {
	From     string
	Grouping GroupingType
}

// ShuffleFrom subscribes with shuffle grouping.
func ShuffleFrom(name string) Input { return Input{From: name, Grouping: Shuffle} }

// FieldsFrom subscribes with fields (key-hash) grouping.
func FieldsFrom(name string) Input { return Input{From: name, Grouping: Fields} }

// GlobalFrom subscribes with global grouping.
func GlobalFrom(name string) Input { return Input{From: name, Grouping: Global} }

// BroadcastFrom subscribes with broadcast grouping.
func BroadcastFrom(name string) Input { return Input{From: name, Grouping: Broadcast} }

// Build validates the DAG and returns a runnable Topology.
func (b *Builder) Build(cfg Config) (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.spouts) == 0 {
		return nil, core.Errf("Builder", "spouts", "topology has no spouts")
	}
	// Every bolt input must reference a declared component, and the
	// subscription graph must be acyclic (checked by topological order).
	for _, d := range b.bolts {
		for _, in := range d.inputs {
			if !b.names[in.from] {
				return nil, fmt.Errorf("engine: bolt %q subscribes to unknown component %q", d.name, in.from)
			}
		}
	}
	if err := b.checkAcyclic(); err != nil {
		return nil, err
	}
	return newTopology(b, cfg.withDefaults()), nil
}

func (b *Builder) checkAcyclic() error {
	adj := map[string][]string{}
	indeg := map[string]int{}
	for _, d := range b.bolts {
		indeg[d.name] += 0
		for _, in := range d.inputs {
			adj[in.from] = append(adj[in.from], d.name)
			indeg[d.name]++
		}
	}
	queue := []string{}
	for _, s := range b.spouts {
		queue = append(queue, s.name)
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if visited != len(b.spouts)+len(b.bolts) {
		return fmt.Errorf("engine: topology contains a cycle or unreachable bolt")
	}
	return nil
}
