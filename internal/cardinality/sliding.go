package cardinality

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// SlidingHLL estimates the number of distinct items seen within the last W
// ticks of stream time, following the "Sliding HyperLogLog" construction
// (Chabchoub–Hébrail) the survey cites: each register keeps a list of
// (timestamp, rank) pairs that form the "future possible maxima" — an entry
// survives only while no younger entry has an equal-or-higher rank. A query
// at time t over window w takes the max rank among entries younger than t-w.
//
// The LFPM lists are logarithmic in window size in expectation, so the
// total footprint stays near the dense HLL's while supporting *any* window
// length up to W at query time.
type SlidingHLL struct {
	precision uint8
	seed      uint64
	window    uint64 // maximum queryable window, in ticks
	now       uint64
	items     uint64
	lfpm      [][]tsRank // per-register list of future possible maxima
}

type tsRank struct {
	ts   uint64
	rank uint8
}

// NewSlidingHLL returns a sliding-window HLL supporting windows up to
// maxWindow ticks.
func NewSlidingHLL(precision uint8, maxWindow uint64, seed uint64) (*SlidingHLL, error) {
	if precision < 4 || precision > 16 {
		return nil, core.Errf("SlidingHLL", "precision", "%d not in [4,16]", precision)
	}
	if maxWindow == 0 {
		return nil, core.Errf("SlidingHLL", "maxWindow", "must be positive")
	}
	return &SlidingHLL{
		precision: precision,
		seed:      seed,
		window:    maxWindow,
		lfpm:      make([][]tsRank, 1<<precision),
	}, nil
}

// Advance moves stream time forward one tick.
func (s *SlidingHLL) Advance() { s.now++ }

// Update adds an item at the current tick.
func (s *SlidingHLL) Update(item []byte) { s.UpdateHash(hashutil.Sum64(item, s.seed)) }

// UpdateUint64 adds an integer item at the current tick.
func (s *SlidingHLL) UpdateUint64(x uint64) { s.UpdateHash(hashutil.Sum64Uint64(x, s.seed)) }

// UpdateHash adds a pre-hashed item at the current tick.
func (s *SlidingHLL) UpdateHash(hv uint64) {
	s.items++
	idx := hv >> (64 - s.precision)
	rest := hv<<s.precision | 1<<(s.precision-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1

	list := s.lfpm[idx]
	// Drop entries that this newer, >=rank observation dominates, and
	// entries that have aged out of the maximum window.
	kept := list[:0]
	cutoff := uint64(0)
	if s.now > s.window {
		cutoff = s.now - s.window
	}
	for _, e := range list {
		if e.rank <= rank || e.ts < cutoff {
			continue
		}
		kept = append(kept, e)
	}
	kept = append(kept, tsRank{ts: s.now, rank: rank})
	s.lfpm[idx] = kept
}

// EstimateWindow returns the distinct-count estimate over the last w ticks.
// w is clamped to the configured maximum window.
func (s *SlidingHLL) EstimateWindow(w uint64) float64 {
	if w > s.window {
		w = s.window
	}
	cutoff := uint64(0)
	if s.now >= w {
		cutoff = s.now - w
	}
	m := float64(len(s.lfpm))
	sum := 0.0
	zeros := 0
	for _, list := range s.lfpm {
		best := uint8(0)
		for _, e := range list {
			if e.ts >= cutoff && e.rank > best {
				best = e.rank
			}
		}
		sum += 1 / float64(uint64(1)<<best)
		if best == 0 {
			zeros++
		}
	}
	raw := alpha(len(s.lfpm)) * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Items returns the number of updates absorbed.
func (s *SlidingHLL) Items() uint64 { return s.items }

// Bytes returns the LFPM footprint.
func (s *SlidingHLL) Bytes() int {
	total := 24
	for _, list := range s.lfpm {
		total += len(list) * 9
	}
	return total
}

// MaxListLen reports the longest per-register LFPM list, a diagnostic for
// the expected-logarithmic space bound.
func (s *SlidingHLL) MaxListLen() int {
	max := 0
	for _, list := range s.lfpm {
		if len(list) > max {
			max = len(list)
		}
	}
	return max
}

// ListLenPercentile returns the p-th percentile (0..100) of LFPM list
// lengths across registers.
func (s *SlidingHLL) ListLenPercentile(p float64) int {
	lens := make([]int, len(s.lfpm))
	for i, list := range s.lfpm {
		lens[i] = len(list)
	}
	sort.Ints(lens)
	idx := int(p / 100 * float64(len(lens)-1))
	return lens[idx]
}
