package cardinality

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func relErr(est float64, truth int) float64 {
	return math.Abs(est-float64(truth)) / float64(truth)
}

func TestHLLParamValidation(t *testing.T) {
	if _, err := NewHyperLogLog(3, 1); err == nil {
		t.Fatal("precision 3 accepted")
	}
	if _, err := NewHyperLogLog(19, 1); err == nil {
		t.Fatal("precision 19 accepted")
	}
	if _, err := NewHyperLogLog(12, 1); err != nil {
		t.Fatalf("valid precision rejected: %v", err)
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000} {
		h, _ := NewHyperLogLog(12, 42)
		for _, x := range workload.Distinct(workload.NewRNG(1), n) {
			h.UpdateUint64(x)
		}
		// p=12 -> 4096 registers -> stderr ~1.6%; allow 5 sigma.
		if e := relErr(h.Estimate(), n); e > 0.08 {
			t.Fatalf("n=%d: relative error %.3f too large", n, e)
		}
	}
}

func TestHLLDuplicateInsensitive(t *testing.T) {
	h1, _ := NewHyperLogLog(10, 7)
	h2, _ := NewHyperLogLog(10, 7)
	for i := uint64(0); i < 1000; i++ {
		h1.UpdateUint64(i)
		for rep := 0; rep < 5; rep++ {
			h2.UpdateUint64(i)
		}
	}
	if h1.Estimate() != h2.Estimate() {
		t.Fatalf("duplicates changed estimate: %v vs %v", h1.Estimate(), h2.Estimate())
	}
}

func TestHLLSmallRangeExact(t *testing.T) {
	h, _ := NewHyperLogLog(12, 7)
	for i := uint64(0); i < 50; i++ {
		h.UpdateUint64(i)
	}
	if e := relErr(h.Estimate(), 50); e > 0.05 {
		t.Fatalf("small-range correction inaccurate: %v", h.Estimate())
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	full, _ := NewHyperLogLog(11, 9)
	a, _ := NewHyperLogLog(11, 9)
	b, _ := NewHyperLogLog(11, 9)
	stream := workload.Distinct(workload.NewRNG(2), 20000)
	for i, x := range stream {
		full.UpdateUint64(x)
		if i%2 == 0 {
			a.UpdateUint64(x)
		} else {
			b.UpdateUint64(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != full.Estimate() {
		t.Fatalf("merge not union-equivalent: %v vs %v", a.Estimate(), full.Estimate())
	}
	if a.Items() != full.Items() {
		t.Fatalf("merged item count wrong: %d vs %d", a.Items(), full.Items())
	}
}

func TestHLLMergeIncompatible(t *testing.T) {
	a, _ := NewHyperLogLog(10, 1)
	b, _ := NewHyperLogLog(11, 1)
	c, _ := NewHyperLogLog(10, 2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merged different precisions")
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("merged different seeds")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merged nil")
	}
}

func TestHLLSerializationRoundTrip(t *testing.T) {
	h, _ := NewHyperLogLog(10, 5)
	for i := uint64(0); i < 5000; i++ {
		h.UpdateUint64(i)
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h2 HyperLogLog
	if err := h2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if h2.Estimate() != h.Estimate() || h2.Items() != h.Items() {
		t.Fatal("round trip changed sketch")
	}
	if err := h2.UnmarshalBinary(data[:10]); err == nil {
		t.Fatal("truncated decode accepted")
	}
	data[0] = 3
	if err := h2.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupt precision accepted")
	}
}

func TestLinearCounterAccuracyBelowCapacity(t *testing.T) {
	lc, _ := NewLinearCounter(1<<16, 3)
	n := 10000
	for _, x := range workload.Distinct(workload.NewRNG(3), n) {
		lc.UpdateUint64(x)
	}
	if e := relErr(lc.Estimate(), n); e > 0.05 {
		t.Fatalf("linear counting error %.3f too large", e)
	}
}

func TestLinearCounterSaturationFinite(t *testing.T) {
	lc, _ := NewLinearCounter(64, 3)
	for i := uint64(0); i < 100000; i++ {
		lc.UpdateUint64(i)
	}
	if est := lc.Estimate(); math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("saturated estimate not finite: %v", est)
	}
}

func TestLinearCounterMerge(t *testing.T) {
	a, _ := NewLinearCounter(1<<14, 1)
	b, _ := NewLinearCounter(1<<14, 1)
	full, _ := NewLinearCounter(1<<14, 1)
	for i := uint64(0); i < 2000; i++ {
		full.UpdateUint64(i)
		if i%2 == 0 {
			a.UpdateUint64(i)
		} else {
			b.UpdateUint64(i)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != full.Estimate() {
		t.Fatal("linear counter merge not union-equivalent")
	}
}

func TestPCSAAccuracy(t *testing.T) {
	p, _ := NewPCSA(256, 11)
	n := 100000
	for _, x := range workload.Distinct(workload.NewRNG(4), n) {
		p.UpdateUint64(x)
	}
	// PCSA stderr ~0.78/sqrt(256) ~ 5%; allow generous slack.
	if e := relErr(p.Estimate(), n); e > 0.25 {
		t.Fatalf("PCSA error %.3f too large (est %v)", e, p.Estimate())
	}
}

func TestLogLogAccuracy(t *testing.T) {
	l, _ := NewLogLog(12, 13)
	n := 100000
	for _, x := range workload.Distinct(workload.NewRNG(5), n) {
		l.UpdateUint64(x)
	}
	// LogLog stderr ~1.30/sqrt(4096) ~ 2%; allow 6 sigma.
	if e := relErr(l.Estimate(), n); e > 0.15 {
		t.Fatalf("LogLog error %.3f too large (est %v)", e, l.Estimate())
	}
}

func TestLogLogVsHLLOrdering(t *testing.T) {
	// The survey's qualitative claim: HLL refines LogLog at equal m.
	// Averaged over several seeds, HLL error should not exceed LogLog's
	// by more than noise.
	var llErr, hllErr float64
	const trials = 5
	n := 50000
	for s := uint64(0); s < trials; s++ {
		l, _ := NewLogLog(10, 100+s)
		h, _ := NewHyperLogLog(10, 100+s)
		for _, x := range workload.Distinct(workload.NewRNG(60+s), n) {
			l.UpdateUint64(x)
			h.UpdateUint64(x)
		}
		llErr += relErr(l.Estimate(), n)
		hllErr += relErr(h.Estimate(), n)
	}
	if hllErr > llErr*1.5 {
		t.Fatalf("HLL (%.4f) much worse than LogLog (%.4f)", hllErr/trials, llErr/trials)
	}
}

func TestKMVAccuracy(t *testing.T) {
	k, _ := NewKMV(1024, 17)
	n := 100000
	for _, x := range workload.Distinct(workload.NewRNG(6), n) {
		k.UpdateUint64(x)
	}
	// KMV stderr ~1/sqrt(k-2) ~ 3%; allow 5 sigma.
	if e := relErr(k.Estimate(), n); e > 0.16 {
		t.Fatalf("KMV error %.3f too large", e)
	}
}

func TestKMVExactBelowK(t *testing.T) {
	k, _ := NewKMV(100, 17)
	for i := uint64(0); i < 50; i++ {
		k.UpdateUint64(i)
		k.UpdateUint64(i) // duplicates must not inflate
	}
	if est := k.Estimate(); est != 50 {
		t.Fatalf("below-k estimate %v, want exactly 50", est)
	}
}

func TestKMVMergeEqualsUnion(t *testing.T) {
	full, _ := NewKMV(512, 19)
	a, _ := NewKMV(512, 19)
	b, _ := NewKMV(512, 19)
	stream := workload.Distinct(workload.NewRNG(7), 30000)
	for i, x := range stream {
		full.UpdateUint64(x)
		if i < len(stream)/2 {
			a.UpdateUint64(x)
		} else {
			b.UpdateUint64(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != full.Estimate() {
		t.Fatalf("KMV merge not union-equivalent: %v vs %v", a.Estimate(), full.Estimate())
	}
}

func TestKMVJaccard(t *testing.T) {
	a, _ := NewKMV(1024, 23)
	b, _ := NewKMV(1024, 23)
	// 50% overlap: A = [0,10000), B = [5000,15000) -> J = 5000/15000 = 1/3.
	for i := uint64(0); i < 10000; i++ {
		a.UpdateUint64(i)
	}
	for i := uint64(5000); i < 15000; i++ {
		b.UpdateUint64(i)
	}
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-1.0/3.0) > 0.07 {
		t.Fatalf("Jaccard %v, want ~0.333", j)
	}
}

func TestSparseHLLStartsSparseAndConverts(t *testing.T) {
	s, _ := NewSparseHLL(14, 29)
	for i := uint64(0); i < 10; i++ {
		s.UpdateUint64(i)
	}
	if !s.IsSparse() {
		t.Fatal("should still be sparse at 10 items")
	}
	if e := relErr(s.Estimate(), 10); e > 0.01 {
		t.Fatalf("sparse estimate %v for 10 distinct", s.Estimate())
	}
	for i := uint64(0); i < 100000; i++ {
		s.UpdateUint64(i)
	}
	if s.IsSparse() {
		t.Fatal("should have converted to dense")
	}
	if e := relErr(s.Estimate(), 100000); e > 0.08 {
		t.Fatalf("dense estimate error %.3f", e)
	}
}

func TestSparseHLLMergeMixedModes(t *testing.T) {
	mkPair := func() (*SparseHLL, *SparseHLL) {
		a, _ := NewSparseHLL(12, 31)
		b, _ := NewSparseHLL(12, 31)
		return a, b
	}
	// sparse + sparse
	a, b := mkPair()
	for i := uint64(0); i < 20; i++ {
		a.UpdateUint64(i)
		b.UpdateUint64(i + 20)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.Estimate(), 40); e > 0.02 {
		t.Fatalf("sparse+sparse merge estimate %v", a.Estimate())
	}
	// dense + sparse
	a, b = mkPair()
	for i := uint64(0); i < 50000; i++ {
		a.UpdateUint64(i)
	}
	for i := uint64(50000); i < 50040; i++ {
		b.UpdateUint64(i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.Estimate(), 50040); e > 0.08 {
		t.Fatalf("dense+sparse merge error %.3f", e)
	}
	// sparse + dense
	a, b = mkPair()
	for i := uint64(0); i < 40; i++ {
		a.UpdateUint64(i)
	}
	for i := uint64(40); i < 50040; i++ {
		b.UpdateUint64(i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.Estimate(), 50040); e > 0.08 {
		t.Fatalf("sparse+dense merge error %.3f", e)
	}
}

func TestSparseSortedEntries(t *testing.T) {
	s, _ := NewSparseHLL(14, 37)
	for i := uint64(0); i < 30; i++ {
		s.UpdateUint64(i)
	}
	entries := s.SortedEntries()
	if len(entries) == 0 {
		t.Fatal("no sparse entries")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Index >= entries[i].Index {
			t.Fatal("entries not sorted")
		}
	}
}

func TestSlidingHLLWindow(t *testing.T) {
	s, _ := NewSlidingHLL(12, 10000, 41)
	// 20000 ticks, one new distinct item per tick.
	for i := uint64(0); i < 20000; i++ {
		s.UpdateUint64(i)
		s.Advance()
	}
	// Last 10000 ticks saw exactly 10000 distinct items.
	if e := relErr(s.EstimateWindow(10000), 10000); e > 0.1 {
		t.Fatalf("window estimate error %.3f (est %v)", e, s.EstimateWindow(10000))
	}
	// Smaller window, smaller count.
	if e := relErr(s.EstimateWindow(1000), 1000); e > 0.15 {
		t.Fatalf("small-window estimate error %.3f (est %v)", e, s.EstimateWindow(1000))
	}
}

func TestSlidingHLLMonotoneInWindow(t *testing.T) {
	s, _ := NewSlidingHLL(10, 5000, 43)
	rng := workload.NewRNG(8)
	for i := 0; i < 20000; i++ {
		s.UpdateUint64(uint64(rng.Intn(3000)))
		s.Advance()
	}
	small := s.EstimateWindow(100)
	large := s.EstimateWindow(5000)
	if small > large*1.05 {
		t.Fatalf("estimate not monotone in window: %v > %v", small, large)
	}
}

func TestSlidingHLLListsStayShort(t *testing.T) {
	s, _ := NewSlidingHLL(10, 10000, 47)
	rng := workload.NewRNG(9)
	for i := 0; i < 200000; i++ {
		s.UpdateUint64(rng.Uint64())
		s.Advance()
	}
	// LFPM lists are logarithmic in expectation; 64 is a loose ceiling.
	if m := s.MaxListLen(); m > 64 {
		t.Fatalf("LFPM list grew to %d", m)
	}
	if p := s.ListLenPercentile(50); p > 16 {
		t.Fatalf("median LFPM list %d too long", p)
	}
}

func TestQuickHLLMergeCommutes(t *testing.T) {
	f := func(xs []uint64, ys []uint64) bool {
		a1, _ := NewHyperLogLog(8, 3)
		b1, _ := NewHyperLogLog(8, 3)
		a2, _ := NewHyperLogLog(8, 3)
		b2, _ := NewHyperLogLog(8, 3)
		for _, x := range xs {
			a1.UpdateUint64(x)
			a2.UpdateUint64(x)
		}
		for _, y := range ys {
			b1.UpdateUint64(y)
			b2.UpdateUint64(y)
		}
		_ = a1.Merge(b1) // a <- a ∪ b
		_ = b2.Merge(a2) // b <- b ∪ a
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKMVNeverExceedsTruthWildly(t *testing.T) {
	// Property: for any input multiset, the KMV estimate is within a
	// constant factor of the true distinct count when below k (exact) and
	// never NaN/Inf.
	f := func(xs []uint64) bool {
		k, _ := NewKMV(64, 5)
		for _, x := range xs {
			k.UpdateUint64(x)
		}
		est := k.Estimate()
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			return false
		}
		truth := float64(workload.ExactDistinct(xs))
		if truth <= 64 {
			return est == truth
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHLLUpdate(b *testing.B) {
	h, _ := NewHyperLogLog(14, 1)
	for i := 0; i < b.N; i++ {
		h.UpdateUint64(uint64(i))
	}
}

func BenchmarkKMVUpdate(b *testing.B) {
	k, _ := NewKMV(1024, 1)
	for i := 0; i < b.N; i++ {
		k.UpdateUint64(uint64(i))
	}
}

func BenchmarkSlidingHLLUpdate(b *testing.B) {
	s, _ := NewSlidingHLL(12, 100000, 1)
	for i := 0; i < b.N; i++ {
		s.UpdateUint64(uint64(i))
		s.Advance()
	}
}

func TestHLLReset(t *testing.T) {
	h, _ := NewHyperLogLog(10, 5)
	for i := 0; i < 5000; i++ {
		h.UpdateString(fmt.Sprintf("u%d", i))
	}
	h.Reset()
	if h.Items() != 0 || h.Estimate() != 0 {
		t.Fatalf("reset HLL not empty: items %d, estimate %f", h.Items(), h.Estimate())
	}
	// A reset sketch answers exactly like a fresh one (same seed).
	fresh, _ := NewHyperLogLog(10, 5)
	for i := 0; i < 3000; i++ {
		h.UpdateString(fmt.Sprintf("v%d", i))
		fresh.UpdateString(fmt.Sprintf("v%d", i))
	}
	if h.Estimate() != fresh.Estimate() {
		t.Fatalf("reset %f != fresh %f", h.Estimate(), fresh.Estimate())
	}
}
