package cardinality

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// SparseHLL is the HLL++ small-cardinality representation: until the number
// of occupied registers justifies the dense array, it stores (index, rank)
// pairs in a compact sorted list, giving exact-ish counting at a fraction of
// the dense footprint. Once the sparse form would exceed the dense form it
// converts automatically.
//
// This is the dense/sparse crossover the survey cites from "HyperLogLog in
// practice" (Heule et al.), and the ablation experiment in bench_test.go
// measures exactly where the crossover pays off.
type SparseHLL struct {
	precision uint8
	seed      uint64
	items     uint64

	sparse map[uint32]uint8 // register index -> rank, while sparse
	dense  *HyperLogLog     // non-nil after conversion
}

// NewSparseHLL returns an HLL++-style sketch with automatic sparse-to-dense
// conversion at the standard threshold (sparse footprint > dense footprint).
func NewSparseHLL(precision uint8, seed uint64) (*SparseHLL, error) {
	if precision < 4 || precision > 18 {
		return nil, core.Errf("SparseHLL", "precision", "%d not in [4,18]", precision)
	}
	return &SparseHLL{precision: precision, seed: seed, sparse: make(map[uint32]uint8)}, nil
}

// Update adds an item.
func (s *SparseHLL) Update(item []byte) { s.UpdateHash(hashutil.Sum64(item, s.seed)) }

// UpdateUint64 adds an integer item.
func (s *SparseHLL) UpdateUint64(x uint64) { s.UpdateHash(hashutil.Sum64Uint64(x, s.seed)) }

// UpdateHash adds a pre-hashed item.
func (s *SparseHLL) UpdateHash(hv uint64) {
	s.items++
	if s.dense != nil {
		s.dense.UpdateHash(hv)
		return
	}
	idx := uint32(hv >> (64 - s.precision))
	rest := hv<<s.precision | 1<<(s.precision-1)
	rank := uint8(leadingZeros(rest)) + 1
	if rank > s.sparse[idx] {
		s.sparse[idx] = rank
	}
	// Each sparse entry costs ~(4+1) bytes plus map overhead (~16B); convert
	// when that passes the dense register array.
	if len(s.sparse)*20 > (1 << s.precision) {
		s.toDense()
	}
}

func leadingZeros(x uint64) int {
	n := 0
	for ; x&(1<<63) == 0 && n < 64; n++ {
		x <<= 1
	}
	return n
}

func (s *SparseHLL) toDense() {
	d, err := NewHyperLogLog(s.precision, s.seed)
	if err != nil {
		// precision was validated at construction; unreachable.
		panic(err)
	}
	for idx, rank := range s.sparse {
		if rank > d.registers[idx] {
			d.registers[idx] = rank
		}
	}
	d.items = s.items
	s.dense = d
	s.sparse = nil
}

// IsSparse reports whether the sketch is still in its sparse representation.
func (s *SparseHLL) IsSparse() bool { return s.dense == nil }

// Estimate returns the estimated distinct count. In sparse mode it uses
// linear counting over the virtual register file, which is near-exact at
// these cardinalities.
func (s *SparseHLL) Estimate() float64 {
	if s.dense != nil {
		return s.dense.Estimate()
	}
	m := float64(uint64(1) << s.precision)
	zeros := m - float64(len(s.sparse))
	if zeros <= 0 {
		zeros = 1
	}
	return m * math.Log(m/zeros)
}

// Items returns the number of updates absorbed.
func (s *SparseHLL) Items() uint64 { return s.items }

// Bytes returns the current footprint (sparse entries or dense registers).
func (s *SparseHLL) Bytes() int {
	if s.dense != nil {
		return s.dense.Bytes()
	}
	return len(s.sparse)*20 + 24
}

// Merge folds another SparseHLL into s, converting to dense if either side
// already has.
func (s *SparseHLL) Merge(other *SparseHLL) error {
	if other == nil || s.precision != other.precision || s.seed != other.seed {
		return core.ErrIncompatible
	}
	if s.dense == nil && other.dense == nil {
		for idx, rank := range other.sparse {
			if rank > s.sparse[idx] {
				s.sparse[idx] = rank
			}
		}
		s.items += other.items
		if len(s.sparse)*20 > (1 << s.precision) {
			s.toDense()
		}
		return nil
	}
	if s.dense == nil {
		s.toDense()
	}
	if other.dense != nil {
		return s.dense.Merge(other.dense)
	}
	// Fold other's sparse entries into our dense registers.
	for idx, rank := range other.sparse {
		if rank > s.dense.registers[idx] {
			s.dense.registers[idx] = rank
		}
	}
	s.dense.items += other.items
	s.items = s.dense.items
	return nil
}

// SortedEntries returns the sparse entries sorted by register index, for
// deterministic serialization and tests. Returns nil once dense.
func (s *SparseHLL) SortedEntries() []SparseEntry {
	if s.dense != nil {
		return nil
	}
	out := make([]SparseEntry, 0, len(s.sparse))
	for idx, rank := range s.sparse {
		out = append(out, SparseEntry{Index: idx, Rank: rank})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// SparseEntry is one occupied register in sparse mode.
type SparseEntry struct {
	Index uint32
	Rank  uint8
}
