// Package cardinality implements the distinct-counting sketches surveyed in
// the tutorial's "Estimating Cardinality" row of Table 1: Linear Counting,
// Flajolet–Martin probabilistic counting (PCSA), Durand–Flajolet LogLog,
// HyperLogLog (with a sparse small-cardinality mode following HLL++), KMV
// bottom-k estimation, and a sliding-window HyperLogLog.
//
// All sketches hash items themselves (callers pass raw bytes or uint64
// keys), are mergeable where the underlying mathematics permits, and report
// their memory footprint so experiments can plot error against bytes — the
// axis on which the paper's site-audience-analysis application compares
// them.
package cardinality

import (
	"encoding/binary"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// HyperLogLog estimates the number of distinct items in a stream using
// Flajolet–Fuss–Gandouet–Meunier's estimator over 2^precision registers.
// The standard error is about 1.04/sqrt(2^precision).
//
// Small cardinalities use linear counting over the same registers (the
// standard bias correction), which is the practically important regime for
// per-key audience counters; this mirrors the "HyperLogLog in practice"
// engineering the survey cites.
type HyperLogLog struct {
	precision uint8
	registers []uint8
	seed      uint64
	items     uint64
}

// NewHyperLogLog returns an HLL with 2^precision registers.
// Precision must be in [4, 18].
func NewHyperLogLog(precision uint8, seed uint64) (*HyperLogLog, error) {
	if precision < 4 || precision > 18 {
		return nil, core.Errf("HyperLogLog", "precision", "%d not in [4,18]", precision)
	}
	return &HyperLogLog{
		precision: precision,
		registers: make([]uint8, 1<<precision),
		seed:      seed,
	}, nil
}

// Update adds an item.
func (h *HyperLogLog) Update(item []byte) {
	h.UpdateHash(hashutil.Sum64(item, h.seed))
}

// UpdateString adds a string item.
func (h *HyperLogLog) UpdateString(s string) {
	h.UpdateHash(hashutil.Sum64String(s, h.seed))
}

// UpdateUint64 adds an integer item.
func (h *HyperLogLog) UpdateUint64(x uint64) {
	h.UpdateHash(hashutil.Sum64Uint64(x, h.seed))
}

// UpdateHash adds a pre-hashed item. The top precision bits select the
// register; the rank of the remaining bits' leading zeros updates it.
func (h *HyperLogLog) UpdateHash(hv uint64) {
	h.items++
	idx := hv >> (64 - h.precision)
	rest := hv<<h.precision | 1<<(h.precision-1) // guard bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// alpha is the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Estimate returns the estimated number of distinct items.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.registers))
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	raw := alpha(len(h.registers)) * m * m / sum
	// Small-range correction: linear counting when many registers are empty.
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Items returns the number of updates absorbed.
func (h *HyperLogLog) Items() uint64 { return h.items }

// Reset returns the sketch to its freshly-constructed state, reusing the
// register array. Zeroing 2^precision bytes in place is far cheaper than
// allocating (and later garbage-collecting) a replacement, which is what
// makes pooling HLL buckets worthwhile for high-churn callers like the
// sketch store's splayed hot keys.
func (h *HyperLogLog) Reset() {
	clear(h.registers)
	h.items = 0
}

// Bytes returns the register array footprint.
func (h *HyperLogLog) Bytes() int { return len(h.registers) + 16 }

// Merge folds another HLL into h. Both must share precision and seed;
// merging is register-wise max and is exactly equivalent to having streamed
// the union.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if other == nil || h.precision != other.precision || h.seed != other.seed {
		return core.ErrIncompatible
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	h.items += other.items
	return nil
}

// MarshalBinary encodes the sketch: [precision][seed][items][registers...].
func (h *HyperLogLog) MarshalBinary() ([]byte, error) {
	out := make([]byte, 1+8+8+len(h.registers))
	out[0] = h.precision
	binary.LittleEndian.PutUint64(out[1:], h.seed)
	binary.LittleEndian.PutUint64(out[9:], h.items)
	copy(out[17:], h.registers)
	return out, nil
}

// UnmarshalBinary decodes a sketch previously encoded with MarshalBinary.
func (h *HyperLogLog) UnmarshalBinary(data []byte) error {
	if len(data) < 17 {
		return core.ErrCorrupt
	}
	p := data[0]
	if p < 4 || p > 18 || len(data) != 17+(1<<p) {
		return core.ErrCorrupt
	}
	h.precision = p
	h.seed = binary.LittleEndian.Uint64(data[1:])
	h.items = binary.LittleEndian.Uint64(data[9:])
	h.registers = make([]uint8, 1<<p)
	copy(h.registers, data[17:])
	return nil
}

// StdError returns the theoretical relative standard error 1.04/sqrt(m).
func (h *HyperLogLog) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}
