package cardinality

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// KMV (k minimum values, also "bottom-k") keeps the k smallest hash values
// seen; if the k-th smallest is h_k (as a fraction of the hash space), the
// distinct count is about (k-1)/h_k. Unlike the register sketches, KMV also
// supports set operations (Jaccard similarity via minima intersection),
// which is why production sketch libraries such as the DataSketches theta
// sketch the survey mentions are built on it.
type KMV struct {
	k     int
	seed  uint64
	items uint64
	// heap is a max-heap of the k smallest hashes seen so far, so the
	// largest retained value is O(1) to find and evict.
	heap []uint64
	set  map[uint64]struct{} // dedupes hash values in the heap
}

// NewKMV returns a bottom-k sketch of size k.
func NewKMV(k int, seed uint64) (*KMV, error) {
	if k < 2 {
		return nil, core.Errf("KMV", "k", "%d must be >= 2", k)
	}
	return &KMV{k: k, seed: seed, set: make(map[uint64]struct{}, k)}, nil
}

// Update adds an item.
func (s *KMV) Update(item []byte) { s.UpdateHash(hashutil.Sum64(item, s.seed)) }

// UpdateUint64 adds an integer item.
func (s *KMV) UpdateUint64(x uint64) { s.UpdateHash(hashutil.Sum64Uint64(x, s.seed)) }

// UpdateHash adds a pre-hashed item.
func (s *KMV) UpdateHash(hv uint64) {
	s.items++
	if _, dup := s.set[hv]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.set[hv] = struct{}{}
		s.heapPush(hv)
		return
	}
	if hv >= s.heap[0] {
		return
	}
	delete(s.set, s.heap[0])
	s.set[hv] = struct{}{}
	s.heap[0] = hv
	s.siftDown(0)
}

func (s *KMV) heapPush(v uint64) {
	s.heap = append(s.heap, v)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *KMV) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && s.heap[l] > s.heap[largest] {
			largest = l
		}
		if r < n && s.heap[r] > s.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		s.heap[i], s.heap[largest] = s.heap[largest], s.heap[i]
		i = largest
	}
}

// Estimate returns the bottom-k distinct-count estimate.
func (s *KMV) Estimate() float64 {
	if len(s.heap) < s.k {
		// Fewer than k distinct hashes seen: the sketch is exact.
		return float64(len(s.heap))
	}
	kth := float64(s.heap[0]) / float64(^uint64(0))
	if kth == 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / kth
}

// Items returns the number of updates absorbed.
func (s *KMV) Items() uint64 { return s.items }

// Bytes returns the retained-minima footprint.
func (s *KMV) Bytes() int { return len(s.heap)*8 + len(s.set)*8 + 24 }

// Merge folds another KMV into s; the result is the bottom-k of the union.
func (s *KMV) Merge(other *KMV) error {
	if other == nil || s.k != other.k || s.seed != other.seed {
		return core.ErrIncompatible
	}
	for _, hv := range other.heap {
		s.items-- // UpdateHash will re-increment; merged minima are not new stream items
		s.UpdateHash(hv)
	}
	s.items += other.items
	return nil
}

// Jaccard estimates the Jaccard similarity |A∩B|/|A∪B| between the sets
// summarized by s and other, using the k smallest values of the union.
func (s *KMV) Jaccard(other *KMV) (float64, error) {
	if other == nil || s.k != other.k || s.seed != other.seed {
		return 0, core.ErrIncompatible
	}
	a := s.sortedMinima()
	b := other.sortedMinima()
	union := mergeSortedUnique(a, b)
	if len(union) > s.k {
		union = union[:s.k]
	}
	if len(union) == 0 {
		return 0, nil
	}
	inBoth := 0
	bset := make(map[uint64]struct{}, len(b))
	for _, v := range b {
		bset[v] = struct{}{}
	}
	aset := make(map[uint64]struct{}, len(a))
	for _, v := range a {
		aset[v] = struct{}{}
	}
	for _, v := range union {
		_, ina := aset[v]
		_, inb := bset[v]
		if ina && inb {
			inBoth++
		}
	}
	return float64(inBoth) / float64(len(union)), nil
}

func (s *KMV) sortedMinima() []uint64 {
	out := append([]uint64(nil), s.heap...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mergeSortedUnique(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v uint64
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case b[j] < a[i]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}
