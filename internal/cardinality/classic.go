package cardinality

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// LinearCounter estimates cardinality by hashing items into an m-bit bitmap
// and inverting the occupancy: n-hat = -m * ln(zeros/m). It is the most
// accurate structure per byte at cardinalities below ~m, after which it
// saturates — the classic precursor the survey's cardinality row builds on,
// and the small-range corrector inside HyperLogLog.
type LinearCounter struct {
	bitmap []uint64
	m      uint64 // number of bits
	seed   uint64
	items  uint64
}

// NewLinearCounter returns a linear counter with the given number of bits
// (rounded up to a multiple of 64).
func NewLinearCounter(nbits int, seed uint64) (*LinearCounter, error) {
	if nbits <= 0 {
		return nil, core.Errf("LinearCounter", "nbits", "%d must be positive", nbits)
	}
	words := (nbits + 63) / 64
	return &LinearCounter{bitmap: make([]uint64, words), m: uint64(words * 64), seed: seed}, nil
}

// Update adds an item.
func (lc *LinearCounter) Update(item []byte) { lc.UpdateHash(hashutil.Sum64(item, lc.seed)) }

// UpdateUint64 adds an integer item.
func (lc *LinearCounter) UpdateUint64(x uint64) { lc.UpdateHash(hashutil.Sum64Uint64(x, lc.seed)) }

// UpdateHash adds a pre-hashed item.
func (lc *LinearCounter) UpdateHash(hv uint64) {
	lc.items++
	bit := hv % lc.m
	lc.bitmap[bit/64] |= 1 << (bit % 64)
}

// Estimate returns the occupancy-inverted cardinality estimate.
func (lc *LinearCounter) Estimate() float64 {
	ones := 0
	for _, w := range lc.bitmap {
		ones += bits.OnesCount64(w)
	}
	zeros := float64(lc.m) - float64(ones)
	if zeros <= 0 {
		// Saturated: the estimator diverges; report the best finite answer.
		zeros = 0.5
	}
	return float64(lc.m) * math.Log(float64(lc.m)/zeros)
}

// Items returns the number of updates absorbed.
func (lc *LinearCounter) Items() uint64 { return lc.items }

// Bytes returns the bitmap footprint.
func (lc *LinearCounter) Bytes() int { return len(lc.bitmap)*8 + 16 }

// Merge ORs another counter's bitmap into lc.
func (lc *LinearCounter) Merge(other *LinearCounter) error {
	if other == nil || lc.m != other.m || lc.seed != other.seed {
		return core.ErrIncompatible
	}
	for i, w := range other.bitmap {
		lc.bitmap[i] |= w
	}
	lc.items += other.items
	return nil
}

// PCSA is Flajolet–Martin probabilistic counting with stochastic averaging:
// nmaps bitmaps each record the least-significant-set-bit rank of the items
// routed to them; the mean rank of the lowest unset bit estimates log2(n/m).
// Historically the first practical distinct counter (1983), kept here as the
// baseline the LogLog family improved on.
type PCSA struct {
	maps  []uint64 // one 64-bit rank bitmap per stochastic-averaging bucket
	seed  uint64
	items uint64
}

// The Flajolet–Martin magic constant phi.
const pcsaPhi = 0.77351

// NewPCSA returns a PCSA sketch with nmaps bitmaps.
func NewPCSA(nmaps int, seed uint64) (*PCSA, error) {
	if nmaps <= 0 {
		return nil, core.Errf("PCSA", "nmaps", "%d must be positive", nmaps)
	}
	return &PCSA{maps: make([]uint64, nmaps), seed: seed}, nil
}

// Update adds an item.
func (p *PCSA) Update(item []byte) { p.UpdateHash(hashutil.Sum64(item, p.seed)) }

// UpdateUint64 adds an integer item.
func (p *PCSA) UpdateUint64(x uint64) { p.UpdateHash(hashutil.Sum64Uint64(x, p.seed)) }

// UpdateHash adds a pre-hashed item.
func (p *PCSA) UpdateHash(hv uint64) {
	p.items++
	bucket := hv % uint64(len(p.maps))
	rest := hv / uint64(len(p.maps))
	rank := bits.TrailingZeros64(rest | (1 << 63)) // bounded by 63
	p.maps[bucket] |= 1 << uint(rank)
}

// Estimate returns the FM stochastic-averaging estimate.
func (p *PCSA) Estimate() float64 {
	m := float64(len(p.maps))
	sum := 0
	for _, bm := range p.maps {
		// Position of the lowest zero bit.
		r := bits.TrailingZeros64(^bm)
		sum += r
	}
	mean := float64(sum) / m
	return m / pcsaPhi * math.Pow(2, mean)
}

// Items returns the number of updates absorbed.
func (p *PCSA) Items() uint64 { return p.items }

// Bytes returns the bitmap footprint.
func (p *PCSA) Bytes() int { return len(p.maps)*8 + 16 }

// Merge ORs another PCSA into p.
func (p *PCSA) Merge(other *PCSA) error {
	if other == nil || len(p.maps) != len(other.maps) || p.seed != other.seed {
		return core.ErrIncompatible
	}
	for i, bm := range other.maps {
		p.maps[i] |= bm
	}
	p.items += other.items
	return nil
}

// LogLog is the Durand–Flajolet estimator: like HyperLogLog it tracks the
// max leading-zero rank per register, but combines registers with the
// geometric mean (2^mean-rank) rather than the harmonic mean, giving
// standard error ~1.30/sqrt(m) (versus HLL's 1.04/sqrt(m)). It is retained
// as the stepping stone the survey lists between PCSA and HLL.
type LogLog struct {
	precision uint8
	registers []uint8
	seed      uint64
	items     uint64
}

// NewLogLog returns a LogLog sketch with 2^precision registers.
func NewLogLog(precision uint8, seed uint64) (*LogLog, error) {
	if precision < 4 || precision > 16 {
		return nil, core.Errf("LogLog", "precision", "%d not in [4,16]", precision)
	}
	return &LogLog{precision: precision, registers: make([]uint8, 1<<precision), seed: seed}, nil
}

// Update adds an item.
func (l *LogLog) Update(item []byte) { l.UpdateHash(hashutil.Sum64(item, l.seed)) }

// UpdateUint64 adds an integer item.
func (l *LogLog) UpdateUint64(x uint64) { l.UpdateHash(hashutil.Sum64Uint64(x, l.seed)) }

// UpdateHash adds a pre-hashed item.
func (l *LogLog) UpdateHash(hv uint64) {
	l.items++
	idx := hv >> (64 - l.precision)
	rest := hv<<l.precision | 1<<(l.precision-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > l.registers[idx] {
		l.registers[idx] = rank
	}
}

// The Durand–Flajolet bias constant for the geometric-mean estimator.
const logLogAlpha = 0.39701

// Estimate returns the LogLog estimate alpha * m * 2^(mean rank).
func (l *LogLog) Estimate() float64 {
	m := float64(len(l.registers))
	sum := 0.0
	for _, r := range l.registers {
		sum += float64(r)
	}
	return logLogAlpha * m * math.Pow(2, sum/m)
}

// Items returns the number of updates absorbed.
func (l *LogLog) Items() uint64 { return l.items }

// Bytes returns the register footprint.
func (l *LogLog) Bytes() int { return len(l.registers) + 16 }

// Merge folds another LogLog into l (register-wise max).
func (l *LogLog) Merge(other *LogLog) error {
	if other == nil || l.precision != other.precision || l.seed != other.seed {
		return core.ErrIncompatible
	}
	for i, r := range other.registers {
		if r > l.registers[i] {
			l.registers[i] = r
		}
	}
	l.items += other.items
	return nil
}
