// Package core defines the small set of interfaces and error conventions
// shared by every synopsis structure in this repository.
//
// The tutorial groups all of its Table 1 algorithms under one umbrella:
// bounded-memory summaries of unbounded streams that answer approximate
// queries. core captures that contract so harnesses, the topology engine
// and the Lambda Architecture's speed layer can treat any sketch uniformly,
// and so merge-based scale-out (the paper's "algorithms should be able to
// scale out" requirement) has a single well-defined seam.
package core

import (
	"errors"
	"fmt"
)

// ErrIncompatible is returned by Merge when two sketches were built with
// different parameters (width, depth, seed, precision) and therefore do not
// summarize commensurable spaces.
var ErrIncompatible = errors.New("core: incompatible sketch parameters")

// ErrCorrupt is returned by decoders when serialized bytes fail validation.
var ErrCorrupt = errors.New("core: corrupt sketch encoding")

// Sketch is the minimal contract of a streaming summary over byte keys.
type Sketch interface {
	// Update folds one item into the summary.
	Update(item []byte)
	// Items returns the number of Update calls absorbed so far.
	Items() uint64
	// Bytes returns the approximate in-memory footprint of the summary,
	// used by accuracy-per-byte experiments.
	Bytes() int
}

// Mergeable is implemented by sketches that support distributed aggregation:
// merging the summaries of two sub-streams must be equivalent (exactly or
// within the error guarantee) to summarizing the concatenated stream.
type Mergeable[T any] interface {
	Merge(other T) error
}

// Windowed is implemented by summaries that maintain a sliding window and
// must be advanced as stream time passes.
type Windowed interface {
	// Advance moves the window forward by one tick without adding an item.
	Advance()
}

// Numeric is the constraint for scalar stream summaries.
type Numeric interface {
	~int | ~int32 | ~int64 | ~float32 | ~float64 | ~uint | ~uint32 | ~uint64
}

// ParamError describes an invalid construction parameter. Constructors in
// this repository return it rather than panicking so misconfiguration is a
// recoverable condition for callers embedding sketches in long-running
// topologies.
type ParamError struct {
	Struct string // which structure was being constructed
	Param  string // which parameter was invalid
	Detail string // what was wrong with it
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("%s: invalid %s: %s", e.Struct, e.Param, e.Detail)
}

// Errf builds a ParamError.
func Errf(structName, param, format string, args ...any) error {
	return &ParamError{Struct: structName, Param: param, Detail: fmt.Sprintf(format, args...)}
}
