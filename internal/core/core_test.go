package core

import (
	"errors"
	"strings"
	"testing"
)

func TestParamErrorMessage(t *testing.T) {
	err := Errf("HyperLogLog", "precision", "%d not in [4,18]", 3)
	var pe *ParamError
	if !errors.As(err, &pe) {
		t.Fatal("Errf did not produce a ParamError")
	}
	if pe.Struct != "HyperLogLog" || pe.Param != "precision" {
		t.Fatalf("fields wrong: %+v", pe)
	}
	msg := err.Error()
	for _, want := range []string{"HyperLogLog", "precision", "3 not in [4,18]"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	if errors.Is(ErrIncompatible, ErrCorrupt) {
		t.Fatal("sentinel errors alias")
	}
	if ErrIncompatible.Error() == "" || ErrCorrupt.Error() == "" {
		t.Fatal("empty sentinel messages")
	}
}

func TestParamErrorIsNotSentinel(t *testing.T) {
	err := Errf("X", "y", "bad")
	if errors.Is(err, ErrIncompatible) {
		t.Fatal("param error matched sentinel")
	}
}
