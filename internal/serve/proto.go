// proto.go: the declarative prototype description the wire can carry.
//
// store.Prototype is a closure, which is exactly right in process and
// exactly wrong on the wire. ProtoSpec is its serializable twin: the
// family name plus the handful of parameters each built-in synopsis
// family is constructed from. Server and Client both hold name→spec
// tables — the server to advertise its metric schema on GET
// /v1/metrics, the client to rebuild receiver synopses when decoding
// answers. Because both sides construct from the same parameters
// (including hash seeds), the client's decoded synopses are
// merge-compatible and byte-identical to the server's.
package serve

import (
	"fmt"

	"repro/internal/store"
)

// Families a ProtoSpec can name — the four built-in synopsis adapters.
const (
	FamilyDistinct = "distinct" // HyperLogLog uniques (store.Distinct)
	FamilyFreq     = "freq"     // Count-Min frequencies (store.Freq)
	FamilyTopK     = "topk"     // Space-Saving heavy hitters (store.TopK)
	FamilyQuantile = "quantile" // q-digest quantiles (store.Quantiles)
)

// ProtoSpec declares a metric's synopsis family and construction
// parameters. Only the fields of the named family matter; the rest are
// ignored (and omitted from JSON). The zero spec is invalid.
type ProtoSpec struct {
	// Family picks the synopsis family: one of the Family* constants.
	Family string `json:"family"`

	// Precision is the HyperLogLog register exponent (distinct).
	Precision uint8 `json:"precision,omitempty"`
	// Seed seeds the hash functions (distinct, freq).
	Seed uint64 `json:"seed,omitempty"`

	// Width and Depth shape the Count-Min sketch (freq).
	Width int `json:"width,omitempty"`
	Depth int `json:"depth,omitempty"`

	// K is the Space-Saving counter budget (topk).
	K int `json:"k,omitempty"`

	// LogU is the value-universe exponent and CompressK the compression
	// factor of the q-digest (quantile).
	LogU      uint8  `json:"log_u,omitempty"`
	CompressK uint64 `json:"compress_k,omitempty"`
}

// Prototype materializes the spec into a store.Prototype, validating
// the parameters the same way direct registration would (a bad spec
// fails here, not on first write).
func (s ProtoSpec) Prototype() (store.Prototype, error) {
	switch s.Family {
	case FamilyDistinct:
		return store.NewDistinctProto(s.Precision, s.Seed)
	case FamilyFreq:
		return store.NewFreqProto(s.Width, s.Depth, s.Seed)
	case FamilyTopK:
		return store.NewTopKProto(s.K)
	case FamilyQuantile:
		return store.NewQuantileProto(s.LogU, s.CompressK)
	default:
		return nil, fmt.Errorf("serve: unknown synopsis family %q", s.Family)
	}
}

// DistinctSpec declares a HyperLogLog uniques metric with 2^precision
// registers.
func DistinctSpec(precision uint8, seed uint64) ProtoSpec {
	return ProtoSpec{Family: FamilyDistinct, Precision: precision, Seed: seed}
}

// FreqSpec declares a width x depth Count-Min frequency metric.
func FreqSpec(width, depth int, seed uint64) ProtoSpec {
	return ProtoSpec{Family: FamilyFreq, Width: width, Depth: depth, Seed: seed}
}

// TopKSpec declares a k-counter Space-Saving heavy-hitters metric.
func TopKSpec(k int) ProtoSpec {
	return ProtoSpec{Family: FamilyTopK, K: k}
}

// QuantileSpec declares a q-digest quantiles metric over values in
// [0, 2^logU) with compression factor k.
func QuantileSpec(logU uint8, k uint64) ProtoSpec {
	return ProtoSpec{Family: FamilyQuantile, LogU: logU, CompressK: k}
}
