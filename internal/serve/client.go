// client.go: the HTTP client side of the serving API — an
// analytics.Backend whose backend lives across a socket.
//
// The client satisfies the full contract (plus ContextQuerier), so
// anything written against analytics.Backend — a dashboard, a test,
// the conformance suite — can point at a remote analyticsd without
// changing a call site. Two impedance mismatches are explicit rather
// than papered over:
//
//   - RegisterMetric(name, proto) cannot cross the wire: a
//     store.Prototype is a closure. It returns an error directing
//     callers to Register(name, ProtoSpec) — the declarative form both
//     sides can materialize — or Sync, which pulls the server's schema.
//   - Keys and Stats are error-less in the contract; transport failures
//     there answer the contract's empty values (no keys, zero stats).
//
// Query decoding needs each metric's ProtoSpec to rebuild receiver
// synopses, so the client keeps a spec table fed by Register and Sync.
// Deadlines propagate twice on purpose: the request context cancels the
// client side mid-flight, and the remaining budget rides the
// X-Analytics-Timeout header so the server aborts its backend gather at
// the same instant instead of computing an answer nobody will read.
package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/store"
	"repro/internal/trace"
)

// Client speaks the serving API. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	mu    sync.RWMutex
	specs map[string]ProtoSpec
}

// NewClient returns a client for the analyticsd at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil hc uses http.DefaultClient; per-query
// deadlines come from QueryContext contexts, not client-wide timeouts.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:  baseURL,
		hc:    hc,
		specs: make(map[string]ProtoSpec),
	}
}

// do posts (or gets, when body is nil) and decodes into out, mapping
// non-2xx statuses to the server's error body.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doTraced(ctx, trace.Context{}, method, path, body, out)
}

// doTraced is the one request path: encode, attach the trace and
// remaining-deadline headers, send, map errors, decode.
func (c *Client) doTraced(ctx context.Context, tctx trace.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve: client encode %s: %w", path, err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("serve: client request %s: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tctx.Valid() {
		req.Header.Set(TraceHeader, hex.EncodeToString(trace.EncodeContext(tctx)))
	}
	// Forward the remaining deadline budget so the server-side gather
	// aborts when the caller's context does.
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			req.Header.Set(TimeoutHeader, remaining.String())
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface the caller's own cancellation unadorned so errors.Is
		// matches the in-process backends' behavior.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("serve: %s cancelled: %w", path, ctxErr)
		}
		return fmt.Errorf("serve: client %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return remoteError(resp.StatusCode, eb.Error, retryAfter(resp))
		}
		return fmt.Errorf("serve: client %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: client decode %s: %w", path, err)
	}
	return nil
}

// retryAfter parses the response's Retry-After header (integer
// seconds; the only form the server emits), answering 0 when absent or
// malformed.
func retryAfter(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	secs, err := strconv.ParseInt(h, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// remoteError rehydrates the sentinel structure clients match on:
// a 404 wraps store.ErrUnknownMetric, a 504 wraps
// context.DeadlineExceeded, and a 429 rebuilds an
// *admission.Overload carrying the Retry-After header — so errors.Is
// (and admission.Wait) work identically against a remote backend and
// an in-process one, the property the conformance suite pins.
func remoteError(status int, msg string, wait time.Duration) error {
	switch status {
	case http.StatusNotFound:
		return fmt.Errorf("%s: %w", msg, store.ErrUnknownMetric)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%s: %w", msg, &admission.Overload{RetryAfter: wait, Scope: "remote"})
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%s: %w", msg, context.DeadlineExceeded)
	default:
		return fmt.Errorf("serve: remote error (status %d): %s", status, msg)
	}
}

// Register declares a metric on the server and records its spec for
// answer decoding.
func (c *Client) Register(name string, spec ProtoSpec) error {
	if _, err := spec.Prototype(); err != nil {
		return err
	}
	err := c.do(context.Background(), http.MethodPost, "/v1/register",
		RegisterRequest{Name: name, Spec: spec}, nil)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.specs[name] = spec
	c.mu.Unlock()
	return nil
}

// Sync pulls the server's metric schema into the client's spec table —
// how a read-only client learns to decode answers for metrics it never
// registered.
func (c *Client) Sync() error {
	var out MetricsResponse
	if err := c.do(context.Background(), http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return err
	}
	c.mu.Lock()
	for name, spec := range out.Metrics {
		c.specs[name] = spec
	}
	c.mu.Unlock()
	return nil
}

// spec looks up a metric's recorded ProtoSpec.
func (c *Client) spec(metric string) (ProtoSpec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.specs[metric]
	return s, ok
}

// RegisterMetric implements analytics.Backend. A store.Prototype is a
// closure and cannot cross the wire, so this always fails: use
// Register(name, ProtoSpec) instead.
func (c *Client) RegisterMetric(name string, _ store.Prototype) error {
	return fmt.Errorf("serve: cannot register %q through RegisterMetric: a store.Prototype does not serialize; use Client.Register with a ProtoSpec", name)
}

// Observe implements analytics.Backend: one observation, one request.
// Use ObserveBatch to amortize the round trip.
func (c *Client) Observe(obs store.Observation) error {
	return c.ObserveBatch([]store.Observation{obs})
}

// ObserveBatch posts a batch of observations in one request. The
// observations' trace contexts do not cross the wire individually; the
// first valid one rides the trace header and the server re-attaches it
// to the whole batch.
func (c *Client) ObserveBatch(batch []store.Observation) error {
	if len(batch) == 0 {
		return nil
	}
	req := ObserveRequest{Observations: make([]WireObservation, len(batch))}
	var tctx trace.Context
	for i, obs := range batch {
		req.Observations[i] = WireObservation{
			Metric: obs.Metric, Key: obs.Key, Item: obs.Item,
			Value: obs.Value, Time: obs.Time,
		}
		if !tctx.Valid() && obs.Trace.Valid() {
			tctx = obs.Trace
		}
	}
	var out ObserveResponse
	return c.doTraced(context.Background(), tctx, http.MethodPost, "/v1/observe", req, &out)
}

// Query implements analytics.Backend.
func (c *Client) Query(req store.QueryRequest) (store.QueryResult, error) {
	return c.QueryContext(context.Background(), req)
}

// QueryContext implements analytics.ContextQuerier: ctx cancels the
// in-flight HTTP request, and its deadline rides the timeout header so
// the server aborts the backend gather too. The request's trace context
// rides the trace header; the server adopts it, so the remote spans
// land on this request's trace id.
func (c *Client) QueryContext(ctx context.Context, req store.QueryRequest) (store.QueryResult, error) {
	nreq, err := req.Normalize()
	if err != nil {
		return store.QueryResult{}, err
	}
	var body QueryResponse
	if err := c.doTraced(ctx, nreq.Trace, http.MethodPost, "/v1/query", WireRequest(nreq), &body); err != nil {
		return store.QueryResult{}, err
	}
	return DecodeResult(body, c.spec)
}

// QueryWire answers a query and returns the raw wire response — the
// escape hatch for callers that care about transport-level fields like
// Cached. The typed QueryContext path is built on the same endpoint.
func (c *Client) QueryWire(ctx context.Context, req store.QueryRequest) (QueryResponse, error) {
	nreq, err := req.Normalize()
	if err != nil {
		return QueryResponse{}, err
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", WireRequest(nreq), &out); err != nil {
		return QueryResponse{}, err
	}
	return out, nil
}

// Keys implements analytics.Backend. Transport errors answer the
// contract's empty value (Keys is a discovery call, not a validation
// call).
func (c *Client) Keys(metric string) []string {
	var out KeysResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/keys?metric="+url.QueryEscape(metric), nil, &out)
	if err != nil {
		return nil
	}
	return out.Keys
}

// Stats implements analytics.Backend; transport errors answer zeros.
func (c *Client) Stats() store.Stats {
	var out StatsResponse
	if err := c.do(context.Background(), http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return store.Stats{}
	}
	return out.Stats
}
