// admission_test.go: the serving edge's overload contract — a shed
// batch answers 429 with a Retry-After the client rehydrates into the
// same typed *admission.Overload an in-process caller sees, tenant
// buckets isolate noisy neighbors at the front door, and the negative
// result cache answers repeated unknown-metric queries without a
// backend round trip.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/analytics"
	"repro/internal/store"
)

// The client takes the amortized ingest path (one POST per batch), so
// it must advertise the BatchObserver surface the analytics helper
// dispatches on.
var _ analytics.BatchObserver = (*Client)(nil)

// fakeClock is a hand-advanced clock for deterministic bucket refill.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

// uniqBatch builds n same-metric observations against "uniq".
func uniqBatch(n int) []store.Observation {
	out := make([]store.Observation, n)
	for i := range out {
		out[i] = store.Observation{Metric: "uniq", Key: "k0", Item: fmt.Sprintf("u%d", i), Time: int64(i)}
	}
	return out
}

// postObserve sends a raw /v1/observe request (optionally with a tenant
// header) and returns the response; the caller owns Body.Close.
func postObserve(t *testing.T, url, tenant string, batch []store.Observation) *http.Response {
	t.Helper()
	req := ObserveRequest{Observations: make([]WireObservation, len(batch))}
	for i, o := range batch {
		req.Observations[i] = WireObservation{Metric: o.Metric, Key: o.Key, Item: o.Item, Value: o.Value, Time: o.Time}
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/observe", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set(DefaultTenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeOverload429 drives the edge past its admitted rate and pins
// the whole 429 exchange: header, body, typed client error, provable
// non-mutation, and recovery after exactly the quoted wait.
func TestServeOverload429(t *testing.T) {
	st, err := store.New(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	ctrl, err := admission.New(admission.Config{Rate: 1, Burst: 8, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Backend: analytics.Admit(st, ctrl), Admission: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if err := client.Register("uniq", DistinctSpec(12, 7)); err != nil {
		t.Fatal(err)
	}

	// Within the burst budget: the whole batch lands.
	if err := client.ObserveBatch(uniqBatch(8)); err != nil {
		t.Fatalf("batch within budget: %v", err)
	}
	if got := st.Stats().Observed; got != 8 {
		t.Fatalf("store observed %d, want 8", got)
	}

	// The bucket is empty: the next batch sheds whole, and the client
	// rehydrates the same typed sentinel an in-process caller gets.
	err = client.ObserveBatch(uniqBatch(4))
	if !errors.Is(err, admission.ErrOverloaded) {
		t.Fatalf("overloaded batch error %v, want ErrOverloaded", err)
	}
	wait, ok := admission.Wait(err)
	if !ok || wait <= 0 {
		t.Fatalf("rehydrated error %v carries no usable Retry-After (wait=%v ok=%v)", err, wait, ok)
	}
	var ov *admission.Overload
	if !errors.As(err, &ov) || ov.Scope != "remote" {
		t.Fatalf("rehydrated error %v, want *admission.Overload with scope remote", err)
	}
	if got := st.Stats().Observed; got != 8 {
		t.Fatalf("shed batch mutated the store: observed %d, want 8", got)
	}

	// The raw exchange: 429, integer-seconds Retry-After, accepted: 0.
	resp := postObserve(t, ts.URL, "", uniqBatch(4))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if h := resp.Header.Get("Retry-After"); h == "" || h == "0" {
		t.Fatalf("Retry-After header %q, want >= 1 second", h)
	}
	var body struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Accepted != 0 || body.Error == "" {
		t.Fatalf("429 body %+v, want accepted 0 and an error", body)
	}

	// Every rejection is accounted on the controller.
	if stats := ctrl.Stats(); stats.Shed != 8 {
		t.Fatalf("controller shed %d observations, want 8 (two rejected batches of 4)", stats.Shed)
	}

	// Waiting the quoted Retry-After re-admits.
	clk.advance(wait)
	if err := client.ObserveBatch(uniqBatch(1)); err != nil {
		t.Fatalf("batch after waiting the quoted Retry-After: %v", err)
	}
	if got := st.Stats().Observed; got != 9 {
		t.Fatalf("store observed %d after recovery, want 9", got)
	}
}

// TestServeTenantAdmission pins per-tenant fairness at the front door:
// one tenant exhausting its bucket sheds with 429 while another tenant
// (and thus the shared backend) keeps absorbing writes.
func TestServeTenantAdmission(t *testing.T) {
	st, err := store.New(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	ctrl, err := admission.New(admission.Config{TenantRate: 1, TenantBurst: 4, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Backend: st, Admission: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if err := client.Register("uniq", DistinctSpec(12, 7)); err != nil {
		t.Fatal(err)
	}

	resp := postObserve(t, ts.URL, "alice", uniqBatch(4))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice within budget: status %d", resp.StatusCode)
	}
	resp = postObserve(t, ts.URL, "alice", uniqBatch(1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice past budget: status %d, want 429", resp.StatusCode)
	}
	// Tenant admission runs before anything mutates: the shed request
	// left no trace below the edge.
	if got := st.Stats().Observed; got != 4 {
		t.Fatalf("store observed %d, want 4 (alice's shed write leaked)", got)
	}
	// Bob's bucket is untouched by alice's exhaustion.
	resp = postObserve(t, ts.URL, "bob", uniqBatch(4))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob after alice's shed: status %d, want 200", resp.StatusCode)
	}
	if got := st.Stats().Observed; got != 8 {
		t.Fatalf("store observed %d, want 8", got)
	}
	if stats := ctrl.Stats(); stats.ShedTenant != 1 {
		t.Fatalf("controller shed %d tenant observations, want 1", stats.ShedTenant)
	}
}

// TestServeNegativeCache pins the negative result cache: a repeated
// unknown-metric query answers 404 at the edge, registering the metric
// forgets the entry, and multi-metric failures are never cached (the
// error does not name the missing metric).
func TestServeNegativeCache(t *testing.T) {
	st, err := store.New(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Backend: st, NegCache: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	if err := client.Register("uniq", DistinctSpec(12, 7)); err != nil {
		t.Fatal(err)
	}
	if err := client.Sync(); err != nil {
		t.Fatal(err)
	}

	ghost := store.QueryRequest{Metric: "ghost", Key: "k0", From: 0, To: 10}
	// Miss: the backend answers the 404 and the edge notes the metric.
	if _, err := client.Query(ghost); !errors.Is(err, store.ErrUnknownMetric) {
		t.Fatalf("first ghost query error %v, want ErrUnknownMetric", err)
	}
	if srv.neg.Len() != 1 {
		t.Fatalf("negative cache holds %d entries after a single-metric 404, want 1", srv.neg.Len())
	}
	// Hit: same 404 contract, answered at the edge.
	if _, err := client.Query(ghost); !errors.Is(err, store.ErrUnknownMetric) {
		t.Fatalf("cached ghost query error %v, want ErrUnknownMetric", err)
	}
	hits, _, _ := srv.neg.Stats()
	if hits != 1 {
		t.Fatalf("negative cache hits %d, want 1", hits)
	}

	// Multi-metric failures are not cached: the error cannot name which
	// metric is missing.
	multi := store.QueryRequest{Metrics: []string{"uniq", "ghost2"}, Key: "k0", From: 0, To: 10}
	if _, err := client.Query(multi); !errors.Is(err, store.ErrUnknownMetric) {
		t.Fatalf("multi-metric ghost query error %v, want ErrUnknownMetric", err)
	}
	if srv.neg.Len() != 1 {
		t.Fatalf("negative cache holds %d entries, want 1 (multi-metric failure cached)", srv.neg.Len())
	}

	// Register forgets the entry: the metric is immediately queryable.
	if err := client.Register("ghost", DistinctSpec(12, 7)); err != nil {
		t.Fatal(err)
	}
	res, err := client.Query(ghost)
	if err != nil {
		t.Fatalf("ghost query after register: %v", err)
	}
	if res.Len() != 1 {
		t.Fatalf("ghost answer cells %d, want 1 empty cell", res.Len())
	}
}
