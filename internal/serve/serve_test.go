// The serving-tier suite: wire-codec round-trip property, cross-backend
// conformance over HTTP (client answers byte-identical to in-process
// Backend.Query, with and without the read cache), cache hit/invalidate
// flows at the edge, deadline propagation into the cluster's
// scatter-gather, and remote trace adoption.
package serve

import (
	"bytes"
	"context"
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/dstore"
	"repro/internal/lambda"
	"repro/internal/rcache"
	"repro/internal/store"
	"repro/internal/trace"
)

// The client must satisfy the full serving contract.
var (
	_ analytics.Backend        = (*Client)(nil)
	_ analytics.ContextQuerier = (*Client)(nil)
)

const testBucket = 10

func testGeom() store.Config {
	return store.Config{Shards: 4, BucketWidth: testBucket, RingBuckets: 64}
}

// testSpecs is one metric per synopsis family, mirroring the analytics
// conformance dataset.
func testSpecs() map[string]ProtoSpec {
	return map[string]ProtoSpec{
		"uniq": DistinctSpec(12, 7),
		"hits": FreqSpec(512, 4, 7),
		"top":  TopKSpec(32),
		"lat":  QuantileSpec(16, 64),
	}
}

// feed streams the deterministic dataset through be: keys k0..k3, times
// [0, span), one observation per family per tick.
func feed(t *testing.T, be analytics.Backend, span int64) {
	t.Helper()
	for i := int64(0); i < span; i++ {
		key := fmt.Sprintf("k%d", i%4)
		item := fmt.Sprintf("u%d", i%13)
		for _, obs := range []store.Observation{
			{Metric: "uniq", Key: key, Item: item, Time: i},
			{Metric: "hits", Key: key, Item: item, Value: 2, Time: i},
			{Metric: "top", Key: key, Item: item, Time: i},
			{Metric: "lat", Key: key, Value: uint64(i), Time: i},
		} {
			if err := be.Observe(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func marshalSyn(t *testing.T, syn store.Synopsis) []byte {
	t.Helper()
	m, ok := syn.(encoding.BinaryMarshaler)
	if !ok {
		t.Fatalf("synopsis %T not marshalable", syn)
	}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireSameResult pins byte-identical answers between two results.
func requireSameResult(t *testing.T, label string, want, got store.QueryResult) {
	t.Helper()
	wa, ga := want.Answers(), got.Answers()
	if len(wa) != len(ga) {
		t.Fatalf("%s: answer count %d != %d", label, len(ga), len(wa))
	}
	for i := range wa {
		w, g := wa[i], ga[i]
		if w.Metric != g.Metric || w.Key != g.Key || w.Aggregate != g.Aggregate {
			t.Fatalf("%s[%d]: cell (%s,%s,%v) != (%s,%s,%v)",
				label, i, g.Metric, g.Key, g.Aggregate, w.Metric, w.Key, w.Aggregate)
		}
		if w.Family() != g.Family() || w.Items() != g.Items() {
			t.Fatalf("%s[%d]: family/items mismatch", label, i)
		}
		if !bytes.Equal(marshalSyn(t, w.Raw()), marshalSyn(t, g.Raw())) {
			t.Fatalf("%s[%d] %s/%s: synopsis bytes differ", label, i, w.Metric, w.Key)
		}
	}
}

// TestServeWireRoundTrip is the codec property: for every synopsis
// family, QueryResult -> wire JSON -> QueryResult reproduces the
// synopsis bytes exactly, and re-encoding reproduces the wire JSON
// exactly.
func TestServeWireRoundTrip(t *testing.T) {
	st, err := store.New(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	for name, spec := range specs {
		proto, err := spec.Prototype()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.RegisterMetric(name, proto); err != nil {
			t.Fatal(err)
		}
	}
	feed(t, st, 200)

	for metric := range specs {
		for _, req := range []store.QueryRequest{
			{Metric: metric, Keys: []string{"k0", "k2"}, From: 0, To: 200},
			{Metric: metric, AllKeys: true, Aggregate: true, From: 50, To: 150},
			{Metric: metric, Key: "never-written", From: 0, To: 200},
		} {
			res, err := st.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := EncodeResult(res)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			var back QueryResponse
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeResult(back, func(m string) (ProtoSpec, bool) {
				s, ok := specs[m]
				return s, ok
			})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, metric, res, decoded)

			// Re-encoding the decoded result reproduces the wire bytes.
			wire2, err := EncodeResult(decoded)
			if err != nil {
				t.Fatal(err)
			}
			raw2, err := json.Marshal(wire2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, raw2) {
				t.Fatalf("%s: wire JSON not stable across decode/re-encode", metric)
			}
		}
	}
}

// serveHarness is one backend behind an httptest server.
type serveHarness struct {
	name   string
	be     analytics.Backend
	drain  func() error
	cache  *rcache.Cache
	server *Server
	client *Client
}

// newHarness builds backend kind behind a serve.Server (+cache when
// withCache), registers the family metrics and returns a synced client.
func newHarness(t *testing.T, kind string, withCache bool) *serveHarness {
	t.Helper()
	h := &serveHarness{name: kind, drain: func() error { return nil }}
	start := func() {}
	switch kind {
	case "store":
		st, err := store.New(testGeom())
		if err != nil {
			t.Fatal(err)
		}
		h.be = st
	case "cluster":
		cl, err := dstore.New(dstore.Config{Partitions: 4, Store: testGeom()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		// Nodes start after metric registration (the cluster's ordering
		// contract), so the start is deferred below the register loop.
		start = func() {
			for i := 0; i < 2; i++ {
				if _, err := cl.StartNode(); err != nil {
					t.Fatal(err)
				}
			}
		}
		h.be, h.drain = cl.Router(), cl.Drain
	case "lambda":
		ar, err := lambda.New(lambda.Config{Partitions: 2, Batch: testGeom(), Speed: testGeom()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ar.Close() })
		h.be, h.drain = ar, ar.Drain
	default:
		t.Fatalf("unknown backend kind %q", kind)
	}
	if withCache {
		var err error
		h.cache, err = rcache.New(rcache.Config{BucketWidth: testBucket})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(Config{Backend: h.be, Cache: h.cache})
	if err != nil {
		t.Fatal(err)
	}
	h.server = srv
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	h.client = NewClient(ts.URL, ts.Client())
	for name, spec := range testSpecs() {
		if err := h.client.Register(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	start()
	return h
}

// feedWire streams the dataset through the serving edge (batched), so
// the cache watermarks see every write, then drains the backend.
func (h *serveHarness) feedWire(t *testing.T, span int64) {
	t.Helper()
	var batch []store.Observation
	for i := int64(0); i < span; i++ {
		key := fmt.Sprintf("k%d", i%4)
		item := fmt.Sprintf("u%d", i%13)
		batch = append(batch,
			store.Observation{Metric: "uniq", Key: key, Item: item, Time: i},
			store.Observation{Metric: "hits", Key: key, Item: item, Value: 2, Time: i},
			store.Observation{Metric: "top", Key: key, Item: item, Time: i},
			store.Observation{Metric: "lat", Key: key, Value: uint64(i), Time: i},
		)
		if len(batch) >= 256 {
			if err := h.client.ObserveBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := h.client.ObserveBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := h.drain(); err != nil {
		t.Fatal(err)
	}
}

// conformanceRequests is the query shape matrix every backend must
// answer identically over the wire and in process.
func conformanceRequests() []store.QueryRequest {
	return []store.QueryRequest{
		{Metric: "uniq", Key: "k1", From: 0, To: 100},
		{Metric: "hits", Keys: []string{"k0", "k3"}, From: 20, To: 90},
		{Metric: "top", AllKeys: true, From: 0, To: 100},
		{Metric: "lat", AllKeys: true, Aggregate: true, From: 0, To: 100},
		{Metrics: []string{"uniq", "top"}, Keys: []string{"k0", "k1"}, From: 10, To: 60},
		{Metric: "uniq", Key: "never-written", From: 0, To: 100},
	}
}

// TestServeConformance pins the over-the-wire contract: for every
// backend, with and without the read cache, the HTTP client's answers
// are byte-identical to in-process Backend.Query — and under the cache,
// asking twice stays identical (the second answer comes from the
// cache).
func TestServeConformance(t *testing.T) {
	for _, kind := range []string{"store", "cluster", "lambda"} {
		for _, withCache := range []bool{false, true} {
			name := kind
			if withCache {
				name += "-cached"
			}
			t.Run(name, func(t *testing.T) {
				h := newHarness(t, kind, withCache)
				h.feedWire(t, 100)
				for i, req := range conformanceRequests() {
					want, err := h.be.Query(req)
					if err != nil {
						t.Fatal(err)
					}
					got, err := h.client.Query(req)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, fmt.Sprintf("req%d", i), want, got)
					// Ask again: under the cache the repeat may be served
					// from it and must still match exactly.
					again, err := h.client.Query(req)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, fmt.Sprintf("req%d-repeat", i), want, again)
				}
				// Unknown metrics keep the sentinel across the wire.
				_, err := h.client.Query(store.QueryRequest{Metric: "nope", Key: "k", From: 0, To: 10})
				if !errors.Is(err, store.ErrUnknownMetric) {
					t.Fatalf("unknown metric error = %v, want ErrUnknownMetric", err)
				}
				// Keys crosses the wire as the same set.
				want := append([]string(nil), h.be.Keys("uniq")...)
				got := h.client.Keys("uniq")
				if len(want) != len(got) {
					t.Fatalf("Keys: %v != %v", got, want)
				}
				// Stats answers the backend's counters.
				if h.client.Stats().Observed != h.be.Stats().Observed {
					t.Fatal("Stats.Observed differs across the wire")
				}
			})
		}
	}
}

// TestServeCacheFlow drives the edge-cache lifecycle over HTTP: a
// sealed-range query is cold, its repeat is a cache hit, and a write
// that advances the metric's open bucket invalidates — the next query
// recomputes.
func TestServeCacheFlow(t *testing.T) {
	h := newHarness(t, "store", true)
	h.feedWire(t, 100) // open bucket is 9; [0, 90) fully sealed

	req := store.QueryRequest{Metric: "top", Key: "k1", From: 0, To: 90}
	cold, err := h.client.QueryWire(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first sealed-range query must not be cached")
	}
	warm, err := h.client.QueryWire(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat sealed-range query must be a cache hit")
	}
	if a, b := mustJSON(t, cold.Answers), mustJSON(t, warm.Answers); !bytes.Equal(a, b) {
		t.Fatal("cached answer differs from cold answer")
	}

	// An unsealed range is never cached.
	open, err := h.client.QueryWire(context.Background(), store.QueryRequest{Metric: "top", Key: "k1", From: 0, To: 100})
	if err != nil {
		t.Fatal(err)
	}
	if open.Cached {
		t.Fatal("range touching the open bucket must not be cached")
	}

	// A write advancing the open bucket invalidates the cached entry.
	if err := h.client.Observe(store.Observation{Metric: "top", Key: "k1", Item: "late", Time: 120}); err != nil {
		t.Fatal(err)
	}
	after, err := h.client.QueryWire(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-advance query must recompute, not hit the cache")
	}
	if st := h.cache.Stats(); st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 hit", st)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeDeadline proves the deadline path end to end: a request
// whose header budget has already lapsed aborts the cluster's
// scatter-gather with 504 / context.DeadlineExceeded — and the nodes
// are not poisoned: the same query with a sane budget answers
// correctly afterwards.
func TestServeDeadline(t *testing.T) {
	h := newHarness(t, "cluster", false)
	h.feedWire(t, 100)

	req := store.QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: 100}
	body := mustJSON(t, WireRequest(mustNormalize(t, req)))

	hreq, err := http.NewRequest(http.MethodPost, h.client.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(TimeoutHeader, "1ns")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired budget answered %d, want 504", resp.StatusCode)
	}
	var eb ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "cancelled") {
		t.Fatalf("504 body %q does not mention cancellation", eb.Error)
	}

	// The client surfaces the sentinel for errors.Is.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline lapse
	if _, err := h.client.QueryContext(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("client deadline error = %v, want DeadlineExceeded", err)
	}

	// No poisoned node state: the identical query with a real budget
	// answers exactly what the in-process router answers.
	want, err := h.be.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.client.QueryContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "post-deadline", want, got)
}

func mustNormalize(t *testing.T, req store.QueryRequest) store.QueryRequest {
	t.Helper()
	n, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestServeCancelledScatterGather pins the in-process half of the
// deadline satellite: a cancelled context aborts dstore's fenced
// scatter-gather with the context sentinel, and the cluster keeps
// serving afterwards.
func TestServeCancelledScatterGather(t *testing.T) {
	cl, err := dstore.New(dstore.Config{Partitions: 4, Store: testGeom()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	proto, err := testSpecs()["uniq"].Prototype()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterMetric("uniq", proto); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	r := cl.Router()
	for i := int64(0); i < 100; i++ {
		if err := r.Observe(store.Observation{Metric: "uniq", Key: fmt.Sprintf("k%d", i%4), Item: fmt.Sprint(i), Time: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}

	req := store.QueryRequest{Metric: "uniq", AllKeys: true, From: 0, To: 100}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.QueryContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scatter-gather error = %v, want context.Canceled", err)
	}
	// Node state intact: the same query answers normally afterwards.
	want, err := r.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.QueryContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "post-cancel", want, got)
}

// TestServeTraceAdoption pins cross-process stitching: a client-side
// trace context rides the header, the server adopts the remote trace
// id, and the retained server-side trace carries the edge span plus the
// backend's stage spans under the CLIENT's id.
func TestServeTraceAdoption(t *testing.T) {
	st, err := store.New(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	serverTrc := trace.NewTracer(trace.Config{SampleRate: 1})
	st.SetTracer(serverTrc)
	srv, err := NewServer(Config{Backend: st, Tracer: serverTrc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	for name, spec := range testSpecs() {
		if err := client.Register(name, spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Observe(store.Observation{Metric: "uniq", Key: "k0", Item: "u1", Time: 5}); err != nil {
		t.Fatal(err)
	}

	clientTrc := trace.NewTracer(trace.Config{SampleRate: 1})
	sp := clientTrc.StartRoot("client.query")
	req := store.QueryRequest{Metric: "uniq", Key: "k0", From: 0, To: 10, Trace: sp.Context()}
	wantID := sp.Context().Trace
	if _, err := client.Query(req); err != nil {
		t.Fatal(err)
	}
	sp.Finish()

	var adopted *trace.TraceSnapshot
	for _, snap := range serverTrc.Traces() {
		if snap.ID == wantID {
			adopted = &snap
			break
		}
	}
	if adopted == nil {
		t.Fatalf("server retained no trace with the client's id %x", uint64(wantID))
	}
	var names []string
	for _, s := range adopted.Spans {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "serve.query") {
		t.Fatalf("adopted trace %v lacks the edge span", names)
	}
	if !strings.Contains(joined, "store.query") && len(adopted.Spans) < 2 {
		t.Fatalf("adopted trace %v lacks backend stage spans", names)
	}
	if st := serverTrc.Stats(); st.Started == 0 {
		t.Fatal("adoption did not start a server-side root")
	}
}

// TestServeRegisterValidation covers the register edge: duplicate names
// conflict, unknown families fail, and the HTTP surface maps both.
func TestServeRegisterValidation(t *testing.T) {
	h := newHarness(t, "store", false)
	if err := h.client.Register("uniq", DistinctSpec(12, 7)); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if err := h.client.Register("bad", ProtoSpec{Family: "nope"}); err == nil {
		t.Fatal("unknown family must fail")
	}
	if err := h.client.RegisterMetric("x", func() store.Synopsis { return nil }); err == nil {
		t.Fatal("RegisterMetric over the wire must refuse (prototypes don't serialize)")
	}
	// A fresh read-only client learns the schema via Sync.
	ro := NewClient(h.client.base, nil)
	if err := ro.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ro.spec("uniq"); !ok {
		t.Fatal("Sync did not import the server schema")
	}
}

// TestServeBadRequests covers wire validation: malformed JSON, empty
// ranges and bad timeout headers answer 400 with an error body.
func TestServeBadRequests(t *testing.T) {
	h := newHarness(t, "store", false)
	post := func(path, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, h.client.base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("/v1/query", "{not json", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON answered %d", resp.StatusCode)
	}
	if resp := post("/v1/query", `{"metrics":["uniq"],"from":5,"to":5}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty range answered %d", resp.StatusCode)
	}
	if resp := post("/v1/query", `{"metrics":["uniq"],"keys":["k"],"from":0,"to":10}`,
		map[string]string{TimeoutHeader: "soon"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout header answered %d", resp.StatusCode)
	}
	if resp := post("/v1/observe", `{"observations":[{"metric":"ghost","key":"k","time":1}]}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("observe of unknown metric answered %d", resp.StatusCode)
	}
}
