// wire.go: the JSON codec for the serving API's request and response
// bodies.
//
// The design rule: the synopsis itself crosses the wire as its binary
// checkpoint encoding (MarshalBinary, base64 inside JSON), so a client
// that knows the metric's ProtoSpec decodes an answer into a synopsis
// byte-identical to the server's — re-marshaling the decoded synopsis
// reproduces the wire bytes exactly, which the round-trip property test
// pins for all four families. Alongside the opaque bytes every answer
// carries a small human-readable view (distinct estimate, top items,
// canned quantiles) so `curl | jq` is useful without a decoder.
package serve

import (
	"encoding"
	"fmt"

	"repro/internal/store"
)

// WireObservation is one observation in an /v1/observe body.
type WireObservation struct {
	Metric string `json:"metric"`
	Key    string `json:"key,omitempty"`
	Item   string `json:"item,omitempty"`
	Value  uint64 `json:"value,omitempty"`
	Time   int64  `json:"time"`
}

// ObserveRequest is the /v1/observe body: a batch of observations,
// absorbed in order.
type ObserveRequest struct {
	Observations []WireObservation `json:"observations"`
}

// ObserveResponse acknowledges an ingest batch. Ingest is
// all-or-nothing at the edge: the batch is validated (and admitted)
// whole before anything mutates, so an error answers accepted: 0 and
// success answers the full batch size.
type ObserveResponse struct {
	// Accepted counts the observations absorbed: the whole batch on
	// success, 0 on error.
	Accepted int `json:"accepted"`
}

// RegisterRequest is the /v1/register body.
type RegisterRequest struct {
	Name string    `json:"name"`
	Spec ProtoSpec `json:"spec"`
}

// QueryRequest is the /v1/query body: store.QueryRequest minus the
// process-local trace context (which travels as the X-Analytics-Trace
// header instead).
type QueryRequest struct {
	Metrics   []string `json:"metrics"`
	Keys      []string `json:"keys,omitempty"`
	AllKeys   bool     `json:"all_keys,omitempty"`
	From      int64    `json:"from"`
	To        int64    `json:"to"`
	Aggregate bool     `json:"aggregate,omitempty"`
}

// Request converts the wire form to the store's typed request.
func (q QueryRequest) Request() store.QueryRequest {
	return store.QueryRequest{
		Metrics:   q.Metrics,
		Keys:      q.Keys,
		AllKeys:   q.AllKeys,
		From:      q.From,
		To:        q.To,
		Aggregate: q.Aggregate,
	}
}

// WireRequest converts a typed request to its wire form (the client's
// encode half). The trace context is dropped here and re-attached as a
// header by the client. The Metric/Key singletons are intentionally not
// mapped: the client normalizes before encoding, so the wire always
// carries the canonical plural form.
func WireRequest(req store.QueryRequest) QueryRequest {
	return QueryRequest{
		Metrics:   req.Metrics,
		Keys:      req.Keys,
		AllKeys:   req.AllKeys,
		From:      req.From,
		To:        req.To,
		Aggregate: req.Aggregate,
	}
}

// WireCounted is one heavy-hitter cell in a top-k answer view.
type WireCounted struct {
	Item  string `json:"item"`
	Count uint64 `json:"count"`
}

// WireAnswer is one answer cell. Synopsis is the cell's binary
// checkpoint encoding (base64 in JSON); the view fields are lossy
// conveniences derived from it at encode time.
type WireAnswer struct {
	Metric    string `json:"metric"`
	Key       string `json:"key,omitempty"`
	Aggregate bool   `json:"aggregate,omitempty"`
	Family    string `json:"family"`
	Items     uint64 `json:"items"`
	Synopsis  []byte `json:"synopsis"`

	// Human-readable views, per family.
	Distinct  uint64            `json:"distinct,omitempty"`  // distinct
	Top       []WireCounted     `json:"top,omitempty"`       // topk
	Quantiles map[string]uint64 `json:"quantiles,omitempty"` // quantile
}

// QueryResponse is the /v1/query response body.
type QueryResponse struct {
	Answers []WireAnswer `json:"answers"`
	// Cached marks an answer served from the read cache (sealed-range
	// results only; see internal/rcache).
	Cached bool `json:"cached"`
}

// wireFamily maps the store's family enum to wire names (ProtoSpec
// family strings).
func wireFamily(f store.Family) string {
	switch f {
	case store.FamilyDistinct:
		return FamilyDistinct
	case store.FamilyFreq:
		return FamilyFreq
	case store.FamilyTopK:
		return FamilyTopK
	case store.FamilyQuantile:
		return FamilyQuantile
	default:
		return "other"
	}
}

// viewTopK bounds the top-k view; the full summary rides in Synopsis.
const viewTopK = 10

// EncodeAnswer renders one answer cell for the wire.
func EncodeAnswer(a store.Answer) (WireAnswer, error) {
	syn := a.Raw()
	m, ok := syn.(encoding.BinaryMarshaler)
	if !ok {
		return WireAnswer{}, fmt.Errorf("serve: synopsis %T has no binary encoding", syn)
	}
	b, err := m.MarshalBinary()
	if err != nil {
		return WireAnswer{}, fmt.Errorf("serve: encode answer %s/%s: %w", a.Metric, a.Key, err)
	}
	w := WireAnswer{
		Metric:    a.Metric,
		Key:       a.Key,
		Aggregate: a.Aggregate,
		Family:    wireFamily(a.Family()),
		Items:     a.Items(),
		Synopsis:  b,
	}
	switch a.Family() {
	case store.FamilyDistinct:
		w.Distinct = a.Distinct()
	case store.FamilyTopK:
		for _, c := range a.TopK(viewTopK) {
			w.Top = append(w.Top, WireCounted{Item: c.Item, Count: c.Count})
		}
	case store.FamilyQuantile:
		w.Quantiles = map[string]uint64{
			"p50": a.Quantile(0.50),
			"p95": a.Quantile(0.95),
			"p99": a.Quantile(0.99),
		}
	}
	return w, nil
}

// EncodeResult renders a full result for the wire.
func EncodeResult(res store.QueryResult) (QueryResponse, error) {
	answers := res.Answers()
	out := QueryResponse{Answers: make([]WireAnswer, 0, len(answers))}
	for _, a := range answers {
		w, err := EncodeAnswer(a)
		if err != nil {
			return QueryResponse{}, err
		}
		out.Answers = append(out.Answers, w)
	}
	return out, nil
}

// DecodeAnswer rebuilds one typed answer cell from its wire form, using
// spec to construct the receiver synopsis. The decoded synopsis is
// byte-identical to the one the server marshaled (same parameters, same
// checkpoint codec), so re-encoding reproduces the wire bytes.
func DecodeAnswer(w WireAnswer, spec ProtoSpec) (store.Answer, error) {
	proto, err := spec.Prototype()
	if err != nil {
		return store.Answer{}, err
	}
	syn := proto()
	u, ok := syn.(encoding.BinaryUnmarshaler)
	if !ok {
		return store.Answer{}, fmt.Errorf("serve: synopsis %T has no binary decoding", syn)
	}
	if err := u.UnmarshalBinary(w.Synopsis); err != nil {
		return store.Answer{}, fmt.Errorf("serve: decode answer %s/%s: %w", w.Metric, w.Key, err)
	}
	if w.Aggregate {
		return store.NewAggregateAnswer(w.Metric, syn), nil
	}
	return store.NewAnswer(w.Metric, w.Key, syn), nil
}

// DecodeResult rebuilds a typed result from the wire, looking up each
// metric's ProtoSpec through specOf (typically the client's synced
// table). Unknown metrics fail the decode — an answer without a spec
// has no receiver to decode into.
func DecodeResult(res QueryResponse, specOf func(metric string) (ProtoSpec, bool)) (store.QueryResult, error) {
	answers := make([]store.Answer, 0, len(res.Answers))
	for _, w := range res.Answers {
		spec, ok := specOf(w.Metric)
		if !ok {
			return store.QueryResult{}, fmt.Errorf("serve: no ProtoSpec for metric %q (Register or Sync first)", w.Metric)
		}
		a, err := DecodeAnswer(w, spec)
		if err != nil {
			return store.QueryResult{}, err
		}
		answers = append(answers, a)
	}
	return store.NewQueryResult(answers), nil
}

// KeysResponse is the /v1/keys response body.
type KeysResponse struct {
	Metric string   `json:"metric"`
	Keys   []string `json:"keys"`
}

// MetricsResponse is the /v1/metrics response body: the server's
// registered metric schema.
type MetricsResponse struct {
	Metrics map[string]ProtoSpec `json:"metrics"`
}

// StatsResponse is the /v1/stats response body.
type StatsResponse struct {
	Stats store.Stats `json:"stats"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
