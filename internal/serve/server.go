// server.go: the HTTP serving edge over the analytics.Backend contract.
//
// The server exposes the full contract — register, observe, query,
// keys, stats — as a small JSON API, and mounts the telemetry handler
// (/metrics, /debug/analytics, /debug/traces, /debug/slow, pprof) on
// the same mux, so one port serves both the data plane and the
// observability plane, exactly like the in-process demos do.
//
// Two pieces of request context cross the wire as headers:
//
//   - X-Analytics-Timeout carries the caller's per-request deadline as
//     a Go duration ("250ms"). The server clamps it to MaxTimeout,
//     derives a context, and threads it through the backend's gather
//     (store shard fan-out, cluster scatter-gather) via
//     analytics.QueryContext; an expired deadline aborts the gather and
//     answers 504. Absent header: DefaultTimeout.
//   - X-Analytics-Trace carries the client's trace context (hex of
//     trace.EncodeContext). The server adopts the remote trace
//     (Tracer.AdoptRemote), so the edge span and every backend stage
//     span underneath stitch onto the CALLER's trace id, and the trace
//     surfaces on /debug/traces show the cross-process request end to
//     end.
//
// When a read cache (internal/rcache) is configured, every observation
// the edge forwards first bumps the cache's invalidation watermarks and
// every query consults the cache before the backend; responses carry
// "cached": true when served from it. The cache is exact from the
// edge's point of view as long as all writes enter through the edge —
// see the rcache package comment for the contract (and for the
// eventual-consistency caveat cluster-backed deployments inherit).
package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/analytics"
	"repro/internal/rcache"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Wire headers. TimeoutHeader holds a Go duration string; TraceHeader
// holds the 32-hex-char trace.EncodeContext form. DefaultTenantHeader
// names the tenant a write batch is billed to when admission is on.
const (
	TimeoutHeader       = "X-Analytics-Timeout"
	TraceHeader         = "X-Analytics-Trace"
	DefaultTenantHeader = "X-Analytics-Tenant"
)

// Config assembles a Server.
type Config struct {
	// Backend serves the contract. Required. Wrap it with
	// analytics.Instrument first if per-backend metrics and query roots
	// are wanted — the server composes, it does not instrument the
	// backend itself.
	Backend analytics.Backend
	// Cache, when non-nil, caches sealed-range query results at the
	// edge. The server owns feeding its invalidation watermarks.
	Cache *rcache.Cache
	// Registry, when non-nil, receives the server's own metrics
	// (analytics_serve_*) and backs the mounted /metrics surface.
	Registry *telemetry.Registry
	// Tracer, when non-nil, adopts remote trace contexts and backs the
	// mounted /debug/traces and /debug/slow surfaces.
	Tracer *trace.Tracer
	// Pprof mounts /debug/pprof/ (see telemetry.DebugOptions).
	Pprof bool
	// DefaultTimeout bounds requests that carry no TimeoutHeader
	// (default 5s). MaxTimeout clamps the header (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Admission, when non-nil, runs the edge's per-tenant fairness
	// check: every observe batch clears AdmitTenant before it can touch
	// the backend, billed to the TenantHeader value (absent header: the
	// "" tenant — all anonymous traffic shares one bucket). Global and
	// per-metric budgets belong on the backend side via analytics.Admit,
	// so they also bound writes that bypass the edge; either way a shed
	// request answers 429 with Retry-After and mutates nothing.
	Admission *admission.Controller
	// TenantHeader overrides the header AdmitTenant bills to (default
	// DefaultTenantHeader).
	TenantHeader string
	// NegCache bounds the negative-result cache for unknown-metric
	// query probes: repeats of a 404'd metric answer at the edge
	// without touching the backend, until the name is registered or the
	// entry ages out FIFO. 0 disables it.
	NegCache int
}

// Server is the HTTP serving edge. Build with NewServer, mount
// Handler() (or let cmd/analyticsd drive it).
type Server struct {
	cfg   Config
	be    analytics.Backend
	cache *rcache.Cache
	neg   *rcache.Negative
	ctrl  *admission.Controller
	trc   *trace.Tracer
	mux   *http.ServeMux

	mu    sync.RWMutex
	specs map[string]ProtoSpec

	queries  *telemetry.Counter
	observes *telemetry.Counter
	cached   *telemetry.Counter
	errs     map[string]*telemetry.Counter
	qryLat   *telemetry.Histogram
}

// NewServer wires the mux. The telemetry surfaces are mounted under /
// (so /metrics and /debug/* resolve), the data plane under /v1/.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: Config.Backend is required")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = time.Minute
	}
	if cfg.TenantHeader == "" {
		cfg.TenantHeader = DefaultTenantHeader
	}
	reg := cfg.Registry
	s := &Server{
		cfg:   cfg,
		be:    cfg.Backend,
		cache: cfg.Cache,
		neg:   rcache.NewNegative(cfg.NegCache),
		ctrl:  cfg.Admission,
		trc:   cfg.Tracer,
		mux:   http.NewServeMux(),
		specs: make(map[string]ProtoSpec),
		queries: reg.Counter("analytics_serve_queries_total",
			"Queries answered by the serving edge.", "layer", "serve"),
		observes: reg.Counter("analytics_serve_observations_total",
			"Observations ingested through the serving edge.", "layer", "serve"),
		cached: reg.Counter("analytics_serve_cached_answers_total",
			"Queries answered from the read cache.", "layer", "serve"),
		errs: map[string]*telemetry.Counter{},
		qryLat: reg.Histogram("analytics_serve_query_seconds",
			"Query latency at the serving edge, cache hits included.",
			0, 50e-3, 64, "layer", "serve"),
	}
	for _, route := range []string{"register", "observe", "query", "keys"} {
		s.errs[route] = reg.Counter("analytics_serve_errors_total",
			"Requests answered with a non-2xx status.", "layer", "serve", "route", route)
	}
	if s.cache != nil {
		s.cache.SetTelemetry(reg)
	}
	s.neg.SetTelemetry(reg)

	s.mux.HandleFunc("POST /v1/register", s.handleRegister)
	s.mux.HandleFunc("POST /v1/observe", s.handleObserve)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.Handle("/", telemetry.HandlerWith(reg, telemetry.DebugOptions{
		Tracer: cfg.Tracer,
		Pprof:  cfg.Pprof,
	}))
	return s, nil
}

// Handler returns the server's mux: data plane under /v1/, telemetry
// and debug surfaces at their conventional paths.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve starts an HTTP server for the handler on addr with the same
// hardened timeouts telemetry.ServeWith uses, returning the server for
// Close. Prefer cmd/analyticsd for a full daemon.
func (s *Server) Serve(addr string) *http.Server {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = srv.ListenAndServe() }()
	return srv
}

// Register binds a metric in process — the daemon's preload path. It
// registers the materialized prototype with the backend and records the
// spec for /v1/metrics.
func (s *Server) Register(name string, spec ProtoSpec) error {
	proto, err := spec.Prototype()
	if err != nil {
		return err
	}
	if err := s.be.RegisterMetric(name, proto); err != nil {
		return err
	}
	s.mu.Lock()
	s.specs[name] = spec
	s.mu.Unlock()
	// A fresh registration must not be shadowed by its own 404s.
	s.neg.Forget(name)
	return nil
}

// requestContext derives the per-request deadline context from the
// timeout header (clamped), defaulting to DefaultTimeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if h := r.Header.Get(TimeoutHeader); h != "" {
		parsed, err := time.ParseDuration(h)
		if err != nil || parsed <= 0 {
			return nil, nil, errors.New("serve: " + TimeoutHeader + " must be a positive Go duration")
		}
		d = min(parsed, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// remoteSpan adopts the caller's trace context from the trace header,
// returning a finished-by-caller edge span (nil when untraced). The
// first adoption of a trace id starts a root at this tracer, so a
// remote client's request is retained and slow-logged like a local one.
func (s *Server) remoteSpan(r *http.Request, name string) *trace.Span {
	h := r.Header.Get(TraceHeader)
	if h == "" || s.trc == nil {
		return nil
	}
	raw, err := hex.DecodeString(h)
	if err != nil {
		return nil
	}
	tctx := trace.DecodeContext(raw)
	if !tctx.Valid() {
		return nil
	}
	return s.trc.AdoptRemote(tctx, name)
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fail writes the error body and counts it against route. An overload
// error additionally carries its suggested backoff as a Retry-After
// header (integer seconds, rounded up so a sub-second wait never
// becomes "retry immediately").
func (s *Server) fail(w http.ResponseWriter, route string, code int, err error) {
	if c := s.errs[route]; c != nil {
		c.Inc()
	}
	if d, ok := admission.Wait(err); ok && code == http.StatusTooManyRequests {
		secs := int64(math.Ceil(d.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// errStatus maps a backend error to its wire status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrUnknownMetric):
		return http.StatusNotFound
	case errors.Is(err, admission.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "register", http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		s.fail(w, "register", http.StatusBadRequest, errors.New("serve: register: name is required"))
		return
	}
	if err := s.Register(req.Name, req.Spec); err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already registered") {
			code = http.StatusConflict
		}
		s.fail(w, "register", code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Registered string `json:"registered"`
	}{req.Name})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, "observe", http.StatusBadRequest, err)
		return
	}
	sp := s.remoteSpan(r, "serve.observe")
	var tctx trace.Context
	if sp != nil {
		sp.SetAttrs(trace.Int("batch", int64(len(req.Observations))))
		tctx = sp.Context()
		defer sp.Finish()
	}
	// Per-tenant fairness runs first, before anything can mutate: a shed
	// request provably left no trace anywhere below the edge.
	if err := s.ctrl.AdmitTenant(r.Header.Get(s.cfg.TenantHeader), len(req.Observations)); err != nil {
		s.observeError(w, sp, err)
		return
	}
	batch := make([]store.Observation, len(req.Observations))
	for i, wo := range req.Observations {
		batch[i] = store.Observation{
			Metric: wo.Metric, Key: wo.Key, Item: wo.Item,
			Value: wo.Value, Time: wo.Time, Trace: tctx,
		}
	}
	// One batched write per request: the backends validate the whole
	// batch up front and absorb all of it or none (the BatchObserver
	// contract), so a rejected batch reports accepted: 0 and the
	// invalidation watermarks below only move for acknowledged writes.
	if err := analytics.ObserveBatch(s.be, batch); err != nil {
		s.observeError(w, sp, err)
		return
	}
	if s.cache != nil {
		for i := range batch {
			// Invalidate after the write is absorbed: an acknowledged write
			// is never shadowed by a stale cached answer (see rcache).
			s.cache.NoteObserve(batch[i].Metric, batch[i].Time)
		}
	}
	s.observes.Add(uint64(len(batch)))
	writeJSON(w, http.StatusOK, ObserveResponse{Accepted: len(batch)})
}

// observeError answers one failed observe batch: nothing was absorbed,
// so accepted is 0; overloads carry Retry-After like every other
// route's fail path.
func (s *Server) observeError(w http.ResponseWriter, sp *trace.Span, err error) {
	code := errStatus(err)
	if code == http.StatusInternalServerError {
		code = http.StatusBadRequest
	}
	if sp != nil {
		sp.SetAttrs(trace.Str("error", err.Error()))
	}
	s.errs["observe"].Inc()
	if d, ok := admission.Wait(err); ok && code == http.StatusTooManyRequests {
		secs := int64(math.Ceil(d.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}{0, err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var wq QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&wq); err != nil {
		s.fail(w, "query", http.StatusBadRequest, err)
		return
	}
	req, err := wq.Request().Normalize()
	if err != nil {
		s.fail(w, "query", http.StatusBadRequest, err)
		return
	}
	// Recently-404'd metrics answer at the edge without a backend round
	// trip (in cluster mode an unknown metric otherwise costs a
	// scatter-gather just to re-learn its absence).
	if s.neg != nil {
		for _, m := range req.Metrics {
			if s.neg.Lookup(m) {
				s.fail(w, "query", http.StatusNotFound,
					fmt.Errorf("serve: %w %q (negative-cached)", store.ErrUnknownMetric, m))
				return
			}
		}
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.fail(w, "query", http.StatusBadRequest, err)
		return
	}
	defer cancel()

	sp := s.remoteSpan(r, "serve.query")
	if sp != nil {
		sp.SetAttrs(trace.Str("metrics", strings.Join(req.Metrics, ",")),
			trace.Int("from", req.From), trace.Int("to", req.To))
		req.Trace = sp.Context()
		defer sp.Finish()
	}

	var (
		res store.QueryResult
		hit bool
		tok rcache.Token
	)
	if s.cache != nil {
		res, hit, tok = s.cache.Lookup(req)
	}
	if !hit {
		res, err = analytics.QueryContext(ctx, s.be, req)
		if err != nil {
			if sp != nil {
				sp.SetAttrs(trace.Str("error", err.Error()))
			}
			// Pin the verdict for single-metric requests only — a
			// multi-metric error does not say which name was unknown.
			if errors.Is(err, store.ErrUnknownMetric) && len(req.Metrics) == 1 {
				s.neg.Note(req.Metrics[0])
			}
			s.fail(w, "query", errStatus(err), err)
			return
		}
		if s.cache != nil {
			s.cache.Fill(tok, res)
		}
	}

	body, err := EncodeResult(res)
	if err != nil {
		s.fail(w, "query", http.StatusInternalServerError, err)
		return
	}
	body.Cached = hit
	if hit {
		s.cached.Inc()
		if sp != nil {
			sp.SetAttrs(trace.Bool("cached", true))
		}
	}
	s.queries.Inc()
	s.qryLat.ObserveSince(t0)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		s.fail(w, "keys", http.StatusBadRequest, errors.New("serve: keys: metric query parameter is required"))
		return
	}
	keys := s.be.Keys(metric)
	if keys == nil {
		keys = []string{}
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, KeysResponse{Metric: metric, Keys: keys})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{Stats: s.be.Stats()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make(map[string]ProtoSpec, len(s.specs))
	for name, spec := range s.specs {
		out[name] = spec
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, MetricsResponse{Metrics: out})
}
