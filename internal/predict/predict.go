// Package predict implements the "Data Prediction" row of the tutorial's
// Table 1 — predicting/imputing missing values in sensor streams — with
// the methods its citations span: the Kalman filter (Kalman 1960;
// Vijayakumar–Plale use exactly this for missing sensor events), Holt's
// double exponential smoothing (the adaptive forecasting family of
// Wang et al.), and an online AR(1) model fit by recursive least squares
// (Rodrigues–Gama online prediction).
//
// All predictors implement Predictor so the T1.13 imputation experiment
// scores them uniformly: at each tick they forecast the next value before
// seeing it.
package predict

import (
	"math"

	"repro/internal/core"
)

// Predictor forecasts the next observation of a scalar stream.
type Predictor interface {
	// Predict returns the forecast for the next observation.
	Predict() float64
	// Observe feeds the actual next observation.
	Observe(v float64)
}

// Kalman is a 1-D constant-velocity Kalman filter: state (level, trend)
// with position observations. Process noise q and measurement noise r
// control the smoothing/agility trade-off.
type Kalman struct {
	level, trend float64
	// covariance matrix [p11 p12; p12 p22]
	p11, p12, p22 float64
	q, r          float64
	n             uint64
}

// NewKalman returns a constant-velocity Kalman filter with process noise q
// and measurement noise r.
func NewKalman(q, r float64) (*Kalman, error) {
	if q <= 0 || r <= 0 {
		return nil, core.Errf("Kalman", "noise", "q %v and r %v must be positive", q, r)
	}
	return &Kalman{q: q, r: r, p11: 1, p22: 1}, nil
}

// Predict returns the one-step-ahead state forecast.
func (k *Kalman) Predict() float64 { return k.level + k.trend }

// Observe performs the time update followed by the measurement update.
func (k *Kalman) Observe(v float64) {
	k.n++
	if k.n == 1 {
		k.level = v
		return
	}
	// Time update: x = F x, P = F P F' + Q with F = [1 1; 0 1].
	k.level += k.trend
	p11 := k.p11 + 2*k.p12 + k.p22 + k.q
	p12 := k.p12 + k.p22
	p22 := k.p22 + k.q
	// Measurement update with H = [1 0].
	s := p11 + k.r
	g1 := p11 / s
	g2 := p12 / s
	innov := v - k.level
	k.level += g1 * innov
	k.trend += g2 * innov
	k.p11 = (1 - g1) * p11
	k.p12 = (1 - g1) * p12
	k.p22 = p22 - g2*p12
}

// State returns the current (level, trend) estimate.
func (k *Kalman) State() (level, trend float64) { return k.level, k.trend }

// Holt is double exponential smoothing: level and trend with smoothing
// factors alpha and beta.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	n            uint64
}

// NewHolt returns a Holt forecaster with level smoothing alpha and trend
// smoothing beta, each in (0,1].
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, core.Errf("Holt", "alpha", "%v not in (0,1]", alpha)
	}
	if beta <= 0 || beta > 1 {
		return nil, core.Errf("Holt", "beta", "%v not in (0,1]", beta)
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// Predict returns level + trend.
func (h *Holt) Predict() float64 { return h.level + h.trend }

// Observe updates level and trend.
func (h *Holt) Observe(v float64) {
	h.n++
	if h.n == 1 {
		h.level = v
		return
	}
	prevLevel := h.level
	h.level = h.alpha*v + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
}

// AR1 fits x_t = c + phi*x_{t-1} online by exponentially forgetting
// recursive least squares, then forecasts with the fitted coefficients.
type AR1 struct {
	lambda     float64 // forgetting factor
	c, phi     float64
	last       float64
	haveLast   bool
	sxx, sx, s float64 // weighted sums for the normal equations
	sxy, sy    float64
}

// NewAR1 returns an online AR(1) model with forgetting factor lambda in
// (0, 1]; lambda = 1 means no forgetting.
func NewAR1(lambda float64) (*AR1, error) {
	if lambda <= 0 || lambda > 1 {
		return nil, core.Errf("AR1", "lambda", "%v not in (0,1]", lambda)
	}
	return &AR1{lambda: lambda}, nil
}

// Predict forecasts c + phi*last (or last itself before the fit warms up).
func (a *AR1) Predict() float64 {
	if !a.haveLast {
		return 0
	}
	if a.s < 3 {
		return a.last
	}
	return a.c + a.phi*a.last
}

// Observe feeds the next value and refreshes the weighted least-squares
// fit of (prev -> v) pairs.
func (a *AR1) Observe(v float64) {
	if a.haveLast {
		x, y := a.last, v
		a.s = a.lambda*a.s + 1
		a.sx = a.lambda*a.sx + x
		a.sy = a.lambda*a.sy + y
		a.sxx = a.lambda*a.sxx + x*x
		a.sxy = a.lambda*a.sxy + x*y
		den := a.s*a.sxx - a.sx*a.sx
		if math.Abs(den) > 1e-12 {
			a.phi = (a.s*a.sxy - a.sx*a.sy) / den
			a.c = (a.sy - a.phi*a.sx) / a.s
		}
	}
	a.last = v
	a.haveLast = true
}

// LastValue is the naive persistence baseline: predict the previous
// observation. Every forecasting study needs it to keep the fancy models
// honest.
type LastValue struct {
	last float64
	n    uint64
}

// NewLastValue returns the persistence forecaster.
func NewLastValue() *LastValue { return &LastValue{} }

// Predict returns the previous observation.
func (l *LastValue) Predict() float64 { return l.last }

// Observe records the observation.
func (l *LastValue) Observe(v float64) { l.last = v; l.n++ }

// ImputeRMSE runs a predictor over a series with missing entries (NaNs):
// at a missing index the predictor's forecast is used (and fed back as the
// observation); elsewhere the true value is fed. Returns the RMSE of the
// imputed values against truth — the T1.13 metric.
func ImputeRMSE(p Predictor, truth, masked []float64) float64 {
	var sumSq float64
	var count int
	for i := range masked {
		forecast := p.Predict()
		v := masked[i]
		if math.IsNaN(v) {
			d := forecast - truth[i]
			sumSq += d * d
			count++
			p.Observe(forecast)
		} else {
			p.Observe(v)
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(sumSq / float64(count))
}
