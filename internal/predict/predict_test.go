package predict

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestKalmanValidation(t *testing.T) {
	if _, err := NewKalman(0, 1); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := NewKalman(1, 0); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestKalmanTracksLinearTrend(t *testing.T) {
	k, _ := NewKalman(0.01, 1)
	rng := workload.NewRNG(1)
	// x_t = 3t + noise: after convergence the one-step forecast error
	// should be dominated by the noise, and the trend estimate near 3.
	var err2 float64
	n := 0
	for i := 0; i < 2000; i++ {
		v := 3*float64(i) + rng.NormFloat64()
		if i > 500 {
			d := k.Predict() - v
			err2 += d * d
			n++
		}
		k.Observe(v)
	}
	rmse := math.Sqrt(err2 / float64(n))
	if rmse > 2.5 {
		t.Fatalf("Kalman RMSE %v on linear trend", rmse)
	}
	if _, trend := k.State(); math.Abs(trend-3) > 0.3 {
		t.Fatalf("trend estimate %v, want ~3", trend)
	}
}

func TestHoltValidation(t *testing.T) {
	if _, err := NewHolt(0, 0.5); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := NewHolt(0.5, 2); err == nil {
		t.Fatal("beta=2 accepted")
	}
}

func TestHoltTracksTrend(t *testing.T) {
	h, _ := NewHolt(0.5, 0.3)
	for i := 0; i < 500; i++ {
		h.Observe(2 * float64(i))
	}
	if p := h.Predict(); math.Abs(p-1000) > 10 {
		t.Fatalf("Holt forecast %v, want ~1000", p)
	}
}

func TestAR1RecoversCoefficients(t *testing.T) {
	a, _ := NewAR1(1.0)
	rng := workload.NewRNG(2)
	// x_t = 5 + 0.8 x_{t-1} + eps
	x := 25.0 // stationary mean
	for i := 0; i < 5000; i++ {
		x = 5 + 0.8*x + rng.NormFloat64()*0.5
		a.Observe(x)
	}
	if math.Abs(a.phi-0.8) > 0.05 {
		t.Fatalf("phi %v, want ~0.8", a.phi)
	}
	if math.Abs(a.c-5) > 1.5 {
		t.Fatalf("c %v, want ~5", a.c)
	}
}

func TestAR1ForgettingAdapts(t *testing.T) {
	forget, _ := NewAR1(0.99)
	stubborn, _ := NewAR1(1.0)
	rng := workload.NewRNG(3)
	feed := func(a *AR1, phi float64, n int, x *float64) {
		for i := 0; i < n; i++ {
			*x = phi**x + rng.NormFloat64()*0.1
			a.Observe(*x)
		}
	}
	x1, x2 := 1.0, 1.0
	feed(forget, 0.2, 3000, &x1)
	feed(stubborn, 0.2, 3000, &x2)
	// Regime change to phi = 0.9.
	feed(forget, 0.9, 3000, &x1)
	feed(stubborn, 0.9, 3000, &x2)
	if math.Abs(forget.phi-0.9) > math.Abs(stubborn.phi-0.9) {
		t.Fatalf("forgetting (%v) did not adapt better than lambda=1 (%v)", forget.phi, stubborn.phi)
	}
}

func TestLastValue(t *testing.T) {
	l := NewLastValue()
	l.Observe(7)
	if l.Predict() != 7 {
		t.Fatalf("persistence forecast %v", l.Predict())
	}
}

func TestImputeRMSEOrdering(t *testing.T) {
	// On a smooth trending series with missing chunks, Kalman and Holt
	// must beat the persistence baseline — the T1.13 qualitative shape.
	spec := workload.SeriesSpec{N: 4000, Base: 10, Trend: 0.05, SeasonAmp: 3, SeasonLen: 200, NoiseSD: 0.3}
	s := spec.Generate(workload.NewRNG(4), nil)
	masked, missing := workload.WithMissing(workload.NewRNG(5), s.Values, 0.1)
	if len(missing) == 0 {
		t.Fatal("no values masked")
	}
	k, _ := NewKalman(0.01, 1)
	h, _ := NewHolt(0.5, 0.1)
	lv := NewLastValue()
	kal := ImputeRMSE(k, s.Values, masked)
	holt := ImputeRMSE(h, s.Values, masked)
	last := ImputeRMSE(lv, s.Values, masked)
	if kal >= last {
		t.Fatalf("Kalman RMSE %v not below last-value %v", kal, last)
	}
	if holt >= last {
		t.Fatalf("Holt RMSE %v not below last-value %v", holt, last)
	}
}

func TestImputeRMSENoMissing(t *testing.T) {
	vals := []float64{1, 2, 3}
	if r := ImputeRMSE(NewLastValue(), vals, vals); r != 0 {
		t.Fatalf("RMSE %v with nothing missing", r)
	}
}

func BenchmarkKalmanObserve(b *testing.B) {
	k, _ := NewKalman(0.01, 1)
	for i := 0; i < b.N; i++ {
		k.Observe(float64(i % 1000))
	}
}
