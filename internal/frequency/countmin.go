// Package frequency implements the "Finding Frequent Elements" row of the
// tutorial's Table 1 — the trending-hashtags problem — with the standard
// algorithm families the survey cites:
//
//   - counter-based: Misra–Gries Frequent, Lossy Counting, Sticky Sampling,
//     Space-Saving (Metwally et al.),
//   - sketch-based: Count-Min (Cormode–Muthukrishnan), with optional
//     conservative update, and Count Sketch (Charikar–Chen–Farach-Colton),
//   - structured: hierarchical heavy hitters over dotted keys,
//   - windowed: sliding-window top-k.
//
// Counter algorithms bound deterministic error by stream length; sketches
// bound probabilistic error by stream L1/L2 mass. The T1.7 experiment
// regenerates the recall/precision/space comparison across all of them.
package frequency

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hashutil"
)

// CountMin is the Count-Min sketch: a depth x width counter matrix where
// each row hashes items independently; a point query returns the minimum
// across rows, overestimating the true count by at most eps*N with
// probability 1-delta for width=e/eps, depth=ln(1/delta).
type CountMin struct {
	width        int
	depth        int
	counts       [][]uint64
	fam          hashutil.Family
	n            uint64
	conservative bool
}

// NewCountMin returns a sketch with the given width and depth.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	if width <= 0 {
		return nil, core.Errf("CountMin", "width", "%d must be positive", width)
	}
	if depth <= 0 {
		return nil, core.Errf("CountMin", "depth", "%d must be positive", depth)
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, counts: counts, fam: hashutil.NewFamily(seed)}, nil
}

// NewCountMinWithError returns a sketch sized for additive error eps*N with
// failure probability delta (width = ceil(e/eps), depth = ceil(ln(1/delta))).
func NewCountMinWithError(eps, delta float64, seed uint64) (*CountMin, error) {
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("CountMin", "eps", "%v not in (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, core.Errf("CountMin", "delta", "%v not in (0,1)", delta)
	}
	width := int(2.718281828/eps) + 1
	depth := 1
	for p := 1.0; p > delta; p /= 2.718281828 {
		depth++
	}
	return NewCountMin(width, depth, seed)
}

// SetConservative enables conservative update: an increment only raises the
// cells that currently equal the item's point estimate, tightening the
// overestimate at the cost of losing mergeability. The T1.7 ablation
// measures the accuracy gain.
func (cm *CountMin) SetConservative(on bool) { cm.conservative = on }

// Update adds count occurrences of the item.
func (cm *CountMin) Update(item []byte, count uint64) {
	h1, h2 := hashutil.Sum128(item, cm.fam.Seed(0))
	cm.updateHashed(h1, h2, count)
}

// UpdateString adds count occurrences of a string item.
func (cm *CountMin) UpdateString(item string, count uint64) {
	cm.Update([]byte(item), count)
}

func (cm *CountMin) updateHashed(h1, h2 uint64, count uint64) {
	cm.n += count
	if !cm.conservative {
		for d := 0; d < cm.depth; d++ {
			idx := hashutil.DoubleHash(h1, h2, uint(d)) % uint64(cm.width)
			cm.counts[d][idx] += count
		}
		return
	}
	// Conservative update: new value is max(cell, estimate+count).
	est := ^uint64(0)
	idxs := make([]uint64, cm.depth)
	for d := 0; d < cm.depth; d++ {
		idxs[d] = hashutil.DoubleHash(h1, h2, uint(d)) % uint64(cm.width)
		if v := cm.counts[d][idxs[d]]; v < est {
			est = v
		}
	}
	target := est + count
	for d := 0; d < cm.depth; d++ {
		if cm.counts[d][idxs[d]] < target {
			cm.counts[d][idxs[d]] = target
		}
	}
}

// Estimate returns the point estimate for item. It never undercounts.
func (cm *CountMin) Estimate(item []byte) uint64 {
	h1, h2 := hashutil.Sum128(item, cm.fam.Seed(0))
	est := ^uint64(0)
	for d := 0; d < cm.depth; d++ {
		idx := hashutil.DoubleHash(h1, h2, uint(d)) % uint64(cm.width)
		if v := cm.counts[d][idx]; v < est {
			est = v
		}
	}
	return est
}

// EstimateString returns the point estimate for a string item.
func (cm *CountMin) EstimateString(item string) uint64 { return cm.Estimate([]byte(item)) }

// Items returns the total count mass absorbed.
func (cm *CountMin) Items() uint64 { return cm.n }

// Reset returns the sketch to its freshly-constructed state, reusing the
// counter matrix, so epoch- or bucket-scoped callers can recycle sketches
// instead of reallocating width x depth counters.
func (cm *CountMin) Reset() {
	for i := range cm.counts {
		clear(cm.counts[i])
	}
	cm.n = 0
}

// Width returns the sketch's column count.
func (cm *CountMin) Width() int { return cm.width }

// Depth returns the sketch's row count.
func (cm *CountMin) Depth() int { return cm.depth }

// Bytes returns the counter-matrix footprint.
func (cm *CountMin) Bytes() int { return cm.width*cm.depth*8 + 32 }

// Merge adds another sketch cell-wise. Conservative sketches refuse to
// merge: cell-wise addition would overstate their tightened counts.
func (cm *CountMin) Merge(other *CountMin) error {
	if other == nil || cm.width != other.width || cm.depth != other.depth || cm.fam != other.fam {
		return core.ErrIncompatible
	}
	if cm.conservative || other.conservative {
		return core.ErrIncompatible
	}
	for d := range cm.counts {
		for w := range cm.counts[d] {
			cm.counts[d][w] += other.counts[d][w]
		}
	}
	cm.n += other.n
	return nil
}

// InnerProduct estimates the inner product of the frequency vectors
// summarized by two sketches (join-size estimation), as min over rows of
// the row dot products.
func (cm *CountMin) InnerProduct(other *CountMin) (uint64, error) {
	if other == nil || cm.width != other.width || cm.depth != other.depth || cm.fam != other.fam {
		return 0, core.ErrIncompatible
	}
	best := ^uint64(0)
	for d := 0; d < cm.depth; d++ {
		var dot uint64
		for w := 0; w < cm.width; w++ {
			dot += cm.counts[d][w] * other.counts[d][w]
		}
		if dot < best {
			best = dot
		}
	}
	return best, nil
}

// CountSketch is the Charikar–Chen–Farach-Colton sketch: like Count-Min but
// each cell is updated with a 4-wise independent random sign and the point
// query takes the median of the signed row estimates. Errors are two-sided
// but scale with the stream's L2 norm rather than L1, so it beats Count-Min
// on low-skew streams.
type CountSketch struct {
	width  int
	depth  int
	counts [][]int64
	tabs   []*hashutil.Tabulation // per-row 4-universal hash for index+sign
	n      uint64
}

// NewCountSketch returns a Count Sketch with the given width and depth.
func NewCountSketch(width, depth int, seed uint64) (*CountSketch, error) {
	if width <= 0 {
		return nil, core.Errf("CountSketch", "width", "%d must be positive", width)
	}
	if depth <= 0 {
		return nil, core.Errf("CountSketch", "depth", "%d must be positive", depth)
	}
	counts := make([][]int64, depth)
	tabs := make([]*hashutil.Tabulation, depth)
	fam := hashutil.NewFamily(seed)
	for i := range counts {
		counts[i] = make([]int64, width)
		tabs[i] = hashutil.NewTabulation(fam.Seed(i))
	}
	return &CountSketch{width: width, depth: depth, counts: counts, tabs: tabs}, nil
}

// Update adds count occurrences of the item (count may be negative for
// deletions; Count Sketch supports the turnstile model).
func (cs *CountSketch) Update(item []byte, count int64) {
	key := hashutil.Sum64(item, 0x5eed)
	cs.UpdateKey(key, count)
}

// UpdateKey adds count occurrences of a pre-hashed 64-bit key.
func (cs *CountSketch) UpdateKey(key uint64, count int64) {
	if count > 0 {
		cs.n += uint64(count)
	}
	for d := 0; d < cs.depth; d++ {
		h := cs.tabs[d].Hash(key)
		idx := (h >> 1) % uint64(cs.width)
		sign := int64(1)
		if h&1 == 1 {
			sign = -1
		}
		cs.counts[d][idx] += sign * count
	}
}

// Estimate returns the (two-sided) point estimate for item.
func (cs *CountSketch) Estimate(item []byte) int64 {
	return cs.EstimateKey(hashutil.Sum64(item, 0x5eed))
}

// EstimateKey returns the point estimate for a pre-hashed key.
func (cs *CountSketch) EstimateKey(key uint64) int64 {
	ests := make([]int64, cs.depth)
	for d := 0; d < cs.depth; d++ {
		h := cs.tabs[d].Hash(key)
		idx := (h >> 1) % uint64(cs.width)
		sign := int64(1)
		if h&1 == 1 {
			sign = -1
		}
		ests[d] = sign * cs.counts[d][idx]
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// Items returns the positive count mass absorbed.
func (cs *CountSketch) Items() uint64 { return cs.n }

// Bytes returns the counter-matrix footprint (tabulation tables excluded:
// they are shared constants reconstructible from the seed).
func (cs *CountSketch) Bytes() int { return cs.width*cs.depth*8 + 32 }
