package frequency

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestCountMinParamValidation(t *testing.T) {
	if _, err := NewCountMin(0, 4, 1); err == nil {
		t.Fatal("width=0 accepted")
	}
	if _, err := NewCountMin(100, 0, 1); err == nil {
		t.Fatal("depth=0 accepted")
	}
	if _, err := NewCountMinWithError(0, 0.01, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewCountMinWithError(0.01, 2, 1); err == nil {
		t.Fatal("delta=2 accepted")
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm, _ := NewCountMin(512, 4, 7)
	stream := ZipfStrings(1, 50000, 2000, 1.1)
	truth := map[string]uint64{}
	for _, it := range stream {
		cm.UpdateString(it, 1)
		truth[it]++
	}
	for it, c := range truth {
		if est := cm.EstimateString(it); est < c {
			t.Fatalf("undercount for %s: est %d < true %d", it, est, c)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// width = e/eps with eps = 0.01 -> overestimate <= 0.01*N w.h.p.
	cm, _ := NewCountMinWithError(0.01, 0.01, 7)
	stream := ZipfStrings(2, 100000, 5000, 1.0)
	truth := map[string]uint64{}
	for _, it := range stream {
		cm.UpdateString(it, 1)
		truth[it]++
	}
	n := float64(len(stream))
	violations := 0
	for it, c := range truth {
		if float64(cm.EstimateString(it))-float64(c) > 0.01*n {
			violations++
		}
	}
	// delta = 0.01 per query: among ~5000 queries allow a generous 2%.
	if violations > len(truth)/50 {
		t.Fatalf("%d/%d error-bound violations", violations, len(truth))
	}
}

func TestCountMinConservativeTighter(t *testing.T) {
	plain, _ := NewCountMin(256, 4, 7)
	cons, _ := NewCountMin(256, 4, 7)
	cons.SetConservative(true)
	stream := ZipfStrings(3, 50000, 5000, 1.0)
	truth := map[string]uint64{}
	for _, it := range stream {
		plain.UpdateString(it, 1)
		cons.UpdateString(it, 1)
		truth[it]++
	}
	var plainErr, consErr uint64
	for it, c := range truth {
		plainErr += plain.EstimateString(it) - c
		ce := cons.EstimateString(it)
		if ce < c {
			t.Fatalf("conservative undercounted %s", it)
		}
		consErr += ce - c
	}
	if consErr >= plainErr {
		t.Fatalf("conservative (%d) not tighter than plain (%d)", consErr, plainErr)
	}
}

func TestCountMinMergeEqualsConcat(t *testing.T) {
	full, _ := NewCountMin(256, 4, 9)
	a, _ := NewCountMin(256, 4, 9)
	b, _ := NewCountMin(256, 4, 9)
	stream := ZipfStrings(4, 20000, 1000, 1.0)
	for i, it := range stream {
		full.UpdateString(it, 1)
		if i%2 == 0 {
			a.UpdateString(it, 1)
		} else {
			b.UpdateString(it, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		it := fmt.Sprintf("k%d", i)
		if a.EstimateString(it) != full.EstimateString(it) {
			t.Fatalf("merge differs from concat for %s", it)
		}
	}
	cons, _ := NewCountMin(256, 4, 9)
	cons.SetConservative(true)
	if err := a.Merge(cons); err == nil {
		t.Fatal("merged a conservative sketch")
	}
}

func TestCountMinInnerProduct(t *testing.T) {
	a, _ := NewCountMin(2048, 5, 11)
	b, _ := NewCountMin(2048, 5, 11)
	// a holds {x:3}, b holds {x:5, y:7}: true inner product 15.
	a.UpdateString("x", 3)
	b.UpdateString("x", 5)
	b.UpdateString("y", 7)
	ip, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if ip < 15 || ip > 20 {
		t.Fatalf("inner product %d, want ~15 (never under)", ip)
	}
}

func TestCountSketchUnbiasedAndTurnstile(t *testing.T) {
	cs, _ := NewCountSketch(1024, 5, 13)
	stream := ZipfStrings(5, 50000, 2000, 1.1)
	truth := map[string]int64{}
	for _, it := range stream {
		cs.Update([]byte(it), 1)
		truth[it]++
	}
	// Deletions: remove all of k0's mass.
	k0 := "k0"
	cs.Update([]byte(k0), -truth[k0])
	truth[k0] = 0
	if est := cs.Estimate([]byte(k0)); est > 500 || est < -500 {
		t.Fatalf("turnstile deletion left estimate %d", est)
	}
	// Heavy items should be estimated within a few percent.
	for i := 1; i < 5; i++ {
		it := fmt.Sprintf("k%d", i)
		c := truth[it]
		est := cs.Estimate([]byte(it))
		if est < c*8/10 || est > c*12/10 {
			t.Fatalf("count sketch estimate for %s: %d vs true %d", it, est, c)
		}
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	mg, _ := NewMisraGries(100)
	stream := ZipfStrings(6, 100000, 10000, 1.2)
	truth := map[string]uint64{}
	for _, it := range stream {
		mg.Update(it)
		truth[it]++
	}
	n := mg.Items()
	bound := n / 100
	for it, c := range truth {
		est := mg.Estimate(it)
		// Estimates never overcount and undercount by at most N/k.
		if est > c {
			t.Fatalf("MG overcounted %s: %d > %d", it, est, c)
		}
		if c > bound && est == 0 {
			t.Fatalf("MG lost guaranteed-frequent item %s (true %d > %d)", it, c, bound)
		}
		if est > 0 && c-est > bound {
			t.Fatalf("MG undercount beyond bound for %s: %d vs %d", it, est, c)
		}
	}
}

func TestMisraGriesMergePreservesBound(t *testing.T) {
	a, _ := NewMisraGries(50)
	b, _ := NewMisraGries(50)
	sa := ZipfStrings(7, 30000, 3000, 1.1)
	sb := ZipfStrings(8, 30000, 3000, 1.1)
	truth := map[string]uint64{}
	for _, it := range sa {
		a.Update(it)
		truth[it]++
	}
	for _, it := range sb {
		b.Update(it)
		truth[it]++
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Items() != 60000 {
		t.Fatalf("merged items %d", a.Items())
	}
	bound := a.Items() / 50 * 2 // merged bound relaxes to 2N/k
	for it, c := range truth {
		est := a.Estimate(it)
		if est > c {
			t.Fatalf("merged MG overcounted %s", it)
		}
		if c > bound && est == 0 {
			t.Fatalf("merged MG lost heavy item %s (true %d)", it, c)
		}
	}
	other, _ := NewMisraGries(60)
	if err := a.Merge(other); err == nil {
		t.Fatal("merged different k")
	}
}

func TestSpaceSavingGuarantees(t *testing.T) {
	ss, _ := NewSpaceSaving(200)
	stream := ZipfStrings(9, 100000, 10000, 1.2)
	truth := map[string]uint64{}
	for _, it := range stream {
		ss.Update(it)
		truth[it]++
	}
	// Overestimate bounded by min counter; never under true count for
	// tracked items; every item above N/k is tracked.
	minC := ss.MinCount()
	bound := ss.Items() / 200
	if minC > bound {
		t.Fatalf("min counter %d exceeds N/k %d", minC, bound)
	}
	for it, c := range truth {
		est, errB := ss.Estimate(it)
		if est == 0 {
			if c > bound {
				t.Fatalf("space-saving lost heavy item %s (true %d > %d)", it, c, bound)
			}
			continue
		}
		if est < c {
			t.Fatalf("space-saving under-estimated tracked %s: %d < %d", it, est, c)
		}
		if est-c > errB {
			t.Fatalf("overestimate %d-%d exceeds tracked err %d", est, c, errB)
		}
	}
}

func TestSpaceSavingTopKOrdering(t *testing.T) {
	ss, _ := NewSpaceSaving(50)
	// Deterministic stream: k0 x 100, k1 x 50, k2 x 25, noise x 1.
	for i := 0; i < 100; i++ {
		ss.Update("h0")
	}
	for i := 0; i < 50; i++ {
		ss.Update("h1")
	}
	for i := 0; i < 25; i++ {
		ss.Update("h2")
	}
	for i := 0; i < 20; i++ {
		ss.Update(fmt.Sprintf("noise%d", i))
	}
	top := ss.TopK(3)
	if len(top) != 3 || top[0].Item != "h0" || top[1].Item != "h1" || top[2].Item != "h2" {
		t.Fatalf("bad top-3: %+v", top)
	}
	if top[0].Count != 100 || top[1].Count != 50 {
		t.Fatalf("exact counts wrong below capacity: %+v", top)
	}
	g := ss.GuaranteedTopK(3)
	if len(g) != 3 {
		t.Fatalf("guaranteed top-3 has %d entries", len(g))
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ss, _ := NewSpaceSaving(2)
	ss.Update("a")
	ss.Update("a")
	ss.Update("b")
	ss.Update("c") // evicts b (min count 1), inherits err=1
	est, errB := ss.Estimate("c")
	if est != 2 || errB != 1 {
		t.Fatalf("eviction inheritance wrong: est=%d err=%d", est, errB)
	}
	if e, _ := ss.Estimate("b"); e != 0 {
		t.Fatal("evicted item still tracked")
	}
}

func TestLossyCountingGuarantees(t *testing.T) {
	lc, _ := NewLossyCounting(0.001)
	stream := ZipfStrings(10, 200000, 20000, 1.1)
	truth := map[string]uint64{}
	for _, it := range stream {
		lc.Update(it)
		truth[it]++
	}
	theta := 0.005
	out := lc.Frequent(theta)
	reported := map[string]bool{}
	for _, c := range out {
		reported[c.Item] = true
	}
	n := float64(lc.Items())
	for it, c := range truth {
		if float64(c) > theta*n && !reported[it] {
			t.Fatalf("lossy counting missed true heavy hitter %s (%d)", it, c)
		}
		if float64(c) < (theta-0.001)*n && reported[it] {
			t.Fatalf("lossy counting reported %s below theta-eps (%d)", it, c)
		}
	}
	// Space bound: (1/eps) log(eps N) = 1000 * log(200) ~ 5300.
	if lc.Entries() > 8000 {
		t.Fatalf("lossy counting holds %d entries", lc.Entries())
	}
}

func TestStickySamplingRecall(t *testing.T) {
	theta, eps, delta := 0.01, 0.002, 0.01
	misses := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		s, err := NewStickySampling(theta, eps, delta, uint64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		stream := ZipfStrings(uint64(100+trial), 100000, 5000, 1.3)
		truth := map[string]uint64{}
		for _, it := range stream {
			s.Update(it)
			truth[it]++
		}
		out := s.Frequent(theta)
		reported := map[string]bool{}
		for _, c := range out {
			reported[c.Item] = true
		}
		n := float64(s.Items())
		for it, c := range truth {
			if float64(c) > theta*n && !reported[it] {
				misses++
			}
		}
	}
	if misses > 2 {
		t.Fatalf("sticky sampling missed %d heavy hitters across %d trials", misses, trials)
	}
}

func TestStickySamplingSpaceIndependentOfN(t *testing.T) {
	s, _ := NewStickySampling(0.01, 0.002, 0.01, 3)
	stream := ZipfStrings(11, 500000, 50000, 1.05)
	for _, it := range stream {
		s.Update(it)
	}
	// 2/eps * log(1/(theta delta)) = 1000 * log(1e4) ~ 9200 worst case.
	if s.Entries() > 15000 {
		t.Fatalf("sticky sampling grew to %d entries", s.Entries())
	}
}

func TestHierarchicalHH(t *testing.T) {
	h, err := NewHierarchicalHH(3, 200, "/")
	if err != nil {
		t.Fatal(err)
	}
	// Plant: sports/soccer/epl hot (400), sports/soccer/laliga warm (200),
	// news/politics/us hot (300), diffuse noise elsewhere.
	for i := 0; i < 400; i++ {
		h.Update("sports/soccer/epl")
	}
	for i := 0; i < 200; i++ {
		h.Update("sports/soccer/laliga")
	}
	for i := 0; i < 300; i++ {
		h.Update("news/politics/us")
	}
	rng := workload.NewRNG(12)
	for i := 0; i < 100; i++ {
		h.Update(fmt.Sprintf("misc/x%d/y%d", rng.Intn(50), i))
	}
	out := h.Query(0.15) // threshold = 150
	found := map[string]uint64{}
	for _, r := range out {
		found[r.Prefix] = r.Count
	}
	if found["sports/soccer/epl"] == 0 {
		t.Fatalf("missing leaf HHH: %+v", out)
	}
	if found["sports/soccer/laliga"] == 0 {
		t.Fatalf("missing second leaf HHH: %+v", out)
	}
	if found["news/politics/us"] == 0 {
		t.Fatalf("missing news leaf: %+v", out)
	}
	// sports/soccer raw count is 600 but both children are HHHs, so its
	// discounted count (~0) must NOT appear.
	if c, ok := found["sports/soccer"]; ok && c > 100 {
		t.Fatalf("parent not discounted: sports/soccer=%d", c)
	}
}

func TestWindowTopKSlidesOut(t *testing.T) {
	w, _ := NewWindowTopK(100)
	for i := 0; i < 100; i++ {
		w.Update("old")
	}
	for i := 0; i < 100; i++ {
		w.Update("new")
	}
	if w.Count("old") != 0 {
		t.Fatalf("old item still counted: %d", w.Count("old"))
	}
	if w.Count("new") != 100 {
		t.Fatalf("new count %d", w.Count("new"))
	}
	top := w.TopK(1)
	if len(top) != 1 || top[0].Item != "new" {
		t.Fatalf("bad top-1: %+v", top)
	}
	if w.WindowLen() != 100 {
		t.Fatalf("window len %d", w.WindowLen())
	}
}

func TestWindowTopKMatchesExactOverWindow(t *testing.T) {
	const window = 1000
	w, _ := NewWindowTopK(window)
	stream := ZipfStrings(13, 10000, 200, 1.0)
	for _, it := range stream {
		w.Update(it)
	}
	tail := stream[len(stream)-window:]
	exact := ExactTopK(tail, 10)
	got := w.TopK(10)
	for i := range exact {
		if got[i].Count != exact[i].Count {
			t.Fatalf("window top-k counts diverge at %d: %+v vs %+v", i, got[i], exact[i])
		}
	}
}

func TestQuickCountMinMonotone(t *testing.T) {
	// Property: Count-Min estimates never undercount, on any input.
	f := func(items []uint8) bool {
		cm, _ := NewCountMin(64, 3, 5)
		truth := map[string]uint64{}
		for _, b := range items {
			it := fmt.Sprintf("i%d", b%32)
			cm.UpdateString(it, 1)
			truth[it]++
		}
		for it, c := range truth {
			if cm.EstimateString(it) < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpaceSavingNeverUnder(t *testing.T) {
	f := func(items []uint8) bool {
		ss, _ := NewSpaceSaving(8)
		truth := map[string]uint64{}
		for _, b := range items {
			it := fmt.Sprintf("i%d", b%16)
			ss.Update(it)
			truth[it]++
		}
		for it, c := range truth {
			if est, _ := ss.Estimate(it); est != 0 && est < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	cm, _ := NewCountMin(2048, 5, 1)
	key := []byte("benchmark-key")
	for i := 0; i < b.N; i++ {
		cm.Update(key, 1)
	}
}

func BenchmarkSpaceSavingUpdate(b *testing.B) {
	ss, _ := NewSpaceSaving(1000)
	keys := ZipfStrings(1, 100000, 10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Update(keys[i%len(keys)])
	}
}

func BenchmarkMisraGriesUpdate(b *testing.B) {
	mg, _ := NewMisraGries(1000)
	keys := ZipfStrings(1, 100000, 10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Update(keys[i%len(keys)])
	}
}

func TestMisraGriesDecrementPath(t *testing.T) {
	// Force constant decrement churn: k=3 counters, 4 rotating keys.
	mg, _ := NewMisraGries(3)
	for i := 0; i < 1000; i++ {
		mg.Update(fmt.Sprintf("r%d", i%4))
	}
	// No key exceeds N/k = 333... but none is guaranteed either; the
	// invariant is only that estimates never overcount.
	for i := 0; i < 4; i++ {
		if est := mg.Estimate(fmt.Sprintf("r%d", i)); est > 250 {
			t.Fatalf("rotating key overcounted: %d", est)
		}
	}
}

func TestSpaceSavingSingleCounter(t *testing.T) {
	ss, _ := NewSpaceSaving(1)
	ss.Update("a")
	ss.Update("b") // evicts a
	ss.Update("b")
	est, errB := ss.Estimate("b")
	if est != 3 || errB != 1 {
		t.Fatalf("k=1 estimate %d err %d", est, errB)
	}
	if len(ss.TopK(5)) != 1 {
		t.Fatal("k=1 tracks more than one item")
	}
}

func TestCountSketchMedianDepthEven(t *testing.T) {
	// Even depth exercises the two-middle-average branch.
	cs, _ := NewCountSketch(256, 4, 3)
	for i := 0; i < 1000; i++ {
		cs.Update([]byte("x"), 1)
	}
	if est := cs.Estimate([]byte("x")); est < 900 || est > 1100 {
		t.Fatalf("even-depth estimate %d", est)
	}
}

func TestHierarchicalHHDepthClamp(t *testing.T) {
	h, _ := NewHierarchicalHH(2, 50, "/")
	// Deeper keys than maxDepth are clamped, not dropped.
	for i := 0; i < 100; i++ {
		h.Update("a/b/c/d/e")
	}
	out := h.Query(0.5)
	found := false
	for _, r := range out {
		if r.Prefix == "a/b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("clamped prefix missing: %+v", out)
	}
}

func TestWindowTopKPartialWindow(t *testing.T) {
	w, _ := NewWindowTopK(1000)
	w.Update("only")
	if w.WindowLen() != 1 || w.Count("only") != 1 {
		t.Fatal("partial window miscounted")
	}
	top := w.TopK(10)
	if len(top) != 1 || top[0].Item != "only" {
		t.Fatalf("partial window top-k %+v", top)
	}
}

func TestExactTopKTieBreak(t *testing.T) {
	items := []string{"b", "a", "c", "a", "b", "c"}
	top := ExactTopK(items, 3)
	// Equal counts break ties lexicographically for determinism.
	if top[0].Item != "a" || top[1].Item != "b" || top[2].Item != "c" {
		t.Fatalf("tie-break order %+v", top)
	}
}

func TestCountMinSerializationRoundTrip(t *testing.T) {
	cm, _ := NewCountMin(128, 4, 77)
	for i := 0; i < 5000; i++ {
		cm.UpdateString(fmt.Sprintf("k%d", i%100), 1)
	}
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCountMin(data, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if back.EstimateString(k) != cm.EstimateString(k) {
			t.Fatalf("round trip changed estimate for %s", k)
		}
	}
	if back.Items() != cm.Items() {
		t.Fatal("round trip changed item count")
	}
	// Decoded sketch must keep merging with same-seed peers.
	peer, _ := NewCountMin(128, 4, 77)
	peer.UpdateString("k0", 10)
	if err := back.Merge(peer); err != nil {
		t.Fatal(err)
	}
	if back.EstimateString("k0") < cm.EstimateString("k0")+10 {
		t.Fatal("merge after decode lost counts")
	}
}

func TestCountMinSerializationRejectsBadInput(t *testing.T) {
	cm, _ := NewCountMin(32, 3, 5)
	cm.UpdateString("x", 1)
	data, _ := cm.MarshalBinary()
	if _, err := UnmarshalCountMin(data[:10], 5); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := UnmarshalCountMin(data, 6); err == nil {
		t.Fatal("wrong seed accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := UnmarshalCountMin(bad, 5); err == nil {
		t.Fatal("bad magic accepted")
	}
	cons, _ := NewCountMin(32, 3, 5)
	cons.SetConservative(true)
	cons.UpdateString("x", 1)
	cdata, _ := cons.MarshalBinary()
	cback, err := UnmarshalCountMin(cdata, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cback.Merge(cm); err == nil {
		t.Fatal("conservative flag lost in round trip")
	}
}

func TestSpaceSavingMergeEqualsConcat(t *testing.T) {
	a, _ := NewSpaceSaving(200)
	b, _ := NewSpaceSaving(200)
	sa := ZipfStrings(21, 50000, 5000, 1.2)
	sb := ZipfStrings(22, 50000, 5000, 1.2)
	truth := map[string]uint64{}
	for _, it := range sa {
		a.Update(it)
		truth[it]++
	}
	for _, it := range sb {
		b.Update(it)
		truth[it]++
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Items() != 100000 {
		t.Fatalf("merged items %d", a.Items())
	}
	if len(a.elem) > 200 {
		t.Fatalf("merged summary exceeds k: %d", len(a.elem))
	}
	// Estimates stay overestimates bounded by Err, and every item above
	// 2N/k in the concatenated stream is still tracked.
	for _, c := range a.TopK(len(a.elem)) {
		if tc := truth[c.Item]; c.Count < tc {
			t.Fatalf("merged SS undercounted %s: %d < %d", c.Item, c.Count, tc)
		} else if c.Count-c.Err > tc {
			t.Fatalf("merged SS error bound violated for %s: %d-%d > %d", c.Item, c.Count, c.Err, tc)
		}
	}
	bound := a.Items() / 200 * 2
	for it, tc := range truth {
		if tc > bound {
			if c, _ := a.Estimate(it); c == 0 {
				t.Fatalf("merged SS lost heavy item %s (true %d > %d)", it, tc, bound)
			}
		}
	}
	// The internal Stream-Summary structure must survive the rebuild:
	// further updates and min lookups keep working.
	for _, it := range ZipfStrings(23, 10000, 5000, 1.2) {
		a.Update(it)
	}
	if a.MinCount() == 0 {
		t.Fatal("min count zero after post-merge updates on a full summary")
	}
	other, _ := NewSpaceSaving(100)
	if err := a.Merge(other); err == nil {
		t.Fatal("merged different k")
	}
}

func TestSpaceSavingMergeIntoEmptyPreservesCounts(t *testing.T) {
	src, _ := NewSpaceSaving(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			src.Update(string(rune('a' + i)))
		}
	}
	dst, _ := NewSpaceSaving(8)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	// Neither side was full, so the merge is exact.
	for i := 0; i < 5; i++ {
		c, e := dst.Estimate(string(rune('a' + i)))
		if c != uint64(i+1) || e != 0 {
			t.Fatalf("item %c: got (%d,%d), want (%d,0)", 'a'+i, c, e, i+1)
		}
	}
	if dst.Items() != src.Items() {
		t.Fatalf("items %d != %d", dst.Items(), src.Items())
	}
}

// Reset must return a summary to its freshly-constructed behavior while
// reusing allocations — the sketch store's per-shard hot-key trackers
// reset at every detection epoch.
func TestSpaceSavingReset(t *testing.T) {
	ss, _ := NewSpaceSaving(8)
	for i := 0; i < 500; i++ {
		ss.Update(fmt.Sprintf("i%d", i%20))
	}
	ss.Reset()
	if ss.Items() != 0 || ss.MinCount() != 0 || len(ss.TopK(8)) != 0 {
		t.Fatalf("reset summary not empty: items %d, min %d", ss.Items(), ss.MinCount())
	}
	// Behaves exactly like a fresh summary afterwards.
	fresh, _ := NewSpaceSaving(8)
	for i := 0; i < 300; i++ {
		item := fmt.Sprintf("j%d", i%10)
		ss.Update(item)
		fresh.Update(item)
	}
	got, want := ss.TopK(8), fresh.TopK(8)
	if len(got) != len(want) {
		t.Fatalf("topk sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestCountMinReset(t *testing.T) {
	cm, _ := NewCountMin(64, 3, 9)
	for i := 0; i < 200; i++ {
		cm.UpdateString(fmt.Sprintf("i%d", i%10), 2)
	}
	cm.Reset()
	if cm.Items() != 0 {
		t.Fatalf("items %d after reset", cm.Items())
	}
	for i := 0; i < 10; i++ {
		if c := cm.EstimateString(fmt.Sprintf("i%d", i)); c != 0 {
			t.Fatalf("count %d after reset", c)
		}
	}
	cm.UpdateString("x", 3)
	if c := cm.EstimateString("x"); c != 3 {
		t.Fatalf("post-reset update counted %d, want 3", c)
	}
}
