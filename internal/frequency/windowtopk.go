package frequency

import (
	"container/list"

	"repro/internal/core"
)

// WindowTopK maintains the top-k most frequent items over a sliding window
// of the last W stream items (the survey's Hung–Lee–Ting and
// Pripužić-style sliding-window top-k row). It keeps exact counts over the
// window via a ring of expiring items — the "budgeted exact" strategy that
// is standard when W fits in memory, with the sketch-based variants left to
// the unbounded-stream summaries above.
type WindowTopK struct {
	window int
	ring   *list.List // item arrival order; front expires first
	counts map[string]uint64
	n      uint64
}

// NewWindowTopK returns a sliding-window top-k tracker over the last
// window items.
func NewWindowTopK(window int) (*WindowTopK, error) {
	if window <= 0 {
		return nil, core.Errf("WindowTopK", "window", "%d must be positive", window)
	}
	return &WindowTopK{window: window, ring: list.New(), counts: make(map[string]uint64)}, nil
}

// Update adds one occurrence of item, expiring the oldest if the window is
// full.
func (w *WindowTopK) Update(item string) {
	w.n++
	w.ring.PushBack(item)
	w.counts[item]++
	if w.ring.Len() > w.window {
		old := w.ring.Remove(w.ring.Front()).(string)
		if c := w.counts[old]; c <= 1 {
			delete(w.counts, old)
		} else {
			w.counts[old] = c - 1
		}
	}
}

// TopK returns the k most frequent items in the current window.
func (w *WindowTopK) TopK(k int) []Counted {
	out := make([]Counted, 0, len(w.counts))
	for it, c := range w.counts {
		out = append(out, Counted{Item: it, Count: c})
	}
	sortCounted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Count returns the exact in-window count of item.
func (w *WindowTopK) Count(item string) uint64 { return w.counts[item] }

// Items returns the total stream length so far.
func (w *WindowTopK) Items() uint64 { return w.n }

// WindowLen returns the number of items currently in the window.
func (w *WindowTopK) WindowLen() int { return w.ring.Len() }

// Bytes approximates the footprint (ring plus counts).
func (w *WindowTopK) Bytes() int { return w.ring.Len()*32 + len(w.counts)*48 + 32 }
