package frequency

import (
	"encoding/binary"

	"repro/internal/core"
)

// Count-Min binary layout:
//
//	[magic u32][width u32][depth u32][flags u8][n u64][seedCheck u64]
//	[counters width*depth x u64]
//
// seedCheck is a probe value hashed under the sketch's family so decode
// can verify that an unmarshalled sketch is being rehydrated with the
// geometry (and hash family) it was built with; the family itself is
// reconstructed by the caller passing the same seed to NewCountMin.
const cmMagic = 0x434d534b // "CMSK"

const cmFlagConservative = 1

// MarshalBinary encodes the sketch. The sketch's hash family is derived
// from its construction seed, which the caller must supply again on
// decode (UnmarshalInto), matching the mergeable-sketch deployment model:
// all parties share (seed, width, depth) as configuration.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+4+4+1+8+8+cm.width*cm.depth*8)
	binary.LittleEndian.PutUint32(out[0:], cmMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(cm.width))
	binary.LittleEndian.PutUint32(out[8:], uint32(cm.depth))
	if cm.conservative {
		out[12] = cmFlagConservative
	}
	binary.LittleEndian.PutUint64(out[13:], cm.n)
	binary.LittleEndian.PutUint64(out[21:], cm.fam.Seed(0))
	pos := 29
	for d := 0; d < cm.depth; d++ {
		for w := 0; w < cm.width; w++ {
			binary.LittleEndian.PutUint64(out[pos:], cm.counts[d][w])
			pos += 8
		}
	}
	return out, nil
}

// UnmarshalBinary decodes into the receiver, which must already be
// constructed with the encoder's geometry and seed (the checkpoint
// restore path: the store rehydrates into a fresh Prototype instance, so
// the receiver carries the configuration and the bytes must match it).
// A width/depth mismatch or a different hash family is ErrIncompatible,
// not silently-wrong estimates.
func (cm *CountMin) UnmarshalBinary(data []byte) error {
	if len(data) < 29 || binary.LittleEndian.Uint32(data[0:]) != cmMagic {
		return core.ErrCorrupt
	}
	width := int(binary.LittleEndian.Uint32(data[4:]))
	depth := int(binary.LittleEndian.Uint32(data[8:]))
	if width <= 0 || depth <= 0 || len(data) != 29+width*depth*8 {
		return core.ErrCorrupt
	}
	if width != cm.width || depth != cm.depth {
		return core.ErrIncompatible
	}
	if binary.LittleEndian.Uint64(data[21:]) != cm.fam.Seed(0) {
		return core.ErrIncompatible
	}
	cm.conservative = data[12]&cmFlagConservative != 0
	cm.n = binary.LittleEndian.Uint64(data[13:])
	pos := 29
	for d := 0; d < depth; d++ {
		for w := 0; w < width; w++ {
			cm.counts[d][w] = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		}
	}
	return nil
}

// UnmarshalCountMin decodes a sketch serialized by MarshalBinary. seed
// must be the construction seed of the encoder; a mismatch is detected
// and rejected, because a sketch queried under the wrong hash family
// silently returns garbage.
func UnmarshalCountMin(data []byte, seed uint64) (*CountMin, error) {
	if len(data) < 29 {
		return nil, core.ErrCorrupt
	}
	if binary.LittleEndian.Uint32(data[0:]) != cmMagic {
		return nil, core.ErrCorrupt
	}
	width := int(binary.LittleEndian.Uint32(data[4:]))
	depth := int(binary.LittleEndian.Uint32(data[8:]))
	if width <= 0 || depth <= 0 || len(data) != 29+width*depth*8 {
		return nil, core.ErrCorrupt
	}
	cm, err := NewCountMin(width, depth, seed)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(data[21:]) != cm.fam.Seed(0) {
		return nil, core.ErrIncompatible
	}
	cm.conservative = data[12]&cmFlagConservative != 0
	cm.n = binary.LittleEndian.Uint64(data[13:])
	pos := 29
	for d := 0; d < depth; d++ {
		for w := 0; w < width; w++ {
			cm.counts[d][w] = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		}
	}
	return cm, nil
}

// Space-Saving binary layout:
//
//	[magic u32][k u32][n u64][entries u32]
//	[entries x: count u64, err u64, itemLen u32, item bytes]
//
// Entries are written in ascending count order (ties by item) so decode
// can rebuild the Stream-Summary bucket list with the same O(1)-amortized
// tail-hint attach the Merge rebuild uses — and so equal summaries
// marshal to equal bytes.
const ssMagic = 0x53534156 // "SSAV"

// MarshalBinary encodes the summary. Space-Saving has no hash seeds, so
// unlike Count-Min the bytes are self-contained up to k.
func (ss *SpaceSaving) MarshalBinary() ([]byte, error) {
	entries := ss.TopK(len(ss.elem)) // descending; reversed on write
	size := 4 + 4 + 8 + 4
	for _, e := range entries {
		size += 8 + 8 + 4 + len(e.Item)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, ssMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(ss.k))
	out = binary.LittleEndian.AppendUint64(out, ss.n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		out = binary.LittleEndian.AppendUint64(out, e.Count)
		out = binary.LittleEndian.AppendUint64(out, e.Err)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Item)))
		out = append(out, e.Item...)
	}
	return out, nil
}

// UnmarshalBinary decodes into the receiver, replacing its contents. The
// receiver's k must match the encoder's — a k mismatch would silently
// change the summary's error guarantee, so it is ErrIncompatible.
func (ss *SpaceSaving) UnmarshalBinary(data []byte) error {
	if len(data) < 20 || binary.LittleEndian.Uint32(data[0:]) != ssMagic {
		return core.ErrCorrupt
	}
	if int(binary.LittleEndian.Uint32(data[4:])) != ss.k {
		return core.ErrIncompatible
	}
	n := binary.LittleEndian.Uint64(data[8:])
	entries := int(binary.LittleEndian.Uint32(data[16:]))
	if entries > ss.k {
		return core.ErrCorrupt
	}
	ss.Reset()
	ss.n = n
	pos := 20
	var after *ssBucket
	var prevCount uint64
	for i := 0; i < entries; i++ {
		if pos+20 > len(data) {
			return core.ErrCorrupt
		}
		count := binary.LittleEndian.Uint64(data[pos:])
		errBound := binary.LittleEndian.Uint64(data[pos+8:])
		itemLen := int(binary.LittleEndian.Uint32(data[pos+16:]))
		pos += 20
		if pos+itemLen > len(data) {
			return core.ErrCorrupt
		}
		item := string(data[pos : pos+itemLen])
		pos += itemLen
		if i > 0 && count < prevCount {
			return core.ErrCorrupt // ascending order is part of the format
		}
		prevCount = count
		if _, dup := ss.elem[item]; dup {
			return core.ErrCorrupt
		}
		node := &ssNode{item: item, err: errBound}
		ss.elem[item] = node
		hint := after
		if hint != nil && hint.count >= count {
			hint = hint.prev
		}
		ss.attach(node, count, hint)
		after = node.bucket
	}
	if pos != len(data) {
		return core.ErrCorrupt
	}
	return nil
}
