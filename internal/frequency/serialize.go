package frequency

import (
	"encoding/binary"

	"repro/internal/core"
)

// Count-Min binary layout:
//
//	[magic u32][width u32][depth u32][flags u8][n u64][seedCheck u64]
//	[counters width*depth x u64]
//
// seedCheck is a probe value hashed under the sketch's family so decode
// can verify that an unmarshalled sketch is being rehydrated with the
// geometry (and hash family) it was built with; the family itself is
// reconstructed by the caller passing the same seed to NewCountMin.
const cmMagic = 0x434d534b // "CMSK"

const cmFlagConservative = 1

// MarshalBinary encodes the sketch. The sketch's hash family is derived
// from its construction seed, which the caller must supply again on
// decode (UnmarshalInto), matching the mergeable-sketch deployment model:
// all parties share (seed, width, depth) as configuration.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+4+4+1+8+8+cm.width*cm.depth*8)
	binary.LittleEndian.PutUint32(out[0:], cmMagic)
	binary.LittleEndian.PutUint32(out[4:], uint32(cm.width))
	binary.LittleEndian.PutUint32(out[8:], uint32(cm.depth))
	if cm.conservative {
		out[12] = cmFlagConservative
	}
	binary.LittleEndian.PutUint64(out[13:], cm.n)
	binary.LittleEndian.PutUint64(out[21:], cm.fam.Seed(0))
	pos := 29
	for d := 0; d < cm.depth; d++ {
		for w := 0; w < cm.width; w++ {
			binary.LittleEndian.PutUint64(out[pos:], cm.counts[d][w])
			pos += 8
		}
	}
	return out, nil
}

// UnmarshalCountMin decodes a sketch serialized by MarshalBinary. seed
// must be the construction seed of the encoder; a mismatch is detected
// and rejected, because a sketch queried under the wrong hash family
// silently returns garbage.
func UnmarshalCountMin(data []byte, seed uint64) (*CountMin, error) {
	if len(data) < 29 {
		return nil, core.ErrCorrupt
	}
	if binary.LittleEndian.Uint32(data[0:]) != cmMagic {
		return nil, core.ErrCorrupt
	}
	width := int(binary.LittleEndian.Uint32(data[4:]))
	depth := int(binary.LittleEndian.Uint32(data[8:]))
	if width <= 0 || depth <= 0 || len(data) != 29+width*depth*8 {
		return nil, core.ErrCorrupt
	}
	cm, err := NewCountMin(width, depth, seed)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(data[21:]) != cm.fam.Seed(0) {
		return nil, core.ErrIncompatible
	}
	cm.conservative = data[12]&cmFlagConservative != 0
	cm.n = binary.LittleEndian.Uint64(data[13:])
	pos := 29
	for d := 0; d < depth; d++ {
		for w := 0; w < width; w++ {
			cm.counts[d][w] = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		}
	}
	return cm, nil
}
