package frequency

import (
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// Counted is one item with its (estimated) count, as returned by the top-k
// queries of the counter-based summaries.
type Counted struct {
	Item  string
	Count uint64
	// Err is the maximum possible overestimate of Count, where the
	// algorithm tracks it (Space-Saving, Lossy Counting); zero otherwise.
	Err uint64
}

// MisraGries maintains k-1 counters and guarantees every item with true
// frequency > N/k is retained (the "Frequent" algorithm; Karp–Shenker–
// Papadimitriou rediscovery cited by the survey). Estimates undercount by
// at most N/k.
type MisraGries struct {
	k        int
	counters map[string]uint64
	n        uint64
}

// NewMisraGries returns a summary with capacity k (tracks items above N/k).
func NewMisraGries(k int) (*MisraGries, error) {
	if k < 2 {
		return nil, core.Errf("MisraGries", "k", "%d must be >= 2", k)
	}
	return &MisraGries{k: k, counters: make(map[string]uint64, k)}, nil
}

// Update adds one occurrence of item.
func (mg *MisraGries) Update(item string) {
	mg.n++
	if _, ok := mg.counters[item]; ok {
		mg.counters[item]++
		return
	}
	if len(mg.counters) < mg.k-1 {
		mg.counters[item] = 1
		return
	}
	// Decrement-all step; delete exhausted counters.
	for it, c := range mg.counters {
		if c == 1 {
			delete(mg.counters, it)
		} else {
			mg.counters[it] = c - 1
		}
	}
}

// Estimate returns the (under-)estimate for item; zero if untracked.
func (mg *MisraGries) Estimate(item string) uint64 { return mg.counters[item] }

// Candidates returns the tracked items sorted by descending count.
func (mg *MisraGries) Candidates() []Counted {
	out := make([]Counted, 0, len(mg.counters))
	for it, c := range mg.counters {
		out = append(out, Counted{Item: it, Count: c})
	}
	sortCounted(out)
	return out
}

// Items returns the stream length so far.
func (mg *MisraGries) Items() uint64 { return mg.n }

// Bytes approximates the counter-map footprint.
func (mg *MisraGries) Bytes() int { return len(mg.counters)*48 + 16 }

// Merge folds another Misra–Gries summary into mg (Agarwal et al. mergeable
// summaries construction: add counters, then subtract the (k)th largest
// count from all and discard non-positive).
func (mg *MisraGries) Merge(other *MisraGries) error {
	if other == nil || mg.k != other.k {
		return core.ErrIncompatible
	}
	for it, c := range other.counters {
		mg.counters[it] += c
	}
	mg.n += other.n
	if len(mg.counters) < mg.k {
		return nil
	}
	counts := make([]uint64, 0, len(mg.counters))
	for _, c := range mg.counters {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	pivot := counts[mg.k-1]
	for it, c := range mg.counters {
		if c <= pivot {
			delete(mg.counters, it)
		} else {
			mg.counters[it] = c - pivot
		}
	}
	return nil
}

// SpaceSaving maintains exactly k counters (Metwally–Agrawal–El Abbadi
// "Efficient computation of frequent and top-k elements"): a new item takes
// over the minimum counter, inheriting its count as the error bound. It
// guarantees count overestimates by at most the smallest counter, and any
// item with true count > N/k is tracked.
type SpaceSaving struct {
	k    int
	n    uint64
	elem map[string]*ssNode
	// buckets of equal count, doubly linked in ascending count order
	// (the "Stream-Summary" structure), giving O(1) min lookup.
	head *ssBucket
}

type ssNode struct {
	item   string
	err    uint64
	bucket *ssBucket
	prev   *ssNode
	next   *ssNode
}

type ssBucket struct {
	count uint64
	nodes *ssNode // any node in this bucket (circular list)
	prev  *ssBucket
	next  *ssBucket
}

// NewSpaceSaving returns a Space-Saving summary with k counters.
func NewSpaceSaving(k int) (*SpaceSaving, error) {
	if k < 1 {
		return nil, core.Errf("SpaceSaving", "k", "%d must be >= 1", k)
	}
	return &SpaceSaving{k: k, elem: make(map[string]*ssNode, k)}, nil
}

func (ss *SpaceSaving) detach(n *ssNode) {
	b := n.bucket
	if n.next == n {
		b.nodes = nil
	} else {
		n.prev.next = n.next
		n.next.prev = n.prev
		if b.nodes == n {
			b.nodes = n.next
		}
	}
	if b.nodes == nil {
		// Unlink empty bucket.
		if b.prev != nil {
			b.prev.next = b.next
		} else {
			ss.head = b.next
		}
		if b.next != nil {
			b.next.prev = b.prev
		}
	}
	n.bucket, n.prev, n.next = nil, nil, nil
}

func (ss *SpaceSaving) attach(n *ssNode, count uint64, after *ssBucket) {
	// Find or create the bucket with the given count, searching forward
	// from `after` (nil means from head).
	var prev *ssBucket
	cur := ss.head
	if after != nil {
		prev, cur = after, after.next
	}
	for cur != nil && cur.count < count {
		prev, cur = cur, cur.next
	}
	var b *ssBucket
	if cur != nil && cur.count == count {
		b = cur
	} else {
		b = &ssBucket{count: count, prev: prev, next: cur}
		if prev != nil {
			prev.next = b
		} else {
			ss.head = b
		}
		if cur != nil {
			cur.prev = b
		}
	}
	if b.nodes == nil {
		b.nodes = n
		n.prev, n.next = n, n
	} else {
		tail := b.nodes.prev
		tail.next = n
		n.prev = tail
		n.next = b.nodes
		b.nodes.prev = n
	}
	n.bucket = b
}

// Update adds one occurrence of item.
func (ss *SpaceSaving) Update(item string) {
	ss.n++
	if n, ok := ss.elem[item]; ok {
		after := n.bucket.prev
		count := n.bucket.count + 1
		ss.detach(n)
		// Re-attach starting from the old predecessor bucket to keep the
		// search O(1) amortized.
		if after != nil && after.count >= count {
			after = nil
		}
		ss.attach(n, count, after)
		return
	}
	if len(ss.elem) < ss.k {
		n := &ssNode{item: item}
		ss.elem[item] = n
		ss.attach(n, 1, nil)
		return
	}
	// Evict from the minimum bucket.
	minB := ss.head
	victim := minB.nodes
	delete(ss.elem, victim.item)
	newCount := minB.count + 1
	victim.item = item
	victim.err = minB.count
	ss.elem[item] = victim
	ss.detach(victim)
	ss.attach(victim, newCount, nil)
}

// Estimate returns the overestimate for item (zero if untracked) and the
// maximum error of that estimate.
func (ss *SpaceSaving) Estimate(item string) (count, err uint64) {
	n, ok := ss.elem[item]
	if !ok {
		return 0, 0
	}
	return n.bucket.count, n.err
}

// TopK returns the k' <= k tracked items in descending count order.
func (ss *SpaceSaving) TopK(k int) []Counted {
	out := make([]Counted, 0, len(ss.elem))
	for it, n := range ss.elem {
		out = append(out, Counted{Item: it, Count: n.bucket.count, Err: n.err})
	}
	sortCounted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// GuaranteedTopK returns only the prefix of TopK whose membership is
// provably correct: item i is guaranteed when count_i - err_i >= count_{i+1}.
func (ss *SpaceSaving) GuaranteedTopK(k int) []Counted {
	all := ss.TopK(len(ss.elem))
	out := make([]Counted, 0, k)
	for i := 0; i < len(all) && i < k; i++ {
		if i+1 < len(all) && all[i].Count-all[i].Err < all[i+1].Count {
			break
		}
		out = append(out, all[i])
	}
	return out
}

// Items returns the stream length so far.
func (ss *SpaceSaving) Items() uint64 { return ss.n }

// Bytes approximates the summary footprint.
func (ss *SpaceSaving) Bytes() int { return len(ss.elem)*96 + 32 }

// Merge folds another Space-Saving summary into ss, following the
// mergeable-summaries construction (Agarwal et al.): counts of items
// present in both summaries add; an item present in only one side may have
// occurred up to the other side's minimum count, so that floor is added to
// both its count (keeping it an overestimate) and its error bound. The top
// k of the combined candidates are kept and the Stream-Summary structure is
// rebuilt. The usual guarantees survive merging: every estimate remains an
// overestimate by at most its Err, and any item with true count > N/k in
// the concatenated stream is tracked.
func (ss *SpaceSaving) Merge(other *SpaceSaving) error {
	if other == nil || ss.k != other.k {
		return core.ErrIncompatible
	}
	// A summary that never filled up has seen every one of its items
	// exactly; only a full summary can have silently dropped an item.
	var floorA, floorB uint64
	if len(ss.elem) == ss.k {
		floorA = ss.MinCount()
	}
	if len(other.elem) == other.k {
		floorB = other.MinCount()
	}
	merged := make(map[string]Counted, len(ss.elem)+len(other.elem))
	for it, n := range ss.elem {
		merged[it] = Counted{Item: it, Count: n.bucket.count, Err: n.err}
	}
	for it, n := range other.elem {
		if c, ok := merged[it]; ok {
			c.Count += n.bucket.count
			c.Err += n.err
			merged[it] = c
		} else {
			merged[it] = Counted{Item: it, Count: n.bucket.count + floorA, Err: n.err + floorA}
		}
	}
	for it := range ss.elem {
		if _, inB := other.elem[it]; !inB {
			c := merged[it]
			c.Count += floorB
			c.Err += floorB
			merged[it] = c
		}
	}
	all := make([]Counted, 0, len(merged))
	for _, c := range merged {
		all = append(all, c)
	}
	sortCounted(all)
	if len(all) > ss.k {
		all = all[:ss.k]
	}
	ss.elem = make(map[string]*ssNode, ss.k)
	ss.head = nil
	// Attach in ascending count order so each attach search starts at the
	// current tail's predecessor region and stays O(1) amortized.
	var after *ssBucket
	for i := len(all) - 1; i >= 0; i-- {
		c := all[i]
		n := &ssNode{item: c.Item, err: c.Err}
		ss.elem[c.Item] = n
		hint := after
		if hint != nil && hint.count >= c.Count {
			// attach searches strictly forward; equal counts must re-find
			// the existing bucket from an earlier position.
			hint = hint.prev
		}
		ss.attach(n, c.Count, hint)
		after = n.bucket
	}
	ss.n += other.n
	return nil
}

// Reset returns the summary to its freshly-constructed state, reusing the
// counter map's allocation. Callers that track traffic in epochs (e.g. the
// sketch store's per-shard hot-key detectors) reset at each boundary
// instead of reallocating.
func (ss *SpaceSaving) Reset() {
	ss.n = 0
	ss.head = nil
	clear(ss.elem)
}

// MinCount returns the smallest tracked count — the global error bound.
func (ss *SpaceSaving) MinCount() uint64 {
	if ss.head == nil {
		return 0
	}
	return ss.head.count
}

func sortCounted(xs []Counted) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Count != xs[j].Count {
			return xs[i].Count > xs[j].Count
		}
		return xs[i].Item < xs[j].Item
	})
}

// ExactTopK computes the true top-k of a stream of string items — the
// ground truth the experiments score summaries against.
func ExactTopK(items []string, k int) []Counted {
	counts := map[string]uint64{}
	for _, it := range items {
		counts[it]++
	}
	out := make([]Counted, 0, len(counts))
	for it, c := range counts {
		out = append(out, Counted{Item: it, Count: c})
	}
	sortCounted(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// ZipfStrings is a convenience bridging workload's integer Zipf streams to
// the string domain the counter summaries operate on.
func ZipfStrings(seed uint64, n, universe int, s float64) []string {
	rng := workload.NewRNG(seed)
	z := workload.NewZipf(rng, universe, s)
	return workload.Keys(z.Stream(n))
}
