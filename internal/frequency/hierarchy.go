package frequency

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// HierarchicalHH finds hierarchical heavy hitters (Cormode–Korn–
// Muthukrishnan–Srivastava, cited by the survey) over keys with a
// slash-separated hierarchy, e.g. IP prefixes "10/10.1/10.1.2" or topic
// paths "sports/soccer/epl". A prefix is a hierarchical heavy hitter when
// its count — after discounting the counts of its HH descendants — exceeds
// theta*N.
//
// This implementation keeps one Space-Saving summary per hierarchy level
// (the standard "full ancestry" streaming strategy) and resolves the
// discounted counts at query time.
type HierarchicalHH struct {
	sep    string
	levels []*SpaceSaving
	n      uint64
}

// NewHierarchicalHH returns a summary for hierarchies up to maxDepth
// levels, with k counters per level and the given separator.
func NewHierarchicalHH(maxDepth, k int, sep string) (*HierarchicalHH, error) {
	if maxDepth < 1 {
		return nil, core.Errf("HierarchicalHH", "maxDepth", "%d must be >= 1", maxDepth)
	}
	if sep == "" {
		return nil, core.Errf("HierarchicalHH", "sep", "must be non-empty")
	}
	levels := make([]*SpaceSaving, maxDepth)
	for i := range levels {
		ss, err := NewSpaceSaving(k)
		if err != nil {
			return nil, err
		}
		levels[i] = ss
	}
	return &HierarchicalHH{sep: sep, levels: levels}, nil
}

// Update adds one occurrence of the full key; every ancestor prefix is
// counted at its level.
func (h *HierarchicalHH) Update(key string) {
	h.n++
	parts := strings.Split(key, h.sep)
	if len(parts) > len(h.levels) {
		parts = parts[:len(h.levels)]
	}
	for lv := range parts {
		h.levels[lv].Update(strings.Join(parts[:lv+1], h.sep))
	}
}

// HHH is one hierarchical heavy hitter: a prefix and its discounted count.
type HHH struct {
	Prefix string
	Count  uint64 // count after subtracting HH descendants
	Raw    uint64 // raw (undiscounted) estimate
	Level  int
}

// Query returns the hierarchical heavy hitters at threshold theta,
// deepest levels first (so parents are discounted by already-reported
// children, per the HHH definition).
func (h *HierarchicalHH) Query(theta float64) []HHH {
	thresh := theta * float64(h.n)
	var out []HHH
	// discounted[prefix] accumulates the counts of reported descendants.
	discounted := map[string]uint64{}
	for lv := len(h.levels) - 1; lv >= 0; lv-- {
		for _, c := range h.levels[lv].TopK(1 << 20) {
			adj := int64(c.Count) - int64(discounted[c.Item])
			if float64(adj) >= thresh {
				out = append(out, HHH{Prefix: c.Item, Count: uint64(adj), Raw: c.Count, Level: lv})
				// Propagate the discount to every ancestor.
				parts := strings.Split(c.Item, h.sep)
				for a := 1; a < len(parts); a++ {
					anc := strings.Join(parts[:a], h.sep)
					discounted[anc] += uint64(adj)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level > out[j].Level
		}
		return out[i].Count > out[j].Count
	})
	return out
}

// Items returns the stream length so far.
func (h *HierarchicalHH) Items() uint64 { return h.n }

// Bytes approximates the footprint across all level summaries.
func (h *HierarchicalHH) Bytes() int {
	total := 16
	for _, ss := range h.levels {
		total += ss.Bytes()
	}
	return total
}
