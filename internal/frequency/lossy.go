package frequency

import (
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// LossyCounting is Manku–Motwani's deterministic frequency summary: the
// stream is processed in buckets of width ceil(1/eps); at each bucket
// boundary, counters whose count + delta falls at or below the bucket id
// are pruned. Output at threshold theta*N returns every item with true
// frequency above theta*N (no false negatives) and none below (theta-eps)*N.
type LossyCounting struct {
	eps     float64
	width   uint64
	bucket  uint64 // current bucket id
	n       uint64
	entries map[string]*lcEntry
}

type lcEntry struct {
	count uint64
	delta uint64 // max undercount when the entry was (re)created
}

// NewLossyCounting returns a summary with error bound eps.
func NewLossyCounting(eps float64) (*LossyCounting, error) {
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("LossyCounting", "eps", "%v not in (0,1)", eps)
	}
	return &LossyCounting{
		eps:     eps,
		width:   uint64(math.Ceil(1 / eps)),
		bucket:  1,
		entries: make(map[string]*lcEntry),
	}, nil
}

// Update adds one occurrence of item.
func (lc *LossyCounting) Update(item string) {
	lc.n++
	if e, ok := lc.entries[item]; ok {
		e.count++
	} else {
		lc.entries[item] = &lcEntry{count: 1, delta: lc.bucket - 1}
	}
	if lc.n%lc.width == 0 {
		for it, e := range lc.entries {
			if e.count+e.delta <= lc.bucket {
				delete(lc.entries, it)
			}
		}
		lc.bucket++
	}
}

// Estimate returns the tracked (under-)count for item; zero if untracked.
func (lc *LossyCounting) Estimate(item string) uint64 {
	if e, ok := lc.entries[item]; ok {
		return e.count
	}
	return 0
}

// Frequent returns all items whose estimated frequency exceeds
// (theta - eps) * N, the Manku–Motwani output rule guaranteeing recall of
// every true theta-heavy hitter.
func (lc *LossyCounting) Frequent(theta float64) []Counted {
	thresh := (theta - lc.eps) * float64(lc.n)
	var out []Counted
	for it, e := range lc.entries {
		if float64(e.count) >= thresh {
			out = append(out, Counted{Item: it, Count: e.count, Err: e.delta})
		}
	}
	sortCounted(out)
	return out
}

// Items returns the stream length so far.
func (lc *LossyCounting) Items() uint64 { return lc.n }

// Bytes approximates the entry-map footprint.
func (lc *LossyCounting) Bytes() int { return len(lc.entries)*64 + 32 }

// Entries returns the number of live counters (the 1/eps*log(eps*N) space
// bound the T1.7 experiment verifies).
func (lc *LossyCounting) Entries() int { return len(lc.entries) }

// StickySampling is Manku–Motwani's probabilistic companion to Lossy
// Counting: items are sampled into the summary with a rate that halves as
// the stream grows, and at each rate change existing counters are
// geometrically "re-tossed". It guarantees the same output property with
// probability 1-delta using O((1/eps) log(1/(theta*delta))) space
// independent of the stream length.
type StickySampling struct {
	eps    float64
	theta  float64
	delta  float64
	t      float64 // first sampling epoch length: (1/eps) log(1/(theta*delta))
	rate   uint64  // current sampling rate r: sample with prob 1/r
	nextCg uint64  // stream position of the next rate change
	n      uint64
	counts map[string]uint64
	rng    *workload.RNG
}

// NewStickySampling returns a sticky sampler for the given support
// threshold theta, error eps, and failure probability delta.
func NewStickySampling(theta, eps, delta float64, seed uint64) (*StickySampling, error) {
	if eps <= 0 || eps >= 1 {
		return nil, core.Errf("StickySampling", "eps", "%v not in (0,1)", eps)
	}
	if theta <= eps || theta >= 1 {
		return nil, core.Errf("StickySampling", "theta", "%v must be in (eps,1)", theta)
	}
	if delta <= 0 || delta >= 1 {
		return nil, core.Errf("StickySampling", "delta", "%v not in (0,1)", delta)
	}
	t := 1 / eps * math.Log(1/(theta*delta))
	return &StickySampling{
		eps:    eps,
		theta:  theta,
		delta:  delta,
		t:      t,
		rate:   1,
		nextCg: uint64(2 * t),
		counts: make(map[string]uint64),
		rng:    workload.NewRNG(seed),
	}, nil
}

// Update adds one occurrence of item.
func (s *StickySampling) Update(item string) {
	s.n++
	if s.n > s.nextCg {
		// Double the rate and re-toss existing counters: for each counter,
		// repeatedly diminish by 1 with probability 1/2 until a success.
		s.rate *= 2
		s.nextCg = uint64(s.t * float64(2*s.rate))
		for it, c := range s.counts {
			for c > 0 && s.rng.Uint64()&1 == 0 {
				c--
			}
			if c == 0 {
				delete(s.counts, it)
			} else {
				s.counts[it] = c
			}
		}
	}
	if _, ok := s.counts[item]; ok {
		s.counts[item]++
		return
	}
	if s.rng.Uint64()%s.rate == 0 {
		s.counts[item] = 1
	}
}

// Frequent returns items with estimated frequency above (theta - eps) * N.
func (s *StickySampling) Frequent(theta float64) []Counted {
	thresh := (theta - s.eps) * float64(s.n)
	var out []Counted
	for it, c := range s.counts {
		if float64(c) >= thresh {
			out = append(out, Counted{Item: it, Count: c})
		}
	}
	sortCounted(out)
	return out
}

// Estimate returns the tracked count for item; zero if untracked.
func (s *StickySampling) Estimate(item string) uint64 { return s.counts[item] }

// Items returns the stream length so far.
func (s *StickySampling) Items() uint64 { return s.n }

// Bytes approximates the counter-map footprint.
func (s *StickySampling) Bytes() int { return len(s.counts)*48 + 48 }

// Entries returns the number of live counters.
func (s *StickySampling) Entries() int { return len(s.counts) }
