package histogram

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func TestEquiWidthValidation(t *testing.T) {
	if _, err := NewEquiWidth(0, 1, 0); err == nil {
		t.Fatal("b=0 accepted")
	}
	if _, err := NewEquiWidth(1, 1, 4); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestEquiWidthBasics(t *testing.T) {
	e, _ := NewEquiWidth(0, 10, 5)
	for i := 0; i < 10; i++ {
		e.Update(float64(i))
	}
	bs := e.Buckets()
	if len(bs) != 5 {
		t.Fatalf("bucket count %d", len(bs))
	}
	for _, b := range bs {
		if b.Count != 2 {
			t.Fatalf("bucket %v count %d, want 2", b.Lo, b.Count)
		}
	}
	// Out-of-range values clamp to the edge buckets.
	e.Update(-100)
	e.Update(+100)
	bs = e.Buckets()
	if bs[0].Count != 3 || bs[4].Count != 3 {
		t.Fatalf("clamping failed: %d / %d", bs[0].Count, bs[4].Count)
	}
}

func TestVOptimalExactOnPiecewiseConstant(t *testing.T) {
	// A signal that is literally 3 constant pieces must be recovered with
	// zero error by a 3-bucket V-optimal histogram.
	vals := make([]float64, 0, 30)
	for i := 0; i < 10; i++ {
		vals = append(vals, 5)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, -2)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 9)
	}
	buckets, sse, err := VOptimal(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 {
		t.Fatalf("SSE %v on exactly representable signal", sse)
	}
	if len(buckets) != 3 {
		t.Fatalf("bucket count %d", len(buckets))
	}
	if buckets[0].Height != 5 || buckets[1].Height != -2 || buckets[2].Height != 9 {
		t.Fatalf("heights wrong: %+v", buckets)
	}
}

func TestVOptimalBeatsEquiWidth(t *testing.T) {
	// On a signal with unevenly-spaced level changes, V-optimal must have
	// strictly lower SSE than equal-width buckets — the Section 2 claim.
	rng := workload.NewRNG(1)
	vals := make([]float64, 0, 200)
	levels := []float64{0, 50, 52, -30}
	widths := []int{120, 20, 40, 20}
	for li, lv := range levels {
		for i := 0; i < widths[li]; i++ {
			vals = append(vals, lv+rng.NormFloat64()*0.5)
		}
	}
	vb, vsse, err := VOptimal(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	eb := EquiWidthIndexBuckets(vals, 4)
	esse := SSEOfBuckets(vals, eb)
	if vsse >= esse {
		t.Fatalf("V-optimal SSE %v not below equi-width %v", vsse, esse)
	}
	// The DP's reported SSE must match an independent evaluation.
	if recheck := SSEOfBuckets(vals, vb); math.Abs(recheck-vsse) > 1e-6*(1+vsse) {
		t.Fatalf("reported SSE %v != evaluated %v", vsse, recheck)
	}
}

func TestVOptimalEdgeCases(t *testing.T) {
	if _, _, err := VOptimal([]float64{1, 2}, 0); err == nil {
		t.Fatal("b=0 accepted")
	}
	b, sse, err := VOptimal(nil, 3)
	if err != nil || b != nil || sse != 0 {
		t.Fatal("empty input not handled")
	}
	// b > n collapses to one bucket per point, zero error.
	b, sse, err = VOptimal([]float64{3, 1, 7}, 10)
	if err != nil || sse != 0 || len(b) != 3 {
		t.Fatalf("b>n case: %v %v %v", b, sse, err)
	}
}

func TestEndBiased(t *testing.T) {
	eb, err := NewEndBiased(5)
	if err != nil {
		t.Fatal(err)
	}
	// Value 1 appears 100x, value 2 appears 50x, values 10..59 once each.
	for i := 0; i < 100; i++ {
		eb.Update(1)
	}
	for i := 0; i < 50; i++ {
		eb.Update(2)
	}
	for i := 10; i < 60; i++ {
		eb.Update(float64(i))
	}
	exact, uniform := eb.Model()
	if exact[1] != 100 || exact[2] != 50 {
		t.Fatalf("exact heads wrong: %v", exact)
	}
	if len(exact) != 2 {
		t.Fatalf("tail leaked into exact set: %v", exact)
	}
	if uniform != 1 {
		t.Fatalf("uniform tail freq %v, want 1", uniform)
	}
	if eb.EstimateFreq(1) != 100 {
		t.Fatal("estimate for head wrong")
	}
	if eb.EstimateFreq(30) != 1 {
		t.Fatal("estimate for tail wrong")
	}
	if _, err := NewEndBiased(0); err == nil {
		t.Fatal("threshold=0 accepted")
	}
}

func BenchmarkVOptimal200x8(b *testing.B) {
	rng := workload.NewRNG(1)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = VOptimal(vals, 8)
	}
}
